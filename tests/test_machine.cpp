#include "simd/machine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace simdts::simd {
namespace {

TEST(Machine, RejectsZeroPes) {
  EXPECT_THROW(Machine(0, cm2_cost_model()), ConfigError);
}

TEST(Machine, RejectsMoreWorkingThanPes) {
  Machine m(8, cm2_cost_model());
  EXPECT_THROW(m.charge_expand_cycle(9), EngineError);
}

TEST(Machine, RejectsBadCostModel) {
  CostModel cm = cm2_cost_model();
  cm.t_expand = 0.0;
  EXPECT_THROW(Machine(8, cm), ConfigError);
  cm = cm2_cost_model();
  cm.t_lb = -1.0;
  EXPECT_THROW(Machine(8, cm), ConfigError);
}

TEST(Machine, DegradedCycleChargesIdleOnlyForSurvivors) {
  Machine m(10, cm2_cost_model());
  // 6 of 10 lanes survive, 4 of them worked: idle time covers 2 lanes.
  m.charge_expand_cycle(4, 6);
  const MachineClock& c = m.clock();
  EXPECT_DOUBLE_EQ(c.elapsed, 30.0);
  EXPECT_DOUBLE_EQ(c.calc_time, 4 * 30.0);
  EXPECT_DOUBLE_EQ(c.idle_time, 2 * 30.0);
  EXPECT_THROW(m.charge_expand_cycle(7, 6), EngineError);   // working > alive
  EXPECT_THROW(m.charge_expand_cycle(4, 11), EngineError);  // alive > P
}

TEST(Machine, RecoveryRoundAccounting) {
  Machine m(10, cm2_cost_model());
  m.charge_recovery_round();
  const MachineClock& c = m.clock();
  // Costed like an lb round, but booked in the recovery bucket.
  EXPECT_DOUBLE_EQ(c.elapsed, 13.0);
  EXPECT_DOUBLE_EQ(c.lb_time, 0.0);
  EXPECT_DOUBLE_EQ(c.recovery_time, 10 * 13.0);
  EXPECT_EQ(c.recovery_rounds, 1u);
  EXPECT_EQ(c.lb_rounds, 0u);
  // Recovery time degrades efficiency exactly like lb time.
  m.charge_expand_cycle(10);
  EXPECT_LT(m.clock().efficiency(), 1.0);
}

TEST(Machine, ExpandCycleAccounting) {
  Machine m(10, cm2_cost_model());
  m.charge_expand_cycle(7);
  const MachineClock& c = m.clock();
  EXPECT_DOUBLE_EQ(c.elapsed, 30.0);
  EXPECT_DOUBLE_EQ(c.calc_time, 7 * 30.0);
  EXPECT_DOUBLE_EQ(c.idle_time, 3 * 30.0);
  EXPECT_DOUBLE_EQ(c.lb_time, 0.0);
  EXPECT_EQ(c.expand_cycles, 1u);
  EXPECT_EQ(c.nodes_expanded, 7u);
}

TEST(Machine, LbRoundAccounting) {
  Machine m(10, cm2_cost_model());
  m.charge_lb_round();
  const MachineClock& c = m.clock();
  EXPECT_DOUBLE_EQ(c.elapsed, 13.0);
  EXPECT_DOUBLE_EQ(c.lb_time, 10 * 13.0);
  EXPECT_EQ(c.lb_rounds, 1u);
}

TEST(Machine, CalcPlusIdleEqualsPTimesCycleTime) {
  Machine m(64, cm2_cost_model());
  for (std::uint32_t w : {64u, 40u, 1u, 0u, 13u}) {
    m.charge_expand_cycle(w);
  }
  const MachineClock& c = m.clock();
  EXPECT_DOUBLE_EQ(c.calc_time + c.idle_time,
                   64.0 * static_cast<double>(c.expand_cycles) * 30.0);
}

TEST(Machine, EfficiencyMatchesPaperFormula) {
  // The paper's own arithmetic: W = 16110463, P = 8192, GP-S0.9 measured
  // N_expand = 2099 and N_lb = 172, giving E ~ 0.91 (Table 2).
  Machine m(8192, cm2_cost_model());
  const std::uint64_t w = 16110463;
  const std::uint64_t cycles = 2099;
  // Distribute the work evenly over the cycles (average ~7676 < P).
  std::uint64_t left = w;
  for (std::uint64_t i = 0; i < cycles; ++i) {
    const auto use = static_cast<std::uint32_t>(left / (cycles - i));
    m.charge_expand_cycle(use);
    left -= use;
  }
  EXPECT_EQ(left, 0u);
  for (int i = 0; i < 172; ++i) m.charge_lb_round();
  EXPECT_NEAR(m.clock().efficiency(), 0.905, 0.01);
}

TEST(Machine, EfficiencyOfIdleMachineIsOne) {
  Machine m(4, cm2_cost_model());
  EXPECT_DOUBLE_EQ(m.clock().efficiency(), 1.0);
}

TEST(Machine, FullyBusyNoLbIsEfficiencyOne) {
  Machine m(16, cm2_cost_model());
  m.charge_expand_cycle(16);
  EXPECT_DOUBLE_EQ(m.clock().efficiency(), 1.0);
}

TEST(Machine, NeighborRoundCheaperThanLbRound) {
  Machine m(16, cm2_cost_model());
  m.charge_neighbor_round();
  const double neighbor = m.clock().elapsed;
  m.reset_clock();
  m.charge_lb_round();
  EXPECT_LT(neighbor, m.clock().elapsed);
}

TEST(MachineClock, DiffAndAccumulate) {
  Machine m(8, cm2_cost_model());
  m.charge_expand_cycle(8);
  const MachineClock snap = m.clock();
  m.charge_expand_cycle(4);
  m.charge_lb_round();
  const MachineClock diff = m.clock() - snap;
  EXPECT_EQ(diff.expand_cycles, 1u);
  EXPECT_EQ(diff.lb_rounds, 1u);
  EXPECT_EQ(diff.nodes_expanded, 4u);
  EXPECT_DOUBLE_EQ(diff.elapsed, 30.0 + 13.0);

  MachineClock sum = snap;
  sum += diff;
  EXPECT_DOUBLE_EQ(sum.elapsed, m.clock().elapsed);
  EXPECT_EQ(sum.nodes_expanded, m.clock().nodes_expanded);
}

TEST(Machine, ResetClock) {
  Machine m(8, cm2_cost_model());
  m.charge_expand_cycle(8);
  m.reset_clock();
  EXPECT_DOUBLE_EQ(m.clock().elapsed, 0.0);
  EXPECT_EQ(m.clock().expand_cycles, 0u);
}

}  // namespace
}  // namespace simdts::simd
