#include "tsp/tsp.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <tuple>

#include "lb/engine.hpp"
#include "search/serial.hpp"

namespace simdts::tsp {
namespace {

using search::kUnbounded;

TEST(Tsp, RejectsBadArguments) {
  EXPECT_THROW(Tsp(0, 1), ConfigError);
  EXPECT_THROW(Tsp(17, 1), ConfigError);
  EXPECT_THROW(Tsp(3, std::vector<std::int32_t>{1, 2}), ConfigError);
  // Asymmetric matrix.
  EXPECT_THROW(Tsp(2, std::vector<std::int32_t>{0, 1, 2, 0}),
               ConfigError);
  // Non-zero diagonal.
  EXPECT_THROW(Tsp(2, std::vector<std::int32_t>{1, 5, 5, 0}),
               ConfigError);
}

TEST(Tsp, DistancesAreSymmetricAndSeeded) {
  const Tsp a(8, 42);
  const Tsp b(8, 42);
  const Tsp c(8, 43);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(a.distance(i, j), a.distance(j, i));
      EXPECT_EQ(a.distance(i, j), b.distance(i, j));
      if (a.distance(i, j) != c.distance(i, j)) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
  EXPECT_EQ(a.distance(3, 3), 0);
}

TEST(Tsp, ExplicitMatrixRoundTrip) {
  // A 4-city square: side 1, diagonal 2; optimal tour follows the sides.
  const std::vector<std::int32_t> square{
      0, 1, 2, 1,
      1, 0, 1, 2,
      2, 1, 0, 1,
      1, 2, 1, 0};
  const Tsp t(4, square);
  EXPECT_EQ(t.brute_force_optimal(), 4);
  const auto bnb = search::serial_branch_and_bound(t);
  EXPECT_EQ(bnb.best, 4);
}

TEST(Tsp, RootAtCityZero) {
  const Tsp t(6, 1);
  const auto root = t.root();
  EXPECT_EQ(root.last, 0);
  EXPECT_EQ(root.count, 1);
  EXPECT_EQ(root.cost, 0);
  EXPECT_FALSE(t.is_goal(root));
}

TEST(Tsp, SingleCityIsTrivial) {
  const Tsp t(1, 9);
  EXPECT_TRUE(t.is_goal(t.root()));
  EXPECT_EQ(t.f_value(t.root()), 0);
  EXPECT_EQ(t.brute_force_optimal(), 0);
}

TEST(Tsp, LowerBoundIsAdmissibleAlongPaths) {
  const Tsp t(9, 7);
  // Walk random DFS paths; f may fluctuate but must never exceed the cost
  // of any completion — check against the brute-force optimum at the root.
  EXPECT_LE(t.f_value(t.root()), t.brute_force_optimal());
  // And goals carry exactly their tour cost.
  std::vector<Tsp::Node> stack{t.root()};
  search::NextBound next;
  std::vector<Tsp::Node> children;
  std::int32_t best_seen = INT32_MAX;
  while (!stack.empty()) {
    const auto n = stack.back();
    stack.pop_back();
    if (t.is_goal(n)) {
      best_seen = std::min(best_seen, n.cost);
      EXPECT_EQ(t.f_value(n), n.cost);
      continue;
    }
    children.clear();
    t.expand(n, kUnbounded, children, next);
    // Root-level admissibility for every prefix: f <= best completion.
    stack.insert(stack.end(), children.begin(), children.end());
  }
  EXPECT_EQ(best_seen, t.brute_force_optimal());
}

class TspInstances
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(TspInstances, SerialBnbMatchesBruteForce) {
  const auto [n, seed] = GetParam();
  const Tsp t(n, seed);
  const auto bnb = search::serial_branch_and_bound(t);
  EXPECT_EQ(bnb.best, t.brute_force_optimal());
  EXPECT_GE(bnb.goals_found, 1u);
}

TEST_P(TspInstances, ParallelBnbMatchesBruteForce) {
  const auto [n, seed] = GetParam();
  const Tsp t(n, seed);
  for (const std::uint32_t p : {4u, 64u}) {
    simd::Machine machine(p, simd::cm2_cost_model());
    lb::Engine<Tsp> engine(t, machine, lb::gp_dk());
    const auto result = engine.run_branch_and_bound();
    EXPECT_EQ(result.best, t.brute_force_optimal()) << "P=" << p;
  }
}

TEST_P(TspInstances, BnbPrunesAgainstExhaustive) {
  const auto [n, seed] = GetParam();
  const Tsp t(n, seed);
  const auto exhaustive = search::serial_dfs(t, t.root(), kUnbounded);
  const auto bnb = search::serial_branch_and_bound(t);
  EXPECT_LT(bnb.nodes_expanded, exhaustive.nodes_expanded);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, TspInstances,
    ::testing::Combine(::testing::Values(5, 7, 9, 10),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Tsp, ParallelBnbConsistentAcrossSchemes) {
  const Tsp t(11, 5);
  const auto expected = search::serial_branch_and_bound(t).best;
  for (const auto& cfg :
       {lb::gp_static(0.75), lb::ngp_static(0.9), lb::gp_dp()}) {
    simd::Machine machine(32, simd::cm2_cost_model());
    lb::Engine<Tsp> engine(t, machine, cfg);
    EXPECT_EQ(engine.run_branch_and_bound().best, expected) << cfg.name();
  }
}

TEST(Tsp, InitialBoundPrunesHarder) {
  const Tsp t(10, 11);
  const auto opt = t.brute_force_optimal();
  const auto loose = search::serial_branch_and_bound(t);
  const auto tight = search::serial_branch_and_bound(t, opt);
  EXPECT_EQ(tight.best, opt);
  EXPECT_LE(tight.nodes_expanded, loose.nodes_expanded);
  // An initial bound below the optimum finds nothing.
  const auto impossible = search::serial_branch_and_bound(t, opt - 1);
  EXPECT_EQ(impossible.best, search::kUnbounded);
}

}  // namespace
}  // namespace simdts::tsp
