#include "lb/matching.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace simdts::lb {
namespace {

using simd::kNoPe;
using simd::Pair;

// Flag helpers: PEs listed are set.
std::vector<std::uint8_t> flags(std::size_t p,
                                std::initializer_list<std::size_t> set) {
  std::vector<std::uint8_t> f(p, 0);
  for (const std::size_t i : set) f[i] = 1;
  return f;
}

TEST(Matching, NgpMatchesInPeOrder) {
  Matcher m(MatchScheme::kNGP);
  const auto busy = flags(8, {0, 1, 2, 3, 4, 7});
  const auto idle = flags(8, {5, 6});
  const auto pairs = m.match(busy, idle);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (Pair{0, 5}));
  EXPECT_EQ(pairs[1], (Pair{1, 6}));
  EXPECT_EQ(m.pointer(), kNoPe);  // nGP keeps no pointer
}

TEST(Matching, NgpRepeatsSameDonors) {
  // The motivating flaw: the same early processors donate every phase.
  Matcher m(MatchScheme::kNGP);
  const auto busy = flags(8, {0, 1, 2, 3, 4, 7});
  const auto idle = flags(8, {5, 6});
  const auto first = m.match(busy, idle);
  const auto second = m.match(busy, idle);
  EXPECT_EQ(first, second);
}

TEST(Matching, PaperFigure2Example) {
  // Figure 2 of the paper, 0-indexed: processors 0..7, PEs 5 and 6 idle,
  // the rest busy, global pointer at PE 4.
  Matcher gp(MatchScheme::kGP);
  Matcher ngp(MatchScheme::kNGP);
  const auto busy = flags(8, {0, 1, 2, 3, 4, 7});
  const auto idle = flags(8, {5, 6});

  // nGP matches idle 5, 6 to busy 0, 1.
  const auto ngp_pairs = ngp.match(busy, idle);
  ASSERT_EQ(ngp_pairs.size(), 2u);
  EXPECT_EQ(ngp_pairs[0], (Pair{0, 5}));
  EXPECT_EQ(ngp_pairs[1], (Pair{1, 6}));

  // GP with pointer at 4 matches them to busy 7 and 0 and advances the
  // pointer to 0.
  // (Seed the pointer by faking a previous phase where PE 4 donated last:
  //  busy = {4}, idle = {5}.)
  const auto seed = gp.match(flags(8, {4}), flags(8, {5}));
  ASSERT_EQ(seed.size(), 1u);
  EXPECT_EQ(gp.pointer(), 4u);

  const auto gp_pairs = gp.match(busy, idle);
  ASSERT_EQ(gp_pairs.size(), 2u);
  EXPECT_EQ(gp_pairs[0], (Pair{7, 5}));
  EXPECT_EQ(gp_pairs[1], (Pair{0, 6}));
  EXPECT_EQ(gp.pointer(), 0u);

  // Example 2 (second phase, same census): nGP repeats itself; GP moves on
  // to busy 1 and 2.
  const auto ngp_again = ngp.match(busy, idle);
  EXPECT_EQ(ngp_again, ngp_pairs);
  const auto gp_again = gp.match(busy, idle);
  ASSERT_EQ(gp_again.size(), 2u);
  EXPECT_EQ(gp_again[0], (Pair{1, 5}));
  EXPECT_EQ(gp_again[1], (Pair{2, 6}));
  EXPECT_EQ(gp.pointer(), 2u);
}

TEST(Matching, GpCyclesThroughAllDonorsBeforeRepeating) {
  Matcher gp(MatchScheme::kGP);
  const std::size_t p = 6;
  const auto busy = flags(p, {0, 1, 2, 3, 4});
  const auto idle = flags(p, {5});
  std::vector<simd::PeIndex> donors;
  for (int phase = 0; phase < 5; ++phase) {
    const auto pairs = gp.match(busy, idle);
    ASSERT_EQ(pairs.size(), 1u);
    donors.push_back(pairs[0].donor);
  }
  // Each of the five busy PEs donated exactly once.
  std::sort(donors.begin(), donors.end());
  EXPECT_EQ(donors, (std::vector<simd::PeIndex>{0, 1, 2, 3, 4}));
  // The sixth phase starts the cycle again.
  const auto pairs = gp.match(busy, idle);
  ASSERT_EQ(pairs.size(), 1u);
}

TEST(Matching, GpPointerUnchangedWhenNoPairs) {
  Matcher gp(MatchScheme::kGP);
  (void)gp.match(flags(4, {1}), flags(4, {2}));
  EXPECT_EQ(gp.pointer(), 1u);
  (void)gp.match(flags(4, {}), flags(4, {2}));
  EXPECT_EQ(gp.pointer(), 1u);
  (void)gp.match(flags(4, {3}), flags(4, {}));
  EXPECT_EQ(gp.pointer(), 1u);
}

TEST(Matching, ResetClearsPointer) {
  Matcher gp(MatchScheme::kGP);
  (void)gp.match(flags(4, {1}), flags(4, {2}));
  gp.reset();
  EXPECT_EQ(gp.pointer(), kNoPe);
}

TEST(Matching, MoreIdleThanBusyServesOnlyFirstIdle) {
  Matcher m(MatchScheme::kNGP);
  const auto pairs = m.match(flags(6, {3}), flags(6, {0, 1, 2, 4, 5}));
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (Pair{3, 0}));
}

TEST(NeighborPairs, RingTransfersToRightNeighbor) {
  const auto busy = flags(5, {0, 2, 3});
  const auto idle = flags(5, {1, 4});
  const auto pairs = neighbor_pairs(busy, idle);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (Pair{0, 1}));
  EXPECT_EQ(pairs[1], (Pair{3, 4}));
}

TEST(NeighborPairs, WrapsAroundTheRing) {
  const auto busy = flags(4, {3});
  const auto idle = flags(4, {0});
  const auto pairs = neighbor_pairs(busy, idle);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (Pair{3, 0}));
}

TEST(NeighborPairs, NoTransferBetweenBusyNeighbors) {
  const auto busy = flags(4, {0, 1, 2, 3});
  const auto idle = flags(4, {});
  EXPECT_TRUE(neighbor_pairs(busy, idle).empty());
}

}  // namespace
}  // namespace simdts::lb
