#include "simd/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace simdts::simd {
namespace {

TEST(CostModel, Cm2DefaultsMatchPaper) {
  const CostModel cm = cm2_cost_model();
  EXPECT_DOUBLE_EQ(cm.t_expand, 30.0);
  EXPECT_DOUBLE_EQ(cm.t_lb, 13.0);
  EXPECT_EQ(cm.topology, Topology::kCm2Constant);
}

TEST(CostModel, Cm2CostIndependentOfP) {
  const CostModel cm = cm2_cost_model();
  EXPECT_DOUBLE_EQ(cm.lb_round_cost(16), cm.lb_round_cost(65536));
}

TEST(CostModel, MultiplierScalesLbCost) {
  const CostModel cm = fast_cpu_cost_model(12.0);
  EXPECT_DOUBLE_EQ(cm.lb_round_cost(8192), 13.0 * 12.0);
  EXPECT_DOUBLE_EQ(cm.t_expand, 30.0);
}

TEST(CostModel, TopologyScaleIsOneAtNormalizeP) {
  for (const CostModel cm :
       {cm2_cost_model(), hypercube_cost_model(), mesh_cost_model()}) {
    EXPECT_DOUBLE_EQ(cm.topology_scale(CostModel::kNormalizeP), 1.0);
    EXPECT_DOUBLE_EQ(cm.lb_round_cost(CostModel::kNormalizeP), cm.t_lb);
  }
}

TEST(CostModel, HypercubeGrowsAsLogSquared) {
  const CostModel cm = hypercube_cost_model();
  // Quadrupling log2(P) from 2^4 to 2^16 must scale the cost by 16.
  EXPECT_NEAR(cm.lb_round_cost(1 << 16) / cm.lb_round_cost(1 << 4), 16.0,
              1e-9);
}

TEST(CostModel, MeshGrowsAsSqrtP) {
  const CostModel cm = mesh_cost_model();
  EXPECT_NEAR(cm.lb_round_cost(4096) / cm.lb_round_cost(1024), 2.0, 1e-9);
}

TEST(CostModel, TopologyCostsAreMonotoneInP) {
  for (const CostModel cm : {hypercube_cost_model(), mesh_cost_model()}) {
    double prev = 0.0;
    for (std::uint32_t p = 16; p <= (1u << 16); p *= 2) {
      const double c = cm.lb_round_cost(p);
      EXPECT_GT(c, prev) << "P=" << p;
      prev = c;
    }
  }
}

TEST(CostModel, LbOverExpandRatio) {
  const CostModel cm = cm2_cost_model();
  EXPECT_NEAR(cm.lb_over_expand(8192), 13.0 / 30.0, 1e-12);
}

TEST(CostModel, TinyMachinesDoNotBlowUp) {
  for (const CostModel cm :
       {cm2_cost_model(), hypercube_cost_model(), mesh_cost_model()}) {
    EXPECT_GT(cm.lb_round_cost(1), 0.0);
    EXPECT_TRUE(std::isfinite(cm.lb_round_cost(1)));
  }
}

}  // namespace
}  // namespace simdts::simd
