// SimdSan's mutation-test suite: each determinism discipline is deliberately
// broken behind a test-only hook and the test asserts the sanitizer fires
// with the *right* diagnostic (SanitizerError::invariant()), not merely that
// something threw.  A detector you have never seen detect is indistinguishable
// from a detector that is wired to nothing.
//
// The file compiles in both build flavors.  In a default build only the
// compiled-in flag is checked here — the symbol-level zero-cost proof is the
// lint.sanitizer_zero_cost ctest (nm over libsimdts.a), and the runtime
// proof is bench/perf_harness's sanitizer section.
#include "sanitizer/sanitizer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#ifdef SIMDTS_SANITIZE
#include <cstdint>
#include <thread>
#include <utility>

#include "fault/fault.hpp"
#include "lb/config.hpp"
#include "lb/engine.hpp"
#include "search/work_stack.hpp"
#include "simd/bitplane.hpp"
#include "simd/cost_model.hpp"
#include "simd/machine.hpp"
#include "synthetic/tree.hpp"
#endif

namespace simdts {
namespace {

TEST(Sanitizer, CompiledInFlagMatchesBuild) {
#ifdef SIMDTS_SANITIZE
  EXPECT_TRUE(san::kCompiledIn);
#else
  // The zero-overhead contract of the default build: the flag is the only
  // thing this TU may see of the sanitizer (symbols are checked by
  // lint.sanitizer_zero_cost).
  EXPECT_FALSE(san::kCompiledIn);
#endif
}

TEST(Sanitizer, ErrorCarriesInvariantTag) {
  const SanitizerError e("tail-bits", "plane has bits past size()");
  EXPECT_EQ(e.invariant(), "tail-bits");
  EXPECT_STREQ(e.what(), "[sanitizer:tail-bits] plane has bits past size()");
}

#ifdef SIMDTS_SANITIZE

/// Clears every mutation hook and re-arms the sanitizer on scope exit, so a
/// failing test cannot leak a broken-on-purpose configuration into the next.
struct MutationGuard {
  MutationGuard() { san::mutation().reset(); }
  ~MutationGuard() {
    san::mutation().reset();
    san::set_armed(true);
  }
};

/// Runs `fn` and asserts it throws SanitizerError naming `invariant`.
template <typename Fn>
void expect_fires(const char* invariant, Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
    FAIL() << "expected SanitizerError(" << invariant << "), nothing thrown";
  } catch (const SanitizerError& e) {
    EXPECT_EQ(e.invariant(), invariant) << "wrong diagnostic: " << e.what();
  }
}

/// A moderate synthetic-tree run that exercises expansion, lb phases and
/// (with a plan) the kill/recovery path — the scenario every engine-level
/// mutation test perturbs.
lb::RunStats run_synthetic(std::uint32_t p,
                           const fault::FaultPlan* plan = nullptr) {
  const synthetic::Tree tree(synthetic::Params{9013, 4, 0.395, 14});
  simd::Machine machine(p, simd::cm2_cost_model());
  lb::Engine<synthetic::Tree> engine(tree, machine, lb::gp_static(0.9));
  if (plan != nullptr) engine.arm_faults(plan);
  return engine.run();
}

// ---------------------------------------------------------------------------
// Positive control: armed, unmutated runs pass every check and the checks
// never change simulated results.
// ---------------------------------------------------------------------------

TEST(Sanitizer, CleanRunPassesAllChecksArmedAndDisarmed) {
  MutationGuard guard;
  san::set_armed(true);
  const lb::RunStats armed = run_synthetic(64);
  san::set_armed(false);
  const lb::RunStats disarmed = run_synthetic(64);
  EXPECT_EQ(armed.total.nodes_expanded, disarmed.total.nodes_expanded);
  EXPECT_EQ(armed.total.lb_phases, disarmed.total.lb_phases);
  EXPECT_EQ(armed.goals_found, disarmed.goals_found);
}

TEST(Sanitizer, CleanFaultRunPassesAllChecks) {
  MutationGuard guard;
  const fault::FaultPlan plan =
      fault::FaultPlan::random_kills(77, 64, 9, 5, 60);
  EXPECT_NO_THROW(run_synthetic(64, &plan));
}

// ---------------------------------------------------------------------------
// Mutation tests: one per invariant.
// ---------------------------------------------------------------------------

TEST(SanitizerMutation, ShrunkWordClaimTripsWordOwnership) {
  MutationGuard guard;
  san::mutation().shrink_word_claim = true;
  // P=64 is a single flag word: the shrunk claim is empty, so the very
  // first write-back is outside it.
  expect_fires("word-ownership", [] { run_synthetic(64); });
}

TEST(SanitizerMutation, ExpandingADeadLaneTripsDeadLane) {
  MutationGuard guard;
  san::mutation().expand_dead_lane = true;
  const fault::FaultPlan plan({{2, fault::FaultKind::kKillPe, 0, 0}});
  // With the dead mask ignored, lane 0 re-enters the active set the cycle
  // after its kill; the shadow plane catches the expansion read.
  expect_fires("dead-lane", [&] { run_synthetic(64, &plan); });
}

TEST(SanitizerMutation, DonationFromADeadLaneTripsDeadLane) {
  MutationGuard guard;
  san::mutation().donate_from_dead = true;
  const fault::FaultPlan plan({{2, fault::FaultKind::kKillPe, 0, 0}});
  expect_fires("dead-lane", [&] { run_synthetic(64, &plan); });
}

TEST(SanitizerMutation, DuplicateMatchPairTripsDoubleDonation) {
  MutationGuard guard;
  san::mutation().duplicate_match_pair = true;
  // Fires at the first rendezvous round that matches two or more pairs.
  expect_fires("double-donation", [] { run_synthetic(64); });
}

TEST(SanitizerMutation, CorruptedTailTripsTailBits) {
  MutationGuard guard;
  san::mutation().corrupt_tail = true;
  // P=100 leaves 28 invalid tail bits in the last word for the mutation to
  // flip (at P%64==0 there is no tail and the mutation is a no-op).
  expect_fires("tail-bits", [] { run_synthetic(100); });
}

TEST(SanitizerMutation, DroppedCensusDeltaTripsCensusDivergence) {
  MutationGuard guard;
  san::mutation().drop_census_delta = true;
  expect_fires("census-divergence", [] { run_synthetic(64); });
}

TEST(SanitizerMutation, UnsortedFaultPlanTripsPlanOrder) {
  MutationGuard guard;
  san::mutation().skip_plan_sort = true;
  expect_fires("plan-order", [] {
    const fault::FaultPlan plan({{50, fault::FaultKind::kKillPe, 3, 0},
                                 {10, fault::FaultKind::kKillPe, 1, 0}});
    (void)plan;  // unreachable: the ctor's order verification throws
  });
}

// ---------------------------------------------------------------------------
// Direct checks on the primitive detectors.
// ---------------------------------------------------------------------------

TEST(SanitizerPrimitives, StackUnderflowIsCaught) {
  MutationGuard guard;
  search::WorkStack<int> stack;
  expect_fires("stack-underflow", [&] { stack.pop(); });
  expect_fires("stack-underflow", [&] { stack.take_bottom(); });
  expect_fires("stack-underflow", [&] { (void)stack.top(); });
  stack.push(7);
  EXPECT_EQ(stack.pop(), 7);  // a legal pop stays legal
}

TEST(SanitizerPrimitives, LaneBoundsAreCaught) {
  MutationGuard guard;
  simd::BitPlane plane(10);
  expect_fires("lane-bounds", [&] { (void)plane.test(10); });
  expect_fires("lane-bounds", [&] { plane.set(10); });
  EXPECT_NO_THROW(plane.set(9));
}

TEST(SanitizerPrimitives, NestedWordClaimOnOneThreadIsCaught) {
  MutationGuard guard;
  san::ClaimDomain domain;
  san::WordClaim outer(domain, 0, 0, 4);
  expect_fires("word-ownership",
               [&] { san::WordClaim inner(domain, 1, 8, 12); });
  // Writes inside the claim pass; outside it they fail.
  EXPECT_NO_THROW(san::check_word_write(domain, 2));
  expect_fires("word-ownership", [&] { san::check_word_write(domain, 4); });
}

TEST(SanitizerPrimitives, ClaimsInSeparateDomainsDoNotCollide) {
  MutationGuard guard;
  // Independent engines (one per sweep grid point) legitimately run the
  // same word ranges at the same time; only claims within one domain race.
  san::ClaimDomain a;
  san::ClaimDomain b;
  san::WordClaim claim_a(a, 0, 0, 4);
  EXPECT_NO_THROW(san::check_word_write(a, 2));
  // A second thread claiming the same words of a *different* domain is fine.
  std::thread other([&] {
    san::WordClaim claim_b(b, 0, 0, 4);
    EXPECT_NO_THROW(san::check_word_write(b, 2));
  });
  other.join();
}

TEST(SanitizerPrimitives, WritesWithNoLiveClaimsAreFree) {
  MutationGuard guard;
  // Serial sections (census updates, transfers) hold no claims; the
  // ownership discipline binds only during a partitioned dispatch.
  san::ClaimDomain domain;
  EXPECT_NO_THROW(san::check_word_write(domain, 123456));
}

TEST(SanitizerPrimitives, DisarmedChecksNeverFire) {
  MutationGuard guard;
  san::set_armed(false);
  search::WorkStack<int> stack;
  EXPECT_NO_THROW((void)stack.size());
  simd::BitPlane plane(10);
  EXPECT_NO_THROW((void)plane.test(10));  // out of range, but disarmed
  const std::uint64_t cycles[] = {50, 10};
  EXPECT_NO_THROW(san::verify_plan_cycles(cycles, 2));
}

TEST(SanitizerPrimitives, DeadLaneShadowTracksKillAndRevive) {
  MutationGuard guard;
  san::DeadLaneShadow shadow;
  shadow.resize(8);
  EXPECT_NO_THROW(shadow.check_alive(3, "expand"));
  shadow.mark_dead(3);
  expect_fires("dead-lane", [&] { shadow.check_alive(3, "expand"); });
  shadow.mark_alive(3);
  EXPECT_NO_THROW(shadow.check_alive(3, "expand"));
}

#endif  // SIMDTS_SANITIZE

}  // namespace
}  // namespace simdts
