#include "search/serial.hpp"

#include <gtest/gtest.h>

#include "puzzle/fifteen.hpp"
#include "puzzle/instances.hpp"
#include "queens/queens.hpp"
#include "search/bound.hpp"

namespace simdts {
namespace {

using puzzle::Board;
using puzzle::FifteenPuzzle;
using search::kUnbounded;
using search::serial_dfs;
using search::serial_ida;

TEST(SerialIda, GoalInstanceSolvesImmediately) {
  const FifteenPuzzle p(Board::goal());
  const auto r = serial_ida(p);
  EXPECT_EQ(r.solution_bound, 0);
  EXPECT_EQ(r.goals_found, 1u);
  EXPECT_EQ(r.iterations.size(), 1u);
}

class EasyInstances : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EasyInstances, OptimalLengthIsExact) {
  const auto& inst = puzzle::easy_instances()[GetParam()];
  const FifteenPuzzle p(inst.board());
  const auto r = serial_ida(p);
  EXPECT_EQ(r.solution_bound, inst.optimal) << inst.name;
  EXPECT_GE(r.goals_found, 1u);
}

TEST_P(EasyInstances, ThresholdsIncreaseByTwo) {
  // Manhattan parity: successive IDA* thresholds on the 15-puzzle differ by
  // an even amount (in practice exactly 2 on these instances).
  const auto& inst = puzzle::easy_instances()[GetParam()];
  const FifteenPuzzle p(inst.board());
  const auto r = serial_ida(p);
  search::Bound prev = p.f_value(p.root());
  for (std::size_t i = 1; i < r.iterations.size(); ++i) {
    const search::Bound next = r.iterations[i - 1].next_bound;
    EXPECT_GT(next, prev);
    EXPECT_EQ((next - prev) % 2, 0);
    prev = next;
  }
}

TEST_P(EasyInstances, IterationsGrowMonotonically) {
  const auto& inst = puzzle::easy_instances()[GetParam()];
  const FifteenPuzzle p(inst.board());
  const auto r = serial_ida(p);
  for (std::size_t i = 1; i < r.iterations.size(); ++i) {
    EXPECT_GE(r.iterations[i].nodes_expanded,
              r.iterations[i - 1].nodes_expanded)
        << "IDA* iteration " << i << " searched fewer nodes than " << i - 1;
  }
}

INSTANTIATE_TEST_SUITE_P(All, EasyInstances,
                         ::testing::Range<std::size_t>(0, 12));

TEST(SerialIda, TotalsAreSumOfIterations) {
  const auto& inst = puzzle::easy_instances()[9];
  const FifteenPuzzle p(inst.board());
  const auto r = serial_ida(p);
  std::uint64_t sum = 0;
  for (const auto& it : r.iterations) sum += it.nodes_expanded;
  EXPECT_EQ(r.total_expanded, sum);
  EXPECT_EQ(r.final_expanded, r.iterations.back().nodes_expanded);
}

TEST(SerialIda, BudgetAborts) {
  const auto inst = puzzle::korf_instances()[0];
  const FifteenPuzzle p(inst.board());
  const auto r = serial_ida(p, 1000);
  EXPECT_EQ(r.solution_bound, kUnbounded);
  EXPECT_GT(r.total_expanded, 1000u);
  EXPECT_LT(r.total_expanded, 1000000u);
}

TEST(SerialDfs, BoundBelowRootFindsNothing) {
  const auto& inst = puzzle::easy_instances()[5];
  const FifteenPuzzle p(inst.board());
  const auto root = p.root();
  const auto r = serial_dfs(p, root, p.f_value(root) - 2);
  EXPECT_EQ(r.goals_found, 0u);
  // Nothing below the bound: the root is expanded, all children pruned.
  EXPECT_EQ(r.nodes_expanded, 1u);
  EXPECT_NE(r.next_bound, kUnbounded);
}

class QueensSizes : public ::testing::TestWithParam<int> {};

TEST_P(QueensSizes, CountsMatchKnownValues) {
  const queens::Queens q(GetParam());
  const auto r = serial_dfs(q, q.root(), kUnbounded);
  EXPECT_EQ(r.goals_found, queens::Queens::known_solutions(GetParam()));
  EXPECT_EQ(r.next_bound, kUnbounded);
}

INSTANTIATE_TEST_SUITE_P(Boards, QueensSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9));

TEST(QueensSerial, IdaTerminatesInOneIteration) {
  const queens::Queens q(6);
  const auto r = serial_ida(q);
  EXPECT_EQ(r.iterations.size(), 1u);
  EXPECT_EQ(r.goals_found, 4u);
  EXPECT_EQ(r.solution_bound, 0);
}

TEST(Bound, Describe) {
  EXPECT_EQ(search::describe(42), "42");
  EXPECT_EQ(search::describe(kUnbounded), "unbounded");
}

}  // namespace
}  // namespace simdts
