// The vector execution backend's oracle gate and the expand_batch contract.
//
// The contract under test (docs/performance.md "Vector backend"): with the
// scalar engine as the bit-exact reference, the vector backend must produce
// *identical* IterationStats (nodes expanded, goals, lb metrics, simulated
// clock), identical goal-node sequences, and identical behavior across host
// thread counts — on the fig4a-style grid of synthetic workloads and machine
// sizes, on real 15-puzzle IDA* runs, and through the scalar fallback for
// domains without a batch kernel (including under an armed FaultPlan, whose
// dead lanes must never enter a batch).
//
// Everything engine-level runs only when SIMDTS_VECTOR_BACKEND is compiled
// in; the search::expand_batch dispatch layer and the concept checks are
// always live, and the OFF build checks that requesting the vector backend
// is a loud ConfigError, not a silent fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "lb/engine.hpp"
#include "simd/machine.hpp"
#include "simd/thread_pool.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"
#include "search/problem.hpp"
#include "synthetic/tree.hpp"
#include "tsp/tsp.hpp"
#include "vec/expand.hpp"

namespace simdts::lb {
namespace {

using puzzle::FifteenPuzzle;
using search::kUnbounded;
using synthetic::Tree;

// ---------------------------------------------------------------------------
// The expand_batch dispatch layer (always compiled).
// ---------------------------------------------------------------------------

/// A TreeProblem that deliberately lacks expand_batch: must route through
/// the scalar fallback.
struct NoBatchTree {
  using Node = Tree::Node;
  explicit NoBatchTree(synthetic::Params p) : inner(p) {}
  [[nodiscard]] Node root() const { return inner.root(); }
  void expand(const Node& n, search::Bound b, std::vector<Node>& out,
              search::NextBound& nb) const {
    inner.expand(n, b, out, nb);
  }
  [[nodiscard]] bool is_goal(const Node& n) const { return inner.is_goal(n); }
  [[nodiscard]] search::Bound f_value(const Node& n) const {
    return inner.f_value(n);
  }
  Tree inner;
};

/// A goal-bearing TreeProblem without expand_batch (wraps the 15-puzzle), so
/// the fallback path is exercised with goals and NextBound pruning.
struct NoBatchPuzzle {
  using Node = FifteenPuzzle::Node;
  explicit NoBatchPuzzle(puzzle::Board b) : inner(b) {}
  [[nodiscard]] Node root() const { return inner.root(); }
  void expand(const Node& n, search::Bound b, std::vector<Node>& out,
              search::NextBound& nb) const {
    inner.expand(n, b, out, nb);
  }
  [[nodiscard]] bool is_goal(const Node& n) const { return inner.is_goal(n); }
  [[nodiscard]] search::Bound f_value(const Node& n) const {
    return inner.f_value(n);
  }
  FifteenPuzzle inner;
};

/// A TreeProblem with an instrumented expand_batch member: dispatch must
/// prefer it over the fallback.
struct CountingBatchTree {
  using Node = Tree::Node;
  explicit CountingBatchTree(synthetic::Params p) : inner(p) {}
  [[nodiscard]] Node root() const { return inner.root(); }
  void expand(const Node& n, search::Bound b, std::vector<Node>& out,
              search::NextBound& nb) const {
    inner.expand(n, b, out, nb);
  }
  [[nodiscard]] bool is_goal(const Node& n) const { return inner.is_goal(n); }
  [[nodiscard]] search::Bound f_value(const Node& n) const {
    return inner.f_value(n);
  }
  void expand_batch(const Node* nodes, std::uint32_t count, search::Bound b,
                    std::vector<Node>& out, std::uint32_t* child_counts,
                    search::NextBound& nb) const {
    ++batch_calls;
    search::expand_batch_fallback(inner, nodes, count, b, out, child_counts,
                                  nb);
  }
  Tree inner;
  mutable std::uint64_t batch_calls = 0;
};

static_assert(search::TreeProblem<NoBatchTree>);
static_assert(!search::BatchTreeProblem<NoBatchTree>);
static_assert(search::TreeProblem<NoBatchPuzzle>);
static_assert(!search::BatchTreeProblem<NoBatchPuzzle>);
static_assert(search::BatchTreeProblem<CountingBatchTree>);
// The shipped domains themselves don't carry expand_batch members; their
// SIMD kernels live in vec::BatchExpander specializations.
static_assert(!search::BatchTreeProblem<Tree>);
static_assert(!search::BatchTreeProblem<FifteenPuzzle>);

/// Breadth-first pool of tree nodes to batch up in tests.
template <typename P>
std::vector<typename P::Node> node_pool(const P& p, std::size_t want,
                                        search::Bound bound) {
  std::vector<typename P::Node> pool;
  std::vector<typename P::Node> frontier{p.root()};
  search::NextBound nb;
  while (pool.size() < want && !frontier.empty()) {
    std::vector<typename P::Node> next;
    for (const auto& n : frontier) {
      pool.push_back(n);
      if (!p.is_goal(n)) p.expand(n, bound, next, nb);
    }
    frontier = std::move(next);
  }
  if (pool.size() > want) pool.resize(want);
  return pool;
}

TEST(ExpandBatch, FallbackMatchesPerNodeExpand) {
  const Tree tree(synthetic::Params{9013, 4, 0.395, 14});  // ~940 nodes
  const auto nodes = node_pool(tree, 64, kUnbounded);
  ASSERT_GE(nodes.size(), 32u);

  std::vector<Tree::Node> batched;
  std::vector<std::uint32_t> counts(nodes.size());
  search::NextBound batched_nb;
  search::expand_batch_fallback(tree, nodes.data(),
                                static_cast<std::uint32_t>(nodes.size()),
                                kUnbounded, batched, counts.data(),
                                batched_nb);

  std::vector<Tree::Node> serial;
  search::NextBound serial_nb;
  for (std::size_t j = 0; j < nodes.size(); ++j) {
    const std::size_t before = serial.size();
    tree.expand(nodes[j], kUnbounded, serial, serial_nb);
    EXPECT_EQ(counts[j], serial.size() - before) << "slot " << j;
  }
  EXPECT_EQ(batched, serial);
  EXPECT_EQ(batched_nb.has_value(), serial_nb.has_value());
}

TEST(ExpandBatch, DispatchPrefersTheMemberKernel) {
  const CountingBatchTree p(synthetic::Params{123, 4, 0.5, 12});
  const auto nodes = node_pool(p, 16, kUnbounded);
  std::vector<Tree::Node> out;
  std::vector<std::uint32_t> counts(nodes.size());
  search::NextBound nb;
  search::expand_batch(p, nodes.data(),
                       static_cast<std::uint32_t>(nodes.size()), kUnbounded,
                       out, counts.data(), nb);
  EXPECT_EQ(p.batch_calls, 1u);

  const NoBatchTree q(synthetic::Params{123, 4, 0.5, 12});
  std::vector<Tree::Node> out2;
  std::vector<std::uint32_t> counts2(nodes.size());
  search::NextBound nb2;
  search::expand_batch(q, nodes.data(),
                       static_cast<std::uint32_t>(nodes.size()), kUnbounded,
                       out2, counts2.data(), nb2);
  EXPECT_EQ(out, out2);
  EXPECT_EQ(counts, counts2);
}

#ifndef SIMDTS_VECTOR_BACKEND

TEST(VectorBackend, RequestingAbsentBackendThrows) {
  const Tree tree(synthetic::Params{1, 4, 0.3, 8});
  simd::Machine machine(64, simd::cm2_cost_model());
  Engine<Tree> engine(tree, machine, gp_dk());
  EXPECT_EQ(engine.backend(), ExecBackend::kScalar);
  EXPECT_NO_THROW(engine.set_backend(ExecBackend::kScalar));
  EXPECT_THROW(engine.set_backend(ExecBackend::kVector), ConfigError);
}

#else  // SIMDTS_VECTOR_BACKEND

// ---------------------------------------------------------------------------
// Batch-kernel unit oracles: the SIMD kernels against the scalar fallback,
// across batch sizes (including lone nodes and full 64-lane words).
// ---------------------------------------------------------------------------

template <typename P>
void expect_kernel_matches_fallback(const P& p,
                                    const std::vector<typename P::Node>& pool,
                                    search::Bound bound) {
  static_assert(vec::BatchExpander<P>::kVectorized);
  for (const std::uint32_t count : {1u, 2u, 3u, 17u, 33u, 64u}) {
    if (pool.size() < count) break;
    std::vector<typename P::Node> fast;
    std::vector<typename P::Node> ref;
    std::vector<std::uint32_t> fast_counts(count);
    std::vector<std::uint32_t> ref_counts(count);
    search::NextBound fast_nb;
    search::NextBound ref_nb;
    vec::BatchExpander<P>::expand(p, pool.data(), count, bound, fast,
                                  fast_counts.data(), fast_nb);
    search::expand_batch_fallback(p, pool.data(), count, bound, ref,
                                  ref_counts.data(), ref_nb);
    EXPECT_EQ(fast, ref) << "count " << count;
    EXPECT_EQ(fast_counts, ref_counts) << "count " << count;
    EXPECT_EQ(fast_nb.has_value(), ref_nb.has_value()) << "count " << count;
    if (ref_nb.has_value()) {
      EXPECT_EQ(fast_nb.value(), ref_nb.value()) << "count " << count;
    }
  }
}

TEST(VectorKernel, TreeBatchMatchesScalar) {
  // Seeds chosen so the trees actually grow (roughly 1k-13k nodes each);
  // many seeds die at the root with subcritical fertility.
  for (const auto& prm :
       {synthetic::Params{9013, 4, 0.395, 14},
        synthetic::Params{9011, 4, 0.400, 18},
        synthetic::Params{123, 4, 0.5, 12}, synthetic::Params{2718, 6, 0.3, 12},
        synthetic::Params{999, 8, 0.22, 12}}) {
    const Tree tree(prm);
    expect_kernel_matches_fallback(tree, node_pool(tree, 64, kUnbounded),
                                   kUnbounded);
  }
}

TEST(VectorKernel, TreeLeafDepthEmitsNothing) {
  const Tree tree(synthetic::Params{9, 4, 0.9, 3});
  // Deep pool: include nodes at max_depth so the leaf cutoff is exercised.
  const auto pool = node_pool(tree, 64, kUnbounded);
  expect_kernel_matches_fallback(tree, pool, kUnbounded);
}

TEST(VectorKernel, TreeBushyFallbackPathStillExact) {
  // max_children > 8 exceeds the kernel's slot cap: it must take the scalar
  // fallback internally and stay exact.
  const Tree tree(synthetic::Params{606, 12, 0.3, 6});
  expect_kernel_matches_fallback(tree, node_pool(tree, 64, kUnbounded),
                                 kUnbounded);
}

TEST(VectorKernel, FifteenBatchMatchesScalarAcrossBounds) {
  const auto& workloads = puzzle::test_workloads();
  for (std::size_t w = 0; w < 2 && w < workloads.size(); ++w) {
    const FifteenPuzzle p(workloads[w].board());
    const search::Bound f0 = p.f_value(p.root());
    // A tight bound forces pruning (NextBound must match); looser bounds
    // take more children.
    for (const search::Bound bound : {f0, static_cast<search::Bound>(f0 + 2),
                                      static_cast<search::Bound>(f0 + 8)}) {
      expect_kernel_matches_fallback(p, node_pool(p, 64, bound), bound);
    }
  }
}

TEST(VectorKernel, FifteenLinearConflictFallsBackExactly) {
  const auto& wl = puzzle::test_workloads()[0];
  const FifteenPuzzle p(wl.board(), puzzle::Heuristic::kLinearConflict);
  const search::Bound bound = p.f_value(p.root()) + 4;
  expect_kernel_matches_fallback(p, node_pool(p, 32, bound), bound);
}

// ---------------------------------------------------------------------------
// The oracle gate: whole engine runs, scalar vs vector, across the
// fig4a-style grid and across host thread counts.
// ---------------------------------------------------------------------------

template <typename P>
void expect_backends_agree_iteration(const P& problem, std::uint32_t p,
                                     const SchemeConfig& cfg,
                                     search::Bound bound) {
  simd::Machine m_scalar(p, simd::cm2_cost_model());
  Engine<P> scalar(problem, m_scalar, cfg);
  const IterationStats ref = scalar.run_iteration(bound);

  simd::Machine m_vec(p, simd::cm2_cost_model());
  Engine<P> vectored(problem, m_vec, cfg);
  vectored.set_backend(ExecBackend::kVector);
  const IterationStats got = vectored.run_iteration(bound);

  EXPECT_EQ(got, ref) << cfg.name() << " P=" << p;
  EXPECT_EQ(vectored.goal_nodes(), scalar.goal_nodes())
      << cfg.name() << " P=" << p;

  // Host threads must not change vector-backend results either: the same
  // word-granularity ownership argument as the scalar engine's.
  for (const unsigned threads : {2u, 8u}) {
    simd::ThreadPool pool(threads);
    simd::Machine m_pool(p, simd::cm2_cost_model(), &pool);
    Engine<P> pooled(problem, m_pool, cfg);
    pooled.set_backend(ExecBackend::kVector);
    const IterationStats pooled_it = pooled.run_iteration(bound);
    EXPECT_EQ(pooled_it, ref) << cfg.name() << " P=" << p << " threads="
                              << threads;
    EXPECT_EQ(pooled.goal_nodes(), scalar.goal_nodes())
        << cfg.name() << " P=" << p << " threads=" << threads;
  }
}

TEST(VectorOracle, SyntheticGridIdenticalStats) {
  // The fig4a grid shape: workloads of growing W against machine sizes, run
  // through both backends.  IterationStats equality covers nodes_expanded,
  // goals, every lb metric, and the simulated clock.
  const synthetic::Params grid[] = {
      {9013, 4, 0.395, 14}, {9011, 4, 0.400, 18}, {2718, 6, 0.3, 12}};
  const std::uint32_t sizes[] = {64, 256, 1024};
  for (const auto& prm : grid) {
    const Tree tree(prm);
    for (const std::uint32_t p : sizes) {
      expect_backends_agree_iteration(tree, p, gp_dk(), kUnbounded);
    }
    expect_backends_agree_iteration(tree, 256, ngp_static(0.75), kUnbounded);
  }
}

TEST(VectorOracle, PuzzleFullIdaRunsIdentical) {
  const auto& workloads = puzzle::test_workloads();
  for (std::size_t w = 0; w < 2 && w < workloads.size(); ++w) {
    const FifteenPuzzle problem(workloads[w].board());
    for (const std::uint32_t p : {64u, 256u}) {
      simd::Machine m_scalar(p, simd::cm2_cost_model());
      Engine<FifteenPuzzle> scalar(problem, m_scalar, gp_dk());
      const RunStats ref = scalar.run();

      simd::ThreadPool pool(2);
      simd::Machine m_vec(p, simd::cm2_cost_model(), &pool);
      Engine<FifteenPuzzle> vectored(problem, m_vec, gp_dk());
      vectored.set_backend(ExecBackend::kVector);
      const RunStats got = vectored.run();

      EXPECT_EQ(got, ref) << "P=" << p;
      EXPECT_EQ(vectored.goal_nodes(), scalar.goal_nodes()) << "P=" << p;
    }
  }
}

TEST(VectorOracle, FirstSolutionAndBnbModesIdentical) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  simd::Machine m1(64, simd::cm2_cost_model());
  Engine<FifteenPuzzle> scalar(problem, m1, gp_dk());
  simd::Machine m2(64, simd::cm2_cost_model());
  Engine<FifteenPuzzle> vectored(problem, m2, gp_dk());
  vectored.set_backend(ExecBackend::kVector);
  EXPECT_EQ(vectored.run_first_solution(wl.solution_length),
            scalar.run_first_solution(wl.solution_length));

  // Branch and bound through the generic fallback (no TSP batch kernel).
  const tsp::Tsp t(10, 21);
  simd::Machine m3(64, simd::cm2_cost_model());
  Engine<tsp::Tsp> bnb_scalar(t, m3, gp_dk());
  const auto ref = bnb_scalar.run_branch_and_bound();
  simd::Machine m4(64, simd::cm2_cost_model());
  Engine<tsp::Tsp> bnb_vec(t, m4, gp_dk());
  bnb_vec.set_backend(ExecBackend::kVector);
  const auto got = bnb_vec.run_branch_and_bound();
  EXPECT_EQ(got.best, ref.best);
  EXPECT_EQ(got.stats, ref.stats);
}

// ---------------------------------------------------------------------------
// Fallback semantics inside the engine: problems without a batch kernel run
// the scalar path per slot with identical results — including degraded mode,
// where dead lanes must be excluded from every batch.
// ---------------------------------------------------------------------------

TEST(VectorFallback, MockProblemsRouteThroughScalarPath) {
  const NoBatchTree tree(synthetic::Params{9013, 4, 0.395, 14});
  static_assert(!vec::BatchExpander<NoBatchTree>::kVectorized);
  expect_backends_agree_iteration(tree, 256, gp_dk(), kUnbounded);

  const NoBatchPuzzle nb(puzzle::test_workloads()[0].board());
  simd::Machine m1(64, simd::cm2_cost_model());
  Engine<NoBatchPuzzle> scalar(nb, m1, gp_dk());
  const RunStats ref = scalar.run();
  simd::Machine m2(64, simd::cm2_cost_model());
  Engine<NoBatchPuzzle> vectored(nb, m2, gp_dk());
  vectored.set_backend(ExecBackend::kVector);
  const RunStats got = vectored.run();
  EXPECT_EQ(got, ref);
  EXPECT_EQ(vectored.goal_nodes(), scalar.goal_nodes());
}

TEST(VectorFallback, ArmedFaultPlanIdenticalAndDeadLanesExcluded) {
  const NoBatchTree tree(synthetic::Params{9013, 4, 0.395, 14});
  // Early explicit kills so they land inside the iteration (the 9013 tree
  // drains in a couple dozen cycles at P=64).
  const fault::FaultPlan plan({{3, fault::FaultKind::kKillPe, 5, 0},
                               {6, fault::FaultKind::kKillPe, 17, 0},
                               {9, fault::FaultKind::kKillPe, 40, 0}});

  simd::Machine m1(64, simd::cm2_cost_model());
  Engine<NoBatchTree> scalar(tree, m1, gp_dk());
  scalar.arm_faults(&plan);
  const IterationStats ref = scalar.run_iteration(kUnbounded);

  simd::Machine m2(64, simd::cm2_cost_model());
  Engine<NoBatchTree> vectored(tree, m2, gp_dk());
  vectored.set_backend(ExecBackend::kVector);
  vectored.arm_faults(&plan);
  // run_iteration's conservation check plus degraded-mode accounting make
  // any dead lane slipping into a batch surface as a stats divergence or a
  // FaultError; equality means dead lanes were excluded word by word.
  const IterationStats got = vectored.run_iteration(kUnbounded);

  EXPECT_EQ(got, ref);
  EXPECT_GT(got.pes_killed, 0u);
  ASSERT_EQ(vectored.recovery_journal().size(),
            scalar.recovery_journal().size());

  // The real batch kernels under the same armed plan, for good measure.
  const Tree raw(synthetic::Params{9013, 4, 0.395, 14});
  simd::Machine m3(64, simd::cm2_cost_model());
  Engine<Tree> scalar_raw(raw, m3, gp_dk());
  scalar_raw.arm_faults(&plan);
  const IterationStats ref_raw = scalar_raw.run_iteration(kUnbounded);
  simd::Machine m4(64, simd::cm2_cost_model());
  Engine<Tree> vec_raw(raw, m4, gp_dk());
  vec_raw.set_backend(ExecBackend::kVector);
  vec_raw.arm_faults(&plan);
  EXPECT_EQ(vec_raw.run_iteration(kUnbounded), ref_raw);
}

#endif  // SIMDTS_VECTOR_BACKEND

}  // namespace
}  // namespace simdts::lb
