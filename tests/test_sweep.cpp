#include "runtime/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "analysis/isoefficiency.hpp"
#include "synthetic/calibrate.hpp"

namespace simdts::runtime {
namespace {

TEST(SweepRunner, RunsEveryTaskExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    const std::size_t n = 100;
    std::vector<std::atomic<int>> hits(n);
    SweepRunner runner(threads);
    runner.run(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(SweepRunner, ZeroTasksIsANoOp) {
  SweepRunner runner(4);
  runner.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(SweepRunner, MoreThreadsThanTasks) {
  std::vector<std::atomic<int>> hits(3);
  SweepRunner runner(16);
  runner.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, PropagatesTaskExceptions) {
  SweepRunner runner(4);
  EXPECT_THROW(runner.run(32,
                          [](std::size_t i) {
                            if (i == 7) throw std::runtime_error("boom");
                          }),
               std::runtime_error);
}

TEST(SweepRunner, ZeroThreadsPicksDefault) {
  SweepRunner runner(0);
  EXPECT_GE(runner.threads(), 1u);
}

TEST(SweepMap, ResultsLandInIndexOrder) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto out = sweep_map<std::size_t>(
        64, [](std::size_t i) { return i * i; }, threads);
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i * i);
    }
  }
}

// --- The determinism contract: host threads never change simulated results.

std::vector<synthetic::SyntheticWorkload> tiny_ladder() {
  std::vector<synthetic::SyntheticWorkload> out;
  const synthetic::Params shapes[] = {
      {9013, 4, 0.395, 14},
      {9011, 4, 0.400, 18},
  };
  for (const auto& p : shapes) {
    out.push_back(
        synthetic::SyntheticWorkload{"ladder", p, synthetic::measure(p)});
  }
  return out;
}

TEST(SweepDeterminism, RunGridIdenticalAcrossHostThreads) {
  const auto ladder = tiny_ladder();
  const std::uint32_t sizes[] = {16, 64};
  for (const auto& cfg : {lb::gp_static(0.90), lb::gp_dk()}) {
    const analysis::GridResult serial =
        analysis::run_grid(cfg, ladder, sizes, simd::cm2_cost_model(), 1);
    for (const unsigned threads : {2u, 8u}) {
      const analysis::GridResult parallel = analysis::run_grid(
          cfg, ladder, sizes, simd::cm2_cost_model(), threads);
      ASSERT_EQ(parallel.points.size(), serial.points.size());
      for (std::size_t i = 0; i < serial.points.size(); ++i) {
        // operator== covers every field, the simulated MachineClock included:
        // a host-thread-dependent count or clock is a determinism bug.
        EXPECT_EQ(parallel.points[i], serial.points[i])
            << "grid point " << i << " at " << threads << " host threads";
      }
    }
  }
}

// Golden values: pin the integer observables of one quick grid so *any*
// change to simulated behavior — engine rewrite, census bookkeeping, matching
// order — trips a test, not just a cross-thread mismatch.  Values measured
// from the serial engine; see docs/performance.md.
TEST(SweepDeterminism, GoldenQuickGrid) {
  const auto ladder = tiny_ladder();
  const std::uint32_t sizes[] = {16, 64};
  const analysis::GridResult grid = analysis::run_grid(
      lb::gp_static(0.90), ladder, sizes, simd::cm2_cost_model(), 1);
  ASSERT_EQ(grid.points.size(), 4u);

  struct Golden {
    std::uint32_t p;
    std::uint64_t w, expand_cycles, lb_phases, lb_rounds;
  };
  const Golden golden[] = {
      {16, 941, 67, 45, 45},
      {16, 13107, 836, 113, 113},
      {64, 941, 27, 25, 25},
      {64, 13107, 220, 120, 120},
  };
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    const auto& pt = grid.points[i];
    EXPECT_EQ(pt.p, golden[i].p) << "point " << i;
    EXPECT_EQ(pt.w, golden[i].w) << "point " << i;
    EXPECT_EQ(pt.expand_cycles, golden[i].expand_cycles) << "point " << i;
    EXPECT_EQ(pt.lb_phases, golden[i].lb_phases) << "point " << i;
    EXPECT_EQ(pt.lb_rounds, golden[i].lb_rounds) << "point " << i;
  }
}

}  // namespace
}  // namespace simdts::runtime
