#include "mimd/engine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <tuple>

#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"
#include "queens/queens.hpp"
#include "search/serial.hpp"
#include "synthetic/tree.hpp"

namespace simdts::mimd {
namespace {

using puzzle::FifteenPuzzle;
using search::kUnbounded;

TEST(Mimd, RejectsBadConfig) {
  const queens::Queens q(6);
  EXPECT_THROW(MimdEngine<queens::Queens>(q, 0, MimdConfig{}),
               ConfigError);
  MimdConfig zero_latency;
  zero_latency.latency = 0;
  EXPECT_THROW(MimdEngine<queens::Queens>(q, 4, zero_latency),
               ConfigError);
}

using ConsParam = std::tuple<StealPolicy, std::uint32_t /*P*/,
                             std::uint32_t /*latency*/>;

class MimdConservation : public ::testing::TestWithParam<ConsParam> {};

TEST_P(MimdConservation, ExpansionsMatchSerial) {
  const auto [policy, p, latency] = GetParam();
  const auto& wl = puzzle::test_workloads()[1];  // t-4k
  const FifteenPuzzle problem(wl.board());
  const auto serial =
      search::serial_dfs(problem, problem.root(), wl.solution_length);

  MimdConfig cfg;
  cfg.policy = policy;
  cfg.latency = latency;
  MimdEngine<FifteenPuzzle> engine(problem, p, cfg);
  const MimdStats stats = engine.run_iteration(wl.solution_length);
  EXPECT_EQ(stats.nodes_expanded, serial.nodes_expanded);
  EXPECT_EQ(stats.goals_found, serial.goals_found);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesSizesLatencies, MimdConservation,
    ::testing::Combine(::testing::Values(StealPolicy::kGlobalRoundRobin,
                                         StealPolicy::kAsyncRoundRobin,
                                         StealPolicy::kRandomPolling),
                       ::testing::Values(1u, 2u, 17u, 64u),
                       ::testing::Values(1u, 3u, 8u)));

TEST(Mimd, QueensSolutionsConserved) {
  const queens::Queens q(8);
  for (const auto policy :
       {StealPolicy::kGlobalRoundRobin, StealPolicy::kAsyncRoundRobin,
        StealPolicy::kRandomPolling}) {
    MimdConfig cfg;
    cfg.policy = policy;
    MimdEngine<queens::Queens> engine(q, 128, cfg);
    const MimdStats stats = engine.run_iteration(kUnbounded);
    EXPECT_EQ(stats.goals_found, 92u) << to_string(policy);
  }
}

TEST(Mimd, SingleProcessorIsPerfectlyEfficient) {
  const auto& wl = puzzle::test_workloads()[0];
  const FifteenPuzzle problem(wl.board());
  MimdEngine<FifteenPuzzle> engine(problem, 1, MimdConfig{});
  const MimdStats stats = engine.run_iteration(wl.solution_length);
  EXPECT_EQ(stats.steps, stats.nodes_expanded);
  EXPECT_DOUBLE_EQ(stats.efficiency(1), 1.0);
  EXPECT_EQ(stats.steal_requests, 0u);
}

TEST(Mimd, Deterministic) {
  const synthetic::Tree tree(synthetic::Params{77, 4, 0.38, 16});
  MimdConfig cfg;
  cfg.policy = StealPolicy::kRandomPolling;
  MimdEngine<synthetic::Tree> e1(tree, 64, cfg);
  MimdEngine<synthetic::Tree> e2(tree, 64, cfg);
  const MimdStats a = e1.run_iteration(kUnbounded);
  const MimdStats b = e2.run_iteration(kUnbounded);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.steal_requests, b.steal_requests);
  EXPECT_EQ(a.steals, b.steals);
}

TEST(Mimd, ParallelismShortensTheRun) {
  const auto& wl = puzzle::test_workloads()[2];  // t-21k
  const FifteenPuzzle problem(wl.board());
  MimdEngine<FifteenPuzzle> e1(problem, 1, MimdConfig{});
  MimdEngine<FifteenPuzzle> e64(problem, 64, MimdConfig{});
  const MimdStats s1 = e1.run_iteration(wl.solution_length);
  const MimdStats s64 = e64.run_iteration(wl.solution_length);
  EXPECT_LT(s64.steps, s1.steps / 8);
}

TEST(Mimd, HigherLatencyCostsEfficiency) {
  const auto& wl = puzzle::test_workloads()[2];
  const FifteenPuzzle problem(wl.board());
  MimdConfig fast;
  fast.latency = 1;
  MimdConfig slow;
  slow.latency = 16;
  MimdEngine<FifteenPuzzle> e1(problem, 128, fast);
  MimdEngine<FifteenPuzzle> e2(problem, 128, slow);
  EXPECT_GT(e1.run_iteration(wl.solution_length).efficiency(128),
            e2.run_iteration(wl.solution_length).efficiency(128));
}

TEST(Mimd, StealAccountingIsConsistent) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  MimdEngine<FifteenPuzzle> engine(problem, 32, MimdConfig{});
  const MimdStats s = engine.run_iteration(wl.solution_length);
  // Requests still in flight at termination are dropped with the machine,
  // so sent >= answered.
  EXPECT_GE(s.steal_requests, s.steals + s.rejections);
  EXPECT_LE(s.steal_requests, s.steals + s.rejections + 32 * 2);
  EXPECT_EQ(s.service_steps, s.steals);
  EXPECT_GT(s.steals, 0u);
}

TEST(Mimd, EfficiencyWithinUnitInterval) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  for (const auto policy :
       {StealPolicy::kGlobalRoundRobin, StealPolicy::kAsyncRoundRobin,
        StealPolicy::kRandomPolling}) {
    MimdConfig cfg;
    cfg.policy = policy;
    MimdEngine<FifteenPuzzle> engine(problem, 256, cfg);
    const MimdStats s = engine.run_iteration(wl.solution_length);
    EXPECT_GT(s.efficiency(256), 0.0) << to_string(policy);
    EXPECT_LE(s.efficiency(256), 1.0) << to_string(policy);
  }
}

TEST(Mimd, PolicyNames) {
  EXPECT_STREQ(to_string(StealPolicy::kGlobalRoundRobin), "GRR");
  EXPECT_STREQ(to_string(StealPolicy::kAsyncRoundRobin), "ARR");
  EXPECT_STREQ(to_string(StealPolicy::kRandomPolling), "RP");
}

}  // namespace
}  // namespace simdts::mimd
