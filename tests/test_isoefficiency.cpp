#include "analysis/isoefficiency.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "synthetic/calibrate.hpp"

namespace simdts::analysis {
namespace {

std::vector<synthetic::SyntheticWorkload> small_ladder() {
  // A small deterministic ladder for tests (sizes ~1e3 to ~2e5), measured on
  // the fly so the test is self-contained.
  std::vector<synthetic::SyntheticWorkload> out;
  const synthetic::Params shapes[] = {
      {9013, 4, 0.395, 14},
      {9011, 4, 0.400, 18},
      {9013, 4, 0.388, 24},
  };
  for (const auto& p : shapes) {
    out.push_back(synthetic::SyntheticWorkload{
        "ladder", p, synthetic::measure(p)});
  }
  return out;
}

TEST(IsoGrid, RunsEveryCell) {
  const auto ladder = small_ladder();
  const std::uint32_t sizes[] = {8, 32};
  const GridResult grid = run_grid(lb::gp_static(0.75), ladder, sizes,
                                   simd::cm2_cost_model());
  ASSERT_EQ(grid.points.size(), ladder.size() * std::size(sizes));
  for (const auto& pt : grid.points) {
    EXPECT_GT(pt.w, 0u);
    EXPECT_GT(pt.efficiency, 0.0);
    EXPECT_LE(pt.efficiency, 1.0);
  }
}

TEST(IsoGrid, MeasuredWMatchesWorkloadW) {
  const auto ladder = small_ladder();
  const std::uint32_t sizes[] = {16};
  const GridResult grid = run_grid(lb::gp_dk(), ladder, sizes,
                                   simd::cm2_cost_model());
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    EXPECT_EQ(grid.points[i].w, ladder[i].w) << "conservation through the grid";
  }
}

TEST(IsoGrid, EfficiencyGrowsWithW) {
  const auto ladder = small_ladder();
  const std::uint32_t sizes[] = {64};
  const GridResult grid = run_grid(lb::gp_static(0.75), ladder, sizes,
                                   simd::cm2_cost_model());
  ASSERT_EQ(grid.points.size(), 3u);
  EXPECT_LT(grid.points[0].efficiency, grid.points[2].efficiency);
}

TEST(IsoGrid, EfficiencyFallsWithP) {
  const auto ladder = small_ladder();
  const std::uint32_t sizes[] = {8, 512};
  const GridResult grid = run_grid(lb::gp_static(0.75), ladder, sizes,
                                   simd::cm2_cost_model());
  // Same workload (the largest), growing machine: efficiency must drop.
  EXPECT_GT(grid.points[2].efficiency, grid.points[5].efficiency);
}

TEST(ExtractCurves, InterpolatesBetweenBracketingPoints) {
  // Hand-built grid: P = 4 with E rising 0.4 -> 0.8 over a decade of W.
  GridResult grid;
  grid.points = {
      GridPoint{4, 1000, 0.4, 0, 0, 0},
      GridPoint{4, 10000, 0.8, 0, 0, 0},
  };
  const double targets[] = {0.6};
  const auto curves = extract_curves(grid, targets);
  ASSERT_EQ(curves.size(), 1u);
  ASSERT_EQ(curves[0].points.size(), 1u);
  const auto& pt = curves[0].points[0];
  EXPECT_FALSE(pt.extrapolated);
  // Linear in (log W, E): the midpoint of the decade.
  EXPECT_NEAR(pt.w_needed, std::sqrt(1000.0 * 10000.0), 1.0);
  EXPECT_NEAR(pt.p_log_p, 4.0 * 2.0, 1e-12);
}

TEST(ExtractCurves, MarksExtrapolatedPoints) {
  GridResult grid;
  grid.points = {
      GridPoint{4, 1000, 0.4, 0, 0, 0},
      GridPoint{4, 10000, 0.5, 0, 0, 0},
  };
  const double targets[] = {0.9};
  const auto curves = extract_curves(grid, targets);
  ASSERT_EQ(curves[0].points.size(), 1u);
  EXPECT_TRUE(curves[0].points[0].extrapolated);
  EXPECT_GT(curves[0].points[0].w_needed, 10000.0);
}

TEST(ExtractCurves, MultipleMachinesProduceOnePointEach) {
  GridResult grid;
  for (const std::uint32_t p : {4u, 16u, 64u}) {
    grid.points.push_back(GridPoint{p, 1000, 0.3, 0, 0, 0});
    grid.points.push_back(GridPoint{p, 100000, 0.9, 0, 0, 0});
  }
  const double targets[] = {0.5, 0.7};
  const auto curves = extract_curves(grid, targets);
  ASSERT_EQ(curves.size(), 2u);
  for (const auto& c : curves) {
    EXPECT_EQ(c.points.size(), 3u);
  }
  // Higher target efficiency needs more W at every machine size.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(curves[0].points[i].w_needed, curves[1].points[i].w_needed);
  }
}

TEST(FitPLogP, PerfectLineHasZeroDeviation) {
  IsoCurve curve;
  curve.efficiency = 0.8;
  for (const std::uint32_t p : {16u, 64u, 256u}) {
    IsoCurvePoint pt;
    pt.p = p;
    pt.p_log_p = p * std::log2(static_cast<double>(p));
    pt.w_needed = 37.0 * pt.p_log_p;
    curve.points.push_back(pt);
  }
  const LineFit fit = fit_p_log_p(curve);
  EXPECT_NEAR(fit.slope, 37.0, 1e-9);
  EXPECT_NEAR(fit.max_rel_deviation, 0.0, 1e-9);
}

TEST(FitPLogP, SuperlinearCurveShowsDeviation) {
  IsoCurve curve;
  for (const std::uint32_t p : {16u, 64u, 256u, 1024u}) {
    IsoCurvePoint pt;
    pt.p = p;
    pt.p_log_p = p * std::log2(static_cast<double>(p));
    pt.w_needed = pt.p_log_p * std::log2(static_cast<double>(p));  // P log^2 P
    curve.points.push_back(pt);
  }
  const LineFit fit = fit_p_log_p(curve);
  EXPECT_GT(fit.max_rel_deviation, 0.3);
}

TEST(FitPLogP, EmptyCurveIsZero) {
  const LineFit fit = fit_p_log_p(IsoCurve{});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

}  // namespace
}  // namespace simdts::analysis
