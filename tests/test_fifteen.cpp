#include "puzzle/fifteen.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "puzzle/instances.hpp"

namespace simdts::puzzle {
namespace {

using search::Bound;
using search::kUnbounded;
using search::NextBound;

TEST(Fifteen, RootCachesBlankAndHeuristic) {
  const Board b = random_walk(123, 40);
  const FifteenPuzzle p(b);
  const auto root = p.root();
  EXPECT_EQ(root.board, b.packed());
  EXPECT_EQ(root.blank, b.blank_position());
  EXPECT_EQ(root.g, 0);
  EXPECT_EQ(root.h, manhattan(b));
  EXPECT_EQ(root.last, kNoMove);
}

TEST(Fifteen, GoalDetection) {
  const FifteenPuzzle p(Board::goal());
  EXPECT_TRUE(p.is_goal(p.root()));
  EXPECT_EQ(p.f_value(p.root()), 0);
}

TEST(Fifteen, CornerRootHasTwoChildren) {
  const FifteenPuzzle p(Board::goal());  // blank in the corner
  std::vector<FifteenPuzzle::Node> children;
  NextBound next;
  p.expand(p.root(), kUnbounded, children, next);
  EXPECT_EQ(children.size(), 2u);  // only Down and Right are legal
  EXPECT_FALSE(next.has_value());
}

TEST(Fifteen, CenterBlankWithoutHistoryHasFourChildren) {
  // Build a board with the blank at position 5 (interior).
  Board b = Board::goal();
  int blank = 0;
  b = *b.apply(Move::kRight, blank);
  b = *b.apply(Move::kDown, blank);
  ASSERT_EQ(blank, 5);
  const FifteenPuzzle p(b);
  std::vector<FifteenPuzzle::Node> children;
  NextBound next;
  p.expand(p.root(), kUnbounded, children, next);
  EXPECT_EQ(children.size(), 4u);
}

TEST(Fifteen, InverseMoveIsNeverGenerated) {
  const FifteenPuzzle p(Board::goal());
  std::vector<FifteenPuzzle::Node> level1;
  NextBound next;
  p.expand(p.root(), kUnbounded, level1, next);
  for (const auto& child : level1) {
    std::vector<FifteenPuzzle::Node> level2;
    p.expand(child, kUnbounded, level2, next);
    const auto inv = static_cast<std::uint8_t>(
        inverse(static_cast<Move>(child.last)));
    for (const auto& grandchild : level2) {
      EXPECT_NE(grandchild.last, inv);
      EXPECT_NE(grandchild.board, p.root().board)
          << "expansion undid the previous move";
    }
  }
}

TEST(Fifteen, ChildrenIncrementGAndTrackH) {
  const Board b = random_walk(9, 35);
  const FifteenPuzzle p(b);
  std::vector<FifteenPuzzle::Node> children;
  NextBound next;
  p.expand(p.root(), kUnbounded, children, next);
  for (const auto& c : children) {
    EXPECT_EQ(c.g, 1);
    EXPECT_EQ(c.h, manhattan(Board(c.board)))
        << "incremental h out of sync with recomputation";
    const int dh = int{c.h} - int{p.root().h};
    EXPECT_TRUE(dh == 1 || dh == -1);
  }
}

TEST(Fifteen, BoundPrunesAndReportsNextThreshold) {
  const Board b = random_walk(77, 50);
  const FifteenPuzzle p(b);
  const auto root = p.root();

  std::vector<FifteenPuzzle::Node> all;
  NextBound none;
  p.expand(root, kUnbounded, all, none);

  // With bound = h(root) - 1, every child has f >= h(root) - ... in fact
  // f(child) >= f(root) - is not guaranteed; just verify the partition:
  // pruned children are exactly those with f > bound, and next is their min.
  const Bound bound = p.f_value(root);
  std::vector<FifteenPuzzle::Node> kept;
  NextBound next;
  p.expand(root, bound, kept, next);
  Bound expect_min = kUnbounded;
  std::size_t expect_kept = 0;
  for (const auto& c : all) {
    const Bound f = p.f_value(c);
    if (f <= bound) {
      ++expect_kept;
    } else if (f < expect_min) {
      expect_min = f;
    }
  }
  EXPECT_EQ(kept.size(), expect_kept);
  if (expect_min != kUnbounded) {
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next.value(), expect_min);
  } else {
    EXPECT_FALSE(next.has_value());
  }
}

TEST(Fifteen, LinearConflictVariantExpands) {
  const Board b = random_walk(31, 30);
  const FifteenPuzzle p(b, Heuristic::kLinearConflict);
  EXPECT_EQ(p.root().h, linear_conflict(b));
  std::vector<FifteenPuzzle::Node> children;
  NextBound next;
  p.expand(p.root(), kUnbounded, children, next);
  for (const auto& c : children) {
    EXPECT_EQ(c.h, linear_conflict(Board(c.board)));
  }
}

TEST(Fifteen, NodeIsTwoWords) {
  EXPECT_EQ(sizeof(FifteenPuzzle::Node), 16u);
}

}  // namespace
}  // namespace simdts::puzzle
