// Host-side robustness: typed errors, validated configuration, journaled
// checkpoint/resume, and the retrying sweep wrapper (docs/robustness.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>

#include "analysis/isoefficiency.hpp"
#include "common/error.hpp"
#include "lb/config.hpp"
#include "lb/metrics.hpp"
#include "runtime/journal.hpp"
#include "runtime/sweep.hpp"
#include "simd/cost_model.hpp"
#include "synthetic/calibrate.hpp"

namespace simdts {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "simdts_" + name;
}

// ---------------------------------------------------------------------------
// Configuration validation (typed, actionable errors instead of asserts).
// ---------------------------------------------------------------------------

TEST(Validation, SchemeConfigRejectsBadThresholds) {
  EXPECT_THROW(lb::gp_static(0.0).validate(), ConfigError);
  EXPECT_THROW(lb::gp_static(-0.5).validate(), ConfigError);
  EXPECT_THROW(lb::gp_static(1.5).validate(), ConfigError);
  EXPECT_NO_THROW(lb::gp_static(0.9).validate());
  EXPECT_NO_THROW(lb::gp_static(1.0).validate());

  lb::SchemeConfig dk = lb::gp_dk();
  dk.init_threshold = 0.0;
  EXPECT_THROW(dk.validate(), ConfigError);
  dk.init_threshold = 0.85;
  EXPECT_NO_THROW(dk.validate());
}

TEST(Validation, CostModelRejectsNonsense) {
  simd::CostModel cm = simd::cm2_cost_model();
  EXPECT_NO_THROW(cm.validate());
  cm.t_expand = -1.0;
  EXPECT_THROW(cm.validate(), ConfigError);
  cm = simd::cm2_cost_model();
  cm.t_lb = -0.1;
  EXPECT_THROW(cm.validate(), ConfigError);
  cm = simd::cm2_cost_model();
  cm.lb_cost_multiplier = 0.0;
  EXPECT_THROW(cm.validate(), ConfigError);
  cm = simd::cm2_cost_model();
  cm.t_neighbor = -2.0;
  EXPECT_THROW(cm.validate(), ConfigError);
}

TEST(Validation, ErrorMessagesCarryContext) {
  try {
    lb::gp_static(1.5).validate();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("static_x"), std::string::npos) << what;
    EXPECT_NE(what.find("1.5"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Journal codecs: exact (bit-pattern) round-trips.
// ---------------------------------------------------------------------------

TEST(JournalCodec, IterationStatsRoundTripsExactly) {
  lb::IterationStats s;
  s.bound = 42;
  s.nodes_expanded = 123456789;
  s.goals_found = 3;
  s.next_bound = 44;
  s.expand_cycles = 2099;
  s.lb_phases = 172;
  s.lb_rounds = 180;
  s.transfers = 5000;
  s.pes_killed = 2;
  s.nodes_recovered = 17;
  s.recovery_phases = 2;
  s.recovery_rounds = 5;
  s.messages_dropped = 9;
  s.clock.elapsed = 0.1 + 0.2;  // a value with no short decimal form
  s.clock.calc_time = 1.0 / 3.0;
  s.clock.idle_time = 2e-308;   // subnormal-adjacent, printf-hostile
  s.clock.lb_time = 13.0 * 172;
  s.clock.recovery_time = 65.0;
  s.clock.expand_cycles = 2099;
  s.clock.lb_rounds = 180;
  s.clock.recovery_rounds = 5;
  s.clock.nodes_expanded = 123456789;

  lb::IterationStats back;
  ASSERT_TRUE(lb::decode_journal(lb::encode_journal(s), back));
  EXPECT_EQ(back, s);  // bitwise for the clock via defaulted ==
}

TEST(JournalCodec, RejectsTornAndAlienPayloads) {
  lb::IterationStats s;
  const std::string good = lb::encode_journal(s);
  lb::IterationStats out;
  EXPECT_TRUE(lb::decode_journal(good, out));
  EXPECT_FALSE(lb::decode_journal(good.substr(0, good.size() / 2), out));
  EXPECT_FALSE(lb::decode_journal(good + " 7", out));
  EXPECT_FALSE(lb::decode_journal("v9 " + good, out));
  EXPECT_FALSE(lb::decode_journal("", out));
}

TEST(JournalCodec, GridPointRoundTripsExactly) {
  analysis::GridPoint pt;
  pt.p = 8192;
  pt.w = 16110463;
  pt.efficiency = 0.905437219;
  pt.expand_cycles = 2099;
  pt.lb_phases = 172;
  pt.lb_rounds = 180;
  pt.timed_out = true;
  pt.clock.elapsed = 1.0 / 7.0;
  pt.clock.calc_time = 3.3e7;
  pt.clock.nodes_expanded = 16110463;

  analysis::GridPoint back;
  ASSERT_TRUE(analysis::decode_grid_point(analysis::encode_grid_point(pt),
                                          back));
  EXPECT_EQ(back, pt);

  EXPECT_FALSE(analysis::decode_grid_point("v1 1 2 3", back));
  EXPECT_FALSE(analysis::decode_grid_point(
      analysis::encode_grid_point(pt) + " junk", back));
}

// ---------------------------------------------------------------------------
// The on-disk journal: append, load, torn-line tolerance.
// ---------------------------------------------------------------------------

TEST(SweepJournal, RecordsAndLoads) {
  const std::string path = temp_path("journal_basic");
  std::remove(path.c_str());
  runtime::SweepJournal journal(path);
  journal.record(2, "two words");
  journal.record(0, "zero");
  journal.record(7, "seven");

  const auto entries = journal.load();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.at(0), "zero");
  EXPECT_EQ(entries.at(2), "two words");
  EXPECT_EQ(entries.at(7), "seven");
  journal.remove();
  EXPECT_TRUE(journal.load().empty());
}

TEST(SweepJournal, SkipsTornAndMalformedLines) {
  const std::string path = temp_path("journal_torn");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "0 alpha ok\n"
        << "1 beta o";  // torn mid-marker: the process died here
  }
  runtime::SweepJournal journal(path);
  auto entries = journal.load();
  EXPECT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.at(0), "alpha");

  {
    std::ofstream out(path, std::ios::trunc);
    out << "garbage line\n"
        << "3 gamma ok\n"
        << "4 delta\n"          // no marker
        << "notanumber x ok\n"  // bad index
        << "5 epsilon ok\n";
  }
  entries = journal.load();
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.at(3), "gamma");
  EXPECT_EQ(entries.at(5), "epsilon");
  journal.remove();
}

TEST(SweepJournal, RejectsMultilinePayloads) {
  runtime::SweepJournal journal(temp_path("journal_reject"));
  EXPECT_THROW(journal.record(0, "two\nlines"), Error);
  journal.remove();
}

// ---------------------------------------------------------------------------
// Resumable grids: a journaled partial run completes to the identical
// result, and journaled slots are not re-executed.
// ---------------------------------------------------------------------------

TEST(ResumableGrid, ResumedRunIsBitIdentical) {
  const synthetic::Params shapes[] = {
      {9013, 4, 0.395, 14},
      {9011, 4, 0.400, 18},
  };
  std::vector<synthetic::SyntheticWorkload> ladder;
  for (const auto& p : shapes) {
    ladder.push_back(
        synthetic::SyntheticWorkload{"ladder", p, synthetic::measure(p)});
  }
  const std::uint32_t sizes[] = {16, 64};
  const lb::SchemeConfig cfg = lb::gp_static(0.90);
  const simd::CostModel cost = simd::cm2_cost_model();

  // Reference: uninterrupted, no journal.
  const analysis::GridResult reference =
      analysis::run_grid(cfg, ladder, sizes, cost, 1);

  // "Interrupted" run: journal only a strict subset of the slots, as if the
  // process died after two cells.
  const std::string path = temp_path("grid_resume.journal");
  std::remove(path.c_str());
  {
    runtime::SweepJournal journal(path);
    journal.record(0, analysis::encode_grid_point(reference.points[0]));
    journal.record(3, analysis::encode_grid_point(reference.points[3]));
    // Simulate a torn final line from the crash.
    std::ofstream out(path, std::ios::app);
    out << "1 v1 16 941";
  }

  analysis::GridOptions options;
  options.threads = 1;
  options.journal_path = path;
  options.resume = true;
  const analysis::GridResult resumed =
      analysis::run_grid(cfg, ladder, sizes, cost, options);

  ASSERT_EQ(resumed.points.size(), reference.points.size());
  for (std::size_t i = 0; i < reference.points.size(); ++i) {
    EXPECT_EQ(resumed.points[i], reference.points[i]) << "slot " << i;
  }
  // The journal now covers every slot (the re-run recorded the rest).
  EXPECT_EQ(runtime::SweepJournal(path).load().size(), 4u);
  runtime::SweepJournal(path).remove();
}

TEST(ResumableGrid, WatchdogMarksPointTimedOutInsteadOfHanging) {
  const synthetic::Params shape{9013, 4, 0.395, 14};
  const std::vector<synthetic::SyntheticWorkload> ladder = {
      synthetic::SyntheticWorkload{"ladder", shape,
                                   synthetic::measure(shape)}};
  const std::uint32_t sizes[] = {16};
  analysis::GridOptions options;
  options.threads = 1;
  options.cycle_budget = 3;  // absurdly tight: every cell times out
  const analysis::GridResult grid = analysis::run_grid(
      lb::gp_static(0.90), ladder, sizes, simd::cm2_cost_model(), options);
  ASSERT_EQ(grid.points.size(), 1u);
  EXPECT_TRUE(grid.points[0].timed_out);
  EXPECT_EQ(grid.points[0].p, 16u);
  EXPECT_EQ(grid.points[0].w, 0u);
}

// ---------------------------------------------------------------------------
// run_tasks: typed per-task outcomes with retry/backoff.
// ---------------------------------------------------------------------------

TEST(RunTasks, ReportsOkTimeoutAndFailure) {
  runtime::SweepRunner runner(2);
  const auto reports = runtime::run_tasks(
      runner, 4,
      [](std::size_t i) {
        switch (i) {
          case 0: return;  // ok
          case 1: throw TimeoutError("gp", 16, 100, 10);
          case 2: throw Error("hard failure");
          default: return;
        }
      },
      runtime::RetryPolicy{3, 0});

  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[0].status, runtime::TaskStatus::kOk);
  EXPECT_EQ(reports[0].attempts, 1u);
  EXPECT_EQ(reports[1].status, runtime::TaskStatus::kTimeout);
  EXPECT_EQ(reports[1].attempts, 1u);  // timeouts are never retried
  EXPECT_NE(reports[1].message.find("budget"), std::string::npos);
  EXPECT_EQ(reports[2].status, runtime::TaskStatus::kFailed);
  EXPECT_EQ(reports[2].attempts, 1u);
  EXPECT_EQ(reports[3].status, runtime::TaskStatus::kOk);
}

TEST(RunTasks, RetriesTransientFailuresWithBackoff) {
  runtime::SweepRunner runner(1);
  std::atomic<int> calls{0};
  const auto reports = runtime::run_tasks(
      runner, 1,
      [&](std::size_t) {
        // Fail twice, then succeed.
        if (calls.fetch_add(1) < 2) throw TransientError("blip");
      },
      runtime::RetryPolicy{5, 0});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].status, runtime::TaskStatus::kOk);
  EXPECT_EQ(reports[0].attempts, 3u);
  EXPECT_EQ(calls.load(), 3);
}

TEST(RunTasks, GivesUpAfterMaxAttempts) {
  runtime::SweepRunner runner(1);
  std::atomic<int> calls{0};
  const auto reports = runtime::run_tasks(
      runner, 1,
      [&](std::size_t) {
        calls.fetch_add(1);
        throw TransientError("always down");
      },
      runtime::RetryPolicy{3, 0});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].status, runtime::TaskStatus::kTransient);
  EXPECT_EQ(reports[0].attempts, 3u);
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(std::string(runtime::to_string(reports[0].status)), "transient");
}

}  // namespace
}  // namespace simdts
