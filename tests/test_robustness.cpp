// Host-side robustness: typed errors, validated configuration, journaled
// checkpoint/resume, and the retrying sweep wrapper (docs/robustness.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>

#include "analysis/isoefficiency.hpp"
#include "common/error.hpp"
#include "lb/config.hpp"
#include "lb/metrics.hpp"
#include "runtime/journal.hpp"
#include "runtime/sweep.hpp"
#include "simd/cost_model.hpp"
#include "synthetic/calibrate.hpp"

namespace simdts {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "simdts_" + name;
}

// ---------------------------------------------------------------------------
// Configuration validation (typed, actionable errors instead of asserts).
// ---------------------------------------------------------------------------

TEST(Validation, SchemeConfigRejectsBadThresholds) {
  EXPECT_THROW(lb::gp_static(0.0).validate(), ConfigError);
  EXPECT_THROW(lb::gp_static(-0.5).validate(), ConfigError);
  EXPECT_THROW(lb::gp_static(1.5).validate(), ConfigError);
  EXPECT_NO_THROW(lb::gp_static(0.9).validate());
  EXPECT_NO_THROW(lb::gp_static(1.0).validate());

  lb::SchemeConfig dk = lb::gp_dk();
  dk.init_threshold = 0.0;
  EXPECT_THROW(dk.validate(), ConfigError);
  dk.init_threshold = 0.85;
  EXPECT_NO_THROW(dk.validate());
}

TEST(Validation, CostModelRejectsNonsense) {
  simd::CostModel cm = simd::cm2_cost_model();
  EXPECT_NO_THROW(cm.validate());
  cm.t_expand = -1.0;
  EXPECT_THROW(cm.validate(), ConfigError);
  cm = simd::cm2_cost_model();
  cm.t_lb = -0.1;
  EXPECT_THROW(cm.validate(), ConfigError);
  cm = simd::cm2_cost_model();
  cm.lb_cost_multiplier = 0.0;
  EXPECT_THROW(cm.validate(), ConfigError);
  cm = simd::cm2_cost_model();
  cm.t_neighbor = -2.0;
  EXPECT_THROW(cm.validate(), ConfigError);
}

TEST(Validation, ErrorMessagesCarryContext) {
  try {
    lb::gp_static(1.5).validate();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("static_x"), std::string::npos) << what;
    EXPECT_NE(what.find("1.5"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Journal codecs: exact (bit-pattern) round-trips.
// ---------------------------------------------------------------------------

TEST(JournalCodec, IterationStatsRoundTripsExactly) {
  lb::IterationStats s;
  s.bound = 42;
  s.nodes_expanded = 123456789;
  s.goals_found = 3;
  s.next_bound = 44;
  s.expand_cycles = 2099;
  s.lb_phases = 172;
  s.lb_rounds = 180;
  s.transfers = 5000;
  s.pes_killed = 2;
  s.nodes_recovered = 17;
  s.recovery_phases = 2;
  s.recovery_rounds = 5;
  s.messages_dropped = 9;
  s.clock.elapsed = 0.1 + 0.2;  // a value with no short decimal form
  s.clock.calc_time = 1.0 / 3.0;
  s.clock.idle_time = 2e-308;   // subnormal-adjacent, printf-hostile
  s.clock.lb_time = 13.0 * 172;
  s.clock.recovery_time = 65.0;
  s.clock.expand_cycles = 2099;
  s.clock.lb_rounds = 180;
  s.clock.recovery_rounds = 5;
  s.clock.nodes_expanded = 123456789;

  lb::IterationStats back;
  ASSERT_TRUE(lb::decode_journal(lb::encode_journal(s), back));
  EXPECT_EQ(back, s);  // bitwise for the clock via defaulted ==
}

TEST(JournalCodec, RejectsTornAndAlienPayloads) {
  lb::IterationStats s;
  const std::string good = lb::encode_journal(s);
  lb::IterationStats out;
  EXPECT_TRUE(lb::decode_journal(good, out));
  EXPECT_FALSE(lb::decode_journal(good.substr(0, good.size() / 2), out));
  EXPECT_FALSE(lb::decode_journal(good + " 7", out));
  EXPECT_FALSE(lb::decode_journal("v9 " + good, out));
  EXPECT_FALSE(lb::decode_journal("", out));
}

TEST(JournalCodec, GridPointRoundTripsExactly) {
  analysis::GridPoint pt;
  pt.p = 8192;
  pt.w = 16110463;
  pt.efficiency = 0.905437219;
  pt.expand_cycles = 2099;
  pt.lb_phases = 172;
  pt.lb_rounds = 180;
  pt.timed_out = true;
  pt.clock.elapsed = 1.0 / 7.0;
  pt.clock.calc_time = 3.3e7;
  pt.clock.nodes_expanded = 16110463;

  analysis::GridPoint back;
  ASSERT_TRUE(analysis::decode_grid_point(analysis::encode_grid_point(pt),
                                          back));
  EXPECT_EQ(back, pt);

  EXPECT_FALSE(analysis::decode_grid_point("v1 1 2 3", back));
  EXPECT_FALSE(analysis::decode_grid_point(
      analysis::encode_grid_point(pt) + " junk", back));
}

// ---------------------------------------------------------------------------
// The on-disk journal: append, load, torn-line tolerance.
// ---------------------------------------------------------------------------

TEST(SweepJournal, RecordsAndLoads) {
  const std::string path = temp_path("journal_basic");
  std::remove(path.c_str());
  runtime::SweepJournal journal(path);
  journal.record(2, "two words");
  journal.record(0, "zero");
  journal.record(7, "seven");

  const auto entries = journal.load();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.at(0), "zero");
  EXPECT_EQ(entries.at(2), "two words");
  EXPECT_EQ(entries.at(7), "seven");
  journal.remove();
  EXPECT_TRUE(journal.load().empty());
}

TEST(SweepJournal, SkipsTornAndMalformedLines) {
  const std::string path = temp_path("journal_torn");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "0 alpha ok\n"
        << "1 beta o";  // torn mid-marker: the process died here
  }
  runtime::SweepJournal journal(path);
  auto entries = journal.load();
  EXPECT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries.at(0), "alpha");

  {
    std::ofstream out(path, std::ios::trunc);
    out << "garbage line\n"
        << "3 gamma ok\n"
        << "4 delta\n"          // no marker
        << "notanumber x ok\n"  // bad index
        << "5 epsilon ok\n";
  }
  entries = journal.load();
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.at(3), "gamma");
  EXPECT_EQ(entries.at(5), "epsilon");
  journal.remove();
}

TEST(SweepJournal, RejectsMultilinePayloads) {
  runtime::SweepJournal journal(temp_path("journal_reject"));
  EXPECT_THROW(journal.record(0, "two\nlines"), Error);
  journal.remove();
}

// ---------------------------------------------------------------------------
// Resumable grids: a journaled partial run completes to the identical
// result, and journaled slots are not re-executed.
// ---------------------------------------------------------------------------

TEST(ResumableGrid, ResumedRunIsBitIdentical) {
  const synthetic::Params shapes[] = {
      {9013, 4, 0.395, 14},
      {9011, 4, 0.400, 18},
  };
  std::vector<synthetic::SyntheticWorkload> ladder;
  for (const auto& p : shapes) {
    ladder.push_back(
        synthetic::SyntheticWorkload{"ladder", p, synthetic::measure(p)});
  }
  const std::uint32_t sizes[] = {16, 64};
  const lb::SchemeConfig cfg = lb::gp_static(0.90);
  const simd::CostModel cost = simd::cm2_cost_model();

  // Reference: uninterrupted, no journal.
  const analysis::GridResult reference =
      analysis::run_grid(cfg, ladder, sizes, cost, 1);

  // "Interrupted" run: journal only a strict subset of the slots, as if the
  // process died after two cells.
  const std::string path = temp_path("grid_resume.journal");
  std::remove(path.c_str());
  {
    runtime::SweepJournal journal(path);
    journal.record(0, analysis::encode_grid_point(reference.points[0]));
    journal.record(3, analysis::encode_grid_point(reference.points[3]));
    // Simulate a torn final line from the crash.
    std::ofstream out(path, std::ios::app);
    out << "1 v1 16 941";
  }

  analysis::GridOptions options;
  options.threads = 1;
  options.journal_path = path;
  options.resume = true;
  const analysis::GridResult resumed =
      analysis::run_grid(cfg, ladder, sizes, cost, options);

  ASSERT_EQ(resumed.points.size(), reference.points.size());
  for (std::size_t i = 0; i < reference.points.size(); ++i) {
    EXPECT_EQ(resumed.points[i], reference.points[i]) << "slot " << i;
  }
  // The journal now covers every slot (the re-run recorded the rest).
  EXPECT_EQ(runtime::SweepJournal(path).load().size(), 4u);
  runtime::SweepJournal(path).remove();
}

TEST(ResumableGrid, WatchdogMarksPointTimedOutInsteadOfHanging) {
  const synthetic::Params shape{9013, 4, 0.395, 14};
  const std::vector<synthetic::SyntheticWorkload> ladder = {
      synthetic::SyntheticWorkload{"ladder", shape,
                                   synthetic::measure(shape)}};
  const std::uint32_t sizes[] = {16};
  analysis::GridOptions options;
  options.threads = 1;
  options.cycle_budget = 3;  // absurdly tight: every cell times out
  const analysis::GridResult grid = analysis::run_grid(
      lb::gp_static(0.90), ladder, sizes, simd::cm2_cost_model(), options);
  ASSERT_EQ(grid.points.size(), 1u);
  EXPECT_TRUE(grid.points[0].timed_out);
  EXPECT_EQ(grid.points[0].p, 16u);
  EXPECT_EQ(grid.points[0].w, 0u);
}

// ---------------------------------------------------------------------------
// run_tasks: typed per-task outcomes with retry/backoff.
// ---------------------------------------------------------------------------

TEST(RunTasks, ReportsOkTimeoutAndFailure) {
  runtime::SweepRunner runner(2);
  const auto reports = runtime::run_tasks(
      runner, 4,
      [](std::size_t i) {
        switch (i) {
          case 0: return;  // ok
          case 1: throw TimeoutError("gp", 16, 100, 10);
          case 2: throw Error("hard failure");
          default: return;
        }
      },
      runtime::RetryPolicy{3, 0});

  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[0].status, runtime::TaskStatus::kOk);
  EXPECT_EQ(reports[0].attempts, 1u);
  EXPECT_EQ(reports[1].status, runtime::TaskStatus::kTimeout);
  EXPECT_EQ(reports[1].attempts, 1u);  // timeouts are never retried
  EXPECT_NE(reports[1].message.find("budget"), std::string::npos);
  EXPECT_EQ(reports[2].status, runtime::TaskStatus::kFailed);
  EXPECT_EQ(reports[2].attempts, 1u);
  EXPECT_EQ(reports[3].status, runtime::TaskStatus::kOk);
}

TEST(RunTasks, RetriesTransientFailuresWithBackoff) {
  runtime::SweepRunner runner(1);
  std::atomic<int> calls{0};
  const auto reports = runtime::run_tasks(
      runner, 1,
      [&](std::size_t) {
        // Fail twice, then succeed.
        if (calls.fetch_add(1) < 2) throw TransientError("blip");
      },
      runtime::RetryPolicy{5, 0});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].status, runtime::TaskStatus::kOk);
  EXPECT_EQ(reports[0].attempts, 3u);
  EXPECT_EQ(calls.load(), 3);
}

TEST(RunTasks, GivesUpAfterMaxAttempts) {
  runtime::SweepRunner runner(1);
  std::atomic<int> calls{0};
  const auto reports = runtime::run_tasks(
      runner, 1,
      [&](std::size_t) {
        calls.fetch_add(1);
        throw TransientError("always down");
      },
      runtime::RetryPolicy{3, 0});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].status, runtime::TaskStatus::kTransient);
  EXPECT_EQ(reports[0].attempts, 3u);
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(std::string(runtime::to_string(reports[0].status)), "transient");
}

// The backoff schedule is a documented contract (the service layer charges
// it on its virtual clock), so pin the exact sequence at the boundaries: the
// base doubles per retry starting at backoff_ms (retry 1 waits the *base*
// delay, not double it), retry 0 is meaningless and free, and the shift
// saturates instead of running past the integer width.
TEST(RunTasks, BackoffSchedulePinnedExactly) {
  const runtime::RetryPolicy policy{8, 10, 0};
  EXPECT_EQ(runtime::backoff_delay_ms(policy, 0), 0u);
  EXPECT_EQ(runtime::backoff_delay_ms(policy, 1), 10u);
  EXPECT_EQ(runtime::backoff_delay_ms(policy, 2), 20u);
  EXPECT_EQ(runtime::backoff_delay_ms(policy, 3), 40u);
  EXPECT_EQ(runtime::backoff_delay_ms(policy, 7), 640u);
  // Saturation: the shift clamps at 32 — no undefined behaviour, and the
  // delay plateaus instead of wrapping.
  EXPECT_EQ(runtime::backoff_delay_ms(policy, 33),
            10ull << 32);
  EXPECT_EQ(runtime::backoff_delay_ms(policy, 200),
            runtime::backoff_delay_ms(policy, 33));
  // Zero base disables backoff entirely.
  EXPECT_EQ(runtime::backoff_delay_ms(runtime::RetryPolicy{8, 0, 0}, 3), 0u);
}

TEST(RunTasks, SeededJitterIsDeterministicAndBounded) {
  const runtime::RetryPolicy jittered{5, 10, 0xBADC0FFEULL};
  // Deterministic: the same (policy, retry, salt) always yields the same
  // delay; pin the first few values of this seed so an accidental reseed or
  // mixing change fails loudly.
  const std::uint64_t d1 = runtime::backoff_delay_ms(jittered, 1, 7);
  const std::uint64_t d2 = runtime::backoff_delay_ms(jittered, 2, 7);
  EXPECT_EQ(d1, runtime::backoff_delay_ms(jittered, 1, 7));
  EXPECT_EQ(d2, runtime::backoff_delay_ms(jittered, 2, 7));
  // Bounded: base <= delay < 2 * base.
  EXPECT_GE(d1, 10u);
  EXPECT_LT(d1, 20u);
  EXPECT_GE(d2, 20u);
  EXPECT_LT(d2, 40u);
  // Salted: two tasks retrying at the same attempt spread out.
  EXPECT_NE(runtime::backoff_delay_ms(jittered, 1, 0),
            runtime::backoff_delay_ms(jittered, 1, 1));
}

TEST(RunTasks, GiveUpCountMatchesScheduleLength) {
  // A task that always fails is executed exactly max_attempts times and
  // charged exactly max_attempts - 1 backoff delays; the final attempt is
  // not followed by a sleep.  (Guards the off-by-one between attempts and
  // retries that the schedule refactor fixed.)
  runtime::SweepRunner runner(1);
  std::atomic<int> calls{0};
  const runtime::RetryPolicy policy{4, 0};
  const auto reports = runtime::run_tasks(
      runner, 1,
      [&](std::size_t) {
        calls.fetch_add(1);
        throw TransientError("always down");
      },
      policy);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].attempts, 4u);
  EXPECT_EQ(calls.load(), 4);
  // The virtual charge for those retries, with a nonzero base: retries 1..3.
  const runtime::RetryPolicy charged{4, 10, 0};
  std::uint64_t total = 0;
  for (std::uint32_t k = 1; k < reports[0].attempts; ++k) {
    total += runtime::backoff_delay_ms(charged, k, 0);
  }
  EXPECT_EQ(total, 10u + 20u + 40u);
}

}  // namespace
}  // namespace simdts
