#include "search/splitter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

namespace simdts::search {
namespace {

WorkStack<int> make_stack(std::size_t n) {
  WorkStack<int> s;
  for (std::size_t i = 0; i < n; ++i) s.push(static_cast<int>(i));
  return s;
}

using Param = std::tuple<SplitStrategy, std::size_t>;

class SplitInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(SplitInvariants, BothPartsNonEmptyAndUnionPreserved) {
  const auto [strategy, n] = GetParam();
  WorkStack<int> donor = make_stack(n);
  const std::vector<int> donated = split(donor, strategy);

  EXPECT_FALSE(donated.empty());
  EXPECT_FALSE(donor.empty());
  EXPECT_EQ(donated.size() + donor.size(), n);

  std::vector<int> all(donated);
  for (std::size_t i = 0; i < donor.size(); ++i) all.push_back(donor[i]);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(all[i], static_cast<int>(i));
  }
}

TEST_P(SplitInvariants, DonatedOrderIsBottomToTop) {
  const auto [strategy, n] = GetParam();
  WorkStack<int> donor = make_stack(n);
  const std::vector<int> donated = split(donor, strategy);
  EXPECT_TRUE(std::is_sorted(donated.begin(), donated.end()));
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndSizes, SplitInvariants,
    ::testing::Combine(::testing::Values(SplitStrategy::kBottomNode,
                                         SplitStrategy::kHalf,
                                         SplitStrategy::kTopNode),
                       ::testing::Values(2u, 3u, 4u, 7u, 16u, 101u)));

TEST(Splitter, BottomNodeTakesShallowest) {
  WorkStack<int> donor = make_stack(5);
  const auto donated = split(donor, SplitStrategy::kBottomNode);
  EXPECT_EQ(donated, (std::vector<int>{0}));
  EXPECT_EQ(donor.bottom(), 1);
}

TEST(Splitter, TopNodeTakesDeepest) {
  WorkStack<int> donor = make_stack(5);
  const auto donated = split(donor, SplitStrategy::kTopNode);
  EXPECT_EQ(donated, (std::vector<int>{4}));
  EXPECT_EQ(donor.top(), 3);
}

TEST(Splitter, HalfTakesEveryOtherFromBottom) {
  WorkStack<int> donor = make_stack(6);
  const auto donated = split(donor, SplitStrategy::kHalf);
  EXPECT_EQ(donated, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(donor.size(), 3u);
  EXPECT_EQ(donor.bottom(), 1);
  EXPECT_EQ(donor.top(), 5);
}

TEST(Splitter, HalfOnOddSizeDonatesCeilHalf) {
  WorkStack<int> donor = make_stack(7);
  const auto donated = split(donor, SplitStrategy::kHalf);
  EXPECT_EQ(donated.size(), 4u);
  EXPECT_EQ(donor.size(), 3u);
}

TEST(Splitter, HalfAlphaIsBalanced) {
  // The alpha of the half split must stay near 0.5 across stack sizes.
  for (std::size_t n : {2u, 5u, 9u, 33u, 1000u}) {
    WorkStack<int> donor = make_stack(n);
    const auto donated = split(donor, SplitStrategy::kHalf);
    const double alpha =
        static_cast<double>(donated.size()) / static_cast<double>(n);
    EXPECT_GE(alpha, 0.45) << n;
    EXPECT_LE(alpha, 0.75) << n;
  }
}

TEST(Splitter, ReceivePreservesDepthOrder) {
  WorkStack<int> donor = make_stack(6);
  WorkStack<int> receiver;
  receive(receiver, split(donor, SplitStrategy::kHalf));
  // Received 0, 2, 4 bottom-to-top: popping gives deepest first.
  EXPECT_EQ(receiver.pop(), 4);
  EXPECT_EQ(receiver.pop(), 2);
  EXPECT_EQ(receiver.pop(), 0);
}

TEST(Splitter, ReceiveAppendsAboveExistingWork) {
  WorkStack<int> receiver;
  receiver.push(100);
  std::vector<int> donated{1, 2};
  receive(receiver, std::move(donated));
  EXPECT_EQ(receiver.size(), 3u);
  EXPECT_EQ(receiver.bottom(), 100);
  EXPECT_EQ(receiver.pop(), 2);
}

TEST(Splitter, StrategyNames) {
  EXPECT_STREQ(to_string(SplitStrategy::kBottomNode), "bottom-node");
  EXPECT_STREQ(to_string(SplitStrategy::kHalf), "half");
  EXPECT_STREQ(to_string(SplitStrategy::kTopNode), "top-node");
}

}  // namespace
}  // namespace simdts::search
