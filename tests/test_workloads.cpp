#include "puzzle/workloads.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "puzzle/fifteen.hpp"
#include "puzzle/heuristic.hpp"
#include "puzzle/instances.hpp"
#include "search/serial.hpp"

namespace simdts::puzzle {
namespace {

bool heavy_tests() { return std::getenv("SIMDTS_HEAVY_TESTS") != nullptr; }

std::vector<PuzzleWorkload> all_workloads() {
  std::vector<PuzzleWorkload> all(paper_workloads().begin(),
                                  paper_workloads().end());
  all.push_back(table5_workload());
  all.insert(all.end(), test_workloads().begin(), test_workloads().end());
  return all;
}

TEST(Workloads, AllBoardsSolvable) {
  for (const auto& wl : all_workloads()) {
    EXPECT_TRUE(wl.board().solvable()) << wl.name;
  }
}

TEST(Workloads, PinnedSolutionLengthsAreConsistent) {
  for (const auto& wl : all_workloads()) {
    const int h = manhattan(wl.board());
    EXPECT_LE(h, wl.solution_length) << wl.name << ": h must be admissible";
    EXPECT_EQ(h % 2, wl.solution_length % 2)
        << wl.name << ": parity invariant violated";
    EXPECT_LE(wl.solution_length, wl.walk_steps)
        << wl.name << ": a k-step scramble solves in at most k moves";
    EXPECT_LE(wl.serial_final, wl.serial_total) << wl.name;
    EXPECT_GE(wl.goals, 1u) << wl.name;
  }
}

TEST(Workloads, PaperStandInsAreWithinTolerance) {
  for (const auto& wl : paper_workloads()) {
    ASSERT_GT(wl.paper_w, 0u) << wl.name;
    const double ratio = static_cast<double>(wl.serial_total) /
                         static_cast<double>(wl.paper_w);
    EXPECT_GT(ratio, 0.7) << wl.name;
    EXPECT_LT(ratio, 1.4) << wl.name;
  }
}

TEST(Workloads, OrderedByProblemSize) {
  const auto ws = paper_workloads();
  for (std::size_t i = 1; i < ws.size(); ++i) {
    EXPECT_LT(ws[i - 1].serial_total, ws[i].serial_total);
  }
}

class SmallWorkloads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SmallWorkloads, PinnedMeasurementsReproduce) {
  const auto& wl = test_workloads()[GetParam()];
  const FifteenPuzzle problem(wl.board());
  const auto r = search::serial_ida(problem);
  EXPECT_EQ(r.total_expanded, wl.serial_total) << wl.name;
  EXPECT_EQ(r.final_expanded, wl.serial_final) << wl.name;
  EXPECT_EQ(r.solution_bound, wl.solution_length) << wl.name;
  EXPECT_EQ(r.goals_found, wl.goals) << wl.name;
}

// The first four test workloads (up to ~100k nodes) verify in well under a
// second each; t-326k is also fine.
INSTANTIATE_TEST_SUITE_P(Pinned, SmallWorkloads,
                         ::testing::Range<std::size_t>(0, 5));

TEST(Workloads, HeavyPinnedMeasurementsReproduce) {
  if (!heavy_tests()) {
    GTEST_SKIP() << "set SIMDTS_HEAVY_TESTS=1 to re-verify the large pins";
  }
  std::vector<PuzzleWorkload> big(paper_workloads().begin(),
                                  paper_workloads().end());
  big.push_back(table5_workload());
  for (const auto& wl : big) {
    const FifteenPuzzle problem(wl.board());
    const auto r = search::serial_ida(problem);
    EXPECT_EQ(r.total_expanded, wl.serial_total) << wl.name;
    EXPECT_EQ(r.final_expanded, wl.serial_final) << wl.name;
    EXPECT_EQ(r.solution_bound, wl.solution_length) << wl.name;
    EXPECT_EQ(r.goals_found, wl.goals) << wl.name;
  }
}

TEST(Instances, KorfBoardsAreSolvable) {
  for (const auto& inst : korf_instances()) {
    EXPECT_TRUE(inst.board().solvable()) << inst.name;
    EXPECT_EQ(manhattan(inst.board()) % 2, inst.optimal % 2) << inst.name;
  }
}

TEST(Instances, EasyInstancesAreDistinct) {
  const auto easy = easy_instances();
  for (std::size_t i = 0; i < easy.size(); ++i) {
    for (std::size_t j = i + 1; j < easy.size(); ++j) {
      EXPECT_NE(easy[i].board(), easy[j].board());
    }
  }
}

}  // namespace
}  // namespace simdts::puzzle
