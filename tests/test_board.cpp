#include "puzzle/board.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <set>
#include <stdexcept>

namespace simdts::puzzle {
namespace {

TEST(Board, GoalLayout) {
  const Board g = Board::goal();
  EXPECT_EQ(g.tile(0), 0);
  for (int pos = 1; pos < kCells; ++pos) {
    EXPECT_EQ(g.tile(pos), pos);
  }
  EXPECT_EQ(g.blank_position(), 0);
}

TEST(Board, FromTilesRoundTrip) {
  const std::array<std::uint8_t, kCells> tiles{
      14, 13, 15, 7, 11, 12, 9, 5, 6, 0, 2, 1, 4, 8, 10, 3};
  const Board b = Board::from_tiles(tiles);
  EXPECT_EQ(b.tiles(), tiles);
  EXPECT_EQ(b.blank_position(), 9);
}

TEST(Board, FromTilesRejectsDuplicates) {
  std::array<std::uint8_t, kCells> tiles{};
  for (int i = 0; i < kCells; ++i) tiles[i] = static_cast<std::uint8_t>(i);
  tiles[5] = 4;  // duplicate 4, missing 5
  EXPECT_THROW(Board::from_tiles(tiles), ConfigError);
}

TEST(Board, FromTilesRejectsOutOfRange) {
  std::array<std::uint8_t, kCells> tiles{};
  for (int i = 0; i < kCells; ++i) tiles[i] = static_cast<std::uint8_t>(i);
  tiles[3] = 16;
  EXPECT_THROW(Board::from_tiles(tiles), ConfigError);
}

TEST(Board, IllegalMovesAtCorners) {
  const Board g = Board::goal();  // blank at 0 (upper-left)
  int blank = 0;
  EXPECT_FALSE(g.apply(Move::kUp, blank).has_value());
  EXPECT_FALSE(g.apply(Move::kLeft, blank).has_value());
  EXPECT_EQ(blank, 0);  // unchanged on failure
  EXPECT_TRUE(g.apply(Move::kDown, blank).has_value());
}

TEST(Board, ApplyMovesBlankAndTile) {
  const Board g = Board::goal();
  int blank = 0;
  std::uint8_t moved = 0;
  const auto b = g.apply(Move::kRight, blank, &moved);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(blank, 1);
  EXPECT_EQ(moved, 1);     // tile 1 slid left into the old blank
  EXPECT_EQ(b->tile(0), 1);
  EXPECT_EQ(b->tile(1), 0);
}

TEST(Board, MoveThenInverseRestores) {
  Board b = random_walk(42, 30);
  const Board original = b;
  int blank = b.blank_position();
  for (const Move m : {Move::kDown, Move::kRight, Move::kUp, Move::kLeft}) {
    int pos = blank;
    const auto moved = b.apply(m, pos);
    if (!moved.has_value()) continue;
    int back = pos;
    const auto restored = moved->apply(inverse(m), back);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(*restored, original);
    EXPECT_EQ(back, blank);
  }
}

TEST(Board, GoalIsSolvable) { EXPECT_TRUE(Board::goal().solvable()); }

TEST(Board, SwappingTwoTilesBreaksSolvability) {
  auto tiles = Board::goal().tiles();
  std::swap(tiles[1], tiles[2]);  // single transposition, blank untouched
  EXPECT_FALSE(Board::from_tiles(tiles).solvable());
}

TEST(Board, PermutationParityOfGoalIsEven) {
  EXPECT_EQ(Board::goal().permutation_parity(), 0);
}

TEST(Board, ParityFlipsWithEachMove) {
  Board b = Board::goal();
  int blank = 0;
  const int p0 = b.permutation_parity();
  b = *b.apply(Move::kRight, blank);
  EXPECT_NE(b.permutation_parity(), p0);
  b = *b.apply(Move::kDown, blank);
  EXPECT_EQ(b.permutation_parity(), p0);
}

class RandomWalks : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWalks, AlwaysSolvable) {
  for (int steps : {0, 1, 5, 20, 80}) {
    const Board b = random_walk(GetParam(), steps);
    EXPECT_TRUE(b.solvable()) << "seed=" << GetParam() << " steps=" << steps;
  }
}

TEST_P(RandomWalks, Deterministic) {
  EXPECT_EQ(random_walk(GetParam(), 50), random_walk(GetParam(), 50));
}

TEST_P(RandomWalks, DifferentSeedsDiffer) {
  EXPECT_NE(random_walk(GetParam(), 50), random_walk(GetParam() + 1, 50));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWalks,
                         ::testing::Values(1u, 2u, 3u, 17u, 303015u, 505006u));

TEST(Board, ZeroStepWalkIsGoal) {
  EXPECT_EQ(random_walk(7, 0), Board::goal());
}

TEST(Board, ToStringShowsAllTiles) {
  const std::string s = Board::goal().to_string();
  for (int t = 1; t < kCells; ++t) {
    EXPECT_NE(s.find(std::to_string(t)), std::string::npos) << t;
  }
  EXPECT_NE(s.find('.'), std::string::npos);  // the blank
}

TEST(Board, PackedRoundTrip) {
  const Board b = random_walk(99, 40);
  EXPECT_EQ(Board(b.packed()), b);
}

TEST(ManhattanBetween, Basics) {
  EXPECT_EQ(manhattan_between(0, 0), 0);
  EXPECT_EQ(manhattan_between(0, 3), 3);
  EXPECT_EQ(manhattan_between(0, 15), 6);
  EXPECT_EQ(manhattan_between(5, 10), 2);
  EXPECT_EQ(manhattan_between(10, 5), 2);
}

}  // namespace
}  // namespace simdts::puzzle
