// The solve-service layer (docs/service.md): admission control, deadline
// budgets, retry accounting, graceful degradation, and the crash-tolerant
// verified-on-read result cache.  The backbone assertions: every request in
// a trace is accounted for in exactly one terminal status, replays are
// byte-identical across host thread counts and fault arming, and a damaged
// cache journal can cause misses but never a wrong answer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fault/service_fault.hpp"
#include "runtime/sweep.hpp"
#include "service/admission.hpp"
#include "service/cache.hpp"
#include "service/request.hpp"
#include "service/service.hpp"

namespace simdts {
namespace {

std::string temp_path(const std::string& name) {
  const std::string p = ::testing::TempDir() + "simdts_service_" + name;
  std::remove(p.c_str());
  return p;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

service::Request make_req(std::uint64_t id, std::uint64_t arrival,
                          service::Priority pri, std::uint32_t tenant = 0,
                          std::uint64_t hint = 100) {
  service::Request r;
  r.id = id;
  r.tenant = tenant;
  r.arrival_tick = arrival;
  r.priority = pri;
  r.problem = service::ProblemKind::kSyntheticTree;
  r.instance_seed = 7000 + id;
  r.instance_size = 8;
  r.scheme = service::SchemeKind::kGpDk;
  r.p = 4;
  r.cost_hint = hint;
  return r;
}

// ---------------------------------------------------------------------------
// Service fault plans.
// ---------------------------------------------------------------------------

TEST(ServiceFaultPlan, ValidatesEventBounds) {
  using fault::ServiceFaultEvent;
  using fault::ServiceFaultKind;
  const fault::ServiceFaultPlan out_of_range(
      {ServiceFaultEvent{10, ServiceFaultKind::kEngineCrash, 1}});
  EXPECT_THROW(out_of_range.validate(10), ConfigError);
  EXPECT_NO_THROW(out_of_range.validate(11));

  const fault::ServiceFaultPlan zero_crash(
      {ServiceFaultEvent{0, ServiceFaultKind::kEngineCrash, 0}});
  EXPECT_THROW(zero_crash.validate(5), ConfigError);
  const fault::ServiceFaultPlan zero_stall(
      {ServiceFaultEvent{0, ServiceFaultKind::kQueueStall, 0}});
  EXPECT_THROW(zero_stall.validate(5), ConfigError);
  // A zero corrupt offset is byte 0 — legal.
  const fault::ServiceFaultPlan zero_corrupt(
      {ServiceFaultEvent{0, ServiceFaultKind::kCacheCorrupt, 0}});
  EXPECT_NO_THROW(zero_corrupt.validate(5));
}

TEST(ServiceFaultPlan, AccessorsAggregatePerRequest) {
  using fault::ServiceFaultEvent;
  using fault::ServiceFaultKind;
  const fault::ServiceFaultPlan plan(
      {ServiceFaultEvent{3, ServiceFaultKind::kEngineCrash, 2},
       ServiceFaultEvent{3, ServiceFaultKind::kEngineCrash, 1},
       ServiceFaultEvent{3, ServiceFaultKind::kCacheCorrupt, 5},
       ServiceFaultEvent{1, ServiceFaultKind::kQueueStall, 7},
       ServiceFaultEvent{1, ServiceFaultKind::kQueueStall, 4}});
  EXPECT_EQ(plan.crash_attempts_for(3), 3u);
  EXPECT_EQ(plan.crash_attempts_for(0), 0u);
  EXPECT_EQ(plan.stall_ticks_for(1), 11u);
  ASSERT_EQ(plan.corrupt_bytes_for(3).size(), 1u);
  EXPECT_EQ(plan.corrupt_bytes_for(3)[0], 5u);
  // Sorted by request index, stable within one.
  EXPECT_EQ(plan.events().front().request_index, 1u);
  EXPECT_EQ(plan.events().back().request_index, 3u);
}

TEST(ServiceFaultPlan, RandomIsSeedDeterministic) {
  const auto a = fault::ServiceFaultPlan::random(99, 500, 10, 5, 3);
  const auto b = fault::ServiceFaultPlan::random(99, 500, 10, 5, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.events().size(), 18u);
  EXPECT_NO_THROW(a.validate(500));
  const auto c = fault::ServiceFaultPlan::random(100, 500, 10, 5, 3);
  EXPECT_NE(a, c);
  EXPECT_THROW(fault::ServiceFaultPlan::random(1, 0, 1, 0, 0), ConfigError);
}

// ---------------------------------------------------------------------------
// Request schema and the content address.
// ---------------------------------------------------------------------------

TEST(ServiceRequest, ValidationRejectsNonsense) {
  service::Request r = make_req(1, 0, service::Priority::kStandard);
  EXPECT_NO_THROW(service::validate(r));
  r.p = 3;
  EXPECT_THROW(service::validate(r), ConfigError);
  r.p = 8192;
  EXPECT_THROW(service::validate(r), ConfigError);
  r = make_req(1, 0, service::Priority::kStandard);
  r.instance_size = 0;
  EXPECT_THROW(service::validate(r), ConfigError);
  r = make_req(1, 0, service::Priority::kStandard);
  r.cost_hint = 0;
  EXPECT_THROW(service::validate(r), ConfigError);
}

TEST(ServiceRequest, CanonicalKeyHashesContentNotEnvelope) {
  const service::Request a = make_req(1, 0, service::Priority::kStandard, 0);
  service::Request b = a;
  b.id = 999;
  b.tenant = 3;
  b.arrival_tick = 55;
  b.priority = service::Priority::kInteractive;
  b.cost_hint = 12345;
  EXPECT_EQ(service::canonical_key(a), service::canonical_key(b));

  service::Request c = a;
  c.instance_seed += 1;
  EXPECT_NE(service::canonical_key(a), service::canonical_key(c));
  service::Request d = a;
  d.scheme = service::SchemeKind::kNgpDp;
  EXPECT_NE(service::canonical_key(a), service::canonical_key(d));
  // Downgrades change the computation, so they change the key.
  EXPECT_NE(service::canonical_key(a, a.p, a.mode),
            service::canonical_key(a, a.p / 2, a.mode));
  EXPECT_NE(service::canonical_key(a, a.p, service::SolveMode::kExhaustive),
            service::canonical_key(a, a.p, service::SolveMode::kFirstSolution));
}

TEST(ServiceRequest, RandomTraceIsDeterministicAndOrdered) {
  const auto a = service::random_trace(2026, 64, 4);
  const auto b = service::random_trace(2026, 64, 4);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NO_THROW(service::validate(a[i]));
    if (i > 0) EXPECT_GE(a[i].arrival_tick, a[i - 1].arrival_tick);
    EXPECT_LT(a[i].tenant, 4u);
  }
}

// ---------------------------------------------------------------------------
// Admission control: deterministic overload policy.
// ---------------------------------------------------------------------------

service::AdmissionConfig tight_admission() {
  service::AdmissionConfig cfg;
  cfg.engines = 1;
  cfg.queue_capacity = 1;
  cfg.tenant_quota = 10;
  cfg.cycles_per_tick = 1;  // service time == cost_hint ticks
  cfg.degrade_depth = 99;
  return cfg;
}

TEST(Admission, ShedsCheapestFirstUnderOverload) {
  const service::AdmissionController ctl(tight_admission());
  const std::vector<service::Request> trace = {
      make_req(0, 0, service::Priority::kInteractive),
      make_req(1, 0, service::Priority::kStandard),
      make_req(2, 0, service::Priority::kBatch),
      make_req(3, 0, service::Priority::kInteractive),
  };
  const auto d = ctl.plan(trace, fault::ServiceFaultPlan{});
  ASSERT_EQ(d.size(), 4u);
  // r0 runs at once; r1 queues; batch r2 is the cheapest candidate and is
  // refused; interactive r3 then evicts queued standard r1.
  EXPECT_EQ(d[0].outcome, service::AdmissionOutcome::kAdmit);
  EXPECT_EQ(d[0].start_tick, 0u);
  EXPECT_EQ(d[1].outcome, service::AdmissionOutcome::kShed);
  EXPECT_NE(d[1].note.find("request=1"), std::string::npos) << d[1].note;
  EXPECT_EQ(d[2].outcome, service::AdmissionOutcome::kReject);
  EXPECT_NE(d[2].note.find("cheapest"), std::string::npos) << d[2].note;
  EXPECT_EQ(d[3].outcome, service::AdmissionOutcome::kAdmit);
  EXPECT_EQ(d[3].start_tick, 100u);
  EXPECT_EQ(d[3].queue_delay_ticks, 100u);
  // Replay: identical decisions.
  EXPECT_EQ(d, ctl.plan(trace, fault::ServiceFaultPlan{}));
}

TEST(Admission, TenantQuotaRejects) {
  service::AdmissionConfig cfg = tight_admission();
  cfg.engines = 2;
  cfg.queue_capacity = 8;
  cfg.tenant_quota = 1;
  const service::AdmissionController ctl(cfg);
  const std::vector<service::Request> trace = {
      make_req(0, 0, service::Priority::kStandard, /*tenant=*/7),
      make_req(1, 0, service::Priority::kStandard, /*tenant=*/7),
      make_req(2, 0, service::Priority::kStandard, /*tenant=*/8),
  };
  const auto d = ctl.plan(trace, fault::ServiceFaultPlan{});
  EXPECT_EQ(d[0].outcome, service::AdmissionOutcome::kAdmit);
  EXPECT_EQ(d[1].outcome, service::AdmissionOutcome::kReject);
  EXPECT_NE(d[1].note.find("quota"), std::string::npos) << d[1].note;
  EXPECT_EQ(d[2].outcome, service::AdmissionOutcome::kAdmit);
}

TEST(Admission, QueueStallDelaysDrainAndDeepensQueue) {
  service::AdmissionConfig cfg = tight_admission();
  cfg.queue_capacity = 4;
  const service::AdmissionController ctl(cfg);
  const std::vector<service::Request> trace = {
      make_req(0, 0, service::Priority::kStandard),
  };
  // Unstalled, the lone request starts immediately.
  const auto clean = ctl.plan(trace, fault::ServiceFaultPlan{});
  EXPECT_EQ(clean[0].queue_delay_ticks, 0u);
  // A stall at its own arrival pins it in the queue for the stall window.
  const fault::ServiceFaultPlan stall(
      {fault::ServiceFaultEvent{0, fault::ServiceFaultKind::kQueueStall, 10}});
  const auto stalled = ctl.plan(trace, stall);
  EXPECT_EQ(stalled[0].outcome, service::AdmissionOutcome::kAdmit);
  EXPECT_EQ(stalled[0].start_tick, 10u);
  EXPECT_EQ(stalled[0].queue_delay_ticks, 10u);
}

TEST(Admission, DegradeWatermarkMarksDowngrades) {
  service::AdmissionConfig cfg = tight_admission();
  cfg.queue_capacity = 8;
  cfg.degrade_depth = 2;
  const service::AdmissionController ctl(cfg);
  std::vector<service::Request> trace;
  for (std::uint64_t i = 0; i < 4; ++i) {
    trace.push_back(make_req(i, 0, service::Priority::kStandard));
  }
  const auto d = ctl.plan(trace, fault::ServiceFaultPlan{});
  EXPECT_FALSE(d[1].downshift_p);  // queue depth 1 on enqueue
  EXPECT_TRUE(d[2].downshift_p);   // depth 2: watermark reached
  EXPECT_TRUE(d[2].force_first_solution);
  EXPECT_TRUE(d[3].downshift_p);
}

TEST(Admission, RejectsUnsortedTraces) {
  const service::AdmissionController ctl(tight_admission());
  const std::vector<service::Request> trace = {
      make_req(0, 5, service::Priority::kStandard),
      make_req(1, 2, service::Priority::kStandard),
  };
  EXPECT_THROW(ctl.plan(trace, fault::ServiceFaultPlan{}), ConfigError);
}

// ---------------------------------------------------------------------------
// Result cache: journaled, verified on read.
// ---------------------------------------------------------------------------

TEST(ResultCache, RoundTripsAndPersists) {
  const std::string path = temp_path("roundtrip");
  {
    service::ResultCache cache(path);
    cache.insert(0xABC, "1 2 3");
    cache.insert(0xDEF, "40 50 60");
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.lookup(0xABC).value_or(""), "1 2 3");
    EXPECT_FALSE(cache.lookup(0x123).has_value());
  }
  service::ResultCache reloaded(path);
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.lookup(0xDEF).value_or(""), "40 50 60");
  EXPECT_EQ(reloaded.corruptions_detected(), 0u);
  std::remove(path.c_str());
}

TEST(ResultCache, LastInsertWins) {
  const std::string path = temp_path("lastwins");
  {
    service::ResultCache cache(path);
    cache.insert(7, "1 1 1");
    cache.insert(7, "2 2 2");
    EXPECT_EQ(cache.lookup(7).value_or(""), "2 2 2");
  }
  service::ResultCache reloaded(path);
  EXPECT_EQ(reloaded.lookup(7).value_or(""), "2 2 2");
  std::remove(path.c_str());
}

TEST(ResultCache, ScriptedCorruptionIsCaughtOnRead) {
  const std::string path = temp_path("scripted_corrupt");
  {
    service::ResultCache cache(path);
    cache.insert(42, "10 20 30");
    ASSERT_TRUE(cache.corrupt_payload_byte(42, 3));
    std::string diag;
    EXPECT_FALSE(cache.lookup(42, &diag).has_value());
    EXPECT_NE(diag.find("checksum mismatch"), std::string::npos) << diag;
    EXPECT_EQ(cache.corruptions_detected(), 1u);
    // The corrupt entry was erased: a second lookup is a clean miss.
    diag.clear();
    EXPECT_FALSE(cache.lookup(42, &diag).has_value());
    EXPECT_TRUE(diag.empty());
  }
  // Durability: the corruption survives reload (last-wins journal line) and
  // is caught there too — never served.
  service::ResultCache reloaded(path);
  std::string diag;
  EXPECT_FALSE(reloaded.lookup(42, &diag).has_value());
  EXPECT_NE(diag.find("checksum mismatch"), std::string::npos) << diag;
  std::remove(path.c_str());
}

TEST(ResultCache, CorruptOfAbsentKeyIsANoop) {
  const std::string path = temp_path("corrupt_absent");
  service::ResultCache cache(path);
  EXPECT_FALSE(cache.corrupt_payload_byte(1, 0));
  std::remove(path.c_str());
}

// The crash-tolerance fuzz: truncate the journal at every byte offset, and
// separately flip every byte, asserting the only observable outcomes are a
// clean miss or the exact inserted payload.  Wrong answers are not an
// outcome.
TEST(ResultCacheFuzz, TruncationAtEveryOffsetNeverServesWrongPayload) {
  const std::string path = temp_path("fuzz_trunc");
  const std::vector<std::pair<std::uint64_t, std::string>> entries = {
      {0x11, "1 2 3"}, {0x22, "444 555 666"}, {0x33, "7 8 9"}};
  {
    service::ResultCache cache(path);
    for (const auto& [k, v] : entries) cache.insert(k, v);
  }
  const std::string full = read_file(path);
  ASSERT_FALSE(full.empty());
  for (std::size_t len = 0; len <= full.size(); ++len) {
    write_file(path, full.substr(0, len));
    service::ResultCache cache(path);
    for (const auto& [k, v] : entries) {
      const auto hit = cache.lookup(k);
      if (hit.has_value()) {
        EXPECT_EQ(*hit, v) << "truncated at " << len;
      }
    }
  }
  // Untruncated: everything verifies.
  write_file(path, full);
  service::ResultCache cache(path);
  for (const auto& [k, v] : entries) {
    EXPECT_EQ(cache.lookup(k).value_or("<miss>"), v);
  }
  std::remove(path.c_str());
}

TEST(ResultCacheFuzz, BitFlipAtEveryOffsetNeverServesWrongPayload) {
  const std::string path = temp_path("fuzz_flip");
  const std::vector<std::pair<std::uint64_t, std::string>> entries = {
      {0xA1, "12 34 56"}, {0xB2, "9999 1 0"}};
  {
    service::ResultCache cache(path);
    for (const auto& [k, v] : entries) cache.insert(k, v);
  }
  const std::string full = read_file(path);
  for (std::size_t off = 0; off < full.size(); ++off) {
    std::string damaged = full;
    damaged[off] = static_cast<char>(damaged[off] ^ 0xFF);
    write_file(path, damaged);
    service::ResultCache cache(path);
    for (const auto& [k, v] : entries) {
      const auto hit = cache.lookup(k);
      if (hit.has_value()) {
        EXPECT_EQ(*hit, v) << "flipped offset " << off;
      }
    }
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// SolveService end to end.
// ---------------------------------------------------------------------------

service::ServiceConfig small_service(unsigned threads = 1) {
  service::ServiceConfig cfg;
  cfg.threads = threads;
  cfg.retry = runtime::RetryPolicy{3, 8, 0x5EEDULL};
  return cfg;
}

TEST(SolveService, EveryRequestIsAccountedFor) {
  service::SolveService svc(small_service());
  const auto trace = service::random_trace(4242, 48, 3);
  const auto resp = svc.run_trace(trace);
  ASSERT_EQ(resp.size(), trace.size());
  const auto& c = svc.counters();
  EXPECT_EQ(c.ok + c.cache_hits + c.coalesced + c.budget_exhausted + c.shed +
                c.rejected + c.failed,
            trace.size());
  EXPECT_EQ(c.admitted + c.shed + c.rejected, trace.size());
  for (std::size_t i = 0; i < resp.size(); ++i) {
    EXPECT_EQ(resp[i].request_id, trace[i].id);
    if (resp[i].status == service::ResponseStatus::kOk) {
      EXPECT_GT(resp[i].nodes_expanded, 0u) << i;
      EXPECT_GT(resp[i].attempts, 0u) << i;
    }
    if (resp[i].status == service::ResponseStatus::kShed ||
        resp[i].status == service::ResponseStatus::kRejected) {
      EXPECT_FALSE(resp[i].note.empty()) << i;
    }
  }
}

TEST(SolveService, ResponseLogIsByteIdenticalAcrossHostThreads) {
  const auto trace = service::random_trace(77, 40, 4);
  const fault::ServiceFaultPlan plan =
      fault::ServiceFaultPlan::random(5150, trace.size(), 4, 2, 2);
  std::string reference;
  service::ServiceCounters ref_counters;
  for (const unsigned threads : {1u, 2u, 8u}) {
    service::SolveService svc(small_service(threads));
    svc.arm_faults(plan);
    const std::string log = service::SolveService::response_log(
        svc.run_trace(trace));
    if (reference.empty()) {
      reference = log;
      ref_counters = svc.counters();
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(log, reference) << "threads=" << threads;
      EXPECT_EQ(svc.counters(), ref_counters) << "threads=" << threads;
    }
  }
}

TEST(SolveService, ScriptedCrashesRetryWithChargedBackoff) {
  std::vector<service::Request> trace;
  for (std::uint64_t i = 0; i < 5; ++i) {
    trace.push_back(make_req(i, i, service::Priority::kStandard));
    trace.back().instance_seed = 100 + i;  // distinct keys, no coalescing
  }
  // Request 2 crashes twice (recoverable), request 4 five times (fatal under
  // max_attempts=3).
  const fault::ServiceFaultPlan plan(
      {fault::ServiceFaultEvent{2, fault::ServiceFaultKind::kEngineCrash, 2},
       fault::ServiceFaultEvent{4, fault::ServiceFaultKind::kEngineCrash, 5}});
  service::SolveService svc(small_service());
  svc.arm_faults(plan);
  const auto resp = svc.run_trace(trace);

  EXPECT_EQ(resp[2].status, service::ResponseStatus::kOk);
  EXPECT_EQ(resp[2].attempts, 3u);
  // The virtual backoff charge is the pinned pure schedule, salted by the
  // execution slot (slot == trace position here: no dedup, all admitted).
  const auto& retry = svc.config().retry;
  EXPECT_EQ(resp[2].backoff_ms_total,
            runtime::backoff_delay_ms(retry, 1, 2) +
                runtime::backoff_delay_ms(retry, 2, 2));
  EXPECT_GT(resp[2].backoff_ms_total, 0u);
  EXPECT_GT(resp[2].nodes_expanded, 0u);

  EXPECT_EQ(resp[4].status, service::ResponseStatus::kFailed);
  EXPECT_EQ(resp[4].attempts, 3u);
  EXPECT_NE(resp[4].note.find("retries exhausted"), std::string::npos)
      << resp[4].note;
  EXPECT_NE(resp[4].note.find("scripted engine crash"), std::string::npos)
      << resp[4].note;

  EXPECT_EQ(svc.counters().retries, 4u);  // 2 recoverable + 2 fatal-path
  EXPECT_EQ(svc.counters().failed, 1u);
  EXPECT_EQ(svc.counters().ok, 4u);
}

TEST(SolveService, DeadlineBudgetYieldsTypedExhaustion) {
  std::vector<service::Request> trace = {
      make_req(0, 0, service::Priority::kStandard)};
  trace[0].instance_size = 12;
  trace[0].cycle_budget = 2;  // far too tight for a depth-12 tree on P=4
  service::SolveService svc(small_service());
  const auto resp = svc.run_trace(trace);
  EXPECT_EQ(resp[0].status, service::ResponseStatus::kBudgetExhausted);
  EXPECT_GT(resp[0].expand_cycles, 0u);
  EXPECT_LE(resp[0].expand_cycles, 2u);
  EXPECT_FALSE(resp[0].note.empty());
  EXPECT_EQ(svc.counters().budget_exhausted, 1u);
}

TEST(SolveService, DegradedRequestsRecordTheirDowngrades) {
  service::ServiceConfig cfg = small_service();
  cfg.admission.engines = 1;
  cfg.admission.queue_capacity = 8;
  cfg.admission.degrade_depth = 2;
  cfg.admission.cycles_per_tick = 1;  // long virtual service times
  service::SolveService svc(cfg);
  std::vector<service::Request> trace;
  for (std::uint64_t i = 0; i < 5; ++i) {
    trace.push_back(make_req(i, 0, service::Priority::kStandard));
    trace.back().instance_seed = 300 + i;
    trace.back().p = 8;
  }
  const auto resp = svc.run_trace(trace);
  bool degraded_seen = false;
  for (const auto& r : resp) {
    if (r.downshifted_p) {
      degraded_seen = true;
      EXPECT_EQ(r.executed_p, 4u);
      EXPECT_TRUE(r.first_solution_forced);
    }
  }
  EXPECT_TRUE(degraded_seen);
  EXPECT_GT(svc.counters().degraded, 0u);
}

TEST(SolveService, IdenticalRequestsCoalesceOntoOneSolve) {
  std::vector<service::Request> trace = {
      make_req(10, 0, service::Priority::kStandard, /*tenant=*/0),
      make_req(11, 0, service::Priority::kStandard, /*tenant=*/1)};
  trace[1].instance_seed = trace[0].instance_seed;  // identical content
  service::SolveService svc(small_service());
  const auto resp = svc.run_trace(trace);
  EXPECT_EQ(resp[0].status, service::ResponseStatus::kOk);
  EXPECT_EQ(resp[1].status, service::ResponseStatus::kCoalesced);
  EXPECT_EQ(resp[1].nodes_expanded, resp[0].nodes_expanded);
  EXPECT_EQ(resp[1].attempts, 0u);
  EXPECT_NE(resp[1].note.find("coalesced with request 10"), std::string::npos)
      << resp[1].note;
  EXPECT_EQ(svc.counters().coalesced, 1u);
}

TEST(SolveService, WarmCacheTurnsSolvesIntoVerifiedHits) {
  const std::string path = temp_path("warm_cache");
  const auto trace = service::random_trace(31337, 24, 2);
  service::ServiceCounters first;
  {
    service::ServiceConfig cfg = small_service();
    cfg.cache_path = path;
    service::SolveService svc(cfg);
    const auto resp = svc.run_trace(trace);
    first = svc.counters();
    ASSERT_GT(first.ok, 0u);
  }
  {
    service::ServiceConfig cfg = small_service();
    cfg.cache_path = path;
    service::SolveService svc(cfg);
    const auto resp = svc.run_trace(trace);
    const auto& second = svc.counters();
    // Every completed solve (and every request that coalesced onto one)
    // replays as a verified cache hit; nothing is recomputed.
    EXPECT_EQ(second.cache_hits, first.ok + first.coalesced);
    EXPECT_EQ(second.cache_hits + second.ok + second.coalesced +
                  second.budget_exhausted + second.failed,
              first.ok + first.coalesced + first.budget_exhausted +
                  first.failed);
    for (std::size_t i = 0; i < resp.size(); ++i) {
      if (resp[i].status == service::ResponseStatus::kCacheHit) {
        EXPECT_GT(resp[i].nodes_expanded, 0u) << i;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(SolveService, CorruptedCacheEntryIsNeverServed) {
  const std::string path = temp_path("corrupt_e2e");
  std::vector<service::Request> trace;
  for (std::uint64_t i = 0; i < 3; ++i) {
    trace.push_back(make_req(i, i, service::Priority::kStandard));
    trace.back().instance_seed = 500 + i;
  }
  service::Response clean_r1;
  {
    service::ServiceConfig cfg = small_service();
    cfg.cache_path = path;
    service::SolveService svc(cfg);
    // Corrupt request 1's entry right after it is cached.
    svc.arm_faults(fault::ServiceFaultPlan({fault::ServiceFaultEvent{
        1, fault::ServiceFaultKind::kCacheCorrupt, 2}}));
    clean_r1 = svc.run_trace(trace)[1];
    ASSERT_EQ(clean_r1.status, service::ResponseStatus::kOk);
  }
  {
    service::ServiceConfig cfg = small_service();
    cfg.cache_path = path;
    service::SolveService svc(cfg);
    const auto resp = svc.run_trace(trace);
    // Requests 0 and 2 hit; request 1's damaged entry is detected, reported,
    // and re-solved — with the same answer as the clean run, never garbage.
    EXPECT_EQ(resp[0].status, service::ResponseStatus::kCacheHit);
    EXPECT_EQ(resp[2].status, service::ResponseStatus::kCacheHit);
    EXPECT_EQ(resp[1].status, service::ResponseStatus::kOk);
    EXPECT_NE(resp[1].note.find("checksum mismatch"), std::string::npos)
        << resp[1].note;
    EXPECT_EQ(resp[1].nodes_expanded, clean_r1.nodes_expanded);
    EXPECT_EQ(svc.counters().cache_corruptions, 1u);
  }
  std::remove(path.c_str());
}

TEST(SolveService, ReplayWithSamePlanIsByteIdentical) {
  const auto trace = service::random_trace(888, 32, 3);
  const auto plan = fault::ServiceFaultPlan::random(999, trace.size(), 3, 1, 1);
  std::string logs[2];
  for (int round = 0; round < 2; ++round) {
    service::SolveService svc(small_service(round == 0 ? 1 : 4));
    svc.arm_faults(plan);
    logs[round] =
        service::SolveService::response_log(svc.run_trace(trace));
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_FALSE(logs[0].empty());
}

}  // namespace
}  // namespace simdts