#include "simd/rendezvous.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace simdts::simd {
namespace {

TEST(Ranked, PlainOrder) {
  const std::vector<std::uint8_t> flags{1, 0, 1, 0, 1};
  const auto r = ranked(flags);
  EXPECT_EQ(r, (std::vector<PeIndex>{0, 2, 4}));
}

TEST(Ranked, RotatedStartsAfterPointer) {
  const std::vector<std::uint8_t> flags{1, 0, 1, 0, 1};
  // Pointer at 2: walk 3, 4, 0, 1, 2 -> set PEs in order 4, 0, 2.
  const auto r = ranked(flags, 2);
  EXPECT_EQ(r, (std::vector<PeIndex>{4, 0, 2}));
}

TEST(Ranked, PointerAtLastWrapsToStart) {
  const std::vector<std::uint8_t> flags{1, 1, 1};
  const auto r = ranked(flags, 2);
  EXPECT_EQ(r, (std::vector<PeIndex>{0, 1, 2}));
}

TEST(Ranked, PointerOnUnsetPe) {
  const std::vector<std::uint8_t> flags{0, 1, 0, 1};
  const auto r = ranked(flags, 1);  // walk 2, 3, 0, 1
  EXPECT_EQ(r, (std::vector<PeIndex>{3, 1}));
}

TEST(Ranked, EmptyFlags) {
  const std::vector<std::uint8_t> flags;
  EXPECT_TRUE(ranked(flags).empty());
}

TEST(Rendezvous, MatchesEqualCounts) {
  const std::vector<std::uint8_t> donors{1, 0, 1, 0};
  const std::vector<std::uint8_t> receivers{0, 1, 0, 1};
  const auto pairs = rendezvous(donors, receivers);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (Pair{0, 1}));
  EXPECT_EQ(pairs[1], (Pair{2, 3}));
}

TEST(Rendezvous, MoreReceiversThanDonors) {
  // "If I > A then only the first A idle processors are matched."
  const std::vector<std::uint8_t> donors{1, 0, 0, 0};
  const std::vector<std::uint8_t> receivers{0, 1, 1, 1};
  const auto pairs = rendezvous(donors, receivers);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (Pair{0, 1}));
}

TEST(Rendezvous, MoreDonorsThanReceivers) {
  const std::vector<std::uint8_t> donors{1, 1, 1, 0};
  const std::vector<std::uint8_t> receivers{0, 0, 0, 1};
  const auto pairs = rendezvous(donors, receivers);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (Pair{0, 3}));
}

TEST(Rendezvous, NoDonors) {
  const std::vector<std::uint8_t> donors(4, 0);
  const std::vector<std::uint8_t> receivers(4, 1);
  EXPECT_TRUE(rendezvous(donors, receivers).empty());
}

TEST(Rendezvous, DonorsAndReceiversDistinctWithinMatching) {
  const std::vector<std::uint8_t> donors{1, 1, 0, 0, 1, 1};
  const std::vector<std::uint8_t> receivers{0, 0, 1, 1, 0, 0};
  const auto pairs = rendezvous(donors, receivers, 4);
  ASSERT_EQ(pairs.size(), 2u);
  std::vector<bool> donor_seen(6, false);
  std::vector<bool> receiver_seen(6, false);
  for (const auto& p : pairs) {
    EXPECT_TRUE(donors[p.donor]);
    EXPECT_TRUE(receivers[p.receiver]);
    EXPECT_FALSE(donor_seen[p.donor]);
    EXPECT_FALSE(receiver_seen[p.receiver]);
    donor_seen[p.donor] = true;
    receiver_seen[p.receiver] = true;
  }
}

TEST(Rendezvous, RotationChangesDonorsNotReceivers) {
  const std::vector<std::uint8_t> donors{1, 1, 1, 1, 0, 0};
  const std::vector<std::uint8_t> receivers{0, 0, 0, 0, 1, 1};
  const auto plain = rendezvous(donors, receivers);
  ASSERT_EQ(plain.size(), 2u);
  EXPECT_EQ(plain[0], (Pair{0, 4}));
  EXPECT_EQ(plain[1], (Pair{1, 5}));

  const auto rotated = rendezvous(donors, receivers, 1);
  ASSERT_EQ(rotated.size(), 2u);
  EXPECT_EQ(rotated[0], (Pair{2, 4}));
  EXPECT_EQ(rotated[1], (Pair{3, 5}));
}

}  // namespace
}  // namespace simdts::simd
