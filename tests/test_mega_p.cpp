// Mega-P regressions: the machine-size axis at and beyond 2^16 lanes.
//
// Two classes of bug this file exists to catch:
//  - 32-bit (or narrower) index assumptions on the P axis — exercised at a
//    non-power-of-64 P > 2^16, where word counts, tail masks, and rank
//    arithmetic all take their ugly branches; and
//  - result drift at P = 2^20: the mega-P configuration must stay a pure
//    function of (problem, P, config, fault plan) — bit-identical across
//    1/2/8 host threads, with and without faults armed, on both stack
//    representations.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "lb/engine.hpp"
#include "search/serial.hpp"
#include "simd/thread_pool.hpp"
#include "synthetic/tree.hpp"

namespace simdts::lb {
namespace {

using synthetic::Tree;

/// A ~600k-node tree: big enough for a few dozen expand cycles and real
/// load-balancing traffic at P = 2^20, while the vast majority of lanes
/// stay idle — exactly the sparse regime the summary planes exist for.
Tree small_tree() { return Tree(synthetic::Params{42, 4, 0.6, 16}); }

template <typename EngineT>
IterationStats run_once(const Tree& tree, std::uint32_t p, unsigned threads,
                        const fault::FaultPlan* plan) {
  simd::ThreadPool pool(threads);
  simd::Machine machine(p, simd::cm2_cost_model(), &pool);
  EngineT engine(tree, machine, gp_static(0.9));
  if (plan != nullptr) engine.arm_faults(plan);
  return engine.run_iteration(search::kUnbounded);
}

TEST(MegaP, NonPowerOf64AbovePow16IsThreadCountInvariant) {
  const Tree tree = small_tree();
  const std::uint32_t p = 70001;  // > 2^16, not a multiple of 64
  const IterationStats base =
      run_once<Engine<Tree>>(tree, p, 1, nullptr);
  // The full tree fits one iteration; expansion count must match serial DFS.
  const search::SerialIterationResult serial =
      search::serial_dfs(tree, tree.root(), search::kUnbounded);
  EXPECT_EQ(base.nodes_expanded, serial.nodes_expanded);
  for (const unsigned threads : {2u, 8u}) {
    EXPECT_EQ(base, (run_once<Engine<Tree>>(tree, p, threads, nullptr)))
        << "threads=" << threads;
  }
  // CompactStack changes the representation, never the results.
  for (const unsigned threads : {1u, 8u}) {
    EXPECT_EQ(base, (run_once<CompactEngine<Tree>>(tree, p, threads, nullptr)))
        << "compact threads=" << threads;
  }
}

TEST(MegaP, TwoToTheTwentyLanesBitIdenticalAcrossThreads) {
  const Tree tree = small_tree();
  const std::uint32_t p = 1u << 20;
  const IterationStats base =
      run_once<CompactEngine<Tree>>(tree, p, 1, nullptr);
  EXPECT_GT(base.nodes_expanded, 0u);
  for (const unsigned threads : {2u, 8u}) {
    EXPECT_EQ(base, (run_once<CompactEngine<Tree>>(tree, p, threads, nullptr)))
        << "threads=" << threads;
  }
}

TEST(MegaP, TwoToTheTwentyLanesWithFaultPlanArmed) {
  const Tree tree = small_tree();
  const std::uint32_t p = 1u << 20;
  // Kill lanes spread across the whole index range — including the top
  // word region, where a narrowed index would alias a low lane.
  const fault::FaultPlan plan({
      {3, fault::FaultKind::kKillPe, 0, 0},
      {4, fault::FaultKind::kKillPe, (1u << 20) - 1, 0},
      {5, fault::FaultKind::kKillPe, 70001, 0},
      {7, fault::FaultKind::kRevivePe, 70001, 0},
  });
  const IterationStats base = run_once<CompactEngine<Tree>>(tree, p, 1, &plan);
  EXPECT_EQ(base.pes_killed, 3u);
  EXPECT_EQ(base.pes_revived, 1u);
  for (const unsigned threads : {2u, 8u}) {
    EXPECT_EQ(base, (run_once<CompactEngine<Tree>>(tree, p, threads, &plan)))
        << "threads=" << threads;
  }
}

TEST(MegaP, TrimMemoryReleasesDrainedLanesAfterRun) {
  const Tree tree = small_tree();
  const std::uint32_t p = 1u << 17;
  simd::Machine machine(p, simd::cm2_cost_model());
  CompactEngine<Tree> engine(tree, machine, gp_static(0.9));
  (void)engine.run_iteration(search::kUnbounded);
  engine.trim_memory();
  // Every stack drained by the completed iteration returns its heap to the
  // allocator: the pooled-release path of the memory-bounded design.
  EXPECT_EQ(engine.stack_memory_bytes(), 0u);
}

}  // namespace
}  // namespace simdts::lb
