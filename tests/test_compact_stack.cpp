// CompactStack: memory-bounded delta stacks must be observationally
// identical to WorkStack under the engine's access discipline.
//
// The contract under test: the problem delta codecs are bit-exact inverses
// of expand(); a CompactStack driven through the engine's op mix (pop,
// batched append of the popped node's children, push/take_bottom in serial
// phases, drain, split/receive) pops exactly the nodes a WorkStack pops;
// an engine templated on CompactStack produces bit-identical runs to the
// WorkStack engine; and the representation actually is at least 4x smaller
// per lane on the 15-puzzle — the mega-P memory claim.
#include "search/compact_stack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "lb/engine.hpp"
#include "simd/thread_pool.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"
#include "search/work_stack.hpp"
#include "synthetic/tree.hpp"

namespace simdts::search {
namespace {

using puzzle::FifteenPuzzle;
using synthetic::Tree;

std::uint64_t splitmix(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E9B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------------------
// Delta codecs: decode must replay expand() bit-exactly, undo must invert.
// ---------------------------------------------------------------------------

TEST(DeltaCodec, FifteenDecodeAndUndoAreExactInverses) {
  const auto& wl = puzzle::test_workloads()[1];  // t-4k
  const FifteenPuzzle problem(wl.board());
  std::uint64_t seed = 7;
  FifteenPuzzle::Node n = problem.root();
  std::vector<FifteenPuzzle::Node> kids;
  search::NextBound nb;
  for (int depth = 0; depth < 60; ++depth) {
    kids.clear();
    problem.expand(n, search::kUnbounded, kids, nb);
    if (kids.empty()) break;
    for (const auto& c : kids) {
      const std::uint8_t d = problem.encode_delta(n, c);
      EXPECT_EQ(problem.decode_delta(n, d), c);
      EXPECT_EQ(problem.undo_delta(c, d, n.last), n);
    }
    n = kids[splitmix(seed) % kids.size()];
  }
}

TEST(DeltaCodec, FifteenLinearConflictHeuristicRoundTrips) {
  const auto& wl = puzzle::test_workloads()[0];
  const FifteenPuzzle problem(wl.board(), puzzle::Heuristic::kLinearConflict);
  FifteenPuzzle::Node n = problem.root();
  std::vector<FifteenPuzzle::Node> kids;
  search::NextBound nb;
  std::uint64_t seed = 11;
  for (int depth = 0; depth < 20; ++depth) {
    kids.clear();
    problem.expand(n, search::kUnbounded, kids, nb);
    if (kids.empty()) break;
    for (const auto& c : kids) {
      const std::uint8_t d = problem.encode_delta(n, c);
      EXPECT_EQ(problem.decode_delta(n, d), c);
      EXPECT_EQ(problem.undo_delta(c, d, n.last), n);
    }
    n = kids[splitmix(seed) % kids.size()];
  }
}

TEST(DeltaCodec, SyntheticDecodeReplaysExpand) {
  const Tree tree(synthetic::Params{42, 4, 0.9, 12});
  Tree::Node n = tree.root();
  std::vector<Tree::Node> kids;
  search::NextBound nb;
  std::uint64_t seed = 3;
  for (int depth = 0; depth < 12; ++depth) {
    kids.clear();
    tree.expand(n, search::kUnbounded, kids, nb);
    if (kids.empty()) break;
    for (const auto& c : kids) {
      const std::uint8_t d = tree.encode_delta(n, c);
      EXPECT_EQ(tree.decode_delta(n, d), c);
    }
    n = kids[splitmix(seed) % kids.size()];
  }
}

// ---------------------------------------------------------------------------
// Stack-level oracle: drive both representations through the engine's op
// mix and demand identical observable behaviour at every step.
// ---------------------------------------------------------------------------

class StackPair {
 public:
  explicit StackPair(const FifteenPuzzle& problem) : problem_(problem) {
    compact_.bind(problem);
  }

  void push(const FifteenPuzzle::Node& n) {
    full_.push(n);
    compact_.push(n);
    check();
  }

  /// The expand cycle's pop -> expand -> append step.  Returns the popped
  /// node (already verified equal across representations).
  FifteenPuzzle::Node pop_and_expand(search::Bound bound) {
    const FifteenPuzzle::Node a = full_.pop();
    const FifteenPuzzle::Node b = compact_.pop();
    EXPECT_EQ(a, b);
    kids_.clear();
    search::NextBound nb;
    problem_.expand(a, bound, kids_, nb);
    if (!kids_.empty()) {
      // append() consumes its source, so feed each stack its own copy.
      std::vector<FifteenPuzzle::Node> copy = kids_;
      full_.append(copy.data(), copy.size());
      compact_.append(kids_.data(), kids_.size());
    }
    check();
    return a;
  }

  void take_bottom() {
    EXPECT_EQ(full_.take_bottom(), compact_.take_bottom());
    check();
  }

  void drain_check_and_restore() {
    std::vector<FifteenPuzzle::Node> a;
    std::vector<FifteenPuzzle::Node> b;
    full_.drain_into(a);
    compact_.drain_into(b);
    EXPECT_EQ(a, b);
    for (const auto& n : a) push(n);
  }

  void split_both(SplitStrategy strategy) {
    const std::vector<FifteenPuzzle::Node> a = split(full_, strategy);
    const std::vector<FifteenPuzzle::Node> b = split(compact_, strategy);
    EXPECT_EQ(a, b);
    check();
  }

  [[nodiscard]] std::size_t size() const { return full_.size(); }
  [[nodiscard]] WorkStack<FifteenPuzzle::Node>& full() { return full_; }
  [[nodiscard]] CompactStack<FifteenPuzzle>& compact() { return compact_; }

 private:
  void check() const {
    EXPECT_EQ(full_.size(), compact_.size());
    EXPECT_EQ(full_.empty(), compact_.empty());
    EXPECT_EQ(full_.splittable(), compact_.splittable());
  }

  const FifteenPuzzle& problem_;
  WorkStack<FifteenPuzzle::Node> full_;
  CompactStack<FifteenPuzzle> compact_;
  std::vector<FifteenPuzzle::Node> kids_;
};

TEST(CompactStack, MirrorsWorkStackUnderRandomEngineOpMix) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  StackPair pair(problem);
  pair.push(problem.root());
  const search::Bound bound = problem.f_value(problem.root()) + 8;
  std::uint64_t seed = 12345;
  for (int step = 0; step < 4000; ++step) {
    if (pair.size() == 0) {
      pair.push(problem.root());
      continue;
    }
    const std::uint64_t r = splitmix(seed) % 100;
    if (r < 70) {
      pair.pop_and_expand(bound);
    } else if (r < 85) {
      pair.take_bottom();
    } else if (r < 90 && pair.size() >= 2) {
      pair.split_both(SplitStrategy::kBottomNode);
    } else if (r < 94 && pair.size() >= 2) {
      pair.split_both(SplitStrategy::kTopNode);
    } else if (r < 97 && pair.size() >= 2) {
      pair.split_both(SplitStrategy::kHalf);
    } else {
      pair.drain_check_and_restore();
    }
  }
}

TEST(CompactStack, SplitAndReceiveMatchWorkStackForEveryStrategy) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  const search::Bound bound = problem.f_value(problem.root()) + 10;
  for (const SplitStrategy strategy :
       {SplitStrategy::kBottomNode, SplitStrategy::kHalf,
        SplitStrategy::kTopNode}) {
    StackPair donor(problem);
    donor.push(problem.root());
    for (int i = 0; i < 6 && donor.size() > 0; ++i) {
      donor.pop_and_expand(bound);
    }
    ASSERT_GE(donor.size(), 2u);

    std::vector<FifteenPuzzle::Node> donated_full =
        split(donor.full(), strategy);
    std::vector<FifteenPuzzle::Node> donated_compact =
        split(donor.compact(), strategy);
    EXPECT_EQ(donated_full, donated_compact);
    EXPECT_FALSE(donor.full().empty());

    StackPair rec(problem);
    receive(rec.full(), std::move(donated_full));
    receive(rec.compact(), std::move(donated_compact));
    std::vector<FifteenPuzzle::Node> a;
    std::vector<FifteenPuzzle::Node> b;
    rec.full().drain_into(a);
    rec.compact().drain_into(b);
    EXPECT_EQ(a, b);
    // The donor must still pop identically after the split.
    while (donor.size() > 0) {
      donor.pop_and_expand(0);  // bound 0: pure pop, no children survive
    }
  }
}

TEST(CompactStack, ClearReleasesEverythingAndHeaderStaysSmall) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  CompactStack<FifteenPuzzle> s;
  s.bind(problem);
  EXPECT_EQ(s.memory_bytes(), 0u);
  s.push(problem.root());
  EXPECT_GT(s.memory_bytes(), 0u);
  s.clear();
  EXPECT_EQ(s.memory_bytes(), 0u);
  EXPECT_TRUE(s.empty());
  // The whole representation hides behind one pointer: an idle lane pays a
  // pointer + size + problem pointer, nothing more.
  EXPECT_LE(sizeof(CompactStack<FifteenPuzzle>), 24u);
}

TEST(CompactStack, ShrinkToFitReleasesOnlyWhenEmpty) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  CompactStack<FifteenPuzzle> s;
  s.bind(problem);
  s.push(problem.root());
  s.shrink_to_fit();
  EXPECT_EQ(s.size(), 1u);
  EXPECT_GT(s.memory_bytes(), 0u);
  (void)s.pop();
  s.shrink_to_fit();
  EXPECT_EQ(s.memory_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// The memory claim, both mechanisms (the bench's bytes_per_lane figure
// time-averages these over a real mega-P engine run):
//  - at equal content a deep stack costs ~3 bytes/entry + path instead of
//    16 bytes/entry, and
//  - a drained lane releases its heap entirely, while WorkStack's ring
//    retains peak capacity for the rest of the run.
// ---------------------------------------------------------------------------

TEST(CompactStack, DeepDfsLifecycleMemory) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());

  WorkStack<FifteenPuzzle::Node> full;
  CompactStack<FifteenPuzzle> compact;
  compact.bind(problem);
  full.push(problem.root());
  compact.push(problem.root());
  std::vector<FifteenPuzzle::Node> kids;
  std::size_t peak_full = 0;
  std::size_t peak_compact = 0;
  search::NextBound nb;
  // Unbounded descent: the worst-case stack growth memory-bounded stacks
  // exist for (stack depth is what P multiplies at mega-P).
  for (int step = 0; step < 8000; ++step) {
    const FifteenPuzzle::Node a = full.pop();
    const FifteenPuzzle::Node b = compact.pop();
    ASSERT_EQ(a, b);
    kids.clear();
    problem.expand(a, search::kUnbounded, kids, nb);
    std::vector<FifteenPuzzle::Node> copy = kids;
    full.append(copy.data(), copy.size());
    compact.append(kids.data(), kids.size());
    peak_full = std::max(peak_full, full.memory_bytes());
    peak_compact = std::max(peak_compact, compact.memory_bytes());
  }
  ASSERT_GT(peak_compact, 0u);
  // 16 bytes/entry vs 2 bytes/entry + 1 path byte/level + one full Node per
  // 255 levels (the depth-bound segment split).  Measures ~6x; gate at the
  // 4x the mega_p benchmark section claims, leaving room for allocator
  // rounding on either side.
  EXPECT_GE(peak_full, 4 * peak_compact)
      << "full=" << peak_full << " compact=" << peak_compact;

  // Drain both stacks through the engine's pop discipline, then apply the
  // expand cycle's idle-lane hook: the compact lane returns every heap byte;
  // the ring deliberately retains its peak capacity.
  while (!full.empty()) {
    ASSERT_EQ(full.pop(), compact.pop());
  }
  compact.release_if_drained();
  EXPECT_EQ(compact.memory_bytes(), 0u);
  EXPECT_EQ(full.memory_bytes(), peak_full);
  EXPECT_GE(full.memory_bytes(), 4 * (compact.memory_bytes() + 1));
}

// ---------------------------------------------------------------------------
// Engine equivalence: an Engine on CompactStack is bit-identical to the
// WorkStack engine — stats, goal order, simulated clock.
// ---------------------------------------------------------------------------

template <typename ProblemT>
void expect_equal_runs(const ProblemT& problem, lb::SchemeConfig cfg,
                       std::uint32_t p) {
  simd::Machine m_full(p, simd::cm2_cost_model());
  simd::Machine m_compact(p, simd::cm2_cost_model());
  lb::Engine<ProblemT> full(problem, m_full, cfg);
  lb::CompactEngine<ProblemT> compact(problem, m_compact, cfg);
  const lb::RunStats a = full.run();
  const lb::RunStats b = compact.run();
  EXPECT_EQ(a.total.nodes_expanded, b.total.nodes_expanded) << cfg.name();
  EXPECT_EQ(a.total.expand_cycles, b.total.expand_cycles) << cfg.name();
  EXPECT_EQ(a.total.lb_phases, b.total.lb_phases) << cfg.name();
  EXPECT_EQ(a.total.transfers, b.total.transfers) << cfg.name();
  EXPECT_EQ(a.solution_bound, b.solution_bound) << cfg.name();
  EXPECT_EQ(a.goals_found, b.goals_found) << cfg.name();
  EXPECT_EQ(full.goal_nodes(), compact.goal_nodes()) << cfg.name();
  EXPECT_DOUBLE_EQ(m_full.clock().elapsed, m_compact.clock().elapsed)
      << cfg.name();
}

TEST(CompactEngine, BitIdenticalToWorkStackEngineOnPuzzle) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  expect_equal_runs(problem, lb::gp_static(0.9), 64);
  expect_equal_runs(problem, lb::ngp_dp(), 64);
  expect_equal_runs(problem, lb::gp_dk(), 37);  // non-power-of-two P
}

TEST(CompactEngine, BitIdenticalAcrossSplitStrategiesAndBaselines) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  lb::SchemeConfig half = lb::gp_static(0.75);
  half.split = SplitStrategy::kHalf;
  expect_equal_runs(problem, half, 64);
  lb::SchemeConfig top = lb::gp_static(0.75);
  top.split = SplitStrategy::kTopNode;
  expect_equal_runs(problem, top, 64);
  // Frye-style baselines: give-one transfers and ring neighbour matching.
  lb::SchemeConfig fess;
  fess.match = lb::MatchScheme::kNGP;
  fess.trigger = lb::TriggerKind::kAnyIdle;
  fess.transfer = lb::TransferPolicy::kGiveOneNodeEach;
  fess.max_pairs_per_round = 1;
  expect_equal_runs(problem, fess, 32);
  lb::SchemeConfig ring;
  ring.match = lb::MatchScheme::kNeighbor;
  ring.trigger = lb::TriggerKind::kEveryCycle;
  ring.transfer = lb::TransferPolicy::kGiveOneNodeEach;
  expect_equal_runs(problem, ring, 32);
}

TEST(CompactEngine, BitIdenticalOnSyntheticTree) {
  const Tree tree(synthetic::Params{42, 4, 0.6, 12});
  simd::Machine m_full(64, simd::cm2_cost_model());
  simd::Machine m_compact(64, simd::cm2_cost_model());
  lb::Engine<Tree> full(tree, m_full, lb::gp_static(0.9));
  lb::CompactEngine<Tree> compact(tree, m_compact, lb::gp_static(0.9));
  const lb::IterationStats a = full.run_iteration(search::kUnbounded);
  const lb::IterationStats b = compact.run_iteration(search::kUnbounded);
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
  EXPECT_EQ(a.expand_cycles, b.expand_cycles);
  EXPECT_EQ(a.lb_phases, b.lb_phases);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_DOUBLE_EQ(m_full.clock().elapsed, m_compact.clock().elapsed);
}

TEST(CompactEngine, BitIdenticalUnderFaultsAndThreads) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  const fault::FaultPlan plan = fault::FaultPlan::random_kills(9, 64, 4, 5, 60);

  simd::Machine m_full(64, simd::cm2_cost_model());
  lb::Engine<FifteenPuzzle> full(problem, m_full, lb::gp_static(0.9));
  full.arm_faults(&plan);
  const lb::RunStats a = full.run();

  simd::ThreadPool pool(4);
  simd::Machine m_compact(64, simd::cm2_cost_model(), &pool);
  lb::CompactEngine<FifteenPuzzle> compact(problem, m_compact,
                                           lb::gp_static(0.9));
  compact.arm_faults(&plan);
  const lb::RunStats b = compact.run();

  EXPECT_EQ(a.total.nodes_expanded, b.total.nodes_expanded);
  EXPECT_EQ(a.total.expand_cycles, b.total.expand_cycles);
  EXPECT_EQ(a.total.recovery_phases, b.total.recovery_phases);
  EXPECT_EQ(a.total.nodes_recovered, b.total.nodes_recovered);
  EXPECT_EQ(a.goals_found, b.goals_found);
  EXPECT_EQ(full.goal_nodes(), compact.goal_nodes());
  EXPECT_DOUBLE_EQ(m_full.clock().elapsed, m_compact.clock().elapsed);
}

}  // namespace
}  // namespace simdts::search
