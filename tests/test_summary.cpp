// SummaryPlane invariants and the hierarchical-kernel equivalence contract:
// every summary-aware enumeration (rendezvous, ranked, matcher, ring
// pairing) must produce *bit-identical* output to its flat packed reference
// on the same occupancy pattern — for any plane size (power-of-64 or not),
// any density, any rotation point, any limit.  Plus the large-N scan
// coverage the mega-P sweeps lean on.
#include "simd/summary.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "lb/engine.hpp"
#include "lb/matching.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"
#include "simd/bitplane.hpp"
#include "simd/rendezvous.hpp"
#include "simd/scan.hpp"
#include "simd/thread_pool.hpp"

namespace simdts::simd {
namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E9B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Random plane of `p` lanes where each lane is set with probability
/// (density_pct / 100).  density_pct == 0 gives an empty plane.
BitPlane random_plane(std::size_t p, unsigned density_pct,
                      std::uint64_t& seed) {
  BitPlane plane;
  plane.assign(p, false);
  for (std::size_t i = 0; i < p; ++i) {
    if (splitmix(seed) % 100 < density_pct) plane.set(i);
  }
  return plane;
}

SummaryPlane summary_of(const BitPlane& plane) {
  SummaryPlane s;
  s.assign_for_lanes(plane.size());
  s.rebuild(plane);
  return s;
}

// The sizes every property below sweeps: word boundaries, non-x64 sizes,
// a non-power-of-64 P > 2^16 (the 32-bit-index regression size), and a
// mega-ish power of two.
const std::size_t kSizes[] = {1, 63, 64, 65, 127, 129, 4096, 70001, 1u << 17};

// ---------------------------------------------------------------------------
// SummaryPlane invariants
// ---------------------------------------------------------------------------

TEST(SummaryPlane, RebuildMatchesWordOccupancy) {
  std::uint64_t seed = 1;
  for (const std::size_t p : kSizes) {
    for (const unsigned density : {0u, 1u, 30u, 100u}) {
      const BitPlane plane = random_plane(p, density, seed);
      const SummaryPlane sum = summary_of(plane);
      ASSERT_EQ(sum.size(), plane.words().size());
      for (std::size_t w = 0; w < sum.size(); ++w) {
        EXPECT_EQ(sum.test(w), plane.words()[w] != 0) << "p=" << p;
      }
    }
  }
}

TEST(SummaryPlane, UpdateWordTracksIncrementalWrites) {
  std::uint64_t seed = 2;
  for (const std::size_t p : {65, 4096, 70001}) {
    BitPlane plane = random_plane(static_cast<std::size_t>(p), 20, seed);
    SummaryPlane sum = summary_of(plane);
    const std::size_t nwords = plane.words().size();
    for (int step = 0; step < 2000; ++step) {
      const std::size_t w = splitmix(seed) % nwords;
      // Random word write, clamped to the plane's valid mask (the writer
      // contract: whoever writes a plane word keeps the zero tail).
      const std::uint64_t v = splitmix(seed) & plane.word_mask(w);
      plane.words()[w] = v;
      sum.update_word(w, v);
    }
    const SummaryPlane fresh = summary_of(plane);
    for (std::size_t w = 0; w < nwords; ++w) {
      EXPECT_EQ(sum.test(w), fresh.test(w)) << "p=" << p << " w=" << w;
    }
  }
}

TEST(SummaryPlane, NextOccupiedFindsExactlyTheOccupiedWords) {
  std::uint64_t seed = 3;
  for (const std::size_t p : kSizes) {
    const BitPlane plane = random_plane(p, 7, seed);
    const SummaryPlane sum = summary_of(plane);
    std::vector<std::size_t> via_summary;
    for (std::size_t w = sum.next_occupied(0); w < sum.size();
         w = sum.next_occupied(w + 1)) {
      via_summary.push_back(w);
    }
    std::vector<std::size_t> reference;
    for (std::size_t w = 0; w < plane.words().size(); ++w) {
      if (plane.words()[w] != 0) reference.push_back(w);
    }
    EXPECT_EQ(via_summary, reference) << "p=" << p;
  }
}

TEST(SummaryPlane, NextOccupiedBelowRespectsLimit) {
  std::uint64_t seed = 4;
  const BitPlane plane = random_plane(70001, 10, seed);
  const SummaryPlane sum = summary_of(plane);
  const std::size_t nwords = sum.size();
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t from = splitmix(seed) % (nwords + 2);
    const std::size_t limit = splitmix(seed) % (nwords + 2);
    const std::size_t got = sum.next_occupied_below(from, limit);
    std::size_t want = limit;
    for (std::size_t w = from; w < limit && w < nwords; ++w) {
      if (plane.words()[w] != 0) {
        want = w;
        break;
      }
    }
    EXPECT_EQ(got, want) << "from=" << from << " limit=" << limit;
    EXPECT_TRUE(got == limit || sum.test(got));
  }
}

TEST(SummaryPlane, EmptyAndFullPlanes) {
  for (const std::size_t p : kSizes) {
    BitPlane plane;
    plane.assign(p, false);
    SummaryPlane sum = summary_of(plane);
    EXPECT_EQ(sum.next_occupied(0), sum.size());
    plane.fill(true);
    sum.rebuild(plane);
    for (std::size_t w = 0; w < sum.size(); ++w) {
      EXPECT_EQ(sum.next_occupied(w), w);
    }
  }
}

// ---------------------------------------------------------------------------
// Hierarchical kernels == flat packed kernels, bit for bit
// ---------------------------------------------------------------------------

TEST(SummaryKernels, RankedMatchesFlatAcrossSizesAndRotations) {
  std::uint64_t seed = 5;
  std::vector<PeIndex> flat;
  std::vector<PeIndex> hier;
  for (const std::size_t p : kSizes) {
    for (const unsigned density : {0u, 3u, 50u, 100u}) {
      const BitPlane flags = random_plane(p, density, seed);
      const SummaryPlane sum = summary_of(flags);
      std::vector<PeIndex> starts = {kNoPe, 0,
                                     static_cast<PeIndex>(p - 1),
                                     static_cast<PeIndex>(p / 2)};
      for (int i = 0; i < 4; ++i) {
        starts.push_back(static_cast<PeIndex>(splitmix(seed) % p));
      }
      for (const PeIndex sa : starts) {
        ranked_into(flags, sa, flat);
        ranked_into(flags, sum, sa, hier);
        EXPECT_EQ(flat, hier) << "p=" << p << " density=" << density
                              << " start_after=" << sa;
      }
    }
  }
}

TEST(SummaryKernels, RendezvousMatchesFlatAcrossLimitsAndRotations) {
  std::uint64_t seed = 6;
  std::vector<Pair> flat;
  std::vector<Pair> hier;
  for (const std::size_t p : {63, 64, 65, 4096, 70001}) {
    for (int trial = 0; trial < 8; ++trial) {
      const unsigned dd = static_cast<unsigned>(splitmix(seed) % 40);
      const unsigned rd = static_cast<unsigned>(splitmix(seed) % 40);
      const BitPlane donors = random_plane(p, dd, seed);
      const BitPlane receivers = random_plane(p, rd, seed);
      const SummaryPlane dsum = summary_of(donors);
      const SummaryPlane rsum = summary_of(receivers);
      const PeIndex sa = (trial % 3 == 0)
                             ? kNoPe
                             : static_cast<PeIndex>(splitmix(seed) % p);
      for (const std::size_t limit :
           {std::size_t{0}, std::size_t{1}, std::size_t{7},
            static_cast<std::size_t>(-1)}) {
        rendezvous_into(donors, receivers, sa, limit, flat);
        rendezvous_into(donors, dsum, receivers, rsum, sa, limit, hier);
        EXPECT_EQ(flat, hier)
            << "p=" << p << " start_after=" << sa << " limit=" << limit;
      }
    }
  }
}

TEST(SummaryKernels, MatcherMatchesFlatIncludingPointerAdvance) {
  std::uint64_t seed = 7;
  std::vector<Pair> flat;
  std::vector<Pair> hier;
  for (const auto scheme : {lb::MatchScheme::kNGP, lb::MatchScheme::kGP}) {
    for (const std::size_t p : {65, 4096, 70001}) {
      lb::Matcher m_flat(scheme);
      lb::Matcher m_hier(scheme);
      // Multiple rounds: for GP the pointer advance feeds the next round, so
      // a single divergent round would cascade — exactly what we pin.
      for (int round = 0; round < 12; ++round) {
        const BitPlane busy =
            random_plane(p, static_cast<unsigned>(splitmix(seed) % 30), seed);
        const BitPlane idle =
            random_plane(p, static_cast<unsigned>(splitmix(seed) % 30), seed);
        const SummaryPlane bsum = summary_of(busy);
        const SummaryPlane isum = summary_of(idle);
        const std::size_t limit =
            round % 4 == 0 ? 1 : static_cast<std::size_t>(-1);
        m_flat.match_into(busy, idle, limit, flat);
        m_hier.match_into(busy, bsum, idle, isum, limit, hier);
        EXPECT_EQ(flat, hier) << "p=" << p << " round=" << round;
        EXPECT_EQ(m_flat.pointer(), m_hier.pointer())
            << "p=" << p << " round=" << round;
      }
    }
  }
}

TEST(SummaryKernels, NeighborPairsMatchFlatIncludingWraparound) {
  std::uint64_t seed = 8;
  std::vector<Pair> flat;
  std::vector<Pair> hier;
  for (const std::size_t p : kSizes) {
    for (const unsigned density : {0u, 10u, 60u, 100u}) {
      const BitPlane busy = random_plane(p, density, seed);
      const BitPlane idle = random_plane(p, 100 - density, seed);
      const SummaryPlane bsum = summary_of(busy);
      lb::neighbor_pairs_into(busy, idle, flat);
      lb::neighbor_pairs_into(busy, bsum, idle, hier);
      EXPECT_EQ(flat, hier) << "p=" << p << " density=" << density;
    }
  }
  // The wrap pair (P-1 -> 0) specifically.
  BitPlane busy;
  busy.assign(70001, false);
  busy.set(70000);
  BitPlane idle;
  idle.assign(70001, false);
  idle.set(0);
  lb::neighbor_pairs_into(busy, idle, flat);
  lb::neighbor_pairs_into(busy, summary_of(busy), idle, hier);
  EXPECT_EQ(flat, hier);
  ASSERT_EQ(hier.size(), 1u);
  EXPECT_EQ(hier[0], (Pair{70000, 0}));
}

// ---------------------------------------------------------------------------
// simd/scan at large N (the prefix sums under mega-P enumerations)
// ---------------------------------------------------------------------------

TEST(ScanLargeN, ParallelInclusiveScanMatchesSerialAboveThreshold) {
  // (1 << 17) + 3 lanes: above kMinParallel, not a multiple of any block.
  const std::size_t n = (std::size_t{1} << 17) + 3;
  std::vector<std::uint32_t> in(n);
  std::uint64_t seed = 9;
  for (auto& v : in) v = static_cast<std::uint32_t>(splitmix(seed) % 5);
  std::vector<std::uint32_t> serial(n);
  std::vector<std::uint32_t> parallel(n);
  inclusive_scan<std::uint32_t>(in, serial);
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    inclusive_scan<std::uint32_t>(in, parallel, pool);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(ScanLargeN, EnumerateRanksLargeNonX64Plane) {
  const std::size_t p = 70001;
  std::uint64_t seed = 10;
  const BitPlane plane = random_plane(p, 13, seed);
  std::vector<std::uint32_t> ranks(p);
  const std::uint32_t total = enumerate(plane, ranks);
  EXPECT_EQ(total, plane.count());
  std::uint32_t expect_rank = 0;
  for (std::size_t i = 0; i < p; ++i) {
    EXPECT_EQ(ranks[i], expect_rank) << "i=" << i;
    if (plane.test(i)) ++expect_rank;
  }
}

// ---------------------------------------------------------------------------
// Engine property: summary maintenance survives random kill/revive plans at
// non-x64 P, bit-identically across host thread counts.  (In sanitize
// builds the per-cycle sweep additionally re-verifies every summary word;
// here we pin the result contract.)
// ---------------------------------------------------------------------------

TEST(SummaryEngine, KillRevivePlanDeterministicAcrossThreadsAtNonX64P) {
  const auto& wl = puzzle::test_workloads()[1];
  const puzzle::FifteenPuzzle problem(wl.board());
  const std::uint32_t p = 157;  // not a multiple of 64
  std::vector<fault::FaultEvent> events;
  std::uint64_t seed = 11;
  for (int i = 0; i < 6; ++i) {
    const std::uint32_t pe = static_cast<std::uint32_t>(splitmix(seed) % p);
    const std::uint64_t cycle = 4 + splitmix(seed) % 80;
    events.push_back({cycle, fault::FaultKind::kKillPe, pe, 0});
    events.push_back({cycle + 3 + splitmix(seed) % 20,
                      fault::FaultKind::kRevivePe, pe, 0});
  }
  const fault::FaultPlan plan(events);

  auto run = [&](unsigned threads) {
    ThreadPool pool(threads);
    Machine machine(p, cm2_cost_model(), &pool);
    lb::Engine<puzzle::FifteenPuzzle> engine(problem, machine,
                                             lb::gp_static(0.9));
    engine.arm_faults(&plan);
    return engine.run();
  };
  const lb::RunStats base = run(1);
  EXPECT_GT(base.total.pes_killed, 0u);
  for (const unsigned threads : {2u, 8u}) {
    const lb::RunStats other = run(threads);
    EXPECT_EQ(base, other) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace simdts::simd
