#include "queens/queens.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <set>

#include "search/serial.hpp"

namespace simdts::queens {
namespace {

TEST(Queens, RejectsBadSizes) {
  EXPECT_THROW(Queens(0), ConfigError);
  EXPECT_THROW(Queens(17), ConfigError);
}

TEST(Queens, RootIsEmptyBoard) {
  const Queens q(8);
  const auto r = q.root();
  EXPECT_EQ(r.cols, 0u);
  EXPECT_EQ(r.row, 0);
  EXPECT_FALSE(q.is_goal(r));
}

TEST(Queens, FirstRowHasNChildren) {
  const Queens q(8);
  std::vector<Queens::Node> out;
  search::NextBound nb;
  q.expand(q.root(), search::kUnbounded, out, nb);
  EXPECT_EQ(out.size(), 8u);
}

TEST(Queens, ChildrenExcludeAttackedSquares) {
  const Queens q(4);
  std::vector<Queens::Node> level1;
  search::NextBound nb;
  q.expand(q.root(), search::kUnbounded, level1, nb);
  ASSERT_EQ(level1.size(), 4u);
  // After placing in column 0 of row 0, row 1 forbids columns 0 and 1.
  std::vector<Queens::Node> level2;
  q.expand(level1[0], search::kUnbounded, level2, nb);
  EXPECT_EQ(level2.size(), 2u);
  for (const auto& n : level2) {
    EXPECT_EQ(n.cols & 1u, 1u);       // column 0 still occupied
    EXPECT_EQ(n.row, 2);
  }
}

TEST(Queens, GoalAtFullDepthOnly) {
  const Queens q(1);
  std::vector<Queens::Node> out;
  search::NextBound nb;
  q.expand(q.root(), search::kUnbounded, out, nb);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(q.is_goal(out[0]));
}

TEST(Queens, KnownSolutionTable) {
  EXPECT_EQ(Queens::known_solutions(1), 1u);
  EXPECT_EQ(Queens::known_solutions(4), 2u);
  EXPECT_EQ(Queens::known_solutions(8), 92u);
  EXPECT_EQ(Queens::known_solutions(12), 14200u);
  EXPECT_THROW((void)Queens::known_solutions(0), ConfigError);
  EXPECT_THROW((void)Queens::known_solutions(16), ConfigError);
}

TEST(Queens, GoalNodesAreDistinctPlacements) {
  const Queens q(5);
  // Collect goal column sets via serial DFS on the raw interface.
  std::vector<Queens::Node> stack{q.root()};
  std::multiset<std::uint32_t> goals;
  std::vector<Queens::Node> children;
  search::NextBound nb;
  while (!stack.empty()) {
    const auto n = stack.back();
    stack.pop_back();
    if (q.is_goal(n)) {
      goals.insert(n.cols);
      continue;
    }
    children.clear();
    q.expand(n, search::kUnbounded, children, nb);
    stack.insert(stack.end(), children.begin(), children.end());
  }
  EXPECT_EQ(goals.size(), 10u);
  // Every goal uses all 5 columns.
  for (const auto cols : goals) {
    EXPECT_EQ(cols, 0b11111u);
  }
}

}  // namespace
}  // namespace simdts::queens
