#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include "lb/engine.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"
#include "search/serial.hpp"

namespace simdts::baselines {
namespace {

using lb::Engine;
using lb::RunStats;
using puzzle::FifteenPuzzle;

std::vector<lb::SchemeConfig> all_baselines() {
  return {fess(), fegs(), frye_give_one(0.75), frye_neighbor()};
}

TEST(Baselines, ConfigurationsMatchTheirPapers) {
  EXPECT_EQ(fess().trigger, lb::TriggerKind::kAnyIdle);
  EXPECT_FALSE(fess().multiple_transfers);
  EXPECT_EQ(fegs().trigger, lb::TriggerKind::kAnyIdle);
  EXPECT_TRUE(fegs().multiple_transfers);
  EXPECT_EQ(frye_give_one(0.8).transfer,
            lb::TransferPolicy::kGiveOneNodeEach);
  EXPECT_DOUBLE_EQ(frye_give_one(0.8).static_x, 0.8);
  EXPECT_EQ(frye_neighbor().match, lb::MatchScheme::kNeighbor);
  EXPECT_EQ(frye_neighbor().trigger, lb::TriggerKind::kEveryCycle);
}

TEST(Baselines, AllConserveWork) {
  const auto& wl = puzzle::test_workloads()[1];  // t-4k
  const FifteenPuzzle problem(wl.board());
  const auto serial = search::serial_ida(problem);
  for (const auto& cfg : all_baselines()) {
    simd::Machine machine(64, simd::cm2_cost_model());
    Engine<FifteenPuzzle> engine(problem, machine, cfg);
    const RunStats rs = engine.run();
    EXPECT_EQ(rs.total.nodes_expanded, serial.total_expanded) << cfg.name();
    EXPECT_EQ(rs.goals_found, serial.goals_found) << cfg.name();
  }
}

TEST(Baselines, FessBalancesFarMoreOftenThanOptimalStatic) {
  // FESS triggers on the first idle processor, so it performs close to one
  // load-balancing phase per node-expansion cycle; that is its documented
  // scalability problem (Section 8).
  const auto& wl = puzzle::test_workloads()[2];  // t-21k
  const FifteenPuzzle problem(wl.board());

  simd::Machine m1(128, simd::cm2_cost_model());
  Engine<FifteenPuzzle> fess_engine(problem, m1, fess());
  const RunStats fess_run = fess_engine.run();

  simd::Machine m2(128, simd::cm2_cost_model());
  Engine<FifteenPuzzle> gp_engine(problem, m2, lb::gp_static(0.75));
  const RunStats gp_run = gp_engine.run();

  EXPECT_GT(fess_run.total.lb_phases, 4 * gp_run.total.lb_phases);
  // And most cycles are immediately followed by a phase.
  EXPECT_GT(fess_run.total.lb_phases, fess_run.total.expand_cycles / 2);
  // Serving one idle PE per phase means exactly one transfer each.
  EXPECT_EQ(fess_run.total.transfers, fess_run.total.lb_phases);
}

TEST(Baselines, FegsDistributesWiderThanFessPerPhase) {
  const auto& wl = puzzle::test_workloads()[2];
  const FifteenPuzzle problem(wl.board());

  simd::Machine m1(128, simd::cm2_cost_model());
  Engine<FifteenPuzzle> e1(problem, m1, fess());
  const RunStats fess_run = e1.run();

  simd::Machine m2(128, simd::cm2_cost_model());
  Engine<FifteenPuzzle> e2(problem, m2, fegs());
  const RunStats fegs_run = e2.run();

  const double fess_tpp = static_cast<double>(fess_run.total.transfers) /
                          static_cast<double>(fess_run.total.lb_phases);
  const double fegs_tpp = static_cast<double>(fegs_run.total.transfers) /
                          static_cast<double>(fegs_run.total.lb_phases);
  EXPECT_GE(fegs_tpp, fess_tpp);
  // Better distribution -> fewer phases (the paper's observation).
  EXPECT_LE(fegs_run.total.lb_phases, fess_run.total.lb_phases);
}

TEST(Baselines, GiveOneTransfersSingleNodes) {
  // Each transfer under Frye's first scheme moves exactly one node, so the
  // receiving PE holds exactly one node right after a phase; over the run
  // the number of transfers is much larger than the number of phases on a
  // machine with many idle PEs.
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  simd::Machine machine(64, simd::cm2_cost_model());
  Engine<FifteenPuzzle> engine(problem, machine, frye_give_one(0.75));
  const RunStats rs = engine.run();
  EXPECT_GT(rs.total.transfers, rs.total.lb_phases);
}

TEST(Baselines, NeighborSchemeUsesCheapRounds) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  simd::Machine machine(64, simd::cm2_cost_model());
  Engine<FifteenPuzzle> engine(problem, machine, frye_neighbor());
  const RunStats rs = engine.run();
  EXPECT_GT(rs.total.lb_rounds, 0u);
  // All rounds were charged at the nearest-neighbour cost.
  const double expected =
      static_cast<double>(rs.total.lb_rounds) *
      simd::cm2_cost_model().neighbor_cost() * 64.0;
  EXPECT_DOUBLE_EQ(rs.total.clock.lb_time, expected);
}

TEST(Baselines, NeighborSchemeSpreadsWorkSlowly) {
  // Work moves one hop per phase, so on a ring of 64 the engine needs at
  // least ~63 rounds before the farthest PE can first receive work.
  const auto& wl = puzzle::test_workloads()[2];
  const FifteenPuzzle problem(wl.board());
  simd::Machine machine(64, simd::cm2_cost_model());
  Engine<FifteenPuzzle> engine(problem, machine, frye_neighbor());
  const RunStats rs = engine.run();
  EXPECT_GT(rs.total.lb_rounds, 63u);
}

}  // namespace
}  // namespace simdts::baselines
