// Fault injection and lost-work recovery (docs/robustness.md).
//
// The contract under test: a seeded FaultPlan replays bit-identically for
// any host thread count, killed PEs' work is re-donated without loss or
// duplication (the conservation invariant), dropped lb messages waste cost
// but never lose subtrees, and with no plan armed the fault hooks are
// invisible — bit-identical results to an engine that has never heard of
// faults.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/error.hpp"
#include "lb/engine.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"
#include "runtime/sweep.hpp"
#include "search/serial.hpp"
#include "synthetic/tree.hpp"

namespace simdts::fault {
namespace {

using search::kUnbounded;

// ---------------------------------------------------------------------------
// FaultPlan construction and validation.
// ---------------------------------------------------------------------------

TEST(FaultPlan, SortsEventsByCycleStably) {
  const FaultPlan plan({{50, FaultKind::kKillPe, 3, 0},
                        {10, FaultKind::kKillPe, 1, 0},
                        {50, FaultKind::kRevivePe, 1, 0},
                        {20, FaultKind::kDropMessages, 0, 4}});
  ASSERT_EQ(plan.events().size(), 4u);
  EXPECT_EQ(plan.events()[0].cycle, 10u);
  EXPECT_EQ(plan.events()[1].cycle, 20u);
  // Same-cycle events keep their given order (kill before revive).
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kKillPe);
  EXPECT_EQ(plan.events()[3].kind, FaultKind::kRevivePe);
}

TEST(FaultPlan, RandomKillsIsDeterministicAndInRange) {
  const FaultPlan a = FaultPlan::random_kills(1234, 64, 5, 10, 100);
  const FaultPlan b = FaultPlan::random_kills(1234, 64, 5, 10, 100);
  EXPECT_EQ(a, b);  // same seed, same plan — across platforms too
  const FaultPlan c = FaultPlan::random_kills(1235, 64, 5, 10, 100);
  EXPECT_NE(a.events(), c.events());

  std::set<std::uint32_t> pes;
  for (const auto& e : a.events()) {
    EXPECT_EQ(e.kind, FaultKind::kKillPe);
    EXPECT_GE(e.cycle, 10u);
    EXPECT_LE(e.cycle, 100u);
    EXPECT_LT(e.pe, 64u);
    pes.insert(e.pe);
  }
  EXPECT_EQ(pes.size(), 5u);  // distinct PEs
  EXPECT_NO_THROW(a.validate(64));
}

TEST(FaultPlan, ValidateRejectsBadPlans) {
  EXPECT_THROW(FaultPlan({{0, FaultKind::kKillPe, 1, 0}}).validate(4),
               ConfigError);  // cycle 0 never fires
  EXPECT_THROW(FaultPlan({{5, FaultKind::kKillPe, 4, 0}}).validate(4),
               ConfigError);  // pe out of range
  EXPECT_THROW(FaultPlan({{5, FaultKind::kDropMessages, 0, 0}}).validate(4),
               ConfigError);  // dropping zero messages is meaningless
  // Killing every PE can never complete a search.
  EXPECT_THROW(FaultPlan({{5, FaultKind::kKillPe, 0, 0},
                          {6, FaultKind::kKillPe, 1, 0}})
                   .validate(2),
               ConfigError);
  // ... unless one is revived in between.
  EXPECT_NO_THROW(FaultPlan({{5, FaultKind::kKillPe, 0, 0},
                             {6, FaultKind::kRevivePe, 0, 0},
                             {7, FaultKind::kKillPe, 1, 0}})
                      .validate(2));
}

TEST(FaultPlan, RandomKillsRejectsBadArguments) {
  EXPECT_THROW(FaultPlan::random_kills(1, 0, 0, 1, 2), ConfigError);
  EXPECT_THROW(FaultPlan::random_kills(1, 4, 4, 1, 2), ConfigError);
  EXPECT_THROW(FaultPlan::random_kills(1, 4, 1, 0, 2), ConfigError);
  EXPECT_THROW(FaultPlan::random_kills(1, 4, 1, 9, 2), ConfigError);
}

// ---------------------------------------------------------------------------
// Conservation under faults: a degraded run explores exactly the fault-free
// tree — same expansions, same goals — and journals every recovered node.
// ---------------------------------------------------------------------------

TEST(FaultRecovery, PuzzleConservationUnderKills) {
  const auto& wl = puzzle::test_workloads()[1];  // t-4k
  const puzzle::FifteenPuzzle problem(wl.board());
  const auto serial = search::serial_ida(problem);

  for (const auto& cfg : {lb::gp_static(0.9), lb::gp_dk(), lb::ngp_dp()}) {
    const FaultPlan plan = FaultPlan::random_kills(77, 64, 9, 5, 60);
    simd::Machine machine(64, simd::cm2_cost_model());
    lb::Engine<puzzle::FifteenPuzzle> engine(problem, machine, cfg);
    engine.arm_faults(&plan);
    const lb::RunStats rs = engine.run();

    EXPECT_EQ(rs.total.nodes_expanded, serial.total_expanded) << cfg.name();
    EXPECT_EQ(rs.solution_bound, serial.solution_bound) << cfg.name();
    EXPECT_EQ(rs.goals_found, serial.goals_found) << cfg.name();
    EXPECT_EQ(rs.total.pes_killed, 9u) << cfg.name();
    EXPECT_EQ(engine.alive(), 64u - 9u) << cfg.name();

    // The journal accounts for every re-donated node.
    std::uint64_t journaled = 0;
    for (const auto& rec : engine.recovery_journal()) journaled += rec.nodes;
    EXPECT_EQ(journaled, rs.total.nodes_recovered) << cfg.name();
  }
}

TEST(FaultRecovery, SyntheticConservationWithKillsRevivesAndDrops) {
  const synthetic::Tree tree(synthetic::Params{9013, 4, 0.395, 14});
  const auto serial = search::serial_dfs(tree, tree.root(), kUnbounded);

  const FaultPlan plan({{4, FaultKind::kDropMessages, 0, 6},
                        {6, FaultKind::kKillPe, 3, 0},
                        {9, FaultKind::kKillPe, 17, 0},
                        {14, FaultKind::kRevivePe, 3, 0},
                        {20, FaultKind::kDropMessages, 0, 3},
                        {25, FaultKind::kKillPe, 11, 0}});
  for (const auto& cfg : {lb::gp_static(0.9), lb::gp_dp(), lb::ngp_dk()}) {
    simd::Machine machine(32, simd::cm2_cost_model());
    lb::Engine<synthetic::Tree> engine(tree, machine, cfg);
    engine.arm_faults(&plan);
    const lb::IterationStats it = engine.run_iteration(kUnbounded);

    EXPECT_EQ(it.nodes_expanded, serial.nodes_expanded) << cfg.name();
    EXPECT_EQ(it.goals_found, 0u) << cfg.name();
    EXPECT_EQ(it.pes_killed, 3u) << cfg.name();
    EXPECT_EQ(it.pes_revived, 1u) << cfg.name();
    EXPECT_EQ(engine.alive(), 30u) << cfg.name();
  }
}

TEST(FaultRecovery, DroppedMessagesAreCountedAndWasteCost) {
  // A drop-heavy plan on a scheme that balances eagerly: messages must be
  // recorded as dropped, the work must still all get done, and the wasted
  // rounds must cost simulated lb time (same accounting as useful rounds).
  const synthetic::Tree tree(synthetic::Params{9013, 4, 0.395, 14});
  const auto serial = search::serial_dfs(tree, tree.root(), kUnbounded);
  const FaultPlan plan({{3, FaultKind::kDropMessages, 0, 20}});
  simd::Machine machine(32, simd::cm2_cost_model());
  lb::Engine<synthetic::Tree> engine(tree, machine, lb::gp_static(0.9));
  engine.arm_faults(&plan);
  const lb::IterationStats it = engine.run_iteration(kUnbounded);
  EXPECT_EQ(it.nodes_expanded, serial.nodes_expanded);
  EXPECT_GT(it.messages_dropped, 0u);
  EXPECT_LE(it.messages_dropped, 20u);
}

TEST(FaultRecovery, RecoveryIsCostedOnTheMachineClock) {
  const synthetic::Tree tree(synthetic::Params{9013, 4, 0.395, 14});
  const FaultPlan plan = FaultPlan::random_kills(5, 32, 6, 4, 30);
  simd::Machine machine(32, simd::cm2_cost_model());
  lb::Engine<synthetic::Tree> engine(tree, machine, lb::gp_static(0.9));
  engine.arm_faults(&plan);
  const lb::IterationStats it = engine.run_iteration(kUnbounded);
  if (it.nodes_recovered > 0) {
    EXPECT_GT(it.recovery_rounds, 0u);
    EXPECT_GT(it.clock.recovery_time, 0.0);
    EXPECT_EQ(it.clock.recovery_rounds, it.recovery_rounds);
    // Recovery time must depress efficiency relative to an undisturbed run.
    simd::Machine clean_machine(32, simd::cm2_cost_model());
    lb::Engine<synthetic::Tree> clean(tree, clean_machine,
                                      lb::gp_static(0.9));
    const lb::IterationStats base = clean.run_iteration(kUnbounded);
    EXPECT_NE(it.clock.elapsed, base.clock.elapsed);
  }
}

// ---------------------------------------------------------------------------
// Determinism: fault runs are bit-identical across host thread counts, both
// for the engine's per-cycle thread pool and for the sweep runner.
// ---------------------------------------------------------------------------

TEST(FaultDeterminism, IdenticalAcrossEngineThreadPools) {
  const synthetic::Tree tree(synthetic::Params{9011, 4, 0.400, 18});
  const FaultPlan plan = FaultPlan::random_kills(11, 64, 10, 3, 40);

  auto run_with_pool = [&](unsigned lanes) {
    simd::ThreadPool pool(lanes);
    simd::Machine machine(64, simd::cm2_cost_model(),
                          lanes > 1 ? &pool : nullptr);
    lb::Engine<synthetic::Tree> engine(tree, machine, lb::gp_dk());
    engine.arm_faults(&plan);
    return engine.run_iteration(kUnbounded);
  };

  const lb::IterationStats serial = run_with_pool(1);
  for (const unsigned lanes : {2u, 8u}) {
    const lb::IterationStats parallel = run_with_pool(lanes);
    // operator== covers every counter and the bitwise clock.
    EXPECT_EQ(parallel, serial) << lanes << " lanes";
  }
}

TEST(FaultDeterminism, IdenticalAcrossSweepThreads) {
  // A small sweep of fault runs (distinct seeds per slot) must produce the
  // same slot-indexed results for 1, 2 and 8 host sweep threads.
  const synthetic::Tree tree(synthetic::Params{9011, 4, 0.400, 18});
  const std::size_t n = 6;

  auto sweep = [&](unsigned threads) {
    return runtime::sweep_map<lb::RunStats>(
        n,
        [&](std::size_t i) {
          const FaultPlan plan =
              FaultPlan::random_kills(100 + i, 32, 4, 3, 30);
          simd::Machine machine(32, simd::cm2_cost_model());
          lb::Engine<synthetic::Tree> engine(tree, machine,
                                             lb::gp_static(0.9));
          engine.arm_faults(&plan);
          return engine.run();
        },
        threads);
  };

  const auto serial = sweep(1);
  for (const unsigned threads : {2u, 8u}) {
    const auto parallel = sweep(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << "slot " << i << " at " << threads << " sweep threads";
    }
  }
}

// ---------------------------------------------------------------------------
// The unarmed contract: no plan (or an empty plan) leaves the engine
// bit-identical to one that never saw the fault subsystem.
// ---------------------------------------------------------------------------

TEST(FaultTransparency, EmptyPlanIsBitIdenticalToUnarmed) {
  const auto& wl = puzzle::test_workloads()[1];
  const puzzle::FifteenPuzzle problem(wl.board());
  const FaultPlan empty;
  for (const auto& cfg : {lb::gp_static(0.9), lb::gp_dp(), lb::ngp_dk()}) {
    simd::Machine m1(64, simd::cm2_cost_model());
    lb::Engine<puzzle::FifteenPuzzle> unarmed(problem, m1, cfg);
    const lb::RunStats a = unarmed.run();

    simd::Machine m2(64, simd::cm2_cost_model());
    lb::Engine<puzzle::FifteenPuzzle> armed(problem, m2, cfg);
    armed.arm_faults(&empty);
    const lb::RunStats b = armed.run();

    EXPECT_EQ(a, b) << cfg.name();
    EXPECT_EQ(m1.clock(), m2.clock()) << cfg.name();
  }
}

TEST(FaultTransparency, FaultCountersZeroWithoutAPlan) {
  const synthetic::Tree tree(synthetic::Params{9013, 4, 0.395, 14});
  simd::Machine machine(32, simd::cm2_cost_model());
  lb::Engine<synthetic::Tree> engine(tree, machine, lb::gp_static(0.9));
  const lb::IterationStats it = engine.run_iteration(kUnbounded);
  EXPECT_EQ(it.pes_killed, 0u);
  EXPECT_EQ(it.nodes_recovered, 0u);
  EXPECT_EQ(it.messages_dropped, 0u);
  EXPECT_EQ(it.clock.recovery_rounds, 0u);
  EXPECT_DOUBLE_EQ(it.clock.recovery_time, 0.0);
}

// ---------------------------------------------------------------------------
// Failure edges: killing everything, and the watchdog.
// ---------------------------------------------------------------------------

TEST(FaultEdge, ArmRejectsPlanTargetingMissingPes) {
  const synthetic::Tree tree(synthetic::Params{9013, 4, 0.395, 14});
  simd::Machine machine(8, simd::cm2_cost_model());
  lb::Engine<synthetic::Tree> engine(tree, machine, lb::gp_static(0.9));
  const FaultPlan plan({{5, FaultKind::kKillPe, 8, 0}});
  EXPECT_THROW(engine.arm_faults(&plan), ConfigError);
}

TEST(FaultEdge, ArmRejectsPlanKillingEveryPe) {
  // A plan that ever has every PE dead at once can never complete a search;
  // it is rejected statically at arm time (the engine keeps a runtime
  // FaultError check as defense-in-depth behind the same invariant).
  const synthetic::Tree tree(synthetic::Params{9013, 4, 0.395, 14});
  simd::Machine machine(2, simd::cm2_cost_model());
  lb::Engine<synthetic::Tree> engine(tree, machine, lb::gp_static(0.9));
  const FaultPlan plan({{2, FaultKind::kKillPe, 0, 0},
                        {3, FaultKind::kRevivePe, 0, 0},
                        {4, FaultKind::kKillPe, 0, 0},
                        {5, FaultKind::kKillPe, 1, 0}});
  EXPECT_THROW(engine.arm_faults(&plan), ConfigError);
}

TEST(FaultEdge, WatchdogThrowsTypedTimeout) {
  const synthetic::Tree tree(synthetic::Params{9013, 4, 0.395, 14});
  simd::Machine machine(4, simd::cm2_cost_model());
  lb::Engine<synthetic::Tree> engine(tree, machine, lb::gp_static(0.9));
  engine.set_cycle_budget(10);
  try {
    (void)engine.run_iteration(kUnbounded);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_EQ(e.cycles(), 10u);
    EXPECT_EQ(e.budget(), 10u);
  }
  // A generous budget does not fire.
  simd::Machine m2(4, simd::cm2_cost_model());
  lb::Engine<synthetic::Tree> ok(tree, m2, lb::gp_static(0.9));
  ok.set_cycle_budget(1u << 30);
  EXPECT_NO_THROW((void)ok.run_iteration(kUnbounded));
}

}  // namespace
}  // namespace simdts::fault
