#include "search/work_stack.hpp"

#include <gtest/gtest.h>

namespace simdts::search {
namespace {

TEST(WorkStack, StartsEmpty) {
  WorkStack<int> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.splittable());
}

TEST(WorkStack, LifoOrder) {
  WorkStack<int> s;
  s.push(1);
  s.push(2);
  s.push(3);
  EXPECT_EQ(s.pop(), 3);
  EXPECT_EQ(s.pop(), 2);
  EXPECT_EQ(s.pop(), 1);
  EXPECT_TRUE(s.empty());
}

TEST(WorkStack, SplittableNeedsTwoNodes) {
  WorkStack<int> s;
  s.push(1);
  EXPECT_FALSE(s.splittable());
  s.push(2);
  EXPECT_TRUE(s.splittable());
  s.pop();
  EXPECT_FALSE(s.splittable());
}

TEST(WorkStack, BottomIsOldestEntry) {
  WorkStack<int> s;
  s.push(10);
  s.push(20);
  s.push(30);
  EXPECT_EQ(s.bottom(), 10);
  EXPECT_EQ(s.top(), 30);
  EXPECT_EQ(s.take_bottom(), 10);
  EXPECT_EQ(s.bottom(), 20);
  EXPECT_EQ(s.size(), 2u);
}

TEST(WorkStack, InterleavedPushPopTakeBottom) {
  WorkStack<int> s;
  for (int i = 0; i < 6; ++i) s.push(i);
  EXPECT_EQ(s.take_bottom(), 0);
  EXPECT_EQ(s.pop(), 5);
  s.push(99);
  EXPECT_EQ(s.pop(), 99);
  EXPECT_EQ(s.take_bottom(), 1);
  EXPECT_EQ(s.size(), 3u);  // 2, 3, 4 remain
  EXPECT_EQ(s.bottom(), 2);
  EXPECT_EQ(s.top(), 4);
}

TEST(WorkStack, ClearEmpties) {
  WorkStack<int> s;
  s.push(1);
  s.push(2);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(WorkStack, ShrinkToFitDropsCapacity) {
  WorkStack<int> s;
  for (int i = 0; i < 1000; ++i) s.push(i);
  const std::size_t grown_cap = s.capacity();
  const std::size_t grown_bytes = s.memory_bytes();
  EXPECT_GE(grown_cap, 1000u);
  EXPECT_EQ(grown_bytes, grown_cap * sizeof(int));
  while (s.size() > 10) (void)s.pop();
  s.shrink_to_fit();
  EXPECT_LT(s.capacity(), grown_cap);
  EXPECT_LE(s.capacity(), 16u);  // smallest power of two >= max(size, 8)
  EXPECT_LT(s.memory_bytes(), grown_bytes);
  // Contents survive the re-home, in order.
  for (int i = 9; i >= 0; --i) EXPECT_EQ(s.pop(), i);
  // The pooled-release path: an empty stack frees its buffer entirely.
  s.shrink_to_fit();
  EXPECT_EQ(s.capacity(), 0u);
  EXPECT_EQ(s.memory_bytes(), 0u);
}

TEST(WorkStack, ShrinkToFitPreservesWrappedRing) {
  WorkStack<int> s;
  for (int i = 0; i < 100; ++i) s.push(i);  // capacity 128
  // Rotate the live window to the physical end, then push across it so the
  // ring wraps — shrink must re-home both runs in order.
  for (int i = 0; i < 90; ++i) (void)s.take_bottom();
  for (int i = 0; i < 30; ++i) s.push(100 + i);
  ASSERT_EQ(s.size(), 40u);
  const std::size_t old_cap = s.capacity();
  s.shrink_to_fit();
  EXPECT_LT(s.capacity(), old_cap);
  std::vector<int> got;
  while (!s.empty()) got.push_back(s.take_bottom());
  std::vector<int> want;
  for (int i = 90; i < 100; ++i) want.push_back(i);
  for (int i = 0; i < 30; ++i) want.push_back(100 + i);
  EXPECT_EQ(got, want);
}

TEST(WorkStack, MoveOnlyPayload) {
  WorkStack<std::unique_ptr<int>> s;
  s.push(std::make_unique<int>(5));
  s.push(std::make_unique<int>(6));
  auto p = s.pop();
  EXPECT_EQ(*p, 6);
  auto q = s.take_bottom();
  EXPECT_EQ(*q, 5);
}

}  // namespace
}  // namespace simdts::search
