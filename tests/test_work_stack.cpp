#include "search/work_stack.hpp"

#include <gtest/gtest.h>

namespace simdts::search {
namespace {

TEST(WorkStack, StartsEmpty) {
  WorkStack<int> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.splittable());
}

TEST(WorkStack, LifoOrder) {
  WorkStack<int> s;
  s.push(1);
  s.push(2);
  s.push(3);
  EXPECT_EQ(s.pop(), 3);
  EXPECT_EQ(s.pop(), 2);
  EXPECT_EQ(s.pop(), 1);
  EXPECT_TRUE(s.empty());
}

TEST(WorkStack, SplittableNeedsTwoNodes) {
  WorkStack<int> s;
  s.push(1);
  EXPECT_FALSE(s.splittable());
  s.push(2);
  EXPECT_TRUE(s.splittable());
  s.pop();
  EXPECT_FALSE(s.splittable());
}

TEST(WorkStack, BottomIsOldestEntry) {
  WorkStack<int> s;
  s.push(10);
  s.push(20);
  s.push(30);
  EXPECT_EQ(s.bottom(), 10);
  EXPECT_EQ(s.top(), 30);
  EXPECT_EQ(s.take_bottom(), 10);
  EXPECT_EQ(s.bottom(), 20);
  EXPECT_EQ(s.size(), 2u);
}

TEST(WorkStack, InterleavedPushPopTakeBottom) {
  WorkStack<int> s;
  for (int i = 0; i < 6; ++i) s.push(i);
  EXPECT_EQ(s.take_bottom(), 0);
  EXPECT_EQ(s.pop(), 5);
  s.push(99);
  EXPECT_EQ(s.pop(), 99);
  EXPECT_EQ(s.take_bottom(), 1);
  EXPECT_EQ(s.size(), 3u);  // 2, 3, 4 remain
  EXPECT_EQ(s.bottom(), 2);
  EXPECT_EQ(s.top(), 4);
}

TEST(WorkStack, ClearEmpties) {
  WorkStack<int> s;
  s.push(1);
  s.push(2);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(WorkStack, MoveOnlyPayload) {
  WorkStack<std::unique_ptr<int>> s;
  s.push(std::make_unique<int>(5));
  s.push(std::make_unique<int>(6));
  auto p = s.pop();
  EXPECT_EQ(*p, 6);
  auto q = s.take_bottom();
  EXPECT_EQ(*q, 5);
}

}  // namespace
}  // namespace simdts::search
