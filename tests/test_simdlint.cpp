// The linter that guards the determinism invariant needs its own guardrails:
// every rule is exercised with true positives AND the tricky negatives that
// would make it cry wolf — banned tokens inside strings/comments/raw
// strings, member calls that shadow banned names, declarations that look
// like calls.  Suppression and baseline semantics are pinned too, since CI
// exit codes hang off them.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "simdlint/baseline.hpp"
#include "simdlint/include_graph.hpp"
#include "simdlint/lexer.hpp"
#include "simdlint/report.hpp"
#include "simdlint/rules.hpp"

namespace {

using simdlint::Finding;

std::vector<Finding> lint(const std::string& path, const std::string& code) {
  static const auto rules = simdlint::default_rules();
  return simdlint::lint_file(simdlint::SourceFile::parse(path, code), rules);
}

/// Findings that would fail the build (not suppressed, not baselined).
std::vector<Finding> active(const std::string& path, const std::string& code) {
  std::vector<Finding> out;
  for (auto& f : lint(path, code)) {
    if (!f.suppressed) out.push_back(std::move(f));
  }
  return out;
}

bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  for (const auto& f : fs) {
    if (f.rule == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lexer: prose never trips code rules
// ---------------------------------------------------------------------------

TEST(SimdlintLexer, BannedTokensInCommentsAndStringsAreIgnored) {
  const std::string code = R"--(
// rand() in a comment is fine, as is std::random_device.
/* block comment: srand(42); assert(false); */
const char* msg = "call rand() and assert() and abort()";
char c = '"';  // a quote char literal must not open a string
int separators = 1'000'000;
)--";
  EXPECT_TRUE(active("src/lb/foo.cpp", code).empty());
}

TEST(SimdlintLexer, RawStringsAreBlankedButCodeAfterIsStillSeen) {
  const std::string code = R"--(
const char* fixture = R"(int x = rand(); assert(x);)";
int y = std::rand();
)--";
  const auto fs = active("src/lb/foo.cpp", code);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "no-rand");
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(SimdlintLexer, PreprocessorLinesAreExempt) {
  const std::string code = "#include <random>\n#include <ctime>\n";
  EXPECT_TRUE(active("src/lb/foo.cpp", code).empty());
}

TEST(SimdlintLexer, LineTextTrimsAndMatchesLineNumbers) {
  const auto f = simdlint::SourceFile::parse("src/a.cpp",
                                             "int a;\n   int b;  \nint c;\n");
  EXPECT_EQ(f.line_text(2), "int b;");
}

// ---------------------------------------------------------------------------
// D1: no-rand
// ---------------------------------------------------------------------------

TEST(SimdlintNoRand, FlagsRandSrandAndRandomDevice) {
  EXPECT_TRUE(has_rule(active("src/a.cpp", "int x = std::rand();\n"),
                       "no-rand"));
  EXPECT_TRUE(has_rule(active("bench/b.cpp", "void f() { srand(42); }\n"),
                       "no-rand"));
  EXPECT_TRUE(has_rule(
      active("tests/t.cpp", "std::random_device rd;\nint s = rd();\n"),
      "no-rand"));
}

TEST(SimdlintNoRand, SeededEnginesAndMemberNamesAreFine) {
  EXPECT_TRUE(active("src/a.cpp", "std::mt19937 rng(1234);\n").empty());
  EXPECT_TRUE(active("src/a.cpp", "int x = obj.rand();\n").empty());
}

// ---------------------------------------------------------------------------
// D1/D3: no-wall-clock
// ---------------------------------------------------------------------------

TEST(SimdlintWallClock, FlagsChronoClocksAndTimeCallsInSrc) {
  EXPECT_TRUE(has_rule(
      active("src/lb/a.cpp",
             "auto t0 = std::chrono::steady_clock::now();\n"),
      "no-wall-clock"));
  EXPECT_TRUE(has_rule(active("src/simd/m.cpp", "auto t = time(nullptr);\n"),
                       "no-wall-clock"));
  EXPECT_TRUE(has_rule(active("src/simd/m.cpp", "auto t = std::time(0);\n"),
                       "no-wall-clock"));
}

TEST(SimdlintWallClock, BenchRuntimeAndSimulatedClockAreExempt) {
  const std::string wall = "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(active("bench/perf.cpp", wall).empty());
  EXPECT_TRUE(active("src/runtime/sweep.cpp", wall).empty());
  // Member access on the simulated clock and declarations are not calls.
  EXPECT_TRUE(active("src/lb/a.cpp", "double e = machine.time();\n").empty());
  EXPECT_TRUE(active("src/lb/a.cpp", "MachineClock clock(3);\n").empty());
  EXPECT_TRUE(active("src/lb/a.cpp", "double lb_time = 0.0;\n").empty());
}

// ---------------------------------------------------------------------------
// D1: no-unordered-io-iter
// ---------------------------------------------------------------------------

namespace fixtures {

const char* kIterInCsvWriter = R"--(
#include <unordered_map>
void write_csv(std::ostream& os) {
  std::unordered_map<int, int> counts;
  for (const auto& kv : counts) {
    os << kv.first;
  }
}
)--";

const char* kBeginInJournal = R"--(
void append_journal() {
  std::unordered_set<int> seen;
  auto it = seen.begin();
  journal.write(*it);
}
)--";

const char* kIterWithoutOutput = R"--(
int sum_all() {
  std::unordered_map<int, int> counts;
  int s = 0;
  for (const auto& kv : counts) s += kv.second;
  return s;
}
)--";

const char* kOrderedIterInWriter = R"--(
void write_csv(std::ostream& os) {
  std::map<int, int> counts;
  for (const auto& kv : counts) os << kv.first;
}
)--";

}  // namespace fixtures

TEST(SimdlintUnorderedIter, FlagsIterationInOutputWritingFunctions) {
  EXPECT_TRUE(has_rule(active("src/lb/metrics.cpp", fixtures::kIterInCsvWriter),
                       "no-unordered-io-iter"));
  EXPECT_TRUE(has_rule(
      active("src/runtime/journal.cpp", fixtures::kBeginInJournal),
      "no-unordered-io-iter"));
}

TEST(SimdlintUnorderedIter, MembershipUseAndOrderedMapsAreFine) {
  EXPECT_TRUE(active("src/lb/metrics.cpp", fixtures::kIterWithoutOutput)
                  .empty());
  EXPECT_TRUE(active("src/lb/metrics.cpp", fixtures::kOrderedIterInWriter)
                  .empty());
}

// ---------------------------------------------------------------------------
// D1: no-pointer-order
// ---------------------------------------------------------------------------

TEST(SimdlintPointerOrder, FlagsPointerComparatorsAndPointerHash) {
  const std::string sort_by_ptr = R"--(
void f(std::vector<Node*>& v) {
  std::sort(v.begin(), v.end(),
            [](const Node* a, const Node* b) { return a < b; });
}
)--";
  EXPECT_TRUE(has_rule(active("src/lb/a.cpp", sort_by_ptr),
                       "no-pointer-order"));
  EXPECT_TRUE(has_rule(
      active("src/lb/a.cpp", "std::hash<Node*> h;\nauto v = h(p);\n"),
      "no-pointer-order"));
}

TEST(SimdlintPointerOrder, ComparingFieldsThroughPointersIsFine) {
  const std::string sort_by_field = R"--(
void f(std::vector<Node*>& v) {
  std::sort(v.begin(), v.end(),
            [](const Node* a, const Node* b) { return a->id < b->id; });
}
)--";
  EXPECT_TRUE(active("src/lb/a.cpp", sort_by_field).empty());
  EXPECT_TRUE(
      active("src/lb/a.cpp",
             "void g(std::vector<int>& v) {\n"
             "  std::sort(v.begin(), v.end(),\n"
             "            [](const int a, const int b) { return a < b; });\n"
             "}\n")
          .empty());
}

// ---------------------------------------------------------------------------
// D2: typed-errors
// ---------------------------------------------------------------------------

TEST(SimdlintTypedErrors, FlagsAssertAbortExitAndBareStdExceptions) {
  EXPECT_TRUE(has_rule(active("src/lb/a.cpp", "void f() { assert(x); }\n"),
                       "typed-errors"));
  EXPECT_TRUE(has_rule(active("src/lb/a.cpp", "void f() { std::abort(); }\n"),
                       "typed-errors"));
  EXPECT_TRUE(has_rule(active("src/lb/a.cpp", "void f() { exit(1); }\n"),
                       "typed-errors"));
  EXPECT_TRUE(has_rule(
      active("src/lb/a.cpp",
             "void f() { throw std::runtime_error(\"boom\"); }\n"),
      "typed-errors"));
  EXPECT_TRUE(has_rule(
      active("src/lb/a.cpp",
             "void f() { throw std::invalid_argument(\"bad\"); }\n"),
      "typed-errors"));
}

TEST(SimdlintTypedErrors, TypedThrowsStaticAssertAndOtherScopesAreFine) {
  EXPECT_TRUE(active("src/lb/a.cpp",
                     "void f() { throw ConfigError(\"bad x\", \"x=2\"); }\n")
                  .empty());
  EXPECT_TRUE(
      active("src/lb/a.cpp", "static_assert(sizeof(int) == 4);\n").empty());
  // The rule is scoped to src/: tests and benches may assert freely,
  // and the error hierarchy itself derives from std::runtime_error.
  EXPECT_TRUE(active("tests/t.cpp", "void f() { assert(x); }\n").empty());
  EXPECT_TRUE(
      active("src/common/error.hpp",
             "#pragma once\nclass Error : public std::runtime_error {};\n")
          .empty());
}

// ---------------------------------------------------------------------------
// D3: lockstep-io
// ---------------------------------------------------------------------------

TEST(SimdlintLockstepIo, FlagsHostIoInSubstrateCode) {
  const std::string io_in_loop = R"--(
void expand_all() {
  for (std::uint32_t pe = 0; pe < p_; ++pe) {
    printf("lane %u\n", pe);
  }
}
)--";
  const auto fs = active("src/lb/engine_impl.cpp", io_in_loop);
  ASSERT_TRUE(has_rule(fs, "lockstep-io"));
  EXPECT_NE(fs[0].message.find("per-lane loop"), std::string::npos);
  EXPECT_TRUE(has_rule(
      active("src/simd/machine_impl.cpp", "void f() { std::cout << 1; }\n"),
      "lockstep-io"));
}

TEST(SimdlintLockstepIo, ReportingLayersMayDoHostIo) {
  const std::string io = "void f() { std::cout << 1; }\n";
  EXPECT_TRUE(active("src/analysis/report_impl.cpp", io).empty());
  EXPECT_TRUE(active("bench/common_impl.cpp", io).empty());
}

// ---------------------------------------------------------------------------
// D4: header hygiene
// ---------------------------------------------------------------------------

TEST(SimdlintHeaders, PragmaOnceRequiredInHeaders) {
  EXPECT_TRUE(has_rule(active("src/lb/a.hpp", "int f();\n"),
                       "header-pragma-once"));
  EXPECT_TRUE(has_rule(
      active("src/lb/a.hpp",
             "#ifndef A_HPP\n#define A_HPP\nint f();\n#endif\n"),
      "header-pragma-once"));
  // A leading comment block before the pragma is the repo idiom.
  EXPECT_TRUE(active("src/lb/a.hpp",
                     "// Doc comment.\n#pragma once\nint f();\n")
                  .empty());
  // Sources don't need the pragma.
  EXPECT_FALSE(has_rule(active("src/lb/a.cpp", "int f() { return 1; }\n"),
                        "header-pragma-once"));
}

TEST(SimdlintHeaders, UsingNamespaceAtNamespaceScopeInHeader) {
  EXPECT_TRUE(has_rule(
      active("src/lb/a.hpp", "#pragma once\nusing namespace std;\n"),
      "header-using-namespace"));
  EXPECT_TRUE(has_rule(
      active("src/lb/a.hpp",
             "#pragma once\nnamespace foo {\nusing namespace std;\n}\n"),
      "header-using-namespace"));
  // Function-local using directives and .cpp files are fine.
  EXPECT_TRUE(active("src/lb/a.hpp",
                     "#pragma once\ninline void f() {\n"
                     "  using namespace std;\n}\n")
                  .empty());
  EXPECT_TRUE(
      active("src/lb/a.cpp", "using namespace simdts;\n").empty());
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(SimdlintSuppression, SameLineAndPreviousLineDirectivesWork) {
  const auto same =
      lint("src/a.cpp", "int x = std::rand();  // SIMDLINT-ALLOW(no-rand)\n");
  ASSERT_EQ(same.size(), 1u);
  EXPECT_TRUE(same[0].suppressed);

  const auto prev = lint("src/a.cpp",
                         "// Seeded upstream.  SIMDLINT-ALLOW(no-rand)\n"
                         "int x = std::rand();\n");
  ASSERT_EQ(prev.size(), 1u);
  EXPECT_TRUE(prev[0].suppressed);
}

TEST(SimdlintSuppression, WildcardAndMultiRuleDirectives) {
  const auto star =
      lint("src/a.cpp", "int x = std::rand();  // SIMDLINT-ALLOW(*)\n");
  ASSERT_EQ(star.size(), 1u);
  EXPECT_TRUE(star[0].suppressed);

  const auto multi = lint(
      "src/lb/a.cpp",
      "void f() { assert(std::rand()); }"
      "  // SIMDLINT-ALLOW(no-rand, typed-errors)\n");
  ASSERT_EQ(multi.size(), 2u);
  EXPECT_TRUE(multi[0].suppressed);
  EXPECT_TRUE(multi[1].suppressed);
}

TEST(SimdlintSuppression, WrongRuleIdDoesNotSuppressAndIsReportedUnused) {
  const auto fs = lint(
      "src/a.cpp", "int x = std::rand();  // SIMDLINT-ALLOW(no-wall-clock)\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_TRUE(has_rule(fs, "no-rand"));
  EXPECT_TRUE(has_rule(fs, "unused-suppression"));
  for (const auto& f : fs) EXPECT_FALSE(f.suppressed);
}

TEST(SimdlintSuppression, StaleDirectiveIsItselfAFinding) {
  const auto fs =
      lint("src/a.cpp", "int x = 1;  // SIMDLINT-ALLOW(no-rand)\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unused-suppression");
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(SimdlintBaseline, FingerprintsSurviveLineDriftAndCountOccurrences) {
  const auto before = active("src/a.cpp", "int x = std::rand();\n");
  const auto after =
      active("src/a.cpp", "int unrelated;\nint also;\nint x = std::rand();\n");
  ASSERT_EQ(before.size(), 1u);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(simdlint::fingerprints(before)[0], simdlint::fingerprints(after)[0]);

  // Two identical offending lines must get distinct fingerprints.
  const auto twice =
      active("src/a.cpp", "int x = std::rand();\nint x = std::rand();\n");
  ASSERT_EQ(twice.size(), 2u);
  const auto fps = simdlint::fingerprints(twice);
  EXPECT_NE(fps[0], fps[1]);
}

TEST(SimdlintBaseline, RoundTripAcceptsOldFindingsAndCatchesNewOnes) {
  const auto old_findings = active("src/a.cpp", "int x = std::rand();\n");
  std::ostringstream baseline;
  simdlint::write_baseline(baseline, old_findings);
  std::istringstream in(baseline.str());
  const auto accepted = simdlint::load_baseline(in);
  ASSERT_EQ(accepted.size(), 1u);

  // The old finding matches; a new, different finding does not.
  const auto now = active("src/a.cpp",
                          "int x = std::rand();\nstd::random_device rd;\n");
  const auto fps = simdlint::fingerprints(now);
  ASSERT_EQ(now.size(), 2u);
  int matched = 0;
  for (const auto& fp : fps) matched += accepted.count(fp) > 0 ? 1 : 0;
  EXPECT_EQ(matched, 1);
}

// ---------------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------------

TEST(SimdlintReport, JsonEscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(simdlint::json_escape("a\"b\\c\nd\te"),
            "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(simdlint::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(SimdlintReport, JsonReportCarriesSummaryAndFindings) {
  const auto fs =
      active("src/a.cpp", "int x = std::rand(); // \"quoted\" excerpt\n");
  std::ostringstream os;
  simdlint::json_report(os, fs, simdlint::tally(fs, 1));
  const std::string out = os.str();
  EXPECT_NE(out.find("\"tool\": \"simdlint\""), std::string::npos);
  EXPECT_NE(out.find("\"rule\": \"no-rand\""), std::string::npos);
  EXPECT_NE(out.find("\"active\": 1"), std::string::npos);
  EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos);
}

TEST(SimdlintReport, TextReportSummarizesCounts) {
  const auto fs = active("src/a.cpp", "int x = std::rand();\n");
  std::ostringstream os;
  simdlint::text_report(os, fs, simdlint::tally(fs, 1), false);
  EXPECT_NE(os.str().find("simdlint: 1 finding"), std::string::npos);
  EXPECT_NE(os.str().find("[no-rand]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule catalog sanity
// ---------------------------------------------------------------------------

TEST(SimdlintRules, CatalogCoversAllFourDisciplines) {
  const auto rules = simdlint::default_rules();
  std::vector<std::string> ids;
  ids.reserve(rules.size());
  for (const auto& r : rules) ids.push_back(r->id());
  for (const char* expected :
       {"no-rand", "no-wall-clock", "no-unordered-io-iter", "no-pointer-order",
        "typed-errors", "lockstep-io", "header-pragma-once",
        "header-using-namespace", "layering"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }
}

// ---------------------------------------------------------------------------
// Include graph: layering DAG and cycle detection (simdlint v2)
// ---------------------------------------------------------------------------

TEST(SimdlintIncludeGraph, QuotedIncludesAreExtractedFromRawOffsets) {
  // The lexer blanks string contents in `code`, so the extractor must read
  // the path back from `raw`; directives in comments must not count.
  const auto f = simdlint::SourceFile::parse("src/lb/x.hpp",
                                             "#pragma once\n"
                                             "#include \"lb/config.hpp\"\n"
                                             "  #  include \"simd/scan.hpp\"\n"
                                             "#include <vector>\n"
                                             "// #include \"fault/fault.hpp\"\n"
                                             "const char* s = \"#include "
                                             "\\\"analysis/model.hpp\\\"\";\n");
  const auto edges = simdlint::quoted_includes(f);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].target, "lb/config.hpp");
  EXPECT_EQ(edges[0].line, 2u);
  EXPECT_EQ(edges[1].target, "simd/scan.hpp");
  EXPECT_EQ(edges[1].line, 3u);
}

TEST(SimdlintIncludeGraph, ModuleRanksFormTheDocumentedDag) {
  EXPECT_LT(simdlint::module_rank("common"), simdlint::module_rank("sanitizer"));
  EXPECT_LT(simdlint::module_rank("sanitizer"), simdlint::module_rank("simd"));
  EXPECT_LT(simdlint::module_rank("simd"), simdlint::module_rank("search"));
  EXPECT_LT(simdlint::module_rank("search"), simdlint::module_rank("fault"));
  EXPECT_LT(simdlint::module_rank("fault"), simdlint::module_rank("puzzle"));
  // vec sits above the domains it batches and below the engine that
  // dispatches to it.
  EXPECT_LT(simdlint::module_rank("puzzle"), simdlint::module_rank("vec"));
  EXPECT_LT(simdlint::module_rank("synthetic"), simdlint::module_rank("vec"));
  EXPECT_LT(simdlint::module_rank("vec"), simdlint::module_rank("lb"));
  EXPECT_LT(simdlint::module_rank("lb"), simdlint::module_rank("baselines"));
  EXPECT_LT(simdlint::module_rank("baselines"),
            simdlint::module_rank("runtime"));
  EXPECT_LT(simdlint::module_rank("runtime"),
            simdlint::module_rank("analysis"));
  EXPECT_LT(simdlint::module_rank("runtime"),
            simdlint::module_rank("service"));
  // Sibling domain modules share a rank; unknown modules have none.
  EXPECT_EQ(simdlint::module_rank("queens"), simdlint::module_rank("tsp"));
  // service and analysis are top-rank siblings: neither may include the
  // other (the same-rank rule that keeps the domains independent).
  EXPECT_EQ(simdlint::module_rank("service"),
            simdlint::module_rank("analysis"));
  EXPECT_EQ(simdlint::module_rank("nonsense"), -1);
  EXPECT_EQ(simdlint::module_of("src/lb/engine.hpp"), "lb");
  EXPECT_EQ(simdlint::module_of("fault/fault.hpp"), "fault");
  EXPECT_EQ(simdlint::module_of("src/version.hpp"), "");
}

TEST(SimdlintLayering, UpRankIncludeIsAViolation) {
  const auto fs = active("src/simd/bad.hpp",
                         "#pragma once\n#include \"lb/engine.hpp\"\n");
  ASSERT_TRUE(has_rule(fs, "layering"));
}

TEST(SimdlintLayering, SiblingDomainIncludeIsAViolation) {
  const auto fs = active("src/puzzle/bad.hpp",
                         "#pragma once\n#include \"queens/queens.hpp\"\n");
  EXPECT_TRUE(has_rule(fs, "layering"));
}

TEST(SimdlintLayering, DownRankSameModuleAndOutsideSrcAreFine) {
  EXPECT_TRUE(active("src/lb/ok.hpp",
                     "#pragma once\n"
                     "#include \"common/error.hpp\"\n"
                     "#include \"fault/fault.hpp\"\n"
                     "#include \"lb/config.hpp\"\n"
                     "#include <vector>\n")
                  .empty());
  // The rule scopes to src/: tests and tools include whatever they need.
  EXPECT_TRUE(active("tests/test_x.cpp", "#include \"lb/engine.hpp\"\n")
                  .empty());
  // A bare filename is a same-directory include, not a module edge.
  EXPECT_TRUE(
      active("src/simd/ok.hpp", "#pragma once\n#include \"scan.hpp\"\n")
          .empty());
}

TEST(SimdlintLayering, SuppressionAppliesLikeAnyRule) {
  const auto fs = active("src/simd/bad.hpp",
                         "#pragma once\n"
                         "// SIMDLINT-ALLOW(layering): test fixture\n"
                         "#include \"lb/engine.hpp\"\n");
  EXPECT_FALSE(has_rule(fs, "layering"));
}

TEST(SimdlintIncludeGraph, CycleAcrossFilesIsReportedOnce) {
  std::vector<simdlint::SourceFile> files;
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/a.hpp", "#pragma once\n#include \"lb/b.hpp\"\n"));
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/b.hpp", "#pragma once\n#include \"lb/c.hpp\"\n"));
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/c.hpp", "#pragma once\n#include \"lb/a.hpp\"\n"));
  const auto findings = simdlint::find_include_cycles(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_EQ(findings[0].path, "src/lb/a.hpp");  // smallest path anchors
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("src/lb/a.hpp -> src/lb/b.hpp -> "
                                     "src/lb/c.hpp -> src/lb/a.hpp"),
            std::string::npos)
      << findings[0].message;
}

TEST(SimdlintIncludeGraph, AcyclicGraphAndForeignTargetsReportNothing) {
  std::vector<simdlint::SourceFile> files;
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/a.hpp",
      "#pragma once\n#include \"lb/b.hpp\"\n#include <vector>\n"));
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/b.hpp", "#pragma once\n#include \"common/error.hpp\"\n"));
  // common/error.hpp is not in the set: no edge, no crash.
  EXPECT_TRUE(simdlint::find_include_cycles(files).empty());
}

TEST(SimdlintIncludeGraph, SelfIncludeIsACycle) {
  std::vector<simdlint::SourceFile> files;
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/a.hpp", "#pragma once\n#include \"lb/a.hpp\"\n"));
  const auto findings = simdlint::find_include_cycles(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
}

}  // namespace
