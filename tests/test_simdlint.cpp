// The linter that guards the determinism invariant needs its own guardrails:
// every rule is exercised with true positives AND the tricky negatives that
// would make it cry wolf — banned tokens inside strings/comments/raw
// strings, member calls that shadow banned names, declarations that look
// like calls.  Suppression and baseline semantics are pinned too, since CI
// exit codes hang off them.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "simdlint/baseline.hpp"
#include "simdlint/effects.hpp"
#include "simdlint/include_graph.hpp"
#include "simdlint/lexer.hpp"
#include "simdlint/report.hpp"
#include "simdlint/rules.hpp"
#include "simdlint/symbols.hpp"
#include "simdlint/taint.hpp"

namespace {

using simdlint::Finding;

std::vector<Finding> lint(const std::string& path, const std::string& code) {
  static const auto rules = simdlint::default_rules();
  return simdlint::lint_file(simdlint::SourceFile::parse(path, code), rules);
}

/// Findings that would fail the build (not suppressed, not baselined).
std::vector<Finding> active(const std::string& path, const std::string& code) {
  std::vector<Finding> out;
  for (auto& f : lint(path, code)) {
    if (!f.suppressed) out.push_back(std::move(f));
  }
  return out;
}

bool has_rule(const std::vector<Finding>& fs, const std::string& rule) {
  for (const auto& f : fs) {
    if (f.rule == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lexer: prose never trips code rules
// ---------------------------------------------------------------------------

TEST(SimdlintLexer, BannedTokensInCommentsAndStringsAreIgnored) {
  const std::string code = R"--(
// rand() in a comment is fine, as is std::random_device.
/* block comment: srand(42); assert(false); */
const char* msg = "call rand() and assert() and abort()";
char c = '"';  // a quote char literal must not open a string
int separators = 1'000'000;
)--";
  EXPECT_TRUE(active("src/lb/foo.cpp", code).empty());
}

TEST(SimdlintLexer, RawStringsAreBlankedButCodeAfterIsStillSeen) {
  const std::string code = R"--(
const char* fixture = R"(int x = rand(); assert(x);)";
int y = std::rand();
)--";
  const auto fs = active("src/lb/foo.cpp", code);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "no-rand");
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(SimdlintLexer, PreprocessorLinesAreExempt) {
  const std::string code = "#include <random>\n#include <ctime>\n";
  EXPECT_TRUE(active("src/lb/foo.cpp", code).empty());
}

TEST(SimdlintLexer, LineTextTrimsAndMatchesLineNumbers) {
  const auto f = simdlint::SourceFile::parse("src/a.cpp",
                                             "int a;\n   int b;  \nint c;\n");
  EXPECT_EQ(f.line_text(2), "int b;");
}

// ---------------------------------------------------------------------------
// D1: no-rand
// ---------------------------------------------------------------------------

TEST(SimdlintNoRand, FlagsRandSrandAndRandomDevice) {
  EXPECT_TRUE(has_rule(active("src/a.cpp", "int x = std::rand();\n"),
                       "no-rand"));
  EXPECT_TRUE(has_rule(active("bench/b.cpp", "void f() { srand(42); }\n"),
                       "no-rand"));
  EXPECT_TRUE(has_rule(
      active("tests/t.cpp", "std::random_device rd;\nint s = rd();\n"),
      "no-rand"));
}

TEST(SimdlintNoRand, SeededEnginesAndMemberNamesAreFine) {
  EXPECT_TRUE(active("src/a.cpp", "std::mt19937 rng(1234);\n").empty());
  EXPECT_TRUE(active("src/a.cpp", "int x = obj.rand();\n").empty());
}

// ---------------------------------------------------------------------------
// D1/D3: no-wall-clock
// ---------------------------------------------------------------------------

TEST(SimdlintWallClock, FlagsChronoClocksAndTimeCallsInSrc) {
  EXPECT_TRUE(has_rule(
      active("src/lb/a.cpp",
             "auto t0 = std::chrono::steady_clock::now();\n"),
      "no-wall-clock"));
  EXPECT_TRUE(has_rule(active("src/simd/m.cpp", "auto t = time(nullptr);\n"),
                       "no-wall-clock"));
  EXPECT_TRUE(has_rule(active("src/simd/m.cpp", "auto t = std::time(0);\n"),
                       "no-wall-clock"));
}

TEST(SimdlintWallClock, BenchRuntimeAndSimulatedClockAreExempt) {
  const std::string wall = "auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(active("bench/perf.cpp", wall).empty());
  EXPECT_TRUE(active("src/runtime/sweep.cpp", wall).empty());
  // Member access on the simulated clock and declarations are not calls.
  EXPECT_TRUE(active("src/lb/a.cpp", "double e = machine.time();\n").empty());
  EXPECT_TRUE(active("src/lb/a.cpp", "MachineClock clock(3);\n").empty());
  EXPECT_TRUE(active("src/lb/a.cpp", "double lb_time = 0.0;\n").empty());
}

// ---------------------------------------------------------------------------
// D1: no-unordered-io-iter
// ---------------------------------------------------------------------------

namespace fixtures {

const char* kIterInCsvWriter = R"--(
#include <unordered_map>
void write_csv(std::ostream& os) {
  std::unordered_map<int, int> counts;
  for (const auto& kv : counts) {
    os << kv.first;
  }
}
)--";

const char* kBeginInJournal = R"--(
void append_journal() {
  std::unordered_set<int> seen;
  auto it = seen.begin();
  journal.write(*it);
}
)--";

const char* kIterWithoutOutput = R"--(
int sum_all() {
  std::unordered_map<int, int> counts;
  int s = 0;
  for (const auto& kv : counts) s += kv.second;
  return s;
}
)--";

const char* kOrderedIterInWriter = R"--(
void write_csv(std::ostream& os) {
  std::map<int, int> counts;
  for (const auto& kv : counts) os << kv.first;
}
)--";

}  // namespace fixtures

TEST(SimdlintUnorderedIter, FlagsIterationInOutputWritingFunctions) {
  EXPECT_TRUE(has_rule(active("src/lb/metrics.cpp", fixtures::kIterInCsvWriter),
                       "no-unordered-io-iter"));
  EXPECT_TRUE(has_rule(
      active("src/runtime/journal.cpp", fixtures::kBeginInJournal),
      "no-unordered-io-iter"));
}

TEST(SimdlintUnorderedIter, MembershipUseAndOrderedMapsAreFine) {
  EXPECT_TRUE(active("src/lb/metrics.cpp", fixtures::kIterWithoutOutput)
                  .empty());
  EXPECT_TRUE(active("src/lb/metrics.cpp", fixtures::kOrderedIterInWriter)
                  .empty());
}

// ---------------------------------------------------------------------------
// D1: no-pointer-order
// ---------------------------------------------------------------------------

TEST(SimdlintPointerOrder, FlagsPointerComparatorsAndPointerHash) {
  const std::string sort_by_ptr = R"--(
void f(std::vector<Node*>& v) {
  std::sort(v.begin(), v.end(),
            [](const Node* a, const Node* b) { return a < b; });
}
)--";
  EXPECT_TRUE(has_rule(active("src/lb/a.cpp", sort_by_ptr),
                       "no-pointer-order"));
  EXPECT_TRUE(has_rule(
      active("src/lb/a.cpp", "std::hash<Node*> h;\nauto v = h(p);\n"),
      "no-pointer-order"));
}

TEST(SimdlintPointerOrder, ComparingFieldsThroughPointersIsFine) {
  const std::string sort_by_field = R"--(
void f(std::vector<Node*>& v) {
  std::sort(v.begin(), v.end(),
            [](const Node* a, const Node* b) { return a->id < b->id; });
}
)--";
  EXPECT_TRUE(active("src/lb/a.cpp", sort_by_field).empty());
  EXPECT_TRUE(
      active("src/lb/a.cpp",
             "void g(std::vector<int>& v) {\n"
             "  std::sort(v.begin(), v.end(),\n"
             "            [](const int a, const int b) { return a < b; });\n"
             "}\n")
          .empty());
}

// ---------------------------------------------------------------------------
// D2: typed-errors
// ---------------------------------------------------------------------------

TEST(SimdlintTypedErrors, FlagsAssertAbortExitAndBareStdExceptions) {
  EXPECT_TRUE(has_rule(active("src/lb/a.cpp", "void f() { assert(x); }\n"),
                       "typed-errors"));
  EXPECT_TRUE(has_rule(active("src/lb/a.cpp", "void f() { std::abort(); }\n"),
                       "typed-errors"));
  EXPECT_TRUE(has_rule(active("src/lb/a.cpp", "void f() { exit(1); }\n"),
                       "typed-errors"));
  EXPECT_TRUE(has_rule(
      active("src/lb/a.cpp",
             "void f() { throw std::runtime_error(\"boom\"); }\n"),
      "typed-errors"));
  EXPECT_TRUE(has_rule(
      active("src/lb/a.cpp",
             "void f() { throw std::invalid_argument(\"bad\"); }\n"),
      "typed-errors"));
}

TEST(SimdlintTypedErrors, TypedThrowsStaticAssertAndOtherScopesAreFine) {
  EXPECT_TRUE(active("src/lb/a.cpp",
                     "void f() { throw ConfigError(\"bad x\", \"x=2\"); }\n")
                  .empty());
  EXPECT_TRUE(
      active("src/lb/a.cpp", "static_assert(sizeof(int) == 4);\n").empty());
  // The rule is scoped to src/: tests and benches may assert freely,
  // and the error hierarchy itself derives from std::runtime_error.
  EXPECT_TRUE(active("tests/t.cpp", "void f() { assert(x); }\n").empty());
  EXPECT_TRUE(
      active("src/common/error.hpp",
             "#pragma once\nclass Error : public std::runtime_error {};\n")
          .empty());
}

// ---------------------------------------------------------------------------
// D3: lockstep-io
// ---------------------------------------------------------------------------

TEST(SimdlintLockstepIo, FlagsHostIoInSubstrateCode) {
  const std::string io_in_loop = R"--(
void expand_all() {
  for (std::uint32_t pe = 0; pe < p_; ++pe) {
    printf("lane %u\n", pe);
  }
}
)--";
  const auto fs = active("src/lb/engine_impl.cpp", io_in_loop);
  ASSERT_TRUE(has_rule(fs, "lockstep-io"));
  EXPECT_NE(fs[0].message.find("per-lane loop"), std::string::npos);
  EXPECT_TRUE(has_rule(
      active("src/simd/machine_impl.cpp", "void f() { std::cout << 1; }\n"),
      "lockstep-io"));
}

TEST(SimdlintLockstepIo, ReportingLayersMayDoHostIo) {
  const std::string io = "void f() { std::cout << 1; }\n";
  EXPECT_TRUE(active("src/analysis/report_impl.cpp", io).empty());
  EXPECT_TRUE(active("bench/common_impl.cpp", io).empty());
}

// ---------------------------------------------------------------------------
// D4: header hygiene
// ---------------------------------------------------------------------------

TEST(SimdlintHeaders, PragmaOnceRequiredInHeaders) {
  EXPECT_TRUE(has_rule(active("src/lb/a.hpp", "int f();\n"),
                       "header-pragma-once"));
  EXPECT_TRUE(has_rule(
      active("src/lb/a.hpp",
             "#ifndef A_HPP\n#define A_HPP\nint f();\n#endif\n"),
      "header-pragma-once"));
  // A leading comment block before the pragma is the repo idiom.
  EXPECT_TRUE(active("src/lb/a.hpp",
                     "// Doc comment.\n#pragma once\nint f();\n")
                  .empty());
  // Sources don't need the pragma.
  EXPECT_FALSE(has_rule(active("src/lb/a.cpp", "int f() { return 1; }\n"),
                        "header-pragma-once"));
}

TEST(SimdlintHeaders, UsingNamespaceAtNamespaceScopeInHeader) {
  EXPECT_TRUE(has_rule(
      active("src/lb/a.hpp", "#pragma once\nusing namespace std;\n"),
      "header-using-namespace"));
  EXPECT_TRUE(has_rule(
      active("src/lb/a.hpp",
             "#pragma once\nnamespace foo {\nusing namespace std;\n}\n"),
      "header-using-namespace"));
  // Function-local using directives and .cpp files are fine.
  EXPECT_TRUE(active("src/lb/a.hpp",
                     "#pragma once\ninline void f() {\n"
                     "  using namespace std;\n}\n")
                  .empty());
  EXPECT_TRUE(
      active("src/lb/a.cpp", "using namespace simdts;\n").empty());
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(SimdlintSuppression, SameLineAndPreviousLineDirectivesWork) {
  const auto same =
      lint("src/a.cpp", "int x = std::rand();  // SIMDLINT-ALLOW(no-rand)\n");
  ASSERT_EQ(same.size(), 1u);
  EXPECT_TRUE(same[0].suppressed);

  const auto prev = lint("src/a.cpp",
                         "// Seeded upstream.  SIMDLINT-ALLOW(no-rand)\n"
                         "int x = std::rand();\n");
  ASSERT_EQ(prev.size(), 1u);
  EXPECT_TRUE(prev[0].suppressed);
}

TEST(SimdlintSuppression, WildcardAndMultiRuleDirectives) {
  const auto star =
      lint("src/a.cpp", "int x = std::rand();  // SIMDLINT-ALLOW(*)\n");
  ASSERT_EQ(star.size(), 1u);
  EXPECT_TRUE(star[0].suppressed);

  const auto multi = lint(
      "src/lb/a.cpp",
      "void f() { assert(std::rand()); }"
      "  // SIMDLINT-ALLOW(no-rand, typed-errors)\n");
  ASSERT_EQ(multi.size(), 2u);
  EXPECT_TRUE(multi[0].suppressed);
  EXPECT_TRUE(multi[1].suppressed);
}

TEST(SimdlintSuppression, WrongRuleIdDoesNotSuppressAndIsReportedUnused) {
  const auto fs = lint(
      "src/a.cpp", "int x = std::rand();  // SIMDLINT-ALLOW(no-wall-clock)\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_TRUE(has_rule(fs, "no-rand"));
  EXPECT_TRUE(has_rule(fs, "unused-suppression"));
  for (const auto& f : fs) EXPECT_FALSE(f.suppressed);
}

TEST(SimdlintSuppression, StaleDirectiveIsItselfAFinding) {
  const auto fs =
      lint("src/a.cpp", "int x = 1;  // SIMDLINT-ALLOW(no-rand)\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unused-suppression");
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(SimdlintBaseline, FingerprintsSurviveLineDriftAndCountOccurrences) {
  const auto before = active("src/a.cpp", "int x = std::rand();\n");
  const auto after =
      active("src/a.cpp", "int unrelated;\nint also;\nint x = std::rand();\n");
  ASSERT_EQ(before.size(), 1u);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(simdlint::fingerprints(before)[0], simdlint::fingerprints(after)[0]);

  // Two identical offending lines must get distinct fingerprints.
  const auto twice =
      active("src/a.cpp", "int x = std::rand();\nint x = std::rand();\n");
  ASSERT_EQ(twice.size(), 2u);
  const auto fps = simdlint::fingerprints(twice);
  EXPECT_NE(fps[0], fps[1]);
}

TEST(SimdlintBaseline, RoundTripAcceptsOldFindingsAndCatchesNewOnes) {
  const auto old_findings = active("src/a.cpp", "int x = std::rand();\n");
  std::ostringstream baseline;
  simdlint::write_baseline(baseline, old_findings);
  std::istringstream in(baseline.str());
  const auto accepted = simdlint::load_baseline(in);
  ASSERT_EQ(accepted.size(), 1u);

  // The old finding matches; a new, different finding does not.
  const auto now = active("src/a.cpp",
                          "int x = std::rand();\nstd::random_device rd;\n");
  const auto fps = simdlint::fingerprints(now);
  ASSERT_EQ(now.size(), 2u);
  int matched = 0;
  for (const auto& fp : fps) matched += accepted.count(fp) > 0 ? 1 : 0;
  EXPECT_EQ(matched, 1);
}

// ---------------------------------------------------------------------------
// Reporters
// ---------------------------------------------------------------------------

TEST(SimdlintReport, JsonEscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(simdlint::json_escape("a\"b\\c\nd\te"),
            "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(simdlint::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(SimdlintReport, JsonReportCarriesSummaryAndFindings) {
  const auto fs =
      active("src/a.cpp", "int x = std::rand(); // \"quoted\" excerpt\n");
  std::ostringstream os;
  simdlint::json_report(os, fs, simdlint::tally(fs, 1));
  const std::string out = os.str();
  EXPECT_NE(out.find("\"tool\": \"simdlint\""), std::string::npos);
  EXPECT_NE(out.find("\"rule\": \"no-rand\""), std::string::npos);
  EXPECT_NE(out.find("\"active\": 1"), std::string::npos);
  EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos);
}

TEST(SimdlintReport, TextReportSummarizesCounts) {
  const auto fs = active("src/a.cpp", "int x = std::rand();\n");
  std::ostringstream os;
  simdlint::text_report(os, fs, simdlint::tally(fs, 1), false);
  EXPECT_NE(os.str().find("simdlint: 1 finding"), std::string::npos);
  EXPECT_NE(os.str().find("[no-rand]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule catalog sanity
// ---------------------------------------------------------------------------

TEST(SimdlintRules, CatalogCoversAllFourDisciplines) {
  const auto rules = simdlint::default_rules();
  std::vector<std::string> ids;
  ids.reserve(rules.size());
  for (const auto& r : rules) ids.push_back(r->id());
  for (const char* expected :
       {"no-rand", "no-wall-clock", "no-unordered-io-iter", "no-pointer-order",
        "typed-errors", "lockstep-io", "header-pragma-once",
        "header-using-namespace", "layering"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }
}

// ---------------------------------------------------------------------------
// Include graph: layering DAG and cycle detection (simdlint v2)
// ---------------------------------------------------------------------------

TEST(SimdlintIncludeGraph, QuotedIncludesAreExtractedFromRawOffsets) {
  // The lexer blanks string contents in `code`, so the extractor must read
  // the path back from `raw`; directives in comments must not count.
  const auto f = simdlint::SourceFile::parse("src/lb/x.hpp",
                                             "#pragma once\n"
                                             "#include \"lb/config.hpp\"\n"
                                             "  #  include \"simd/scan.hpp\"\n"
                                             "#include <vector>\n"
                                             "// #include \"fault/fault.hpp\"\n"
                                             "const char* s = \"#include "
                                             "\\\"analysis/model.hpp\\\"\";\n");
  const auto edges = simdlint::quoted_includes(f);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].target, "lb/config.hpp");
  EXPECT_EQ(edges[0].line, 2u);
  EXPECT_EQ(edges[1].target, "simd/scan.hpp");
  EXPECT_EQ(edges[1].line, 3u);
}

TEST(SimdlintIncludeGraph, ModuleRanksFormTheDocumentedDag) {
  EXPECT_LT(simdlint::module_rank("common"), simdlint::module_rank("sanitizer"));
  EXPECT_LT(simdlint::module_rank("sanitizer"), simdlint::module_rank("simd"));
  EXPECT_LT(simdlint::module_rank("simd"), simdlint::module_rank("search"));
  EXPECT_LT(simdlint::module_rank("search"), simdlint::module_rank("fault"));
  EXPECT_LT(simdlint::module_rank("fault"), simdlint::module_rank("puzzle"));
  // vec sits above the domains it batches and below the engine that
  // dispatches to it.
  EXPECT_LT(simdlint::module_rank("puzzle"), simdlint::module_rank("vec"));
  EXPECT_LT(simdlint::module_rank("synthetic"), simdlint::module_rank("vec"));
  EXPECT_LT(simdlint::module_rank("vec"), simdlint::module_rank("lb"));
  EXPECT_LT(simdlint::module_rank("lb"), simdlint::module_rank("baselines"));
  EXPECT_LT(simdlint::module_rank("baselines"),
            simdlint::module_rank("runtime"));
  EXPECT_LT(simdlint::module_rank("runtime"),
            simdlint::module_rank("analysis"));
  EXPECT_LT(simdlint::module_rank("runtime"),
            simdlint::module_rank("service"));
  // Sibling domain modules share a rank; unknown modules have none.
  EXPECT_EQ(simdlint::module_rank("queens"), simdlint::module_rank("tsp"));
  // service and analysis are top-rank siblings: neither may include the
  // other (the same-rank rule that keeps the domains independent).
  EXPECT_EQ(simdlint::module_rank("service"),
            simdlint::module_rank("analysis"));
  EXPECT_EQ(simdlint::module_rank("nonsense"), -1);
  EXPECT_EQ(simdlint::module_of("src/lb/engine.hpp"), "lb");
  EXPECT_EQ(simdlint::module_of("fault/fault.hpp"), "fault");
  EXPECT_EQ(simdlint::module_of("src/version.hpp"), "");
}

TEST(SimdlintLayering, UpRankIncludeIsAViolation) {
  const auto fs = active("src/simd/bad.hpp",
                         "#pragma once\n#include \"lb/engine.hpp\"\n");
  ASSERT_TRUE(has_rule(fs, "layering"));
}

TEST(SimdlintLayering, SiblingDomainIncludeIsAViolation) {
  const auto fs = active("src/puzzle/bad.hpp",
                         "#pragma once\n#include \"queens/queens.hpp\"\n");
  EXPECT_TRUE(has_rule(fs, "layering"));
}

TEST(SimdlintLayering, DownRankSameModuleAndOutsideSrcAreFine) {
  EXPECT_TRUE(active("src/lb/ok.hpp",
                     "#pragma once\n"
                     "#include \"common/error.hpp\"\n"
                     "#include \"fault/fault.hpp\"\n"
                     "#include \"lb/config.hpp\"\n"
                     "#include <vector>\n")
                  .empty());
  // The rule scopes to src/: tests and tools include whatever they need.
  EXPECT_TRUE(active("tests/test_x.cpp", "#include \"lb/engine.hpp\"\n")
                  .empty());
  // A bare filename is a same-directory include, not a module edge.
  EXPECT_TRUE(
      active("src/simd/ok.hpp", "#pragma once\n#include \"scan.hpp\"\n")
          .empty());
}

TEST(SimdlintLayering, SuppressionAppliesLikeAnyRule) {
  const auto fs = active("src/simd/bad.hpp",
                         "#pragma once\n"
                         "// SIMDLINT-ALLOW(layering): test fixture\n"
                         "#include \"lb/engine.hpp\"\n");
  EXPECT_FALSE(has_rule(fs, "layering"));
}

TEST(SimdlintIncludeGraph, CycleAcrossFilesIsReportedOnce) {
  std::vector<simdlint::SourceFile> files;
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/a.hpp", "#pragma once\n#include \"lb/b.hpp\"\n"));
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/b.hpp", "#pragma once\n#include \"lb/c.hpp\"\n"));
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/c.hpp", "#pragma once\n#include \"lb/a.hpp\"\n"));
  const auto findings = simdlint::find_include_cycles(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_EQ(findings[0].path, "src/lb/a.hpp");  // smallest path anchors
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("src/lb/a.hpp -> src/lb/b.hpp -> "
                                     "src/lb/c.hpp -> src/lb/a.hpp"),
            std::string::npos)
      << findings[0].message;
}

TEST(SimdlintIncludeGraph, AcyclicGraphAndForeignTargetsReportNothing) {
  std::vector<simdlint::SourceFile> files;
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/a.hpp",
      "#pragma once\n#include \"lb/b.hpp\"\n#include <vector>\n"));
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/b.hpp", "#pragma once\n#include \"common/error.hpp\"\n"));
  // common/error.hpp is not in the set: no edge, no crash.
  EXPECT_TRUE(simdlint::find_include_cycles(files).empty());
}

TEST(SimdlintIncludeGraph, SelfIncludeIsACycle) {
  std::vector<simdlint::SourceFile> files;
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/a.hpp", "#pragma once\n#include \"lb/a.hpp\"\n"));
  const auto findings = simdlint::find_include_cycles(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
}

TEST(SimdlintIncludeGraph, IncludesInsideIfZeroBlocksAreInvisible) {
  // `#if 0` is how this repo parks dead directives; counting those edges
  // would invent layering violations out of commented-out code.  Nested
  // conditionals inside the dead block must not resurrect it early, and
  // `#else` of the outer `#if 0` re-enables scanning.
  const auto f = simdlint::SourceFile::parse("src/lb/x.hpp",
                                             "#pragma once\n"
                                             "#if 0\n"
                                             "#include \"lb/dead.hpp\"\n"
                                             "#ifdef NESTED\n"
                                             "#include \"lb/nested.hpp\"\n"
                                             "#endif\n"
                                             "#include \"lb/also_dead.hpp\"\n"
                                             "#else\n"
                                             "#include \"lb/live.hpp\"\n"
                                             "#endif\n"
                                             "#include \"lb/after.hpp\"\n");
  const auto edges = simdlint::quoted_includes(f);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].target, "lb/live.hpp");
  EXPECT_EQ(edges[0].line, 9u);
  EXPECT_EQ(edges[1].target, "lb/after.hpp");
  EXPECT_EQ(edges[1].line, 11u);
}

TEST(SimdlintIncludeGraph, BackslashContinuedIncludesAreStillSeen) {
  // A backslash-newline is directive whitespace: the include must be
  // extracted and attributed to the line the `#` sits on.
  const auto f = simdlint::SourceFile::parse("src/lb/x.hpp",
                                             "#pragma once\n"
                                             "#include \\\n"
                                             "  \"lb/config.hpp\"\n"
                                             "# \\\n"
                                             "include \"simd/scan.hpp\"\n");
  const auto edges = simdlint::quoted_includes(f);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].target, "lb/config.hpp");
  EXPECT_EQ(edges[0].line, 2u);
  EXPECT_EQ(edges[1].target, "simd/scan.hpp");
  EXPECT_EQ(edges[1].line, 4u);
}

TEST(SimdlintIncludeGraph, SameBasenameInDifferentDirsResolvesByFullPath) {
  // Two headers named util.hpp: edges must bind to the full repo-relative
  // path, never the basename — basename matching would see a fake cycle
  // here the moment simd/util.hpp includes any third util.hpp.
  std::vector<simdlint::SourceFile> files;
  files.push_back(simdlint::SourceFile::parse(
      "src/lb/util.hpp", "#pragma once\n#include \"simd/util.hpp\"\n"));
  files.push_back(simdlint::SourceFile::parse(
      "src/simd/util.hpp", "#pragma once\n#include \"common/util.hpp\"\n"));
  EXPECT_TRUE(simdlint::find_include_cycles(files).empty());
  // The genuine cycle between the two same-name headers is still caught.
  files[1] = simdlint::SourceFile::parse(
      "src/simd/util.hpp", "#pragma once\n#include \"lb/util.hpp\"\n");
  EXPECT_EQ(simdlint::find_include_cycles(files).size(), 1u);
}

TEST(SimdlintLayering, ToolsOutrankEveryLibraryLayer) {
  // tools/ may depend on any src module; no src module may include tools/.
  EXPECT_FALSE(has_rule(
      active("tools/bench_x/x.cpp", "#include \"lb/engine.hpp\"\n"),
      "layering"));
  EXPECT_TRUE(has_rule(
      active("src/lb/bad.cpp", "#include \"tools/simdlint/lexer.hpp\"\n"),
      "layering"));
}

// ---------------------------------------------------------------------------
// Cross-TU effect analysis (simdlint v3): every rule gets a mutation test —
// the forbidden effect sits N calls deep and the witness must name every
// frame of the chain, across translation units.
// ---------------------------------------------------------------------------

std::vector<Finding> effects(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const std::string& conf, bool subset = false) {
  std::vector<simdlint::SourceFile> files;
  files.reserve(sources.size());
  for (const auto& [path, code] : sources) {
    files.push_back(simdlint::SourceFile::parse(path, code));
  }
  return simdlint::find_effect_findings(
      files, simdlint::parse_effects_conf("tools/simdlint/effects.conf", conf),
      subset);
}

const Finding* only_rule(const std::vector<Finding>& fs,
                         const std::string& rule) {
  const Finding* hit = nullptr;
  for (const auto& f : fs) {
    if (f.rule != rule) continue;
    if (hit != nullptr) return nullptr;  // ambiguous: caller wants exactly one
    hit = &f;
  }
  return hit;
}

TEST(SimdlintEffects, AllocationThreeCallsDeepAcrossTusNamesEveryFrame) {
  const auto fs = effects(
      {{"src/lb/a.cpp",
        "namespace simdts::lb {\n"
        "void grow(std::vector<int>& v) { v.push_back(1); }\n"
        "void stage(std::vector<int>& v) { grow(v); }\n"
        "}\n"},
       {"src/lb/b.cpp",
        "namespace simdts::lb {\n"
        "void tick(std::vector<int>& v) { stage(v); }\n"
        "}\n"}},
      "region lockstep simdts::lb::tick\n");
  const Finding* f = only_rule(fs, "region-allocates");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->path, "src/lb/b.cpp");
  EXPECT_NE(f->message.find("lockstep region 'simdts::lb::tick'"),
            std::string::npos)
      << f->message;
  EXPECT_NE(
      f->message.find("tick -> stage -> grow -> v.push_back [allocates]"),
      std::string::npos)
      << f->message;
  // Mutation: same chain without the root declaration reports nothing.
  EXPECT_TRUE(effects({{"src/lb/a.cpp",
                        "namespace simdts::lb {\n"
                        "void grow(std::vector<int>& v) { v.push_back(1); }\n"
                        "void tick(std::vector<int>& v) { grow(v); }\n"
                        "}\n"}},
                      "")
                  .empty());
}

TEST(SimdlintEffects, LockTwoCallsDeepNamesEveryFrame) {
  const auto fs = effects(
      {{"src/simd/a.cpp",
        "namespace simdts::simd {\n"
        "void with_lock() { std::mutex m; }\n"
        "void tick() { with_lock(); }\n"
        "}\n"}},
      "region lockstep simdts::simd::tick\n");
  const Finding* f = only_rule(fs, "region-locks");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("tick -> with_lock -> std::mutex [locks]"),
            std::string::npos)
      << f->message;
}

TEST(SimdlintEffects, HostIoTwoCallsDeepNamesEveryFrame) {
  const auto fs = effects(
      {{"src/simd/a.cpp",
        "namespace simdts::simd {\n"
        "void read_file() { std::ifstream in; }\n"
        "void tick() { read_file(); }\n"
        "}\n"}},
      "region lockstep simdts::simd::tick\n");
  const Finding* f = only_rule(fs, "region-io");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("tick -> read_file -> ifstream [does-io]"),
            std::string::npos)
      << f->message;
}

TEST(SimdlintEffects, NondetTwoCallsDeepNamesEveryFrame) {
  const auto fs = effects(
      {{"src/simd/a.cpp",
        "namespace simdts::simd {\n"
        "int roll() { return std::rand(); }\n"
        "int tick() { return roll(); }\n"
        "}\n"}},
      "region lockstep simdts::simd::tick\n");
  const Finding* f = only_rule(fs, "region-nondet");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("tick -> roll -> rand [nondet]"),
            std::string::npos)
      << f->message;
}

TEST(SimdlintEffects, UntypedThrowTwoCallsDeepNamesEveryFrame) {
  const auto fs = effects(
      {{"src/simd/a.cpp",
        "namespace simdts::simd {\n"
        "void boom() { throw std::runtime_error(\"x\"); }\n"
        "void tick() { boom(); }\n"
        "}\n"}},
      "region lockstep simdts::simd::tick\n");
  const Finding* f = only_rule(fs, "region-throws");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(
      f->message.find("tick -> boom -> throw runtime_error [throws-untyped]"),
      std::string::npos)
      << f->message;
}

TEST(SimdlintEffects, TypedErrorThrowsAreAllowedInLockstepRegions) {
  // The repo convention: classes ending in "Error" are the typed, documented
  // abort path — only *untyped* throws are forbidden in lockstep code.
  const auto fs = effects(
      {{"src/simd/a.cpp",
        "namespace simdts::simd {\n"
        "void boom() { throw ConfigError(\"x\", \"ctx\"); }\n"
        "void tick() { boom(); }\n"
        "}\n"}},
      "region lockstep simdts::simd::tick\n");
  EXPECT_EQ(only_rule(fs, "region-throws"), nullptr);
  EXPECT_TRUE(fs.empty());
}

TEST(SimdlintEffects, MutualRecursionNamesTheCycleClosure) {
  const auto fs = effects(
      {{"src/search/a.cpp",
        "namespace simdts::search {\n"
        "void pong(int n);\n"
        "void ping(int n) { pong(n - 1); }\n"
        "void pong(int n) { ping(n - 1); }\n"
        "void tick() { ping(8); }\n"
        "}\n"}},
      "region lockstep simdts::search::tick\n");
  const Finding* f = only_rule(fs, "region-recursion");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(
      f->message.find("tick -> ping -> pong -> ping [unbounded-recursion]"),
      std::string::npos)
      << f->message;
}

TEST(SimdlintEffects, NoexceptReachingAThrowIsATerminateHazard) {
  const auto fs = effects(
      {{"src/lb/a.cpp",
        "namespace simdts::lb {\n"
        "void may_throw(int x) { if (x) throw ConfigError(\"b\", \"c\"); }\n"
        "void shutdown() noexcept { may_throw(1); }\n"
        "}\n"}},
      "");
  const Finding* f = only_rule(fs, "noexcept-throws");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("'simdts::lb::shutdown'"), std::string::npos)
      << f->message;
  EXPECT_NE(
      f->message.find("shutdown -> may_throw -> throw ConfigError [throws]"),
      std::string::npos)
      << f->message;
  // Mutation: a try block in the noexcept body stops throw propagation.
  EXPECT_TRUE(
      effects(
          {{"src/lb/a.cpp",
            "namespace simdts::lb {\n"
            "void may_throw(int x) { if (x) throw ConfigError(\"b\", \"c\"); "
            "}\n"
            "void shutdown() noexcept { try { may_throw(1); } catch (...) {} "
            "}\n"
            "}\n"}},
          "")
          .empty());
}

TEST(SimdlintEffects, SerialRegionsOnlyForbidNondeterminism) {
  const std::vector<std::pair<std::string, std::string>> sources = {
      {"src/service/a.cpp",
       "namespace simdts::service {\n"
       "void plan(std::vector<int>& v) { v.push_back(std::rand()); }\n"
       "}\n"}};
  const auto fs = effects(sources, "region serial simdts::service::plan\n");
  EXPECT_NE(only_rule(fs, "region-nondet"), nullptr);
  EXPECT_EQ(only_rule(fs, "region-allocates"), nullptr);
  // The same body under a lockstep declaration trips both rules.
  const auto strict =
      effects(sources, "region lockstep simdts::service::plan\n");
  EXPECT_NE(only_rule(strict, "region-nondet"), nullptr);
  EXPECT_NE(only_rule(strict, "region-allocates"), nullptr);
}

TEST(SimdlintEffects, AssumeStripsTheEffectAndGoesStaleWhenItVanishes) {
  const std::string conf =
      "region lockstep simdts::lb::tick\n"
      "assume allocates simdts::lb::stage\n";
  // The assumed summary stops propagation at stage: tick is clean.
  EXPECT_TRUE(effects({{"src/lb/a.cpp",
                        "namespace simdts::lb {\n"
                        "void stage(std::vector<int>& v) { v.push_back(1); }\n"
                        "void tick(std::vector<int>& v) { stage(v); }\n"
                        "}\n"}},
                      conf)
                  .empty());
  // Mutation: stage no longer allocates — the entry must rot loudly.
  const auto fs = effects({{"src/lb/a.cpp",
                            "namespace simdts::lb {\n"
                            "void stage(std::vector<int>& v) { v.clear(); }\n"
                            "void tick(std::vector<int>& v) { stage(v); }\n"
                            "}\n"}},
                          conf);
  const Finding* f = only_rule(fs, "stale-assume");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->path, "tools/simdlint/effects.conf");
  EXPECT_EQ(f->line, 2u);
}

TEST(SimdlintEffects, EffectOkAbsolvesTheNextLineAndGoesStaleWhenUnused) {
  const std::string conf = "region lockstep simdts::lb::tick\n";
  // Marker on the line above the push_back absolves exactly that use.
  EXPECT_TRUE(
      effects({{"src/lb/a.cpp",
                "namespace simdts::lb {\n"
                "void stage(std::vector<int>& v) {\n"
                "  // SIMDLINT" "-EFFECT-OK(allocates) persistent scratch\n"
                "  v.push_back(1);\n"
                "}\n"
                "void tick(std::vector<int>& v) { stage(v); }\n"
                "}\n"}},
               conf)
          .empty());
  // Mutation: marker stranded two lines above — the allocation fires AND
  // the marker is reported stale.
  const auto fs =
      effects({{"src/lb/a.cpp",
                "namespace simdts::lb {\n"
                "void stage(std::vector<int>& v) {\n"
                "  // SIMDLINT" "-EFFECT-OK(allocates) stranded marker\n"
                "  int unrelated = 0;\n"
                "  v.push_back(unrelated);\n"
                "}\n"
                "void tick(std::vector<int>& v) { stage(v); }\n"
                "}\n"}},
               conf);
  EXPECT_NE(only_rule(fs, "region-allocates"), nullptr);
  const Finding* stale = only_rule(fs, "stale-effect-ok");
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->line, 3u);
}

TEST(SimdlintEffects, InlineRegionMarkersAttachAndGoStaleWhenOrphaned) {
  // A marker directly above a definition makes it a root with no conf entry.
  const auto fs = effects({{"src/lb/a.cpp",
                            "namespace simdts::lb {\n"
                            "// SIMDLINT" "-REGION(lockstep)\n"
                            "void tick(std::vector<int>& v) {\n"
                            "  v.push_back(1);\n"
                            "}\n"
                            "}\n"}},
                          "");
  EXPECT_NE(only_rule(fs, "region-allocates"), nullptr);
  // Mutation: a marker floating in the middle of a body attaches to nothing.
  const auto orphaned = effects({{"src/lb/a.cpp",
                                  "namespace simdts::lb {\n"
                                  "void tick(std::vector<int>& v) {\n"
                                  "  v.clear();\n"
                                  "  // SIMDLINT" "-REGION(lockstep)\n"
                                  "  v.clear();\n"
                                  "}\n"
                                  "}\n"}},
                                "");
  const Finding* f = only_rule(orphaned, "stale-region");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 4u);
}

TEST(SimdlintEffects, StaleConfRegionsFireOnFullRunsOnlyAndConfErrorsAlways) {
  const std::vector<std::pair<std::string, std::string>> sources = {
      {"src/lb/a.cpp",
       "namespace simdts::lb {\nvoid tick() {}\n}\n"}};
  const std::string conf =
      "# roots\nregion lockstep simdts::lb::tick\n"
      "region lockstep simdts::lb::gone\n";
  const auto fs = effects(sources, conf);
  const Finding* f = only_rule(fs, "stale-region");
  ASSERT_NE(f, nullptr);
  // Precise conf provenance: the declaration's own line and text, not the
  // file as a whole.
  EXPECT_EQ(f->path, "tools/simdlint/effects.conf");
  EXPECT_EQ(f->line, 3u);
  EXPECT_EQ(f->excerpt, "region lockstep simdts::lb::gone");
  // Subset runs (--changed-files / explicit paths) legitimately see only a
  // slice of the tree: conf-wide staleness must stay quiet there.
  EXPECT_TRUE(effects(sources, conf, /*subset=*/true).empty());
  // Malformed directives are findings in both modes, at their own line.
  const auto bad = effects(sources, "# header\nregoin lockstep x\n", true);
  const Finding* err = only_rule(bad, "effects-conf-error");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->line, 2u);
  EXPECT_EQ(err->excerpt, "regoin lockstep x");
}

TEST(SimdlintRules, EffectCatalogCoversEveryCrossTuRule) {
  const auto catalog = simdlint::effect_rule_catalog();
  std::vector<std::string> ids;
  ids.reserve(catalog.size());
  for (const auto& [id, desc] : catalog) ids.push_back(id);
  for (const char* expected :
       {"region-allocates", "region-locks", "region-io", "region-nondet",
        "region-throws", "region-recursion", "noexcept-throws", "stale-region",
        "stale-assume", "stale-effect-ok", "effects-conf-error"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }
}

// ---------------------------------------------------------------------------
// Determinism-taint dataflow (simdlint v4): partition sources must not reach
// result-bearing sinks except through a justified commutative merge.  Every
// rule gets a true positive with its full witness chain AND the negative
// that would make it cry wolf.
// ---------------------------------------------------------------------------

std::vector<Finding> taint(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const std::string& conf, bool subset = false) {
  std::vector<simdlint::SourceFile> files;
  files.reserve(sources.size());
  for (const auto& [path, code] : sources) {
    files.push_back(simdlint::SourceFile::parse(path, code));
  }
  return simdlint::find_taint_findings(
      files, simdlint::parse_effects_conf("tools/simdlint/effects.conf", conf),
      subset);
}

TEST(SimdlintTaint, SourceToSinkThreeCallsDeepAcrossTusNamesEveryHop) {
  const std::vector<std::pair<std::string, std::string>> sources = {
      {"src/lb/a.cpp",
       "namespace simdts::lb {\n"
       "unsigned worker_base() { return 3u; }\n"
       "void tally(Stats& s, unsigned off) {\n"
       "  s.nodes_expanded = off;\n"
       "}\n"
       "}\n"},
      {"src/lb/b.cpp",
       "namespace simdts::lb {\n"
       "void cycle(Stats& s) {\n"
       "  unsigned base = worker_base();\n"
       "  unsigned off = base + 1;\n"
       "  tally(s, off);\n"
       "}\n"
       "}\n"}};
  const std::string conf =
      "source simdts::lb::worker_base\nsink member nodes_expanded\n";
  const auto fs = taint(sources, conf);
  const Finding* f = only_rule(fs, "taint-partition-to-result");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->path, "src/lb/a.cpp");
  EXPECT_EQ(f->line, 4u);  // the `s.nodes_expanded = off` write
  for (const char* hop :
       {"worker_base: declared partition source",
        "cycle: call to 'worker_base' returns tainted",
        "cycle: base <- tainted", "cycle: off <- tainted",
        "tally: parameter 'off' tainted via call from cycle",
        "tally: s.nodes_expanded <- tainted", "[partition->result]"}) {
    EXPECT_NE(f->message.find(hop), std::string::npos)
        << hop << " missing from: " << f->message;
  }
  // The witness is also exported as a structured flow for SARIF codeFlows.
  ASSERT_GE(f->flow.size(), 5u);
  EXPECT_EQ(f->flow.front().path, "src/lb/a.cpp");  // source decl hop
  EXPECT_EQ(f->flow.back().path, "src/lb/a.cpp");
  EXPECT_EQ(f->flow.back().line, 4u);
  // Mutation: drop the source declaration and the flow disappears (subset
  // mode so the now-unmatched sink does not raise staleness instead).
  EXPECT_TRUE(
      taint(sources, "sink member nodes_expanded\n", /*subset=*/true).empty());
}

TEST(SimdlintTaint, PartitionedLoopBoundTaintsEveryWriteInTheBody) {
  // The motivating bug: a `+=` added inside a word-partitioned loop is
  // partition-dependent even when the written value is a constant — the
  // bound decides how many times it runs per thread.
  const std::string marked =
      "namespace simdts::lb {\n"
      "St g;\n"
      "void cycle() {\n"
      "  // SIMDLINT" "-SOURCE(partition)\n"
      "  auto body = [](unsigned wbegin,\n"
      "                 unsigned wend) {\n"
      "    for (unsigned w = wbegin; w < wend; ++w) {\n"
      "      g.nodes_expanded += 1;\n"
      "    }\n"
      "  };\n"
      "  body(0u, 4u);\n"
      "}\n"
      "}\n";
  const auto fs = taint({{"src/lb/a.cpp", marked}},
                        "sink member nodes_expanded\n");
  const Finding* f = only_rule(fs, "taint-partition-to-result");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 8u);
  EXPECT_NE(f->message.find("tainted loop bound"), std::string::npos)
      << f->message;
  // Mutation: same write under a fixed (partition-independent) bound is
  // clean — the marker still taints wbegin/wend, but nothing flows.
  const std::string fixed =
      "namespace simdts::lb {\n"
      "St g;\n"
      "void cycle() {\n"
      "  // SIMDLINT" "-SOURCE(partition)\n"
      "  auto body = [](unsigned wbegin,\n"
      "                 unsigned wend) {\n"
      "    for (unsigned w = 0; w < 4; ++w) {\n"
      "      g.nodes_expanded += 1;\n"
      "    }\n"
      "  };\n"
      "  body(0u, 4u);\n"
      "}\n"
      "}\n";
  EXPECT_TRUE(
      taint({{"src/lb/a.cpp", fixed}}, "sink member nodes_expanded\n").empty());
}

TEST(SimdlintTaint, LaneIndexedSelectionIsNotAFlow) {
  // Reading clean data through a partition-derived index is the per-lane
  // state idiom, not a flow; assigning the index itself is.
  const std::string select =
      "namespace simdts::lb {\n"
      "St g;\n"
      "void cycle() {\n"
      "  // SIMDLINT" "-SOURCE(partition)\n"
      "  auto body = [](unsigned lane,\n"
      "                 unsigned other) {\n"
      "    g.nodes_expanded = g.table[lane];\n"
      "  };\n"
      "  body(0u, 1u);\n"
      "}\n"
      "}\n";
  EXPECT_TRUE(
      taint({{"src/lb/a.cpp", select}}, "sink member nodes_expanded\n")
          .empty());
  const std::string leak =
      "namespace simdts::lb {\n"
      "St g;\n"
      "void cycle() {\n"
      "  // SIMDLINT" "-SOURCE(partition)\n"
      "  auto body = [](unsigned lane,\n"
      "                 unsigned other) {\n"
      "    g.nodes_expanded = lane;\n"
      "  };\n"
      "  body(0u, 1u);\n"
      "}\n"
      "}\n";
  EXPECT_NE(only_rule(taint({{"src/lb/a.cpp", leak}},
                            "sink member nodes_expanded\n"),
                      "taint-partition-to-result"),
            nullptr);
}

TEST(SimdlintTaint, CommutativeMergeLaundersAndOtherKindsAreUnjustified) {
  const std::string justified =
      "namespace simdts::lb {\n"
      "unsigned lane_base() { return 1u; }\n"
      "// SIMDLINT" "-MERGE(commutative)\n"
      "void fold(St& s, unsigned v) {\n"
      "  s.goals_found = v;\n"
      "}\n"
      "void cycle(St& s) {\n"
      "  unsigned v = lane_base();\n"
      "  fold(s, v);\n"
      "}\n"
      "}\n";
  const std::string conf =
      "source simdts::lb::lane_base\nsink member goals_found\n";
  // Justified: the sink write happens inside the merge — no findings at
  // all (and in particular no stale-merge: the merge laundered a flow).
  EXPECT_TRUE(taint({{"src/lb/a.cpp", justified}}, conf).empty());
  // A kind other than `commutative` is asserting something the analysis
  // cannot accept: the merge is unjustified AND the flow still fires.
  std::string ordered = justified;
  const std::string from = "MERGE(commutative)";
  ordered.replace(ordered.find(from), from.size(), "MERGE(ordered)");
  const auto fs = taint({{"src/lb/a.cpp", ordered}}, conf);
  EXPECT_NE(only_rule(fs, "merge-unjustified"), nullptr);
  EXPECT_NE(only_rule(fs, "taint-partition-to-result"), nullptr);
}

TEST(SimdlintTaint, StaleDeclarationsPointAtTheConfLine) {
  const std::vector<std::pair<std::string, std::string>> sources = {
      {"src/lb/a.cpp", "namespace simdts::lb {\nvoid tick() {}\n}\n"}};
  const std::string conf =
      "source simdts::lb::ghost\n"
      "sink member nowhere\n"
      "merge commutative simdts::lb::ghost\n";
  const auto fs = taint(sources, conf);
  const Finding* src = only_rule(fs, "stale-source");
  const Finding* snk = only_rule(fs, "stale-sink");
  const Finding* mrg = only_rule(fs, "stale-merge");
  ASSERT_NE(src, nullptr);
  ASSERT_NE(snk, nullptr);
  ASSERT_NE(mrg, nullptr);
  // Precise conf provenance: file, the declaration's own line, its text.
  EXPECT_EQ(src->path, "tools/simdlint/effects.conf");
  EXPECT_EQ(src->line, 1u);
  EXPECT_EQ(src->excerpt, "source simdts::lb::ghost");
  EXPECT_EQ(snk->line, 2u);
  EXPECT_EQ(snk->excerpt, "sink member nowhere");
  EXPECT_EQ(mrg->line, 3u);
  EXPECT_EQ(mrg->excerpt, "merge commutative simdts::lb::ghost");
  // Conf-wide staleness is a full-run property; subset runs stay quiet.
  EXPECT_TRUE(taint(sources, conf, /*subset=*/true).empty());
}

TEST(SimdlintTaint, OrphanedMarkersAreStaleEvenInSubsetRuns) {
  // A marker that covers no declaration taints nothing: intra-file
  // staleness, checked in every mode.
  const std::string orphan =
      "namespace simdts::lb {\n"
      "void tick() {\n"
      "  int x = 0;\n"
      "}\n"
      "}\n"
      "// SIMDLINT" "-SOURCE(partition)\n";
  const auto fs = taint({{"src/lb/a.cpp", orphan}}, "", /*subset=*/true);
  const Finding* f = only_rule(fs, "stale-source");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->path, "src/lb/a.cpp");
  EXPECT_EQ(f->line, 6u);
  // An unattached merge marker is stale the same way.
  const std::string merge_orphan =
      "namespace simdts::lb {\n"
      "void tick() {\n"
      "  int x = 0;\n"
      "  // SIMDLINT" "-MERGE(commutative)\n"
      "  x = 1;\n"
      "}\n"
      "}\n";
  const Finding* m = only_rule(
      taint({{"src/lb/a.cpp", merge_orphan}}, "", /*subset=*/true),
      "stale-merge");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->line, 4u);
}

TEST(SimdlintRules, TaintCatalogCoversEveryRule) {
  const auto catalog = simdlint::taint_rule_catalog();
  std::vector<std::string> ids;
  ids.reserve(catalog.size());
  for (const auto& [id, desc] : catalog) ids.push_back(id);
  for (const char* expected :
       {"taint-partition-to-result", "merge-unjustified", "stale-source",
        "stale-sink", "stale-merge"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }
}

TEST(SimdlintReport, SarifExportsTaintWitnessesAsCodeFlows) {
  const auto fs = taint(
      {{"src/lb/a.cpp",
        "namespace simdts::lb {\n"
        "unsigned worker_base() { return 3u; }\n"
        "void cycle(Stats& s) {\n"
        "  s.nodes_expanded = worker_base();\n"
        "}\n"
        "}\n"}},
      "source simdts::lb::worker_base\nsink member nodes_expanded\n");
  ASSERT_FALSE(fs.empty());
  std::ostringstream os;
  simdlint::sarif_report(os, fs, simdlint::tally(fs, 1));
  const std::string out = os.str();
  EXPECT_NE(out.find("\"codeFlows\""), std::string::npos);
  EXPECT_NE(out.find("\"threadFlows\""), std::string::npos);
  EXPECT_NE(out.find("declared partition source"), std::string::npos);
  EXPECT_NE(out.find("s.nodes_expanded <- tainted"), std::string::npos);
}

TEST(SimdlintReport, SarifReportCarriesRulesResultsAndFingerprints) {
  const auto fs = active("src/a.cpp", "int x = std::rand();\n");
  std::ostringstream os;
  simdlint::sarif_report(os, fs, simdlint::tally(fs, 1));
  const std::string out = os.str();
  EXPECT_NE(out.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(out.find("\"id\": \"no-rand\""), std::string::npos);
  EXPECT_NE(out.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(out.find("simdlintFingerprint/v1"), std::string::npos);
}

}  // namespace
