// Property tests for the packed bit-plane substrate: every packed kernel
// (census, enumerate, k-th-set selection, rotated ranking, rendezvous,
// matching, ring pairing) must agree *exactly* with the byte-plane scalar
// reference on the same occupancy pattern — including non-multiple-of-64
// machine sizes and planes with fault-killed lanes masked out.  The engine
// switched planes on the strength of this equivalence; these tests are what
// pins it.
#include "simd/bitplane.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "lb/config.hpp"
#include "lb/matching.hpp"
#include "simd/rendezvous.hpp"
#include "simd/scan.hpp"

namespace simdts::simd {
namespace {

// The machine sizes the properties sweep: word-aligned, one-off-word,
// sub-word, and the bench size.
const std::size_t kSizes[] = {1, 5, 63, 64, 65, 127, 128, 200, 1000, 1024};

/// A deterministic random byte plane with the given set-density in percent.
std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed,
                                       unsigned percent) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<unsigned> dist(0, 99);
  std::vector<std::uint8_t> v(n);
  for (auto& x : v) x = dist(rng) < percent ? 1 : 0;
  return v;
}

BitPlane pack(const std::vector<std::uint8_t>& bytes) {
  BitPlane plane(bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    plane.set(i, bytes[i] != 0);
  }
  return plane;
}

TEST(BitPlane, AssignFillAndTailInvariant) {
  for (const std::size_t n : kSizes) {
    BitPlane plane(n, true);
    EXPECT_EQ(plane.size(), n);
    EXPECT_EQ(plane.count(), n);
    // The tail of the last word must stay zero even after fill(true).
    EXPECT_EQ(plane.words().back() & ~plane.word_mask(plane.word_count() - 1),
              0u)
        << "n=" << n;
    plane.fill(false);
    EXPECT_TRUE(plane.none());
    EXPECT_EQ(plane.count(), 0u);
  }
}

TEST(BitPlane, SetResetTestRoundTrip) {
  BitPlane plane(130);
  for (const std::size_t i : {std::size_t{0}, std::size_t{63}, std::size_t{64},
                              std::size_t{127}, std::size_t{129}}) {
    EXPECT_FALSE(plane.test(i));
    plane.set(i);
    EXPECT_TRUE(plane.test(i));
    plane.set(i, false);
    EXPECT_FALSE(plane.test(i));
  }
}

TEST(BitPlane, CensusMatchesScalarReference) {
  for (const std::size_t n : kSizes) {
    for (const unsigned pct : {0u, 10u, 50u, 90u, 100u}) {
      const auto bytes = random_bytes(n, 7u * static_cast<std::uint32_t>(n),
                                      pct);
      const BitPlane plane = pack(bytes);
      EXPECT_EQ(plane.count(), count_set(bytes)) << "n=" << n;
      EXPECT_EQ(count_set(plane), count_set(bytes)) << "n=" << n;
      EXPECT_EQ(plane.none(), count_set(bytes) == 0);
    }
  }
}

TEST(BitPlane, EnumerateMatchesScalarReference) {
  // The packed overload's contract is a full exclusive sum-scan: every lane
  // gets its prefix count, set or not (the byte overload leaves unset lanes
  // untouched, so the two are compared at set lanes and the packed result
  // is additionally checked against the scan at every lane).
  for (const std::size_t n : kSizes) {
    const auto bytes = random_bytes(n, 11u * static_cast<std::uint32_t>(n),
                                    40);
    const BitPlane plane = pack(bytes);
    std::vector<std::uint32_t> want(n, 0xDEADu);
    std::vector<std::uint32_t> got(n, 0xDEADu);
    const std::uint32_t want_total = enumerate(bytes, want);
    const std::uint32_t got_total = enumerate(plane, got);
    EXPECT_EQ(got_total, want_total) << "n=" << n;
    std::uint32_t prefix = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], prefix) << "n=" << n << " i=" << i;
      if (bytes[i] != 0) {
        EXPECT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
        ++prefix;
      }
    }
  }
}

TEST(BitPlane, ForEachSetVisitsAscendingSetLanes) {
  for (const std::size_t n : kSizes) {
    const auto bytes = random_bytes(n, 13u * static_cast<std::uint32_t>(n),
                                    30);
    const BitPlane plane = pack(bytes);
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < n; ++i) {
      if (bytes[i] != 0) want.push_back(i);
    }
    std::vector<std::size_t> got;
    for_each_set(plane, [&](std::size_t i) { got.push_back(i); });
    EXPECT_EQ(got, want) << "n=" << n;
  }
}

TEST(BitPlane, NthSetSelectsKthBusyPe) {
  for (const std::size_t n : kSizes) {
    const auto bytes = random_bytes(n, 17u * static_cast<std::uint32_t>(n),
                                    35);
    const BitPlane plane = pack(bytes);
    std::vector<std::size_t> set_lanes;
    for (std::size_t i = 0; i < n; ++i) {
      if (bytes[i] != 0) set_lanes.push_back(i);
    }
    for (std::uint32_t k = 0; k < set_lanes.size(); ++k) {
      EXPECT_EQ(nth_set(plane, k), set_lanes[k]) << "n=" << n << " k=" << k;
    }
    // Exhausted selection reports size().
    EXPECT_EQ(nth_set(plane, static_cast<std::uint32_t>(set_lanes.size())), n);
    EXPECT_EQ(nth_set(plane, 0xFFFFu), n);
  }
}

TEST(BitPlane, RankedMatchesByteKernelWithAndWithoutRotation) {
  for (const std::size_t n : kSizes) {
    const auto bytes = random_bytes(n, 19u * static_cast<std::uint32_t>(n),
                                    45);
    const BitPlane plane = pack(bytes);
    std::vector<PeIndex> starts = {kNoPe, 0,
                                   static_cast<PeIndex>(n - 1),
                                   static_cast<PeIndex>(n / 2)};
    if (n > 64) starts.push_back(63);  // rotation across a word boundary
    for (const PeIndex start : starts) {
      EXPECT_EQ(ranked(plane, start), ranked(bytes, start))
          << "n=" << n << " start=" << start;
    }
  }
}

TEST(BitPlane, RendezvousMatchesByteKernel) {
  constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);
  for (const std::size_t n : kSizes) {
    const auto donors = random_bytes(n, 23u * static_cast<std::uint32_t>(n),
                                     40);
    const auto receivers = random_bytes(
        n, 29u * static_cast<std::uint32_t>(n), 40);
    const BitPlane donor_plane = pack(donors);
    const BitPlane receiver_plane = pack(receivers);
    std::vector<Pair> got;
    for (const PeIndex start :
         {kNoPe, PeIndex{0}, static_cast<PeIndex>(n / 2),
          static_cast<PeIndex>(n - 1)}) {
      for (const std::size_t limit : {std::size_t{0}, std::size_t{1},
                                      std::size_t{3}, kNoLimit}) {
        const std::vector<Pair> want =
            rendezvous(donors, receivers, start, limit);
        rendezvous_into(donor_plane, receiver_plane, start, limit, got);
        EXPECT_EQ(got, want) << "n=" << n << " start=" << start
                             << " limit=" << limit;
      }
    }
  }
}

TEST(BitPlane, MatcherBitAndBytePlanesAgreeAcrossGpPhases) {
  // Drive two Matchers — one fed byte planes, one fed packed planes — through
  // a sequence of phases with evolving occupancy.  The pair sequences and the
  // global-pointer trajectory must stay identical throughout, for both
  // schemes.
  for (const lb::MatchScheme scheme :
       {lb::MatchScheme::kGP, lb::MatchScheme::kNGP}) {
    for (const std::size_t n : {std::size_t{65}, std::size_t{200},
                                std::size_t{1024}}) {
      lb::Matcher byte_matcher(scheme);
      lb::Matcher bit_matcher(scheme);
      std::vector<Pair> want;
      std::vector<Pair> got;
      for (std::uint32_t phase = 0; phase < 12; ++phase) {
        const auto busy = random_bytes(
            n, 31u * static_cast<std::uint32_t>(n) + phase, 40);
        auto idle = random_bytes(
            n, 37u * static_cast<std::uint32_t>(n) + phase, 40);
        for (std::size_t i = 0; i < n; ++i) {
          if (busy[i] != 0) idle[i] = 0;  // a lane is never both
        }
        byte_matcher.match_into(busy, idle,
                                static_cast<std::size_t>(-1), want);
        bit_matcher.match_into(pack(busy), pack(idle),
                               static_cast<std::size_t>(-1), got);
        EXPECT_EQ(got, want) << "n=" << n << " phase=" << phase;
        EXPECT_EQ(bit_matcher.pointer(), byte_matcher.pointer())
            << "n=" << n << " phase=" << phase;
      }
    }
  }
}

TEST(BitPlane, NeighborPairsMatchByteKernel) {
  for (const std::size_t n : kSizes) {
    const auto busy = random_bytes(n, 41u * static_cast<std::uint32_t>(n), 50);
    auto idle = random_bytes(n, 43u * static_cast<std::uint32_t>(n), 50);
    for (std::size_t i = 0; i < n; ++i) {
      if (busy[i] != 0) idle[i] = 0;
    }
    const std::vector<Pair> want = lb::neighbor_pairs(busy, idle);
    std::vector<Pair> got;
    lb::neighbor_pairs_into(pack(busy), pack(idle), got);
    EXPECT_EQ(got, want) << "n=" << n;
  }
}

TEST(BitPlane, NeighborPairsCrossWordAndWrapBoundaries) {
  // Donor in bit 63 of word 0, receiver in bit 0 of word 1; and the ring wrap
  // pair (P-1 -> 0).
  const std::size_t n = 130;
  std::vector<std::uint8_t> busy(n, 0);
  std::vector<std::uint8_t> idle(n, 0);
  busy[63] = 1;
  idle[64] = 1;
  busy[n - 1] = 1;
  idle[0] = 1;
  const std::vector<Pair> want = lb::neighbor_pairs(busy, idle);
  std::vector<Pair> got;
  lb::neighbor_pairs_into(pack(busy), pack(idle), got);
  ASSERT_EQ(got, want);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (Pair{63, 64}));
  EXPECT_EQ(got[1], (Pair{129, 0}));
}

TEST(BitPlane, KernelsAgreeWithFaultKilledLanes) {
  // A dead-lane plane masks lanes out of busy/idle entirely (the engine
  // clears a killed lane's bits in every plane).  The packed kernels must
  // agree with the byte reference on such masked occupancy — including when
  // whole words die.
  const std::size_t n = 300;
  auto busy = random_bytes(n, 47, 60);
  auto idle = random_bytes(n, 53, 60);
  std::vector<std::uint8_t> dead(n, 0);
  for (std::size_t i = 64; i < 128; ++i) dead[i] = 1;  // a whole dead word
  for (std::size_t i = 0; i < n; i += 7) dead[i] = 1;  // scattered deaths
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i] != 0) {
      busy[i] = 0;
      idle[i] = 0;
    } else if (busy[i] != 0) {
      idle[i] = 0;
    }
  }
  const BitPlane busy_plane = pack(busy);
  const BitPlane idle_plane = pack(idle);
  EXPECT_EQ(busy_plane.count(), count_set(busy));
  for (const PeIndex start : {kNoPe, PeIndex{70}, PeIndex{299}}) {
    EXPECT_EQ(ranked(busy_plane, start), ranked(busy, start));
    std::vector<Pair> got;
    rendezvous_into(busy_plane, idle_plane, start,
                    static_cast<std::size_t>(-1), got);
    EXPECT_EQ(got, rendezvous(busy, idle, start));
  }
}

}  // namespace
}  // namespace simdts::simd
