#include "lb/trigger.hpp"

#include <gtest/gtest.h>

namespace simdts::lb {
namespace {

constexpr double kTExpand = 30.0;
constexpr double kTLb = 13.0;

Trigger make(TriggerKind kind, std::uint32_t p, double x = 0.75) {
  SchemeConfig cfg;
  cfg.trigger = kind;
  cfg.static_x = x;
  return Trigger(cfg, p, kTExpand, kTLb);
}

TEST(StaticTrigger, FiresAtOrBelowThreshold) {
  Trigger t = make(TriggerKind::kStatic, 100, 0.75);
  EXPECT_FALSE(t.should_trigger(76, 10));
  EXPECT_TRUE(t.should_trigger(75, 10));  // A <= xP fires (eq. 1)
  EXPECT_TRUE(t.should_trigger(1, 99));
}

TEST(StaticTrigger, IgnoresCycleHistory) {
  Trigger t = make(TriggerKind::kStatic, 100, 0.5);
  for (int i = 0; i < 10; ++i) t.note_cycle(40);
  EXPECT_FALSE(t.should_trigger(51, 0));
  EXPECT_TRUE(t.should_trigger(50, 0));
}

TEST(DpTrigger, AccumulatesWorkSurplus) {
  // P = 4: two cycles at 4 working, then the active count drops to 2.
  // After each cycle: w += working * 30, t += 30; fire when
  // w - A*t >= A*L (eq. 3).
  Trigger t = make(TriggerKind::kDP, 4);
  t.begin_search_phase();
  t.note_cycle(4);
  // w = 120, t = 30, A = 4: 120 - 120 = 0 < 52.
  EXPECT_FALSE(t.should_trigger(4, 0));
  t.note_cycle(4);
  t.note_cycle(2);
  // w = 300, t = 90, A = 2: 300 - 180 = 120 >= 26.
  EXPECT_TRUE(t.should_trigger(2, 2));
}

TEST(DpTrigger, NeverFiresWithOneActiveFromStart) {
  // The paper's pathological case: if only one processor is ever active,
  // R1 = w - A*t stays 0 and D^P never triggers (Section 6.1).
  Trigger t = make(TriggerKind::kDP, 64);
  t.begin_search_phase();
  for (int i = 0; i < 10000; ++i) {
    t.note_cycle(1);
    ASSERT_FALSE(t.should_trigger(1, 63)) << "cycle " << i;
  }
}

TEST(DpTrigger, HighLbCostDelaysTrigger) {
  SchemeConfig cfg;
  cfg.trigger = TriggerKind::kDP;
  Trigger cheap(cfg, 8, kTExpand, kTLb);
  Trigger expensive(cfg, 8, kTExpand, 16 * kTLb);
  cheap.begin_search_phase();
  expensive.begin_search_phase();
  int cheap_fired_at = -1;
  int expensive_fired_at = -1;
  // All 8 PEs work, but only 4 are still splittable: the work surplus over
  // the active line grows by 120 per cycle.
  for (int i = 0; i < 200; ++i) {
    cheap.note_cycle(8);
    expensive.note_cycle(8);
    if (cheap_fired_at < 0 && cheap.should_trigger(4, 4)) cheap_fired_at = i;
    if (expensive_fired_at < 0 && expensive.should_trigger(4, 4)) {
      expensive_fired_at = i;
    }
  }
  ASSERT_GE(cheap_fired_at, 0);
  ASSERT_GE(expensive_fired_at, 0);
  EXPECT_LT(cheap_fired_at, expensive_fired_at);
}

TEST(DkTrigger, FiresWhenIdleTimeReachesLbCost) {
  // P = 10, L = 13: w_idle accumulates (P - working) * 30 per cycle and
  // fires at w_idle >= L * P = 130 (eq. 4).
  Trigger t = make(TriggerKind::kDK, 10);
  t.begin_search_phase();
  t.note_cycle(8);  // w_idle = 60
  EXPECT_FALSE(t.should_trigger(8, 2));
  t.note_cycle(8);  // w_idle = 120
  EXPECT_FALSE(t.should_trigger(8, 2));
  t.note_cycle(8);  // w_idle = 180 >= 130
  EXPECT_TRUE(t.should_trigger(8, 2));
  EXPECT_DOUBLE_EQ(t.idle_integral(), 180.0);
}

TEST(DkTrigger, FiresEvenWithOneActiveProcessor) {
  // Unlike D^P, D^K fires quickly when nearly everyone idles.
  Trigger t = make(TriggerKind::kDK, 64);
  t.begin_search_phase();
  int fired_at = -1;
  for (int i = 0; i < 100; ++i) {
    t.note_cycle(1);
    if (t.should_trigger(1, 63)) {
      fired_at = i;
      break;
    }
  }
  EXPECT_GE(fired_at, 0);
  EXPECT_LT(fired_at, 2);  // 63 idle * 30 per cycle vs 13 * 64 = 832
}

TEST(DkTrigger, FullyBusyNeverFires) {
  Trigger t = make(TriggerKind::kDK, 16);
  t.begin_search_phase();
  for (int i = 0; i < 1000; ++i) {
    t.note_cycle(16);
    ASSERT_FALSE(t.should_trigger(16, 0));
  }
}

TEST(Trigger, BeginSearchPhaseResetsIntegrals) {
  Trigger t = make(TriggerKind::kDK, 10);
  t.begin_search_phase();
  t.note_cycle(2);
  EXPECT_GT(t.idle_integral(), 0.0);
  EXPECT_GT(t.work_integral(), 0.0);
  t.begin_search_phase();
  EXPECT_DOUBLE_EQ(t.idle_integral(), 0.0);
  EXPECT_DOUBLE_EQ(t.work_integral(), 0.0);
}

TEST(Trigger, LbCostEstimateFollowsMeasurements) {
  Trigger t = make(TriggerKind::kDK, 10);
  EXPECT_DOUBLE_EQ(t.lb_cost_estimate(), kTLb);
  t.note_lb_cost(52.0);  // e.g. a 4-round phase
  EXPECT_DOUBLE_EQ(t.lb_cost_estimate(), 52.0);
  t.note_lb_cost(0.0);  // bogus measurement ignored
  EXPECT_DOUBLE_EQ(t.lb_cost_estimate(), 52.0);
}

TEST(AnyIdleTrigger, FiresOnFirstIdleProcessor) {
  Trigger t = make(TriggerKind::kAnyIdle, 10);
  EXPECT_FALSE(t.should_trigger(10, 0));
  EXPECT_TRUE(t.should_trigger(9, 1));
}

TEST(EveryCycleTrigger, AlwaysFires) {
  Trigger t = make(TriggerKind::kEveryCycle, 10);
  EXPECT_TRUE(t.should_trigger(10, 0));
  EXPECT_TRUE(t.should_trigger(0, 10));
}

}  // namespace
}  // namespace simdts::lb
