#include "lb/engine.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "puzzle/fifteen.hpp"
#include "puzzle/instances.hpp"
#include "puzzle/workloads.hpp"
#include "queens/queens.hpp"
#include "search/serial.hpp"
#include "synthetic/tree.hpp"

namespace simdts::lb {
namespace {

using puzzle::Board;
using puzzle::FifteenPuzzle;
using search::kUnbounded;

simd::Machine make_machine(std::uint32_t p) {
  return simd::Machine(p, simd::cm2_cost_model());
}

std::vector<SchemeConfig> paper_schemes() {
  return {ngp_static(0.5), ngp_static(0.75), ngp_static(0.9),
          gp_static(0.5),  gp_static(0.75),  gp_static(0.9),
          ngp_dp(),        gp_dp(),          ngp_dk(),
          gp_dk()};
}

// ---------------------------------------------------------------------------
// Conservation: the master invariant.  For every scheme and machine size,
// the parallel search must expand exactly the nodes the serial search
// expands — transfers move nodes, never duplicate or drop them, and the
// search runs to exhaustion so there are no speedup anomalies.
// ---------------------------------------------------------------------------

using ConsParam = std::tuple<std::size_t /*scheme*/, std::uint32_t /*P*/>;

class Conservation : public ::testing::TestWithParam<ConsParam> {};

TEST_P(Conservation, PuzzleExpansionsMatchSerial) {
  const auto [scheme_idx, p] = GetParam();
  const SchemeConfig cfg = paper_schemes()[scheme_idx];

  const auto& wl = puzzle::test_workloads()[1];  // t-4k
  const FifteenPuzzle problem(wl.board());
  const auto serial = search::serial_ida(problem);

  simd::Machine machine = make_machine(p);
  Engine<FifteenPuzzle> engine(problem, machine, cfg);
  const RunStats rs = engine.run();

  EXPECT_EQ(rs.total.nodes_expanded, serial.total_expanded) << cfg.name();
  EXPECT_EQ(rs.solution_bound, serial.solution_bound) << cfg.name();
  EXPECT_EQ(rs.goals_found, serial.goals_found) << cfg.name();
  EXPECT_EQ(rs.iterations.size(), serial.iterations.size()) << cfg.name();
  for (std::size_t i = 0; i < rs.iterations.size(); ++i) {
    EXPECT_EQ(rs.iterations[i].nodes_expanded,
              serial.iterations[i].nodes_expanded)
        << cfg.name() << " iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSizes, Conservation,
    ::testing::Combine(::testing::Range<std::size_t>(0, 10),
                       ::testing::Values(1u, 2u, 16u, 64u, 256u)));

TEST(Engine, ConservationOnSyntheticTree) {
  const synthetic::Tree tree(synthetic::Params{42, 4, 0.38, 16});
  const auto serial = search::serial_dfs(tree, tree.root(), kUnbounded);
  for (const auto& cfg : paper_schemes()) {
    simd::Machine machine = make_machine(64);
    Engine<synthetic::Tree> engine(tree, machine, cfg);
    const IterationStats it = engine.run_iteration(kUnbounded);
    EXPECT_EQ(it.nodes_expanded, serial.nodes_expanded) << cfg.name();
    EXPECT_EQ(it.goals_found, 0u);
  }
}

class QueensEngine : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(QueensEngine, FindsAll92SolutionsOfEightQueens) {
  const queens::Queens q(8);
  simd::Machine machine = make_machine(GetParam());
  Engine<queens::Queens> engine(q, machine, gp_dk());
  const IterationStats it = engine.run_iteration(kUnbounded);
  EXPECT_EQ(it.goals_found, 92u);
  EXPECT_EQ(engine.goal_nodes().size(), 92u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QueensEngine,
                         ::testing::Values(1u, 4u, 32u, 512u, 4096u));

// ---------------------------------------------------------------------------
// Structural properties.
// ---------------------------------------------------------------------------

TEST(Engine, SingleProcessorDegeneratesToSerialCycleCount) {
  const auto& wl = puzzle::test_workloads()[0];  // t-60
  const FifteenPuzzle problem(wl.board());
  const auto serial = search::serial_ida(problem);
  simd::Machine machine = make_machine(1);
  Engine<FifteenPuzzle> engine(problem, machine, gp_static(0.9));
  const RunStats rs = engine.run();
  // With one PE every cycle expands exactly one node and no load balancing
  // can occur (there is never an idle PE while work remains).
  EXPECT_EQ(rs.total.expand_cycles, serial.total_expanded);
  EXPECT_EQ(rs.total.lb_phases, 0u);
  EXPECT_DOUBLE_EQ(rs.efficiency(), 1.0);
}

TEST(Engine, DeterministicAcrossRuns) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  for (const auto& cfg : {gp_static(0.8), gp_dp(), ngp_dk()}) {
    simd::Machine m1 = make_machine(128);
    simd::Machine m2 = make_machine(128);
    Engine<FifteenPuzzle> e1(problem, m1, cfg);
    Engine<FifteenPuzzle> e2(problem, m2, cfg);
    const RunStats r1 = e1.run();
    const RunStats r2 = e2.run();
    EXPECT_EQ(r1.total.expand_cycles, r2.total.expand_cycles) << cfg.name();
    EXPECT_EQ(r1.total.lb_phases, r2.total.lb_phases) << cfg.name();
    EXPECT_EQ(r1.total.transfers, r2.total.transfers) << cfg.name();
    EXPECT_DOUBLE_EQ(r1.efficiency(), r2.efficiency()) << cfg.name();
  }
}

TEST(Engine, ThreadPoolDoesNotChangeResults) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  simd::ThreadPool pool(4);

  simd::Machine serial_machine(64, simd::cm2_cost_model());
  simd::Machine pooled_machine(64, simd::cm2_cost_model(), &pool);
  Engine<FifteenPuzzle> e1(problem, serial_machine, gp_dk());
  Engine<FifteenPuzzle> e2(problem, pooled_machine, gp_dk());
  const RunStats r1 = e1.run();
  const RunStats r2 = e2.run();
  EXPECT_EQ(r1.total.nodes_expanded, r2.total.nodes_expanded);
  EXPECT_EQ(r1.total.expand_cycles, r2.total.expand_cycles);
  EXPECT_EQ(r1.total.lb_phases, r2.total.lb_phases);
  EXPECT_EQ(r1.total.transfers, r2.total.transfers);
}

TEST(Engine, MoreProcessorsThanNodesStillTerminates) {
  // A tiny tree on a big machine: most PEs never get work.
  const queens::Queens q(4);
  simd::Machine machine = make_machine(8192);
  Engine<queens::Queens> engine(q, machine, gp_static(0.9));
  const IterationStats it = engine.run_iteration(kUnbounded);
  EXPECT_EQ(it.goals_found, 2u);
  EXPECT_GT(it.expand_cycles, 0u);
}

TEST(Engine, EfficiencyWithinUnitInterval) {
  const auto& wl = puzzle::test_workloads()[2];  // t-21k
  const FifteenPuzzle problem(wl.board());
  for (const auto& cfg : paper_schemes()) {
    simd::Machine machine = make_machine(256);
    Engine<FifteenPuzzle> engine(problem, machine, cfg);
    const RunStats rs = engine.run();
    EXPECT_GT(rs.efficiency(), 0.0) << cfg.name();
    EXPECT_LE(rs.efficiency(), 1.0) << cfg.name();
  }
}

TEST(Engine, ParallelCyclesAreFewerThanSerialWithEnoughWork) {
  const auto& wl = puzzle::test_workloads()[2];
  const FifteenPuzzle problem(wl.board());
  const auto serial = search::serial_ida(problem);
  simd::Machine machine = make_machine(256);
  Engine<FifteenPuzzle> engine(problem, machine, gp_static(0.75));
  const RunStats rs = engine.run();
  // Speedup: cycles must be far below W (otherwise nothing was parallel).
  EXPECT_LT(rs.total.expand_cycles, serial.total_expanded / 8);
}

TEST(Engine, TraceRecordsEveryCycle) {
  SchemeConfig cfg = gp_dk();
  cfg.record_trace = true;
  const auto& wl = puzzle::test_workloads()[0];
  const FifteenPuzzle problem(wl.board());
  simd::Machine machine = make_machine(16);
  Engine<FifteenPuzzle> engine(problem, machine, cfg);
  const IterationStats it =
      engine.run_iteration(problem.f_value(problem.root()));
  EXPECT_EQ(it.trace.size(), it.expand_cycles);
  for (const auto& t : it.trace) {
    EXPECT_LE(t.splittable, t.working);
    EXPECT_LE(t.working, 16u);
  }
}

TEST(Engine, TransfersOnlyHappenInLbRounds) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  simd::Machine machine = make_machine(64);
  Engine<FifteenPuzzle> engine(problem, machine, gp_static(0.7));
  const RunStats rs = engine.run();
  EXPECT_GE(rs.total.transfers, rs.total.lb_rounds);
  EXPECT_GE(rs.total.lb_rounds, rs.total.lb_phases);
  // Single-transfer static scheme: rounds == phases.
  EXPECT_EQ(rs.total.lb_rounds, rs.total.lb_phases);
}

TEST(Engine, MultipleTransfersServeMoreIdlePes) {
  const auto& wl = puzzle::test_workloads()[2];
  const FifteenPuzzle problem(wl.board());

  SchemeConfig single = gp_dp();
  single.multiple_transfers = false;
  SchemeConfig multiple = gp_dp();

  simd::Machine m1 = make_machine(128);
  simd::Machine m2 = make_machine(128);
  Engine<FifteenPuzzle> e1(problem, m1, single);
  Engine<FifteenPuzzle> e2(problem, m2, multiple);
  const RunStats r1 = e1.run();
  const RunStats r2 = e2.run();
  // With multiple transfer rounds per phase, each phase does at least as
  // many rounds as phases.
  EXPECT_EQ(r1.total.lb_rounds, r1.total.lb_phases);
  EXPECT_GE(r2.total.lb_rounds, r2.total.lb_phases);
  EXPECT_GT(r2.total.transfers, 0u);
}

TEST(Engine, FinalIterationMatchesLastEntry) {
  const auto& wl = puzzle::test_workloads()[0];
  const FifteenPuzzle problem(wl.board());
  simd::Machine machine = make_machine(8);
  Engine<FifteenPuzzle> engine(problem, machine, gp_dk());
  const RunStats rs = engine.run();
  ASSERT_FALSE(rs.iterations.empty());
  EXPECT_EQ(rs.final_iteration.nodes_expanded,
            rs.iterations.back().nodes_expanded);
  EXPECT_EQ(rs.final_iteration.bound, rs.solution_bound);
}

TEST(Engine, GoalNodesCarryTheSolutionDepth) {
  const auto& wl = puzzle::test_workloads()[0];
  const FifteenPuzzle problem(wl.board());
  simd::Machine machine = make_machine(32);
  Engine<FifteenPuzzle> engine(problem, machine, gp_static(0.75));
  const RunStats rs = engine.run();
  ASSERT_EQ(rs.goals_found, wl.goals);
  for (const auto& n : engine.goal_nodes()) {
    EXPECT_EQ(n.h, 0);
    EXPECT_EQ(n.g, rs.solution_bound);
  }
}

TEST(Engine, BusyPolicyNonEmptyAblation) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  SchemeConfig cfg = gp_static(0.8);
  cfg.busy = BusyPolicy::kNonEmpty;
  simd::Machine machine = make_machine(64);
  Engine<FifteenPuzzle> engine(problem, machine, cfg);
  const RunStats rs = engine.run();
  const auto serial = search::serial_ida(problem);
  EXPECT_EQ(rs.total.nodes_expanded, serial.total_expanded);
}

TEST(Engine, SplitStrategiesAllConserveWork) {
  const auto& wl = puzzle::test_workloads()[1];
  const FifteenPuzzle problem(wl.board());
  const auto serial = search::serial_ida(problem);
  for (const auto strat :
       {search::SplitStrategy::kBottomNode, search::SplitStrategy::kHalf,
        search::SplitStrategy::kTopNode}) {
    SchemeConfig cfg = gp_static(0.75);
    cfg.split = strat;
    simd::Machine machine = make_machine(64);
    Engine<FifteenPuzzle> engine(problem, machine, cfg);
    const RunStats rs = engine.run();
    EXPECT_EQ(rs.total.nodes_expanded, serial.total_expanded)
        << to_string(strat);
  }
}

}  // namespace
}  // namespace simdts::lb
