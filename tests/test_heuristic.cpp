#include "puzzle/heuristic.hpp"

#include <gtest/gtest.h>

#include "puzzle/board.hpp"
#include "puzzle/instances.hpp"

namespace simdts::puzzle {
namespace {

TEST(Manhattan, GoalIsZero) { EXPECT_EQ(manhattan(Board::goal()), 0); }

TEST(Manhattan, SingleMoveIsOne) {
  int blank = 0;
  const Board b = *Board::goal().apply(Move::kRight, blank);
  EXPECT_EQ(manhattan(b), 1);
}

TEST(Manhattan, BlankDoesNotCount) {
  EXPECT_EQ(tile_distance(0, 15), 0);
  EXPECT_EQ(tile_distance(0, 7), 0);
}

TEST(Manhattan, TileDistanceMatchesGeometry) {
  // Tile 15's home is position 15 (bottom-right); at position 0 it is 6 away.
  EXPECT_EQ(tile_distance(15, 0), 6);
  EXPECT_EQ(tile_distance(15, 15), 0);
  EXPECT_EQ(tile_distance(1, 1), 0);
  EXPECT_EQ(tile_distance(1, 13), 3);
}

TEST(Manhattan, ParityMatchesSolutionLengthParity) {
  // Every move changes h by +-1, so h(root) and the optimal length have the
  // same parity; check against the embedded Korf optima.
  for (const auto& inst : korf_instances()) {
    const int h = manhattan(inst.board());
    EXPECT_EQ(h % 2, inst.optimal % 2) << inst.name;
    EXPECT_LE(h, inst.optimal) << inst.name;  // admissibility at the root
  }
}

class WalkSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WalkSeeds, IncrementalDeltaMatchesRecompute) {
  Board b = random_walk(GetParam(), 25);
  int blank = b.blank_position();
  int h = manhattan(b);
  for (int step = 0; step < 200; ++step) {
    const auto m = static_cast<Move>((GetParam() + static_cast<std::uint64_t>(step) * 2654435761u) % 4);
    int pos = blank;
    std::uint8_t moved = 0;
    const auto next = b.apply(m, pos, &moved);
    if (!next.has_value()) continue;
    h += manhattan_delta(moved, pos, blank);  // tile slid new-blank -> old-blank
    b = *next;
    blank = pos;
    ASSERT_EQ(h, manhattan(b)) << "seed=" << GetParam() << " step=" << step;
  }
}

TEST_P(WalkSeeds, WalkLengthBoundsManhattan) {
  for (int steps : {1, 7, 19, 44}) {
    const Board b = random_walk(GetParam(), steps);
    const int h = manhattan(b);
    EXPECT_LE(h, steps);
    EXPECT_EQ(h % 2, steps % 2);  // each move flips distance parity
  }
}

TEST_P(WalkSeeds, LinearConflictDominatesManhattan) {
  for (int steps : {5, 25, 60}) {
    const Board b = random_walk(GetParam() * 31 + 7, steps);
    EXPECT_GE(linear_conflict(b), manhattan(b));
    EXPECT_LE(linear_conflict(b), steps);  // still admissible
    EXPECT_EQ(linear_conflict(b) % 2, manhattan(b) % 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkSeeds,
                         ::testing::Values(11u, 12u, 13u, 21u, 34u, 55u, 89u));

TEST(LinearConflict, GoalIsZero) {
  EXPECT_EQ(linear_conflict(Board::goal()), 0);
}

TEST(LinearConflict, SwappedRowNeighborsAddTwo) {
  // Swap tiles 1 and 2 within goal row 0... that breaks solvability, but the
  // heuristic itself is still well-defined: reversal = one conflict.
  auto tiles = Board::goal().tiles();
  std::swap(tiles[1], tiles[2]);
  const Board b = Board::from_tiles(tiles);
  // Manhattan: both tiles one step from home = 2; conflict adds 2.
  EXPECT_EQ(manhattan(b), 2);
  EXPECT_EQ(linear_conflict(b), 4);
}

TEST(LinearConflict, ThreeWayReversalCountsMinimumRemovals) {
  // Reverse tiles 1, 2, 3 in row 0 (-> 3, 2, 1): all three pairwise
  // conflicts are resolved by removing the middle tile plus one more; the
  // admissible count is 2 removals = +4, not 3 pairs = +6.
  auto tiles = Board::goal().tiles();
  std::swap(tiles[1], tiles[3]);
  const Board b = Board::from_tiles(tiles);
  EXPECT_EQ(manhattan(b), 4);
  EXPECT_EQ(linear_conflict(b), 4 + 4);
}

TEST(LinearConflict, ColumnConflictsCount) {
  // Swap tiles 4 and 12 (both in column 0, rows 1 and 3).  Tile 8 sits
  // between them in its own goal cell, so both 12 and 4 must pass it: the
  // conflict graph is a triangle, resolved by removing two tiles (+4).
  auto tiles = Board::goal().tiles();
  std::swap(tiles[4], tiles[12]);
  const Board b = Board::from_tiles(tiles);
  EXPECT_EQ(manhattan(b), 4);
  EXPECT_EQ(linear_conflict(b), 4 + 4);

  // Swapping adjacent column tiles 4 and 8 instead leaves a single pairwise
  // conflict (+2).
  auto tiles2 = Board::goal().tiles();
  std::swap(tiles2[4], tiles2[8]);
  const Board b2 = Board::from_tiles(tiles2);
  EXPECT_EQ(manhattan(b2), 2);
  EXPECT_EQ(linear_conflict(b2), 2 + 2);
}

TEST(LinearConflict, TilesPassingThroughForeignLinesDoNotConflict) {
  // Tiles that are merely *in* a line but belong elsewhere add nothing:
  // swapping tiles 1 and 6 leaves each outside both of its current lines'
  // goal rows/columns (tile 6 at position 1 is off its goal row and column,
  // as is tile 1 at position 6).
  auto tiles = Board::goal().tiles();
  std::swap(tiles[1], tiles[6]);
  const Board b = Board::from_tiles(tiles);
  EXPECT_EQ(manhattan(b), 4);
  EXPECT_EQ(linear_conflict(b), manhattan(b));
}

TEST(Evaluate, DispatchesOnHeuristicKind) {
  const Board b = random_walk(5, 30);
  EXPECT_EQ(evaluate(b, Heuristic::kManhattan), manhattan(b));
  EXPECT_EQ(evaluate(b, Heuristic::kLinearConflict), linear_conflict(b));
}

}  // namespace
}  // namespace simdts::puzzle
