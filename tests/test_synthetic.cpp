#include "synthetic/tree.hpp"

#include <gtest/gtest.h>

#include "search/serial.hpp"
#include "synthetic/calibrate.hpp"
#include "synthetic/workloads.hpp"

namespace simdts::synthetic {
namespace {

TEST(SyntheticTree, RootIsDeterministicInSeed) {
  const Tree a(Params{7, 4, 0.3, 20});
  const Tree b(Params{7, 4, 0.3, 20});
  const Tree c(Params{8, 4, 0.3, 20});
  EXPECT_EQ(a.root(), b.root());
  EXPECT_NE(a.root().id, c.root().id);
}

TEST(SyntheticTree, ExpansionIsPure) {
  const Tree t(Params{11, 4, 0.35, 20});
  std::vector<Tree::Node> a;
  std::vector<Tree::Node> b;
  search::NextBound nb;
  t.expand(t.root(), search::kUnbounded, a, nb);
  t.expand(t.root(), search::kUnbounded, b, nb);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(nb.has_value());
}

TEST(SyntheticTree, RespectsMaxChildren) {
  const Tree t(Params{11, 3, 0.9, 20});
  std::vector<Tree::Node> out;
  search::NextBound nb;
  t.expand(t.root(), search::kUnbounded, out, nb);
  EXPECT_LE(out.size(), 3u);
}

TEST(SyntheticTree, DepthCutoffStopsGrowth) {
  const Tree t(Params{11, 4, 0.9, 2});
  Tree::Node n = t.root();
  n.depth = 2;
  std::vector<Tree::Node> out;
  search::NextBound nb;
  t.expand(n, search::kUnbounded, out, nb);
  EXPECT_TRUE(out.empty());
}

TEST(SyntheticTree, ChildrenDescendFromParentDepth) {
  const Tree t(Params{13, 4, 0.9, 30});
  std::vector<Tree::Node> out;
  search::NextBound nb;
  t.expand(t.root(), search::kUnbounded, out, nb);
  for (const auto& c : out) {
    EXPECT_EQ(c.depth, 1);
  }
}

TEST(SyntheticTree, NeverAGoal) {
  const Tree t(Params{17, 4, 0.5, 10});
  EXPECT_FALSE(t.is_goal(t.root()));
  EXPECT_EQ(t.f_value(t.root()), 0);
}

TEST(Measure, MatchesSerialDfs) {
  const Params p{21, 4, 0.36, 14};
  const Tree t(p);
  const auto serial = search::serial_dfs(t, t.root(), search::kUnbounded);
  EXPECT_EQ(measure(p), serial.nodes_expanded);
}

TEST(Measure, BudgetClipsOversizedTrees) {
  // A nearly full 4-ary tree of depth 12 has ~22M nodes; the budget must
  // stop the measurement early.
  const Params p{3, 4, 0.999, 12};
  EXPECT_EQ(measure(p, 5000), 5001u);
}

TEST(Measure, DeterministicAcrossCalls) {
  const Params p{99, 4, 0.37, 16};
  EXPECT_EQ(measure(p), measure(p));
}

TEST(Calibrate, FindsSeedNearTarget) {
  Params shape;
  shape.max_depth = 14;
  shape.fertility = 0.395;
  const Calibration c = calibrate_to(1000, shape, 1, 24);
  ASSERT_GT(c.w, 0u);
  // Within a factor of 4 of the target (heavy-tailed sizes; the pinned
  // workloads were chosen from larger scans).
  EXPECT_GT(c.w, 250u);
  EXPECT_LT(c.w, 4000u);
  // And re-measuring the calibrated params reproduces exactly.
  EXPECT_EQ(measure(c.params), c.w);
}

TEST(Workloads, PinnedSizesReproduce) {
  for (const auto& wl : test_workloads()) {
    EXPECT_EQ(measure(wl.params), wl.w) << wl.name;
  }
}

TEST(Workloads, IsoLadderIsAscending) {
  const auto ws = iso_workloads();
  for (std::size_t i = 1; i < ws.size(); ++i) {
    EXPECT_LT(ws[i - 1].w, ws[i].w);
  }
}

}  // namespace
}  // namespace simdts::synthetic
