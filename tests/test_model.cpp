#include "analysis/model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

namespace simdts::analysis {
namespace {

constexpr double kCm2Ratio = 13.0 / 30.0;

TriggerModel paper_model(double w) {
  return TriggerModel{w, 8192, kCm2Ratio, 0.7};
}

TEST(SplitLog, HalvingGivesLog2) {
  EXPECT_NEAR(split_log(1024.0, 0.5), 10.0, 1e-9);
}

TEST(SplitLog, WorseAlphaNeedsMoreTransfers) {
  EXPECT_GT(split_log(1e6, 0.1), split_log(1e6, 0.5));
}

TEST(SplitLog, RejectsBadAlpha) {
  EXPECT_THROW((void)split_log(100.0, 0.0), ConfigError);
  EXPECT_THROW((void)split_log(100.0, 1.0), ConfigError);
}

TEST(OptimalTrigger, ReproducesPaperTable2Column) {
  // Table 2's last column: analytic x_o for the four problem sizes at
  // P = 8192 on the CM-2 is 0.82, 0.89, 0.92, 0.95.
  EXPECT_NEAR(optimal_static_trigger(paper_model(941852)), 0.82, 0.015);
  EXPECT_NEAR(optimal_static_trigger(paper_model(3055171)), 0.89, 0.015);
  EXPECT_NEAR(optimal_static_trigger(paper_model(6073623)), 0.92, 0.015);
  EXPECT_NEAR(optimal_static_trigger(paper_model(16110463)), 0.95, 0.015);
}

TEST(OptimalTrigger, IncreasesWithProblemSize) {
  double prev = 0.0;
  for (const double w : {1e5, 1e6, 1e7, 1e8}) {
    const double xo = optimal_static_trigger(paper_model(w));
    EXPECT_GT(xo, prev);
    prev = xo;
  }
}

TEST(OptimalTrigger, DecreasesWithMachineSize) {
  TriggerModel m = paper_model(1e6);
  m.p = 1024;
  const double small = optimal_static_trigger(m);
  m.p = 32768;
  const double large = optimal_static_trigger(m);
  EXPECT_GT(small, large);
}

TEST(OptimalTrigger, DecreasesWithLbCost) {
  TriggerModel m = paper_model(1e6);
  const double cheap = optimal_static_trigger(m);
  m.tlb_over_ucalc = 16 * kCm2Ratio;
  EXPECT_LT(optimal_static_trigger(m), cheap);
}

TEST(OptimalTrigger, DecreasesWithWorseSplitter) {
  TriggerModel m = paper_model(1e6);
  const double good = optimal_static_trigger(m);
  m.alpha = 0.1;
  EXPECT_LT(optimal_static_trigger(m), good);
}

TEST(OptimalTrigger, AlwaysInUnitInterval) {
  for (const double w : {1e3, 1e6, 1e9}) {
    for (const std::uint32_t p : {16u, 8192u, 1u << 20}) {
      TriggerModel m{w, p, kCm2Ratio, 0.5};
      const double xo = optimal_static_trigger(m);
      EXPECT_GT(xo, 0.0);
      EXPECT_LT(xo, 1.0);
    }
  }
}

TEST(PredictedEfficiency, PeaksNearOptimalTrigger) {
  const TriggerModel m = paper_model(3055171);
  const double xo = optimal_static_trigger(m);
  const double at_opt = predicted_efficiency_gp(m, xo);
  EXPECT_GT(at_opt, predicted_efficiency_gp(m, xo - 0.15));
  EXPECT_GT(at_opt, predicted_efficiency_gp(m, std::min(0.99, xo + 0.15)));
}

TEST(PredictedEfficiency, BoundedByX) {
  const TriggerModel m = paper_model(1e7);
  for (const double x : {0.3, 0.6, 0.9}) {
    const double e = predicted_efficiency_gp(m, x);
    EXPECT_GT(e, 0.0);
    EXPECT_LE(e, x + 1e-12);
  }
}

TEST(VBounds, GpIsGeometric) {
  EXPECT_DOUBLE_EQ(v_bound_gp(0.5), 1.0);
  EXPECT_DOUBLE_EQ(v_bound_gp(0.75), 4.0);
  EXPECT_DOUBLE_EQ(v_bound_gp(0.9), 10.0);
}

TEST(VBounds, NgpCollapsesToOneAtOrBelowHalf) {
  EXPECT_DOUBLE_EQ(v_bound_ngp(0.5, 1e6), 1.0);
  EXPECT_DOUBLE_EQ(v_bound_ngp(0.3, 1e6), 1.0);
}

TEST(VBounds, NgpGrowsPolylogarithmically) {
  const double w = 1e6;  // log2 W ~ 19.9
  // x = 0.6: exponent 0.5; x = 0.9: exponent 8.
  EXPECT_NEAR(v_bound_ngp(0.6, w), std::sqrt(std::log2(w)), 1e-9);
  EXPECT_NEAR(v_bound_ngp(0.9, w), std::pow(std::log2(w), 8.0), 1e-3);
}

TEST(VBounds, GapBetweenSchemesExplodesWithX) {
  // The paper's example: raising x from 0.8 to 0.9 multiplies the nGP bound
  // by log^5 W while GP merely doubles.
  const double w = 1e6;
  const double ngp_ratio = v_bound_ngp(0.9, w) / v_bound_ngp(0.8, w);
  const double gp_ratio = v_bound_gp(0.9) / v_bound_gp(0.8);
  EXPECT_NEAR(gp_ratio, 2.0, 1e-9);
  EXPECT_NEAR(ngp_ratio, std::pow(std::log2(w), 5.0), 1.0);
}

TEST(LbPhaseBound, ScalesWithVAndW) {
  EXPECT_NEAR(lb_phase_bound(1.0, 1024.0, 0.5), 10.0, 1e-9);
  EXPECT_NEAR(lb_phase_bound(4.0, 1024.0, 0.5), 40.0, 1e-9);
}

TEST(Table6, HasAllSixRows) {
  const auto rows = table6_formulas();
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_FALSE(r.architecture.empty());
    EXPECT_FALSE(r.formula.empty());
    EXPECT_GT(r.grow(8192.0, 0.9), 0.0);
  }
}

TEST(Table6, GpScalesBetterThanNgpEverywhere) {
  const auto rows = table6_formulas();
  // Rows come in (GP, nGP) pairs per architecture; at x = 0.9 the nGP growth
  // term must dominate for large P.
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const double gp = rows[i].grow(1 << 20, 0.9);
    const double ngp = rows[i + 1].grow(1 << 20, 0.9);
    EXPECT_LT(gp, ngp) << rows[i].architecture;
  }
}

TEST(Table6, HypercubeAndMeshCostMoreThanCm2) {
  const auto rows = table6_formulas();
  const double p = 1 << 20;  // log^3 P and P^0.5 log P cross at P = 2^16
  const double cm2 = rows[0].grow(p, 0.9);
  const double hyper = rows[2].grow(p, 0.9);
  const double mesh = rows[4].grow(p, 0.9);
  EXPECT_LT(cm2, hyper);
  EXPECT_LT(hyper, mesh);
}

}  // namespace
}  // namespace simdts::analysis
