#include "analysis/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace simdts::analysis {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), ConfigError);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().add("a").add(std::uint64_t{12345});
  t.row().add("longer-name").add(std::uint64_t{1});
  const std::string s = t.to_string();
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "ragged line: '" << line << "'";
  }
}

TEST(Table, RowOverflowThrows) {
  Table t({"a", "b"});
  t.row().add(1).add(2);
  EXPECT_THROW(t.add(3), InvariantError);
}

TEST(Table, IncompleteRowDetectedOnNextRow) {
  Table t({"a", "b"});
  t.row().add(1);
  EXPECT_THROW(t.row(), InvariantError);
}

TEST(Table, DoubleFormatting) {
  Table t({"x"});
  t.row().add(0.9053, 2);
  EXPECT_EQ(t.cell(0, 0), "0.91");
  EXPECT_EQ(format_double(1.0 / 3.0, 3), "0.333");
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.row().add("x").add(std::uint64_t{7});
  t.row().add("y").add(std::uint64_t{8});
  EXPECT_EQ(t.to_csv(), "a,b\nx,7\ny,8\n");
}

TEST(Table, CellAccess) {
  Table t({"a"});
  t.row().add(42);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 1u);
  EXPECT_EQ(t.cell(0, 0), "42");
}

TEST(Table, StreamOperatorMatchesToString) {
  Table t({"a", "b"});
  t.row().add(1).add(2);
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

TEST(WriteFile, CreatesParentDirectories) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "simdts_test_write";
  std::filesystem::remove_all(dir);
  const std::filesystem::path file = dir / "nested" / "out.csv";
  ASSERT_TRUE(write_file(file.string(), "hello\n"));
  std::ifstream in(file);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hello");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace simdts::analysis
