#include "simd/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace simdts::simd {
namespace {

TEST(ThreadPool, SingleLaneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(10, 0);
  pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

class ThreadPoolLanes : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadPoolLanes, CoversRangeExactlyOnce) {
  ThreadPool pool(GetParam());
  for (std::size_t n : {1ul, 2ul, 7ul, 64ul, 1000ul, 4097ul}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST_P(ThreadPoolLanes, ChunksAreContiguousAndOrdered) {
  ThreadPool pool(GetParam());
  const std::size_t n = 1001;
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
    EXPECT_LT(b, e);
    const std::lock_guard lock(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expect = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expect);
    expect = e;
  }
  EXPECT_EQ(expect, n);
}

TEST_P(ThreadPoolLanes, SumIsDeterministic) {
  ThreadPool pool(GetParam());
  const std::size_t n = 100000;
  std::vector<std::uint64_t> partial(pool.size() + 1, 0);
  std::atomic<unsigned> next_slot{0};
  pool.parallel_for(n, [&](std::size_t b, std::size_t e) {
    std::uint64_t s = 0;
    for (std::size_t i = b; i < e; ++i) s += i;
    partial[next_slot.fetch_add(1)] = s;
  });
  const std::uint64_t total =
      std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
  EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST_P(ThreadPoolLanes, ReusableAcrossManyDispatches) {
  ThreadPool pool(GetParam());
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 100; ++round) {
    pool.parallel_for(17, [&](std::size_t b, std::size_t e) {
      sum.fetch_add(e - b, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 1700u);
}

INSTANTIATE_TEST_SUITE_P(Lanes, ThreadPoolLanes,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t b, std::size_t) {
                          if (b == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(4, [&](std::size_t b, std::size_t e) {
    ok.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, FewerItemsThanLanes) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t b, std::size_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DefaultPicksAtLeastOneLane) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace simdts::simd
