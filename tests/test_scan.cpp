#include "simd/scan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

namespace simdts::simd {
namespace {

std::vector<std::uint32_t> random_values(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::uint32_t> dist(0, 1000);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(Scan, InclusiveEmpty) {
  std::vector<std::uint32_t> in;
  std::vector<std::uint32_t> out;
  inclusive_scan<std::uint32_t>(in, out);
  EXPECT_TRUE(out.empty());
}

TEST(Scan, InclusiveSingle) {
  std::vector<std::uint32_t> in{7};
  std::vector<std::uint32_t> out(1);
  inclusive_scan<std::uint32_t>(in, out);
  EXPECT_EQ(out[0], 7u);
}

TEST(Scan, InclusiveBasic) {
  std::vector<std::uint32_t> in{1, 2, 3, 4};
  std::vector<std::uint32_t> out(4);
  inclusive_scan<std::uint32_t>(in, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 3, 6, 10}));
}

TEST(Scan, ExclusiveBasic) {
  std::vector<std::uint32_t> in{1, 2, 3, 4};
  std::vector<std::uint32_t> out(4);
  exclusive_scan<std::uint32_t>(in, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 3, 6}));
}

TEST(Scan, InclusiveAliased) {
  std::vector<std::uint32_t> v{5, 5, 5};
  inclusive_scan<std::uint32_t>(v, v);
  EXPECT_EQ(v, (std::vector<std::uint32_t>{5, 10, 15}));
}

TEST(Scan, ExclusiveAliased) {
  std::vector<std::uint32_t> v{5, 5, 5};
  exclusive_scan<std::uint32_t>(v, v);
  EXPECT_EQ(v, (std::vector<std::uint32_t>{0, 5, 10}));
}

TEST(Scan, ReduceMatchesAccumulate) {
  const auto v = random_values(1000, 1);
  EXPECT_EQ(reduce<std::uint32_t>(v),
            std::accumulate(v.begin(), v.end(), 0u));
}

TEST(Scan, InclusiveLastElementEqualsReduce) {
  const auto v = random_values(257, 2);
  std::vector<std::uint32_t> out(v.size());
  inclusive_scan<std::uint32_t>(v, out);
  EXPECT_EQ(out.back(), reduce<std::uint32_t>(v));
}

class ScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizes, ParallelMatchesSerial) {
  const std::size_t n = GetParam();
  const auto v = random_values(n, static_cast<std::uint32_t>(n));
  std::vector<std::uint32_t> serial(n);
  inclusive_scan<std::uint32_t>(v, serial);

  ThreadPool pool(4);
  std::vector<std::uint32_t> parallel(n);
  inclusive_scan<std::uint32_t>(v, parallel, pool);
  EXPECT_EQ(parallel, serial);
}

TEST_P(ScanSizes, ExclusiveConsistentWithInclusive) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  const auto v = random_values(n, static_cast<std::uint32_t>(n) + 99);
  std::vector<std::uint32_t> inc(n);
  std::vector<std::uint32_t> exc(n);
  inclusive_scan<std::uint32_t>(v, inc);
  exclusive_scan<std::uint32_t>(v, exc);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(exc[i] + v[i], inc[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(0, 1, 2, 3, 17, 256, 1023, 4096,
                                           1 << 14, (1 << 15) + 13, 100000));

TEST(Enumerate, AssignsDenseRanksToSetFlags) {
  const std::vector<std::uint8_t> flags{1, 0, 1, 1, 0, 1};
  std::vector<std::uint32_t> ranks(flags.size(), 999);
  const std::uint32_t n = enumerate(flags, ranks);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(ranks[0], 0u);
  EXPECT_EQ(ranks[2], 1u);
  EXPECT_EQ(ranks[3], 2u);
  EXPECT_EQ(ranks[5], 3u);
  // Unset positions untouched.
  EXPECT_EQ(ranks[1], 999u);
  EXPECT_EQ(ranks[4], 999u);
}

TEST(Enumerate, AllClear) {
  const std::vector<std::uint8_t> flags(16, 0);
  std::vector<std::uint32_t> ranks(flags.size());
  EXPECT_EQ(enumerate(flags, ranks), 0u);
}

TEST(Enumerate, AllSet) {
  const std::vector<std::uint8_t> flags(16, 1);
  std::vector<std::uint32_t> ranks(flags.size());
  EXPECT_EQ(enumerate(flags, ranks), 16u);
  for (std::size_t i = 0; i < flags.size(); ++i) {
    EXPECT_EQ(ranks[i], i);
  }
}

TEST(CountSet, CountsNonzero) {
  const std::vector<std::uint8_t> flags{0, 1, 2, 0, 255, 1};
  EXPECT_EQ(count_set(flags), 4u);
}


TEST(MaxScan, RunningMaximum) {
  const std::vector<std::uint32_t> in{3, 1, 4, 1, 5, 9, 2, 6};
  std::vector<std::uint32_t> out(in.size());
  max_scan<std::uint32_t>(in, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{3, 3, 4, 4, 5, 9, 9, 9}));
}

TEST(MaxScan, EmptyAndAliased) {
  std::vector<std::uint32_t> v;
  max_scan<std::uint32_t>(v, v);
  v = {2, 7, 1};
  max_scan<std::uint32_t>(v, v);
  EXPECT_EQ(v, (std::vector<std::uint32_t>{2, 7, 7}));
}

TEST(MinScan, RunningMinimum) {
  const std::vector<std::int32_t> in{5, 7, 3, 8, 2, 9};
  std::vector<std::int32_t> out(in.size());
  min_scan<std::int32_t>(in, out);
  EXPECT_EQ(out, (std::vector<std::int32_t>{5, 5, 3, 3, 2, 2}));
  // The last element is the global min — the B&B incumbent reduction.
  EXPECT_EQ(out.back(), 2);
}

TEST(SegmentedScan, RestartsAtHeads) {
  const std::vector<std::uint32_t> in{1, 1, 1, 1, 1, 1};
  const std::vector<std::uint8_t> heads{1, 0, 0, 1, 0, 0};
  std::vector<std::uint32_t> out(in.size());
  segmented_scan<std::uint32_t>(in, heads, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 2, 3, 1, 2, 3}));
}

TEST(SegmentedScan, NoHeadsEqualsPlainScan) {
  const auto v = random_values(100, 5);
  const std::vector<std::uint8_t> heads(v.size(), 0);
  std::vector<std::uint32_t> seg(v.size());
  std::vector<std::uint32_t> plain(v.size());
  segmented_scan<std::uint32_t>(v, heads, seg);
  inclusive_scan<std::uint32_t>(v, plain);
  EXPECT_EQ(seg, plain);
}

TEST(SegmentedScan, EveryPositionAHeadIsIdentity) {
  const auto v = random_values(50, 6);
  const std::vector<std::uint8_t> heads(v.size(), 1);
  std::vector<std::uint32_t> out(v.size());
  segmented_scan<std::uint32_t>(v, heads, out);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(out[i], v[i]);
}

TEST(CopyScan, BroadcastsHeadValues) {
  const std::vector<std::uint32_t> in{9, 1, 2, 7, 3, 4};
  const std::vector<std::uint8_t> heads{0, 1, 0, 1, 0, 0};
  std::vector<std::uint32_t> out(in.size());
  copy_scan<std::uint32_t>(in, heads, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{9, 1, 1, 7, 7, 7}));
}

TEST(CopyScan, NoHeadsIsIdentity) {
  const auto v = random_values(20, 7);
  const std::vector<std::uint8_t> heads(v.size(), 0);
  std::vector<std::uint32_t> out(v.size());
  copy_scan<std::uint32_t>(v, heads, out);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(out[i], v[i]);
}

}  // namespace
}  // namespace simdts::simd
