// Engine modes beyond plain exhaustive iteration: first-solution quitting
// (with its speedup anomalies) and branch and bound.
#include <gtest/gtest.h>

#include "lb/engine.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"
#include "search/serial.hpp"
#include "tsp/tsp.hpp"

namespace simdts::lb {
namespace {

using puzzle::FifteenPuzzle;

TEST(FirstSolution, StopsAtFirstGoalCycle) {
  const auto& wl = puzzle::test_workloads()[2];  // t-21k
  const FifteenPuzzle problem(wl.board());
  simd::Machine machine(64, simd::cm2_cost_model());
  Engine<FifteenPuzzle> engine(problem, machine, gp_dk());
  const IterationStats it = engine.run_first_solution(wl.solution_length);
  EXPECT_GE(it.goals_found, 1u);
  const IterationStats full =
      engine.run_iteration(wl.solution_length);
  EXPECT_LT(it.nodes_expanded, full.nodes_expanded);
  EXPECT_LT(it.expand_cycles, full.expand_cycles);
}

TEST(FirstSolution, SerialReferenceStopsAtFirstGoal) {
  const auto& wl = puzzle::test_workloads()[0];
  const FifteenPuzzle problem(wl.board());
  const auto first = search::serial_first_solution(
      problem, problem.root(), wl.solution_length);
  const auto full =
      search::serial_dfs(problem, problem.root(), wl.solution_length);
  EXPECT_EQ(first.goals_found, 1u);
  EXPECT_LE(first.nodes_expanded, full.nodes_expanded);
}

TEST(FirstSolution, NoGoalBelowBoundSearchesEverything) {
  const auto& wl = puzzle::test_workloads()[0];
  const FifteenPuzzle problem(wl.board());
  simd::Machine machine(16, simd::cm2_cost_model());
  Engine<FifteenPuzzle> engine(problem, machine, gp_static(0.75));
  const search::Bound below =
      static_cast<search::Bound>(wl.solution_length - 2);
  const IterationStats it = engine.run_first_solution(below);
  EXPECT_EQ(it.goals_found, 0u);
  const auto serial = search::serial_dfs(problem, problem.root(), below);
  EXPECT_EQ(it.nodes_expanded, serial.nodes_expanded);
}

TEST(FirstSolution, AnomalyRatioVariesWithMachineSize) {
  // Rao & Kumar: first-solution parallel search can expand more or fewer
  // nodes than P distinct serial searches would predict.  We only assert
  // the mechanism: parallel first-solution work differs from serial
  // first-solution work and is bounded by the exhaustive tree.
  const auto& wl = puzzle::test_workloads()[2];
  const FifteenPuzzle problem(wl.board());
  const auto serial = search::serial_first_solution(
      problem, problem.root(), wl.solution_length);
  const auto exhaustive =
      search::serial_dfs(problem, problem.root(), wl.solution_length);
  for (const std::uint32_t p : {16u, 256u}) {
    simd::Machine machine(p, simd::cm2_cost_model());
    Engine<FifteenPuzzle> engine(problem, machine, gp_dk());
    const IterationStats it = engine.run_first_solution(wl.solution_length);
    EXPECT_GE(it.goals_found, 1u);
    EXPECT_LE(it.nodes_expanded, exhaustive.nodes_expanded);
    EXPECT_GT(it.nodes_expanded, 0u);
  }
  EXPECT_LE(serial.nodes_expanded, exhaustive.nodes_expanded);
}

TEST(BranchAndBound, EmptyProblemBehavesSanely) {
  const tsp::Tsp t(1, 3);
  simd::Machine machine(8, simd::cm2_cost_model());
  Engine<tsp::Tsp> engine(t, machine, gp_dk());
  const auto result = engine.run_branch_and_bound();
  EXPECT_EQ(result.best, 0);
}

TEST(BranchAndBound, TightensAcrossCycles) {
  const tsp::Tsp t(10, 21);
  simd::Machine machine(64, simd::cm2_cost_model());
  Engine<tsp::Tsp> engine(t, machine, gp_dk());
  const auto bnb = engine.run_branch_and_bound();
  EXPECT_EQ(bnb.best, t.brute_force_optimal());

  // Branch and bound beats the same engine running exhaustively unbounded.
  const IterationStats exhaustive = engine.run_iteration(search::kUnbounded);
  EXPECT_LT(bnb.stats.nodes_expanded, exhaustive.nodes_expanded);
}

TEST(BranchAndBound, RespectsInitialBound) {
  const tsp::Tsp t(9, 33);
  const auto opt = t.brute_force_optimal();
  simd::Machine machine(32, simd::cm2_cost_model());
  Engine<tsp::Tsp> engine(t, machine, gp_static(0.8));
  EXPECT_EQ(engine.run_branch_and_bound(opt).best, opt);
  EXPECT_EQ(engine.run_branch_and_bound(opt - 1).best, search::kUnbounded);
}

}  // namespace
}  // namespace simdts::lb
