// Cross-module integration tests: the paper's qualitative claims, verified
// end-to-end on mid-size instances at a realistic (scaled-down) machine size.
#include <gtest/gtest.h>

#include "analysis/model.hpp"
#include "lb/engine.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"
#include "search/serial.hpp"
#include "simd/cost_model.hpp"

namespace simdts {
namespace {

using lb::Engine;
using lb::RunStats;
using lb::SchemeConfig;
using puzzle::FifteenPuzzle;

RunStats run_scheme(const FifteenPuzzle& problem, std::uint32_t p,
                    const SchemeConfig& cfg,
                    simd::CostModel cost = simd::cm2_cost_model()) {
  simd::Machine machine(p, cost);
  Engine<FifteenPuzzle> engine(problem, machine, cfg);
  return engine.run();
}

constexpr std::uint32_t kP = 256;

const FifteenPuzzle& mid_problem() {
  static const FifteenPuzzle problem(puzzle::test_workloads()[4].board());
  return problem;  // t-326k
}

TEST(Integration, GpNeverDoesMoreLbPhasesThanNgpAtHighX) {
  // Section 4: GP's V(P) bound beats nGP's, and the gap opens as x -> 1.
  for (const double x : {0.8, 0.9}) {
    const RunStats gp = run_scheme(mid_problem(), kP, lb::gp_static(x));
    const RunStats ngp = run_scheme(mid_problem(), kP, lb::ngp_static(x));
    EXPECT_LE(gp.total.lb_phases, ngp.total.lb_phases) << "x=" << x;
    EXPECT_GE(gp.efficiency(), ngp.efficiency() - 0.02) << "x=" << x;
  }
}

TEST(Integration, LbPhaseGapGrowsWithX) {
  // Figure 3: N_lb(nGP) - N_lb(GP) increases with the static threshold.
  std::vector<std::int64_t> gaps;
  for (const double x : {0.6, 0.75, 0.9}) {
    const RunStats gp = run_scheme(mid_problem(), kP, lb::gp_static(x));
    const RunStats ngp = run_scheme(mid_problem(), kP, lb::ngp_static(x));
    gaps.push_back(static_cast<std::int64_t>(ngp.total.lb_phases) -
                   static_cast<std::int64_t>(gp.total.lb_phases));
  }
  EXPECT_LE(gaps[0], gaps[1]);
  EXPECT_LT(gaps[1], gaps[2]);
}

TEST(Integration, SchemesAgreeAtOrBelowHalfThreshold) {
  // "When x <= 0.5 both schemes are similar": with half the machine idle
  // before a phase fires, (almost) every busy PE donates in it, so GP's
  // rotation barely matters.  The runs are not bit-identical — who receives
  // which stack changes the future census — but phase counts and efficiency
  // must track closely, unlike the high-x regime of LbPhaseGapGrowsWithX.
  const RunStats gp = run_scheme(mid_problem(), kP, lb::gp_static(0.5));
  const RunStats ngp = run_scheme(mid_problem(), kP, lb::ngp_static(0.5));
  const double phase_ratio = static_cast<double>(gp.total.lb_phases) /
                             static_cast<double>(ngp.total.lb_phases);
  EXPECT_GT(phase_ratio, 0.8);
  EXPECT_LT(phase_ratio, 1.25);
  EXPECT_NEAR(gp.efficiency(), ngp.efficiency(), 0.03);
}

TEST(Integration, EfficiencyRisesWithWAtFixedP) {
  // The scalability premise: larger problems run more efficiently on the
  // same machine.
  const FifteenPuzzle small(puzzle::test_workloads()[2].board());   // ~21k
  const FifteenPuzzle large(puzzle::test_workloads()[4].board());   // ~326k
  const RunStats rs_small = run_scheme(small, kP, lb::gp_static(0.75));
  const RunStats rs_large = run_scheme(large, kP, lb::gp_static(0.75));
  EXPECT_GT(rs_large.efficiency(), rs_small.efficiency());
}

TEST(Integration, EfficiencyFallsWithPAtFixedW) {
  const RunStats at64 = run_scheme(mid_problem(), 64, lb::gp_static(0.75));
  const RunStats at1024 = run_scheme(mid_problem(), 1024, lb::gp_static(0.75));
  EXPECT_GT(at64.efficiency(), at1024.efficiency());
}

TEST(Integration, AnalyticOptimalTriggerIsNearEmpiricalOptimum) {
  // Table 3's claim: eq. 18 lands near the measured best static threshold.
  const auto& wl = puzzle::test_workloads()[4];
  const analysis::TriggerModel model{
      static_cast<double>(wl.serial_total), kP, 13.0 / 30.0, 0.7};
  const double xo = analysis::optimal_static_trigger(model);

  double best_x = 0.0;
  double best_e = 0.0;
  for (double x = 0.50; x <= 0.96; x += 0.05) {
    const RunStats rs = run_scheme(mid_problem(), kP, lb::gp_static(x));
    if (rs.efficiency() > best_e) {
      best_e = rs.efficiency();
      best_x = x;
    }
  }
  EXPECT_NEAR(best_x, xo, 0.11)
      << "analytic trigger " << xo << " vs empirical best " << best_x;
  // And running *at* the analytic trigger is within a whisker of the best.
  const RunStats at_xo = run_scheme(mid_problem(), kP,
                                    lb::gp_static(std::min(xo, 0.97)));
  EXPECT_GT(at_xo.efficiency(), 0.9 * best_e);
}

TEST(Integration, DkOverheadBoundedVsOptimalStatic) {
  // Section 6.2: T_idle + T_lb of D^K is at most twice the optimal static
  // scheme's (we allow a little slack for the discrete simulation).
  const auto& wl = puzzle::test_workloads()[4];
  const analysis::TriggerModel model{
      static_cast<double>(wl.serial_total), kP, 13.0 / 30.0, 0.7};
  const double xo = analysis::optimal_static_trigger(model);
  const RunStats sxo = run_scheme(mid_problem(), kP,
                                  lb::gp_static(std::min(xo, 0.97)));
  const RunStats dk = run_scheme(mid_problem(), kP, lb::gp_dk());

  const double overhead_sxo =
      sxo.total.clock.idle_time + sxo.total.clock.lb_time;
  const double overhead_dk = dk.total.clock.idle_time + dk.total.clock.lb_time;
  EXPECT_LT(overhead_dk, 2.2 * overhead_sxo);
}

TEST(Integration, DkBeatsDpWhenLbIsExpensive) {
  // Table 5: at 12-16x load-balancing cost, D^K clearly outperforms D^P.
  const simd::CostModel expensive = simd::fast_cpu_cost_model(16.0);
  const RunStats dp = run_scheme(mid_problem(), kP, lb::gp_dp(), expensive);
  const RunStats dk = run_scheme(mid_problem(), kP, lb::gp_dk(), expensive);
  EXPECT_GT(dk.efficiency(), dp.efficiency());
}

TEST(Integration, DynamicSchemesCompetitiveWithOptimalStaticAtCm2Costs) {
  // Table 4 vs Table 2: D^P and D^K match the optimal static trigger when
  // load balancing is cheap.
  double best_static = 0.0;
  for (double x = 0.6; x <= 0.95; x += 0.05) {
    best_static = std::max(
        best_static, run_scheme(mid_problem(), kP, lb::gp_static(x))
                         .efficiency());
  }
  const double dp = run_scheme(mid_problem(), kP, lb::gp_dp()).efficiency();
  const double dk = run_scheme(mid_problem(), kP, lb::gp_dk()).efficiency();
  EXPECT_GT(dp, 0.85 * best_static);
  EXPECT_GT(dk, 0.85 * best_static);
}

TEST(Integration, HigherLbCostLowersEfficiency) {
  const RunStats cheap = run_scheme(mid_problem(), kP, lb::gp_dk());
  const RunStats costly = run_scheme(mid_problem(), kP, lb::gp_dk(),
                                     simd::fast_cpu_cost_model(16.0));
  EXPECT_GT(cheap.efficiency(), costly.efficiency());
}

TEST(Integration, BottomSplitBeatsTopSplit) {
  // The alpha-splitting assumption in practice: donating the shallowest
  // node (large subtree) needs far fewer load-balancing phases than
  // donating the deepest (tiny subtree).
  SchemeConfig bottom = lb::gp_static(0.75);
  SchemeConfig top = bottom;
  top.split = search::SplitStrategy::kTopNode;
  const RunStats b = run_scheme(mid_problem(), kP, bottom);
  const RunStats t = run_scheme(mid_problem(), kP, top);
  EXPECT_LT(b.total.lb_phases, t.total.lb_phases);
  EXPECT_GT(b.efficiency(), t.efficiency());
}

TEST(Integration, MeshCostlierThanHypercubeCostlierThanCm2) {
  // Table 6 directionally, measured: topology-scaled lb costs order the
  // achieved efficiencies on a machine larger than the normalization size.
  simd::CostModel cm2 = simd::cm2_cost_model();
  simd::CostModel hyper = simd::hypercube_cost_model();
  simd::CostModel mesh = simd::mesh_cost_model();
  // At P = 256 << 8192 the normalized topology factors are *below* one for
  // mesh... so compare by forcing the normalization at this size instead.
  hyper.t_lb = 13.0 * 4.0;   // pretend log^2 scaling already applied
  mesh.t_lb = 13.0 * 8.0;
  hyper.topology = simd::Topology::kCm2Constant;
  mesh.topology = simd::Topology::kCm2Constant;
  const double e_cm2 = run_scheme(mid_problem(), kP, lb::gp_dk(), cm2)
                           .efficiency();
  const double e_hyper = run_scheme(mid_problem(), kP, lb::gp_dk(), hyper)
                             .efficiency();
  const double e_mesh = run_scheme(mid_problem(), kP, lb::gp_dk(), mesh)
                            .efficiency();
  EXPECT_GT(e_cm2, e_hyper);
  EXPECT_GT(e_hyper, e_mesh);
}

}  // namespace
}  // namespace simdts
