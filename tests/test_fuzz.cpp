// Randomized property sweep: arbitrary scheme configurations on arbitrary
// small trees must always conserve work, terminate, and keep the metric
// identities.  The "random" draws are deterministic (seed-indexed), so a
// failure reproduces exactly.
#include <gtest/gtest.h>

#include "lb/engine.hpp"
#include "mimd/engine.hpp"
#include "search/serial.hpp"
#include "simd/cost_model.hpp"
#include "synthetic/tree.hpp"

namespace simdts {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

lb::SchemeConfig random_config(std::uint64_t seed) {
  lb::SchemeConfig cfg;
  const std::uint64_t h = mix(seed);
  cfg.match = static_cast<lb::MatchScheme>(h % 3);
  cfg.trigger = static_cast<lb::TriggerKind>((h >> 8) % 5);
  cfg.static_x = 0.3 + 0.65 * static_cast<double>((h >> 16) & 0xFF) / 255.0;
  cfg.multiple_transfers = ((h >> 24) & 1) != 0;
  cfg.max_pairs_per_round = ((h >> 25) & 3) == 0 ? 1 : 0;
  cfg.transfer = ((h >> 27) & 3) == 0
                     ? lb::TransferPolicy::kGiveOneNodeEach
                     : lb::TransferPolicy::kSplit;
  cfg.split = static_cast<search::SplitStrategy>((h >> 29) % 3);
  cfg.busy = ((h >> 31) & 1) != 0 ? lb::BusyPolicy::kNonEmpty
                                  : lb::BusyPolicy::kSplittable;
  cfg.record_trace = ((h >> 32) & 1) != 0;
  return cfg;
}

synthetic::Params random_tree(std::uint64_t seed) {
  const std::uint64_t h = mix(seed ^ 0xABCDEF);
  synthetic::Params params;
  params.seed = h;
  params.max_children = 2 + (h >> 8) % 3;           // 2..4
  params.fertility = 0.30 + 0.25 * static_cast<double>((h >> 16) & 0xFF) / 255.0;
  params.max_depth = static_cast<std::uint16_t>(8 + (h >> 24) % 10);
  return params;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, EngineConservesAndTerminates) {
  const std::uint64_t seed = GetParam();
  const synthetic::Params tree_params = random_tree(seed);
  const synthetic::Tree tree(tree_params);
  const auto serial =
      search::serial_dfs(tree, tree.root(), search::kUnbounded);

  for (int variant = 0; variant < 4; ++variant) {
    const lb::SchemeConfig cfg = random_config(seed * 7 + variant);
    const std::uint32_t p = 1u << (mix(seed + variant) % 9);  // 1..256
    simd::Machine machine(p, simd::cm2_cost_model());
    lb::Engine<synthetic::Tree> engine(tree, machine, cfg);
    const lb::IterationStats it = engine.run_iteration(search::kUnbounded);

    ASSERT_EQ(it.nodes_expanded, serial.nodes_expanded)
        << "seed=" << seed << " cfg=" << cfg.name() << " P=" << p;
    EXPECT_GE(it.lb_rounds, it.lb_phases);
    EXPECT_GE(it.transfers, it.lb_rounds > 0 ? 1u : 0u);
    EXPECT_GT(it.efficiency(), 0.0);
    EXPECT_LE(it.efficiency(), 1.0);
    if (cfg.record_trace) {
      EXPECT_EQ(it.trace.size(), it.expand_cycles);
    }
    // Accounting identity: T_calc + T_idle = P * cycles * t_expand.
    EXPECT_DOUBLE_EQ(
        it.clock.calc_time + it.clock.idle_time,
        static_cast<double>(p) * static_cast<double>(it.expand_cycles) *
            machine.cost().t_expand);
  }
}

TEST_P(FuzzSweep, MimdConservesAndTerminates) {
  const std::uint64_t seed = GetParam();
  const synthetic::Tree tree(random_tree(seed));
  const auto serial =
      search::serial_dfs(tree, tree.root(), search::kUnbounded);

  const std::uint64_t h = mix(seed ^ 0x51EA1);
  mimd::MimdConfig cfg;
  cfg.policy = static_cast<mimd::StealPolicy>(h % 3);
  cfg.latency = 1 + (h >> 8) % 6;
  cfg.seed = h;
  const std::uint32_t p = 1u << ((h >> 16) % 8);  // 1..128
  mimd::MimdEngine<synthetic::Tree> engine(tree, p, cfg);
  const mimd::MimdStats stats = engine.run_iteration(search::kUnbounded);
  ASSERT_EQ(stats.nodes_expanded, serial.nodes_expanded)
      << "seed=" << seed << " policy=" << mimd::to_string(cfg.policy)
      << " P=" << p << " lat=" << cfg.latency;
  EXPECT_GE(stats.steps, serial.nodes_expanded / p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace simdts
