// SIMD batch-expansion kernels (compiled only under SIMDTS_VECTOR_BACKEND).
//
// Both kernels follow the same two-phase shape: a *candidate phase* that is
// pure branch-free lane arithmetic over the SoA pools — every potential
// child of every batched node is computed unconditionally into slot-major
// candidate arrays (`cand[slot][lane]`), exactly like the scalar domains'
// predicated staging writes, just transposed — and a scalar *emission phase*
// that walks the candidates per node in slot order and advances a write
// cursor by the existence predicate.  The candidate phase carries all the
// work (hashing, board arithmetic, heuristic deltas, bound tests) and
// vectorizes cleanly because no lane ever branches; the emission phase is
// the same predicated-cursor copy the scalar expand() already does.
//
// Bit-exactness with the scalar reference:
//  - synthetic::Tree's only floating-point step, `normalized(h) < p`, is
//    replaced by the integer compare `(h >> 11) < T` with
//    T = min(ceil(p * 2^53), 2^53).  The two are equivalent: normalized(h)
//    = (h >> 11) * 2^-53, and scaling both sides of the compare by the
//    power of two 2^53 is exact in double precision, (h >> 11) <= 2^53 - 1
//    is exactly representable, and t < x over the reals iff t < ceil(x) for
//    integer t.  The clamp to 2^53 only widens the always-true region
//    (t never reaches 2^53) and keeps T in signed-positive range for the
//    AVX2 compare (which is signed-only).
//  - The 15-puzzle kernel recomputes tile distances from the coordinate
//    formula |row(pos) - row(t)| + |col(pos) - col(t)|, which equals the
//    scalar path's table lookup for every real tile (the goal cell of tile
//    t is cell t; the moved tile is never the blank on a legal move).
//  - NextBound is a pure min, so observing the per-batch minimum pruned f
//    once equals observing every pruned f individually.
//
// The oracle gate in tests/test_vector_backend.cpp checks all of this end
// to end against the scalar engine on the fig4a grid.
#ifdef SIMDTS_VECTOR_BACKEND

#include "vec/expand.hpp"

#include <cmath>
#include <cstdlib>

#include "vec/soa.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace simdts::vec {

namespace {

/// Child-slot cap of the specialized tree kernel; trees bushier than this
/// (none of the calibrated workloads come close) take the scalar fallback.
constexpr std::uint32_t kMaxTreeSlots = 8;

/// Salt base of synthetic::Tree's child hash (tree.hpp uses
/// hash2(id, 0x4348494C44 + slot)).
constexpr std::uint64_t kChildSalt = 0x4348494C44ULL;

#if defined(__AVX2__)

/// 64x64->64 multiply for 4 lanes: AVX2 has no vpmullq (that is AVX-512DQ),
/// so synthesize it from 32x32->64 partial products.
inline __m256i mul64(__m256i a, __m256i b) {
  const __m256i ll = _mm256_mul_epu32(a, b);
  const __m256i lh = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  const __m256i hl = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i cross = _mm256_add_epi64(lh, hl);
  return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

/// 4-lane Tree::hash2(a[i], b) for a broadcast second argument.
inline __m256i hash2x4(__m256i a, std::uint64_t b) {
  __m256i x = mul64(
      a, _mm256_set1_epi64x(static_cast<long long>(0x9E3779B97F4A7C15ULL)));
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(b + 0x2545F4914F6CDD1DULL)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
  x = mul64(x, _mm256_set1_epi64x(static_cast<long long>(0xBF58476D1CE4E5B9ULL)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
  x = mul64(x, _mm256_set1_epi64x(static_cast<long long>(0x94D049BB133111EBULL)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

#endif  // __AVX2__

/// |x - y| for u64 lanes via the sign-propagation trick — pure bit ops, no
/// compare/branch, so the vectorizer never bails on it.
inline std::uint64_t absdiff(std::uint64_t x, std::uint64_t y) {
  const std::uint64_t d = x - y;
  const std::uint64_t m = std::uint64_t{0} - (d >> 63);  // 0 or all-ones
  return (d ^ m) - m;
}

/// Candidate phase for one 15-puzzle move direction, all lanes at once.
/// kMove follows puzzle::Move: 0 up, 1 down, 2 left, 3 right (the blank
/// moves).  Illegal lanes compute a self-move (shift amounts stay in range,
/// no UB) whose candidate is discarded by take = 0.
///
/// Every value in the loop is u64 — legality masks, coordinates, f-values —
/// because GCC's vectorizer rejects loops mixing the 64-bit board words
/// with narrower lanes ("no vectype"), which silently costs the whole
/// kernel.  All-u64, the loop compiles to 4-wide AVX2 (variable nibble
/// shifts are vpsrlvq/vpsllvq).  Selects are explicit 0/1-mask arithmetic
/// (never multiplies: AVX2 has no vpmullq).  All quantities are small and
/// non-negative (g, h < 255; hh >= 0 since h includes the moved tile's
/// d_from), so u64 and i32 arithmetic agree exactly.
template <int kMove>
void fifteen_candidates(const FifteenBatchSoA& s, std::uint32_t padded,
                        search::Bound bound, std::uint64_t* cand_board,
                        std::uint64_t* cand_blank, std::uint64_t* cand_h,
                        std::uint64_t* take, std::uint64_t* pruned_min) {
  const auto bound64 = static_cast<std::uint64_t>(bound);
  constexpr auto kUnb64 = static_cast<std::uint64_t>(search::kUnbounded);
#pragma omp simd
  for (std::uint32_t j = 0; j < padded; ++j) {
    const std::uint64_t b = s.blank[j];
    const std::uint64_t board = s.board[j];
    std::uint64_t legal;  // 0 or 1
    std::uint64_t tsafe;  // legal ? move target : b (self-move)
    if constexpr (kMove == 0) {          // up: row > 0
      legal = static_cast<std::uint64_t>(b >= puzzle::kSide);
      tsafe = b - (legal << 2);
    } else if constexpr (kMove == 1) {   // down: row < 3
      legal = static_cast<std::uint64_t>(b < 3 * puzzle::kSide);
      tsafe = b + (legal << 2);
    } else if constexpr (kMove == 2) {   // left: col > 0
      legal = static_cast<std::uint64_t>((b & 3) != 0);
      tsafe = b - legal;
    } else {                             // right: col < 3
      legal = static_cast<std::uint64_t>((b & 3) != 3);
      tsafe = b + legal;
    }
    const std::uint64_t from_sh = tsafe << 2;
    const std::uint64_t tile = (board >> from_sh) & 0xF;
    // Clear the source nibble by XOR-ing the tile back out (the blank's
    // destination nibble is already 0): `board & ~(0xF << sh)` computes the
    // same value, but GCC will not vectorize a constant shifted by a
    // variable amount (`0xFULL << sh` reports "no vectype"), while
    // variable << variable lowers to vpsllvq.
    const std::uint64_t nb = (board ^ (tile << from_sh)) | (tile << (b << 2));
    // Manhattan delta of the slid tile: goal cell of tile t is cell t.
    const std::uint64_t trow = tile >> 2;
    const std::uint64_t tcol = tile & 3;
    const std::uint64_t d_from =
        absdiff(tsafe >> 2, trow) + absdiff(tsafe & 3, tcol);
    const std::uint64_t d_to = absdiff(b >> 2, trow) + absdiff(b & 3, tcol);
    const std::uint64_t hh = s.h[j] + d_to - d_from;
    const std::uint64_t f = s.g[j] + 1 + hh;
    const std::uint64_t ok =
        legal & static_cast<std::uint64_t>(s.skip[j] != kMove);
    const std::uint64_t within = static_cast<std::uint64_t>(f <= bound64);
    take[j] = ok & within;
    // Pruned f (mask select): candidates cut by the bound feed NextBound.
    const std::uint64_t pmask = std::uint64_t{0} - (ok & (within ^ 1));
    const std::uint64_t pf = (f & pmask) | (kUnb64 & ~pmask);
    const std::uint64_t pm = pruned_min[j];
    const std::uint64_t lmask =
        std::uint64_t{0} - static_cast<std::uint64_t>(pf < pm);
    pruned_min[j] = (pf & lmask) | (pm & ~lmask);
    cand_board[j] = nb;
    cand_blank[j] = tsafe;
    cand_h[j] = hh;
  }
}

}  // namespace

// SIMDLINT-REGION(lockstep)
void expand_batch_tree(const synthetic::Tree& tree,
                       const synthetic::Tree::Node* nodes, std::uint32_t count,
                       search::Bound bound,
                       std::vector<synthetic::Tree::Node>& out,
                       std::uint32_t* child_counts, search::NextBound& next) {
  using Node = synthetic::Tree::Node;
  const synthetic::Params& prm = tree.params();
  if (count == 0) return;
  if (prm.max_children > kMaxTreeSlots) {
    // SIMDLINT-EFFECT-OK(allocates) scalar fallback stages into the same
    search::expand_batch_fallback(tree, nodes, count, bound, out, child_counts,
                                  next);  // persistent-capacity buffer.
    return;
  }

  TreeBatchSoA soa;
  soa.load(nodes, count);
  const std::uint32_t padded = padded_count(count);

  // Per-lane existence thresholds: child slot i of lane j exists iff
  // (hash >> 11) < thresh[j].  Leaf lanes (depth >= max_depth) get 0, which
  // matches the scalar early return.
  alignas(32) std::uint64_t thresh[kBatchLanes];
  for (std::uint32_t j = 0; j < padded; ++j) {
    const double p =
        prm.fertility *
        (0.5 + static_cast<double>(soa.climate[j]) * 0x1.0p-16);
    const double x = std::ceil(p * 0x1.0p53);
    std::uint64_t t = 0;
    if (soa.depth[j] < prm.max_depth && x > 0.0) {
      t = x >= 0x1.0p53 ? (std::uint64_t{1} << 53)
                        : static_cast<std::uint64_t>(x);
    }
    thresh[j] = t;
  }

  // Candidate phase: slot-major hash, existence, and climate-drift arrays.
  alignas(32) std::uint64_t cand_hash[kMaxTreeSlots][kBatchLanes];
  alignas(32) std::uint16_t cand_climate[kMaxTreeSlots][kBatchLanes];
  alignas(32) std::uint8_t exists[kMaxTreeSlots][kBatchLanes];
  for (std::uint32_t i = 0; i < prm.max_children; ++i) {
    const std::uint64_t salt = kChildSalt + i;
#if defined(__AVX2__)
    for (std::uint32_t j = 0; j < padded; j += 4) {
      const __m256i id = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(&soa.id[j]));
      _mm256_store_si256(reinterpret_cast<__m256i*>(&cand_hash[i][j]),
                         hash2x4(id, salt));
    }
#else
#pragma omp simd
    for (std::uint32_t j = 0; j < padded; ++j) {
      cand_hash[i][j] = synthetic::Tree::hash2(soa.id[j], salt);
    }
#endif
#pragma omp simd
    for (std::uint32_t j = 0; j < padded; ++j) {
      const std::uint64_t h = cand_hash[i][j];
      exists[i][j] = static_cast<std::uint8_t>((h >> 11) < thresh[j]);
      // Inline drift_climate (tree.hpp): a clamped random-walk step.
      const auto delta =
          static_cast<std::int32_t>((h >> 40) % 8192) - 4096;
      std::int32_t c = static_cast<std::int32_t>(soa.climate[j]) + delta;
      c = c < 0 ? 0 : c;
      c = c > 0xFFFF ? 0xFFFF : c;
      cand_climate[i][j] = static_cast<std::uint16_t>(c);
    }
  }

  // Emission: per node in batch order, per slot in slot order, cursor
  // advanced by the existence predicate — the scalar staging loop exactly.
  const std::size_t base = out.size();
  // SIMDLINT-EFFECT-OK(allocates) `out` is the caller's persistent-capacity
  out.resize(base + static_cast<std::size_t>(count) * prm.max_children);
  Node* const dst = out.data() + base;  // staging buffer; growth amortizes.
  std::size_t k = 0;
  for (std::uint32_t j = 0; j < count; ++j) {
    const std::size_t start = k;
    const auto depth = static_cast<std::uint16_t>(soa.depth[j] + 1);
    for (std::uint32_t i = 0; i < prm.max_children; ++i) {
      dst[k] = Node{cand_hash[i][j], depth, cand_climate[i][j]};
      k += exists[i][j];
    }
    child_counts[j] = static_cast<std::uint32_t>(k - start);
  }
  // SIMDLINT-EFFECT-OK(allocates) shrinking resize: capacity is retained
  out.resize(base + k);
  // Exhaustive domain: the bound is ignored and next never observed, as in
  // the scalar expand().
  static_cast<void>(next);
}

// SIMDLINT-REGION(lockstep)
void expand_batch_fifteen(const puzzle::FifteenPuzzle& p,
                          const puzzle::FifteenPuzzle::Node* nodes,
                          std::uint32_t count, search::Bound bound,
                          std::vector<puzzle::FifteenPuzzle::Node>& out,
                          std::uint32_t* child_counts,
                          search::NextBound& next) {
  using Node = puzzle::FifteenPuzzle::Node;
  if (count == 0) return;
  if (p.heuristic() != puzzle::Heuristic::kManhattan) {
    // Linear conflict re-evaluates whole boards; keep the scalar reference.
    // SIMDLINT-EFFECT-OK(allocates) scalar fallback stages into the same
    search::expand_batch_fallback(p, nodes, count, bound, out, child_counts,
                                  next);  // persistent-capacity buffer.
    return;
  }

  FifteenBatchSoA soa;
  soa.load(nodes, count);
  const std::uint32_t padded = padded_count(count);

  alignas(32) std::uint64_t cand_board[4][kBatchLanes];
  alignas(32) std::uint64_t cand_blank[4][kBatchLanes];
  alignas(32) std::uint64_t cand_h[4][kBatchLanes];
  alignas(32) std::uint64_t take[4][kBatchLanes];
  alignas(32) std::uint64_t pruned_min[kBatchLanes];
  for (std::uint32_t j = 0; j < padded; ++j) {
    pruned_min[j] = static_cast<std::uint64_t>(search::kUnbounded);
  }

  fifteen_candidates<0>(soa, padded, bound, cand_board[0], cand_blank[0],
                        cand_h[0], take[0], pruned_min);
  fifteen_candidates<1>(soa, padded, bound, cand_board[1], cand_blank[1],
                        cand_h[1], take[1], pruned_min);
  fifteen_candidates<2>(soa, padded, bound, cand_board[2], cand_blank[2],
                        cand_h[2], take[2], pruned_min);
  fifteen_candidates<3>(soa, padded, bound, cand_board[3], cand_blank[3],
                        cand_h[3], take[3], pruned_min);

  // NextBound is a min: one observation of the batch minimum equals the
  // scalar path's per-candidate observations.  Pad lanes are excluded.
  std::uint64_t m = static_cast<std::uint64_t>(search::kUnbounded);
  for (std::uint32_t j = 0; j < count; ++j) {
    if (pruned_min[j] < m) m = pruned_min[j];
  }
  next.observe(static_cast<search::Bound>(m));

  const std::size_t base = out.size();
  // SIMDLINT-EFFECT-OK(allocates) `out` is the caller's persistent-capacity
  out.resize(base + static_cast<std::size_t>(count) * 4);
  Node* const dst = out.data() + base;  // staging buffer; growth amortizes.
  std::size_t k = 0;
  for (std::uint32_t j = 0; j < count; ++j) {
    const std::size_t start = k;
    const auto g1 = static_cast<std::uint8_t>(soa.g[j] + 1);
    for (std::uint32_t mv = 0; mv < 4; ++mv) {
      Node child{};
      child.board = cand_board[mv][j];
      child.blank = static_cast<std::uint8_t>(cand_blank[mv][j]);
      child.g = g1;
      child.h = static_cast<std::uint8_t>(cand_h[mv][j]);
      child.last = static_cast<std::uint8_t>(mv);
      dst[k] = child;
      k += take[mv][j];
    }
    child_counts[j] = static_cast<std::uint32_t>(k - start);
  }
  // SIMDLINT-EFFECT-OK(allocates) shrinking resize: capacity is retained
  out.resize(base + k);
}

}  // namespace simdts::vec

#endif  // SIMDTS_VECTOR_BACKEND
