// Struct-of-arrays staging pools for the vectorized execution backend.
//
// The scalar engine's hot loop is one `problem_.expand()` call per set bit —
// an array-of-structs walk whose per-node control flow defeats
// auto-vectorization.  The vector backend instead gathers the nodes popped
// from one 64-lane word into these SoA pools (one parallel array per node
// field, padded to the vector width), runs a branch-free batch kernel over
// the arrays, and scatters the children back per lane.  64 lanes is the
// natural batch size: it matches the BitPlane word the engine already walks,
// so a batch never crosses a host-thread ownership boundary.
//
// Layout (one cache line column per field, lanes grow rightward):
//
//   TreeBatchSoA                   FifteenBatchSoA
//   id      [u64 x 64]             board  [u64 x 64]   (packed nibbles)
//   depth   [u16 x 64]             blank  [u64 x 64]
//   climate [u16 x 64]             g / h  [u64 x 64]
//                                  skip   [u64 x 64]   (inverse of last)
//
// Everything here is fixed-size and lives inside the engine's per-lane
// scratch, so steady-state cycles allocate nothing.  The pools are plain
// aggregates — the kernels in vec/expand.cpp index them directly with
// `#pragma omp simd` loops and AVX2 intrinsics.
#pragma once

#include <cstdint>

#include "puzzle/board.hpp"
#include "puzzle/fifteen.hpp"
#include "synthetic/tree.hpp"

namespace simdts::vec {

/// Batch width: one BitPlane word of lanes.  Kernels may read (not write
/// through) the padded tail, so every array is sized to the full width and
/// loaders replicate the last real node into the pad lanes.
inline constexpr std::uint32_t kBatchLanes = 64;

/// Vector width the pad rounds up to (covers AVX2's 4x64-bit lanes).
inline constexpr std::uint32_t kPadLanes = 4;

/// Count rounded up so vector loops can run full-width without a scalar
/// remainder; pad lanes hold copies of a real node and their results are
/// never emitted.
[[nodiscard]] constexpr std::uint32_t padded_count(std::uint32_t count) {
  return (count + (kPadLanes - 1)) & ~(kPadLanes - 1);
}

/// SoA pool for a batch of synthetic::Tree nodes.
struct TreeBatchSoA {
  alignas(32) std::uint64_t id[kBatchLanes];
  alignas(32) std::uint16_t depth[kBatchLanes];
  alignas(32) std::uint16_t climate[kBatchLanes];

  /// Loads `count` nodes and replicates the last one into the pad lanes.
  void load(const synthetic::Tree::Node* nodes, std::uint32_t count) {
    for (std::uint32_t j = 0; j < count; ++j) {
      id[j] = nodes[j].id;
      depth[j] = nodes[j].depth;
      climate[j] = nodes[j].climate;
    }
    for (std::uint32_t j = count; j < padded_count(count); ++j) {
      id[j] = id[count - 1];
      depth[j] = depth[count - 1];
      climate[j] = climate[count - 1];
    }
  }
};

/// SoA pool for a batch of 15-puzzle nodes.  The packed nibble boards stay
/// packed (the move kernels are shift/mask arithmetic on the u64 directly);
/// the byte fields widen all the way to u64 so every lane of the candidate
/// loop is the same width — GCC's vectorizer refuses loops that mix 64-bit
/// board words with narrower metadata ("no vectype"), and a type-homogeneous
/// u64 loop compiles to clean 4-wide AVX2 (vpsrlvq/vpsllvq for the nibble
/// shifts).
struct FifteenBatchSoA {
  alignas(32) std::uint64_t board[kBatchLanes];
  alignas(32) std::uint64_t blank[kBatchLanes];
  alignas(32) std::uint64_t g[kBatchLanes];
  alignas(32) std::uint64_t h[kBatchLanes];
  alignas(32) std::uint64_t skip[kBatchLanes];  ///< inverse(last), kNoMove if none

  void load(const puzzle::FifteenPuzzle::Node* nodes, std::uint32_t count) {
    for (std::uint32_t j = 0; j < count; ++j) {
      board[j] = nodes[j].board;
      blank[j] = nodes[j].blank;
      g[j] = nodes[j].g;
      h[j] = nodes[j].h;
      skip[j] = nodes[j].last == puzzle::kNoMove
                    ? puzzle::kNoMove
                    : static_cast<std::uint64_t>(puzzle::inverse(
                          static_cast<puzzle::Move>(nodes[j].last)));
    }
    for (std::uint32_t j = count; j < padded_count(count); ++j) {
      board[j] = board[count - 1];
      blank[j] = blank[count - 1];
      g[j] = g[count - 1];
      h[j] = h[count - 1];
      skip[j] = skip[count - 1];
    }
  }
};

}  // namespace simdts::vec
