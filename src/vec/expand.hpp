// Batch-expansion dispatch for the vectorized execution backend.
//
// BatchExpander<P>::expand() is what the engine's vector execution mode
// calls with the up-to-64 nodes popped from one flag word.  The primary
// template routes through search::expand_batch — a problem's own
// expand_batch() member if it has one, else the scalar per-node fallback —
// so *any* TreeProblem works under the vector backend; domains with a real
// SIMD kernel (synthetic::Tree and puzzle::FifteenPuzzle, below) specialize
// it to the kernels in vec/expand.cpp.
//
// The kernel definitions are compiled only under SIMDTS_VECTOR_BACKEND (the
// TU is empty otherwise), which keeps the backend's absence provable at the
// symbol level: with the option OFF, no simdts::vec symbol may appear in
// libsimdts.a (the lint.vector_backend_symbols ctest runs nm to enforce it,
// mirroring SimdSan's zero-cost gate).
//
// Contract (inherited from search::expand_batch and enforced end-to-end by
// the oracle gate in tests/test_vector_backend.cpp): identical children, in
// identical per-slot order, and an identical NextBound outcome as `count`
// scalar expand() calls.  The kernels keep that bit-exact by doing the same
// integer arithmetic as the scalar domains — only the *schedule* changes.
#pragma once

#include <cstdint>
#include <vector>

#include "puzzle/fifteen.hpp"
#include "search/problem.hpp"
#include "synthetic/tree.hpp"

namespace simdts::vec {

/// True when the library was built with -DSIMDTS_VECTOR_BACKEND=ON.
/// Available in both build flavors so harnesses can report which binary
/// they measured (constexpr, so it leaves no simdts::vec symbol behind in
/// a backend-off build — the nm gate stays clean).
#ifdef SIMDTS_VECTOR_BACKEND
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// Generic batch expander: scalar semantics via search::expand_batch.
template <search::TreeProblem P>
struct BatchExpander {
  /// True when a real SIMD kernel backs this problem (reported in the
  /// perf harness so speedups are attributed honestly).
  static constexpr bool kVectorized = false;

  static void expand(const P& p, const typename P::Node* nodes,
                     std::uint32_t count, search::Bound bound,
                     std::vector<typename P::Node>& out,
                     std::uint32_t* child_counts, search::NextBound& next) {
    search::expand_batch(p, nodes, count, bound, out, child_counts, next);
  }
};

#ifdef SIMDTS_VECTOR_BACKEND

/// SIMD batch kernel for synthetic::Tree (vec/expand.cpp).
void expand_batch_tree(const synthetic::Tree& tree,
                       const synthetic::Tree::Node* nodes, std::uint32_t count,
                       search::Bound bound,
                       std::vector<synthetic::Tree::Node>& out,
                       std::uint32_t* child_counts, search::NextBound& next);

/// SIMD batch kernel for puzzle::FifteenPuzzle (vec/expand.cpp).
void expand_batch_fifteen(const puzzle::FifteenPuzzle& p,
                          const puzzle::FifteenPuzzle::Node* nodes,
                          std::uint32_t count, search::Bound bound,
                          std::vector<puzzle::FifteenPuzzle::Node>& out,
                          std::uint32_t* child_counts,
                          search::NextBound& next);

template <>
struct BatchExpander<synthetic::Tree> {
  static constexpr bool kVectorized = true;

  static void expand(const synthetic::Tree& p,
                     const synthetic::Tree::Node* nodes, std::uint32_t count,
                     search::Bound bound,
                     std::vector<synthetic::Tree::Node>& out,
                     std::uint32_t* child_counts, search::NextBound& next) {
    expand_batch_tree(p, nodes, count, bound, out, child_counts, next);
  }
};

template <>
struct BatchExpander<puzzle::FifteenPuzzle> {
  static constexpr bool kVectorized = true;

  static void expand(const puzzle::FifteenPuzzle& p,
                     const puzzle::FifteenPuzzle::Node* nodes,
                     std::uint32_t count, search::Bound bound,
                     std::vector<puzzle::FifteenPuzzle::Node>& out,
                     std::uint32_t* child_counts, search::NextBound& next) {
    expand_batch_fifteen(p, nodes, count, bound, out, child_counts, next);
  }
};

#endif  // SIMDTS_VECTOR_BACKEND

}  // namespace simdts::vec
