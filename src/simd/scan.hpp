// Scan (parallel-prefix) primitives.
//
// The CM-2 exposed scans as hardware primitives (Blelloch, "Scans as
// Primitive Parallel Operations"); the paper's matching schemes are built
// entirely out of sum-scans over per-PE flags (Section 3.3).  This module
// provides serial scans plus a blocked two-pass parallel formulation that
// runs on the host ThreadPool — the classic upsweep/downsweep structure
// collapsed to per-chunk partial sums, which is work-efficient on CPUs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "simd/bitplane.hpp"
#include "simd/thread_pool.hpp"

namespace simdts::simd {

/// out[i] = in[0] + ... + in[i].  `out` may alias `in`.
template <typename T>
void inclusive_scan(std::span<const T> in, std::span<T> out) {
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc = static_cast<T>(acc + in[i]);
    out[i] = acc;
  }
}

/// out[i] = in[0] + ... + in[i-1]; out[0] = 0.  `out` may alias `in`.
template <typename T>
void exclusive_scan(std::span<const T> in, std::span<T> out) {
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    const T v = in[i];
    out[i] = acc;
    acc = static_cast<T>(acc + v);
  }
}

/// Sum of all elements.
template <typename T>
[[nodiscard]] T reduce(std::span<const T> in) {
  return std::accumulate(in.begin(), in.end(), T{});
}

/// Blocked parallel inclusive scan: each lane scans its chunk, a serial pass
/// computes chunk offsets, each lane then adds its offset.  Falls back to the
/// serial scan for small inputs or a single-lane pool.  `out` must not alias
/// `in` partially (full aliasing, out.data() == in.data(), is allowed).
template <typename T>
void inclusive_scan(std::span<const T> in, std::span<T> out, ThreadPool& pool) {
  constexpr std::size_t kMinParallel = 1 << 14;
  if (pool.size() <= 1 || in.size() < kMinParallel) {
    inclusive_scan(in, out);
    return;
  }
  const unsigned lanes = pool.size();
  const std::size_t chunk = (in.size() + lanes - 1) / lanes;
  std::vector<T> partial(lanes, T{});
  pool.parallel_for(in.size(), [&](std::size_t begin, std::size_t end) {
    T acc{};
    for (std::size_t i = begin; i < end; ++i) {
      acc = static_cast<T>(acc + in[i]);
      out[i] = acc;
    }
    partial[begin / chunk] = acc;
  });
  std::vector<T> offset(lanes, T{});
  exclusive_scan<T>(partial, offset);
  pool.parallel_for(in.size(), [&](std::size_t begin, std::size_t end) {
    const T off = offset[begin / chunk];
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = static_cast<T>(out[i] + off);
    }
  });
}

/// Enumerates the set positions of `flags`: ranks[i] = number of set flags in
/// flags[0..i-1] for every i with flags[i] != 0 (ranks of unset positions are
/// left untouched).  Returns the total number of set flags.  This is exactly
/// the CM-2 "enumerate" used to line up busy and idle processors.
std::uint32_t enumerate(std::span<const std::uint8_t> flags,
                        std::span<std::uint32_t> ranks);

/// Count of set flags (global-or / population count over the PE array).
std::uint32_t count_set(std::span<const std::uint8_t> flags);

/// Packed-plane enumerate.  Stronger write contract than the byte-plane
/// overload: ranks[i] = number of set lanes in [0, i) is written for EVERY
/// lane i < size(), set or not (an unset lane's value is where it would
/// slot in — a full exclusive sum-scan of the plane).  The return value and
/// the ranks at set lanes agree with the byte overload; the byte overload's
/// "unset positions untouched" guarantee does not carry over.  Branch-free:
/// each 64-lane word is expanded through a byte-wise prefix-popcount table
/// (8 unconditional widening stores per byte), so the cost is independent
/// of occupancy and free of the per-set-bit mispredicts a countr_zero walk
/// pays at engine-typical densities.
std::uint32_t enumerate(const BitPlane& plane, std::span<std::uint32_t> ranks);

/// Packed-plane census (word-level popcount reduction).
[[nodiscard]] inline std::uint32_t count_set(const BitPlane& plane) {
  return plane.count();
}

/// Inclusive running maximum (the CM-2 max-scan).  `out` may alias `in`.
template <typename T>
void max_scan(std::span<const T> in, std::span<T> out) {
  if (in.empty()) return;
  T acc = in[0];
  out[0] = acc;
  for (std::size_t i = 1; i < in.size(); ++i) {
    if (in[i] > acc) acc = in[i];
    out[i] = acc;
  }
}

/// Inclusive running minimum (used for the branch-and-bound incumbent
/// broadcast).  `out` may alias `in`.
template <typename T>
void min_scan(std::span<const T> in, std::span<T> out) {
  if (in.empty()) return;
  T acc = in[0];
  out[0] = acc;
  for (std::size_t i = 1; i < in.size(); ++i) {
    if (in[i] < acc) acc = in[i];
    out[i] = acc;
  }
}

/// Segmented inclusive sum-scan: the accumulator restarts at every position
/// whose segment flag is set (the head of a segment).  Blelloch's segmented
/// scans are how the CM-2 expressed per-group reductions without breaking
/// lock-step.  `out` may alias `in`.
template <typename T>
void segmented_scan(std::span<const T> in,
                    std::span<const std::uint8_t> heads, std::span<T> out) {
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (heads[i] != 0) acc = T{};
    acc = static_cast<T>(acc + in[i]);
    out[i] = acc;
  }
}

/// Copy-scan (broadcast): every position receives the value at the most
/// recent set head at or before it; positions before the first head keep
/// their input value.
template <typename T>
void copy_scan(std::span<const T> in, std::span<const std::uint8_t> heads,
               std::span<T> out) {
  bool seen = false;
  T current{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (heads[i] != 0) {
      current = in[i];
      seen = true;
    }
    out[i] = seen ? current : in[i];
  }
}

}  // namespace simdts::simd
