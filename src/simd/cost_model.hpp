// Cost model for the emulated SIMD machine.
//
// Every quantity the paper reports (efficiency, isoefficiency curves) is a
// function of *counts* (node-expansion cycles, load-balancing rounds) and the
// machine's cost ratio t_lb / t_expand.  The model charges simulated time for
// each lock-step phase; no wall-clock time ever enters the simulation, so all
// runs are bit-deterministic.
//
// Defaults follow the paper's CM-2 measurements: a node-expansion cycle costs
// about 30 ms and a load-balancing phase about 13 ms, and on the CM-2 the
// load-balancing cost is a (large) constant independent of P (Section 3.3).
// For the architecture study of Table 6 the model also provides hypercube
// (t_lb ~ log^2 P) and mesh (t_lb ~ sqrt(P)) topologies; those are normalized
// so that t_lb matches the configured constant at P = 8192, the machine size
// used throughout the paper's experiments.
#pragma once

#include <cstdint>

namespace simdts::simd {

/// Interconnect topology determining how the per-phase load-balancing cost
/// scales with the number of processing elements.
enum class Topology {
  kCm2Constant,  ///< dedicated scan/router hardware: t_lb independent of P
  kHypercube,    ///< general permutation on a hypercube: t_lb ~ log^2 P
  kMesh,         ///< general permutation on a 2-D mesh: t_lb ~ sqrt(P)
};

/// Simulated-time cost parameters of the machine.  Times are in abstract
/// milliseconds; only ratios matter.
struct CostModel {
  /// Time charged for one lock-step node-expansion cycle (all PEs).
  double t_expand = 30.0;
  /// Base time charged for one load-balancing transfer round at the
  /// normalization size (kNormalizeP) — the CM-2 measured about 13 ms.
  double t_lb = 13.0;
  /// Extra multiplier on t_lb.  Table 5 studies 12x and 16x costs, which the
  /// paper simulated by "sending larger than necessary messages".
  double lb_cost_multiplier = 1.0;
  /// How t_lb scales with machine size.
  Topology topology = Topology::kCm2Constant;
  /// Time charged for a nearest-neighbour transfer step (Frye's second
  /// scheme); NEWS-grid communication on the CM-2 was much cheaper than
  /// general router traffic.
  double t_neighbor = 2.0;

  /// Machine size at which the topology scaling factor equals 1.
  static constexpr std::uint32_t kNormalizeP = 8192;

  /// Topology scaling factor for a machine of size p (== 1 at kNormalizeP).
  [[nodiscard]] double topology_scale(std::uint32_t p) const;

  /// Full cost of one load-balancing transfer round on a machine of size p.
  [[nodiscard]] double lb_round_cost(std::uint32_t p) const;

  /// Cost of one nearest-neighbour transfer step.
  [[nodiscard]] double neighbor_cost() const { return t_neighbor; }

  /// The ratio t_lb(P) / t_expand that enters the optimal-trigger equation.
  [[nodiscard]] double lb_over_expand(std::uint32_t p) const {
    return lb_round_cost(p) / t_expand;
  }

  /// Rejects parameter values that can only produce nonsense (NaN or
  /// negative simulated times): t_expand must be positive and finite, the
  /// transfer costs nonnegative and finite, the multiplier positive.  Throws
  /// simdts::ConfigError naming the offending field; called by the Machine
  /// constructor so bad models fail at construction, not as NaN efficiencies
  /// deep inside a table.
  void validate() const;
};

/// The paper's CM-2 configuration (30 ms expansion, 13 ms load balance).
[[nodiscard]] CostModel cm2_cost_model();

/// A machine with fast powerful CPUs relative to its network (the paper's
/// MASPAR / CM-5 discussion): load balancing is `ratio` times more expensive
/// relative to node expansion than on the CM-2.
[[nodiscard]] CostModel fast_cpu_cost_model(double ratio);

/// Hypercube topology variant of the CM-2 model (t_lb ~ log^2 P).
[[nodiscard]] CostModel hypercube_cost_model();

/// Mesh topology variant of the CM-2 model (t_lb ~ sqrt P).
[[nodiscard]] CostModel mesh_cost_model();

}  // namespace simdts::simd
