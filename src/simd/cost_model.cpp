#include "simd/cost_model.hpp"

#include <cmath>

namespace simdts::simd {

namespace {

double raw_scale(Topology t, std::uint32_t p) {
  const double pd = static_cast<double>(p < 2 ? 2 : p);
  switch (t) {
    case Topology::kCm2Constant:
      return 1.0;
    case Topology::kHypercube: {
      const double lg = std::log2(pd);
      return lg * lg;
    }
    case Topology::kMesh:
      return std::sqrt(pd);
  }
  return 1.0;
}

}  // namespace

double CostModel::topology_scale(std::uint32_t p) const {
  return raw_scale(topology, p) / raw_scale(topology, kNormalizeP);
}

double CostModel::lb_round_cost(std::uint32_t p) const {
  return t_lb * lb_cost_multiplier * topology_scale(p);
}

CostModel cm2_cost_model() { return CostModel{}; }

CostModel fast_cpu_cost_model(double ratio) {
  CostModel cm;
  cm.lb_cost_multiplier = ratio;
  return cm;
}

CostModel hypercube_cost_model() {
  CostModel cm;
  cm.topology = Topology::kHypercube;
  return cm;
}

CostModel mesh_cost_model() {
  CostModel cm;
  cm.topology = Topology::kMesh;
  return cm;
}

}  // namespace simdts::simd
