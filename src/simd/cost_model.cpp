#include "simd/cost_model.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace simdts::simd {

namespace {

double raw_scale(Topology t, std::uint32_t p) {
  const double pd = static_cast<double>(p < 2 ? 2 : p);
  switch (t) {
    case Topology::kCm2Constant:
      return 1.0;
    case Topology::kHypercube: {
      const double lg = std::log2(pd);
      return lg * lg;
    }
    case Topology::kMesh:
      return std::sqrt(pd);
  }
  return 1.0;
}

}  // namespace

double CostModel::topology_scale(std::uint32_t p) const {
  return raw_scale(topology, p) / raw_scale(topology, kNormalizeP);
}

double CostModel::lb_round_cost(std::uint32_t p) const {
  return t_lb * lb_cost_multiplier * topology_scale(p);
}

void CostModel::validate() const {
  const auto fail = [](const char* what, const char* field, double value) {
    std::ostringstream os;
    os << field << "=" << value;
    throw ConfigError(std::string("CostModel: ") + what, os.str());
  };
  if (!(t_expand > 0.0) || !std::isfinite(t_expand)) {
    fail("t_expand must be positive and finite", "t_expand", t_expand);
  }
  if (!(t_lb >= 0.0) || !std::isfinite(t_lb)) {
    fail("t_lb must be nonnegative and finite", "t_lb", t_lb);
  }
  if (!(lb_cost_multiplier > 0.0) || !std::isfinite(lb_cost_multiplier)) {
    fail("lb_cost_multiplier must be positive and finite",
         "lb_cost_multiplier", lb_cost_multiplier);
  }
  if (!(t_neighbor >= 0.0) || !std::isfinite(t_neighbor)) {
    fail("t_neighbor must be nonnegative and finite", "t_neighbor",
         t_neighbor);
  }
}

CostModel cm2_cost_model() { return CostModel{}; }

CostModel fast_cpu_cost_model(double ratio) {
  CostModel cm;
  cm.lb_cost_multiplier = ratio;
  return cm;
}

CostModel hypercube_cost_model() {
  CostModel cm;
  cm.topology = Topology::kHypercube;
  return cm;
}

CostModel mesh_cost_model() {
  CostModel cm;
  cm.topology = Topology::kMesh;
  return cm;
}

}  // namespace simdts::simd
