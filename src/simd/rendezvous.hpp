// Rendezvous allocation: pairing the k-th element of one set of PEs with the
// k-th element of another (Hillis, "The Connection Machine").
//
// Both the paper's matching schemes reduce to this primitive.  nGP pairs the
// k-th busy PE (in PE-index order) with the k-th idle PE.  GP pairs the k-th
// busy PE *in an enumeration that starts just after a global pointer and
// wraps around* with the k-th idle PE — the rotation is the whole difference
// between the two schemes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simd/bitplane.hpp"
#include "simd/summary.hpp"

namespace simdts::simd {

/// Index of a processing element in the machine.  32 bits bound the
/// supported machine envelope at P < 2^32 — four thousand times the
/// P = 2^20 the mega-P sweeps exercise — and every rank/index on the P axis
/// uses this width (no narrower type appears on that axis; a regression at
/// non-power-of-64 P > 2^16 is pinned by tests/test_mega_p.cpp).
using PeIndex = std::uint32_t;
inline constexpr PeIndex kNoPe = static_cast<PeIndex>(-1);

/// One matched (donor, receiver) pair produced by a rendezvous.
struct Pair {
  PeIndex donor;
  PeIndex receiver;
  friend bool operator==(const Pair&, const Pair&) = default;
};

/// Pairs donors with receivers by rank.  Donor ranks are assigned in PE-index
/// order starting at the first donor *strictly after* `start_after` and
/// wrapping around the machine; receiver ranks are assigned in plain PE-index
/// order.  Passing `start_after == kNoPe` yields the unrotated (nGP)
/// enumeration.  Exactly min(#donors, #receivers, limit) pairs are produced,
/// pair k joining donor-rank k with receiver-rank k (the paper's one-on-one
/// matching: when idle processors outnumber busy ones only the first A idle
/// processors receive work, and vice versa).  The walk stops as soon as
/// `limit` pairs are emitted, so a small limit (the FESS baseline serves one
/// idle PE per phase) never materializes the full enumeration.
[[nodiscard]] std::vector<Pair> rendezvous(
    std::span<const std::uint8_t> donor_flags,
    std::span<const std::uint8_t> receiver_flags, PeIndex start_after = kNoPe,
    std::size_t limit = static_cast<std::size_t>(-1));

/// As rendezvous(), but appends into a caller-owned buffer (cleared first) so
/// hot loops can reuse its capacity across rounds.
void rendezvous_into(std::span<const std::uint8_t> donor_flags,
                     std::span<const std::uint8_t> receiver_flags,
                     PeIndex start_after, std::size_t limit,
                     std::vector<Pair>& out);

/// The set PEs of `flags` in enumeration order: plain PE-index order, or —
/// when `start_after != kNoPe` — starting at the first set PE strictly after
/// `start_after` and wrapping around.  rendezvous() is rank-aligned zipping
/// of two such enumerations.
[[nodiscard]] std::vector<PeIndex> ranked(std::span<const std::uint8_t> flags,
                                          PeIndex start_after = kNoPe);

// --- Packed bit-plane kernels -----------------------------------------------
//
// Word-level versions of the walks above: the rotated enumeration visits one
// std::uint64_t word per 64 lanes (clear words cost a single load + test) and
// extracts set lanes with std::countr_zero.  Pair sequences are exactly those
// of the byte-plane kernels on the same occupancy pattern — pinned by
// tests/test_bitplane.cpp — so the engine can switch planes without moving a
// single simulated result.

/// As rendezvous_into() over byte planes, but over packed planes.
void rendezvous_into(const BitPlane& donor_flags,
                     const BitPlane& receiver_flags, PeIndex start_after,
                     std::size_t limit, std::vector<Pair>& out);

/// As ranked() over byte planes, but over a packed plane and into a
/// caller-owned buffer (cleared first) so hot loops reuse its capacity.
void ranked_into(const BitPlane& flags, PeIndex start_after,
                 std::vector<PeIndex>& out);

[[nodiscard]] std::vector<PeIndex> ranked(const BitPlane& flags,
                                          PeIndex start_after = kNoPe);

// --- Hierarchical (summary-aware) kernels -----------------------------------
//
// The flat packed walks above still load every plane word: O(P/64) per phase
// regardless of occupancy.  These overloads consult a SummaryPlane (one bit
// per plane word) to hop straight between occupied words, so a phase scales
// with the number of occupied words, not with P — the common sparse case at
// mega-P.  Outputs are bit-identical to the flat kernels on the same
// occupancy pattern: a clear summary bit guarantees a zero word, so skipping
// it cannot change the enumeration (pinned by tests/test_summary.cpp).

/// As the packed rendezvous_into(), hopping via each plane's summary.
void rendezvous_into(const BitPlane& donor_flags,
                     const SummaryPlane& donor_summary,
                     const BitPlane& receiver_flags,
                     const SummaryPlane& receiver_summary, PeIndex start_after,
                     std::size_t limit, std::vector<Pair>& out);

/// As the packed ranked_into(), hopping via the plane's summary.
void ranked_into(const BitPlane& flags, const SummaryPlane& summary,
                 PeIndex start_after, std::vector<PeIndex>& out);

}  // namespace simdts::simd
