#include "simd/rendezvous.hpp"

#include <algorithm>

namespace simdts::simd {

std::vector<PeIndex> ranked(std::span<const std::uint8_t> flags,
                            PeIndex start_after) {
  const std::size_t p = flags.size();
  std::vector<PeIndex> out;
  if (p == 0) return out;
  // The rotated walk visits start_after+1, ..., P-1, 0, ..., start_after;
  // on the machine this is one sum-scan over a rotated flag plane, here a
  // single pass.
  const std::size_t first =
      (start_after == kNoPe) ? 0
                             : (static_cast<std::size_t>(start_after) + 1) % p;
  for (std::size_t step = 0; step < p; ++step) {
    const std::size_t i = (first + step) % p;
    if (flags[i] != 0) {
      out.push_back(static_cast<PeIndex>(i));
    }
  }
  return out;
}

std::vector<Pair> rendezvous(std::span<const std::uint8_t> donor_flags,
                             std::span<const std::uint8_t> receiver_flags,
                             PeIndex start_after) {
  const std::vector<PeIndex> donors = ranked(donor_flags, start_after);
  const std::vector<PeIndex> receivers = ranked(receiver_flags);
  const std::size_t n = std::min(donors.size(), receivers.size());
  std::vector<Pair> pairs;
  pairs.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    pairs.push_back(Pair{donors[k], receivers[k]});
  }
  return pairs;
}

}  // namespace simdts::simd
