#include "simd/rendezvous.hpp"

namespace simdts::simd {

std::vector<PeIndex> ranked(std::span<const std::uint8_t> flags,
                            PeIndex start_after) {
  const std::size_t p = flags.size();
  std::vector<PeIndex> out;
  if (p == 0) return out;
  // The rotated walk visits start_after+1, ..., P-1, 0, ..., start_after;
  // on the machine this is one sum-scan over a rotated flag plane, here a
  // single pass.
  const std::size_t first =
      (start_after == kNoPe) ? 0
                             : (static_cast<std::size_t>(start_after) + 1) % p;
  for (std::size_t step = 0; step < p; ++step) {
    const std::size_t i = (first + step) % p;
    if (flags[i] != 0) {
      out.push_back(static_cast<PeIndex>(i));
    }
  }
  return out;
}

void rendezvous_into(std::span<const std::uint8_t> donor_flags,
                     std::span<const std::uint8_t> receiver_flags,
                     PeIndex start_after, std::size_t limit,
                     std::vector<Pair>& out) {
  out.clear();
  const std::size_t pd = donor_flags.size();
  const std::size_t pr = receiver_flags.size();
  if (pd == 0 || pr == 0 || limit == 0) return;
  // Walk both enumerations in lockstep, emitting pair k as soon as the k-th
  // donor and k-th receiver are known; stopping at `limit` leaves the tails
  // of both enumerations unvisited.
  const std::size_t first =
      (start_after == kNoPe) ? 0
                             : (static_cast<std::size_t>(start_after) + 1) % pd;
  std::size_t d_step = 0;
  std::size_t r = 0;
  while (out.size() < limit) {
    PeIndex donor = kNoPe;
    for (; d_step < pd; ++d_step) {
      const std::size_t i = (first + d_step) % pd;
      if (donor_flags[i] != 0) {
        donor = static_cast<PeIndex>(i);
        ++d_step;
        break;
      }
    }
    if (donor == kNoPe) return;
    for (; r < pr && receiver_flags[r] == 0; ++r) {
    }
    if (r == pr) return;
    out.push_back(Pair{donor, static_cast<PeIndex>(r)});
    ++r;
  }
}

std::vector<Pair> rendezvous(std::span<const std::uint8_t> donor_flags,
                             std::span<const std::uint8_t> receiver_flags,
                             PeIndex start_after, std::size_t limit) {
  std::vector<Pair> pairs;
  rendezvous_into(donor_flags, receiver_flags, start_after, limit, pairs);
  return pairs;
}

}  // namespace simdts::simd
