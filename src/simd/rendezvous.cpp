#include "simd/rendezvous.hpp"

#include <bit>

namespace simdts::simd {

namespace {

/// Cursor over the set lanes of a packed plane in rotated enumeration order:
/// lanes [first, P) then [0, first).  next() returns P when exhausted.  Clear
/// words are skipped with one load + test each; set lanes are extracted with
/// std::countr_zero — the word-level form of the rotated sum-scan walk.
class RotatedSetCursor {
 public:
  RotatedSetCursor(const BitPlane& plane, std::size_t first)
      : ws_(plane.words()), p_(plane.size()), first_(first) {
    w_ = first_ / BitPlane::kWordBits;
    if (w_ < ws_.size()) {
      cur_ = ws_[w_] & (~std::uint64_t{0} << (first_ % BitPlane::kWordBits));
    }
  }

  std::size_t next() {
    for (;;) {
      if (cur_ != 0) {
        const auto b = static_cast<std::size_t>(std::countr_zero(cur_));
        cur_ &= cur_ - 1;
        return w_ * BitPlane::kWordBits + b;
      }
      if (in_wrap_) {
        ++w_;
        if (w_ * BitPlane::kWordBits >= first_) return p_;
        cur_ = wrap_word(w_);
        continue;
      }
      ++w_;
      if (w_ < ws_.size()) {
        cur_ = ws_[w_];
        continue;
      }
      // Switch to the wrapped segment: lanes [0, first).
      in_wrap_ = true;
      if (first_ == 0) return p_;
      w_ = 0;
      cur_ = wrap_word(0);
    }
  }

 private:
  /// Word `w` restricted to lanes strictly below the rotation start.
  [[nodiscard]] std::uint64_t wrap_word(std::size_t w) const {
    std::uint64_t m = ws_[w];
    const std::size_t base = w * BitPlane::kWordBits;
    if (base + BitPlane::kWordBits > first_) {
      m &= (std::uint64_t{1} << (first_ - base)) - 1;
    }
    return m;
  }

  std::span<const std::uint64_t> ws_;
  std::size_t p_ = 0;
  std::size_t first_ = 0;
  std::size_t w_ = 0;
  std::uint64_t cur_ = 0;
  bool in_wrap_ = false;
};

/// Summary-aware variant of RotatedSetCursor: identical enumeration, but the
/// hunt for the next nonzero word hops via SummaryPlane::next_occupied — one
/// summary-word load covers 64 plane words (4096 lanes), so a sparse plane
/// is walked in time proportional to its occupied words.  A clear summary
/// bit guarantees a zero plane word, so no skipped word could have produced
/// a lane.
class SummaryRotatedSetCursor {
 public:
  SummaryRotatedSetCursor(const BitPlane& plane, const SummaryPlane& summary,
                          std::size_t first)
      : ws_(plane.words()), sum_(summary), p_(plane.size()), first_(first) {
    w_ = first_ / BitPlane::kWordBits;
    if (w_ < ws_.size()) {
      cur_ = ws_[w_] & (~std::uint64_t{0} << (first_ % BitPlane::kWordBits));
    }
  }

  std::size_t next() {
    for (;;) {
      if (cur_ != 0) {
        const auto b = static_cast<std::size_t>(std::countr_zero(cur_));
        cur_ &= cur_ - 1;
        return w_ * BitPlane::kWordBits + b;
      }
      if (in_wrap_) {
        const std::size_t nw = sum_.next_occupied(w_ + 1);
        if (nw * BitPlane::kWordBits >= first_) return p_;
        w_ = nw;
        cur_ = wrap_word(w_);
        continue;
      }
      const std::size_t nw = sum_.next_occupied(w_ + 1);
      if (nw < ws_.size()) {
        w_ = nw;
        cur_ = ws_[w_];
        continue;
      }
      // Switch to the wrapped segment: lanes [0, first).
      in_wrap_ = true;
      if (first_ == 0) return p_;
      const std::size_t w0 = sum_.next_occupied(0);
      if (w0 * BitPlane::kWordBits >= first_) return p_;
      w_ = w0;
      cur_ = wrap_word(w_);
    }
  }

 private:
  /// Word `w` restricted to lanes strictly below the rotation start.
  [[nodiscard]] std::uint64_t wrap_word(std::size_t w) const {
    std::uint64_t m = ws_[w];
    const std::size_t base = w * BitPlane::kWordBits;
    if (base + BitPlane::kWordBits > first_) {
      m &= (std::uint64_t{1} << (first_ - base)) - 1;
    }
    return m;
  }

  std::span<const std::uint64_t> ws_;
  const SummaryPlane& sum_;
  std::size_t p_ = 0;
  std::size_t first_ = 0;
  std::size_t w_ = 0;
  std::uint64_t cur_ = 0;
  bool in_wrap_ = false;
};

}  // namespace

std::vector<PeIndex> ranked(std::span<const std::uint8_t> flags,
                            PeIndex start_after) {
  const std::size_t p = flags.size();
  std::vector<PeIndex> out;
  if (p == 0) return out;
  // The rotated walk visits start_after+1, ..., P-1, 0, ..., start_after;
  // on the machine this is one sum-scan over a rotated flag plane, here a
  // single pass.
  const std::size_t first =
      (start_after == kNoPe) ? 0
                             : (static_cast<std::size_t>(start_after) + 1) % p;
  for (std::size_t step = 0; step < p; ++step) {
    const std::size_t i = (first + step) % p;
    if (flags[i] != 0) {
      out.push_back(static_cast<PeIndex>(i));
    }
  }
  return out;
}

void rendezvous_into(std::span<const std::uint8_t> donor_flags,
                     std::span<const std::uint8_t> receiver_flags,
                     PeIndex start_after, std::size_t limit,
                     std::vector<Pair>& out) {
  out.clear();
  const std::size_t pd = donor_flags.size();
  const std::size_t pr = receiver_flags.size();
  if (pd == 0 || pr == 0 || limit == 0) return;
  // Walk both enumerations in lockstep, emitting pair k as soon as the k-th
  // donor and k-th receiver are known; stopping at `limit` leaves the tails
  // of both enumerations unvisited.
  const std::size_t first =
      (start_after == kNoPe) ? 0
                             : (static_cast<std::size_t>(start_after) + 1) % pd;
  std::size_t d_step = 0;
  std::size_t r = 0;
  while (out.size() < limit) {
    PeIndex donor = kNoPe;
    for (; d_step < pd; ++d_step) {
      const std::size_t i = (first + d_step) % pd;
      if (donor_flags[i] != 0) {
        donor = static_cast<PeIndex>(i);
        ++d_step;
        break;
      }
    }
    if (donor == kNoPe) return;
    for (; r < pr && receiver_flags[r] == 0; ++r) {
    }
    if (r == pr) return;
    // SIMDLINT-EFFECT-OK(allocates) `out` is the caller's persistent-capacity
    out.push_back(Pair{donor, static_cast<PeIndex>(r)});  // pairing buffer:
    // at most P/2 pairs per cycle, so steady state never reallocates.
    ++r;
  }
}

std::vector<Pair> rendezvous(std::span<const std::uint8_t> donor_flags,
                             std::span<const std::uint8_t> receiver_flags,
                             PeIndex start_after, std::size_t limit) {
  std::vector<Pair> pairs;
  rendezvous_into(donor_flags, receiver_flags, start_after, limit, pairs);
  return pairs;
}

void rendezvous_into(const BitPlane& donor_flags,
                     const BitPlane& receiver_flags, PeIndex start_after,
                     std::size_t limit, std::vector<Pair>& out) {
  out.clear();
  const std::size_t pd = donor_flags.size();
  const std::size_t pr = receiver_flags.size();
  if (pd == 0 || pr == 0 || limit == 0) return;
  const std::size_t first =
      (start_after == kNoPe) ? 0
                             : (static_cast<std::size_t>(start_after) + 1) % pd;
  RotatedSetCursor donors(donor_flags, first);
  RotatedSetCursor receivers(receiver_flags, 0);
  while (out.size() < limit) {
    const std::size_t d = donors.next();
    if (d == pd) return;
    const std::size_t r = receivers.next();
    if (r == pr) return;
    // SIMDLINT-EFFECT-OK(allocates) `out` is the caller's persistent-capacity
    out.push_back(Pair{static_cast<PeIndex>(d), static_cast<PeIndex>(r)});
    // pairing buffer: at most P/2 pairs per cycle; growth amortizes away.
  }
}

void ranked_into(const BitPlane& flags, PeIndex start_after,
                 std::vector<PeIndex>& out) {
  out.clear();
  const std::size_t p = flags.size();
  if (p == 0) return;
  const std::size_t first =
      (start_after == kNoPe) ? 0
                             : (static_cast<std::size_t>(start_after) + 1) % p;
  RotatedSetCursor cursor(flags, first);
  for (std::size_t i = cursor.next(); i != p; i = cursor.next()) {
    // SIMDLINT-EFFECT-OK(allocates) `out` is the caller's persistent-capacity
    out.push_back(static_cast<PeIndex>(i));  // rank buffer, bounded by P;
    // growth amortizes away after the first full cycle.
  }
}

std::vector<PeIndex> ranked(const BitPlane& flags, PeIndex start_after) {
  std::vector<PeIndex> out;
  ranked_into(flags, start_after, out);
  return out;
}

void rendezvous_into(const BitPlane& donor_flags,
                     const SummaryPlane& donor_summary,
                     const BitPlane& receiver_flags,
                     const SummaryPlane& receiver_summary, PeIndex start_after,
                     std::size_t limit, std::vector<Pair>& out) {
  out.clear();
  const std::size_t pd = donor_flags.size();
  const std::size_t pr = receiver_flags.size();
  if (pd == 0 || pr == 0 || limit == 0) return;
  const std::size_t first =
      (start_after == kNoPe) ? 0
                             : (static_cast<std::size_t>(start_after) + 1) % pd;
  SummaryRotatedSetCursor donors(donor_flags, donor_summary, first);
  SummaryRotatedSetCursor receivers(receiver_flags, receiver_summary, 0);
  while (out.size() < limit) {
    const std::size_t d = donors.next();
    if (d == pd) return;
    const std::size_t r = receivers.next();
    if (r == pr) return;
    // SIMDLINT-EFFECT-OK(allocates) `out` is the caller's persistent-capacity
    out.push_back(Pair{static_cast<PeIndex>(d), static_cast<PeIndex>(r)});
    // pairing buffer: at most P/2 pairs per cycle; growth amortizes away.
  }
}

void ranked_into(const BitPlane& flags, const SummaryPlane& summary,
                 PeIndex start_after, std::vector<PeIndex>& out) {
  out.clear();
  const std::size_t p = flags.size();
  if (p == 0) return;
  const std::size_t first =
      (start_after == kNoPe) ? 0
                             : (static_cast<std::size_t>(start_after) + 1) % p;
  SummaryRotatedSetCursor cursor(flags, summary, first);
  for (std::size_t i = cursor.next(); i != p; i = cursor.next()) {
    // SIMDLINT-EFFECT-OK(allocates) `out` is the caller's persistent-capacity
    out.push_back(static_cast<PeIndex>(i));  // rank buffer, bounded by P;
    // growth amortizes away after the first full cycle.
  }
}

}  // namespace simdts::simd
