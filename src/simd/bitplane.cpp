#include "simd/bitplane.hpp"

namespace simdts::simd {

std::size_t nth_set(const BitPlane& plane, std::uint32_t k) {
  const std::span<const std::uint64_t> ws = plane.words();
  for (std::size_t w = 0; w < ws.size(); ++w) {
    std::uint64_t m = ws[w];
    const auto c = static_cast<std::uint32_t>(std::popcount(m));
    if (k < c) {
      for (; k > 0; --k) m &= m - 1;
      return w * BitPlane::kWordBits +
             static_cast<std::size_t>(std::countr_zero(m));
    }
    k -= c;
  }
  return plane.size();
}

}  // namespace simdts::simd
