// A small barrier-synchronised thread pool used to execute one lock-step PE
// cycle across host threads.
//
// The pool mirrors the data-parallel structure of the emulated machine: a
// cycle is a parallel_for over the PE index range, each worker owns a
// contiguous chunk of PEs, and the call returns only after every worker has
// finished (a barrier, exactly like the SIMD machine's implicit global
// synchronisation).  Because each PE's state is private to its index, the
// emulation is bit-deterministic regardless of the number of host threads.
//
// Dispatch is allocation-free: the body is passed as a (context, trampoline)
// pair rather than a std::function, and parallel_for_lanes hands the body its
// lane index so callers can reduce into pre-sized per-lane accumulator slots
// after the barrier instead of merging under a mutex inside the hot loop.
//
// On a single-core host (or with threads == 1) the pool degrades to an inline
// loop with zero synchronisation overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace simdts::simd {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers.  `threads == 0` picks the host's
  /// hardware concurrency; `threads == 1` means "run inline, no workers".
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of lanes work is divided into (>= 1).
  [[nodiscard]] unsigned size() const noexcept { return lanes_; }

  /// Runs body(begin, end) over a partition of [0, n) into size() contiguous
  /// chunks, one per lane, and blocks until all chunks are done.  The body
  /// must not touch state shared across chunks without its own
  /// synchronisation.  Exceptions thrown by the body are rethrown (the first
  /// one encountered, by lane order) after all lanes finish.
  template <typename F>
  void parallel_for(std::size_t n, F&& body) {
    auto laned = [&body](unsigned /*lane*/, std::size_t begin,
                         std::size_t end) { body(begin, end); };
    parallel_for_lanes(n, laned);
  }

  /// Like parallel_for, but the body also receives its lane index in
  /// [0, size()).  Each lane index is used by at most one chunk per dispatch,
  /// so body(lane, ...) may write lane-private accumulators without locking;
  /// the caller reduces them after the call returns (i.e. at the barrier).
  /// Lanes whose chunk is empty are not invoked.
  template <typename F>
  void parallel_for_lanes(std::size_t n, F&& body) {
    using Fn = std::remove_reference_t<F>;
    dispatch(n, 1,
             const_cast<std::remove_const_t<Fn>*>(std::addressof(body)),
             [](void* ctx, unsigned lane, std::size_t begin, std::size_t end) {
               (*static_cast<Fn*>(ctx))(lane, begin, end);
             });
  }

  /// As parallel_for_lanes, but every chunk boundary is a multiple of
  /// `align` (the last chunk still ends at n).  The engine uses align == 64
  /// plane words so each 64-word summary block — one summary *word* — has a
  /// single writer per cycle.  Alignment only moves chunk boundaries between
  /// lanes; per-index work is unchanged, so results stay bit-identical to the
  /// unaligned partition.
  template <typename F>
  void parallel_for_lanes_aligned(std::size_t n, std::size_t align, F&& body) {
    using Fn = std::remove_reference_t<F>;
    dispatch(n, align,
             const_cast<std::remove_const_t<Fn>*>(std::addressof(body)),
             [](void* ctx, unsigned lane, std::size_t begin, std::size_t end) {
               (*static_cast<Fn*>(ctx))(lane, begin, end);
             });
  }

 private:
  using Trampoline = void (*)(void*, unsigned, std::size_t, std::size_t);

  void dispatch(std::size_t n, std::size_t align, void* ctx, Trampoline fn);
  void worker(unsigned lane);
  void run_lane(unsigned lane);

  unsigned lanes_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;

  // Per-dispatch state (valid while pending_ > 0).
  std::size_t n_ = 0;
  std::size_t align_ = 1;
  void* ctx_ = nullptr;
  Trampoline fn_ = nullptr;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace simdts::simd
