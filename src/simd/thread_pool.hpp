// A small barrier-synchronised thread pool used to execute one lock-step PE
// cycle across host threads.
//
// The pool mirrors the data-parallel structure of the emulated machine: a
// cycle is a parallel_for over the PE index range, each worker owns a
// contiguous chunk of PEs, and the call returns only after every worker has
// finished (a barrier, exactly like the SIMD machine's implicit global
// synchronisation).  Because each PE's state is private to its index, the
// emulation is bit-deterministic regardless of the number of host threads.
//
// On a single-core host (or with threads == 1) the pool degrades to an inline
// loop with zero synchronisation overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace simdts::simd {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers.  `threads == 0` picks the host's
  /// hardware concurrency; `threads == 1` means "run inline, no workers".
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of lanes work is divided into (>= 1).
  [[nodiscard]] unsigned size() const noexcept { return lanes_; }

  /// Runs body(begin, end) over a partition of [0, n) into size() contiguous
  /// chunks, one per lane, and blocks until all chunks are done.  The body
  /// must not touch state shared across chunks without its own
  /// synchronisation.  Exceptions thrown by the body are rethrown (the first
  /// one encountered, by lane order) after all lanes finish.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker(unsigned lane);
  void run_lane(unsigned lane);

  unsigned lanes_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  unsigned pending_ = 0;
  bool stop_ = false;

  // Per-dispatch state (valid while pending_ > 0).
  std::size_t n_ = 0;
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace simdts::simd
