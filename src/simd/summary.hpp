// Hierarchical (two-level) occupancy summaries over packed flag planes.
//
// Every load-balancing enumeration — rendezvous matching, ranked selection,
// ring pairing — and the expand cycle's word walk scan a BitPlane one
// 64-lane word at a time: O(P/64) loads per phase even when only a handful
// of lanes are set.  At P = 2^20 that is 16384 word loads per plane per
// phase.  A SummaryPlane adds Blelloch's two-level structure (the same
// blocked decomposition as simd/scan.hpp): one bit per plane *word*, set
// exactly when that word is nonzero.  Enumerations then skip clear regions
// at 64 plane words (4096 lanes) per summary-word load and scale with the
// number of *occupied* words, not with P.
//
// Discipline (the "summary-plane discipline" of docs/performance.md):
//  - The summary is maintained incrementally alongside the plane: whoever
//    writes a plane word refreshes its summary bit (BitPlane's zero-tail
//    invariant holds at both levels).
//  - A summary consumer may rely on: bit w clear  =>  plane word w == 0.
//    Summary-aware kernels therefore produce bit-identical output to their
//    flat counterparts by construction; the property tests in
//    tests/test_summary.cpp pin this across random planes, and under
//    SIMDTS_SANITIZE the engine's per-cycle sweep re-verifies every summary
//    against a recomputation (the census-divergence check extended to the
//    summary level).
//  - Under host threading the engine aligns its word partition to 64-word
//    blocks (ThreadPool::parallel_for_lanes_aligned), so a summary word has
//    exactly one writer per cycle.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "sanitizer/sanitizer.hpp"
#include "simd/bitplane.hpp"

namespace simdts::simd {

class SummaryPlane {
 public:
  SummaryPlane() = default;

  /// Sizes the summary for a plane of `lanes` lanes (one summary lane per
  /// plane word), all bits clear.
  void assign_for_lanes(std::size_t lanes) {
    bits_.assign(BitPlane::word_count_for(lanes), false);
  }

  /// Recomputes every bit from the plane (serial contexts: run start, fault
  /// events).  The incremental path must agree with this — that is the
  /// summary-level divergence check.
  void rebuild(const BitPlane& plane) {
    const std::span<const std::uint64_t> ws = plane.words();
    for (std::size_t w = 0; w < ws.size(); ++w) {
      bits_.set(w, ws[w] != 0);
    }
  }

  /// Refreshes the bit for plane word `w` from its just-written value.
  /// Lockstep-safe: one masked word write, preserving the zero-tail
  /// invariant (w < size() keeps the bit inside the valid mask).
  void update_word(std::size_t w, std::uint64_t word_value) noexcept {
    std::uint64_t& sw = bits_.words()[w / BitPlane::kWordBits];
    const std::uint64_t bit = std::uint64_t{1} << (w % BitPlane::kWordBits);
    sw = word_value != 0 ? (sw | bit) : (sw & ~bit);
  }

  /// True when plane word `w` may be nonzero (clear bit guarantees zero).
  [[nodiscard]] bool test(std::size_t w) const SIMDTS_SAN_NOEXCEPT {
    return bits_.test(w);
  }

  /// Number of plane words covered.
  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }

  /// The summary's own packed words (bit w = plane word w occupied).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return bits_.words();
  }

  /// First summary-set plane word >= `from`, or size() when none: the
  /// word-skipping step of every summary-aware enumeration.
  [[nodiscard]] std::size_t next_occupied(std::size_t from) const noexcept {
    return next_occupied_below(from, bits_.size());
  }

  /// As next_occupied(from), but never returns (or scans) past `limit`:
  /// returns `limit` when no occupied word lies in [from, limit).  When both
  /// `from` and `limit` are multiples of kWordBits, only summary words
  /// [from/64, limit/64) are read — the engine's host-lane bodies rely on
  /// this so a lane's scan never touches a summary word another lane is
  /// concurrently rewriting (chunks are 64-word aligned, so summary words
  /// partition exactly along chunk boundaries).
  [[nodiscard]] std::size_t next_occupied_below(
      std::size_t from, std::size_t limit) const noexcept {
    if (from >= limit) return limit;
    const std::span<const std::uint64_t> ws = bits_.words();
    std::size_t sw = from / BitPlane::kWordBits;
    const std::size_t sw_end =
        (limit + BitPlane::kWordBits - 1) / BitPlane::kWordBits;
    std::uint64_t m =
        ws[sw] & (~std::uint64_t{0} << (from % BitPlane::kWordBits));
    for (;;) {
      if (m != 0) {
        const std::size_t i = sw * BitPlane::kWordBits +
                              static_cast<std::size_t>(std::countr_zero(m));
        return i < limit ? i : limit;
      }
      if (++sw == sw_end) return limit;
      m = ws[sw];
    }
  }

#ifdef SIMDTS_SANITIZE
  /// Sanitize-only: verifies every summary bit against the plane (bit w set
  /// iff word w nonzero) plus the summary's own zero-tail invariant —
  /// SimdSan's census-divergence check extended to the summary level.
  void san_verify(const BitPlane& plane, const char* name) const {
    bits_.san_verify_tail(name);
    const std::span<const std::uint64_t> ws = plane.words();
    for (std::size_t w = 0; w < ws.size(); ++w) {
      san::check_census(bits_.test(w) ? 1 : 0, ws[w] != 0 ? 1 : 0, name);
    }
  }
#endif

 private:
  BitPlane bits_;  ///< one lane per plane word
};

}  // namespace simdts::simd
