#include "simd/machine.hpp"

#include <stdexcept>

namespace simdts::simd {

MachineClock& MachineClock::operator+=(const MachineClock& o) {
  elapsed += o.elapsed;
  calc_time += o.calc_time;
  idle_time += o.idle_time;
  lb_time += o.lb_time;
  expand_cycles += o.expand_cycles;
  lb_rounds += o.lb_rounds;
  nodes_expanded += o.nodes_expanded;
  return *this;
}

Machine::Machine(std::uint32_t p, CostModel cost, ThreadPool* pool)
    : p_(p), cost_(cost), pool_(pool) {
  if (p_ == 0) {
    throw std::invalid_argument("Machine: need at least one PE");
  }
}

void Machine::charge_expand_cycle(std::uint32_t working) {
  if (working > p_) {
    throw std::invalid_argument("Machine: more working PEs than PEs");
  }
  const double t = cost_.t_expand;
  clock_.elapsed += t;
  clock_.calc_time += static_cast<double>(working) * t;
  clock_.idle_time += static_cast<double>(p_ - working) * t;
  clock_.expand_cycles += 1;
  clock_.nodes_expanded += working;
}

void Machine::charge_lb_round() {
  const double t = cost_.lb_round_cost(p_);
  clock_.elapsed += t;
  clock_.lb_time += static_cast<double>(p_) * t;
  clock_.lb_rounds += 1;
}

void Machine::charge_neighbor_round() {
  const double t = cost_.neighbor_cost();
  clock_.elapsed += t;
  clock_.lb_time += static_cast<double>(p_) * t;
  clock_.lb_rounds += 1;
}

}  // namespace simdts::simd
