#include "simd/machine.hpp"

#include <sstream>

#include "common/error.hpp"

namespace simdts::simd {

MachineClock& MachineClock::operator+=(const MachineClock& o) {
  elapsed += o.elapsed;
  calc_time += o.calc_time;
  idle_time += o.idle_time;
  lb_time += o.lb_time;
  recovery_time += o.recovery_time;
  expand_cycles += o.expand_cycles;
  lb_rounds += o.lb_rounds;
  recovery_rounds += o.recovery_rounds;
  nodes_expanded += o.nodes_expanded;
  return *this;
}

Machine::Machine(std::uint32_t p, CostModel cost, ThreadPool* pool)
    : p_(p), cost_(cost), pool_(pool) {
  if (p_ == 0) {
    throw ConfigError("Machine: need at least one PE", "P=0");
  }
  cost_.validate();
}

void Machine::charge_expand_cycle(std::uint32_t working, std::uint32_t alive) {
  if (alive == 0) alive = p_;
  if (working > alive || alive > p_) {
    std::ostringstream os;
    os << "working=" << working << " alive=" << alive << " P=" << p_;
    throw EngineError("Machine: working/alive lane counts out of range", "-",
                      p_, clock_.expand_cycles);
  }
  const double t = cost_.t_expand;
  clock_.elapsed += t;
  clock_.calc_time += static_cast<double>(working) * t;
  clock_.idle_time += static_cast<double>(alive - working) * t;
  clock_.expand_cycles += 1;
  clock_.nodes_expanded += working;
}

void Machine::charge_lb_round() {
  const double t = cost_.lb_round_cost(p_);
  clock_.elapsed += t;
  clock_.lb_time += static_cast<double>(p_) * t;
  clock_.lb_rounds += 1;
}

void Machine::charge_neighbor_round() {
  const double t = cost_.neighbor_cost();
  clock_.elapsed += t;
  clock_.lb_time += static_cast<double>(p_) * t;
  clock_.lb_rounds += 1;
}

void Machine::charge_recovery_round() {
  const double t = cost_.lb_round_cost(p_);
  clock_.elapsed += t;
  clock_.recovery_time += static_cast<double>(p_) * t;
  clock_.recovery_rounds += 1;
}

}  // namespace simdts::simd
