#include "simd/thread_pool.hpp"

#include <algorithm>

namespace simdts::simd {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  lanes_ = threads;
  errors_.resize(lanes_);
  if (lanes_ > 1) {
    workers_.reserve(lanes_);
    for (unsigned lane = 0; lane < lanes_; ++lane) {
      workers_.emplace_back([this, lane] { worker(lane); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

// SIMDLINT-SOURCE(partition) — the chunk split depends on the lane count
void ThreadPool::run_lane(unsigned lane) {
  std::size_t chunk = (n_ + lanes_ - 1) / lanes_;
  if (align_ > 1) {
    chunk = (chunk + align_ - 1) / align_ * align_;
  }
  const std::size_t begin = std::min(n_, lane * chunk);
  const std::size_t end = std::min(n_, begin + chunk);
  if (begin < end) {
    try {
      fn_(ctx_, lane, begin, end);
    } catch (...) {
      errors_[lane] = std::current_exception();
    }
  }
}

void ThreadPool::worker(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_lane(lane);
    {
      std::lock_guard lock(mu_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::dispatch(std::size_t n, std::size_t align, void* ctx,
                          Trampoline fn) {
  if (n == 0) return;
  if (lanes_ == 1) {
    fn(ctx, 0, 0, n);
    return;
  }
  {
    std::unique_lock lock(mu_);
    n_ = n;
    align_ = align == 0 ? 1 : align;
    ctx_ = ctx;
    fn_ = fn;
    std::fill(errors_.begin(), errors_.end(), nullptr);
    pending_ = lanes_;
    ++generation_;
    cv_start_.notify_all();
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    ctx_ = nullptr;
    fn_ = nullptr;
  }
  for (auto& err : errors_) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace simdts::simd
