// The emulated lock-step SIMD machine.
//
// The Machine owns the global simulated clock and the phase-level cost
// accounting of a run: how much simulated time was spent in node-expansion
// cycles, how much of that was wasted on idle PEs, and how much went to
// load-balancing rounds.  It deliberately knows nothing about tree search —
// the load-balancing engine drives it by reporting, each lock-step phase, how
// many PEs did useful work.
//
// Accounting follows Section 3.1 of the paper exactly:
//   T_calc = (nodes expanded) * t_expand           (useful computation)
//   T_idle = sum over cycles of (alive - working) * t_expand
//   T_lb   = (transfer rounds) * lb_round_cost * P
//   P * T_par = T_calc + T_idle + T_lb,   E = T_calc / (P * T_par)
//
// Fault extension: when PEs are killed mid-run (see fault::FaultPlan), a
// degraded machine charges idle time only for *surviving* lanes, and the
// recovery phases that re-donate a dead PE's work are costed like
// load-balancing rounds in a separate T_recover bucket, so efficiency tables
// extend naturally with a fault axis.  With no faults, alive == P and
// T_recover == 0: the accounting below is bit-identical to the fault-free
// formulas.
#pragma once

#include <cstdint>

#include "simd/cost_model.hpp"
#include "simd/thread_pool.hpp"

namespace simdts::simd {

/// Aggregated simulated-time accounting for one run (one IDA* iteration or a
/// whole search).
struct MachineClock {
  double elapsed = 0.0;        ///< simulated wall time T_par
  double calc_time = 0.0;      ///< useful work, T_calc
  double idle_time = 0.0;      ///< wasted expansion-cycle time, T_idle
  double lb_time = 0.0;        ///< P * (time spent in lb rounds), T_lb
  double recovery_time = 0.0;  ///< P * (time spent re-donating dead PEs' work)
  std::uint64_t expand_cycles = 0;   ///< node-expansion cycles executed
  std::uint64_t lb_rounds = 0;       ///< work-transfer rounds executed
  std::uint64_t recovery_rounds = 0; ///< fault-recovery transfer rounds
  std::uint64_t nodes_expanded = 0;  ///< total useful node expansions

  /// E = T_calc / (T_calc + T_idle + T_lb + T_recover).
  [[nodiscard]] double efficiency() const {
    const double total = calc_time + idle_time + lb_time + recovery_time;
    return total > 0.0 ? calc_time / total : 1.0;
  }

  MachineClock& operator+=(const MachineClock& o);

  /// Exact (bitwise double) equality — the determinism tests assert that
  /// simulated time never depends on host threading.
  friend bool operator==(const MachineClock&, const MachineClock&) = default;

  /// Difference of two snapshots (for measuring one run against a shared
  /// machine clock).
  [[nodiscard]] friend MachineClock operator-(MachineClock a,
                                              const MachineClock& b) {
    a.elapsed -= b.elapsed;
    a.calc_time -= b.calc_time;
    a.idle_time -= b.idle_time;
    a.lb_time -= b.lb_time;
    a.recovery_time -= b.recovery_time;
    a.expand_cycles -= b.expand_cycles;
    a.lb_rounds -= b.lb_rounds;
    a.recovery_rounds -= b.recovery_rounds;
    a.nodes_expanded -= b.nodes_expanded;
    return a;
  }
};

class Machine {
 public:
  /// A machine of `p` PEs with the given cost model.  `pool`, if non-null,
  /// is used by callers to spread a PE cycle across host threads; it is not
  /// owned.  Throws simdts::ConfigError on a zero-size machine or a cost
  /// model with non-positive expansion cost / negative transfer costs.
  Machine(std::uint32_t p, CostModel cost, ThreadPool* pool = nullptr);

  [[nodiscard]] std::uint32_t size() const noexcept { return p_; }
  [[nodiscard]] const CostModel& cost() const noexcept { return cost_; }
  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_; }

  /// Charges one lock-step node-expansion cycle in which `working` PEs popped
  /// and expanded a node and the other alive - working surviving PEs idled
  /// through the cycle.  `alive == 0` means all P lanes survive (the
  /// fault-free machine); dead lanes contribute neither calc nor idle time.
  void charge_expand_cycle(std::uint32_t working, std::uint32_t alive = 0);

  /// Charges one load-balancing transfer round (matching setup + router
  /// transfer).  All P PEs pay for it: the machine is single-program.
  void charge_lb_round();

  /// Charges one nearest-neighbour transfer step (cheaper than a general
  /// router round; used by the Frye baseline).
  void charge_neighbor_round();

  /// Charges one fault-recovery transfer round: re-donating a dead PE's
  /// journaled stack intervals to survivors costs a router round, booked in
  /// the clock's recovery bucket so fault overhead is separable from regular
  /// load balancing.
  void charge_recovery_round();

  /// Cost one lb round would have, without charging it (the L estimate for
  /// the dynamic triggers is based on the *previous* phase's measured cost,
  /// but the first phase needs a prior).
  [[nodiscard]] double lb_round_cost() const {
    return cost_.lb_round_cost(p_);
  }

  [[nodiscard]] const MachineClock& clock() const noexcept { return clock_; }
  void reset_clock() { clock_ = MachineClock{}; }

 private:
  std::uint32_t p_;
  CostModel cost_;
  ThreadPool* pool_;
  MachineClock clock_;
};

}  // namespace simdts::simd
