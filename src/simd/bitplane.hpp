// Packed per-PE flag planes: one bit per lane, one std::uint64_t word per 64
// lanes.
//
// Every quantity the paper reports is a function of per-cycle flag planes —
// busy / idle / dead bits scanned and sum-scanned across all P PEs — and on
// the CM-2 those planes *were* bit planes in the machine's memory, operated
// on 64 lanes at a time by the sequencer.  Storing them as byte vectors made
// the emulator pay O(P) byte operations per cycle where the machine (and a
// modern host CPU) does O(P/64) word operations.  This module is the packed
// substrate: census via std::popcount word reduction, set-lane enumeration
// via std::countr_zero word iteration, and word-granularity masks for the
// expansion hot loop's dead/idle tests.
//
// Invariant: bits at positions >= size() (the tail of the last word) are
// always zero, so word-level reductions never need a trailing mask.  All
// single-bit operations require i < size(); they are noexcept and unchecked,
// like element access on the byte planes they replace — except under
// SIMDTS_SANITIZE, where SimdSan bounds-checks the lane index and the
// engine's per-cycle sweep verifies the zero-tail invariant.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sanitizer/sanitizer.hpp"

namespace simdts::simd {

class BitPlane {
 public:
  static constexpr std::size_t kWordBits = 64;

  BitPlane() = default;
  explicit BitPlane(std::size_t lanes, bool value = false) {
    assign(lanes, value);
  }

  /// Resizes to `lanes` lanes, every bit set to `value` (tail bits zero).
  void assign(std::size_t lanes, bool value) {
    lanes_ = lanes;
    words_.assign(word_count_for(lanes), value ? ~std::uint64_t{0} : 0);
    mask_tail();
  }

  /// Sets every bit to `value` without changing the size.
  void fill(bool value) noexcept {
    for (auto& w : words_) w = value ? ~std::uint64_t{0} : 0;
    mask_tail();
  }

  [[nodiscard]] std::size_t size() const noexcept { return lanes_; }
  [[nodiscard]] bool empty() const noexcept { return lanes_ == 0; }

  [[nodiscard]] bool test(std::size_t i) const SIMDTS_SAN_NOEXCEPT {
    SIMDTS_SAN_LANE_CHECK(i, lanes_, "BitPlane::test");
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  void set(std::size_t i) SIMDTS_SAN_NOEXCEPT {
    SIMDTS_SAN_LANE_CHECK(i, lanes_, "BitPlane::set");
    words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
  }
  void reset(std::size_t i) SIMDTS_SAN_NOEXCEPT {
    SIMDTS_SAN_LANE_CHECK(i, lanes_, "BitPlane::reset");
    words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
  }
  void set(std::size_t i, bool value) SIMDTS_SAN_NOEXCEPT {
    value ? set(i) : reset(i);
  }

#ifdef SIMDTS_SANITIZE
  /// Sanitize-only: re-checks the zero-tail invariant, naming this plane in
  /// the diagnostic.  The engine sweeps its flag planes through this once per
  /// expansion cycle.
  void san_verify_tail(const char* plane_name) const {
    san::verify_tail_zero(words_.data(), words_.size(), lanes_, plane_name);
  }
#endif

  /// The packed words, low lane in bit 0 of word 0.  Writers must preserve
  /// the zero-tail invariant (tail_mask() gives the last word's valid bits).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::span<std::uint64_t> words() noexcept { return words_; }
  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }

  /// Valid-bit mask for word `w` (all ones except the tail of the last word).
  [[nodiscard]] std::uint64_t word_mask(std::size_t w) const noexcept {
    const std::size_t base = w * kWordBits;
    const std::size_t n = lanes_ - base;
    return n >= kWordBits ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << n) - 1;
  }

  /// Census: number of set lanes, by word-level popcount reduction (the
  /// CM-2 global-count over a bit plane).
  [[nodiscard]] std::uint32_t count() const noexcept {
    std::uint32_t n = 0;
    for (const std::uint64_t w : words_) {
      n += static_cast<std::uint32_t>(std::popcount(w));
    }
    return n;
  }

  [[nodiscard]] bool none() const noexcept {
    for (const std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }
  [[nodiscard]] bool any() const noexcept { return !none(); }

  friend bool operator==(const BitPlane&, const BitPlane&) = default;

  [[nodiscard]] static std::size_t word_count_for(std::size_t lanes) noexcept {
    return (lanes + kWordBits - 1) / kWordBits;
  }

 private:
  void mask_tail() noexcept {
    if (!words_.empty()) {
      words_.back() &= word_mask(words_.size() - 1);
    }
  }

  std::vector<std::uint64_t> words_;
  std::size_t lanes_ = 0;
};

/// Calls f(i) for every set lane i in ascending order, skipping clear words
/// whole — std::countr_zero enumeration, the packed equivalent of walking a
/// byte plane.
template <typename F>
void for_each_set(const BitPlane& plane, F&& f) {
  const std::span<const std::uint64_t> ws = plane.words();
  for (std::size_t w = 0; w < ws.size(); ++w) {
    std::uint64_t m = ws[w];
    while (m != 0) {
      const auto b = static_cast<unsigned>(std::countr_zero(m));
      f(w * BitPlane::kWordBits + b);
      m &= m - 1;
    }
  }
}

/// Index of the k-th set lane (k = 0 selects the first), or size() when fewer
/// than k+1 lanes are set: word-skipping popcount selection.
[[nodiscard]] std::size_t nth_set(const BitPlane& plane, std::uint32_t k);

}  // namespace simdts::simd
