#include "simd/scan.hpp"

namespace simdts::simd {

std::uint32_t enumerate(std::span<const std::uint8_t> flags,
                        std::span<std::uint32_t> ranks) {
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (flags[i] != 0) {
      ranks[i] = next++;
    }
  }
  return next;
}

std::uint32_t count_set(std::span<const std::uint8_t> flags) {
  std::uint32_t n = 0;
  for (const std::uint8_t f : flags) {
    n += (f != 0);
  }
  return n;
}

std::uint32_t enumerate(const BitPlane& plane, std::span<std::uint32_t> ranks) {
  const std::span<const std::uint64_t> ws = plane.words();
  std::uint32_t before = 0;  // exclusive prefix popcount over whole words
  for (std::size_t w = 0; w < ws.size(); ++w) {
    std::uint64_t m = ws[w];
    const auto word_count = static_cast<std::uint32_t>(std::popcount(m));
    std::uint32_t rank = before;
    while (m != 0) {
      const auto b = static_cast<unsigned>(std::countr_zero(m));
      ranks[w * BitPlane::kWordBits + b] = rank++;
      m &= m - 1;
    }
    before += word_count;
  }
  return before;
}

}  // namespace simdts::simd
