#include "simd/scan.hpp"

#include <array>
#include <bit>

namespace simdts::simd {

namespace {

/// kBytePrefix[b] packs, one byte per lane, the exclusive prefix popcounts
/// of the 8 bits of b: lane i holds popcount(b & ((1 << i) - 1)).  256 * 8
/// bytes, built at compile time.
constexpr std::array<std::uint64_t, 256> make_byte_prefix_table() {
  std::array<std::uint64_t, 256> table{};
  for (unsigned b = 0; b < 256; ++b) {
    std::uint64_t packed = 0;
    unsigned run = 0;
    for (unsigned i = 0; i < 8; ++i) {
      packed |= static_cast<std::uint64_t>(run) << (8 * i);
      run += (b >> i) & 1U;
    }
    table[b] = packed;
  }
  return table;
}

constexpr std::array<std::uint64_t, 256> kBytePrefix = make_byte_prefix_table();

}  // namespace

std::uint32_t enumerate(std::span<const std::uint8_t> flags,
                        std::span<std::uint32_t> ranks) {
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (flags[i] != 0) {
      ranks[i] = next++;
    }
  }
  return next;
}

std::uint32_t count_set(std::span<const std::uint8_t> flags) {
  std::uint32_t n = 0;
  for (const std::uint8_t f : flags) {
    n += (f != 0);
  }
  return n;
}

std::uint32_t enumerate(const BitPlane& plane, std::span<std::uint32_t> ranks) {
  // Branch-free: every lane gets its exclusive prefix count, set or not.
  // The earlier formulation iterated only the set bits (countr_zero +
  // clear-lowest), but at the occupancies the engine actually runs (tens of
  // percent) the data-dependent loop is one mispredict per set bit; writing
  // all 64 lanes from a byte-wise prefix-popcount table is straight-line
  // code the compiler turns into widening SIMD stores, and it is what made
  // the packed kernel clearly beat the byte kernel instead of merely edging
  // it (see bench/micro_substrate.cpp BM_Enumerate*).
  const std::span<const std::uint64_t> ws = plane.words();
  const std::size_t n = plane.size();
  const std::size_t full = n / BitPlane::kWordBits;
  std::uint32_t before = 0;  // exclusive prefix popcount over whole words
  for (std::size_t w = 0; w < full; ++w) {
    const std::uint64_t m = ws[w];
    std::uint32_t* out = ranks.data() + w * BitPlane::kWordBits;
    std::uint32_t base = before;
    for (unsigned k = 0; k < 8; ++k) {
      const auto byte = static_cast<std::uint8_t>(m >> (8 * k));
      const std::uint64_t pre = kBytePrefix[byte];
      for (unsigned i = 0; i < 8; ++i) {
        out[k * 8 + i] =
            base + static_cast<std::uint32_t>((pre >> (8 * i)) & 0xFF);
      }
      base += static_cast<std::uint32_t>(std::popcount(unsigned{byte}));
    }
    before = base;
  }
  // Tail word (tail bits above size() are kept zero by BitPlane).
  if (full < ws.size()) {
    const std::uint64_t m = ws[full];
    std::uint32_t rank = before;
    for (std::size_t b = 0; b < n - full * BitPlane::kWordBits; ++b) {
      ranks[full * BitPlane::kWordBits + b] = rank;
      rank += static_cast<std::uint32_t>((m >> b) & 1U);
    }
    before = rank;
  }
  return before;
}

}  // namespace simdts::simd
