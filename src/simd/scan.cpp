#include "simd/scan.hpp"

namespace simdts::simd {

std::uint32_t enumerate(std::span<const std::uint8_t> flags,
                        std::span<std::uint32_t> ranks) {
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (flags[i] != 0) {
      ranks[i] = next++;
    }
  }
  return next;
}

std::uint32_t count_set(std::span<const std::uint8_t> flags) {
  std::uint32_t n = 0;
  for (const std::uint8_t f : flags) {
    n += (f != 0);
  }
  return n;
}

}  // namespace simdts::simd
