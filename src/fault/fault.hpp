// Deterministic fault injection for the emulated SIMD machine.
//
// The paper's guarantees (GP's V(P) = 1/(1-x) phase bound, D^K's
// 2x-of-optimal trigger overhead) assume every PE survives the whole run.
// Production substrates lose lanes mid-run, so the reproduction grows a fault
// model that lets the same count-based experiments answer: how do the
// matching schemes and triggers degrade when PEs fail, and what does recovery
// cost in the currency (cycles, phases, efficiency) the repo already reports?
//
// A FaultPlan is a schedule of events anchored to the *simulated* expand-cycle
// clock — event k fires after `cycle` node-expansion cycles have executed.
// Because the simulated clock is a pure function of (problem, P, config), a
// seeded plan replays bit-identically for any host thread count: fault runs
// keep the repo's determinism contract.
//
// Event semantics (implemented by lb::Engine, see docs/robustness.md):
//   kKillPe       the PE leaves the machine.  Its unexpanded stack intervals
//                 are journaled and re-donated to survivors in a *recovery
//                 phase*, costed in MachineClock like a load-balancing phase.
//   kRevivePe     the PE rejoins with an empty stack (an idle receiver).
//   kDropMessages the next `count` matched donor->receiver transfers are
//                 silently lost by the router.  The work stays on the donor
//                 (detected retransmission at the next phase), so the drop
//                 wastes lb cost but never loses a subtree.
#pragma once

#include <cstdint>
#include <vector>

#include "simd/bitplane.hpp"

namespace simdts::fault {

/// The dead-lane plane: one bit per lane, set while the lane is killed.
/// Packed so the engine's expansion loop can test 64 lanes with one word
/// load (a clear word means "no dead lane in this block" — the unarmed and
/// fault-free paths never take a per-lane branch).  Owned by lb::Engine;
/// the alias lives here so fault tooling and the engine agree on the type.
using DeadLanePlane = simd::BitPlane;

enum class FaultKind : std::uint8_t {
  kKillPe,
  kRevivePe,
  kDropMessages,
};

[[nodiscard]] const char* to_string(FaultKind k);

struct FaultEvent {
  /// Fires once this many node-expansion cycles have executed on the engine
  /// the plan is armed on (cumulative across IDA* iterations).
  std::uint64_t cycle = 0;
  FaultKind kind = FaultKind::kKillPe;
  /// Target PE (kKillPe / kRevivePe).
  std::uint32_t pe = 0;
  /// Number of transfer messages to drop (kDropMessages).
  std::uint32_t count = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// An immutable, cycle-ordered schedule of fault events.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Takes ownership of `events` and stable-sorts them by cycle (events at
  /// the same cycle keep their given order).
  explicit FaultPlan(std::vector<FaultEvent> events);

  /// A seeded random plan: `kills` kill events of distinct PEs on a machine
  /// of size `p`, at cycles uniformly drawn from [first_cycle, last_cycle].
  /// The generator is SplitMix64 with modulo reduction — deterministic across
  /// platforms and standard libraries, unlike std::uniform_int_distribution.
  /// Requires kills < p (killing every PE can never complete a search).
  [[nodiscard]] static FaultPlan random_kills(std::uint64_t seed,
                                              std::uint32_t p,
                                              std::uint32_t kills,
                                              std::uint64_t first_cycle,
                                              std::uint64_t last_cycle);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Rejects plans that reference PEs outside a machine of size `p`, kill
  /// more distinct PEs than the machine has, or schedule an event at cycle 0
  /// (faults fire *after* an expansion cycle; cycle 0 never arrives).
  /// Throws simdts::ConfigError with the offending event's index.
  void validate(std::uint32_t p) const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

/// SplitMix64 step — the deterministic PRNG used by random plan generation
/// (exposed for tests pinning generated plans).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// One entry of the engine's lost-work journal: at simulated cycle `cycle`,
/// PE `pe` died holding `nodes` unexpanded stack intervals, which were
/// re-donated to survivors in `rounds` recovery transfer rounds.  The engine
/// checks the conservation invariant (every journaled node re-donated
/// exactly once) against this journal at the end of each iteration.
struct RecoveryRecord {
  std::uint64_t cycle = 0;
  std::uint32_t pe = 0;
  std::uint64_t nodes = 0;
  std::uint64_t rounds = 0;

  friend bool operator==(const RecoveryRecord&,
                         const RecoveryRecord&) = default;
};

}  // namespace simdts::fault
