#include "fault/fault.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/error.hpp"
#include "sanitizer/sanitizer.hpp"

namespace simdts::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kKillPe:
      return "kill";
    case FaultKind::kRevivePe:
      return "revive";
    case FaultKind::kDropMessages:
      return "drop";
  }
  return "?";
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
#ifdef SIMDTS_SANITIZE
  // Mutation: leave the plan in submission order so the SimdSan plan-order
  // verification below can be proven to fire on an out-of-order plan.
  const bool sort_plan = !san::mutation().skip_plan_sort;
#else
  const bool sort_plan = true;
#endif
  if (sort_plan) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.cycle < b.cycle;
                     });
  }
#ifdef SIMDTS_SANITIZE
  // The engine's due-event cursor walks the plan front to back and assumes
  // cycles never decrease; verify that here, where every plan is born.
  std::vector<std::uint64_t> cycles;
  cycles.reserve(events_.size());
  for (const FaultEvent& e : events_) cycles.push_back(e.cycle);
  san::verify_plan_cycles(cycles.data(), cycles.size());
#endif
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

FaultPlan FaultPlan::random_kills(std::uint64_t seed, std::uint32_t p,
                                  std::uint32_t kills,
                                  std::uint64_t first_cycle,
                                  std::uint64_t last_cycle) {
  if (p == 0) {
    throw ConfigError("FaultPlan::random_kills: machine size must be positive",
                      "P=0");
  }
  if (kills >= p) {
    std::ostringstream os;
    os << "kills=" << kills << " P=" << p;
    throw ConfigError(
        "FaultPlan::random_kills: must leave at least one survivor",
        os.str());
  }
  if (first_cycle == 0 || last_cycle < first_cycle) {
    std::ostringstream os;
    os << "first=" << first_cycle << " last=" << last_cycle;
    throw ConfigError("FaultPlan::random_kills: need 1 <= first <= last",
                      os.str());
  }
  std::uint64_t state = seed;
  std::vector<FaultEvent> events;
  events.reserve(kills);
  std::unordered_set<std::uint32_t> used;
  while (events.size() < kills) {
    const auto pe = static_cast<std::uint32_t>(splitmix64(state) % p);
    if (!used.insert(pe).second) continue;
    const std::uint64_t span = last_cycle - first_cycle + 1;
    const std::uint64_t cycle = first_cycle + splitmix64(state) % span;
    events.push_back(FaultEvent{cycle, FaultKind::kKillPe, pe, 0});
  }
  return FaultPlan(std::move(events));
}

void FaultPlan::validate(std::uint32_t p) const {
  std::unordered_set<std::uint32_t> killed;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    std::ostringstream ctx;
    ctx << "event " << i << " (" << to_string(e.kind) << " @cycle " << e.cycle
        << ")";
    if (e.cycle == 0) {
      throw ConfigError("FaultPlan: events fire after a cycle; cycle 0 never "
                        "arrives",
                        ctx.str());
    }
    switch (e.kind) {
      case FaultKind::kKillPe:
      case FaultKind::kRevivePe:
        if (e.pe >= p) {
          ctx << " pe=" << e.pe << " P=" << p;
          throw ConfigError("FaultPlan: PE index out of range", ctx.str());
        }
        if (e.kind == FaultKind::kKillPe) {
          killed.insert(e.pe);
        } else {
          killed.erase(e.pe);
        }
        break;
      case FaultKind::kDropMessages:
        if (e.count == 0) {
          throw ConfigError("FaultPlan: drop event with count 0", ctx.str());
        }
        break;
    }
    if (killed.size() >= p) {
      throw ConfigError("FaultPlan: plan kills every PE with none revived",
                        ctx.str());
    }
  }
}

}  // namespace simdts::fault
