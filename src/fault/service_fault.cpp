#include "fault/service_fault.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "fault/fault.hpp"

namespace simdts::fault {

const char* to_string(ServiceFaultKind k) {
  switch (k) {
    case ServiceFaultKind::kEngineCrash:
      return "engine-crash";
    case ServiceFaultKind::kCacheCorrupt:
      return "cache-corrupt";
    case ServiceFaultKind::kQueueStall:
      return "queue-stall";
  }
  return "?";
}

ServiceFaultPlan::ServiceFaultPlan(std::vector<ServiceFaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ServiceFaultEvent& a, const ServiceFaultEvent& b) {
                     return a.request_index < b.request_index;
                   });
}

ServiceFaultPlan ServiceFaultPlan::random(std::uint64_t seed,
                                          std::uint64_t n_requests,
                                          std::uint32_t crashes,
                                          std::uint32_t corruptions,
                                          std::uint32_t stalls) {
  if (n_requests == 0) {
    throw ConfigError("ServiceFaultPlan::random: trace must be non-empty",
                      "n_requests=0");
  }
  std::uint64_t state = seed;
  std::vector<ServiceFaultEvent> events;
  events.reserve(crashes + corruptions + stalls);
  for (std::uint32_t i = 0; i < crashes; ++i) {
    ServiceFaultEvent e;
    e.request_index = splitmix64(state) % n_requests;
    e.kind = ServiceFaultKind::kEngineCrash;
    e.count = 1 + static_cast<std::uint32_t>(splitmix64(state) % 3);
    events.push_back(e);
  }
  for (std::uint32_t i = 0; i < corruptions; ++i) {
    ServiceFaultEvent e;
    e.request_index = splitmix64(state) % n_requests;
    e.kind = ServiceFaultKind::kCacheCorrupt;
    // Byte offset into the stored payload; the service clamps it to the
    // payload length, so any value is safe here.
    e.count = static_cast<std::uint32_t>(splitmix64(state) % 64);
    events.push_back(e);
  }
  for (std::uint32_t i = 0; i < stalls; ++i) {
    ServiceFaultEvent e;
    e.request_index = splitmix64(state) % n_requests;
    e.kind = ServiceFaultKind::kQueueStall;
    e.count = 5 + static_cast<std::uint32_t>(splitmix64(state) % 16);
    events.push_back(e);
  }
  return ServiceFaultPlan(std::move(events));
}

void ServiceFaultPlan::validate(std::uint64_t n_requests) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const ServiceFaultEvent& e = events_[i];
    std::ostringstream ctx;
    ctx << "event " << i << " (" << to_string(e.kind) << ")";
    if (e.request_index >= n_requests) {
      ctx << " request_index=" << e.request_index
          << " n_requests=" << n_requests;
      throw ConfigError(
          "ServiceFaultPlan: event targets a request outside the trace",
          ctx.str());
    }
    if (e.kind == ServiceFaultKind::kEngineCrash && e.count == 0) {
      throw ConfigError(
          "ServiceFaultPlan: a crash event must fail at least one attempt",
          ctx.str());
    }
    if (e.kind == ServiceFaultKind::kQueueStall && e.count == 0) {
      throw ConfigError(
          "ServiceFaultPlan: a stall event must last at least one tick",
          ctx.str());
    }
  }
}

std::uint32_t ServiceFaultPlan::crash_attempts_for(std::uint64_t index) const {
  std::uint32_t total = 0;
  for (const ServiceFaultEvent& e : events_) {
    if (e.request_index == index &&
        e.kind == ServiceFaultKind::kEngineCrash) {
      total += e.count;
    }
  }
  return total;
}

std::vector<std::uint32_t> ServiceFaultPlan::corrupt_bytes_for(
    std::uint64_t index) const {
  std::vector<std::uint32_t> out;
  for (const ServiceFaultEvent& e : events_) {
    if (e.request_index == index &&
        e.kind == ServiceFaultKind::kCacheCorrupt) {
      out.push_back(e.count);
    }
  }
  return out;
}

std::uint64_t ServiceFaultPlan::stall_ticks_for(std::uint64_t index) const {
  std::uint64_t total = 0;
  for (const ServiceFaultEvent& e : events_) {
    if (e.request_index == index && e.kind == ServiceFaultKind::kQueueStall) {
      total += e.count;
    }
  }
  return total;
}

}  // namespace simdts::fault
