// Deterministic fault injection for the solve-service layer.
//
// The engine-level FaultPlan (fault.hpp) breaks the *machine* under a run;
// this plan breaks the *service* around the runs: engines that crash and
// need retrying, cache entries that rot on disk, an admission queue whose
// drain stalls.  Where the engine plan anchors events to the simulated
// expand-cycle clock, the service plan anchors them to the **request trace**
// — event k fires on the request at trace position `request_index` — because
// the trace is the service's own deterministic clock: a replayed trace with
// the same plan produces the same crashes, the same corrupted entries, and
// the same stall window for any host thread count.
//
// Event semantics (implemented by service::SolveService, docs/service.md):
//   kEngineCrash   the first `count` execution attempts of that request
//                  throw simdts::TransientError; the service retries with
//                  seeded exponential backoff and either succeeds on a later
//                  attempt or surfaces a typed failure.
//   kCacheCorrupt  after the request's result is appended to the result
//                  cache, byte `count` of the stored payload is flipped on
//                  disk.  A later verified read detects the checksum
//                  mismatch, treats the entry as a miss, and records a typed
//                  CacheCorruptionError diagnostic — never a wrong answer.
//   kQueueStall    the admission queue stops draining for `count` virtual
//                  ticks starting at that request's arrival, so later
//                  arrivals see a deeper queue (and shed sooner).
#pragma once

#include <cstdint>
#include <vector>

namespace simdts::fault {

enum class ServiceFaultKind : std::uint8_t {
  kEngineCrash,
  kCacheCorrupt,
  kQueueStall,
};

[[nodiscard]] const char* to_string(ServiceFaultKind k);

struct ServiceFaultEvent {
  /// Trace position (0-based index into the replayed request vector) the
  /// event is attached to.
  std::uint64_t request_index = 0;
  ServiceFaultKind kind = ServiceFaultKind::kEngineCrash;
  /// kEngineCrash: failing leading attempts.  kCacheCorrupt: payload byte to
  /// flip.  kQueueStall: stall duration in virtual ticks.
  std::uint32_t count = 1;

  friend bool operator==(const ServiceFaultEvent&,
                         const ServiceFaultEvent&) = default;
};

/// An immutable schedule of service-level fault events, ordered by trace
/// position (events on the same request keep their given order).
class ServiceFaultPlan {
 public:
  ServiceFaultPlan() = default;

  /// Takes ownership of `events` and stable-sorts them by request_index.
  explicit ServiceFaultPlan(std::vector<ServiceFaultEvent> events);

  /// A seeded random plan over a trace of `n_requests`: `crashes` engine
  /// crashes (1-3 failing attempts each), `corruptions` cache-corruption
  /// events, and `stalls` queue stalls (5-20 ticks each), at positions drawn
  /// with SplitMix64 — the same deterministic generator discipline as
  /// FaultPlan::random_kills.  Distinct events may land on the same request.
  [[nodiscard]] static ServiceFaultPlan random(std::uint64_t seed,
                                               std::uint64_t n_requests,
                                               std::uint32_t crashes,
                                               std::uint32_t corruptions,
                                               std::uint32_t stalls);

  [[nodiscard]] const std::vector<ServiceFaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Rejects plans that reference trace positions outside [0, n_requests),
  /// zero-attempt crash events, or zero-tick stalls.  Throws
  /// simdts::ConfigError naming the offending event's index.
  void validate(std::uint64_t n_requests) const;

  /// Scripted failing attempts for the request at trace position `index`
  /// (sum over its kEngineCrash events; 0 when none is scheduled).
  [[nodiscard]] std::uint32_t crash_attempts_for(std::uint64_t index) const;

  /// The payload byte offsets to flip after the request at `index` has been
  /// cached (one per kCacheCorrupt event on that position, in plan order).
  [[nodiscard]] std::vector<std::uint32_t> corrupt_bytes_for(
      std::uint64_t index) const;

  /// Stall ticks starting at the arrival of the request at `index` (sum over
  /// its kQueueStall events; 0 when none).
  [[nodiscard]] std::uint64_t stall_ticks_for(std::uint64_t index) const;

  friend bool operator==(const ServiceFaultPlan&,
                         const ServiceFaultPlan&) = default;

 private:
  std::vector<ServiceFaultEvent> events_;
};

}  // namespace simdts::fault
