#include "puzzle/heuristic.hpp"

#include <array>

namespace simdts::puzzle {

namespace {

struct DistanceTable {
  // distance[t][pos]: Manhattan distance of tile t at position pos from its
  // home (position t); zero row for the blank.
  std::array<std::array<std::int8_t, kCells>, kCells> distance{};
  constexpr DistanceTable() {
    for (int t = 1; t < kCells; ++t) {
      for (int pos = 0; pos < kCells; ++pos) {
        distance[static_cast<std::size_t>(t)][static_cast<std::size_t>(pos)] =
            static_cast<std::int8_t>(manhattan_between(pos, t));
      }
    }
  }
};

constexpr DistanceTable kTable{};

/// Conflicts within one line (row or column).  `tiles` are the tile values
/// at the line's four cells in order; `goal_cell[t]` is tile t's goal cell
/// within this line (-1: tile does not belong to this line).  Returns the
/// minimum number of tiles that must leave the line to resolve all pairwise
/// conflicts (Hansson, Mayer & Yung) — counting raw pairs would overestimate
/// and break admissibility, so tiles are removed greedily by conflict degree.
int line_conflicts(const std::array<std::uint8_t, kSide>& tiles,
                   const std::array<std::int8_t, kCells>& goal_cell) {
  // degree[i]: with how many other in-line tiles cell i's tile conflicts.
  std::array<int, kSide> degree{};
  auto conflicts = [&](int i, int j) {
    const std::uint8_t a = tiles[static_cast<std::size_t>(i)];
    const std::uint8_t b = tiles[static_cast<std::size_t>(j)];
    if (a == 0 || b == 0 || goal_cell[a] < 0 || goal_cell[b] < 0) return false;
    return goal_cell[a] > goal_cell[b];  // reversed goal order => must pass
  };
  bool conflict_matrix[kSide][kSide] = {};
  for (int i = 0; i < kSide; ++i) {
    for (int j = i + 1; j < kSide; ++j) {
      if (conflicts(i, j)) {
        conflict_matrix[i][j] = conflict_matrix[j][i] = true;
        ++degree[static_cast<std::size_t>(i)];
        ++degree[static_cast<std::size_t>(j)];
      }
    }
  }
  int removed = 0;
  for (;;) {
    int best = -1;
    for (int i = 0; i < kSide; ++i) {
      if (degree[static_cast<std::size_t>(i)] > 0 &&
          (best < 0 || degree[static_cast<std::size_t>(i)] >
                           degree[static_cast<std::size_t>(best)])) {
        best = i;
      }
    }
    if (best < 0) break;
    for (int j = 0; j < kSide; ++j) {
      if (conflict_matrix[best][j]) {
        conflict_matrix[best][j] = conflict_matrix[j][best] = false;
        --degree[static_cast<std::size_t>(j)];
      }
    }
    degree[static_cast<std::size_t>(best)] = 0;
    ++removed;
  }
  return removed;
}

}  // namespace

int tile_distance(std::uint8_t t, int pos) {
  return kTable.distance[t][static_cast<std::size_t>(pos)];
}

int manhattan(const Board& board) {
  int h = 0;
  for (int pos = 0; pos < kCells; ++pos) {
    h += tile_distance(board.tile(pos), pos);
  }
  return h;
}

int linear_conflict(const Board& board) {
  int conflicts = 0;
  for (int r = 0; r < kSide; ++r) {
    std::array<std::uint8_t, kSide> line{};
    std::array<std::int8_t, kCells> goal_cell{};
    goal_cell.fill(-1);
    for (int c = 0; c < kSide; ++c) {
      line[static_cast<std::size_t>(c)] = board.tile(r * kSide + c);
    }
    for (int t = 1; t < kCells; ++t) {
      if (row_of(t) == r) goal_cell[static_cast<std::size_t>(t)] =
          static_cast<std::int8_t>(col_of(t));
    }
    conflicts += line_conflicts(line, goal_cell);
  }
  for (int c = 0; c < kSide; ++c) {
    std::array<std::uint8_t, kSide> line{};
    std::array<std::int8_t, kCells> goal_cell{};
    goal_cell.fill(-1);
    for (int r = 0; r < kSide; ++r) {
      line[static_cast<std::size_t>(r)] = board.tile(r * kSide + c);
    }
    for (int t = 1; t < kCells; ++t) {
      if (col_of(t) == c) goal_cell[static_cast<std::size_t>(t)] =
          static_cast<std::int8_t>(row_of(t));
    }
    conflicts += line_conflicts(line, goal_cell);
  }
  return manhattan(board) + 2 * conflicts;
}

int evaluate(const Board& board, Heuristic h) {
  switch (h) {
    case Heuristic::kManhattan:
      return manhattan(board);
    case Heuristic::kLinearConflict:
      return linear_conflict(board);
  }
  return manhattan(board);
}

}  // namespace simdts::puzzle
