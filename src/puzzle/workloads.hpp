// Calibrated 15-puzzle workloads.
//
// The paper's tables report results for four problem instances identified by
// their serial tree size W in {941852, 3055171, 6073623, 16110463} (Table 2)
// plus one of W = 2067137 for the load-balancing-cost study (Table 5).  The
// exact Korf instances behind those numbers are not identified in the paper,
// and W is the only property the experiments depend on — so we use seeded
// random-walk instances *calibrated by measurement* to have serial IDA* tree
// sizes as close as practical to the paper's.  The calibration was done once
// with tools/calibrate_puzzle; the pinned expectations below are re-verified
// by the test suite (smaller instances exactly, larger ones behind an
// opt-in environment flag since they take seconds).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "puzzle/board.hpp"
#include "search/problem.hpp"

namespace simdts::puzzle {

struct PuzzleWorkload {
  const char* name;
  std::uint64_t seed;   ///< random_walk seed that generates the instance
  int walk_steps;       ///< random_walk length
  std::uint64_t paper_w;          ///< the paper's W this stands in for (0: n/a)
  std::uint64_t serial_total;     ///< measured W over all IDA* iterations
  std::uint64_t serial_final;     ///< measured W of the final iteration
  search::Bound solution_length;  ///< measured optimal solution length
  std::uint64_t goals;            ///< solutions found at the final threshold

  [[nodiscard]] Board board() const { return random_walk(seed, walk_steps); }
};

/// The four Table 2/3/4 stand-ins, ordered by W like the paper's tables.
[[nodiscard]] std::span<const PuzzleWorkload> paper_workloads();

/// The W ~ 2.07e6 instance used by Table 5 and Figure 8.
[[nodiscard]] const PuzzleWorkload& table5_workload();

/// Small instances (W from ~1e3 to ~2e5) for tests and quick runs.
[[nodiscard]] std::span<const PuzzleWorkload> test_workloads();

}  // namespace simdts::puzzle
