// Admissible heuristics for the 15-puzzle.
//
// Manhattan distance is the heuristic Korf used for IDA* and what the
// paper's implementation is based on; it supports an O(1) incremental update
// per move, which is what keeps a node expansion cheap.  Linear conflict is
// provided as an extension (strictly stronger, still admissible); it is
// recomputed from scratch, so it trades node count for per-node cost.
#pragma once

#include <cstdint>

#include "puzzle/board.hpp"

namespace simdts::puzzle {

enum class Heuristic : std::uint8_t {
  kManhattan,
  kLinearConflict,  ///< Manhattan + 2 per linear conflict
};

/// Manhattan distance of tile `t` when sitting at position `pos` (0 for the
/// blank: it does not count toward the heuristic).
[[nodiscard]] int tile_distance(std::uint8_t t, int pos);

/// Sum of tile distances for a whole board.
[[nodiscard]] int manhattan(const Board& board);

/// Change in Manhattan distance when tile `t` slides from `from` to `to`.
[[nodiscard]] inline int manhattan_delta(std::uint8_t t, int from, int to) {
  return tile_distance(t, to) - tile_distance(t, from);
}

/// Manhattan + linear conflict (Hansson, Mayer & Yung): two tiles in their
/// goal row (or column) that must pass each other add 2 moves each pair.
[[nodiscard]] int linear_conflict(const Board& board);

/// Evaluates the chosen heuristic on a board.
[[nodiscard]] int evaluate(const Board& board, Heuristic h);

}  // namespace simdts::puzzle
