// The 15-puzzle as a TreeProblem for IDA*.
//
// Search nodes carry the packed board plus cached blank position, path cost
// g, heuristic value h, and the last blank move (so the inverse move is never
// generated — the standard 15-puzzle branching reduction, giving trees of
// branching factor ~2.13).  With the Manhattan heuristic, h is maintained
// incrementally in O(1) per move.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "puzzle/board.hpp"
#include "puzzle/heuristic.hpp"
#include "search/problem.hpp"

namespace simdts::puzzle {

class FifteenPuzzle {
 public:
  struct Node {
    std::uint64_t board;  ///< packed tiles
    std::uint8_t blank;   ///< blank position, cached
    std::uint8_t g;       ///< moves from the start configuration
    std::uint8_t h;       ///< heuristic value, maintained incrementally
    std::uint8_t last;    ///< last blank move (kNoMove at the root)

    friend bool operator==(const Node&, const Node&) = default;
  };

  explicit FifteenPuzzle(Board start,
                         Heuristic heuristic = Heuristic::kManhattan)
      : start_(start), heuristic_(heuristic) {}

  [[nodiscard]] Node root() const {
    Node n{};
    n.board = start_.packed();
    n.blank = static_cast<std::uint8_t>(start_.blank_position());
    n.g = 0;
    n.h = static_cast<std::uint8_t>(evaluate(start_, heuristic_));
    n.last = kNoMove;
    return n;
  }

  /// Generates children with f = g + h <= bound; prunes the inverse of the
  /// last move; records the minimum pruned f in `next`.  This is the hot
  /// path of every experiment, so moves are applied with direct nibble
  /// arithmetic on the packed board, and children are staged batched: every
  /// move writes through a flat cursor into `out`'s tail (sized once for the
  /// four-move worst case) and the cursor advances by the bound predicate —
  /// one size adjustment per expansion instead of a push_back per child, and
  /// no data-dependent branch on the bound test.
  void expand(const Node& n, search::Bound bound, std::vector<Node>& out,
              search::NextBound& next) const {
    const int blank = n.blank;
    const int row = row_of(blank);
    const int col = col_of(blank);
    const std::uint8_t skip =
        n.last == kNoMove
            ? kNoMove
            : static_cast<std::uint8_t>(inverse(static_cast<Move>(n.last)));

    const std::size_t base = out.size();
    out.resize(base + 4);  // at most four moves
    Node* const dst = out.data() + base;
    std::size_t k = 0;

    auto try_move = [&](Move m, bool legal, int target) {
      if (!legal || static_cast<std::uint8_t>(m) == skip) return;
      const std::uint64_t t = (n.board >> (4 * target)) & 0xF;
      std::uint64_t board = n.board & ~(0xFULL << (4 * target));
      board |= t << (4 * blank);
      Node child{};
      child.board = board;
      child.blank = static_cast<std::uint8_t>(target);
      child.g = static_cast<std::uint8_t>(n.g + 1);
      if (heuristic_ == Heuristic::kManhattan) {
        child.h = static_cast<std::uint8_t>(
            n.h + manhattan_delta(static_cast<std::uint8_t>(t), target, blank));
      } else {
        child.h = static_cast<std::uint8_t>(
            evaluate(Board(board), heuristic_));
      }
      child.last = static_cast<std::uint8_t>(m);
      const auto f = static_cast<search::Bound>(child.g) + child.h;
      const bool take = f <= bound;
      dst[k] = child;
      k += static_cast<std::size_t>(take);
      if (!take) next.observe(f);
    };

    try_move(Move::kUp, row > 0, blank - kSide);
    try_move(Move::kDown, row < kSide - 1, blank + kSide);
    try_move(Move::kLeft, col > 0, blank - 1);
    try_move(Move::kRight, col < kSide - 1, blank + 1);
    out.resize(base + k);
  }

  [[nodiscard]] bool is_goal(const Node& n) const { return n.h == 0; }
  [[nodiscard]] search::Bound f_value(const Node& n) const {
    return static_cast<search::Bound>(n.g) + n.h;
  }

  /// Delta codec (search::DeltaTreeProblem): a child is its parent plus the
  /// blank move that produced it, so compact stacks store one byte per entry
  /// instead of a 16-byte Node.  The move is already cached in Node::last.
  [[nodiscard]] std::uint8_t encode_delta(const Node& /*parent*/,
                                          const Node& child) const {
    return child.last;
  }

  /// Re-applies move `delta` to `n` with exactly the arithmetic of expand()'s
  /// try_move, so the decoded child is bit-identical to the one expand()
  /// emitted (the CompactStack correctness contract).
  [[nodiscard]] Node decode_delta(const Node& n, std::uint8_t delta) const {
    const auto m = static_cast<Move>(delta);
    const int blank = n.blank;
    const int target = blank + move_offset(m);
    const std::uint64_t t = (n.board >> (4 * target)) & 0xF;
    std::uint64_t board = n.board & ~(0xFULL << (4 * target));
    board |= t << (4 * blank);
    Node child{};
    child.board = board;
    child.blank = static_cast<std::uint8_t>(target);
    child.g = static_cast<std::uint8_t>(n.g + 1);
    if (heuristic_ == Heuristic::kManhattan) {
      child.h = static_cast<std::uint8_t>(
          n.h + manhattan_delta(static_cast<std::uint8_t>(t), target, blank));
    } else {
      child.h = static_cast<std::uint8_t>(evaluate(Board(board), heuristic_));
    }
    child.last = delta;
    return child;
  }

  /// Inverse of decode_delta (search::UndoDeltaProblem): reconstructs the
  /// parent from a child in O(1), giving compact stacks constant-time
  /// backtracking.  `parent_delta` restores the parent's own `last` field
  /// (the caller has it from the delta path; never needed for base nodes,
  /// which are stored whole).
  [[nodiscard]] Node undo_delta(const Node& c, std::uint8_t delta,
                                std::uint8_t parent_delta) const {
    const auto m = static_cast<Move>(delta);
    const int pb = c.blank - move_offset(m);  // where the blank came from
    const std::uint64_t t = (c.board >> (4 * pb)) & 0xF;  // the slid tile
    std::uint64_t board = c.board & ~(0xFULL << (4 * pb));
    board |= t << (4 * c.blank);
    Node p{};
    p.board = board;
    p.blank = static_cast<std::uint8_t>(pb);
    p.g = static_cast<std::uint8_t>(c.g - 1);
    if (heuristic_ == Heuristic::kManhattan) {
      p.h = static_cast<std::uint8_t>(
          c.h - manhattan_delta(static_cast<std::uint8_t>(t), c.blank, pb));
    } else {
      p.h = static_cast<std::uint8_t>(evaluate(Board(board), heuristic_));
    }
    p.last = parent_delta;
    return p;
  }

  [[nodiscard]] const Board& start() const { return start_; }
  [[nodiscard]] Heuristic heuristic() const { return heuristic_; }

  /// Reconstructs a Board from a node (for printing and verification).
  [[nodiscard]] static Board board_of(const Node& n) {
    return Board(n.board);
  }

 private:
  /// Displacement of the blank for each move, matching expand()'s targets.
  [[nodiscard]] static constexpr int move_offset(Move m) {
    switch (m) {
      case Move::kUp:
        return -kSide;
      case Move::kDown:
        return kSide;
      case Move::kLeft:
        return -1;
      case Move::kRight:
        return 1;
    }
    return 0;
  }

  Board start_;
  Heuristic heuristic_;
};

static_assert(sizeof(FifteenPuzzle::Node) == 16,
              "puzzle nodes should stay two words");
static_assert(search::TreeProblem<FifteenPuzzle>);
static_assert(search::DeltaTreeProblem<FifteenPuzzle>);
static_assert(search::UndoDeltaProblem<FifteenPuzzle>);

}  // namespace simdts::puzzle
