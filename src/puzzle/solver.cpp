#include "puzzle/solver.hpp"

#include <string>

#include "common/error.hpp"

namespace simdts::puzzle {

namespace {

struct Context {
  Heuristic heuristic;
  std::uint64_t expanded = 0;
  std::uint64_t budget = 0;  // 0 = unlimited
  std::vector<Move> path;
  bool aborted = false;
};

constexpr int kFound = -1;

/// Returns kFound when a goal is reached at f <= bound; otherwise the
/// minimum f-value that exceeded the bound below this node.
int search(Context& ctx, const Board& board, int blank, int g, int h,
           int bound, std::uint8_t last) {
  const int f = g + h;
  if (f > bound) return f;
  if (h == 0) return kFound;
  ++ctx.expanded;
  if (ctx.budget != 0 && ctx.expanded > ctx.budget) {
    ctx.aborted = true;
    return bound + 2;  // unwind; value is ignored once aborted
  }
  int min_over = INT32_MAX;
  for (int mi = 0; mi < 4; ++mi) {
    const auto m = static_cast<Move>(mi);
    if (last != kNoMove && m == inverse(static_cast<Move>(last))) continue;
    int next_blank = blank;
    std::uint8_t moved = 0;
    const auto next = board.apply(m, next_blank, &moved);
    if (!next.has_value()) continue;
    int next_h = h;
    if (ctx.heuristic == Heuristic::kManhattan) {
      next_h += manhattan_delta(moved, next_blank, blank);
    } else {
      next_h = evaluate(*next, ctx.heuristic);
    }
    ctx.path.push_back(m);
    const int t = search(ctx, *next, next_blank, g + 1, next_h, bound,
                         static_cast<std::uint8_t>(m));
    if (t == kFound) return kFound;
    if (ctx.aborted) return bound + 2;
    ctx.path.pop_back();
    if (t < min_over) min_over = t;
  }
  return min_over;
}

}  // namespace

std::optional<Solution> solve(const Board& start, Heuristic heuristic,
                              std::uint64_t max_expanded) {
  if (!start.solvable()) return std::nullopt;
  Context ctx;
  ctx.heuristic = heuristic;
  ctx.budget = max_expanded;
  const int h0 = evaluate(start, heuristic);
  const int blank = start.blank_position();
  int bound = h0;
  for (;;) {
    ctx.path.clear();
    const int t = search(ctx, start, blank, 0, h0, bound, kNoMove);
    if (t == kFound) {
      Solution s;
      s.moves = ctx.path;
      s.nodes_expanded = ctx.expanded;
      return s;
    }
    if (ctx.aborted || t == INT32_MAX) return std::nullopt;
    bound = t;
  }
}

Board replay(const Board& start, const std::vector<Move>& moves) {
  Board board = start;
  int blank = board.blank_position();
  for (const Move m : moves) {
    const auto next = board.apply(m, blank);
    if (!next.has_value()) {
      throw ConfigError("replay: illegal move in sequence",
                        "move=" + std::to_string(static_cast<int>(m)));
    }
    board = *next;
  }
  return board;
}

}  // namespace simdts::puzzle
