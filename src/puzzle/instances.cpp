#include "puzzle/instances.hpp"

#include <vector>

namespace simdts::puzzle {

namespace {

// Korf (1985), "Depth-First Iterative-Deepening: An Optimal Admissible Tree
// Search", Table 2, instances 1-3 (position-major, 0 = blank).
constexpr NamedInstance kKorf[] = {
    {"korf-01",
     {14, 13, 15, 7, 11, 12, 9, 5, 6, 0, 2, 1, 4, 8, 10, 3},
     57},
    {"korf-02",
     {13, 5, 4, 10, 9, 12, 8, 14, 2, 3, 7, 1, 0, 15, 11, 6},
     55},
    {"korf-03",
     {14, 7, 8, 2, 13, 11, 10, 4, 9, 12, 5, 0, 3, 6, 1, 15},
     59},
};

constexpr const char* kSnakeNames[] = {
    "snake-1", "snake-2", "snake-3", "snake-4",  "snake-5",  "snake-6",
    "snake-7", "snake-8", "snake-9", "snake-10", "snake-11", "snake-12",
};

// Easy instances: slide the blank along a self-avoiding "snake" path of k
// cells.  Every move then displaces a distinct tile by exactly one cell, so
// the Manhattan heuristic of the result equals k and the inverse walk solves
// it in k moves — the optimal length is exactly k by construction.
std::vector<NamedInstance> make_easy() {
  constexpr Move kSnake[] = {
      Move::kRight, Move::kRight, Move::kRight,  // across row 0
      Move::kDown,                               // to row 1
      Move::kLeft, Move::kLeft, Move::kLeft,     // across row 1
      Move::kDown,                               // to row 2
      Move::kRight, Move::kRight, Move::kRight,  // across row 2
      Move::kDown,                               // to row 3
  };
  static_assert(std::size(kSnake) == std::size(kSnakeNames));
  std::vector<NamedInstance> out;
  out.reserve(std::size(kSnake));
  Board board = Board::goal();
  int blank = 0;
  for (std::size_t k = 0; k < std::size(kSnake); ++k) {
    board = *board.apply(kSnake[k], blank);
    out.push_back(NamedInstance{kSnakeNames[k], board.tiles(),
                                static_cast<search::Bound>(k + 1)});
  }
  return out;
}

}  // namespace

std::span<const NamedInstance> korf_instances() { return kKorf; }

std::span<const NamedInstance> easy_instances() {
  static const std::vector<NamedInstance> kEasy = make_easy();
  return kEasy;
}

}  // namespace simdts::puzzle
