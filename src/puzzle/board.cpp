#include "puzzle/board.hpp"

#include <sstream>

#include "common/error.hpp"

namespace simdts::puzzle {

namespace {

/// splitmix64 — small, high-quality deterministic generator for scrambles.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Board Board::from_tiles(const std::array<std::uint8_t, kCells>& tiles) {
  std::uint32_t seen = 0;
  std::uint64_t packed = 0;
  for (int pos = 0; pos < kCells; ++pos) {
    const std::uint8_t t = tiles[static_cast<std::size_t>(pos)];
    if (t >= kCells || (seen & (1u << t)) != 0) {
      throw ConfigError("Board: tiles must be a permutation of 0..15",
                        "tile=" + std::to_string(t) + " pos=" +
                            std::to_string(pos));
    }
    seen |= 1u << t;
    packed |= static_cast<std::uint64_t>(t) << (4 * pos);
  }
  return Board(packed);
}

int Board::blank_position() const {
  for (int pos = 0; pos < kCells; ++pos) {
    if (tile(pos) == 0) return pos;
  }
  throw InvariantError("Board: no blank tile", to_string());
}

std::array<std::uint8_t, kCells> Board::tiles() const {
  std::array<std::uint8_t, kCells> out{};
  for (int pos = 0; pos < kCells; ++pos) {
    out[static_cast<std::size_t>(pos)] = tile(pos);
  }
  return out;
}

std::optional<Board> Board::apply(Move m, int& blank,
                                  std::uint8_t* moved_tile) const {
  int target = -1;
  switch (m) {
    case Move::kUp:
      if (row_of(blank) == 0) return std::nullopt;
      target = blank - kSide;
      break;
    case Move::kDown:
      if (row_of(blank) == kSide - 1) return std::nullopt;
      target = blank + kSide;
      break;
    case Move::kLeft:
      if (col_of(blank) == 0) return std::nullopt;
      target = blank - 1;
      break;
    case Move::kRight:
      if (col_of(blank) == kSide - 1) return std::nullopt;
      target = blank + 1;
      break;
  }
  const std::uint64_t t = (packed_ >> (4 * target)) & 0xF;
  if (moved_tile != nullptr) *moved_tile = static_cast<std::uint8_t>(t);
  // Clear the moved tile's nibble and write it at the old blank position
  // (the blank nibble is 0, so only one nibble needs setting).
  std::uint64_t packed = packed_ & ~(0xFULL << (4 * target));
  packed |= t << (4 * blank);
  blank = target;
  return Board(packed);
}

int Board::permutation_parity() const {
  // Parity via cycle decomposition of position -> tile.
  std::array<bool, kCells> visited{};
  int transpositions = 0;
  for (int start = 0; start < kCells; ++start) {
    if (visited[static_cast<std::size_t>(start)]) continue;
    int len = 0;
    int pos = start;
    while (!visited[static_cast<std::size_t>(pos)]) {
      visited[static_cast<std::size_t>(pos)] = true;
      pos = tile(pos);
      ++len;
    }
    transpositions += len - 1;
  }
  return transpositions % 2;
}

bool Board::solvable() const {
  const int blank = blank_position();
  const int blank_dist = manhattan_between(blank, 0);
  return permutation_parity() == blank_dist % 2;
}

std::string Board::to_string() const {
  std::ostringstream os;
  for (int r = 0; r < kSide; ++r) {
    for (int c = 0; c < kSide; ++c) {
      const int t = tile(r * kSide + c);
      if (c > 0) os << ' ';
      if (t == 0) {
        os << "  .";
      } else {
        os << (t < 10 ? "  " : " ") << t;
      }
    }
    os << '\n';
  }
  return os.str();
}

Board random_walk(std::uint64_t seed, int steps) {
  std::uint64_t state = seed ^ 0xD1B54A32D192ED03ULL;
  Board board = Board::goal();
  int blank = 0;
  std::uint8_t last = kNoMove;
  int done = 0;
  while (done < steps) {
    const auto m = static_cast<Move>(splitmix64(state) & 3);
    if (last != kNoMove && m == inverse(static_cast<Move>(last))) continue;
    int b = blank;
    const auto next = board.apply(m, b);
    if (!next.has_value()) continue;
    board = *next;
    blank = b;
    last = static_cast<std::uint8_t>(m);
    ++done;
  }
  return board;
}

}  // namespace simdts::puzzle
