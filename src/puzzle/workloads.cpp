#include "puzzle/workloads.hpp"

namespace simdts::puzzle {

namespace {

// PINNED BY CALIBRATION (tools/calibrate_puzzle): instances are seeded
// random walks from the goal; the serial_* columns were measured by serial
// IDA* and are re-verified by the test suite (small instances always, the
// large ones when SIMDTS_HEAVY_TESTS is set).
//
// The paper_w column is the paper's Table 2 / Table 5 problem size each
// instance stands in for; the measured totals are within ~10% of them.
constexpr PuzzleWorkload kPaper[] = {
    {"w-0.9M", 505006, 90, 941852, 1028563, 803989, 40, 1},
    {"w-3.1M", 303011, 56, 3055171, 3111530, 2552876, 44, 16},
    {"w-6.1M", 404012, 72, 6073623, 6307354, 5322940, 50, 2},
    {"w-16.1M", 303018, 56, 16110463, 16697177, 12654358, 40, 6},
};

constexpr PuzzleWorkload kTable5 = {
    "w-2.1M", 202650, 120, 2067137, 2037539, 1672184, 44, 2};

constexpr PuzzleWorkload kTest[] = {
    {"t-60", 303015, 56, 0, 61, 60, 24, 1},
    {"t-4k", 505020, 90, 0, 4066, 3338, 30, 1},
    {"t-21k", 505021, 90, 0, 21016, 17005, 36, 6},
    {"t-94k", 303021, 56, 0, 94324, 74131, 34, 3},
    {"t-326k", 303006, 56, 0, 325837, 267413, 38, 4},
};

}  // namespace

std::span<const PuzzleWorkload> paper_workloads() { return kPaper; }

const PuzzleWorkload& table5_workload() { return kTable5; }

std::span<const PuzzleWorkload> test_workloads() { return kTest; }

}  // namespace simdts::puzzle
