// The 15-puzzle board.
//
// A 4x4 tray of 15 numbered tiles and one blank; a move slides a tile
// adjacent to the blank into the blank (equivalently: the blank moves
// up/down/left/right).  Goal configuration follows Korf's convention — blank
// in the upper-left corner, tiles 1..15 in row-major order.
//
// The board is packed into a single 64-bit word, one nibble per position
// (position 0 = upper-left, row-major), which makes copies free and the
// per-PE work stacks compact: 16 tiles x 4 bits = exactly 64 bits.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace simdts::puzzle {

/// Side length and cell count of the tray.
inline constexpr int kSide = 4;
inline constexpr int kCells = 16;

/// A move is the direction the *blank* travels.
enum class Move : std::uint8_t { kUp = 0, kDown = 1, kLeft = 2, kRight = 3 };
inline constexpr std::uint8_t kNoMove = 4;

/// The opposite direction (used to forbid immediately undoing a move).
[[nodiscard]] constexpr Move inverse(Move m) {
  switch (m) {
    case Move::kUp:
      return Move::kDown;
    case Move::kDown:
      return Move::kUp;
    case Move::kLeft:
      return Move::kRight;
    case Move::kRight:
      return Move::kLeft;
  }
  return Move::kUp;
}

class Board {
 public:
  constexpr Board() = default;
  constexpr explicit Board(std::uint64_t packed) : packed_(packed) {}

  /// Builds a board from 16 tile values (position-major; value 0 = blank).
  /// Throws simdts::ConfigError unless the values are a permutation of
  /// 0..15.
  static Board from_tiles(const std::array<std::uint8_t, kCells>& tiles);

  /// The goal board: blank at position 0, tiles 1..15 in order.
  static constexpr Board goal() {
    std::uint64_t packed = 0;
    for (int pos = 1; pos < kCells; ++pos) {
      packed |= static_cast<std::uint64_t>(pos) << (4 * pos);
    }
    return Board(packed);
  }

  [[nodiscard]] constexpr std::uint64_t packed() const { return packed_; }

  /// Tile value at a position (0 = blank).
  [[nodiscard]] constexpr std::uint8_t tile(int pos) const {
    return static_cast<std::uint8_t>((packed_ >> (4 * pos)) & 0xF);
  }

  /// Position of the blank (linear scan; cache it in search nodes instead).
  [[nodiscard]] int blank_position() const;

  [[nodiscard]] std::array<std::uint8_t, kCells> tiles() const;

  /// Applies a blank move; `blank` is the current blank position.  Returns
  /// the new board, or nullopt if the move walks off the tray.  On success
  /// `blank` is updated to the new blank position and `moved_tile` (if
  /// non-null) receives the tile that slid.
  [[nodiscard]] std::optional<Board> apply(Move m, int& blank,
                                           std::uint8_t* moved_tile
                                           = nullptr) const;

  /// True when this configuration is reachable from the goal.  Solvability
  /// is the conserved parity invariant: each move is a transposition (flips
  /// permutation parity) and changes the blank's Manhattan distance from its
  /// home corner by one, so permutation parity must equal blank-distance
  /// parity.
  [[nodiscard]] bool solvable() const;

  /// Parity (0/1) of the permutation position -> tile.
  [[nodiscard]] int permutation_parity() const;

  /// Multi-line ASCII rendering, for examples and diagnostics.
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Board&, const Board&) = default;

 private:
  std::uint64_t packed_ = 0;
};

/// Row / column of a linear position.
[[nodiscard]] constexpr int row_of(int pos) { return pos / kSide; }
[[nodiscard]] constexpr int col_of(int pos) { return pos % kSide; }

/// Manhattan distance between two positions on the tray.
[[nodiscard]] constexpr int manhattan_between(int a, int b) {
  const int dr = row_of(a) - row_of(b);
  const int dc = col_of(a) - col_of(b);
  return (dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc);
}

/// Scrambles the goal board with `steps` random blank moves that never
/// immediately undo each other (deterministic in `seed`).  The result is
/// always solvable, with optimal solution length of the same parity as — and
/// at most — the number of effective steps.
[[nodiscard]] Board random_walk(std::uint64_t seed, int steps);

}  // namespace simdts::puzzle
