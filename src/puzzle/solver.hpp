// A user-facing 15-puzzle solver: serial recursive IDA* that returns the
// actual optimal move sequence (the parallel engine counts and verifies
// trees; this is the "give me the answer" API for applications).
#pragma once

#include <optional>
#include <vector>

#include "puzzle/board.hpp"
#include "puzzle/heuristic.hpp"

namespace simdts::puzzle {

struct Solution {
  std::vector<Move> moves;         ///< blank moves transforming start -> goal
  std::uint64_t nodes_expanded = 0;
  int length() const { return static_cast<int>(moves.size()); }
};

/// Finds an optimal solution with IDA*.  Returns nullopt for unsolvable
/// boards (checked up front via the parity invariant) or when
/// `max_expanded` (if non-zero) is exceeded.
[[nodiscard]] std::optional<Solution> solve(
    const Board& start, Heuristic heuristic = Heuristic::kManhattan,
    std::uint64_t max_expanded = 0);

/// Applies a move sequence to a board (for verifying solutions).
[[nodiscard]] Board replay(const Board& start, const std::vector<Move>& moves);

}  // namespace simdts::puzzle
