// Named 15-puzzle instances.
//
// The paper drew its instances from Korf (1985).  We embed the first three
// instances of Korf's classic 100-instance set (the most widely reproduced
// ones) for reference and cross-checking; the experiment workloads themselves
// are seeded random-walk instances calibrated so that their serial IDA* tree
// sizes W match the four sizes reported in the paper's tables (see
// puzzle/workloads.hpp) — that is the property the experiments actually
// depend on.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "puzzle/board.hpp"
#include "search/problem.hpp"

namespace simdts::puzzle {

struct NamedInstance {
  const char* name;
  std::array<std::uint8_t, kCells> tiles;  ///< position-major, 0 = blank
  search::Bound optimal;                   ///< known optimal solution length

  [[nodiscard]] Board board() const { return Board::from_tiles(tiles); }
};

/// Korf (1985) instances 1-3 with their published optimal lengths.
[[nodiscard]] std::span<const NamedInstance> korf_instances();

/// Small hand-checkable instances (a few moves from the goal) whose optimal
/// lengths the test suite verifies exactly.
[[nodiscard]] std::span<const NamedInstance> easy_instances();

}  // namespace simdts::puzzle
