#include "service/service.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "lb/config.hpp"
#include "lb/engine.hpp"
#include "puzzle/fifteen.hpp"
#include "search/problem.hpp"
#include "simd/machine.hpp"
#include "synthetic/tree.hpp"

namespace simdts::service {

namespace {

/// Outcome of one executed solve (leader slot), before response assembly.
struct ExecOutcome {
  ResponseStatus status = ResponseStatus::kOk;
  std::uint64_t nodes = 0;
  std::uint64_t cycles = 0;
  std::uint64_t goals = 0;
  std::string note;
};

lb::SchemeConfig scheme_config(SchemeKind s, double x) {
  switch (s) {
    case SchemeKind::kNgpStatic: return lb::ngp_static(x);
    case SchemeKind::kGpStatic: return lb::gp_static(x);
    case SchemeKind::kNgpDp: return lb::ngp_dp();
    case SchemeKind::kGpDp: return lb::gp_dp();
    case SchemeKind::kNgpDk: return lb::ngp_dk();
    case SchemeKind::kGpDk: return lb::gp_dk();
  }
  throw InvariantError("unhandled scheme kind", "scheme_config");
}

/// Iterative deepening under a total simulated-cycle budget.  The engine
/// watchdog bounds each iteration by the *remaining* budget, so the deadline
/// is enforced mid-iteration too; a TimeoutError becomes a best-so-far
/// kBudgetExhausted outcome, never an unbounded run.
template <typename P>
ExecOutcome drive_engine(const P& problem, const Request& r,
                         std::uint32_t eff_p, SolveMode eff_mode,
                         const lb::SchemeConfig& cfg) {
  ExecOutcome out;
  simd::Machine machine(eff_p, simd::cm2_cost_model());
  lb::Engine<P> engine(problem, machine, cfg);
  search::Bound bound = problem.f_value(problem.root());
  for (;;) {
    if (r.cycle_budget != 0) {
      if (out.cycles >= r.cycle_budget) {
        out.status = ResponseStatus::kBudgetExhausted;
        std::ostringstream os;
        os << "cycle budget exhausted between iterations [budget="
           << r.cycle_budget << "]";
        out.note = os.str();
        break;
      }
      engine.set_cycle_budget(r.cycle_budget - out.cycles);
    }
    try {
      const lb::IterationStats it = eff_mode == SolveMode::kFirstSolution
                                        ? engine.run_first_solution(bound)
                                        : engine.run_iteration(bound);
      out.nodes += it.nodes_expanded;
      out.cycles += it.expand_cycles;
      out.goals += it.goals_found;
      if (it.goals_found > 0) break;
      if (it.next_bound == search::kUnbounded) break;  // space exhausted
      bound = it.next_bound;
    } catch (const TimeoutError& e) {
      // Partial iteration: the cycle count at the throw is exact; goals
      // found before the watchdog fired are still reported (best-so-far).
      out.cycles += e.cycles();
      out.goals += engine.goal_nodes().size();
      out.status = ResponseStatus::kBudgetExhausted;
      out.note = e.what();
      break;
    }
  }
  return out;
}

ExecOutcome solve_one(const Request& r, std::uint32_t eff_p,
                      SolveMode eff_mode, double static_x) {
  const lb::SchemeConfig cfg = scheme_config(r.scheme, static_x);
  switch (r.problem) {
    case ProblemKind::kSyntheticTree: {
      const synthetic::Tree tree(
          synthetic::Params{r.instance_seed, 4, 0.395,
                            static_cast<std::uint16_t>(r.instance_size)});
      return drive_engine(tree, r, eff_p, eff_mode, cfg);
    }
    case ProblemKind::kFifteenPuzzle: {
      const puzzle::FifteenPuzzle prob(puzzle::random_walk(
          r.instance_seed, static_cast<int>(r.instance_size)));
      return drive_engine(prob, r, eff_p, eff_mode, cfg);
    }
  }
  throw InvariantError("unhandled problem kind", "solve_one");
}

void append_note(std::string& note, const std::string& extra) {
  if (extra.empty()) return;
  if (!note.empty()) note += "; ";
  note += extra;
}

}  // namespace

std::string encode_cache_payload(std::uint64_t nodes_expanded,
                                 std::uint64_t expand_cycles,
                                 std::uint64_t goals_found) {
  std::ostringstream os;
  os << nodes_expanded << ' ' << expand_cycles << ' ' << goals_found;
  return os.str();
}

bool decode_cache_payload(const std::string& payload,
                          std::uint64_t& nodes_expanded,
                          std::uint64_t& expand_cycles,
                          std::uint64_t& goals_found) {
  std::istringstream is(payload);
  std::uint64_t n = 0;
  std::uint64_t c = 0;
  std::uint64_t g = 0;
  if (!(is >> n >> c >> g)) return false;
  std::string rest;
  if (is >> rest) return false;  // trailing junk
  nodes_expanded = n;
  expand_cycles = c;
  goals_found = g;
  return true;
}

void ServiceConfig::validate() const {
  admission.validate();
  if (retry.max_attempts == 0) {
    throw ConfigError("service retry policy needs at least one attempt",
                      "max_attempts=0");
  }
  if (!(static_x > 0.0) || static_x > 1.0) {
    std::ostringstream ctx;
    ctx << "static_x=" << static_x;
    throw ConfigError("service static_x must be in (0, 1]", ctx.str());
  }
}

std::string ServiceCounters::summary() const {
  std::ostringstream os;
  os << "admitted=" << admitted << " ok=" << ok << " cache_hits=" << cache_hits
     << " coalesced=" << coalesced << " budget_exhausted=" << budget_exhausted
     << " shed=" << shed << " rejected=" << rejected << " failed=" << failed
     << " degraded=" << degraded << " retries=" << retries
     << " cache_corruptions=" << cache_corruptions;
  return os.str();
}

SolveService::SolveService(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  if (!cfg_.cache_path.empty()) cache_.emplace(cfg_.cache_path);
}

void SolveService::arm_faults(fault::ServiceFaultPlan plan) {
  faults_ = std::move(plan);
}

std::vector<Response> SolveService::run_trace(
    const std::vector<Request>& trace) {
  faults_.validate(trace.size());
  for (const Request& r : trace) validate(r);
  counters_ = ServiceCounters{};

  const AdmissionController admission(cfg_.admission);
  const std::vector<AdmissionDecision> decisions =
      admission.plan(trace, faults_);

  // --- pass 2: cache lookups + in-flight dedup (serial, trace order) ---
  struct Slot {
    std::size_t trace_index;
    std::uint64_t key;
    std::uint32_t eff_p;
    SolveMode eff_mode;
  };
  std::vector<Slot> slots;
  std::vector<Response> resp(trace.size());
  // Per request: the execution slot serving its key (-1 = settled already).
  std::vector<std::ptrdiff_t> exec_slot(trace.size(), -1);
  std::vector<std::uint64_t> keys(trace.size(), 0);
  std::vector<bool> keyed(trace.size(), false);
  std::map<std::uint64_t, std::size_t> pending;  // key -> leader slot

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Request& r = trace[i];
    const AdmissionDecision& d = decisions[i];
    Response& out = resp[i];
    out.request_id = r.id;
    out.tenant = r.tenant;
    out.queue_delay_ticks = d.queue_delay_ticks;
    if (d.outcome == AdmissionOutcome::kReject) {
      out.status = ResponseStatus::kRejected;
      out.note = d.note;
      continue;
    }
    if (d.outcome == AdmissionOutcome::kShed) {
      out.status = ResponseStatus::kShed;
      out.note = d.note;
      continue;
    }
    std::uint32_t eff_p = r.p;
    SolveMode eff_mode = r.mode;
    if (d.downshift_p) {
      eff_p = std::max(cfg_.admission.min_p, r.p / 2);
      out.downshifted_p = eff_p != r.p;
    }
    if (d.force_first_solution && r.mode == SolveMode::kExhaustive) {
      eff_mode = SolveMode::kFirstSolution;
      out.first_solution_forced = true;
    }
    out.executed_p = eff_p;
    const std::uint64_t key = canonical_key(r, eff_p, eff_mode);
    keys[i] = key;
    keyed[i] = true;
    if (cache_) {
      std::string diag;
      if (const auto payload = cache_->lookup(key, &diag)) {
        std::uint64_t nodes = 0;
        std::uint64_t cycles = 0;
        std::uint64_t goals = 0;
        if (decode_cache_payload(*payload, nodes, cycles, goals)) {
          out.status = ResponseStatus::kCacheHit;
          out.nodes_expanded = nodes;
          out.expand_cycles = cycles;
          out.goals_found = goals;
          continue;
        }
        // Verified but undecodable (foreign writer): treat as a miss.
        append_note(out.note, "cache payload undecodable; re-solving");
      }
      if (!diag.empty()) {
        ++counters_.cache_corruptions;
        append_note(out.note, diag);
      }
    }
    if (const auto it = pending.find(key); it != pending.end()) {
      exec_slot[i] = static_cast<std::ptrdiff_t>(it->second);
      continue;  // follower: coalesces onto the leader's result
    }
    exec_slot[i] = static_cast<std::ptrdiff_t>(slots.size());
    pending[key] = slots.size();
    slots.push_back(Slot{i, key, eff_p, eff_mode});
  }

  // --- pass 3: parallel execution of leaders ---
  std::vector<ExecOutcome> outcomes(slots.size());
  // Per-slot attempt counter for the scripted crashes.  Safe without a lock:
  // run_tasks retries a slot inside the worker that owns it.
  std::vector<std::uint32_t> crash_seen(slots.size(), 0);
  runtime::SweepRunner runner(cfg_.threads);
  runtime::RetryPolicy exec_policy = cfg_.retry;
  exec_policy.backoff_ms = 0;  // backoff is charged virtually, never slept
  const std::vector<runtime::TaskReport> reports = runtime::run_tasks(
      runner, slots.size(),
      [&](std::size_t s) {
        const Slot& sl = slots[s];
        const Request& r = trace[sl.trace_index];
        const std::uint32_t scripted =
            faults_.crash_attempts_for(sl.trace_index);
        if (++crash_seen[s] <= scripted) {
          std::ostringstream os;
          os << "scripted engine crash [request=" << r.id
             << " attempt=" << crash_seen[s] << " of " << scripted << "]";
          throw TransientError(os.str());
        }
        outcomes[s] = solve_one(r, sl.eff_p, sl.eff_mode, cfg_.static_x);
      },
      exec_policy);

  // --- pass 4: response assembly + cache writes (serial, trace order) ---
  for (std::size_t i = 0; i < trace.size(); ++i) {
    Response& out = resp[i];
    if (exec_slot[i] >= 0) {
      const auto s = static_cast<std::size_t>(exec_slot[i]);
      const Slot& sl = slots[s];
      const runtime::TaskReport& rep = reports[s];
      const ExecOutcome& oc = outcomes[s];
      const bool leader = sl.trace_index == i;
      if (leader) {
        out.attempts = rep.attempts;
        for (std::uint32_t k = 1; k < rep.attempts; ++k) {
          out.backoff_ms_total += runtime::backoff_delay_ms(cfg_.retry, k, s);
        }
        counters_.retries += rep.attempts - 1;
      }
      switch (rep.status) {
        case runtime::TaskStatus::kOk: {
          out.status = leader ? oc.status : ResponseStatus::kCoalesced;
          out.nodes_expanded = oc.nodes;
          out.expand_cycles = oc.cycles;
          out.goals_found = oc.goals;
          if (leader) {
            append_note(out.note, oc.note);
          } else {
            std::ostringstream os;
            os << "coalesced with request " << trace[sl.trace_index].id << " ("
               << to_string(oc.status) << ")";
            append_note(out.note, os.str());
          }
          break;
        }
        case runtime::TaskStatus::kTransient: {
          out.status = ResponseStatus::kFailed;
          std::ostringstream os;
          os << (leader ? "retries exhausted: "
                        : "coalesced leader's retries exhausted: ")
             << rep.message;
          append_note(out.note, os.str());
          break;
        }
        case runtime::TaskStatus::kTimeout: {
          // drive_engine converts watchdog timeouts itself; this arm is
          // defensive, for a timeout escaping a future execution path.
          out.status = ResponseStatus::kBudgetExhausted;
          append_note(out.note, rep.message);
          break;
        }
        case runtime::TaskStatus::kFailed: {
          out.status = ResponseStatus::kFailed;
          append_note(out.note,
                      leader ? rep.message
                             : "coalesced leader failed: " + rep.message);
          break;
        }
      }
      if (leader && cache_ && rep.status == runtime::TaskStatus::kOk &&
          oc.status == ResponseStatus::kOk) {
        cache_->insert(sl.key,
                       encode_cache_payload(oc.nodes, oc.cycles, oc.goals));
      }
    }
    // Scripted cache corruption fires after the request's cache interaction,
    // keyed to its trace position; it damages whatever entry currently holds
    // the request's content address (a no-op when none exists yet).
    if (cache_ && keyed[i]) {
      for (const std::uint32_t b : faults_.corrupt_bytes_for(i)) {
        cache_->corrupt_payload_byte(keys[i], b);
      }
    }
  }

  // --- accounting ---
  for (const Response& r : resp) {
    switch (r.status) {
      case ResponseStatus::kOk: ++counters_.ok; break;
      case ResponseStatus::kCacheHit: ++counters_.cache_hits; break;
      case ResponseStatus::kCoalesced: ++counters_.coalesced; break;
      case ResponseStatus::kBudgetExhausted:
        ++counters_.budget_exhausted;
        break;
      case ResponseStatus::kShed: ++counters_.shed; break;
      case ResponseStatus::kRejected: ++counters_.rejected; break;
      case ResponseStatus::kFailed: ++counters_.failed; break;
    }
    if (r.downshifted_p || r.first_solution_forced) ++counters_.degraded;
  }
  counters_.admitted =
      trace.size() - counters_.shed - counters_.rejected;
  return resp;
}

std::string SolveService::response_log(const std::vector<Response>& responses) {
  std::string log;
  for (const Response& r : responses) {
    log += encode_response(r);
    log += '\n';
  }
  return log;
}

}  // namespace simdts::service
