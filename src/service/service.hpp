// SolveService: the robust front door of the library (docs/service.md).
//
// run_trace() turns an arrival-ordered vector of Requests into one Response
// per request through four deterministic passes:
//
//   1. admission (serial): AdmissionController replays the trace on its
//      virtual clock and decides admit / degrade / shed / reject per
//      request.
//   2. cache + dedup pre-pass (serial, trace order): each admitted request
//      does a verified read of the result cache under its effective
//      parameters; hits answer immediately, corrupt entries become misses
//      with a recorded diagnostic.  The first miss of each canonical key
//      becomes that key's *leader*; later identical requests coalesce onto
//      it instead of solving twice.
//   3. execution (parallel): leaders run on a bounded engine pool via
//      runtime::run_tasks into slot-indexed outcomes.  Scripted
//      kEngineCrash faults throw simdts::TransientError on the leading
//      attempts; run_tasks retries up to the policy limit.  Deadlines are
//      simulated-cycle budgets enforced by the engine watchdog — a
//      TimeoutError is converted to a kBudgetExhausted response carrying
//      best-so-far stats, never a hang.  Backoff is charged on the virtual
//      clock from the pure runtime::backoff_delay_ms schedule; the service
//      never sleeps host time.
//   4. accounting post-pass (serial, trace order): responses are assembled
//      from the slot-indexed outcomes, successful leader results are
//      journaled into the cache, and scripted kCacheCorrupt faults are
//      applied — all serially, so the cache file and counters are replay-
//      identical too.
//
// Determinism contract: for a fixed (config, trace, fault plan),
// response_log() is byte-identical across host thread counts and across
// replays.  Every request is accounted for in exactly one terminal status.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "fault/service_fault.hpp"
#include "runtime/sweep.hpp"
#include "service/admission.hpp"
#include "service/cache.hpp"
#include "service/request.hpp"

namespace simdts::service {

struct ServiceConfig {
  AdmissionConfig admission{};
  /// Retry schedule for transient (scripted-crash) failures.  backoff_ms
  /// feeds the *virtual* backoff accounting via backoff_delay_ms(); the
  /// execution pool itself runs with host sleeping disabled.
  runtime::RetryPolicy retry{3, 8, 0x5EEDBACCULL};
  /// Result-cache journal path; empty disables the cache entirely.
  std::filesystem::path cache_path;
  /// Host threads for the execution pass (0 = sweep_threads()).  Response
  /// logs do not depend on this — that is the point.
  unsigned threads = 0;
  /// Static threshold x for the S^x schemes.
  double static_x = 0.85;

  void validate() const;
};

/// Aggregate accounting for one run_trace() call.  Deterministic, so CI
/// soaks pin these against goldens.
struct ServiceCounters {
  std::uint64_t admitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;           ///< downshifted P or forced mode
  std::uint64_t retries = 0;            ///< extra attempts beyond the first
  std::uint64_t cache_corruptions = 0;  ///< corrupt entries caught on read

  /// One canonical `k=v` line (golden-file friendly).
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const ServiceCounters&,
                         const ServiceCounters&) = default;
};

class SolveService {
 public:
  explicit SolveService(ServiceConfig cfg);

  /// Arms a service fault plan for subsequent run_trace() calls (validated
  /// against each trace); an empty plan disarms.
  void arm_faults(fault::ServiceFaultPlan plan);

  /// Processes a whole arrival-ordered trace; returns one response per
  /// request, trace-indexed.  Counters reset per call.  The result cache
  /// persists across calls (and across services sharing a journal path).
  [[nodiscard]] std::vector<Response> run_trace(
      const std::vector<Request>& trace);

  [[nodiscard]] const ServiceCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

  /// The canonical response log: encode_response() per request, one line
  /// each, in trace order.
  [[nodiscard]] static std::string response_log(
      const std::vector<Response>& responses);

 private:
  ServiceConfig cfg_;
  fault::ServiceFaultPlan faults_;
  std::optional<ResultCache> cache_;
  ServiceCounters counters_;
};

/// Payload codec for cached results: `<nodes> <cycles> <goals>` in decimal.
[[nodiscard]] std::string encode_cache_payload(std::uint64_t nodes_expanded,
                                               std::uint64_t expand_cycles,
                                               std::uint64_t goals_found);

/// False (out untouched) on any malformed payload — a decode failure is
/// treated as a miss, same as a checksum failure.
[[nodiscard]] bool decode_cache_payload(const std::string& payload,
                                        std::uint64_t& nodes_expanded,
                                        std::uint64_t& expand_cycles,
                                        std::uint64_t& goals_found);

}  // namespace simdts::service
