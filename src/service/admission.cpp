#include "service/admission.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace simdts::service {

void AdmissionConfig::validate() const {
  std::ostringstream ctx;
  ctx << "engines=" << engines << " queue_capacity=" << queue_capacity
      << " tenant_quota=" << tenant_quota
      << " cycles_per_tick=" << cycles_per_tick << " min_p=" << min_p;
  if (engines == 0 || queue_capacity == 0 || tenant_quota == 0 ||
      cycles_per_tick == 0) {
    throw ConfigError(
        "admission config bounds must all be positive", ctx.str());
  }
  if (min_p < 2 || (min_p & (min_p - 1)) != 0) {
    throw ConfigError("admission min_p must be a power of two >= 2",
                      ctx.str());
  }
}

AdmissionController::AdmissionController(AdmissionConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

// SIMDLINT-REGION(serial)
std::vector<AdmissionDecision> AdmissionController::plan(
    const std::vector<Request>& trace,
    const fault::ServiceFaultPlan& faults) const {
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].arrival_tick < trace[i - 1].arrival_tick) {
      std::ostringstream ctx;
      ctx << "request=" << trace[i].id << " position=" << i
          << " arrival=" << trace[i].arrival_tick
          << " previous=" << trace[i - 1].arrival_tick;
      throw ConfigError("trace must be sorted by nondecreasing arrival_tick",
                        ctx.str());
    }
  }

  std::vector<AdmissionDecision> out(trace.size());
  struct Running {
    std::uint64_t finish;
    std::uint32_t tenant;
  };
  std::vector<Running> running;
  std::deque<std::size_t> queue;         // trace indices, FIFO
  std::map<std::uint32_t, std::uint32_t> load;  // tenant -> queued + running
  std::uint64_t stall_until = 0;
  std::uint64_t now = 0;

  const auto service_ticks = [&](std::size_t i) {
    return std::max<std::uint64_t>(
        1, trace[i].cost_hint / cfg_.cycles_per_tick);
  };
  const auto start = [&](std::size_t i, std::uint64_t at) {
    out[i].start_tick = at;
    out[i].queue_delay_ticks = at - trace[i].arrival_tick;
    running.push_back({at + service_ticks(i), trace[i].tenant});
  };
  const auto retire = [&](std::uint64_t upto) {
    for (std::size_t k = 0; k < running.size();) {
      if (running[k].finish <= upto) {
        --load[running[k].tenant];
        running[k] = running.back();
        running.pop_back();
      } else {
        ++k;
      }
    }
  };
  const auto try_start_queued = [&](std::uint64_t at) {
    while (!queue.empty() && running.size() < cfg_.engines &&
           at >= stall_until) {
      const std::size_t i = queue.front();
      queue.pop_front();
      start(i, at);
    }
  };
  // Advance the virtual clock to t, replaying every completion and queue
  // start strictly in event order (each pass strictly increases `now`, so
  // this terminates).
  const auto process_until = [&](std::uint64_t t) {
    for (;;) {
      std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
      for (const Running& rn : running) next = std::min(next, rn.finish);
      if (!queue.empty() && running.size() < cfg_.engines &&
          stall_until > now) {
        next = std::min(next, stall_until);
      }
      // No event at all (next is the sentinel) or none due by t: stop.
      if (next == std::numeric_limits<std::uint64_t>::max() || next > t) {
        break;
      }
      now = std::max(now, next);
      retire(now);
      try_start_queued(now);
    }
    now = std::max(now, t);
    retire(now);
    try_start_queued(now);
  };
  const auto enqueue = [&](std::size_t i) {
    queue.push_back(i);
    ++load[trace[i].tenant];
    if (queue.size() >= cfg_.degrade_depth) {
      out[i].downshift_p = true;
      out[i].force_first_solution = true;
    }
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Request& r = trace[i];
    process_until(r.arrival_tick);
    if (const std::uint64_t s = faults.stall_ticks_for(i); s > 0) {
      stall_until = std::max(stall_until, r.arrival_tick + s);
    }
    AdmissionDecision& d = out[i];
    if (load[r.tenant] >= cfg_.tenant_quota) {
      d.outcome = AdmissionOutcome::kReject;
      d.note = OverloadError("tenant quota exhausted at admission", r.id,
                             r.tenant)
                   .what();
      continue;
    }
    if (running.size() < cfg_.engines && queue.empty() &&
        now >= stall_until) {
      ++load[r.tenant];
      start(i, r.arrival_tick);
      continue;
    }
    if (queue.size() < cfg_.queue_capacity) {
      enqueue(i);
      continue;
    }
    // Queue full: shed cheapest-first.  Candidates are the queued requests
    // plus the newcomer; the lowest priority class loses, latest arrival
    // breaking ties (queued entries arrived earlier than the newcomer, so an
    // equal-priority newcomer is the one shed).
    std::size_t victim = i;
    for (const std::size_t q : queue) {
      const bool cheaper =
          trace[q].priority != trace[victim].priority
              ? trace[q].priority < trace[victim].priority
              : q > victim;
      if (cheaper) victim = q;
    }
    if (victim == i) {
      d.outcome = AdmissionOutcome::kReject;
      d.note = OverloadError(
                   "admission queue full; request is the cheapest to shed",
                   r.id, r.tenant)
                   .what();
    } else {
      AdmissionDecision& v = out[victim];
      v.outcome = AdmissionOutcome::kShed;
      v.downshift_p = false;
      v.force_first_solution = false;
      v.note = OverloadError(
                   "evicted from a full admission queue by a later arrival",
                   trace[victim].id, trace[victim].tenant)
                   .what();
      --load[trace[victim].tenant];
      queue.erase(std::find(queue.begin(), queue.end(), victim));
      enqueue(i);
    }
  }
  // Drain everything still queued or running so every admitted request gets
  // a start tick.
  process_until(std::numeric_limits<std::uint64_t>::max());
  return out;
}

}  // namespace simdts::service
