// Admission control for the solve service: a deterministic virtual-time
// replay of the request trace.
//
// The controller is a *planner*, not an online gatekeeper: it takes the
// whole arrival-ordered trace and simulates the service's queueing on a
// virtual tick clock — E engine slots draining a bounded FIFO queue, each
// request occupying an engine for max(1, cost_hint / cycles_per_tick) ticks.
// Because the pass is serial and touches no host clock, the resulting
// decisions are a pure function of (trace, config, fault plan): replaying
// the same trace sheds the same requests at the same virtual ticks for any
// host thread count, which is what makes the service's response logs
// byte-identical.
//
// Policy, in order, at each arrival:
//   - tenant quota: a tenant with `tenant_quota` requests already queued or
//     running is refused outright (kReject).
//   - free engine, empty queue, no stall: start immediately.
//   - queue has room: enqueue FIFO.  If the post-enqueue depth reaches
//     `degrade_depth`, the request is marked for graceful degradation (P
//     halved toward min_p, exhaustive mode downshifted to first-solution) —
//     the service records both downgrades in the response.
//   - queue full: shed cheapest-first — among the queued requests plus the
//     newcomer, the lowest priority class loses, latest arrival breaking
//     ties (interactive work is never shed while batch work waits).  An
//     evicted queued request becomes kShed; a refused newcomer kReject.
//     Either way the note carries the simdts::OverloadError text naming the
//     bound that was hit.
//
// A fault::ServiceFaultKind::kQueueStall event freezes queue drain from its
// request's arrival for `count` ticks: running work completes, but nothing
// leaves the queue, so later arrivals see deeper queues and shed sooner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/service_fault.hpp"
#include "service/request.hpp"

namespace simdts::service {

struct AdmissionConfig {
  std::uint32_t engines = 2;         ///< concurrent solve slots
  std::uint32_t queue_capacity = 8;  ///< waiting slots behind the engines
  /// Per-tenant cap on queued + running requests.
  std::uint32_t tenant_quota = 6;
  /// cost_hint cycles per virtual tick (service time = ceil-ish hint/this).
  std::uint64_t cycles_per_tick = 512;
  /// Queue depth at which newly enqueued requests are degraded.
  std::uint32_t degrade_depth = 6;
  /// Floor for the degraded machine size.
  std::uint32_t min_p = 2;

  /// Throws simdts::ConfigError on zero engines/capacity/quota/tick size or
  /// a min_p that is not a power of two.
  void validate() const;

  friend bool operator==(const AdmissionConfig&,
                         const AdmissionConfig&) = default;
};

enum class AdmissionOutcome : std::uint8_t {
  kAdmit = 0,
  kShed = 1,    ///< enqueued, then evicted by a later overload
  kReject = 2,  ///< refused at arrival (quota, or cheapest under overload)
};

struct AdmissionDecision {
  AdmissionOutcome outcome = AdmissionOutcome::kAdmit;
  bool downshift_p = false;
  bool force_first_solution = false;
  std::uint64_t start_tick = 0;        ///< virtual tick the solve began
  std::uint64_t queue_delay_ticks = 0; ///< start_tick - arrival_tick
  std::string note;                    ///< overload reason when not admitted

  friend bool operator==(const AdmissionDecision&,
                         const AdmissionDecision&) = default;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg);

  /// Plans the whole trace (must be arrival-ordered; throws ConfigError
  /// otherwise).  Returns one decision per request, trace-indexed.
  [[nodiscard]] std::vector<AdmissionDecision> plan(
      const std::vector<Request>& trace,
      const fault::ServiceFaultPlan& faults) const;

  [[nodiscard]] const AdmissionConfig& config() const noexcept { return cfg_; }

 private:
  AdmissionConfig cfg_;
};

}  // namespace simdts::service
