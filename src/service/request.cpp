#include "service/request.hpp"

#include <sstream>

#include "common/error.hpp"
#include "fault/fault.hpp"

namespace simdts::service {

const char* to_string(Priority p) {
  switch (p) {
    case Priority::kBatch: return "batch";
    case Priority::kStandard: return "standard";
    case Priority::kInteractive: return "interactive";
  }
  return "?";
}

const char* to_string(ProblemKind k) {
  switch (k) {
    case ProblemKind::kSyntheticTree: return "synthetic";
    case ProblemKind::kFifteenPuzzle: return "fifteen";
  }
  return "?";
}

const char* to_string(SchemeKind s) {
  switch (s) {
    case SchemeKind::kNgpStatic: return "nGP-S";
    case SchemeKind::kGpStatic: return "GP-S";
    case SchemeKind::kNgpDp: return "nGP-DP";
    case SchemeKind::kGpDp: return "GP-DP";
    case SchemeKind::kNgpDk: return "nGP-DK";
    case SchemeKind::kGpDk: return "GP-DK";
  }
  return "?";
}

const char* to_string(SolveMode m) {
  switch (m) {
    case SolveMode::kExhaustive: return "exhaustive";
    case SolveMode::kFirstSolution: return "first-solution";
  }
  return "?";
}

const char* to_string(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kCacheHit: return "cache-hit";
    case ResponseStatus::kCoalesced: return "coalesced";
    case ResponseStatus::kBudgetExhausted: return "budget-exhausted";
    case ResponseStatus::kShed: return "shed";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kFailed: return "failed";
  }
  return "?";
}

void validate(const Request& r) {
  std::ostringstream ctx;
  ctx << "request=" << r.id;
  if (r.p < 2 || r.p > 4096 || (r.p & (r.p - 1)) != 0) {
    ctx << " p=" << r.p;
    throw ConfigError("request machine size must be a power of two in "
                      "[2, 4096]",
                      ctx.str());
  }
  if (r.instance_size == 0 || r.instance_size > 64) {
    ctx << " instance_size=" << r.instance_size;
    throw ConfigError("request instance_size must be in [1, 64]", ctx.str());
  }
  if (r.cost_hint == 0) {
    throw ConfigError("request cost_hint must be positive (admission uses it "
                      "as the service-time estimate)",
                      ctx.str());
  }
}

std::uint64_t canonical_key(const Request& r, std::uint32_t effective_p,
                            SolveMode effective_mode) {
  // A SplitMix64 absorption chain: feed each content field through the mixer
  // so every field perturbs the whole key (the same discipline as
  // synthetic::hash2).  Envelope fields are deliberately absent.
  std::uint64_t state = 0x53564B4559ULL;  // "SVKEY"
  const std::uint64_t fields[] = {
      static_cast<std::uint64_t>(r.problem),
      r.instance_seed,
      r.instance_size,
      static_cast<std::uint64_t>(r.scheme),
      effective_p,
      static_cast<std::uint64_t>(effective_mode),
      r.cycle_budget,
  };
  std::uint64_t key = 0;
  for (const std::uint64_t f : fields) {
    state ^= f;
    key = fault::splitmix64(state);
  }
  return key;
}

std::uint64_t canonical_key(const Request& r) {
  return canonical_key(r, r.p, r.mode);
}

std::string encode_response(const Response& r) {
  std::ostringstream os;
  os << "req=" << r.request_id << " tenant=" << r.tenant
     << " status=" << to_string(r.status) << " attempts=" << r.attempts
     << " backoff_ms=" << r.backoff_ms_total
     << " queue_ticks=" << r.queue_delay_ticks << " p=" << r.executed_p
     << " downshift=" << (r.downshifted_p ? 1 : 0)
     << " first_forced=" << (r.first_solution_forced ? 1 : 0)
     << " nodes=" << r.nodes_expanded << " cycles=" << r.expand_cycles
     << " goals=" << r.goals_found << " note=" << r.note;
  return os.str();
}

std::vector<Request> random_trace(std::uint64_t seed, std::size_t n,
                                  std::uint32_t tenants) {
  if (tenants == 0) {
    throw ConfigError("random_trace needs at least one tenant", "tenants=0");
  }
  std::uint64_t state = seed;
  std::vector<Request> trace;
  trace.reserve(n);
  std::uint64_t tick = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.id = 1000 + i;
    r.tenant = static_cast<std::uint32_t>(fault::splitmix64(state) % tenants);
    tick += fault::splitmix64(state) % 4;
    r.arrival_tick = tick;
    r.priority = static_cast<Priority>(fault::splitmix64(state) % 3);
    // Mostly synthetic trees (cheap, exhaustive) with a sprinkling of small
    // 15-puzzle scrambles, so a long trace stays fast enough for CI soaks.
    r.problem = fault::splitmix64(state) % 4 == 0
                    ? ProblemKind::kFifteenPuzzle
                    : ProblemKind::kSyntheticTree;
    r.instance_seed = fault::splitmix64(state);
    r.instance_size = r.problem == ProblemKind::kFifteenPuzzle
                          ? 4 + static_cast<std::uint32_t>(
                                    fault::splitmix64(state) % 7)
                          : 8 + static_cast<std::uint32_t>(
                                    fault::splitmix64(state) % 4);
    r.scheme = static_cast<SchemeKind>(fault::splitmix64(state) % 6);
    r.p = 4u << (fault::splitmix64(state) % 3);  // 4, 8, or 16
    r.mode = fault::splitmix64(state) % 5 == 0 ? SolveMode::kFirstSolution
                                               : SolveMode::kExhaustive;
    // Every fourth request carries a deadline tight enough that some runs
    // exhaust it — the soak must exercise the budget path, not just kOk.
    r.cycle_budget =
        fault::splitmix64(state) % 4 == 0
            ? 8 + fault::splitmix64(state) % 64
            : 0;
    r.cost_hint = 256 + 128 * static_cast<std::uint64_t>(r.instance_size) +
                  fault::splitmix64(state) % 512;
    trace.push_back(r);
  }
  return trace;
}

}  // namespace simdts::service
