#include "service/cache.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace simdts::service {

namespace {

/// Parses a full hex token; false unless every character was consumed.
bool parse_hex(const std::string& token, std::uint64_t& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(token.c_str(), &end, 16);
  return end == token.c_str() + token.size();
}

std::string to_hex(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

}  // namespace

std::uint64_t ResultCache::entry_checksum(std::uint64_t key,
                                          std::string_view payload) {
  // FNV-1a 64, with the key folded into the offset basis so a payload can
  // only verify under the key it was inserted with.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ key;
  for (const char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ResultCache::ResultCache(std::filesystem::path path) : path_(std::move(path)) {
  std::ifstream in(path_);
  if (!in) return;  // first use: the journal appears on the first insert
  std::string line;
  while (std::getline(in, line)) {
    // A committed line ends in " ok"; anything else is torn — skip it.
    if (line.size() < 3 || line.compare(line.size() - 3, 3, " ok") != 0) {
      continue;
    }
    const std::string body = line.substr(0, line.size() - 3);
    const std::size_t s1 = body.find(' ');
    if (s1 == std::string::npos) continue;
    const std::size_t s2 = body.find(' ', s1 + 1);
    if (s2 == std::string::npos) continue;
    std::uint64_t key = 0;
    std::uint64_t checksum = 0;
    if (!parse_hex(body.substr(0, s1), key) ||
        !parse_hex(body.substr(s1 + 1, s2 - s1 - 1), checksum)) {
      continue;
    }
    // Last-wins: a re-appended entry (or a scripted corruption) supersedes
    // the earlier line.  Verification is deferred to lookup().
    entries_[key] = Entry{checksum, body.substr(s2 + 1)};
  }
}

std::optional<std::string> ResultCache::lookup(std::uint64_t key,
                                               std::string* diagnostic) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  if (entry_checksum(key, it->second.payload) != it->second.checksum) {
    ++corruptions_detected_;
    if (diagnostic != nullptr) {
      *diagnostic =
          CacheCorruptionError(key, "checksum mismatch on lookup").what();
    }
    entries_.erase(it);
    return std::nullopt;
  }
  return it->second.payload;
}

void ResultCache::insert(std::uint64_t key, const std::string& payload) {
  if (payload.find('\n') != std::string::npos) {
    throw InvariantError("result-cache payloads must be single-line",
                         "key=" + to_hex(key));
  }
  const std::uint64_t checksum = entry_checksum(key, payload);
  append_line(key, checksum, payload);
  entries_[key] = Entry{checksum, payload};
}

bool ResultCache::corrupt_payload_byte(std::uint64_t key,
                                       std::uint32_t byte_offset) {
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.payload.empty()) return false;
  std::string damaged = it->second.payload;
  // XOR with 1 keeps the byte printable (payloads are digits and spaces), so
  // the journal line itself stays well-formed — the damage is semantic, for
  // the checksum to catch, not a torn line for the loader to skip.
  damaged[byte_offset % damaged.size()] ^= 0x01;
  append_line(key, it->second.checksum, damaged);
  it->second.payload = std::move(damaged);
  return true;
}

void ResultCache::append_line(std::uint64_t key, std::uint64_t checksum,
                              const std::string& payload) {
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    throw InvariantError("result-cache journal is not writable",
                         path_.string());
  }
  out << to_hex(key) << ' ' << to_hex(checksum) << ' ' << payload << " ok\n";
  out.flush();
  if (!out) {
    throw InvariantError("result-cache journal append failed",
                         path_.string());
  }
}

}  // namespace simdts::service
