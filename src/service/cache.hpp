// Content-addressed result cache with a crash-tolerant journal.
//
// The cache maps canonical_key(request) to the encoded solve result, backed
// by an append-only journal in the SweepJournal discipline: one line per
// insert, `<key> <checksum> <payload> ok`, where the trailing "ok" only hits
// the disk after the whole line.  A process killed mid-append leaves a torn
// final line with no "ok"; load() skips it and the entry is simply absent —
// a clean miss, never a garbled hit.
//
// Verified-on-read: the journaled checksum covers (key, payload), and
// lookup() recomputes it before serving.  A mismatch — bit rot, a torn
// rewrite, a flipped key routing a foreign payload — erases the entry,
// counts a corruption, and reports a simdts::CacheCorruptionError diagnostic
// through the out-parameter; the caller re-solves.  The invariant the fuzz
// tests pin: for any byte-level damage to the journal, every lookup returns
// either the exact inserted payload or a miss.  Wrong answers are not an
// outcome.
//
// Duplicate keys keep the last journaled entry (last-wins on load), which is
// what makes corrupt_payload_byte() — the scripted kCacheCorrupt fault —
// durable through an append-only file: it re-appends the damaged payload
// under the original checksum instead of rewriting history.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace simdts::service {

class ResultCache {
 public:
  /// Opens (and replays) the journal at `path`, creating it on first use.
  /// Torn or malformed lines are skipped, not errors.
  explicit ResultCache(std::filesystem::path path);

  /// Verified read.  Returns the payload only if its stored checksum
  /// matches; on mismatch the entry is erased, the corruption counted, and
  /// `diagnostic` (if non-null) receives the CacheCorruptionError text.  A
  /// plain miss leaves `diagnostic` untouched.
  [[nodiscard]] std::optional<std::string> lookup(
      std::uint64_t key, std::string* diagnostic = nullptr);

  /// Appends `<key> <checksum> <payload> ok` and updates the in-memory map.
  /// The payload must be newline-free (simdts::InvariantError otherwise).
  void insert(std::uint64_t key, const std::string& payload);

  /// Scripted fault (fault::ServiceFaultKind::kCacheCorrupt): XOR-flips the
  /// low bit of payload byte `byte_offset % size` both in memory and — via an
  /// appended last-wins journal line carrying the *original* checksum — on
  /// disk.  Returns false when the key is absent or its payload empty.
  bool corrupt_payload_byte(std::uint64_t key, std::uint32_t byte_offset);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// Corrupt entries detected (and erased) by verified reads so far.
  [[nodiscard]] std::uint64_t corruptions_detected() const noexcept {
    return corruptions_detected_;
  }

  /// The checksum the journal stores: FNV-1a over the payload bytes, seeded
  /// by the key so an entry cannot vouch for a payload filed under a
  /// different key.
  [[nodiscard]] static std::uint64_t entry_checksum(std::uint64_t key,
                                                    std::string_view payload);

 private:
  struct Entry {
    std::uint64_t checksum = 0;
    std::string payload;
  };

  void append_line(std::uint64_t key, std::uint64_t checksum,
                   const std::string& payload);

  std::filesystem::path path_;
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t corruptions_detected_ = 0;
};

}  // namespace simdts::service
