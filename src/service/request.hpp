// The solve-service request/response schema.
//
// A Request is everything a tenant submits: which problem instance to solve,
// with which load-balancing scheme on how many PEs, in which mode, under
// which simulated-cycle deadline — plus the envelope the service itself
// needs (id, tenant, arrival tick, priority class).  A Response accounts for
// what actually happened to the request: solved, served from cache,
// coalesced onto an identical in-flight solve, budget-exhausted with
// best-so-far results, shed under overload, rejected at admission, or
// failed.  Every request in a trace gets exactly one response — nothing is
// silently dropped — and encode_response() renders it as one canonical line
// so a replayed trace's response log can be compared byte-for-byte.
//
// canonical_key() is the content address used by the result cache and the
// in-flight dedup: it hashes only the fields that determine the computation
// (problem, instance, scheme, P, mode, budget) and *excludes* the envelope
// (id, tenant, arrival, priority, cost hint), so identical work submitted by
// different tenants shares one cache entry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace simdts::service {

/// Shedding order under overload: batch work goes first, interactive last.
enum class Priority : std::uint8_t {
  kBatch = 0,
  kStandard = 1,
  kInteractive = 2,
};

enum class ProblemKind : std::uint8_t {
  kSyntheticTree = 0,
  kFifteenPuzzle = 1,
};

/// The six Table 1 scheme combinations, as a closed enum so a request is a
/// plain value (the service maps these onto the lb::SchemeConfig factories).
enum class SchemeKind : std::uint8_t {
  kNgpStatic = 0,
  kGpStatic = 1,
  kNgpDp = 2,
  kGpDp = 3,
  kNgpDk = 4,
  kGpDk = 5,
};

enum class SolveMode : std::uint8_t {
  kExhaustive = 0,      ///< full iterative deepening to the solution depth
  kFirstSolution = 1,   ///< quit at the first goal-finding expansion cycle
};

[[nodiscard]] const char* to_string(Priority p);
[[nodiscard]] const char* to_string(ProblemKind k);
[[nodiscard]] const char* to_string(SchemeKind s);
[[nodiscard]] const char* to_string(SolveMode m);

struct Request {
  // --- envelope (excluded from the content address) ---
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  /// Arrival time on the service's virtual clock; a trace must be sorted by
  /// nondecreasing arrival_tick.
  std::uint64_t arrival_tick = 0;
  Priority priority = Priority::kStandard;
  /// Admission-control service-time estimate in simulated cycles (converted
  /// to virtual ticks by AdmissionConfig::cycles_per_tick).
  std::uint64_t cost_hint = 1024;

  // --- content (the computation; hashed by canonical_key) ---
  ProblemKind problem = ProblemKind::kSyntheticTree;
  std::uint64_t instance_seed = 1;
  /// Problem scale: synthetic tree depth cap, or 15-puzzle scramble length.
  std::uint32_t instance_size = 10;
  SchemeKind scheme = SchemeKind::kGpDk;
  std::uint32_t p = 8;  ///< requested machine size (power of two)
  SolveMode mode = SolveMode::kExhaustive;
  /// Simulated-cycle deadline (expand cycles); 0 = unbounded.
  std::uint64_t cycle_budget = 0;

  friend bool operator==(const Request&, const Request&) = default;
};

/// Rejects requests that can never execute: p not a power of two or outside
/// [2, 4096], zero instance_size, zero cost_hint.  Throws simdts::ConfigError
/// naming the field and the request id.
void validate(const Request& r);

/// Content address of the computation the request describes, under the
/// *effective* parameters the service chose (admission may downshift P or
/// force first-solution mode; the downgraded run is a different computation
/// and must not alias the full one in the cache).
[[nodiscard]] std::uint64_t canonical_key(const Request& r,
                                          std::uint32_t effective_p,
                                          SolveMode effective_mode);

/// canonical_key under the request's own parameters.
[[nodiscard]] std::uint64_t canonical_key(const Request& r);

enum class ResponseStatus : std::uint8_t {
  kOk = 0,               ///< solved (possibly after retries)
  kCacheHit = 1,         ///< served from the verified result cache
  kCoalesced = 2,        ///< shared an identical in-flight solve's result
  kBudgetExhausted = 3,  ///< deadline hit; stats are best-so-far, not final
  kShed = 4,             ///< admitted, then evicted under overload
  kRejected = 5,         ///< refused at admission (queue full / tenant quota)
  kFailed = 6,           ///< retries exhausted or a hard failure
};

[[nodiscard]] const char* to_string(ResponseStatus s);

struct Response {
  std::uint64_t request_id = 0;
  std::uint32_t tenant = 0;
  ResponseStatus status = ResponseStatus::kOk;
  /// Executions of the solve body (0 when never executed: shed, rejected,
  /// cache hit, coalesced).
  std::uint32_t attempts = 0;
  /// Total backoff charged for retries, from the pure schedule
  /// runtime::backoff_delay_ms (the service never sleeps host time).
  std::uint64_t backoff_ms_total = 0;
  std::uint64_t queue_delay_ticks = 0;
  /// Machine size actually used (0 when never executed).
  std::uint32_t executed_p = 0;
  bool downshifted_p = false;         ///< degraded: P halved under load
  bool first_solution_forced = false; ///< degraded: exhaustive -> first-sol
  std::uint64_t nodes_expanded = 0;
  std::uint64_t expand_cycles = 0;
  std::uint64_t goals_found = 0;
  /// Human-readable accounting: shed/reject reason, cache-corruption
  /// diagnostic, coalescing note, or failure message.  Empty when clean.
  std::string note;

  friend bool operator==(const Response&, const Response&) = default;
};

/// One canonical line (no trailing newline): every field in a fixed order,
/// the free-text note last.  Byte-identical responses encode byte-identically.
[[nodiscard]] std::string encode_response(const Response& r);

/// A seeded random request trace: n requests over `tenants` tenants with
/// SplitMix64-drawn envelopes and content (nondecreasing arrival ticks,
/// mixed priorities, both problem kinds, all six schemes, a spread of
/// machine sizes, modes, and budgets).  Deterministic: same (seed, n,
/// tenants) yields the same trace.
[[nodiscard]] std::vector<Request> random_trace(std::uint64_t seed,
                                                std::size_t n,
                                                std::uint32_t tenants = 4);

}  // namespace simdts::service
