// Work-splitting strategies (the paper's "alpha-splitting mechanism").
//
// When a busy processor donates work, its stack is split into two non-empty
// parts.  The quality of the split — how close to half of the remaining
// subtree the donated part represents — drives the number of load-balancing
// phases needed (Appendix A: at most V(P) * log_{1/(1-alpha)} W transfers).
//
// Strategies:
//   kBottomNode  donate the single node at the bottom of the stack (the
//                shallowest alternative, hence the largest subtree).  This is
//                what the paper used for the 15-puzzle and "appears to
//                provide a reasonable alpha-splitting mechanism".
//   kHalf        donate every other node (stratified half split, the classic
//                MIMD stack split of Rao & Kumar); donates nodes from all
//                depths.
//   kTopNode     donate the single node at the top (the deepest alternative,
//                i.e. the smallest subtree) — a deliberately poor splitter
//                used by the sensitivity ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "search/work_stack.hpp"

namespace simdts::search {

enum class SplitStrategy : std::uint8_t {
  kBottomNode,
  kHalf,
  kTopNode,
};

/// Name for reports.
[[nodiscard]] const char* to_string(SplitStrategy s);

/// Splits `donor` in place, returning the donated nodes in bottom-to-top
/// order.  Preconditions: donor.splittable().  Postconditions: neither part
/// is empty, the parts are disjoint, and their union is the original stack.
template <typename Node>
[[nodiscard]] std::vector<Node> split(WorkStack<Node>& donor,
                                      SplitStrategy strategy) {
  std::vector<Node> donated;
  switch (strategy) {
    case SplitStrategy::kBottomNode:
      donated.push_back(donor.take_bottom());
      break;
    case SplitStrategy::kTopNode:
      donated.push_back(donor.pop());
      break;
    case SplitStrategy::kHalf: {
      // Keep indices 1, 3, 5, ...; donate 0, 2, 4, ...  Donating from every
      // depth keeps both halves representative of the whole stack.  The kept
      // nodes are compacted towards the bottom in place.
      const std::size_t n = donor.size();
      donated.reserve((n + 1) / 2);
      std::size_t kept = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (i % 2 == 0) {
          donated.push_back(std::move(donor[i]));
        } else {
          if (kept != i) donor[kept] = std::move(donor[i]);
          ++kept;
        }
      }
      donor.truncate(kept);
      break;
    }
  }
  return donated;
}

/// Appends donated nodes to `receiver`, preserving bottom-to-top order so
/// that depth-first order is maintained on the receiving side.
template <typename Node>
void receive(WorkStack<Node>& receiver, std::vector<Node>&& donated) {
  for (auto& n : donated) {
    receiver.push(std::move(n));
  }
  donated.clear();
}

}  // namespace simdts::search
