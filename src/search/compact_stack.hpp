// Memory-bounded per-PE work stack: deltas instead of full node copies.
//
// A WorkStack<Node> holds a full Node per entry (16 bytes in both shipped
// domains), which at P = 2^20 lanes times stack depth dominates host memory.
// Following the space-efficient stack-splitting literature (Pietracaprina et
// al.), a CompactStack exploits that in depth-first order almost every entry
// is a child of a node the stack has already materialized: it stores a full
// *base* node per contiguously-grown run (a "segment") and, per entry, only
// a 2-byte record — the entry's segment-relative level plus the one-byte
// delta of the problem's codec (search::DeltaTreeProblem: a move index /
// child ordinal).
// Entries are materialized on pop by decoding the delta against the entry's
// parent, which is reconstructed from the segment's *delta path* (the chain
// of deltas from the base to the most recently popped node).
//
// Segment invariants (each proven by the DFS discipline):
//  - Entry levels are non-decreasing from bottom to top of a segment: pops
//    come off the top (the maximum level) and children land one level deeper.
//  - For every live entry at level L, the first L-1 deltas of the segment's
//    path are exactly its ancestor chain: siblings share the parent the path
//    currently materializes, and backtracking truncates the path only past
//    the levels that still have live entries.
//  - At most one level-0 entry per segment (the base itself, created by
//    push()); when present it is the segment's bottom entry.  Segments
//    created by the depth-bound split below have no level-0 entry: their
//    base is the already-popped parent of the entries above it.
//  - Levels are segment-relative and never exceed kMaxLevel (255): when a
//    descent would push an entry past that depth, append() freezes the
//    segment and starts a new one whose base is the cached parent
//    materialization.  One full Node per 255 levels of depth keeps the
//    per-entry record at 2 bytes for arbitrarily deep trees.
//
// Backtracking cost: with an UndoDeltaProblem (15-puzzle) the cached top
// node is walked down the path one O(1) undo per level; without one
// (hash-generated synthetic trees) the path is replayed from the base.
// Either way the hot descend case — pop the child just appended — is one
// decode.
//
// New segments are created only by push() (work received in serial phases:
// donations, fault recovery); the lock-step expand cycle only pops and
// appends, so a lane that never receives work holds exactly one segment.
// The whole representation lives behind one pointer, so an idle lane costs
// 24 bytes — smaller than an empty WorkStack — and clear() is a pooled
// release that returns the lane's memory to the allocator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sanitizer/sanitizer.hpp"
#include "search/problem.hpp"
#include "search/splitter.hpp"

namespace simdts::search {

template <DeltaTreeProblem Pr>
class CompactStack {
 public:
  using Node = typename Pr::Node;

  CompactStack() = default;
  CompactStack(CompactStack&&) noexcept = default;
  CompactStack& operator=(CompactStack&&) noexcept = default;

  /// Binds the problem whose codec materializes entries.  Must be called
  /// before the first push (the engine binds every lane at construction).
  void bind(const Pr& problem) noexcept { problem_ = &problem; }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True when the stack can be split into two non-empty parts — the paper's
  /// definition of a busy processor.
  [[nodiscard]] bool splittable() const noexcept { return size_ >= 2; }

  /// Pushes a self-contained node: a new segment whose base is `n`.  Serial
  /// contexts only (donations, recovery, the root); the expand cycle grows
  /// stacks exclusively through append().
  void push(Node n) {
    Rep& r = rep();
    r.segs.emplace_back();
    Segment& s = r.segs.back();
    s.base = std::move(n);
    push_record(s, 0, 0);
    r.cur = s.base;
    r.cur_valid = true;
    ++size_;
  }

  /// Pushes `n` children of the node the immediately preceding pop()
  /// returned — the expand cycle's staged batch append, and the only context
  /// append() is valid in.  src[n-1] ends on top, exactly as WorkStack.
  void append(Node* src, std::size_t n) {
    Rep& r = *rep_;
    if (r.segs.back().path.size() >= kMaxLevel) {
      // Depth-bound split: the next level would not fit the one-byte record,
      // so freeze this segment and continue the descent in a new one rooted
      // at the parent (r.cur is valid here: append only follows a pop).  The
      // parent is already popped, so the new base is not a live entry.
      // SIMDLINT-EFFECT-OK(allocates) one segment per 255 levels of depth
      r.segs.emplace_back();
      r.segs.back().base = r.cur;
    }
    Segment& s = r.segs.back();
    const auto level = static_cast<std::uint8_t>(s.path.size() + 1);
    for (std::size_t i = 0; i < n; ++i) {
      push_record(s, level, problem_->encode_delta(r.cur, src[i]));
    }
    size_ += n;
  }

  /// Pops the deepest entry (LIFO — depth-first order), materializing it
  /// from its parent via the delta path.
  Node pop() {
#ifdef SIMDTS_SANITIZE
    san::check_stack_read(size_, 1, "CompactStack::pop");
#endif
    Rep& r = *rep_;
    // Segments drained by earlier pops (their last entry popped and no
    // children appended) are discarded lazily here.
    while (r.segs.back().entries.size() == r.segs.back().entry_head) {
      r.segs.pop_back();
      r.cur_valid = false;
    }
    Segment& s = r.segs.back();
    std::uint8_t level = 0;
    std::uint8_t delta = 0;
    read_record(s, s.entries.size() - kRecordBytes, level, delta);
    s.entries.resize(s.entries.size() - kRecordBytes);
    --size_;
    if (level == 0) {
      s.path.clear();
      r.cur = s.base;
      r.cur_valid = true;
      return s.base;
    }
    backtrack_to(r, s, static_cast<std::size_t>(level) - 1);
    Node n = problem_->decode_delta(r.cur, delta);
    // SIMDLINT-EFFECT-OK(allocates) path growth is bounded by tree depth and
    s.path.push_back(delta);  // amortizes away after the first full descent.
    r.cur = n;
    return n;
  }

  /// Removes and returns the shallowest entry (bottom of the bottom
  /// segment) — the donation path of the bottom-node splitter.  Replays the
  /// segment's path prefix read-only, so the cached top-of-stack
  /// materialization is untouched.
  Node take_bottom() {
#ifdef SIMDTS_SANITIZE
    san::check_stack_read(size_, 1, "CompactStack::take_bottom");
#endif
    Rep& r = *rep_;
    while (r.segs.front().entries.size() == r.segs.front().entry_head) {
      r.segs.erase(r.segs.begin());
    }
    Segment& s = r.segs.front();
    std::uint8_t level = 0;
    std::uint8_t delta = 0;
    read_record(s, s.entry_head, level, delta);
    s.entry_head += kRecordBytes;
    --size_;
    Node n = materialize(s, level, delta);
    if (s.entries.size() == s.entry_head) {
      if (size_ == 0) {
        rep_.reset();
      } else if (r.segs.size() > 1) {
        r.segs.erase(r.segs.begin());
      }
    }
    return n;
  }

  /// Destroys every entry and returns the lane's memory to the allocator
  /// (the pooled-release path: an idle lane holds only the 24-byte header).
  void clear() noexcept {
    rep_.reset();
    size_ = 0;
  }

  /// Releases the representation when empty (entries always pack 2 bytes, so
  /// there is nothing further to shrink while entries live).
  void shrink_to_fit() {
    if (size_ == 0) rep_.reset();
  }

  /// The expand cycle's pooled-release hook: called the moment a lane goes
  /// idle, so a drained lane costs only the 24-byte header until work
  /// arrives again.  (WorkStack deliberately has no such hook — its ring
  /// retains capacity for the run; that retained-versus-live gap is the
  /// `bytes_per_lane` comparison of the mega-P benchmarks.)
  void release_if_drained() noexcept {
    if (size_ == 0) rep_.reset();
  }

  /// Moves every node into `out` in bottom-to-top order, leaving the stack
  /// empty — the fault-recovery journaling path (see WorkStack::drain_into).
  void drain_into(std::vector<Node>& out) {
    out.reserve(out.size() + size_);
    if (rep_ == nullptr) return;
    std::vector<Node> chain;
    for (Segment& s : rep_->segs) {
      // chain[i] = the node at path depth i; every live entry's parent is a
      // chain element by the path-prefix invariant.
      chain.clear();
      chain.push_back(s.base);
      for (const std::uint8_t d : s.path) {
        chain.push_back(problem_->decode_delta(chain.back(), d));
      }
      for (std::size_t off = s.entry_head; off < s.entries.size();
           off += kRecordBytes) {
        std::uint8_t level = 0;
        std::uint8_t delta = 0;
        read_record(s, off, level, delta);
        out.push_back(level == 0
                          ? s.base
                          : problem_->decode_delta(chain[level - 1], delta));
      }
    }
    clear();
  }

  /// Heap bytes of the representation (the bytes-per-lane metric of the
  /// mega-P benchmarks; the 24-byte header is excluded from both this and
  /// WorkStack::memory_bytes for a like-for-like comparison).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    if (rep_ == nullptr) return 0;
    std::size_t bytes =
        sizeof(Rep) + rep_->segs.capacity() * sizeof(Segment);
    for (const Segment& s : rep_->segs) {
      bytes += s.entries.capacity() + s.path.capacity();
    }
    return bytes;
  }

 private:
  static constexpr std::size_t kRecordBytes = 2;
  /// Deepest segment-relative level a record can hold; append() starts a
  /// fresh segment past this depth.
  static constexpr std::size_t kMaxLevel = 255;

  struct Segment {
    Node base{};                       ///< full node; level-0 entry when live
    std::size_t entry_head = 0;        ///< consumed record bytes at the front
    std::vector<std::uint8_t> entries; ///< 2-byte records {level8, delta8}
    std::vector<std::uint8_t> path;    ///< deltas base -> last popped node
  };

  struct Rep {
    std::vector<Segment> segs;  ///< bottom segment first
    Node cur{};       ///< node at the top segment's full path depth
    bool cur_valid = false;
  };

  Rep& rep() {
    if (rep_ == nullptr) rep_ = std::make_unique<Rep>();
    return *rep_;
  }

  static void push_record(Segment& s, std::uint8_t level, std::uint8_t delta) {
    // Record storage doubles like WorkStack's ring: steady state stays in
    // retained capacity.
    // SIMDLINT-EFFECT-OK(allocates) amortized growth, see above
    s.entries.push_back(level);
    // SIMDLINT-EFFECT-OK(allocates) amortized growth, see above
    s.entries.push_back(delta);
  }

  static void read_record(const Segment& s, std::size_t off,
                          std::uint8_t& level, std::uint8_t& delta) {
    level = s.entries[off];
    delta = s.entries[off + 1];
  }

  /// Makes the cached materialization sit at path depth `k` of segment `s`
  /// (truncating the path), by O(1) undos when the problem provides them,
  /// otherwise by replaying the path prefix from the base.
  void backtrack_to(Rep& r, Segment& s, std::size_t k) {
    if (r.cur_valid) {
      if (s.path.size() == k) return;
      if constexpr (UndoDeltaProblem<Pr>) {
        while (s.path.size() > k) {
          const std::size_t d = s.path.size();
          r.cur = d == 1 ? s.base
                         : problem_->undo_delta(r.cur, s.path[d - 1],
                                                s.path[d - 2]);
          s.path.pop_back();
        }
        return;
      }
    }
    s.path.resize(k);
    r.cur = s.base;
    for (const std::uint8_t d : s.path) {
      r.cur = problem_->decode_delta(r.cur, d);
    }
    r.cur_valid = true;
  }

  /// Materializes an entry of segment `s` without touching the cached state:
  /// read-only replay of the path prefix (take_bottom / split).
  [[nodiscard]] Node materialize(const Segment& s, std::uint8_t level,
                                 std::uint8_t delta) const {
    if (level == 0) return s.base;
    Node m = s.base;
    for (std::size_t i = 0; i + 1 < level; ++i) {
      m = problem_->decode_delta(m, s.path[i]);
    }
    return problem_->decode_delta(m, delta);
  }

  std::unique_ptr<Rep> rep_;
  std::size_t size_ = 0;
  const Pr* problem_ = nullptr;
};

/// Split strategies over a CompactStack (same contract as the WorkStack
/// overload in splitter.hpp).  kBottomNode / kTopNode move one materialized
/// node; kHalf — used only by the split-quality ablation — materializes the
/// whole stack and rebuilds the kept half as self-contained segments, giving
/// up the delta encoding for those entries (documented memory trade-off in
/// docs/performance.md).
template <DeltaTreeProblem Pr>
[[nodiscard]] std::vector<typename Pr::Node> split(CompactStack<Pr>& donor,
                                                   SplitStrategy strategy) {
  std::vector<typename Pr::Node> donated;
  switch (strategy) {
    case SplitStrategy::kBottomNode:
      donated.push_back(donor.take_bottom());
      break;
    case SplitStrategy::kTopNode:
      donated.push_back(donor.pop());
      break;
    case SplitStrategy::kHalf: {
      std::vector<typename Pr::Node> all;
      donor.drain_into(all);
      donated.reserve((all.size() + 1) / 2);
      for (std::size_t i = 0; i < all.size(); ++i) {
        if (i % 2 == 0) {
          donated.push_back(all[i]);
        } else {
          donor.push(all[i]);
        }
      }
      break;
    }
  }
  return donated;
}

/// Appends donated nodes in bottom-to-top order (each becomes a segment
/// base, so received work is self-contained on the new owner).
template <DeltaTreeProblem Pr>
void receive(CompactStack<Pr>& receiver,
             std::vector<typename Pr::Node>&& donated) {
  for (auto& n : donated) {
    receiver.push(std::move(n));
  }
  donated.clear();
}

}  // namespace simdts::search
