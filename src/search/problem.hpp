// The tree-search problem interface.
//
// A problem supplies a root node and a successor-generator (Section 2 of the
// paper).  Search is depth-first with an optional cost bound: expand() must
// append only children whose f-value is within `bound`, and report the
// minimum f-value among the children it pruned (the standard IDA* next-
// threshold computation; domains without costs ignore the bound).
//
// Node types must be cheap to copy — they are moved between PE stacks during
// load balancing, and a stack entry *is* a node (each node on a stack stands
// for the entire unexplored subtree below it).
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <vector>

namespace simdts::search {

/// Cost bound for one iterative-deepening iteration.
using Bound = std::int32_t;
inline constexpr Bound kUnbounded = std::numeric_limits<Bound>::max();

/// Tracks the smallest f-value that exceeded the current bound; it becomes
/// the next iteration's threshold.
class NextBound {
 public:
  void observe(Bound f) noexcept {
    if (f < min_) min_ = f;
  }
  void merge(const NextBound& o) noexcept { observe(o.min_); }
  [[nodiscard]] bool has_value() const noexcept { return min_ != kUnbounded; }
  [[nodiscard]] Bound value() const noexcept { return min_; }

 private:
  Bound min_ = kUnbounded;
};

template <typename P>
concept TreeProblem = requires(const P& p, const typename P::Node& n,
                               std::vector<typename P::Node>& out,
                               Bound bound, NextBound& next) {
  typename P::Node;
  { p.root() } -> std::same_as<typename P::Node>;
  { p.expand(n, bound, out, next) } -> std::same_as<void>;
  { p.is_goal(n) } -> std::convertible_to<bool>;
  { p.f_value(n) } -> std::convertible_to<Bound>;
};

/// Optional batch extension of TreeProblem: expand_batch() expands `count`
/// nodes in one call.  Children are appended to `out` grouped by input slot
/// in input order — slot j's children are contiguous and ordered exactly as
/// the per-node expand() would emit them — and `child_counts[j]` receives
/// slot j's child count.  Pruned f-values are observed in `next` as usual
/// (NextBound is a pure min, so observation order is irrelevant).
///
/// The contract is observational equivalence with `count` scalar expand()
/// calls: same children, same order within each slot, same NextBound result.
/// The vectorized execution backend (src/vec/) relies on this to stay
/// bit-exact with the scalar engine; the oracle gate in
/// tests/test_vector_backend.cpp enforces it end to end.
template <typename P>
concept BatchTreeProblem =
    TreeProblem<P> &&
    requires(const P& p, const typename P::Node* nodes, std::uint32_t count,
             std::vector<typename P::Node>& out, std::uint32_t* child_counts,
             Bound bound, NextBound& next) {
      { p.expand_batch(nodes, count, bound, out, child_counts, next) }
          -> std::same_as<void>;
    };

/// Scalar reference path for expand_batch: a loop of per-node expand() calls
/// recording each slot's child count.  This is both the fallback for domains
/// without a batch kernel and the oracle the batch kernels are tested
/// against.
template <TreeProblem P>
void expand_batch_fallback(const P& p, const typename P::Node* nodes,
                           std::uint32_t count, Bound bound,
                           std::vector<typename P::Node>& out,
                           std::uint32_t* child_counts, NextBound& next) {
  for (std::uint32_t j = 0; j < count; ++j) {
    const std::size_t before = out.size();
    p.expand(nodes[j], bound, out, next);
    child_counts[j] = static_cast<std::uint32_t>(out.size() - before);
  }
}

/// Optional delta-codec extension of TreeProblem, the memory-bounding
/// counterpart of BatchTreeProblem: a child node is representable as its
/// parent plus a one-byte delta (a move index / child ordinal), so a work
/// stack can store deltas instead of full Node copies and materialize on pop
/// (search::CompactStack).
///
/// Contract:
///  - decode_delta(parent, d) must reproduce — BIT-EXACTLY, every field —
///    the child that expand(parent, ...) would emit for that move/slot.
///    CompactStack feeds decoded nodes straight back into expand() and
///    is_goal(), so any divergence changes the searched tree.
///  - encode_delta(parent, child) inverts it: for every child emitted by
///    expand(parent, ...), decode_delta(parent, encode_delta(parent, child))
///    == child.
template <typename P>
concept DeltaTreeProblem =
    TreeProblem<P> &&
    requires(const P& p, const typename P::Node& parent,
             const typename P::Node& child, std::uint8_t delta) {
      { p.encode_delta(parent, child) } -> std::same_as<std::uint8_t>;
      { p.decode_delta(parent, delta) } -> std::same_as<typename P::Node>;
    };

/// Optional O(1)-backtrack refinement of DeltaTreeProblem: undo_delta
/// reconstructs the parent from a child, the delta that created the child,
/// and the delta that created the parent (`parent_delta`; only consulted
/// when the parent is not a stored base node, i.e. the caller always has it
/// from the delta path).  Must satisfy
///   undo_delta(decode_delta(parent, d), d, <parent's delta>) == parent.
/// Domains without an inverse (e.g. hash-generated trees) simply omit it;
/// CompactStack then backtracks by replaying the delta path from the stored
/// base node.
template <typename P>
concept UndoDeltaProblem =
    DeltaTreeProblem<P> &&
    requires(const P& p, const typename P::Node& child, std::uint8_t delta,
             std::uint8_t parent_delta) {
      { p.undo_delta(child, delta, parent_delta) }
          -> std::same_as<typename P::Node>;
    };

/// Batch expansion entry point: routes to the problem's expand_batch() when
/// it provides one, otherwise to the scalar fallback.  Domains opt in by
/// adding the member; nothing else in the engine changes.
template <TreeProblem P>
void expand_batch(const P& p, const typename P::Node* nodes,
                  std::uint32_t count, Bound bound,
                  std::vector<typename P::Node>& out,
                  std::uint32_t* child_counts, NextBound& next) {
  if constexpr (BatchTreeProblem<P>) {
    p.expand_batch(nodes, count, bound, out, child_counts, next);
  } else {
    expand_batch_fallback(p, nodes, count, bound, out, child_counts, next);
  }
}

}  // namespace simdts::search
