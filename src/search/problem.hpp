// The tree-search problem interface.
//
// A problem supplies a root node and a successor-generator (Section 2 of the
// paper).  Search is depth-first with an optional cost bound: expand() must
// append only children whose f-value is within `bound`, and report the
// minimum f-value among the children it pruned (the standard IDA* next-
// threshold computation; domains without costs ignore the bound).
//
// Node types must be cheap to copy — they are moved between PE stacks during
// load balancing, and a stack entry *is* a node (each node on a stack stands
// for the entire unexplored subtree below it).
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <vector>

namespace simdts::search {

/// Cost bound for one iterative-deepening iteration.
using Bound = std::int32_t;
inline constexpr Bound kUnbounded = std::numeric_limits<Bound>::max();

/// Tracks the smallest f-value that exceeded the current bound; it becomes
/// the next iteration's threshold.
class NextBound {
 public:
  void observe(Bound f) noexcept {
    if (f < min_) min_ = f;
  }
  void merge(const NextBound& o) noexcept { observe(o.min_); }
  [[nodiscard]] bool has_value() const noexcept { return min_ != kUnbounded; }
  [[nodiscard]] Bound value() const noexcept { return min_; }

 private:
  Bound min_ = kUnbounded;
};

template <typename P>
concept TreeProblem = requires(const P& p, const typename P::Node& n,
                               std::vector<typename P::Node>& out,
                               Bound bound, NextBound& next) {
  typename P::Node;
  { p.root() } -> std::same_as<typename P::Node>;
  { p.expand(n, bound, out, next) } -> std::same_as<void>;
  { p.is_goal(n) } -> std::convertible_to<bool>;
  { p.f_value(n) } -> std::convertible_to<Bound>;
};

}  // namespace simdts::search
