// Serial depth-first search and serial IDA*.
//
// These are the "best sequential algorithm" reference implementations: they
// define the problem size W (number of nodes expanded serially, Section 3.1)
// against which every parallel run's efficiency is computed, and they double
// as the ground truth for the conservation tests (a parallel run must expand
// exactly the same number of nodes, since the parallel formulation searches
// all solutions up to the bound and hence has no speedup anomalies).
#pragma once

#include <cstdint>
#include <vector>

#include "search/problem.hpp"
#include "search/work_stack.hpp"

namespace simdts::search {

/// Result of one bounded depth-first search (one IDA* iteration).
struct SerialIterationResult {
  std::uint64_t nodes_expanded = 0;
  std::uint64_t goals_found = 0;
  Bound next_bound = kUnbounded;  ///< threshold for the next iteration
};

/// Exhaustive bounded DFS from `root`.  "Nodes expanded" counts every pop —
/// a goal node occupies a node-expansion cycle even though its successors
/// are not generated; this convention matches the parallel engine's
/// accounting exactly, which is what makes the conservation tests
/// (parallel expansions == serial expansions) meaningful.
template <TreeProblem P>
SerialIterationResult serial_dfs(const P& problem,
                                 const typename P::Node& root, Bound bound) {
  SerialIterationResult result;
  NextBound next;
  WorkStack<typename P::Node> stack;
  stack.push(root);
  std::vector<typename P::Node> children;
  while (!stack.empty()) {
    const auto node = stack.pop();
    ++result.nodes_expanded;
    if (problem.is_goal(node)) {
      ++result.goals_found;
      continue;
    }
    children.clear();
    problem.expand(node, bound, children, next);
    for (auto& c : children) {
      stack.push(std::move(c));
    }
  }
  if (next.has_value()) result.next_bound = next.value();
  return result;
}

/// Bounded DFS that stops as soon as the first goal is popped (the serial
/// reference for the speedup-anomaly experiments).
template <TreeProblem P>
SerialIterationResult serial_first_solution(const P& problem,
                                            const typename P::Node& root,
                                            Bound bound) {
  SerialIterationResult result;
  NextBound next;
  WorkStack<typename P::Node> stack;
  stack.push(root);
  std::vector<typename P::Node> children;
  while (!stack.empty()) {
    const auto node = stack.pop();
    ++result.nodes_expanded;
    if (problem.is_goal(node)) {
      result.goals_found = 1;
      break;
    }
    children.clear();
    problem.expand(node, bound, children, next);
    for (auto& c : children) {
      stack.push(std::move(c));
    }
  }
  if (next.has_value()) result.next_bound = next.value();
  return result;
}

/// Serial depth-first branch and bound: exhausts the space, tightening the
/// bound to (incumbent - 1) the moment a better goal is popped.  Goals
/// report their solution cost via f_value().  Stale nodes (admitted under a
/// looser bound) are discarded at pop without expansion, which still counts
/// as a node visit.
struct SerialBnbResult {
  Bound best = kUnbounded;
  std::uint64_t nodes_expanded = 0;
  std::uint64_t goals_found = 0;
};

template <TreeProblem P>
SerialBnbResult serial_branch_and_bound(const P& problem,
                                        Bound initial_bound = kUnbounded) {
  SerialBnbResult result;
  Bound bound = initial_bound;
  NextBound next;
  WorkStack<typename P::Node> stack;
  stack.push(problem.root());
  std::vector<typename P::Node> children;
  while (!stack.empty()) {
    const auto node = stack.pop();
    ++result.nodes_expanded;
    if (problem.is_goal(node)) {
      const Bound f = problem.f_value(node);
      if (f < result.best) {
        result.best = f;
        ++result.goals_found;
        if (f != kUnbounded && f - 1 < bound) bound = f - 1;
      }
      continue;
    }
    if (problem.f_value(node) > bound) continue;  // stale under the new bound
    children.clear();
    problem.expand(node, bound, children, next);
    for (auto& c : children) {
      stack.push(std::move(c));
    }
  }
  return result;
}

/// Full serial IDA* run.
struct SerialIdaResult {
  Bound solution_bound = kUnbounded;  ///< threshold of the goal iteration
  std::uint64_t goals_found = 0;      ///< goals at that threshold
  std::uint64_t total_expanded = 0;   ///< W across all iterations
  std::uint64_t final_expanded = 0;   ///< W of the final iteration alone
  std::vector<SerialIterationResult> iterations;
};

/// Runs IDA*: repeats bounded DFS with increasing thresholds (starting at the
/// root's f-value) until an iteration finds a goal; that iteration still runs
/// to exhaustion, finding *all* solutions at the threshold — the paper's
/// setup for anomaly-free comparisons.  `max_expanded`, if non-zero, aborts
/// the run once the total exceeds it (solution_bound stays kUnbounded).
template <TreeProblem P>
SerialIdaResult serial_ida(const P& problem, std::uint64_t max_expanded = 0) {
  SerialIdaResult result;
  const auto root = problem.root();
  Bound bound = problem.f_value(root);
  for (;;) {
    const SerialIterationResult iter = serial_dfs(problem, root, bound);
    result.iterations.push_back(iter);
    result.total_expanded += iter.nodes_expanded;
    result.final_expanded = iter.nodes_expanded;
    if (iter.goals_found > 0) {
      result.solution_bound = bound;
      result.goals_found = iter.goals_found;
      return result;
    }
    if (iter.next_bound == kUnbounded) {
      return result;  // finite space, no solution
    }
    if (max_expanded != 0 && result.total_expanded > max_expanded) {
      return result;  // budget exceeded
    }
    bound = iter.next_bound;
  }
}

}  // namespace simdts::search
