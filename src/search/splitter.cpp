#include "search/splitter.hpp"

namespace simdts::search {

const char* to_string(SplitStrategy s) {
  switch (s) {
    case SplitStrategy::kBottomNode:
      return "bottom-node";
    case SplitStrategy::kHalf:
      return "half";
    case SplitStrategy::kTopNode:
      return "top-node";
  }
  return "?";
}

}  // namespace simdts::search
