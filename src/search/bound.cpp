#include "search/bound.hpp"

namespace simdts::search {

std::string describe(Bound b) {
  return b == kUnbounded ? std::string("unbounded") : std::to_string(b);
}

}  // namespace simdts::search
