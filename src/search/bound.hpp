// Small helpers around iteration bounds.
#pragma once

#include <string>

#include "search/problem.hpp"

namespace simdts::search {

/// "unbounded" or the decimal value — for reports and logs.
[[nodiscard]] std::string describe(Bound b);

}  // namespace simdts::search
