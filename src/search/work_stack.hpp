// The per-PE depth-first work stack.
//
// Each processor's share of the search space is a stack of nodes, where each
// node stands for its whole unexplored subtree.  Depth-first order means
// expansion pops from the *top*; the entries towards the *bottom* are the
// shallowest untried alternatives and therefore represent the largest
// subtrees — which is why the paper's splitter donates the node at the bottom
// of the stack.
//
// A processor is "busy" (splittable) when it holds at least two nodes: it can
// split its work into two non-empty parts, one to keep and one to give away
// (Section 2).
//
// Storage is a contiguous ring buffer (power-of-two capacity, head index,
// logical size): push/pop at the top and take_bottom at the bottom are all
// O(1) with no per-node allocation, unlike the former std::deque backing
// whose chunked storage cost an indirection on every hot-loop access.
// Element slots are raw storage managed with placement construction so that
// move-only node types work.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sanitizer/sanitizer.hpp"

namespace simdts::search {

template <typename Node>
class WorkStack {
 public:
  WorkStack() = default;

  WorkStack(WorkStack&& o) noexcept
      : slots_(o.slots_), cap_(o.cap_), head_(o.head_), size_(o.size_) {
    o.slots_ = nullptr;
    o.cap_ = o.head_ = o.size_ = 0;
  }

  WorkStack& operator=(WorkStack&& o) noexcept {
    if (this != &o) {
      release();
      slots_ = std::exchange(o.slots_, nullptr);
      cap_ = std::exchange(o.cap_, 0);
      head_ = std::exchange(o.head_, 0);
      size_ = std::exchange(o.size_, 0);
    }
    return *this;
  }

  WorkStack(const WorkStack& o) {
    reserve_pow2(o.size_);
    for (std::size_t i = 0; i < o.size_; ++i) {
      ::new (static_cast<void*>(slots_ + i)) Node(o[i]);
      ++size_;
    }
  }

  WorkStack& operator=(const WorkStack& o) {
    if (this != &o) {
      WorkStack tmp(o);
      *this = std::move(tmp);
    }
    return *this;
  }

  ~WorkStack() { release(); }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True when the stack can be split into two non-empty parts — the paper's
  /// definition of a busy processor.
  [[nodiscard]] bool splittable() const noexcept { return size_ >= 2; }

  void push(Node n) {
    if (size_ == cap_) grow();
    ::new (static_cast<void*>(slot_ptr(size_))) Node(std::move(n));
    ++size_;
  }

  /// Pushes `n` nodes from `src` in order — src[n-1] ends on top, exactly as
  /// n successive push() calls — with one capacity check for the whole
  /// batch: the staged form of push() used by the expansion cycle, which
  /// appends every child of a popped node at once.  The source nodes are
  /// moved from.
  void append(Node* src, std::size_t n) {
    if (size_ + n > cap_) reserve_pow2(size_ + n);
    // At most two contiguous runs in the ring: up to the physical end of the
    // buffer, then wrapped to the front.  The batch almost always fits in
    // the first run (a wrap needs head_ + size_ within n of the physical
    // end), and trivially-copyable nodes make that run one memcpy.
    const std::size_t pos = (head_ + size_) & (cap_ - 1);
    if (n <= cap_ - pos) [[likely]] {
      copy_run(slots_ + pos, src, n);
    } else {
      const std::size_t run = cap_ - pos;
      copy_run(slots_ + pos, src, run);
      copy_run(slots_, src + run, n - run);
    }
    size_ += n;
  }

  /// Pops the deepest node (LIFO — depth-first order).
  Node pop() {
#ifdef SIMDTS_SANITIZE
    san::check_stack_read(size_, 1, "WorkStack::pop");
#endif
    Node* p = slot_ptr(size_ - 1);
    Node n = std::move(*p);
    p->~Node();
    --size_;
    return n;
  }

  /// Removes and returns the shallowest node (bottom of the stack).
  Node take_bottom() {
#ifdef SIMDTS_SANITIZE
    san::check_stack_read(size_, 1, "WorkStack::take_bottom");
#endif
    Node* p = slot_ptr(0);
    Node n = std::move(*p);
    p->~Node();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
    return n;
  }

  [[nodiscard]] const Node& bottom() const {
#ifdef SIMDTS_SANITIZE
    san::check_stack_read(size_, 1, "WorkStack::bottom");
#endif
    return *slot_ptr(0);
  }
  [[nodiscard]] const Node& top() const {
#ifdef SIMDTS_SANITIZE
    san::check_stack_read(size_, 1, "WorkStack::top");
#endif
    return *slot_ptr(size_ - 1);
  }

  /// Element i counted from the bottom (0 = shallowest, size()-1 = deepest);
  /// for splitters and tests.
  [[nodiscard]] Node& operator[](std::size_t i) { return *slot_ptr(i); }
  [[nodiscard]] const Node& operator[](std::size_t i) const {
    return *slot_ptr(i);
  }

  /// Destroys every node above the first `new_size` (counted from the
  /// bottom); for splitters compacting the kept part in place.
  void truncate(std::size_t new_size) {
    while (size_ > new_size) {
      slot_ptr(size_ - 1)->~Node();
      --size_;
    }
  }

  void clear() noexcept {
    truncate(0);
    head_ = 0;
  }

  /// Slots currently allocated (zero or a power of two).
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

  /// Heap bytes of the backing buffer (the bytes-per-lane metric of the
  /// mega-P benchmarks; the header is excluded, as in
  /// CompactStack::memory_bytes).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return cap_ * sizeof(Node);
  }

  /// Returns surplus capacity to the allocator: an empty stack releases its
  /// buffer entirely (the pooled-release path for lanes that drained after
  /// donating), a non-empty one re-homes into the smallest power-of-two
  /// buffer that fits.  The ring otherwise only grows, so without this a
  /// lane that once held a deep stack pins that memory for the whole run.
  void shrink_to_fit() {
    if (size_ == 0) {
      release();
      return;
    }
    std::size_t new_cap = 8;
    while (new_cap < size_) new_cap *= 2;
    if (new_cap >= cap_) return;
    Node* new_slots = std::allocator<Node>().allocate(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(new_slots + i)) Node(std::move(*slot_ptr(i)));
      slot_ptr(i)->~Node();
    }
    std::allocator<Node>().deallocate(slots_, cap_);
    slots_ = new_slots;
    cap_ = new_cap;
    head_ = 0;
  }

  /// Moves every node into `out` in bottom-to-top order, leaving the stack
  /// empty.  Fault recovery uses this to journal a killed PE's unexpanded
  /// intervals: the order matters, because re-donating bottom-first keeps the
  /// shallowest (largest) subtrees at the bottom of the receiving stacks,
  /// preserving depth-first order on the survivors.
  void drain_into(std::vector<Node>& out) {
    out.reserve(out.size() + size_);
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(std::move(*slot_ptr(i)));
      slot_ptr(i)->~Node();
    }
    size_ = 0;
    head_ = 0;
  }

 private:
  /// One contiguous run of an append().  The hot caller is the expansion
  /// cycle appending one popped node's children — n is almost always <= 4 —
  /// and a library memcpy call costs more than such a copy itself (and the
  /// compiler rewrites any plain copy loop into one), so tiny batches are
  /// unrolled straight-line; only bulk appends (recovery re-donations, big
  /// transfers) take the memcpy path.
  static void copy_run(Node* dst, Node* src, std::size_t n) {
    if constexpr (std::is_trivially_copyable_v<Node>) {
      switch (n) {
        case 4:
          ::new (static_cast<void*>(dst + 3)) Node(src[3]);
          [[fallthrough]];
        case 3:
          ::new (static_cast<void*>(dst + 2)) Node(src[2]);
          [[fallthrough]];
        case 2:
          ::new (static_cast<void*>(dst + 1)) Node(src[1]);
          [[fallthrough]];
        case 1:
          ::new (static_cast<void*>(dst)) Node(src[0]);
          [[fallthrough]];
        case 0:
          return;
        default:
          std::memcpy(static_cast<void*>(dst), src, n * sizeof(Node));
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        ::new (static_cast<void*>(dst + i)) Node(std::move(src[i]));
      }
    }
  }

  [[nodiscard]] Node* slot_ptr(std::size_t i) const noexcept {
    return slots_ + ((head_ + i) & (cap_ - 1));
  }

  void grow() { reserve_pow2(cap_ == 0 ? 8 : cap_ * 2); }

  /// Re-homes the live elements into a fresh buffer of at least `min_cap`
  /// slots (rounded up to a power of two), bottom element first.
  void reserve_pow2(std::size_t min_cap) {
    std::size_t new_cap = 8;
    while (new_cap < min_cap) new_cap *= 2;
    if (new_cap <= cap_) return;
    Node* new_slots = std::allocator<Node>().allocate(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(new_slots + i)) Node(std::move(*slot_ptr(i)));
      slot_ptr(i)->~Node();
    }
    if (slots_ != nullptr) {
      std::allocator<Node>().deallocate(slots_, cap_);
    }
    slots_ = new_slots;
    cap_ = new_cap;
    head_ = 0;
  }

  void release() noexcept {
    if (slots_ != nullptr) {
      truncate(0);
      std::allocator<Node>().deallocate(slots_, cap_);
      slots_ = nullptr;
      cap_ = head_ = size_ = 0;
    }
  }

  Node* slots_ = nullptr;
  std::size_t cap_ = 0;   ///< always zero or a power of two
  std::size_t head_ = 0;  ///< ring index of the bottom element
  std::size_t size_ = 0;
};

}  // namespace simdts::search
