// The per-PE depth-first work stack.
//
// Each processor's share of the search space is a stack of nodes, where each
// node stands for its whole unexplored subtree.  Depth-first order means
// expansion pops from the *top* (back); the entries towards the *bottom*
// (front) are the shallowest untried alternatives and therefore represent
// the largest subtrees — which is why the paper's splitter donates the node
// at the bottom of the stack.
//
// A processor is "busy" (splittable) when it holds at least two nodes: it can
// split its work into two non-empty parts, one to keep and one to give away
// (Section 2).
#pragma once

#include <cstddef>
#include <deque>
#include <utility>

namespace simdts::search {

template <typename Node>
class WorkStack {
 public:
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// True when the stack can be split into two non-empty parts — the paper's
  /// definition of a busy processor.
  [[nodiscard]] bool splittable() const noexcept { return nodes_.size() >= 2; }

  void push(Node n) { nodes_.push_back(std::move(n)); }

  /// Pops the deepest node (LIFO — depth-first order).
  Node pop() {
    Node n = std::move(nodes_.back());
    nodes_.pop_back();
    return n;
  }

  /// Removes and returns the shallowest node (bottom of the stack).
  Node take_bottom() {
    Node n = std::move(nodes_.front());
    nodes_.pop_front();
    return n;
  }

  [[nodiscard]] const Node& bottom() const { return nodes_.front(); }
  [[nodiscard]] const Node& top() const { return nodes_.back(); }

  void clear() noexcept { nodes_.clear(); }

  /// Direct access for splitters and tests.
  [[nodiscard]] std::deque<Node>& raw() noexcept { return nodes_; }
  [[nodiscard]] const std::deque<Node>& raw() const noexcept { return nodes_; }

 private:
  std::deque<Node> nodes_;
};

}  // namespace simdts::search
