// Word-aligned chunked storage for per-lane state at mega-P scale.
//
// A machine of P = 2^20 lanes needs P per-PE objects (work stacks, scratch
// slots).  One std::vector<T> of that length works, but a single contiguous
// allocation of tens of megabytes is hostile to the allocator (it forces one
// huge arena that can neither grow incrementally nor return partial pages)
// and resizing it ever would move every element.  A ShardedArray stores the
// elements in fixed-size shards — 4096 elements each, i.e. 64 flag-plane
// words of lanes, matching the engine's host-thread partition alignment — so
// allocation is incremental, element addresses are stable for the array's
// lifetime, and indexing stays two shifts and a mask.
//
// The shard size being a multiple of 64 lanes preserves the engine's
// bit-exact word-granularity ownership discipline: no flag-plane word ever
// maps to elements of two different shards.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace simdts::common {

template <typename T>
class ShardedArray {
 public:
  /// Elements per shard; a power of two and a multiple of 64 (one flag-plane
  /// word of lanes never spans two shards).
  static constexpr std::size_t kShardElems = 4096;

  ShardedArray() = default;

  explicit ShardedArray(std::size_t n) : size_(n) {
    const std::size_t shards = (n + kShardElems - 1) / kShardElems;
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t count =
          s + 1 == shards ? n - s * kShardElems : kShardElems;
      shards_.emplace_back(count);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    return shards_[i / kShardElems][i % kShardElems];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return shards_[i / kShardElems][i % kShardElems];
  }

  /// Calls f(element) for every element in index order.
  template <typename F>
  void for_each(F&& f) {
    for (auto& shard : shards_) {
      for (T& e : shard) f(e);
    }
  }
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& shard : shards_) {
      for (const T& e : shard) f(e);
    }
  }

 private:
  std::vector<std::vector<T>> shards_;
  std::size_t size_ = 0;
};

}  // namespace simdts::common
