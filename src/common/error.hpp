// Typed errors for the simdts library.
//
// Bench drivers and the sweep runner need to tell three failure classes
// apart: a configuration that can never work (reject up front, print the
// offending parameter), a simulation that blew its watchdog budget (report a
// typed timeout result and move on), and a transient host-side hiccup (retry
// with backoff).  A bare assert() gives none of that — it kills the whole
// sweep with no context — so everything the library throws derives from
// simdts::Error and carries enough context (scheme name, machine size,
// simulated cycle) to print an actionable one-line diagnostic.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace simdts {

/// Base class of everything the library throws deliberately.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// A parameter value that can never produce a meaningful run (x outside
/// (0, 1], negative cost, zero machine size, ...).  Thrown at construction
/// time so bad values fail loudly instead of surfacing as NaN efficiencies
/// deep inside a table.
class ConfigError : public Error {
 public:
  ConfigError(const std::string& what, const std::string& context)
      : Error(what + " [" + context + "]") {}
};

/// A broken internal invariant or API misuse that up-front validation should
/// have made unreachable (a Table row grown past its width, a Board with no
/// blank tile).  Reaching it is a bug in the caller, not bad user input, but
/// it still reports with context instead of aborting the host process.
class InvariantError : public Error {
 public:
  InvariantError(const std::string& what, const std::string& context)
      : Error(what + " [" + context + "]") {}
};

/// An engine invariant violated at run time (a transfer from a non-splittable
/// donor, work lost during fault recovery, every PE dead with work
/// outstanding).  Carries the scheme name, machine size, and simulated cycle.
class EngineError : public Error {
 public:
  EngineError(const std::string& what, const std::string& scheme,
              std::uint32_t p, std::uint64_t cycle)
      : Error(format(what, scheme, p, cycle)) {}

 private:
  static std::string format(const std::string& what, const std::string& scheme,
                            std::uint32_t p, std::uint64_t cycle) {
    std::ostringstream os;
    os << what << " [scheme=" << scheme << " P=" << p << " cycle=" << cycle
       << "]";
    return os.str();
  }
};

/// A fault-recovery invariant violation (subclassed so tests can tell the
/// fault machinery's failures from ordinary engine bugs).
class FaultError : public EngineError {
 public:
  using EngineError::EngineError;
};

/// A simulation exceeded its watchdog budget of expand cycles.  The sweep
/// runner converts this into a typed per-task timeout result instead of
/// letting one pathological grid point hang the whole sweep.
class TimeoutError : public Error {
 public:
  TimeoutError(const std::string& scheme, std::uint32_t p,
               std::uint64_t cycles, std::uint64_t budget)
      : Error(format(scheme, p, cycles, budget)), cycles_(cycles),
        budget_(budget) {}

  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] std::uint64_t budget() const noexcept { return budget_; }

 private:
  static std::string format(const std::string& scheme, std::uint32_t p,
                            std::uint64_t cycles, std::uint64_t budget) {
    std::ostringstream os;
    os << "simulated-cycle budget exceeded [scheme=" << scheme << " P=" << p
       << " cycles=" << cycles << " budget=" << budget << "]";
    return os.str();
  }

  std::uint64_t cycles_;
  std::uint64_t budget_;
};

/// A host-side failure worth retrying (the sweep runner backs off and
/// re-attempts the task up to its retry policy's limit).
class TransientError : public Error {
 public:
  using Error::Error;
};

/// The solve service refused (or shed) a request because accepting it would
/// exceed a capacity bound: the admission queue is full, or the tenant is
/// over its quota.  Overload is a *load* condition, not a bug — the caller
/// is expected to back off and resubmit — so the message names the bound
/// that was hit and the request it was hit by, never a stack of internals.
class OverloadError : public Error {
 public:
  OverloadError(const std::string& what, std::uint64_t request_id,
                std::uint32_t tenant)
      : Error(format(what, request_id, tenant)) {}

 private:
  static std::string format(const std::string& what, std::uint64_t request_id,
                            std::uint32_t tenant) {
    std::ostringstream os;
    os << what << " [request=" << request_id << " tenant=" << tenant << "]";
    return os.str();
  }
};

/// A result-cache entry failed its verified read (checksum mismatch, torn
/// payload).  Never surfaced as a wrong answer: the service treats the entry
/// as a miss, re-solves, and records this diagnostic in the response so the
/// corruption is observable.  `key()` is the content-address of the bad
/// entry.
class CacheCorruptionError : public Error {
 public:
  CacheCorruptionError(std::uint64_t key, const std::string& what)
      : Error(format(key, what)), key_(key) {}

  [[nodiscard]] std::uint64_t key() const noexcept { return key_; }

 private:
  static std::string format(std::uint64_t key, const std::string& what) {
    std::ostringstream os;
    os << "cache entry failed verified read [key=" << std::hex << key
       << std::dec << "]: " << what;
    return os.str();
  }

  std::uint64_t key_;
};

/// A shadow-instrumentation check failed (SimdSan, compiled in only under
/// SIMDTS_SANITIZE).  Unlike EngineError — which reports invariants the
/// engine itself can observe — this reports violations of the *disciplines*
/// that make the simulation deterministic: word-granularity thread ownership,
/// dead-lane stack hygiene, single-donor matching, tail-bits-zero planes,
/// census/flag-plane agreement, fault-plan ordering.  `invariant()` names the
/// broken discipline so mutation tests can assert the sanitizer fired for the
/// *right* reason, not merely that it fired.
class SanitizerError : public Error {
 public:
  SanitizerError(const std::string& invariant, const std::string& what)
      : Error("[sanitizer:" + invariant + "] " + what), invariant_(invariant) {}

  [[nodiscard]] const std::string& invariant() const noexcept {
    return invariant_;
  }

 private:
  std::string invariant_;
};

}  // namespace simdts
