// Append-only journal of completed sweep slots (checkpoint/resume).
//
// Long table sweeps (hundreds of engine runs) die for host-side reasons —
// an OOM kill, a CI timeout, a Ctrl-C.  The journal makes them resumable:
// each completed task appends one line `<slot-index> <payload> ok\n` and
// flushes, so a restarted sweep can load the journal, skip every slot whose
// payload decodes, and re-run only the rest.  Payloads are the exact
// single-line encodings of lb::encode_journal / analysis-level codecs (all
// doubles as IEEE-754 bit patterns), so a resumed sweep emits byte-identical
// CSVs.
//
// Crash tolerance is by construction: a line is only trusted if it parses
// completely and carries the trailing "ok" marker, so a torn final line (the
// process died mid-write) is silently dropped and its task simply re-runs.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace simdts::runtime {

class SweepJournal {
 public:
  /// Opens (creating if absent) the journal at `path` for appending.
  explicit SweepJournal(std::string path);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Parses the journal into slot-index -> payload.  Torn or malformed lines
  /// are skipped; a later entry for the same slot wins (harmless — entries
  /// for one slot are identical by determinism).  A missing file yields an
  /// empty map.
  [[nodiscard]] std::map<std::size_t, std::string> load() const;

  /// Appends `<index> <payload> ok` and flushes.  Thread-safe; called by
  /// sweep worker threads as tasks complete.  The payload must be a single
  /// line without embedded newlines.  Throws simdts::Error on I/O failure or
  /// a payload containing a newline.
  void record(std::size_t index, const std::string& payload);

  /// Deletes the journal file (after a sweep completes and its CSV is
  /// safely written).  Missing file is not an error.
  void remove() const;

 private:
  std::string path_;
  std::mutex mu_;
};

}  // namespace simdts::runtime
