#include "runtime/journal.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace simdts::runtime {

SweepJournal::SweepJournal(std::string path) : path_(std::move(path)) {
  // Best-effort: make sure the journal's directory exists, like the CSV
  // writer does for its artifacts.
  const std::filesystem::path p(path_);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
}

std::map<std::size_t, std::string> SweepJournal::load() const {
  std::map<std::size_t, std::string> entries;
  std::ifstream in(path_);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    // Format: `<index> <payload...> ok`.  The payload may itself contain
    // spaces; only a line whose last token is the "ok" marker is trusted.
    std::istringstream is(line);
    std::size_t index = 0;
    if (!(is >> index)) continue;
    std::string rest;
    std::getline(is, rest);
    // Strip the single separating space and the trailing marker.
    const std::string marker = " ok";
    if (rest.size() < marker.size() + 1 || rest.front() != ' ' ||
        rest.compare(rest.size() - marker.size(), marker.size(), marker) !=
            0) {
      continue;  // torn or malformed: the task re-runs
    }
    entries[index] = rest.substr(1, rest.size() - 1 - marker.size());
  }
  return entries;
}

void SweepJournal::record(std::size_t index, const std::string& payload) {
  if (payload.find('\n') != std::string::npos) {
    throw Error("journal payload must be a single line [" + path_ + "]");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    throw Error("cannot open sweep journal for append [" + path_ + "]");
  }
  out << index << ' ' << payload << " ok\n";
  out.flush();
  if (!out) {
    throw Error("failed writing sweep journal [" + path_ + "]");
  }
}

void SweepJournal::remove() const {
  std::remove(path_.c_str());
}

}  // namespace simdts::runtime
