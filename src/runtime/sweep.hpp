// Parallel sweep runner: a work-queue executor for grids of independent
// simulations.
//
// Every figure and table in the reproduction is a sweep over fully
// independent, deterministic runs — (config, machine size, workload) tuples
// that share nothing.  The simulated machine is lock-step and its clock is
// simulated time, so nothing about a run depends on when or where the host
// executes it.  That makes the whole bench suite embarrassingly parallel at
// the *sweep* level, which is where the wall-clock win is (the per-cycle
// thread pool inside one Machine parallelizes a single run, but a sweep of
// hundreds of runs scales trivially with host cores).
//
// Design:
//   - run(n, task) executes task(0..n-1), each exactly once, pulling indices
//     from a shared atomic counter (dynamic scheduling — grid tasks vary by
//     orders of magnitude in cost, so static chunking would straggle).
//   - Results go into pre-sized slots indexed by task id (see sweep_map), so
//     output order — and therefore every CSV derived from it — is
//     bit-identical to the serial run regardless of thread count or
//     completion order.
//   - Each task owns its private simd::Machine/engine state; the runner
//     never shares simulation state across tasks.
//   - Threads are spawned per sweep.  Tasks are whole simulations
//     (milliseconds to seconds), so thread start-up cost is noise, and a
//     sweep holds no idle threads alive between uses.
// Robustness (docs/robustness.md): run_tasks() wraps run() with a typed
// per-task outcome — a task that throws simdts::TimeoutError (the engine
// watchdog) yields a kTimeout report instead of aborting the sweep, a
// simdts::TransientError is retried with exponential backoff up to the
// RetryPolicy's attempt limit, and anything else is reported kFailed with
// its message.  Resumable sweeps layer SweepJournal on top (the analysis
// and bench layers own the payload codecs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace simdts::runtime {

/// Host threads a sweep uses by default: $SIMDTS_SWEEP_THREADS if set to a
/// positive integer, otherwise the hardware concurrency (>= 1).
[[nodiscard]] unsigned sweep_threads();

class SweepRunner {
 public:
  /// `threads == 0` picks sweep_threads(); `threads == 1` runs inline.
  explicit SweepRunner(unsigned threads = 0);

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Runs task(i) for every i in [0, n), each exactly once, across up to
  /// threads() host threads; blocks until all tasks finish.  Tasks must not
  /// share mutable state (distinct result slots are fine).  If any task
  /// throws, the sweep stops handing out new indices and the first captured
  /// exception is rethrown after all in-flight tasks finish.
  template <typename F>
  void run(std::size_t n, F&& task) {
    using Fn = std::remove_reference_t<F>;
    run_impl(n, const_cast<std::remove_const_t<Fn>*>(std::addressof(task)),
             [](void* ctx, std::size_t i) { (*static_cast<Fn*>(ctx))(i); });
  }

 private:
  using Trampoline = void (*)(void*, std::size_t);
  void run_impl(std::size_t n, void* ctx, Trampoline fn);

  unsigned threads_;
};

/// Outcome class of one sweep task under run_tasks().
enum class TaskStatus : std::uint8_t {
  kOk,        ///< completed (possibly after transient retries)
  kTimeout,   ///< threw simdts::TimeoutError (watchdog); never retried
  kTransient, ///< threw simdts::TransientError on every allowed attempt
  kFailed,    ///< threw anything else; not retried
};

[[nodiscard]] const char* to_string(TaskStatus s);

/// Per-task report filled in by run_tasks(), slot-indexed like the results.
struct TaskReport {
  TaskStatus status = TaskStatus::kOk;
  std::uint32_t attempts = 1;  ///< executions of the task body
  std::string message;         ///< the final exception's what(), if any

  friend bool operator==(const TaskReport&, const TaskReport&) = default;
};

/// Retry policy for transient failures.  Timeouts and hard failures are
/// never retried — a deterministic simulation that blew its budget once
/// will blow it every time.
struct RetryPolicy {
  std::uint32_t max_attempts = 3;   ///< total executions (first + retries)
  /// Base backoff: the sleep before retry k (1-based) is
  /// backoff_ms << (k - 1) — the first retry waits the base delay, every
  /// further retry doubles it.  See backoff_delay_ms() for the exact
  /// (clamped, optionally jittered) schedule.
  std::uint32_t backoff_ms = 10;
  /// Nonzero arms deterministic jitter: each delay gains a SplitMix64-derived
  /// offset in [0, base) mixed from (jitter_seed, salt, retry), so
  /// simultaneous retries of different tasks decorrelate without any host
  /// RNG state.  Zero (the default) keeps the schedule exactly exponential.
  std::uint64_t jitter_seed = 0;
};

/// The backoff schedule as a pure function: the delay in milliseconds slept
/// before retry `retry` (1-based — retry 1 precedes the second execution;
/// retry 0 is meaningless and returns 0).  The base delay is
/// backoff_ms << (retry - 1) with the shift clamped at 32, so a pathological
/// attempt limit saturates instead of shifting past the width (undefined
/// behaviour).  With policy.jitter_seed != 0 a deterministic jitter in
/// [0, base) is added, derived from SplitMix64 over (jitter_seed, salt,
/// retry); `salt` identifies the retrying task (run_tasks passes the task
/// index) so concurrent retries spread out.  Exposed — and kept pure — so
/// tests and the service layer can pin the exact schedule without sleeping.
[[nodiscard]] std::uint64_t backoff_delay_ms(const RetryPolicy& policy,
                                             std::uint32_t retry,
                                             std::uint64_t salt = 0);

/// Like SweepRunner::run, but failures are contained per task: returns one
/// TaskReport per index instead of rethrowing the first exception.  A task
/// throwing TransientError is re-attempted (with exponential backoff) up to
/// policy.max_attempts times; TimeoutError and other exceptions settle the
/// task immediately.  The sweep always visits every index.
[[nodiscard]] std::vector<TaskReport> run_tasks(
    SweepRunner& runner, std::size_t n,
    const std::function<void(std::size_t)>& task, RetryPolicy policy = {});

/// Maps fn over [0, n) in parallel and returns the results in index order:
/// out[i] == fn(i), bit-identical to the serial loop for any thread count.
template <typename T, typename F>
[[nodiscard]] std::vector<T> sweep_map(std::size_t n, F&& fn,
                                       unsigned threads = 0) {
  std::vector<T> out(n);
  SweepRunner runner(threads);
  runner.run(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace simdts::runtime
