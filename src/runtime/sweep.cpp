#include "runtime/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "fault/fault.hpp"

namespace simdts::runtime {

unsigned sweep_threads() {
  if (const char* v = std::getenv("SIMDTS_SWEEP_THREADS"); v != nullptr) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(v, &end, 10);
    if (end != v && parsed > 0) {
      return static_cast<unsigned>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads == 0 ? sweep_threads() : threads) {}

void SweepRunner::run_impl(std::size_t n, void* ctx, Trampoline fn) {
  if (n == 0) return;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads_, n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(ctx, i);
      } catch (...) {
        const std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
        // Stop handing out further work; in-flight tasks still finish.
        next.store(n, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> extra;
  extra.reserve(workers - 1);
  for (unsigned t = 1; t < workers; ++t) {
    extra.emplace_back(drain);
  }
  drain();
  for (auto& t : extra) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

const char* to_string(TaskStatus s) {
  switch (s) {
    case TaskStatus::kOk: return "ok";
    case TaskStatus::kTimeout: return "timeout";
    case TaskStatus::kTransient: return "transient";
    case TaskStatus::kFailed: return "failed";
  }
  return "?";
}

std::uint64_t backoff_delay_ms(const RetryPolicy& policy, std::uint32_t retry,
                               std::uint64_t salt) {
  if (retry == 0 || policy.backoff_ms == 0) return 0;
  // Retry k (1-based) waits backoff_ms << (k - 1); the shift is clamped so
  // absurd attempt limits saturate instead of shifting past the width.
  const std::uint32_t shift = std::min(retry - 1, 32u);
  const std::uint64_t base = static_cast<std::uint64_t>(policy.backoff_ms)
                             << shift;
  if (policy.jitter_seed == 0) return base;
  std::uint64_t state = policy.jitter_seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  state += retry;
  return base + fault::splitmix64(state) % base;
}

std::vector<TaskReport> run_tasks(SweepRunner& runner, std::size_t n,
                                  const std::function<void(std::size_t)>& task,
                                  RetryPolicy policy) {
  std::vector<TaskReport> reports(n);
  const std::uint32_t max_attempts = std::max(policy.max_attempts, 1u);
  // SIMDLINT-SOURCE(partition) — the slot index arrives on whichever worker
  runner.run(n, [&](std::size_t i) {
    TaskReport& r = reports[i];
    for (std::uint32_t attempt = 0;; ++attempt) {
      r.attempts = attempt + 1;
      try {
        task(i);
        r.status = TaskStatus::kOk;
        r.message.clear();
        return;
      } catch (const TimeoutError& e) {
        // Deterministic: would time out identically on retry.
        r.status = TaskStatus::kTimeout;
        r.message = e.what();
        return;
      } catch (const TransientError& e) {
        r.status = TaskStatus::kTransient;
        r.message = e.what();
        if (attempt + 1 >= max_attempts) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            backoff_delay_ms(policy, attempt + 1, i)));
      } catch (const std::exception& e) {
        r.status = TaskStatus::kFailed;
        r.message = e.what();
        return;
      }
    }
  });
  return reports;
}

}  // namespace simdts::runtime
