#include "runtime/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace simdts::runtime {

unsigned sweep_threads() {
  if (const char* v = std::getenv("SIMDTS_SWEEP_THREADS"); v != nullptr) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(v, &end, 10);
    if (end != v && parsed > 0) {
      return static_cast<unsigned>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads == 0 ? sweep_threads() : threads) {}

void SweepRunner::run_impl(std::size_t n, void* ctx, Trampoline fn) {
  if (n == 0) return;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads_, n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(ctx, i);
      } catch (...) {
        const std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
        // Stop handing out further work; in-flight tasks still finish.
        next.store(n, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> extra;
  extra.reserve(workers - 1);
  for (unsigned t = 1; t < workers; ++t) {
    extra.emplace_back(drain);
  }
  drain();
  for (auto& t : extra) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace simdts::runtime
