#include "mimd/engine.hpp"

namespace simdts::mimd {

const char* to_string(StealPolicy p) {
  switch (p) {
    case StealPolicy::kGlobalRoundRobin:
      return "GRR";
    case StealPolicy::kAsyncRoundRobin:
      return "ARR";
    case StealPolicy::kRandomPolling:
      return "RP";
  }
  return "?";
}

}  // namespace simdts::mimd
