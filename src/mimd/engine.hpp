// An asynchronous MIMD work-stealing comparator.
//
// The paper's headline conclusion (Section 9) is that the SIMD schemes'
// scalability is "no worse than that of the best load balancing schemes on
// MIMD architectures".  This module provides the other side of that
// comparison: a time-stepped simulator of receiver-initiated work stealing
// as analysed by Kumar, Grama & Rao — Global Round Robin (GRR),
// Asynchronous Round Robin (ARR), and Random Polling (RP) victim selection.
//
// Model: every processor has its own clock, discretised in node-expansion
// steps.  Busy processors expand one node per step.  An idle processor
// sends a steal request to a victim chosen by the policy; the request takes
// `latency` steps to arrive, the victim — *without stopping the rest of the
// machine*, the defining MIMD advantage — answers with half its stack (or a
// reject) which takes another `latency` steps to return.  Serving a request
// costs the victim one expansion step.  Rejected thieves immediately retry
// with the next victim.
//
// The simulation is deterministic: RP draws victims from per-processor
// counters hashed with splitmix64, nothing depends on host timing.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "search/problem.hpp"
#include "search/splitter.hpp"
#include "search/work_stack.hpp"

namespace simdts::mimd {

enum class StealPolicy : std::uint8_t {
  kGlobalRoundRobin,  ///< one shared victim counter (GRR)
  kAsyncRoundRobin,   ///< a private victim counter per thief (ARR)
  kRandomPolling,     ///< uniformly random victim per attempt (RP)
};

[[nodiscard]] const char* to_string(StealPolicy p);

struct MimdConfig {
  StealPolicy policy = StealPolicy::kRandomPolling;
  /// One-way message latency in expansion-step units (>= 1).
  std::uint32_t latency = 1;
  search::SplitStrategy split = search::SplitStrategy::kHalf;
  std::uint64_t seed = 1;
};

struct MimdStats {
  std::uint64_t nodes_expanded = 0;
  std::uint64_t goals_found = 0;
  std::uint64_t steps = 0;            ///< parallel time in expansion steps
  std::uint64_t steal_requests = 0;   ///< requests sent
  std::uint64_t steals = 0;           ///< successful transfers
  std::uint64_t rejections = 0;       ///< requests that found no work
  std::uint64_t service_steps = 0;    ///< victim steps lost to serving
  search::Bound next_bound = search::kUnbounded;

  /// E = useful work / (P * elapsed): idle steps, service steps and
  /// in-flight waiting all count against the denominator.
  [[nodiscard]] double efficiency(std::uint32_t p) const {
    const double total = static_cast<double>(p) * static_cast<double>(steps);
    return total > 0.0 ? static_cast<double>(nodes_expanded) / total : 1.0;
  }
};

template <search::TreeProblem P>
class MimdEngine {
 public:
  using Node = typename P::Node;

  MimdEngine(const P& problem, std::uint32_t p, MimdConfig cfg)
      : problem_(problem), p_(p), cfg_(cfg) {
    if (p_ == 0) throw ConfigError("MimdEngine: need >= 1 PE", "P=0");
    if (cfg_.latency == 0) {
      throw ConfigError("MimdEngine: latency must be >= 1", "latency=0");
    }
  }

  /// One bounded exhaustive DFS (the same semantics as the SIMD engine's
  /// run_iteration): root on processor 0, runs until the whole space is
  /// searched, returns the stats.
  MimdStats run_iteration(search::Bound bound) {
    MimdStats stats;
    search::NextBound next;

    std::vector<search::WorkStack<Node>> stacks(p_);
    stacks[0].push(problem_.root());

    struct Pe {
      bool waiting = false;       ///< steal request in flight
      bool serving = false;       ///< loses this step to request service
      std::uint32_t rr = 0;       ///< ARR victim counter
      std::uint64_t rng = 0;      ///< RP state
    };
    std::vector<Pe> pes(p_);
    for (std::uint32_t i = 0; i < p_; ++i) {
      pes[i].rr = (i + 1) % p_;
      pes[i].rng = cfg_.seed * 0x9E3779B97F4A7C15ULL + i;
    }
    std::uint32_t grr = 0;  // shared GRR counter

    struct Message {
      std::uint32_t to;
      std::uint32_t from;
      bool is_request;
      std::vector<Node> payload;  // response only
    };
    // Ring buffer of per-step delivery lists.
    const std::uint32_t horizon = cfg_.latency + 1;
    std::vector<std::vector<Message>> ring(horizon);
    std::uint64_t in_flight = 0;

    auto send = [&](Message m) {
      ring[(stats.steps + cfg_.latency) % horizon].push_back(std::move(m));
      ++in_flight;
    };
    auto pick_victim = [&](std::uint32_t self) -> std::uint32_t {
      std::uint32_t v = self;
      switch (cfg_.policy) {
        case StealPolicy::kGlobalRoundRobin:
          v = grr;
          grr = (grr + 1) % p_;
          break;
        case StealPolicy::kAsyncRoundRobin:
          v = pes[self].rr;
          pes[self].rr = (pes[self].rr + 1) % p_;
          break;
        case StealPolicy::kRandomPolling: {
          std::uint64_t z = (pes[self].rng += 0x9E3779B97F4A7C15ULL);
          z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
          z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
          v = static_cast<std::uint32_t>((z ^ (z >> 31)) % p_);
          break;
        }
      }
      if (v == self) v = (v + 1) % p_;
      return v;
    };

    std::vector<Node> children;
    // Live node count (stacks + donated payloads in transit): the global
    // termination criterion.  A real machine needs a termination-detection
    // protocol (e.g. Dijkstra's token) because idle thieves keep polling
    // empty victims forever; the simulator sees the global state directly.
    std::uint64_t live = 1;
    for (;;) {
      // 1. Deliver this step's messages.
      auto& slot = ring[stats.steps % horizon];
      std::vector<Message> arrivals;
      arrivals.swap(slot);
      for (auto& m : arrivals) {
        --in_flight;
        if (m.is_request) {
          auto& victim = stacks[m.to];
          Message resp{m.from, m.to, false, {}};
          if (victim.splittable()) {
            resp.payload = search::split(victim, cfg_.split);
            pes[m.to].serving = true;  // the victim loses one step
            ++stats.service_steps;
            ++stats.steals;
          } else {
            ++stats.rejections;
          }
          send(std::move(resp));
        } else {
          pes[m.to].waiting = false;
          if (!m.payload.empty()) {
            search::receive(stacks[m.to], std::move(m.payload));
          }
        }
      }

      // 2. Everyone takes a step: busy PEs expand, idle ones beg.
      std::uint64_t working = 0;
      for (std::uint32_t i = 0; i < p_; ++i) {
        auto& st = stacks[i];
        if (pes[i].serving) {
          pes[i].serving = false;
          if (!st.empty()) ++working;  // still busy, just lost the step
          continue;
        }
        if (!st.empty()) {
          ++working;
          Node n = st.pop();
          ++stats.nodes_expanded;
          --live;
          if (problem_.is_goal(n)) {
            ++stats.goals_found;
          } else {
            children.clear();
            problem_.expand(n, bound, children, next);
            live += children.size();
            for (auto& c : children) st.push(std::move(c));
          }
        } else if (!pes[i].waiting && p_ > 1 && live > 0) {
          pes[i].waiting = true;
          ++stats.steal_requests;
          send(Message{pick_victim(i), i, true, {}});
        }
      }
      // Once no node exists anywhere — in a stack or in a donated payload
      // in transit — the search is over; outstanding beg messages can only
      // produce rejections and are dropped with the machine.  The final
      // pass still counts as a step when it expanded something.
      if (live == 0) {
        if (working > 0) ++stats.steps;
        break;
      }
      ++stats.steps;
    }

    if (next.has_value()) stats.next_bound = next.value();
    return stats;
  }

 private:
  const P& problem_;
  std::uint32_t p_;
  MimdConfig cfg_;
};

}  // namespace simdts::mimd
