// Triggering conditions (Section 2 of the paper).
//
// The trigger decides, after each node-expansion cycle, whether the machine
// enters a load-balancing phase.  The dynamic triggers integrate quantities
// over the current *search phase* (the stretch of cycles since the last
// load-balancing phase):
//
//   S^x  (eq. 1):  A <= x * P
//   D^P  (eq. 3):  w - A*t >= A*L     (w = work done in processor-time,
//                                      t = elapsed search-phase time)
//   D^K  (eq. 4):  w_idle >= L * P    (w_idle = accumulated idle time)
//
// L, the cost of the next load-balancing phase, cannot be known in advance;
// following the paper it is approximated by the measured cost of the
// previous phase.
#pragma once

#include <cstdint>

#include "lb/config.hpp"

namespace simdts::lb {

class Trigger {
 public:
  Trigger(const SchemeConfig& cfg, std::uint32_t p, double t_expand,
          double initial_lb_cost);

  /// Starts a fresh search phase (after a load-balancing phase or at the
  /// beginning of an iteration): resets the per-phase integrals.
  void begin_search_phase();

  /// Accounts one node-expansion cycle in which `working` PEs expanded.
  void note_cycle(std::uint32_t working);

  /// Updates the L estimate with the measured cost of the phase just done.
  void note_lb_cost(double cost);

  /// Degraded mode: when faults kill or revive PEs mid-run, the trigger
  /// conditions (x * P, L * P, the idle integral) must range over the
  /// *surviving* lane set, not the nominal machine size.
  void set_machine_size(std::uint32_t p) { p_ = p; }

  /// Evaluates the trigger condition given the current counts of active
  /// (per BusyPolicy) and idle (empty-stack) processors.
  [[nodiscard]] bool should_trigger(std::uint32_t active,
                                    std::uint32_t idle) const;

  /// Accumulated idle time this search phase (exposed for tests).
  [[nodiscard]] double idle_integral() const { return w_idle_; }
  /// Work integral this search phase (exposed for tests).
  [[nodiscard]] double work_integral() const { return w_; }
  /// Current L estimate.
  [[nodiscard]] double lb_cost_estimate() const { return lb_cost_; }

 private:
  TriggerKind kind_;
  double static_x_;
  std::uint32_t p_;
  double t_expand_;
  double lb_cost_;   // L
  double w_ = 0.0;      // work done this search phase (processor-time)
  double t_ = 0.0;      // elapsed search-phase time
  double w_idle_ = 0.0; // accumulated idle time this search phase
};

}  // namespace simdts::lb
