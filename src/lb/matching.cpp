#include "lb/matching.hpp"

namespace simdts::lb {

std::vector<simd::Pair> Matcher::match(
    std::span<const std::uint8_t> busy_flags,
    std::span<const std::uint8_t> idle_flags, std::size_t limit) {
  const simd::PeIndex start_after =
      scheme_ == MatchScheme::kGP ? pointer_ : simd::kNoPe;
  std::vector<simd::Pair> pairs =
      simd::rendezvous(busy_flags, idle_flags, start_after);
  if (pairs.size() > limit) pairs.resize(limit);
  if (scheme_ == MatchScheme::kGP && !pairs.empty()) {
    pointer_ = pairs.back().donor;
  }
  return pairs;
}

std::vector<simd::Pair> neighbor_pairs(
    std::span<const std::uint8_t> busy_flags,
    std::span<const std::uint8_t> idle_flags) {
  const std::size_t p = busy_flags.size();
  std::vector<simd::Pair> pairs;
  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t j = (i + 1) % p;
    if (busy_flags[i] != 0 && idle_flags[j] != 0) {
      pairs.push_back(simd::Pair{static_cast<simd::PeIndex>(i),
                                 static_cast<simd::PeIndex>(j)});
    }
  }
  return pairs;
}

}  // namespace simdts::lb
