#include "lb/matching.hpp"

#include <bit>

#include "sanitizer/sanitizer.hpp"

namespace simdts::lb {

#ifdef SIMDTS_SANITIZE
namespace {

// SimdSan: a rendezvous round must match each donor at most once — a donor
// matched twice would ship the same bottom-of-stack subtree to two
// receivers.  The duplicate mutation corrupts the round so the mutation test
// can prove the check fires.
void san_check_round(std::vector<simd::Pair>& out) {
  if (san::mutation().duplicate_match_pair && out.size() >= 2) {
    out[1].donor = out[0].donor;
  }
  std::vector<std::uint32_t> donors;
  donors.reserve(out.size());
  for (const simd::Pair& pr : out) donors.push_back(pr.donor);
  san::verify_unique_donors(donors.data(), donors.size());
}

}  // namespace
#endif

void Matcher::match_into(std::span<const std::uint8_t> busy_flags,
                         std::span<const std::uint8_t> idle_flags,
                         std::size_t limit, std::vector<simd::Pair>& out) {
  const simd::PeIndex start_after =
      scheme_ == MatchScheme::kGP ? pointer_ : simd::kNoPe;
  simd::rendezvous_into(busy_flags, idle_flags, start_after, limit, out);
  if (scheme_ == MatchScheme::kGP && !out.empty()) {
    pointer_ = out.back().donor;
  }
}

void Matcher::match_into(const simd::BitPlane& busy_flags,
                         const simd::BitPlane& idle_flags, std::size_t limit,
                         std::vector<simd::Pair>& out) {
  const simd::PeIndex start_after =
      scheme_ == MatchScheme::kGP ? pointer_ : simd::kNoPe;
  simd::rendezvous_into(busy_flags, idle_flags, start_after, limit, out);
#ifdef SIMDTS_SANITIZE
  san_check_round(out);
#endif
  if (scheme_ == MatchScheme::kGP && !out.empty()) {
    pointer_ = out.back().donor;
  }
}

void Matcher::match_into(const simd::BitPlane& busy_flags,
                         const simd::SummaryPlane& busy_summary,
                         const simd::BitPlane& idle_flags,
                         const simd::SummaryPlane& idle_summary,
                         std::size_t limit, std::vector<simd::Pair>& out) {
  const simd::PeIndex start_after =
      scheme_ == MatchScheme::kGP ? pointer_ : simd::kNoPe;
  simd::rendezvous_into(busy_flags, busy_summary, idle_flags, idle_summary,
                        start_after, limit, out);
#ifdef SIMDTS_SANITIZE
  san_check_round(out);
#endif
  if (scheme_ == MatchScheme::kGP && !out.empty()) {
    pointer_ = out.back().donor;
  }
}

std::vector<simd::Pair> Matcher::match(
    std::span<const std::uint8_t> busy_flags,
    std::span<const std::uint8_t> idle_flags, std::size_t limit) {
  std::vector<simd::Pair> pairs;
  match_into(busy_flags, idle_flags, limit, pairs);
  return pairs;
}

void neighbor_pairs_into(std::span<const std::uint8_t> busy_flags,
                         std::span<const std::uint8_t> idle_flags,
                         std::vector<simd::Pair>& out) {
  out.clear();
  const std::size_t p = busy_flags.size();
  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t j = (i + 1) % p;
    if (busy_flags[i] != 0 && idle_flags[j] != 0) {
      out.push_back(simd::Pair{static_cast<simd::PeIndex>(i),
                               static_cast<simd::PeIndex>(j)});
    }
  }
}

std::vector<simd::Pair> neighbor_pairs(
    std::span<const std::uint8_t> busy_flags,
    std::span<const std::uint8_t> idle_flags) {
  std::vector<simd::Pair> pairs;
  neighbor_pairs_into(busy_flags, idle_flags, pairs);
  return pairs;
}

void neighbor_pairs_into(const simd::BitPlane& busy_flags,
                         const simd::BitPlane& idle_flags,
                         std::vector<simd::Pair>& out) {
  out.clear();
  const std::size_t p = busy_flags.size();
  if (p == 0) return;
  constexpr std::size_t kWordBits = simd::BitPlane::kWordBits;
  const std::span<const std::uint64_t> busy = busy_flags.words();
  const std::span<const std::uint64_t> idle = idle_flags.words();
  const std::size_t nw = busy.size();
  for (std::size_t w = 0; w < nw; ++w) {
    // shifted bit b = idle[(w*64 + b + 1) % p]: a right funnel shift pulling
    // bit 0 of the next word (or, in the last word, idle[0] into the lane
    // P-1 position — the ring wrap).  Tail bits of the last idle word are
    // zero by the plane invariant, so they never leak into the shift.
    std::uint64_t shifted = idle[w] >> 1;
    if (w + 1 < nw) {
      shifted |= idle[w + 1] << (kWordBits - 1);
    } else {
      shifted |= static_cast<std::uint64_t>(idle[0] & 1)
                 << ((p - 1) % kWordBits);
    }
    std::uint64_t m = busy[w] & shifted;
    while (m != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(m));
      m &= m - 1;
      const std::size_t i = w * kWordBits + b;
      const std::size_t j = i + 1 == p ? 0 : i + 1;
      out.push_back(simd::Pair{static_cast<simd::PeIndex>(i),
                               static_cast<simd::PeIndex>(j)});
    }
  }
}

void neighbor_pairs_into(const simd::BitPlane& busy_flags,
                         const simd::SummaryPlane& busy_summary,
                         const simd::BitPlane& idle_flags,
                         std::vector<simd::Pair>& out) {
  out.clear();
  const std::size_t p = busy_flags.size();
  if (p == 0) return;
  constexpr std::size_t kWordBits = simd::BitPlane::kWordBits;
  const std::span<const std::uint64_t> busy = busy_flags.words();
  const std::span<const std::uint64_t> idle = idle_flags.words();
  const std::size_t nw = busy.size();
  // A word with no busy lane contributes no pairs, so the flat word loop can
  // hop via the busy summary without changing the pair sequence.  The idle
  // neighbour word is loaded unconditionally — its summary state is
  // irrelevant to the funnel shift.
  for (std::size_t w = busy_summary.next_occupied(0); w < nw;
       w = busy_summary.next_occupied(w + 1)) {
    std::uint64_t shifted = idle[w] >> 1;
    if (w + 1 < nw) {
      shifted |= idle[w + 1] << (kWordBits - 1);
    } else {
      shifted |= static_cast<std::uint64_t>(idle[0] & 1)
                 << ((p - 1) % kWordBits);
    }
    std::uint64_t m = busy[w] & shifted;
    while (m != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(m));
      m &= m - 1;
      const std::size_t i = w * kWordBits + b;
      const std::size_t j = i + 1 == p ? 0 : i + 1;
      out.push_back(simd::Pair{static_cast<simd::PeIndex>(i),
                               static_cast<simd::PeIndex>(j)});
    }
  }
}

}  // namespace simdts::lb
