#include "lb/matching.hpp"

namespace simdts::lb {

void Matcher::match_into(std::span<const std::uint8_t> busy_flags,
                         std::span<const std::uint8_t> idle_flags,
                         std::size_t limit, std::vector<simd::Pair>& out) {
  const simd::PeIndex start_after =
      scheme_ == MatchScheme::kGP ? pointer_ : simd::kNoPe;
  simd::rendezvous_into(busy_flags, idle_flags, start_after, limit, out);
  if (scheme_ == MatchScheme::kGP && !out.empty()) {
    pointer_ = out.back().donor;
  }
}

std::vector<simd::Pair> Matcher::match(
    std::span<const std::uint8_t> busy_flags,
    std::span<const std::uint8_t> idle_flags, std::size_t limit) {
  std::vector<simd::Pair> pairs;
  match_into(busy_flags, idle_flags, limit, pairs);
  return pairs;
}

void neighbor_pairs_into(std::span<const std::uint8_t> busy_flags,
                         std::span<const std::uint8_t> idle_flags,
                         std::vector<simd::Pair>& out) {
  out.clear();
  const std::size_t p = busy_flags.size();
  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t j = (i + 1) % p;
    if (busy_flags[i] != 0 && idle_flags[j] != 0) {
      out.push_back(simd::Pair{static_cast<simd::PeIndex>(i),
                               static_cast<simd::PeIndex>(j)});
    }
  }
}

std::vector<simd::Pair> neighbor_pairs(
    std::span<const std::uint8_t> busy_flags,
    std::span<const std::uint8_t> idle_flags) {
  std::vector<simd::Pair> pairs;
  neighbor_pairs_into(busy_flags, idle_flags, pairs);
  return pairs;
}

}  // namespace simdts::lb
