// Run metrics: everything the paper's tables report, plus the fault and
// recovery counters of the robustness extension (docs/robustness.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "search/problem.hpp"
#include "simd/machine.hpp"

namespace simdts::lb {

/// Per-cycle activity snapshot (Figure 8 traces).
struct TracePoint {
  std::uint32_t working;     ///< PEs that expanded a node this cycle
  std::uint32_t splittable;  ///< PEs that were busy in the paper's sense
  std::uint32_t alive = 0;   ///< surviving lanes (== P with no faults)

  friend bool operator==(const TracePoint&, const TracePoint&) = default;
};

/// Metrics of one bounded parallel DFS (one IDA* iteration).
struct IterationStats {
  search::Bound bound = 0;
  std::uint64_t nodes_expanded = 0;  ///< pops (== serial W of the iteration)
  std::uint64_t goals_found = 0;
  search::Bound next_bound = search::kUnbounded;
  std::uint64_t expand_cycles = 0;   ///< N_expand
  std::uint64_t lb_phases = 0;       ///< N_lb (phases)
  std::uint64_t lb_rounds = 0;       ///< *N_lb (transfer rounds)
  std::uint64_t transfers = 0;       ///< individual donor->receiver transfers
  // Fault / recovery counters (all zero unless a FaultPlan was armed).
  std::uint64_t pes_killed = 0;       ///< kill events applied this iteration
  std::uint64_t pes_revived = 0;      ///< revive events applied
  std::uint64_t nodes_recovered = 0;  ///< stack nodes re-donated from dead PEs
  std::uint64_t recovery_phases = 0;  ///< kill events that required recovery
  std::uint64_t recovery_rounds = 0;  ///< recovery transfer rounds charged
  std::uint64_t messages_dropped = 0; ///< lb transfers lost by the router
  simd::MachineClock clock;          ///< simulated-time accounting
  std::vector<TracePoint> trace;     ///< per-cycle activity, if recorded

  /// E = T_calc / (T_calc + T_idle + T_lb + T_recover), Section 3.1.
  [[nodiscard]] double efficiency() const { return clock.efficiency(); }

  IterationStats& operator+=(const IterationStats& o);

  /// Field-by-field (and bitwise for the clock) equality; the determinism
  /// tests assert fault runs are identical across host thread counts.
  friend bool operator==(const IterationStats&,
                         const IterationStats&) = default;
};

/// Metrics of a full parallel IDA* run (all iterations).
struct RunStats {
  search::Bound solution_bound = search::kUnbounded;
  std::uint64_t goals_found = 0;  ///< goals at the solution threshold
  IterationStats total;           ///< aggregated over all iterations
  IterationStats final_iteration;
  std::vector<IterationStats> iterations;

  [[nodiscard]] double efficiency() const { return total.efficiency(); }

  friend bool operator==(const RunStats&, const RunStats&) = default;
};

/// One-line human-readable summary.
[[nodiscard]] std::string summarize(const IterationStats& s);
[[nodiscard]] std::string summarize(const RunStats& s);

/// Exact single-line serialization for sweep journals (checkpoint/resume of
/// long table sweeps): every integer verbatim, every double as its IEEE-754
/// bit pattern, so a decoded record is bit-identical to the original and a
/// resumed sweep prints byte-identical CSVs.  The per-cycle trace is NOT
/// journaled (resumable sweeps run with record_trace off); decoding yields an
/// empty trace.
[[nodiscard]] std::string encode_journal(const IterationStats& s);

/// Inverse of encode_journal().  Returns false (leaving `out` untouched) on
/// any malformed or truncated payload — a torn journal line is skipped, and
/// the task is simply re-run.
[[nodiscard]] bool decode_journal(const std::string& payload,
                                  IterationStats& out);

}  // namespace simdts::lb
