// Run metrics: everything the paper's tables report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "search/problem.hpp"
#include "simd/machine.hpp"

namespace simdts::lb {

/// Per-cycle activity snapshot (Figure 8 traces).
struct TracePoint {
  std::uint32_t working;     ///< PEs that expanded a node this cycle
  std::uint32_t splittable;  ///< PEs that were busy in the paper's sense
};

/// Metrics of one bounded parallel DFS (one IDA* iteration).
struct IterationStats {
  search::Bound bound = 0;
  std::uint64_t nodes_expanded = 0;  ///< pops (== serial W of the iteration)
  std::uint64_t goals_found = 0;
  search::Bound next_bound = search::kUnbounded;
  std::uint64_t expand_cycles = 0;   ///< N_expand
  std::uint64_t lb_phases = 0;       ///< N_lb (phases)
  std::uint64_t lb_rounds = 0;       ///< *N_lb (transfer rounds)
  std::uint64_t transfers = 0;       ///< individual donor->receiver transfers
  simd::MachineClock clock;          ///< simulated-time accounting
  std::vector<TracePoint> trace;     ///< per-cycle activity, if recorded

  /// E = T_calc / (T_calc + T_idle + T_lb), Section 3.1.
  [[nodiscard]] double efficiency() const { return clock.efficiency(); }

  IterationStats& operator+=(const IterationStats& o);
};

/// Metrics of a full parallel IDA* run (all iterations).
struct RunStats {
  search::Bound solution_bound = search::kUnbounded;
  std::uint64_t goals_found = 0;  ///< goals at the solution threshold
  IterationStats total;           ///< aggregated over all iterations
  IterationStats final_iteration;
  std::vector<IterationStats> iterations;

  [[nodiscard]] double efficiency() const { return total.efficiency(); }
};

/// One-line human-readable summary.
[[nodiscard]] std::string summarize(const IterationStats& s);
[[nodiscard]] std::string summarize(const RunStats& s);

}  // namespace simdts::lb
