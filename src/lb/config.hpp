// Scheme configuration: which matching scheme, trigger, and transfer policy
// a run uses (the paper's Table 1, plus the Section 8 baselines).
#pragma once

#include <cstdint>
#include <string>

#include "search/splitter.hpp"

namespace simdts::lb {

/// How idle processors are matched with busy donors in a load-balancing
/// phase.
enum class MatchScheme : std::uint8_t {
  kNGP,       ///< enumeration from PE 0 every phase (Powley/Mahanti style)
  kGP,        ///< enumeration resumes after a global pointer (the paper's new scheme)
  kNeighbor,  ///< ring nearest-neighbour transfers (Frye's second scheme)
};

/// When a load-balancing phase is initiated.
enum class TriggerKind : std::uint8_t {
  kStatic,     ///< S^x: trigger when A <= x * P               (eq. 1)
  kDP,         ///< Powley/Ferguson/Korf: w - A*t >= A*L        (eq. 3)
  kDK,         ///< the paper's new trigger: w_idle >= L * P    (eq. 4)
  kAnyIdle,    ///< as soon as one processor is idle (FESS / FEGS)
  kEveryCycle, ///< unconditional (used with neighbour matching)
};

/// What a matched donor sends.
enum class TransferPolicy : std::uint8_t {
  kSplit,           ///< split the stack with the configured SplitStrategy
  kGiveOneNodeEach, ///< donors hand one node to each of several idle PEs
                    ///< (Frye's first scheme — a deliberately poor splitter)
};

/// Which processors count as "active" for the trigger condition.
enum class BusyPolicy : std::uint8_t {
  kSplittable,  ///< stack size >= 2 — the paper's definition of busy
  kNonEmpty,    ///< stack size >= 1 — ablation variant
};

struct SchemeConfig {
  MatchScheme match = MatchScheme::kGP;
  TriggerKind trigger = TriggerKind::kStatic;
  /// Threshold x of the static trigger (fraction of P).
  double static_x = 0.75;
  /// Repeat transfer rounds within one phase until no idle processor can be
  /// served.  The paper requires this for D^P and uses single transfers
  /// everywhere else.
  bool multiple_transfers = false;
  /// Cap on donor->receiver pairs per transfer round (0 = unlimited).  The
  /// FESS baseline serves a single idle processor per phase.
  std::uint32_t max_pairs_per_round = 0;
  TransferPolicy transfer = TransferPolicy::kSplit;
  search::SplitStrategy split = search::SplitStrategy::kBottomNode;
  BusyPolicy busy = BusyPolicy::kSplittable;
  /// Initial distribution phase for the dynamic triggers: static triggering
  /// with this threshold until that fraction of PEs is active (Section 7).
  /// Ignored by static and kAnyIdle triggers.
  double init_threshold = 0.85;
  /// Record the number of active processors after every node-expansion cycle
  /// (Figure 8 traces).
  bool record_trace = false;
  /// Sample aggregate stack heap bytes after every expansion cycle (the
  /// mega-P `bytes_per_lane` benchmarks).  Off by default: the sweep is
  /// O(P) per cycle.  Never affects simulated results.
  bool track_stack_memory = false;

  [[nodiscard]] std::string name() const;

  /// Rejects parameter values that can only produce degenerate runs: the
  /// static threshold and the initial-distribution threshold must lie in
  /// (0, 1] (a threshold of 0 never triggers and surfaces as NaN-free but
  /// meaningless tables; above 1 triggers every cycle by accident), and both
  /// must be finite.  Throws simdts::ConfigError naming this config and the
  /// offending field.  Machine size constraints are deliberately absent: the
  /// scan-based rendezvous works for any P >= 1, power of two or not.
  void validate() const;
};

[[nodiscard]] const char* to_string(MatchScheme m);
[[nodiscard]] const char* to_string(TriggerKind t);
[[nodiscard]] const char* to_string(TransferPolicy t);
[[nodiscard]] const char* to_string(BusyPolicy b);

/// The six schemes of the paper's Table 1.
[[nodiscard]] SchemeConfig ngp_static(double x);
[[nodiscard]] SchemeConfig gp_static(double x);
[[nodiscard]] SchemeConfig ngp_dp();
[[nodiscard]] SchemeConfig gp_dp();
[[nodiscard]] SchemeConfig ngp_dk();
[[nodiscard]] SchemeConfig gp_dk();

}  // namespace simdts::lb
