// Matching schemes: nGP and GP (Section 2), plus the ring nearest-neighbour
// pairing used by the Frye baseline.
//
// Both global schemes are one-on-one matchings of busy donors to idle
// receivers via enumeration (sum-scans on the real machine).  nGP enumerates
// busy processors from PE 0 every time, so the processors early in the
// enumeration sequence are drafted into donating over and over (Appendix B
// shows V(P) can reach log^{(2x-1)/(1-x)} W phases).  GP keeps a *global
// pointer* to the last donor of the previous phase and starts the busy
// enumeration just after it, wrapping around — every processor shares the
// donation burden, and V(P) drops to 1/(1-x).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lb/config.hpp"
#include "simd/rendezvous.hpp"

namespace simdts::lb {

class Matcher {
 public:
  explicit Matcher(MatchScheme scheme) : scheme_(scheme) {}

  /// Produces min(#busy, #idle, limit) donor->receiver pairs.  For GP,
  /// advances the global pointer to the last donor of this call.  The limit
  /// exists for the FESS baseline, which serves a single idle processor per
  /// phase; it is pushed down into the rendezvous walk, so a small limit
  /// never materializes (then truncates) the full pair enumeration.
  [[nodiscard]] std::vector<simd::Pair> match(
      std::span<const std::uint8_t> busy_flags,
      std::span<const std::uint8_t> idle_flags,
      std::size_t limit = static_cast<std::size_t>(-1));

  /// As match(), but fills a caller-owned buffer (cleared first) so the
  /// engine can reuse its capacity across load-balancing rounds.
  void match_into(std::span<const std::uint8_t> busy_flags,
                  std::span<const std::uint8_t> idle_flags, std::size_t limit,
                  std::vector<simd::Pair>& out);

  /// Packed-plane match: identical pair sequence and pointer advance as the
  /// byte-plane overload on the same occupancy pattern, but the enumerations
  /// are word-level popcount/countr_zero walks (the engine's hot path).
  void match_into(const simd::BitPlane& busy_flags,
                  const simd::BitPlane& idle_flags, std::size_t limit,
                  std::vector<simd::Pair>& out);

  /// Summary-aware match: as the packed overload (identical pair sequence and
  /// pointer advance), but both enumerations hop between occupied words via
  /// the planes' summaries, so a sparse round costs O(occupied words) instead
  /// of O(P/64) — the mega-P load-balancing path.
  void match_into(const simd::BitPlane& busy_flags,
                  const simd::SummaryPlane& busy_summary,
                  const simd::BitPlane& idle_flags,
                  const simd::SummaryPlane& idle_summary, std::size_t limit,
                  std::vector<simd::Pair>& out);

  /// Position of the global pointer (kNoPe before the first GP phase, and
  /// always kNoPe for nGP).
  [[nodiscard]] simd::PeIndex pointer() const { return pointer_; }

  /// Resets the pointer (e.g. between IDA* iterations, the pointer persists;
  /// call this only to re-run from scratch).
  void reset() { pointer_ = simd::kNoPe; }

  [[nodiscard]] MatchScheme scheme() const { return scheme_; }

 private:
  MatchScheme scheme_;
  simd::PeIndex pointer_ = simd::kNoPe;
};

/// Ring nearest-neighbour pairing: PE i donates to PE i+1 (mod P) when i is
/// busy and i+1 is idle.  Decisions are taken on the snapshot flags, as on a
/// lock-step machine.
[[nodiscard]] std::vector<simd::Pair> neighbor_pairs(
    std::span<const std::uint8_t> busy_flags,
    std::span<const std::uint8_t> idle_flags);

/// As neighbor_pairs(), but fills a caller-owned buffer (cleared first).
void neighbor_pairs_into(std::span<const std::uint8_t> busy_flags,
                         std::span<const std::uint8_t> idle_flags,
                         std::vector<simd::Pair>& out);

/// Packed-plane ring pairing: the pair plane is busy AND (idle rotated one
/// lane toward lower indices), computed one word at a time — a funnel shift
/// per word instead of a per-lane walk.  Pair order matches the byte-plane
/// overload exactly.
void neighbor_pairs_into(const simd::BitPlane& busy_flags,
                         const simd::BitPlane& idle_flags,
                         std::vector<simd::Pair>& out);

/// Summary-aware ring pairing: identical pair sequence to the packed overload,
/// but only busy-summary-occupied words are visited (a word with no busy lane
/// contributes no pairs regardless of the idle plane).
void neighbor_pairs_into(const simd::BitPlane& busy_flags,
                         const simd::SummaryPlane& busy_summary,
                         const simd::BitPlane& idle_flags,
                         std::vector<simd::Pair>& out);

}  // namespace simdts::lb
