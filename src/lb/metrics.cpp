#include "lb/metrics.hpp"

#include <sstream>

#include "search/bound.hpp"

namespace simdts::lb {

IterationStats& IterationStats::operator+=(const IterationStats& o) {
  nodes_expanded += o.nodes_expanded;
  goals_found += o.goals_found;
  expand_cycles += o.expand_cycles;
  lb_phases += o.lb_phases;
  lb_rounds += o.lb_rounds;
  transfers += o.transfers;
  clock += o.clock;
  // bound / next_bound / trace are per-iteration quantities; keep the
  // accumulator's values untouched.
  return *this;
}

std::string summarize(const IterationStats& s) {
  std::ostringstream os;
  os << "bound=" << search::describe(s.bound) << " W=" << s.nodes_expanded
     << " goals=" << s.goals_found << " Nexpand=" << s.expand_cycles
     << " Nlb=" << s.lb_phases << " rounds=" << s.lb_rounds
     << " transfers=" << s.transfers << " E=" << s.efficiency();
  return os.str();
}

std::string summarize(const RunStats& s) {
  std::ostringstream os;
  os << "solution=" << search::describe(s.solution_bound)
     << " goals=" << s.goals_found << " iterations=" << s.iterations.size()
     << " W=" << s.total.nodes_expanded
     << " Nexpand=" << s.total.expand_cycles << " Nlb=" << s.total.lb_phases
     << " rounds=" << s.total.lb_rounds << " E=" << s.efficiency();
  return os.str();
}

}  // namespace simdts::lb
