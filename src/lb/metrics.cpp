#include "lb/metrics.hpp"

#include <bit>
#include <sstream>

#include "search/bound.hpp"

namespace simdts::lb {

IterationStats& IterationStats::operator+=(const IterationStats& o) {
  nodes_expanded += o.nodes_expanded;
  goals_found += o.goals_found;
  expand_cycles += o.expand_cycles;
  lb_phases += o.lb_phases;
  lb_rounds += o.lb_rounds;
  transfers += o.transfers;
  pes_killed += o.pes_killed;
  pes_revived += o.pes_revived;
  nodes_recovered += o.nodes_recovered;
  recovery_phases += o.recovery_phases;
  recovery_rounds += o.recovery_rounds;
  messages_dropped += o.messages_dropped;
  clock += o.clock;
  // bound / next_bound / trace are per-iteration quantities; keep the
  // accumulator's values untouched.
  return *this;
}

std::string summarize(const IterationStats& s) {
  std::ostringstream os;
  os << "bound=" << search::describe(s.bound) << " W=" << s.nodes_expanded
     << " goals=" << s.goals_found << " Nexpand=" << s.expand_cycles
     << " Nlb=" << s.lb_phases << " rounds=" << s.lb_rounds
     << " transfers=" << s.transfers << " E=" << s.efficiency();
  if (s.pes_killed > 0 || s.messages_dropped > 0) {
    os << " killed=" << s.pes_killed << " revived=" << s.pes_revived
       << " recovered=" << s.nodes_recovered
       << " recovery_rounds=" << s.recovery_rounds
       << " dropped=" << s.messages_dropped;
  }
  return os.str();
}

std::string summarize(const RunStats& s) {
  std::ostringstream os;
  os << "solution=" << search::describe(s.solution_bound)
     << " goals=" << s.goals_found << " iterations=" << s.iterations.size()
     << " W=" << s.total.nodes_expanded
     << " Nexpand=" << s.total.expand_cycles << " Nlb=" << s.total.lb_phases
     << " rounds=" << s.total.lb_rounds << " E=" << s.efficiency();
  return os.str();
}

namespace {

void put_f64(std::ostream& os, double v) {
  os << ' ' << std::bit_cast<std::uint64_t>(v);
}

bool get_u64(std::istream& is, std::uint64_t& v) {
  return static_cast<bool>(is >> v);
}

bool get_f64(std::istream& is, double& v) {
  std::uint64_t bits = 0;
  if (!(is >> bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

bool get_i64(std::istream& is, std::int64_t& v) {
  return static_cast<bool>(is >> v);
}

}  // namespace

std::string encode_journal(const IterationStats& s) {
  std::ostringstream os;
  os << "v1 " << static_cast<std::int64_t>(s.bound) << ' ' << s.nodes_expanded
     << ' ' << s.goals_found << ' ' << static_cast<std::int64_t>(s.next_bound)
     << ' ' << s.expand_cycles << ' ' << s.lb_phases << ' ' << s.lb_rounds
     << ' ' << s.transfers << ' ' << s.pes_killed << ' ' << s.pes_revived
     << ' ' << s.nodes_recovered << ' ' << s.recovery_phases << ' '
     << s.recovery_rounds << ' ' << s.messages_dropped;
  put_f64(os, s.clock.elapsed);
  put_f64(os, s.clock.calc_time);
  put_f64(os, s.clock.idle_time);
  put_f64(os, s.clock.lb_time);
  put_f64(os, s.clock.recovery_time);
  os << ' ' << s.clock.expand_cycles << ' ' << s.clock.lb_rounds << ' '
     << s.clock.recovery_rounds << ' ' << s.clock.nodes_expanded;
  return os.str();
}

bool decode_journal(const std::string& payload, IterationStats& out) {
  std::istringstream is(payload);
  std::string version;
  if (!(is >> version) || version != "v1") return false;
  IterationStats s;
  std::int64_t bound = 0;
  std::int64_t next_bound = 0;
  if (!get_i64(is, bound) || !get_u64(is, s.nodes_expanded) ||
      !get_u64(is, s.goals_found) || !get_i64(is, next_bound) ||
      !get_u64(is, s.expand_cycles) || !get_u64(is, s.lb_phases) ||
      !get_u64(is, s.lb_rounds) || !get_u64(is, s.transfers) ||
      !get_u64(is, s.pes_killed) || !get_u64(is, s.pes_revived) ||
      !get_u64(is, s.nodes_recovered) || !get_u64(is, s.recovery_phases) ||
      !get_u64(is, s.recovery_rounds) || !get_u64(is, s.messages_dropped) ||
      !get_f64(is, s.clock.elapsed) || !get_f64(is, s.clock.calc_time) ||
      !get_f64(is, s.clock.idle_time) || !get_f64(is, s.clock.lb_time) ||
      !get_f64(is, s.clock.recovery_time) ||
      !get_u64(is, s.clock.expand_cycles) || !get_u64(is, s.clock.lb_rounds) ||
      !get_u64(is, s.clock.recovery_rounds) ||
      !get_u64(is, s.clock.nodes_expanded)) {
    return false;
  }
  std::string extra;
  if (is >> extra) return false;  // trailing garbage: treat as torn
  s.bound = static_cast<search::Bound>(bound);
  s.next_bound = static_cast<search::Bound>(next_bound);
  out = std::move(s);
  return true;
}

}  // namespace simdts::lb
