// The parallel depth-first-search engine for (emulated) SIMD machines.
//
// This is the paper's Section 2 algorithm: the machine alternates between
// *search phases* — lock-step node-expansion cycles in which every processor
// with work pops and expands exactly one node — and *load-balancing phases*,
// in which busy processors split their stacks and send half to idle ones.
// A triggering condition, evaluated after every expansion cycle, decides when
// to switch; a matching scheme decides who sends to whom.
//
// All the scheme combinations of the paper's Table 1 (and the Section 8
// baselines) are expressed through SchemeConfig; the engine itself is
// domain-independent over any TreeProblem.
//
// Hot-path structure: the busy/idle flag planes are *packed bit planes*
// (simd::BitPlane, one std::uint64_t word per 64 lanes), and the census (how
// many stacks are non-empty / splittable / empty) is maintained incrementally
// — the expansion cycle walks only the active lanes (one word load covers 64
// lanes; a fully idle or dead block costs a single test) and accumulates
// census *deltas*; work transfers reclassify exactly the donor and receiver
// they move nodes between.  Matching enumerations are word-level
// popcount/countr_zero walks over the same planes.  Children of a popped
// node are staged in a flat per-lane buffer and appended to the stack in one
// batch (one capacity check), with the staging buffer cleared once per
// 64-lane word, not once per node.  When the Machine carries a thread pool,
// a cycle is spread over host lanes at word granularity — no two host lanes
// ever write the same flag word — with per-lane accumulators (counts, goals,
// pruned bounds) that are reduced in lane order after the barrier, so no
// mutex is taken inside the loop and the reduction order is fixed.
//
// Determinism: the run is a pure function of (problem, P, config, cost
// model, fault plan).  Host threads, if provided via the Machine's pool, only
// spread one lock-step cycle over cores; every PE's state is private and the
// per-lane partials are combined in lane order, so the result — including the
// order of recorded goal nodes — is identical for any thread count.
//
// Fault injection (docs/robustness.md): arm_faults() attaches a
// fault::FaultPlan whose events fire on the simulated expand-cycle clock.
// In degraded mode the census, rendezvous matching, and trigger accounting
// range over the *surviving* lane set; a killed PE's unexpanded stack
// intervals are journaled and re-donated to survivors in recovery phases
// costed like lb phases; dropped lb messages leave the work on the donor.
// The engine enforces a conservation invariant — every journaled node is
// re-donated exactly once and dead lanes never expand — so a fault run
// explores exactly the fault-free tree.  The dead-lane plane is packed too:
// the expansion loop masks it out one word at a time, so with no plan armed
// (the plane all-zero) the fault machinery costs one AND per 64 lanes and
// the run is bit-identical to the pre-fault engine.
// Mega-P (P up to 2^20 and beyond): three coordinated mechanisms keep such
// machines practical.  Per-lane state lives in a common::ShardedArray
// (64-word-aligned chunks, stable addresses, incremental allocation); each
// flag plane carries a simd::SummaryPlane (one bit per 64-lane word,
// maintained at the same write-back that stores the word) so the expansion
// walk and every load-balancing enumeration skip empty regions and scale
// with *occupied* words, not P; and the per-lane stack is a template
// parameter, so a DeltaTreeProblem can swap WorkStack's full-Node entries
// for CompactStack's 2-byte delta records (see CompactEngine below).  Host
// partitions are aligned to 64 plane words so every summary word keeps a
// single writer per cycle; alignment only moves chunk boundaries, which by
// the determinism guarantee above cannot move a single simulated result.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/sharded_array.hpp"
#include "fault/fault.hpp"
#include "lb/config.hpp"
#include "sanitizer/sanitizer.hpp"
#include "lb/matching.hpp"
#include "lb/metrics.hpp"
#include "lb/trigger.hpp"
#include "search/compact_stack.hpp"
#include "search/problem.hpp"
#include "search/splitter.hpp"
#include "search/work_stack.hpp"
#include "simd/bitplane.hpp"
#include "simd/machine.hpp"
#include "simd/summary.hpp"
#ifdef SIMDTS_VECTOR_BACKEND
#include "vec/expand.hpp"
#endif

namespace simdts::lb {

/// Execution backend of the expansion cycle.  kScalar is the bit-exact
/// reference: one problem_.expand() call per set bit.  kVector (available
/// only when the library is built with SIMDTS_VECTOR_BACKEND) pops each
/// word's active lanes into a struct-of-arrays batch and expands them with
/// one vec::BatchExpander call — same tree, same goals, same metrics, by
/// construction and by the oracle gate in tests/test_vector_backend.cpp.
enum class ExecBackend : std::uint8_t { kScalar, kVector };

/// `StackT` selects the per-lane stack representation: WorkStack<Node> (the
/// default — full nodes, every TreeProblem) or search::CompactStack<P> (delta
/// records, DeltaTreeProblem only; ~4x fewer bytes per lane on the
/// 15-puzzle).  Both satisfy the same stack contract and the engine's
/// simulated results are bit-identical across the two (pinned by
/// tests/test_compact_stack.cpp), so the choice is purely a host-memory
/// trade.
template <search::TreeProblem P,
          typename StackT = search::WorkStack<typename P::Node>>
class Engine {
 public:
  using Node = typename P::Node;
  using Stack = StackT;

  /// Throws simdts::ConfigError on an invalid scheme configuration (see
  /// SchemeConfig::validate).
  Engine(const P& problem, simd::Machine& machine, SchemeConfig cfg)
      : problem_(problem),
        machine_(machine),
        cfg_(cfg),
        matcher_(cfg.match),
        stacks_(machine.size()),
        busy_flags_(machine.size()),
        idle_flags_(machine.size()),
        dead_(machine.size()),
        alive_(machine.size()),
        lane_scratch_(machine.pool() != nullptr ? machine.pool()->size() : 1) {
    cfg_.validate();
    busy_summary_.assign_for_lanes(machine.size());
    idle_summary_.assign_for_lanes(machine.size());
    work_summary_.assign_for_lanes(machine.size());
    if constexpr (requires(StackT& s) { s.bind(problem); }) {
      stacks_.for_each([&problem](StackT& s) { s.bind(problem); });
    }
    // Size the lane scratch once, outside the lockstep region: a cycle
    // records at most one goal per PE and a batch never crosses one flag
    // word, so with these capacities a steady-state cycle touches no
    // allocator at all (the effect analysis pins the remaining growth
    // sites, see the markers in expand_cycle / expand_cycle_vector).  The
    // goal reserve is capped: at mega-P a per-host-lane reserve of P nodes
    // would itself dominate memory, and a cycle landing more than the cap in
    // goals at once is a terminal burst whose growth the markers cover.
    for (LaneScratch& ls : lane_scratch_) {
      ls.goal_nodes.reserve(std::min<std::size_t>(machine.size(), 4096));
#ifdef SIMDTS_VECTOR_BACKEND
      ls.batch_nodes.reserve(simd::BitPlane::kWordBits);
      ls.batch_counts.resize(simd::BitPlane::kWordBits);
#endif
    }
#ifdef SIMDTS_SANITIZE
    san_dead_.resize(machine.size());
#endif
  }

  /// Arms a fault plan: the plan's events fire on this engine's cumulative
  /// expand-cycle clock (across IDA* iterations of one run).  The plan is
  /// validated against the machine size; passing nullptr disarms.  Arming
  /// resets the fault state — dead lanes, the event cursor, the drop budget,
  /// and the recovery journal — so arm before each run() to replay a plan.
  void arm_faults(const fault::FaultPlan* plan) {
    if (plan != nullptr) plan->validate(machine_.size());
    fault_plan_ = plan;
    next_fault_ = 0;
    fault_clock_ = 0;
    drop_budget_ = 0;
    dead_.fill(false);
    alive_ = machine_.size();
    orphaned_total_ = 0;
    recovered_total_ = 0;
    recovery_journal_.clear();
#ifdef SIMDTS_SANITIZE
    san_dead_.clear();
#endif
  }

  /// Selects the execution backend for subsequent runs.  The scalar backend
  /// is always available; the vector backend requires the library to be
  /// built with SIMDTS_VECTOR_BACKEND=ON and throws simdts::ConfigError
  /// otherwise (requesting an absent backend is a configuration error, not
  /// a silent fallback — a benchmark that silently ran scalar would report
  /// fictitious speedups).
  void set_backend(ExecBackend backend) {
#ifndef SIMDTS_VECTOR_BACKEND
    if (backend == ExecBackend::kVector) {
      throw ConfigError(
          "vector backend requested but SIMDTS_VECTOR_BACKEND is not "
          "compiled in",
          cfg_.name());
    }
#endif
    backend_ = backend;
  }

  [[nodiscard]] ExecBackend backend() const noexcept { return backend_; }

  /// Watchdog: a nonzero budget bounds the expand cycles of each bounded DFS
  /// (each run_iteration / IDA* iteration); exceeding it throws
  /// simdts::TimeoutError with the scheme, machine size, and cycle count.
  /// The sweep runner converts that into a typed per-task timeout result.
  void set_cycle_budget(std::uint64_t max_cycles) {
    cycle_budget_ = max_cycles;
  }

  /// One bounded parallel DFS from the problem root: the root node is given
  /// to processor 0, the space is searched to exhaustion (all solutions at
  /// the bound are found — the paper's anomaly-free setup), and the
  /// iteration's metrics are returned.
  IterationStats run_iteration(search::Bound bound) {
    return run_core(bound, Mode::kExhaustive).stats;
  }

  /// First-solution mode: the machine quits at the end of the first
  /// node-expansion cycle in which any processor found a goal ("when a goal
  /// node is found, all of them quit", Section 2).  Node counts can then
  /// differ from the serial first-solution search in either direction —
  /// the speedup anomalies of Rao & Kumar that the paper's main experiments
  /// deliberately avoid.
  IterationStats run_first_solution(search::Bound bound) {
    return run_core(bound, Mode::kFirstSolution).stats;
  }

  struct BnbResult {
    IterationStats stats;
    /// Best goal f-value found (kUnbounded if none).
    search::Bound best = search::kUnbounded;
  };

  /// Depth-first branch and bound: searches exhaustively while *tightening*
  /// the cost bound whenever a better goal turns up.  Note that
  /// stats.goals_found counts every goal popped (including ones worse than
  /// the incumbent at their pop time), unlike serial_branch_and_bound's
  /// improvement count — the two are not comparable.  The incumbent is
  /// refreshed between expansion cycles — on the real machine a global
  /// min-reduction, which the CM-2 provides as a hardware scan.  Goals must
  /// report their full solution cost through f_value().
  BnbResult run_branch_and_bound(search::Bound initial_bound
                                 = search::kUnbounded) {
    return run_core(initial_bound, Mode::kBranchAndBound);
  }

 private:
  enum class Mode { kExhaustive, kFirstSolution, kBranchAndBound };

  [[nodiscard]] bool fault_armed() const noexcept {
    return fault_plan_ != nullptr;
  }

  BnbResult run_core(search::Bound bound, Mode mode) {
    const simd::MachineClock before = machine_.clock();
    BnbResult result;
    IterationStats& stats = result.stats;
    stats.bound = bound;

    stacks_.for_each([](StackT& s) { s.clear(); });
    // Initial census and flag planes: the first surviving PE holds the root
    // (one node, so not yet splittable), every other survivor is idle, dead
    // lanes are neither.  From here on the census is maintained
    // incrementally — by the expansion cycles, by each work transfer, and by
    // the fault events — and never recomputed by a full rescan.
    busy_flags_.fill(false);
    idle_flags_.fill(true);
    std::uint32_t root_pe = 0;
    if (fault_armed()) {
      if (alive_ == 0) {
        throw FaultError("no surviving PE to start an iteration on",
                         cfg_.name(), machine_.size(), fault_clock_);
      }
      simd::for_each_set(dead_,
                         [this](std::size_t i) { idle_flags_.reset(i); });
      while (dead_.test(root_pe)) ++root_pe;
    }
    stacks_[root_pe].push(problem_.root());
    idle_flags_.reset(root_pe);
    counts_ = Counts{};
    counts_.nonempty = 1;
    counts_.empty = alive_ - 1;
    rebuild_summaries();

    next_bound_ = search::NextBound{};
    goal_nodes_.clear();
    std::size_t goals_seen = 0;  // goal_nodes_ scanned so far (for B&B)

    Trigger trigger(cfg_, alive_, machine_.cost().t_expand,
                    initial_lb_cost());
    trigger.begin_search_phase();
    // The initial work-distribution phase (Section 7): dynamic triggers are
    // preceded by static triggering at init_threshold until that fraction of
    // processors is active.
    bool init_phase =
        cfg_.trigger == TriggerKind::kDP || cfg_.trigger == TriggerKind::kDK;

    while (counts_.nonempty > 0) {
      if (cycle_budget_ != 0 && stats.expand_cycles >= cycle_budget_) {
        throw TimeoutError(cfg_.name(), machine_.size(), stats.expand_cycles,
                           cycle_budget_);
      }
      const std::uint32_t working = counts_.nonempty;
#ifdef SIMDTS_VECTOR_BACKEND
      if (backend_ == ExecBackend::kVector) {
        expand_cycle_vector(bound, stats);
      } else {
        expand_cycle(bound, stats);
      }
#else
      expand_cycle(bound, stats);
#endif
      machine_.charge_expand_cycle(working, alive_);
      trigger.note_cycle(working);
      ++stats.expand_cycles;
      if (cfg_.track_stack_memory) note_stack_memory();
      if (cfg_.record_trace) {
        stats.trace.push_back(
            TracePoint{counts_.nonempty, counts_.splittable, alive_});
      }
      ++fault_clock_;
      if (fault_armed()) apply_due_faults(stats, trigger);

      if (mode == Mode::kFirstSolution && stats.goals_found > 0) {
        break;  // "when a goal node is found, all of them quit"
      }
      if (mode == Mode::kBranchAndBound) {
        // Global min-reduction over this cycle's new goals; tightening the
        // shared bound prunes everything not strictly better.
        for (; goals_seen < goal_nodes_.size(); ++goals_seen) {
          const search::Bound f = problem_.f_value(goal_nodes_[goals_seen]);
          if (f < result.best) result.best = f;
        }
        if (result.best != search::kUnbounded && result.best - 1 < bound) {
          bound = result.best - 1;
        }
      }

      const std::uint32_t active = cfg_.busy == BusyPolicy::kSplittable
                                       ? counts_.splittable
                                       : counts_.nonempty;
      bool fire;
      if (init_phase) {
        const bool below = static_cast<double>(active) <=
                           cfg_.init_threshold *
                               static_cast<double>(alive_);
        if (!below) init_phase = false;
        fire = below;
      } else {
        fire = trigger.should_trigger(active, counts_.empty);
      }
      if (fire && counts_.empty > 0 && counts_.splittable > 0) {
        lb_phase(stats, trigger);
      }
    }

    if (fault_armed()) check_conservation();
    stats.nodes_expanded = (machine_.clock() - before).nodes_expanded;
    stats.clock = machine_.clock() - before;
    if (next_bound_.has_value()) stats.next_bound = next_bound_.value();
    return result;
  }

 public:
  /// Full parallel IDA*: repeats run_iteration with increasing thresholds
  /// until an iteration finds a goal (that iteration still runs to
  /// exhaustion).  `max_expanded`, if non-zero, aborts once the total number
  /// of expansions exceeds it.
  RunStats run(std::uint64_t max_expanded = 0) {
    RunStats rs;
    goal_nodes_.clear();
    search::Bound bound = problem_.f_value(problem_.root());
    for (;;) {
      IterationStats iter = run_iteration(bound);
      rs.total += iter;
      rs.final_iteration = iter;
      rs.iterations.push_back(std::move(iter));
      const IterationStats& done = rs.iterations.back();
      if (done.goals_found > 0) {
        rs.solution_bound = bound;
        rs.goals_found = done.goals_found;
        return rs;
      }
      if (done.next_bound == search::kUnbounded) return rs;  // exhausted
      if (max_expanded != 0 && rs.total.nodes_expanded > max_expanded) {
        return rs;  // budget exceeded
      }
      bound = done.next_bound;
    }
  }

  /// Goal nodes found during the last run (all solutions at the final
  /// threshold, in PE-index order of the finding processor per cycle).
  [[nodiscard]] const std::vector<Node>& goal_nodes() const {
    return goal_nodes_;
  }

  /// The matcher (exposing the GP global pointer for tests).
  [[nodiscard]] const Matcher& matcher() const { return matcher_; }

  /// Direct access to the PE stacks, for white-box tests.
  [[nodiscard]] const common::ShardedArray<StackT>& stacks() const {
    return stacks_;
  }

  /// Returns surplus stack capacity to the allocator across every lane (the
  /// pooled-release path; a serial, between-runs operation).
  void trim_memory() {
    stacks_.for_each([](StackT& s) { s.shrink_to_fit(); });
  }

  /// Total heap bytes held by the per-lane stacks — the bytes-per-lane
  /// metric of the mega-P benchmarks.
  [[nodiscard]] std::size_t stack_memory_bytes() const {
    std::size_t total = 0;
    stacks_.for_each([&total](const StackT& s) { total += s.memory_bytes(); });
    return total;
  }

  /// Peak of stack_memory_bytes() across all cycles sampled so far.
  /// Requires SchemeConfig::track_stack_memory; zero otherwise.
  [[nodiscard]] std::uint64_t stack_memory_peak() const noexcept {
    return stack_bytes_peak_;
  }

  /// Time-averaged resident stack bytes per lane: the per-cycle sum of
  /// stack_memory_bytes() integrated over every sampled cycle, divided by
  /// (cycles * P).  This is the number that sizes a mega-P deployment —
  /// P * avg-bytes-per-lane is the expected resident footprint — and the
  /// `bytes_per_lane` figure of BENCH_engine.json's mega_p section.
  /// Requires SchemeConfig::track_stack_memory; zero otherwise.
  [[nodiscard]] double stack_memory_avg_per_lane() const noexcept {
    if (stack_bytes_cycles_ == 0) return 0.0;
    return static_cast<double>(stack_bytes_integral_) /
           (static_cast<double>(stack_bytes_cycles_) *
            static_cast<double>(machine_.size()));
  }

  /// Surviving lane count (== machine size with no faults applied).
  [[nodiscard]] std::uint32_t alive() const noexcept { return alive_; }

  /// The lost-work journal of the armed fault plan's kills: one record per
  /// kill event, with the detected orphan count and the recovery rounds it
  /// cost.  Cleared by arm_faults().
  [[nodiscard]] const std::vector<fault::RecoveryRecord>& recovery_journal()
      const noexcept {
    return recovery_journal_;
  }

 private:
  struct Counts {
    std::uint32_t nonempty = 0;
    std::uint32_t splittable = 0;
    std::uint32_t empty = 0;
  };

  /// Lane-private partial results of one expansion cycle; merged in lane
  /// order at the barrier.  Census changes are tracked as *deltas* against
  /// the incrementally-maintained counts_ (an untouched lane contributes
  /// nothing, so idle blocks cost no accounting).  The node buffers keep
  /// their capacity across cycles, so steady-state cycles allocate nothing.
  struct LaneScratch {
    std::int64_t d_nonempty = 0;    ///< minus the lanes that ran dry
    std::int64_t d_splittable = 0;  ///< splittable transitions, either way
    std::uint64_t goal_hits = 0;
    std::vector<Node> goal_nodes;
    std::vector<Node> children;  ///< flat staging buffer, cleared per word
    search::NextBound next_bound;
#ifdef SIMDTS_VECTOR_BACKEND
    std::vector<Node> batch_nodes;  ///< one word's popped non-goal nodes
    std::vector<std::uint32_t> batch_counts;  ///< per-slot child counts
#endif
  };

  [[nodiscard]] double initial_lb_cost() const {
    return cfg_.match == MatchScheme::kNeighbor
               ? machine_.cost().neighbor_cost()
               : machine_.lb_round_cost();
  }

  /// One lock-step node-expansion cycle.  Every non-empty PE pops one node;
  /// goal nodes are recorded (and not expanded), everything else is expanded
  /// with the bound.  The loop walks the packed flag planes one 64-lane word
  /// at a time: active lanes are the set bits of ~idle & ~dead (idle tracks
  /// "empty and alive", so the complement under the valid-lane mask is
  /// exactly the lanes holding work), extracted with std::countr_zero — a
  /// fully idle or dead block costs one load and one test, and the dead-lane
  /// check is a word-level AND (zero-cost when no plan is armed: the plane
  /// is all-zero).  Children are staged in the lane's flat buffer and
  /// appended to the owning stack in one batch; the buffer is cleared once
  /// per word, never per node.  Host lanes partition the *word* range, so no
  /// two lanes write the same flag word; census deltas, goals and pruned
  /// bounds land in lane scratch and are reduced in lane order at the
  /// barrier.
  // SIMDLINT-REGION(lockstep)
  void expand_cycle(search::Bound bound, IterationStats& stats) {
    for (auto& ls : lane_scratch_) {
      ls.d_nonempty = 0;
      ls.d_splittable = 0;
      ls.goal_hits = 0;
      ls.goal_nodes.clear();
      ls.next_bound = search::NextBound{};
    }
    constexpr std::size_t kWordBits = simd::BitPlane::kWordBits;
    std::uint64_t* const idle_words = idle_flags_.words().data();
    std::uint64_t* const busy_words = busy_flags_.words().data();
    const std::uint64_t* const dead_words = dead_.words().data();
    const std::size_t nwords = idle_flags_.word_count();
    const std::uint64_t last_mask = idle_flags_.word_mask(nwords - 1);
    simd::ThreadPool* pool = machine_.pool();
    // SIMDLINT-SOURCE(partition) — lane index and word-range bounds vary
    auto body = [&, bound](unsigned lane, std::size_t wbegin,
                           std::size_t wend) {
      LaneScratch& ls = lane_scratch_[lane];
#ifdef SIMDTS_SANITIZE
      // Register this worker's word-ownership claim for the dispatch; every
      // flag-word write below is checked against it.  The shrink mutation
      // under-claims by one word so the mutation test can prove an
      // out-of-claim write is caught.
      const std::size_t claim_end =
          san::mutation().shrink_word_claim && wend > wbegin ? wend - 1 : wend;
      san::WordClaim claim(san_claims_, lane, wbegin, claim_end);
      // The dead-lane-expansion mutation needs the flat walk: it fakes every
      // lane alive, which the work summary would mask back out by skipping
      // all-dead words entirely.
      const bool san_flat = san::mutation().expand_dead_lane;
#else
      constexpr bool san_flat = false;
#endif
      // Walk only work-summary-occupied words: a clear summary bit
      // guarantees `active == 0` below, so skipping it is exactly the flat
      // walk's `continue`.  The bounded scan stays inside this host lane's
      // 64-word-aligned chunk, whose summary words no other lane writes.
      for (std::size_t w =
               san_flat ? wbegin
                        : work_summary_.next_occupied_below(wbegin, wend);
           w < wend;
           w = san_flat ? w + 1
                        : work_summary_.next_occupied_below(w + 1, wend)) {
        const std::uint64_t valid =
            (w + 1 == nwords) ? last_mask : ~std::uint64_t{0};
        std::uint64_t idle_w = idle_words[w];
        std::uint64_t busy_w = busy_words[w];
        std::uint64_t not_dead = ~dead_words[w];
#ifdef SIMDTS_SANITIZE
        if (san::mutation().expand_dead_lane) not_dead = ~std::uint64_t{0};
#endif
        const std::uint64_t active = ~idle_w & not_dead & valid;
        if (active == 0) continue;
        ls.children.clear();
        const std::size_t base = w * kWordBits;
        std::uint64_t m = active;
        while (m != 0) {
          const auto b = static_cast<unsigned>(std::countr_zero(m));
          m &= m - 1;
#ifdef SIMDTS_SANITIZE
          san_dead_.check_alive(base + b, "expand");
#endif
          auto& st = stacks_[base + b];
          Node n = st.pop();
          if (problem_.is_goal(n)) {
            ++ls.goal_hits;
            // SIMDLINT-EFFECT-OK(allocates) capacity min(P, 4096) reserved
            ls.goal_nodes.push_back(std::move(n));  // at construction; only
            // a terminal goal burst past the cap grows it, amortized.
          } else {
            const std::size_t staged = ls.children.size();
            // SIMDLINT-EFFECT-OK(allocates) children is persistent-capacity
            problem_.expand(n, bound, ls.children, ls.next_bound);  // lane
            // scratch: growth is amortized across the whole run.
            const std::size_t added = ls.children.size() - staged;
            if (added != 0) st.append(ls.children.data() + staged, added);
          }
          const std::uint64_t bit = std::uint64_t{1} << b;
          const bool was_split = (busy_w & bit) != 0;
          if (st.empty()) {
            idle_w |= bit;
            busy_w &= ~bit;
            --ls.d_nonempty;
            if (was_split) --ls.d_splittable;
            if constexpr (requires { st.release_if_drained(); }) {
              // Pooled release: a drained lane's heap goes back to the
              // allocator the cycle it goes idle, so resident stack memory
              // tracks *live* work — the memory bound that makes P = 2^20
              // practical.  Memory-only: simulated results are unchanged.
              st.release_if_drained();
            }
          } else if (st.splittable() != was_split) {
            ls.d_splittable += was_split ? -1 : 1;
            busy_w ^= bit;
          }
        }
#ifdef SIMDTS_SANITIZE
        san::check_word_write(san_claims_, w);
#endif
        idle_words[w] = idle_w;
        busy_words[w] = busy_w;
        busy_summary_.update_word(w, busy_w);
        idle_summary_.update_word(w, idle_w);
        work_summary_.update_word(w, ~idle_w & ~dead_words[w] & valid);
      }
    };
    if (pool != nullptr && pool->size() > 1) {
      // 64-word alignment gives every summary word a single writer; chunk
      // boundaries never affect simulated results (see the determinism note
      // in the header comment).
      pool->parallel_for_lanes_aligned(nwords, simd::BitPlane::kWordBits,
                                       body);
    } else {
      body(0, 0, nwords);
    }
#ifdef SIMDTS_SANITIZE
    if (san::mutation().corrupt_tail && last_mask != ~std::uint64_t{0}) {
      // Mutation: set the first invalid bit past size() in the idle plane so
      // the per-cycle tail sweep below can prove it fires.
      idle_words[nwords - 1] |= ~last_mask & (last_mask + 1);
    }
    if (san::mutation().drop_census_delta && !lane_scratch_.empty()) {
      // Mutation: lose lane 0's splittable delta, desynchronizing the
      // incremental census from the stacks.
      lane_scratch_[0].d_splittable = 0;
    }
#endif
    reduce_cycle_scratch(stats);
#ifdef SIMDTS_SANITIZE
    san_verify_cycle();
#endif
  }

  /// Ordered reduction of the per-lane scratch at the cycle barrier: lane 0
  /// first, then lane 1, ... — bit-identical for any lane count.  Shared by
  /// both execution backends (the reduction is where the determinism
  /// guarantee lives, so there is exactly one copy of it).
  // SIMDLINT-MERGE(commutative) — fixed lane order, thread-count-invariant
  void reduce_cycle_scratch(IterationStats& stats) {
    std::int64_t d_nonempty = 0;
    std::int64_t d_splittable = 0;
    for (auto& ls : lane_scratch_) {
      d_nonempty += ls.d_nonempty;
      d_splittable += ls.d_splittable;
      stats.goals_found += ls.goal_hits;
      next_bound_.merge(ls.next_bound);
      // SIMDLINT-EFFECT-OK(allocates) goal recording is the run's output
      for (auto& g : ls.goal_nodes) goal_nodes_.push_back(std::move(g));
      // channel: it only ever grows on the cycle a solution lands.
    }
    counts_.nonempty = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(counts_.nonempty) + d_nonempty);
    counts_.splittable = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(counts_.splittable) + d_splittable);
    counts_.empty = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(counts_.empty) - d_nonempty);
  }

#ifdef SIMDTS_VECTOR_BACKEND
  /// One lock-step expansion cycle on the vector backend.  Same word walk,
  /// same flag/census discipline, same host-thread word partitioning as
  /// expand_cycle() — but each word's active lanes are popped into a
  /// struct-of-arrays batch and expanded by a single vec::BatchExpander
  /// call instead of one problem_.expand() per set bit.
  ///
  /// Bit-exactness with the scalar cycle, piece by piece:
  ///  - Goal lanes are detected at pop time in bit order and excluded from
  ///    the batch, so goal_nodes_ order is unchanged.
  ///  - Dead lanes never enter a batch: `active` masks them out word by
  ///    word exactly as in the scalar walk (satisfying degraded mode's
  ///    dead-lanes-never-expand invariant).
  ///  - The batch expander's contract (search::expand_batch) is per-slot
  ///    observational equivalence with scalar expand(), so each stack
  ///    receives the same children in the same order.
  ///  - The scatter pass replays the per-lane flag/census transitions in
  ///    bit order, so every plane word and census delta is identical.
  ///  - A batch never crosses a word, hence never a host-thread ownership
  ///    boundary; the barrier reduction is the same reduce_cycle_scratch.
  // SIMDLINT-REGION(lockstep)
  void expand_cycle_vector(search::Bound bound, IterationStats& stats) {
    for (auto& ls : lane_scratch_) {
      ls.d_nonempty = 0;
      ls.d_splittable = 0;
      ls.goal_hits = 0;
      ls.goal_nodes.clear();
      ls.next_bound = search::NextBound{};
    }
    constexpr std::size_t kWordBits = simd::BitPlane::kWordBits;
    std::uint64_t* const idle_words = idle_flags_.words().data();
    std::uint64_t* const busy_words = busy_flags_.words().data();
    const std::uint64_t* const dead_words = dead_.words().data();
    const std::size_t nwords = idle_flags_.word_count();
    const std::uint64_t last_mask = idle_flags_.word_mask(nwords - 1);
    simd::ThreadPool* pool = machine_.pool();
    // SIMDLINT-SOURCE(partition) — lane index and word-range bounds vary
    auto body = [&, bound](unsigned lane, std::size_t wbegin,
                           std::size_t wend) {
      LaneScratch& ls = lane_scratch_[lane];
#ifdef SIMDTS_SANITIZE
      const std::size_t claim_end =
          san::mutation().shrink_word_claim && wend > wbegin ? wend - 1 : wend;
      san::WordClaim claim(san_claims_, lane, wbegin, claim_end);
      // The dead-lane-expansion mutation needs the flat walk: it fakes every
      // lane alive, which the work summary would mask back out by skipping
      // all-dead words entirely.
      const bool san_flat = san::mutation().expand_dead_lane;
#else
      constexpr bool san_flat = false;
#endif
      // Walk only work-summary-occupied words: a clear summary bit
      // guarantees `active == 0` below, so skipping it is exactly the flat
      // walk's `continue`.  The bounded scan stays inside this host lane's
      // 64-word-aligned chunk, whose summary words no other lane writes.
      for (std::size_t w =
               san_flat ? wbegin
                        : work_summary_.next_occupied_below(wbegin, wend);
           w < wend;
           w = san_flat ? w + 1
                        : work_summary_.next_occupied_below(w + 1, wend)) {
        const std::uint64_t valid =
            (w + 1 == nwords) ? last_mask : ~std::uint64_t{0};
        std::uint64_t idle_w = idle_words[w];
        std::uint64_t busy_w = busy_words[w];
        std::uint64_t not_dead = ~dead_words[w];
#ifdef SIMDTS_SANITIZE
        if (san::mutation().expand_dead_lane) not_dead = ~std::uint64_t{0};
#endif
        const std::uint64_t active = ~idle_w & not_dead & valid;
        if (active == 0) continue;
        ls.children.clear();
        ls.batch_nodes.clear();
        const std::size_t base = w * kWordBits;
        // Pop pass: gather the word's non-goal nodes into the batch, in bit
        // order; goals are recorded immediately (bit order = goal order).
        std::uint64_t goal_bits = 0;
        std::uint64_t m = active;
        while (m != 0) {
          const auto b = static_cast<unsigned>(std::countr_zero(m));
          m &= m - 1;
#ifdef SIMDTS_SANITIZE
          san_dead_.check_alive(base + b, "expand");
#endif
          Node n = stacks_[base + b].pop();
          if (problem_.is_goal(n)) {
            ++ls.goal_hits;
            // SIMDLINT-EFFECT-OK(allocates) capacity min(P, 4096) reserved
            ls.goal_nodes.push_back(std::move(n));  // at construction; only
            // a terminal goal burst past the cap grows it, amortized.
            goal_bits |= std::uint64_t{1} << b;
          } else {
            // SIMDLINT-EFFECT-OK(allocates) capacity kWordBits reserved at
            ls.batch_nodes.push_back(std::move(n));  // construction; a batch
            // never crosses one flag word, so this never reallocates.
          }
        }
        if (!ls.batch_nodes.empty()) {
          // SIMDLINT-EFFECT-OK(allocates) children is persistent-capacity
          vec::BatchExpander<P>::expand(
              problem_, ls.batch_nodes.data(),
              static_cast<std::uint32_t>(ls.batch_nodes.size()), bound,
              ls.children, ls.batch_counts.data(), ls.next_bound);
        }
        // Scatter pass: append each slot's children run to its stack and
        // replay the scalar flag/census transitions in bit order.
        std::size_t off = 0;
        std::uint32_t slot = 0;
        m = active;
        while (m != 0) {
          const auto b = static_cast<unsigned>(std::countr_zero(m));
          m &= m - 1;
          auto& st = stacks_[base + b];
          if ((goal_bits >> b & 1) == 0) {
            const std::size_t added = ls.batch_counts[slot++];
            if (added != 0) st.append(ls.children.data() + off, added);
            off += added;
          }
          const std::uint64_t bit = std::uint64_t{1} << b;
          const bool was_split = (busy_w & bit) != 0;
          if (st.empty()) {
            idle_w |= bit;
            busy_w &= ~bit;
            --ls.d_nonempty;
            if (was_split) --ls.d_splittable;
            if constexpr (requires { st.release_if_drained(); }) {
              // Pooled release: a drained lane's heap goes back to the
              // allocator the cycle it goes idle, so resident stack memory
              // tracks *live* work — the memory bound that makes P = 2^20
              // practical.  Memory-only: simulated results are unchanged.
              st.release_if_drained();
            }
          } else if (st.splittable() != was_split) {
            ls.d_splittable += was_split ? -1 : 1;
            busy_w ^= bit;
          }
        }
#ifdef SIMDTS_SANITIZE
        san::check_word_write(san_claims_, w);
#endif
        idle_words[w] = idle_w;
        busy_words[w] = busy_w;
        busy_summary_.update_word(w, busy_w);
        idle_summary_.update_word(w, idle_w);
        work_summary_.update_word(w, ~idle_w & ~dead_words[w] & valid);
      }
    };
    if (pool != nullptr && pool->size() > 1) {
      // 64-word alignment gives every summary word a single writer; chunk
      // boundaries never affect simulated results (see the determinism note
      // in the header comment).
      pool->parallel_for_lanes_aligned(nwords, simd::BitPlane::kWordBits,
                                       body);
    } else {
      body(0, 0, nwords);
    }
#ifdef SIMDTS_SANITIZE
    if (san::mutation().corrupt_tail && last_mask != ~std::uint64_t{0}) {
      idle_words[nwords - 1] |= ~last_mask & (last_mask + 1);
    }
    if (san::mutation().drop_census_delta && !lane_scratch_.empty()) {
      lane_scratch_[0].d_splittable = 0;
    }
#endif
    reduce_cycle_scratch(stats);
#ifdef SIMDTS_SANITIZE
    san_verify_cycle();
#endif
  }
#endif  // SIMDTS_VECTOR_BACKEND

#ifdef SIMDTS_SANITIZE
  /// SimdSan per-cycle sweep: the packed planes keep their zero tails, and
  /// the incrementally maintained census agrees with both a reference
  /// recount of the stacks and the flag-plane popcounts.  This is the
  /// packed-vs-reference divergence check — the incremental path is what the
  /// engine reports, the recount is what a from-scratch implementation would
  /// compute.
  void san_verify_cycle() const {
    if (!san::armed()) return;
    busy_flags_.san_verify_tail("busy plane");
    idle_flags_.san_verify_tail("idle plane");
    dead_.san_verify_tail("dead plane");
    std::uint64_t ref_nonempty = 0;
    std::uint64_t ref_splittable = 0;
    for (std::size_t i = 0; i < stacks_.size(); ++i) {
      if (dead_.test(i)) continue;
      if (!stacks_[i].empty()) {
        ++ref_nonempty;
        if (stacks_[i].splittable()) ++ref_splittable;
      }
    }
    const std::uint64_t ref_empty = alive_ - ref_nonempty;
    san::check_census(counts_.nonempty, ref_nonempty, "census.nonempty");
    san::check_census(counts_.splittable, ref_splittable,
                      "census.splittable");
    san::check_census(counts_.empty, ref_empty, "census.empty");
    san::check_census(busy_flags_.count(), ref_splittable,
                      "busy-plane popcount");
    san::check_census(idle_flags_.count(), ref_empty, "idle-plane popcount");
    // Census-divergence check, summary level: every incrementally maintained
    // summary bit must agree with a recomputation from its plane.
    busy_summary_.san_verify(busy_flags_, "busy summary");
    idle_summary_.san_verify(idle_flags_, "idle summary");
    const std::size_t nwords = idle_flags_.word_count();
    for (std::size_t w = 0; w < nwords; ++w) {
      const std::uint64_t active = ~idle_flags_.words()[w] &
                                   ~dead_.words()[w] & idle_flags_.word_mask(w);
      san::check_census(work_summary_.test(w) ? 1 : 0, active != 0 ? 1 : 0,
                        "work summary");
    }
  }

  /// Mutation hook: redirect the first matched pair's donor to a dead lane
  /// so the donation-side dead-lane check can be proven to fire.
  void san_apply_pair_mutation() {
    if (!san::mutation().donate_from_dead || pairs_.empty()) return;
    for (std::size_t i = 0; i < dead_.size(); ++i) {
      if (dead_.test(i)) {
        pairs_[0].donor = static_cast<simd::PeIndex>(i);
        return;
      }
    }
  }
#endif

  /// Applies every fault event due at the current simulated cycle, in plan
  /// order.  Runs in the engine's serial section (between lock-step cycles),
  /// so fault handling is deterministic for any host thread count.
  // SIMDLINT-REGION(serial)
  void apply_due_faults(IterationStats& stats, Trigger& trigger) {
    const auto& events = fault_plan_->events();
    while (next_fault_ < events.size() &&
           events[next_fault_].cycle <= fault_clock_) {
      const fault::FaultEvent& e = events[next_fault_++];
      switch (e.kind) {
        case fault::FaultKind::kKillPe:
          kill_pe(e.pe, stats, trigger);
          break;
        case fault::FaultKind::kRevivePe:
          revive_pe(e.pe, stats, trigger);
          break;
        case fault::FaultKind::kDropMessages:
          drop_budget_ += e.count;
          break;
      }
    }
  }

  /// Kills PE `pe`: removes it from the census and both flag planes, then
  /// journals its unexpanded stack intervals and re-donates them to
  /// survivors (the recovery phase).  Receivers are the surviving idle PEs
  /// in wrap order after the dead PE (falling back to all survivors when
  /// none is idle); nodes are dealt round-robin bottom-first, so each
  /// receiver's stack stays in depth-first order.  Each round-robin wave
  /// costs one recovery transfer round on the machine clock.
  void kill_pe(std::uint32_t pe, IterationStats& stats, Trigger& trigger) {
    if (dead_.test(pe)) return;
    census_remove(pe);
    dead_.set(pe);
#ifdef SIMDTS_SANITIZE
    san_dead_.mark_dead(pe);
#endif
    busy_flags_.reset(pe);
    idle_flags_.reset(pe);
    resync_lane_summaries(pe);
    --alive_;
    ++stats.pes_killed;

    orphan_buf_.clear();
    stacks_[pe].drain_into(orphan_buf_);
    const std::uint64_t orphans = orphan_buf_.size();
    if (alive_ == 0) {
      if (orphans > 0 || counts_.nonempty > 0) {
        throw FaultError("fault plan killed every PE with work outstanding",
                         cfg_.name(), machine_.size(), fault_clock_);
      }
      recovery_journal_.push_back(
          fault::RecoveryRecord{fault_clock_, pe, 0, 0});
      return;
    }
    trigger.set_machine_size(alive_);
    if (orphans == 0) {
      recovery_journal_.push_back(
          fault::RecoveryRecord{fault_clock_, pe, 0, 0});
      return;
    }
    orphaned_total_ += orphans;

    // Enumerate receivers: surviving idle lanes in wrap order after the dead
    // PE — the same fairness rotation GP applies to donors — falling back to
    // every survivor when no lane is idle.
    const std::uint32_t p = machine_.size();
    recovery_receivers_.clear();
    for (std::uint32_t off = 1; off <= p; ++off) {
      const std::uint32_t i = (pe + off) % p;
      if (!dead_.test(i) && idle_flags_.test(i)) {
        recovery_receivers_.push_back(i);
      }
    }
    if (recovery_receivers_.empty()) {
      for (std::uint32_t off = 1; off <= p; ++off) {
        const std::uint32_t i = (pe + off) % p;
        if (!dead_.test(i)) recovery_receivers_.push_back(i);
      }
    }
    const std::size_t receivers = recovery_receivers_.size();
    for (std::size_t j = 0; j < orphan_buf_.size(); ++j) {
      const std::uint32_t rec = recovery_receivers_[j % receivers];
      census_remove(rec);
      stacks_[rec].push(std::move(orphan_buf_[j]));
      census_add(rec);
    }
    orphan_buf_.clear();
    recovered_total_ += orphans;

    const std::uint64_t rounds =
        (orphans + receivers - 1) / static_cast<std::uint64_t>(receivers);
    for (std::uint64_t r = 0; r < rounds; ++r) {
      machine_.charge_recovery_round();
    }
    ++stats.recovery_phases;
    stats.nodes_recovered += orphans;
    stats.recovery_rounds += rounds;
    recovery_journal_.push_back(
        fault::RecoveryRecord{fault_clock_, pe, orphans, rounds});
  }

  /// Revives PE `pe` as an idle receiver with an empty stack.
  void revive_pe(std::uint32_t pe, IterationStats& stats, Trigger& trigger) {
    if (!dead_.test(pe)) return;
    dead_.reset(pe);
#ifdef SIMDTS_SANITIZE
    san_dead_.mark_alive(pe);
#endif
    ++alive_;
    busy_flags_.reset(pe);
    idle_flags_.set(pe);
    resync_lane_summaries(pe);
    ++counts_.empty;
    ++stats.pes_revived;
    trigger.set_machine_size(alive_);
  }

  /// The conservation invariant of degraded mode: every node journaled from
  /// a dead PE was re-donated exactly once (no subtree lost, none duplicated
  /// — together with dead lanes never expanding, a fault run explores
  /// exactly the fault-free tree).  Checked at the end of every iteration.
  void check_conservation() const {
    if (recovered_total_ != orphaned_total_) {
      throw FaultError("conservation violated: orphaned nodes were lost or "
                       "duplicated during recovery",
                       cfg_.name(), machine_.size(), fault_clock_);
    }
    for (std::size_t i = 0; i < dead_.size(); ++i) {
      if (dead_.test(i) && !stacks_[i].empty()) {
        throw FaultError("conservation violated: a dead PE still holds work",
                         cfg_.name(), machine_.size(), fault_clock_);
      }
    }
  }

  /// Removes stack i's current classification from the census.  Call before
  /// mutating the stack; pair with census_add() afterwards.
  void census_remove(std::size_t i) {
    const auto& s = stacks_[i];
    if (s.empty()) {
      --counts_.empty;
    } else {
      --counts_.nonempty;
      if (s.splittable()) --counts_.splittable;
    }
  }

  /// Re-adds stack i's (possibly changed) classification to the census and
  /// refreshes its flag-plane entries (and their summary bits).
  void census_add(std::size_t i) {
    const auto& s = stacks_[i];
    if (s.empty()) {
      ++counts_.empty;
      idle_flags_.set(i);
      busy_flags_.reset(i);
    } else {
      ++counts_.nonempty;
      idle_flags_.reset(i);
      const bool split = s.splittable();
      busy_flags_.set(i, split);
      if (split) ++counts_.splittable;
    }
    resync_lane_summaries(i);
  }

  /// Recomputes the three summary bits of the word holding lane `i` from the
  /// flag planes — the serial-context counterpart of the expand cycle's
  /// write-back maintenance.  Every serial plane mutation (census_add, fault
  /// kill/revive) ends here.
  void resync_lane_summaries(std::size_t i) {
    const std::size_t w = i / simd::BitPlane::kWordBits;
    const std::uint64_t idle_w = idle_flags_.words()[w];
    busy_summary_.update_word(w, busy_flags_.words()[w]);
    idle_summary_.update_word(w, idle_w);
    work_summary_.update_word(
        w, ~idle_w & ~dead_.words()[w] & idle_flags_.word_mask(w));
  }

  /// One stack-memory sample (serial, between cycles): accumulates the
  /// byte-cycle integral and the peak behind SchemeConfig::track_stack_memory.
  void note_stack_memory() {
    const std::size_t bytes = stack_memory_bytes();
    stack_bytes_integral_ += bytes;
    if (bytes > stack_bytes_peak_) stack_bytes_peak_ = bytes;
    ++stack_bytes_cycles_;
  }

  /// Full recomputation of all three summaries (iteration start).
  void rebuild_summaries() {
    busy_summary_.rebuild(busy_flags_);
    idle_summary_.rebuild(idle_flags_);
    const std::size_t nwords = idle_flags_.word_count();
    for (std::size_t w = 0; w < nwords; ++w) {
      work_summary_.update_word(w, ~idle_flags_.words()[w] &
                                       ~dead_.words()[w] &
                                       idle_flags_.word_mask(w));
    }
  }

  /// One load-balancing phase: one transfer round, or — with
  /// multiple_transfers — rounds until no idle processor can be served.
  /// A phase that cannot execute a single round (e.g. ring matching with no
  /// busy/idle adjacency) is a no-op: nothing is charged or counted and the
  /// trigger state is left untouched.  The flag planes are already current
  /// (the expansion cycle, earlier transfers, and fault events maintain
  /// them), so each round goes straight to matching.
  void lb_phase(IterationStats& stats, Trigger& trigger) {
    const double cost_before = machine_.clock().elapsed;
    std::uint64_t rounds = 0;
    for (;;) {
      std::uint64_t transfers = 0;
      if (cfg_.match == MatchScheme::kNeighbor) {
        neighbor_pairs_into(busy_flags_, busy_summary_, idle_flags_, pairs_);
        if (pairs_.empty()) break;
#ifdef SIMDTS_SANITIZE
        san_apply_pair_mutation();
#endif
        transfers = transfer_split(pairs_, stats);
        machine_.charge_neighbor_round();
      } else if (cfg_.transfer == TransferPolicy::kGiveOneNodeEach) {
        const std::uint64_t dropped_before = stats.messages_dropped;
        transfers = transfer_give_one(stats);
        if (transfers == 0 && stats.messages_dropped == dropped_before) break;
        machine_.charge_lb_round();
      } else {
        const std::size_t limit = cfg_.max_pairs_per_round == 0
                                      ? static_cast<std::size_t>(-1)
                                      : cfg_.max_pairs_per_round;
        matcher_.match_into(busy_flags_, busy_summary_, idle_flags_,
                            idle_summary_, limit, pairs_);
        if (pairs_.empty()) break;
#ifdef SIMDTS_SANITIZE
        san_apply_pair_mutation();
#endif
        transfers = transfer_split(pairs_, stats);
        machine_.charge_lb_round();
      }
      ++stats.lb_rounds;
      ++rounds;
      stats.transfers += transfers;
      if (!cfg_.multiple_transfers) break;
    }
    if (rounds == 0) return;
    ++stats.lb_phases;
    trigger.note_lb_cost(machine_.clock().elapsed - cost_before);
    trigger.begin_search_phase();
  }

  /// Executes split transfers for matched pairs, reclassifying each donor
  /// and receiver in the census as it goes; returns the count of transfers
  /// that actually happened.  An armed drop budget makes the router lose the
  /// next messages: the donated half never leaves the donor (so no work is
  /// lost — the donor retransmits at a later phase), and the loss is counted
  /// in stats.messages_dropped.
  std::uint64_t transfer_split(const std::vector<simd::Pair>& pairs,
                               IterationStats& stats) {
    std::uint64_t done = 0;
    for (const auto& [donor, receiver] : pairs) {
#ifdef SIMDTS_SANITIZE
      san_dead_.check_alive(donor, "donate");
      san_dead_.check_alive(receiver, "receive");
#endif
      if (drop_budget_ > 0) {
        --drop_budget_;
        ++stats.messages_dropped;
        continue;
      }
      if (!stacks_[donor].splittable() || !stacks_[receiver].empty()) {
        throw EngineError(
            "matched transfer pair violates its busy/idle preconditions",
            cfg_.name(), machine_.size(), fault_clock_);
      }
      census_remove(donor);
      census_remove(receiver);
      search::receive(stacks_[receiver],
                      search::split(stacks_[donor], cfg_.split));
      census_add(donor);
      census_add(receiver);
      ++done;
    }
    return done;
  }

  /// Frye's first scheme: each busy processor hands single nodes to as many
  /// idle processors as it can spare (keeping one node for itself).  The
  /// donor and receiver enumerations are snapshots of the flags at round
  /// start, as on the lock-step machine.  Dropped messages consume a
  /// receiver slot but leave the node on the donor.
  std::uint64_t transfer_give_one(IterationStats& stats) {
    const simd::PeIndex start_after =
        cfg_.match == MatchScheme::kGP ? matcher_.pointer() : simd::kNoPe;
    simd::ranked_into(busy_flags_, busy_summary_, start_after, donors_buf_);
    simd::ranked_into(idle_flags_, idle_summary_, simd::kNoPe,
                      receivers_buf_);
    const std::vector<simd::PeIndex>& donors = donors_buf_;
    const std::vector<simd::PeIndex>& receivers = receivers_buf_;
    std::uint64_t transfers = 0;
    std::size_t r = 0;
    for (const simd::PeIndex d : donors) {
      if (r == receivers.size()) break;
#ifdef SIMDTS_SANITIZE
      san_dead_.check_alive(d, "donate");
#endif
      auto& st = stacks_[d];
      if (st.size() < 2) continue;
      census_remove(d);
      while (st.size() >= 2 && r < receivers.size()) {
        const simd::PeIndex rec = receivers[r];
        ++r;
        if (drop_budget_ > 0) {
          --drop_budget_;
          ++stats.messages_dropped;
          continue;
        }
        census_remove(rec);
        stacks_[rec].push(st.take_bottom());
        census_add(rec);
        ++transfers;
      }
      census_add(d);
    }
    return transfers;
  }

  const P& problem_;
  simd::Machine& machine_;
  SchemeConfig cfg_;
  ExecBackend backend_ = ExecBackend::kScalar;
  Matcher matcher_;
  common::ShardedArray<StackT> stacks_;
  simd::BitPlane busy_flags_;   ///< splittable, maintained in place
  simd::BitPlane idle_flags_;   ///< empty *and alive*, in place
  simd::SummaryPlane busy_summary_;  ///< one bit per busy-plane word
  simd::SummaryPlane idle_summary_;  ///< one bit per idle-plane word
  simd::SummaryPlane work_summary_;  ///< bit w: word w has an active lane
  // Stack-memory accounting (track_stack_memory only; results-inert).
  std::uint64_t stack_bytes_integral_ = 0;  ///< sum over sampled cycles
  std::uint64_t stack_bytes_peak_ = 0;
  std::uint64_t stack_bytes_cycles_ = 0;
  fault::DeadLanePlane dead_;   ///< killed lanes (degraded mode)
  std::uint32_t alive_;         ///< surviving lane count
  Counts counts_;               ///< incrementally maintained census
  std::vector<LaneScratch> lane_scratch_;
  std::vector<simd::Pair> pairs_;  ///< reused across lb rounds
  std::vector<simd::PeIndex> donors_buf_;     ///< reused per give-one round
  std::vector<simd::PeIndex> receivers_buf_;  ///< reused per give-one round
  std::vector<Node> goal_nodes_;
  search::NextBound next_bound_;

  // Fault state (inert until arm_faults()).
  const fault::FaultPlan* fault_plan_ = nullptr;
  std::size_t next_fault_ = 0;       ///< cursor into the plan's events
  std::uint64_t fault_clock_ = 0;    ///< cumulative expand cycles this run
  std::uint64_t drop_budget_ = 0;    ///< messages the router will lose next
  std::uint64_t cycle_budget_ = 0;   ///< watchdog (0 = unlimited)
  std::uint64_t orphaned_total_ = 0;   ///< nodes journaled from dead PEs
  std::uint64_t recovered_total_ = 0;  ///< nodes re-donated to survivors
  std::vector<fault::RecoveryRecord> recovery_journal_;
  std::vector<Node> orphan_buf_;                    ///< reused per kill
  std::vector<std::uint32_t> recovery_receivers_;   ///< reused per kill

#ifdef SIMDTS_SANITIZE
  san::DeadLaneShadow san_dead_;  ///< SimdSan's copy of the dead plane
  san::ClaimDomain san_claims_;   ///< this engine's word-ownership claims
#endif
};

/// Engine with memory-bounded delta stacks: the mega-P configuration for
/// problems that provide a delta codec (search::DeltaTreeProblem).
template <search::DeltaTreeProblem P>
using CompactEngine = Engine<P, search::CompactStack<P>>;

}  // namespace simdts::lb
