// The parallel depth-first-search engine for (emulated) SIMD machines.
//
// This is the paper's Section 2 algorithm: the machine alternates between
// *search phases* — lock-step node-expansion cycles in which every processor
// with work pops and expands exactly one node — and *load-balancing phases*,
// in which busy processors split their stacks and send half to idle ones.
// A triggering condition, evaluated after every expansion cycle, decides when
// to switch; a matching scheme decides who sends to whom.
//
// All the scheme combinations of the paper's Table 1 (and the Section 8
// baselines) are expressed through SchemeConfig; the engine itself is
// domain-independent over any TreeProblem.
//
// Determinism: the run is a pure function of (problem, P, config, cost
// model).  Host threads, if provided via the Machine's pool, only spread one
// lock-step cycle over cores; every PE's state is private, so the result is
// identical for any thread count.
#pragma once

#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

#include "lb/config.hpp"
#include "lb/matching.hpp"
#include "lb/metrics.hpp"
#include "lb/trigger.hpp"
#include "search/problem.hpp"
#include "search/splitter.hpp"
#include "search/work_stack.hpp"
#include "simd/machine.hpp"

namespace simdts::lb {

template <search::TreeProblem P>
class Engine {
 public:
  using Node = typename P::Node;

  Engine(const P& problem, simd::Machine& machine, SchemeConfig cfg)
      : problem_(problem),
        machine_(machine),
        cfg_(cfg),
        matcher_(cfg.match),
        stacks_(machine.size()),
        busy_flags_(machine.size()),
        idle_flags_(machine.size()) {}

  /// One bounded parallel DFS from the problem root: the root node is given
  /// to processor 0, the space is searched to exhaustion (all solutions at
  /// the bound are found — the paper's anomaly-free setup), and the
  /// iteration's metrics are returned.
  IterationStats run_iteration(search::Bound bound) {
    return run_core(bound, Mode::kExhaustive).stats;
  }

  /// First-solution mode: the machine quits at the end of the first
  /// node-expansion cycle in which any processor found a goal ("when a goal
  /// node is found, all of them quit", Section 2).  Node counts can then
  /// differ from the serial first-solution search in either direction —
  /// the speedup anomalies of Rao & Kumar that the paper's main experiments
  /// deliberately avoid.
  IterationStats run_first_solution(search::Bound bound) {
    return run_core(bound, Mode::kFirstSolution).stats;
  }

  struct BnbResult {
    IterationStats stats;
    /// Best goal f-value found (kUnbounded if none).
    search::Bound best = search::kUnbounded;
  };

  /// Depth-first branch and bound: searches exhaustively while *tightening*
  /// the cost bound whenever a better goal turns up.  Note that
  /// stats.goals_found counts every goal popped (including ones worse than
  /// the incumbent at their pop time), unlike serial_branch_and_bound's
  /// improvement count — the two are not comparable.  The incumbent is
  /// refreshed between expansion cycles — on the real machine a global
  /// min-reduction, which the CM-2 provides as a hardware scan.  Goals must
  /// report their full solution cost through f_value().
  BnbResult run_branch_and_bound(search::Bound initial_bound
                                 = search::kUnbounded) {
    return run_core(initial_bound, Mode::kBranchAndBound);
  }

 private:
  enum class Mode { kExhaustive, kFirstSolution, kBranchAndBound };

  BnbResult run_core(search::Bound bound, Mode mode) {
    const simd::MachineClock before = machine_.clock();
    BnbResult result;
    IterationStats& stats = result.stats;
    stats.bound = bound;

    for (auto& s : stacks_) s.clear();
    stacks_[0].push(problem_.root());
    next_bound_ = search::NextBound{};
    goal_nodes_.clear();
    std::size_t goals_seen = 0;  // goal_nodes_ scanned so far (for B&B)

    Trigger trigger(cfg_, machine_.size(), machine_.cost().t_expand,
                    initial_lb_cost());
    trigger.begin_search_phase();
    // The initial work-distribution phase (Section 7): dynamic triggers are
    // preceded by static triggering at init_threshold until that fraction of
    // processors is active.
    bool init_phase =
        cfg_.trigger == TriggerKind::kDP || cfg_.trigger == TriggerKind::kDK;

    Counts counts = recount();
    while (counts.nonempty > 0) {
      const Counts after = expand_cycle(bound, stats);
      machine_.charge_expand_cycle(counts.nonempty);
      trigger.note_cycle(counts.nonempty);
      ++stats.expand_cycles;
      counts = after;
      if (cfg_.record_trace) {
        stats.trace.push_back(TracePoint{counts.nonempty, counts.splittable});
      }

      if (mode == Mode::kFirstSolution && stats.goals_found > 0) {
        break;  // "when a goal node is found, all of them quit"
      }
      if (mode == Mode::kBranchAndBound) {
        // Global min-reduction over this cycle's new goals; tightening the
        // shared bound prunes everything not strictly better.
        for (; goals_seen < goal_nodes_.size(); ++goals_seen) {
          const search::Bound f = problem_.f_value(goal_nodes_[goals_seen]);
          if (f < result.best) result.best = f;
        }
        if (result.best != search::kUnbounded && result.best - 1 < bound) {
          bound = result.best - 1;
        }
      }

      const std::uint32_t active = cfg_.busy == BusyPolicy::kSplittable
                                       ? counts.splittable
                                       : counts.nonempty;
      bool fire;
      if (init_phase) {
        const bool below = static_cast<double>(active) <=
                           cfg_.init_threshold *
                               static_cast<double>(machine_.size());
        if (!below) init_phase = false;
        fire = below;
      } else {
        fire = trigger.should_trigger(active, counts.empty);
      }
      if (fire && counts.empty > 0 && counts.splittable > 0) {
        lb_phase(stats, trigger);
        counts = recount();
      }
    }

    stats.nodes_expanded = (machine_.clock() - before).nodes_expanded;
    stats.clock = machine_.clock() - before;
    if (next_bound_.has_value()) stats.next_bound = next_bound_.value();
    return result;
  }

 public:
  /// Full parallel IDA*: repeats run_iteration with increasing thresholds
  /// until an iteration finds a goal (that iteration still runs to
  /// exhaustion).  `max_expanded`, if non-zero, aborts once the total number
  /// of expansions exceeds it.
  RunStats run(std::uint64_t max_expanded = 0) {
    RunStats rs;
    goal_nodes_.clear();
    search::Bound bound = problem_.f_value(problem_.root());
    for (;;) {
      IterationStats iter = run_iteration(bound);
      rs.total += iter;
      rs.final_iteration = iter;
      rs.iterations.push_back(std::move(iter));
      const IterationStats& done = rs.iterations.back();
      if (done.goals_found > 0) {
        rs.solution_bound = bound;
        rs.goals_found = done.goals_found;
        return rs;
      }
      if (done.next_bound == search::kUnbounded) return rs;  // exhausted
      if (max_expanded != 0 && rs.total.nodes_expanded > max_expanded) {
        return rs;  // budget exceeded
      }
      bound = done.next_bound;
    }
  }

  /// Goal nodes found during the last run (all solutions at the final
  /// threshold, in no particular order).
  [[nodiscard]] const std::vector<Node>& goal_nodes() const {
    return goal_nodes_;
  }

  /// The matcher (exposing the GP global pointer for tests).
  [[nodiscard]] const Matcher& matcher() const { return matcher_; }

  /// Direct access to the PE stacks, for white-box tests.
  [[nodiscard]] const std::vector<search::WorkStack<Node>>& stacks() const {
    return stacks_;
  }

 private:
  struct Counts {
    std::uint32_t nonempty = 0;
    std::uint32_t splittable = 0;
    std::uint32_t empty = 0;
  };

  [[nodiscard]] double initial_lb_cost() const {
    return cfg_.match == MatchScheme::kNeighbor
               ? machine_.cost().neighbor_cost()
               : machine_.lb_round_cost();
  }

  [[nodiscard]] Counts recount() const {
    Counts c;
    for (const auto& s : stacks_) {
      if (s.empty()) {
        ++c.empty;
      } else {
        ++c.nonempty;
        if (s.splittable()) ++c.splittable;
      }
    }
    return c;
  }

  /// One lock-step node-expansion cycle.  Every non-empty PE pops one node;
  /// goal nodes are recorded (and not expanded), everything else is expanded
  /// with the bound.  Returns the post-cycle stack census.
  Counts expand_cycle(search::Bound bound, IterationStats& stats) {
    Counts after;
    simd::ThreadPool* pool = machine_.pool();
    auto body = [&](std::size_t begin, std::size_t end) {
      Counts local;
      std::uint64_t goals = 0;
      std::vector<Node> local_goal_nodes;
      std::vector<Node> children;
      search::NextBound nb;
      for (std::size_t i = begin; i < end; ++i) {
        auto& st = stacks_[i];
        if (!st.empty()) {
          Node n = st.pop();
          if (problem_.is_goal(n)) {
            ++goals;
            local_goal_nodes.push_back(n);
          } else {
            children.clear();
            problem_.expand(n, bound, children, nb);
            for (auto& c : children) st.push(std::move(c));
          }
        }
        if (st.empty()) {
          ++local.empty;
        } else {
          ++local.nonempty;
          if (st.splittable()) ++local.splittable;
        }
      }
      const std::lock_guard lock(merge_mu_);
      after.nonempty += local.nonempty;
      after.splittable += local.splittable;
      after.empty += local.empty;
      stats.goals_found += goals;
      next_bound_.merge(nb);
      goal_nodes_.insert(goal_nodes_.end(), local_goal_nodes.begin(),
                         local_goal_nodes.end());
    };
    if (pool != nullptr && pool->size() > 1) {
      pool->parallel_for(stacks_.size(), body);
    } else {
      body(0, stacks_.size());
    }
    return after;
  }

  void refresh_flags() {
    for (std::size_t i = 0; i < stacks_.size(); ++i) {
      busy_flags_[i] = stacks_[i].splittable() ? 1 : 0;
      idle_flags_[i] = stacks_[i].empty() ? 1 : 0;
    }
  }

  /// One load-balancing phase: one transfer round, or — with
  /// multiple_transfers — rounds until no idle processor can be served.
  /// A phase that cannot execute a single round (e.g. ring matching with no
  /// busy/idle adjacency) is a no-op: nothing is charged or counted and the
  /// trigger state is left untouched.
  void lb_phase(IterationStats& stats, Trigger& trigger) {
    const double cost_before = machine_.clock().elapsed;
    std::uint64_t rounds = 0;
    for (;;) {
      refresh_flags();
      std::vector<simd::Pair> pairs;
      std::uint64_t transfers = 0;
      if (cfg_.match == MatchScheme::kNeighbor) {
        pairs = neighbor_pairs(busy_flags_, idle_flags_);
        if (pairs.empty()) break;
        transfers = transfer_split(pairs);
        machine_.charge_neighbor_round();
      } else if (cfg_.transfer == TransferPolicy::kGiveOneNodeEach) {
        transfers = transfer_give_one();
        if (transfers == 0) break;
        machine_.charge_lb_round();
      } else {
        const std::size_t limit = cfg_.max_pairs_per_round == 0
                                      ? static_cast<std::size_t>(-1)
                                      : cfg_.max_pairs_per_round;
        pairs = matcher_.match(busy_flags_, idle_flags_, limit);
        if (pairs.empty()) break;
        transfers = transfer_split(pairs);
        machine_.charge_lb_round();
      }
      ++stats.lb_rounds;
      ++rounds;
      stats.transfers += transfers;
      if (!cfg_.multiple_transfers) break;
    }
    if (rounds == 0) return;
    ++stats.lb_phases;
    trigger.note_lb_cost(machine_.clock().elapsed - cost_before);
    trigger.begin_search_phase();
  }

  /// Executes split transfers for matched pairs; returns the transfer count.
  std::uint64_t transfer_split(const std::vector<simd::Pair>& pairs) {
    for (const auto& [donor, receiver] : pairs) {
      assert(stacks_[donor].splittable());
      assert(stacks_[receiver].empty());
      search::receive(stacks_[receiver],
                      search::split(stacks_[donor], cfg_.split));
    }
    return pairs.size();
  }

  /// Frye's first scheme: each busy processor hands single nodes to as many
  /// idle processors as it can spare (keeping one node for itself).
  std::uint64_t transfer_give_one() {
    const simd::PeIndex start_after =
        cfg_.match == MatchScheme::kGP ? matcher_.pointer() : simd::kNoPe;
    const std::vector<simd::PeIndex> donors =
        simd::ranked(busy_flags_, start_after);
    const std::vector<simd::PeIndex> receivers = simd::ranked(idle_flags_);
    std::uint64_t transfers = 0;
    std::size_t r = 0;
    for (const simd::PeIndex d : donors) {
      auto& st = stacks_[d];
      while (st.size() >= 2 && r < receivers.size()) {
        stacks_[receivers[r]].push(st.take_bottom());
        ++r;
        ++transfers;
      }
      if (r == receivers.size()) break;
    }
    return transfers;
  }

  const P& problem_;
  simd::Machine& machine_;
  SchemeConfig cfg_;
  Matcher matcher_;
  std::vector<search::WorkStack<Node>> stacks_;
  std::vector<std::uint8_t> busy_flags_;
  std::vector<std::uint8_t> idle_flags_;
  std::vector<Node> goal_nodes_;
  search::NextBound next_bound_;
  std::mutex merge_mu_;
};

}  // namespace simdts::lb
