#include "lb/config.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace simdts::lb {

const char* to_string(MatchScheme m) {
  switch (m) {
    case MatchScheme::kNGP:
      return "nGP";
    case MatchScheme::kGP:
      return "GP";
    case MatchScheme::kNeighbor:
      return "NN";
  }
  return "?";
}

const char* to_string(TriggerKind t) {
  switch (t) {
    case TriggerKind::kStatic:
      return "S";
    case TriggerKind::kDP:
      return "DP";
    case TriggerKind::kDK:
      return "DK";
    case TriggerKind::kAnyIdle:
      return "AnyIdle";
    case TriggerKind::kEveryCycle:
      return "EveryCycle";
  }
  return "?";
}

const char* to_string(TransferPolicy t) {
  switch (t) {
    case TransferPolicy::kSplit:
      return "split";
    case TransferPolicy::kGiveOneNodeEach:
      return "give-one";
  }
  return "?";
}

const char* to_string(BusyPolicy b) {
  switch (b) {
    case BusyPolicy::kSplittable:
      return "splittable";
    case BusyPolicy::kNonEmpty:
      return "non-empty";
  }
  return "?";
}

std::string SchemeConfig::name() const {
  std::ostringstream os;
  os << to_string(match) << '-' << to_string(trigger);
  if (trigger == TriggerKind::kStatic) {
    os << static_x;
  }
  if (multiple_transfers) os << "*";
  return os.str();
}

void SchemeConfig::validate() const {
  const auto fail = [this](const char* what, const char* field, double value) {
    std::ostringstream os;
    os << "config=" << name() << " " << field << "=" << value;
    throw ConfigError(std::string("SchemeConfig: ") + what, os.str());
  };
  if (trigger == TriggerKind::kStatic &&
      (!(static_x > 0.0) || !(static_x <= 1.0) || !std::isfinite(static_x))) {
    fail("static trigger threshold x must lie in (0, 1]", "static_x",
         static_x);
  }
  if ((trigger == TriggerKind::kDP || trigger == TriggerKind::kDK) &&
      (!(init_threshold > 0.0) || !(init_threshold <= 1.0) ||
       !std::isfinite(init_threshold))) {
    fail("initial-distribution threshold must lie in (0, 1]",
         "init_threshold", init_threshold);
  }
}

SchemeConfig ngp_static(double x) {
  SchemeConfig cfg;
  cfg.match = MatchScheme::kNGP;
  cfg.trigger = TriggerKind::kStatic;
  cfg.static_x = x;
  return cfg;
}

SchemeConfig gp_static(double x) {
  SchemeConfig cfg = ngp_static(x);
  cfg.match = MatchScheme::kGP;
  return cfg;
}

SchemeConfig ngp_dp() {
  SchemeConfig cfg;
  cfg.match = MatchScheme::kNGP;
  cfg.trigger = TriggerKind::kDP;
  cfg.multiple_transfers = true;  // required for D^P (Section 2.3)
  return cfg;
}

SchemeConfig gp_dp() {
  SchemeConfig cfg = ngp_dp();
  cfg.match = MatchScheme::kGP;
  return cfg;
}

SchemeConfig ngp_dk() {
  SchemeConfig cfg;
  cfg.match = MatchScheme::kNGP;
  cfg.trigger = TriggerKind::kDK;
  return cfg;
}

SchemeConfig gp_dk() {
  SchemeConfig cfg = ngp_dk();
  cfg.match = MatchScheme::kGP;
  return cfg;
}

}  // namespace simdts::lb
