#include "lb/trigger.hpp"

namespace simdts::lb {

Trigger::Trigger(const SchemeConfig& cfg, std::uint32_t p, double t_expand,
                 double initial_lb_cost)
    : kind_(cfg.trigger),
      static_x_(cfg.static_x),
      p_(p),
      t_expand_(t_expand),
      lb_cost_(initial_lb_cost) {}

void Trigger::begin_search_phase() {
  w_ = 0.0;
  t_ = 0.0;
  w_idle_ = 0.0;
}

void Trigger::note_cycle(std::uint32_t working) {
  w_ += static_cast<double>(working) * t_expand_;
  t_ += t_expand_;
  w_idle_ += static_cast<double>(p_ - working) * t_expand_;
}

void Trigger::note_lb_cost(double cost) {
  if (cost > 0.0) lb_cost_ = cost;
}

bool Trigger::should_trigger(std::uint32_t active, std::uint32_t idle) const {
  switch (kind_) {
    case TriggerKind::kStatic:
      return static_cast<double>(active) <=
             static_x_ * static_cast<double>(p_);
    case TriggerKind::kDP: {
      const double a = static_cast<double>(active);
      return w_ - a * t_ >= a * lb_cost_;
    }
    case TriggerKind::kDK:
      return w_idle_ >= lb_cost_ * static_cast<double>(p_);
    case TriggerKind::kAnyIdle:
      return idle >= 1;
    case TriggerKind::kEveryCycle:
      return true;
  }
  return false;
}

}  // namespace simdts::lb
