#include "synthetic/calibrate.hpp"

#include <cmath>
#include <vector>

namespace simdts::synthetic {

std::uint64_t measure(const Params& params, std::uint64_t budget) {
  const Tree tree(params);
  std::vector<Tree::Node> stack;
  std::vector<Tree::Node> children;
  search::NextBound next;
  stack.push_back(tree.root());
  std::uint64_t expanded = 0;
  while (!stack.empty()) {
    const Tree::Node n = stack.back();
    stack.pop_back();
    ++expanded;
    if (budget != 0 && expanded > budget) return budget + 1;
    children.clear();
    tree.expand(n, search::kUnbounded, children, next);
    stack.insert(stack.end(), children.begin(), children.end());
  }
  return expanded;
}

Calibration calibrate_to(std::uint64_t target, Params shape,
                         std::uint64_t seed_base, std::uint32_t attempts) {
  Calibration best;
  double best_err = std::numeric_limits<double>::infinity();
  const double log_target = std::log(static_cast<double>(target));
  for (std::uint32_t i = 0; i < attempts; ++i) {
    Params p = shape;
    p.seed = seed_base + i;
    // Reject oversized trees outright: the supercritical branching makes
    // tree sizes heavy-tailed, so a clipped candidate may be orders of
    // magnitude past the budget — never select one.
    const std::uint64_t budget = target * 4;
    const std::uint64_t w = measure(p, budget);
    if (w == 0 || w > budget) continue;
    const double err =
        std::abs(std::log(static_cast<double>(w)) - log_target);
    if (err < best_err) {
      best_err = err;
      best = Calibration{p, w};
    }
  }
  return best;
}

}  // namespace simdts::synthetic
