// Deterministic synthetic unstructured trees.
//
// The isoefficiency experiments (Figures 4 and 7) need a dense grid of
// problem sizes W far beyond what a handful of 15-puzzle instances provides.
// This domain generates irregular trees whose entire shape is a pure function
// of a 64-bit seed: each node's child set is decided by hashing (node id,
// child slot), so any processor can expand any node with no shared state —
// the same property that makes the 15-puzzle SIMD-friendly.
//
// Shape: every node has up to `max_children` potential children; child i
// exists with probability fertility * climate, where the climate is a value
// in [0.5, 1.5] that drifts along each root-to-leaf path (children inherit a
// hash-perturbed copy of the parent's climate).  The drift correlates
// fertility within subtrees, producing persistent bushy and sparse regions —
// the "highly irregular" trees the paper targets — rather than noise that
// averages out.  Growth is supercritical on average (mean branching > 1) and
// capped by `max_depth`, so W is controlled by depth and seed; see
// synthetic/calibrate.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "search/problem.hpp"

namespace simdts::synthetic {

struct Params {
  std::uint64_t seed = 1;
  std::uint32_t max_children = 4;
  /// Base per-child existence probability (mean branching factor is
  /// max_children * fertility at neutral climate).
  double fertility = 0.30;
  std::uint16_t max_depth = 40;

  friend bool operator==(const Params&, const Params&) = default;
};

class Tree {
 public:
  struct Node {
    std::uint64_t id;
    std::uint16_t depth;
    /// Climate state; fertility multiplier is 0.5 + climate / 65536.
    std::uint16_t climate;

    friend bool operator==(const Node&, const Node&) = default;
  };

  explicit Tree(Params params) : params_(params) {}

  [[nodiscard]] Node root() const {
    return Node{hash2(params_.seed, 0x526F6F74), 0, 1u << 15};
  }

  /// Exhaustive search: the bound is ignored and `next` never set (a single
  /// "iteration" visits the whole tree).
  ///
  /// Child emission is branchless: every slot's candidate node is written to
  /// the staging area unconditionally and the write cursor advances by the
  /// existence predicate.  The per-slot coin flips are ~fertility-biased and
  /// uncorrelated, so a conditional push would mispredict on a large
  /// fraction of slots — in the engine's hot loop that misprediction chain
  /// costs more than computing the occasional discarded node.
  void expand(const Node& n, search::Bound /*bound*/, std::vector<Node>& out,
              search::NextBound& /*next*/) const {
    if (n.depth >= params_.max_depth) return;
    const double p =
        params_.fertility * (0.5 + static_cast<double>(n.climate) * 0x1.0p-16);
    const auto depth = static_cast<std::uint16_t>(n.depth + 1);
    const std::size_t base = out.size();
    out.resize(base + params_.max_children);
    Node* const dst = out.data() + base;
    std::size_t k = 0;
    for (std::uint32_t i = 0; i < params_.max_children; ++i) {
      const std::uint64_t h = hash2(n.id, 0x4348494C44ULL + i);
      dst[k] = Node{h, depth, drift_climate(n.climate, h)};
      k += static_cast<std::size_t>(normalized(h) < p);
    }
    out.resize(base + k);
  }

  [[nodiscard]] bool is_goal(const Node&) const { return false; }
  [[nodiscard]] search::Bound f_value(const Node&) const { return 0; }

  /// Delta codec (search::DeltaTreeProblem): a child is its parent plus the
  /// child-slot index, because the whole tree shape is the pure hash of
  /// (parent id, slot).  The hash is not invertible, so encoding searches the
  /// (at most max_children <= 255) slots for the one whose hash matches;
  /// there is no undo_delta — compact stacks backtrack by replaying the
  /// delta path from the stored base node.
  [[nodiscard]] std::uint8_t encode_delta(const Node& parent,
                                          const Node& child) const {
    for (std::uint32_t i = 0; i < params_.max_children; ++i) {
      if (hash2(parent.id, 0x4348494C44ULL + i) == child.id) {
        return static_cast<std::uint8_t>(i);
      }
    }
    return 0;  // unreachable for children actually emitted by expand()
  }

  /// Recomputes slot `delta`'s child with exactly expand()'s arithmetic.
  [[nodiscard]] Node decode_delta(const Node& n, std::uint8_t delta) const {
    const std::uint64_t h = hash2(n.id, 0x4348494C44ULL + delta);
    return Node{h, static_cast<std::uint16_t>(n.depth + 1),
                drift_climate(n.climate, h)};
  }

  [[nodiscard]] const Params& params() const { return params_; }

  /// Stateless 64-bit mix of (a, b) — the only source of tree shape.
  [[nodiscard]] static std::uint64_t hash2(std::uint64_t a, std::uint64_t b) {
    std::uint64_t x = a * 0x9E3779B97F4A7C15ULL + b + 0x2545F4914F6CDD1DULL;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  /// Maps a hash to [0, 1).
  [[nodiscard]] static double normalized(std::uint64_t h) {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  /// Random-walk step of the climate, clamped to the uint16 range.  Public
  /// (like hash2/normalized) so the vectorized batch kernel in src/vec/ can
  /// reuse the exact shape-defining arithmetic instead of duplicating it.
  [[nodiscard]] static std::uint16_t drift_climate(std::uint16_t climate,
                                                   std::uint64_t h) {
    const auto delta = static_cast<std::int32_t>((h >> 40) % 8192) - 4096;
    std::int32_t next = static_cast<std::int32_t>(climate) + delta;
    if (next < 0) next = 0;
    if (next > 0xFFFF) next = 0xFFFF;
    return static_cast<std::uint16_t>(next);
  }

 private:
  Params params_;
};

static_assert(search::TreeProblem<Tree>);
static_assert(search::DeltaTreeProblem<Tree>);

}  // namespace simdts::synthetic
