#include "synthetic/workloads.hpp"

namespace simdts::synthetic {

namespace {

// PINNED BY CALIBRATION (tools/calibrate_synthetic and tools/scan_synthetic):
// the W column is the measured exhaustive-DFS size, re-verified by the test
// suite for the smaller trees.  Sizes span ~1e3 to ~4e7, the range the
// isoefficiency grids need for machines up to P = 8192.
constexpr SyntheticWorkload kIso[] = {
    {"syn-941", Params{9013, 4, 0.395, 14}, 941},
    {"syn-13k", Params{9011, 4, 0.400, 18}, 13107},
    {"syn-96k", Params{9013, 4, 0.388, 24}, 95585},
    {"syn-382k", Params{9013, 4, 0.380, 28}, 382449},
    {"syn-2.4M", Params{9030, 4, 0.380, 32}, 2440212},
    {"syn-7.6M", Params{7108, 4, 0.380, 30}, 7592385},
    {"syn-23M", Params{9030, 4, 0.375, 36}, 23169294},
    {"syn-41M", Params{7201, 4, 0.375, 34}, 41269849},
};

constexpr SyntheticWorkload kTest[] = {
    {"syn-941", Params{9013, 4, 0.395, 14}, 941},
    {"syn-13k", Params{9011, 4, 0.400, 18}, 13107},
    {"syn-96k", Params{9013, 4, 0.388, 24}, 95585},
};

}  // namespace

std::span<const SyntheticWorkload> iso_workloads() { return kIso; }

std::span<const SyntheticWorkload> test_workloads() { return kTest; }

}  // namespace simdts::synthetic
