// Pinned synthetic workloads for the isoefficiency experiments.
//
// The Figure 4 / Figure 7 grids need trees with sizes spanning roughly 1e5 to
// 1e8; these were calibrated once with tools/calibrate_synthetic and are
// re-verified (the smaller ones) by the test suite.
#pragma once

#include <cstdint>
#include <span>

#include "synthetic/tree.hpp"

namespace simdts::synthetic {

struct SyntheticWorkload {
  const char* name;
  Params params;
  std::uint64_t w;  ///< measured serial tree size
};

/// Ladder of tree sizes for the isoefficiency grids, ascending in W.
[[nodiscard]] std::span<const SyntheticWorkload> iso_workloads();

/// Small trees for tests (W from ~1e3 to ~1e5).
[[nodiscard]] std::span<const SyntheticWorkload> test_workloads();

}  // namespace simdts::synthetic
