// Calibration of synthetic trees to target sizes.
//
// The tree size W for given Params is deterministic but not available in
// closed form; calibration measures it by serial DFS.  Because W is very
// sensitive to the seed (the supercritical branching makes it heavy-tailed),
// the calibrator scans seeds at a fixed shape and keeps the seed whose W is
// closest to the target.  Results are pinned in synthetic/workloads.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "synthetic/tree.hpp"

namespace simdts::synthetic {

/// Serial tree size (nodes expanded by exhaustive DFS).  `budget`, if
/// non-zero, aborts once the count exceeds it and returns budget + 1 —
/// oversized candidates are rejected cheaply during calibration.
[[nodiscard]] std::uint64_t measure(const Params& params,
                                    std::uint64_t budget = 0);

struct Calibration {
  Params params;
  std::uint64_t w = 0;  ///< measured size
};

/// Scans `attempts` seeds (seed_base, seed_base+1, ...) with the given shape
/// and returns the candidate whose measured W is closest to `target` in log
/// space.
[[nodiscard]] Calibration calibrate_to(std::uint64_t target, Params shape,
                                       std::uint64_t seed_base,
                                       std::uint32_t attempts);

}  // namespace simdts::synthetic
