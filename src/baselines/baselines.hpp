// The Section 8 related-work schemes as named engine configurations.
//
//  - FESS (Mahanti & Daniels): trigger as soon as one processor goes idle,
//    nGP-style matching, one work transfer per phase.
//  - FEGS (Mahanti & Daniels): same trigger, but transfer rounds repeat until
//    the work is spread over all processors.
//  - Frye & Myczkowski's first scheme: static trigger, but each busy
//    processor hands *single nodes* to as many idle processors as it can
//    spare — a deliberately poor splitting mechanism.
//  - Frye & Myczkowski's second scheme: nearest-neighbour transfers on a
//    ring after every node-expansion cycle.
//
// All four reuse the generic Engine; the point of the comparison bench is
// that the paper's GP/trigger machinery beats them for the reasons the
// analysis predicts (FESS load balances far too often; give-one splitting
// violates the alpha-splitting assumption; nearest-neighbour moves work only
// one hop per phase).
#pragma once

#include "lb/config.hpp"

namespace simdts::baselines {

[[nodiscard]] lb::SchemeConfig fess();
[[nodiscard]] lb::SchemeConfig fegs();
[[nodiscard]] lb::SchemeConfig frye_give_one(double static_x);
[[nodiscard]] lb::SchemeConfig frye_neighbor();

}  // namespace simdts::baselines
