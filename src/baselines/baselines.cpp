#include "baselines/baselines.hpp"

namespace simdts::baselines {

lb::SchemeConfig fess() {
  lb::SchemeConfig cfg;
  cfg.match = lb::MatchScheme::kNGP;
  cfg.trigger = lb::TriggerKind::kAnyIdle;
  cfg.multiple_transfers = false;
  cfg.max_pairs_per_round = 1;  // "FESS performs a single work transfer"
  return cfg;
}

lb::SchemeConfig fegs() {
  lb::SchemeConfig cfg = fess();
  cfg.max_pairs_per_round = 0;     // FEGS spreads work to everyone...
  cfg.multiple_transfers = true;   // ...over as many rounds as needed
  return cfg;
}

lb::SchemeConfig frye_give_one(double static_x) {
  lb::SchemeConfig cfg;
  cfg.match = lb::MatchScheme::kNGP;
  cfg.trigger = lb::TriggerKind::kStatic;
  cfg.static_x = static_x;
  cfg.transfer = lb::TransferPolicy::kGiveOneNodeEach;
  return cfg;
}

lb::SchemeConfig frye_neighbor() {
  lb::SchemeConfig cfg;
  cfg.match = lb::MatchScheme::kNeighbor;
  cfg.trigger = lb::TriggerKind::kEveryCycle;
  return cfg;
}

}  // namespace simdts::baselines
