// Symmetric TSP as a TreeProblem, for depth-first branch-and-bound.
//
// The paper lists Depth-First Branch and Bound alongside IDA* as the tree
// search algorithms its load balancing targets (Section 2).  IDA* fixes the
// cost bound per iteration; DFBB instead *tightens* the bound whenever a
// better complete solution is found.  This domain provides the optimization
// problem for that mode: tours over n <= 16 cities with deterministic
// seeded distances, and an admissible lower bound (cost so far + the sum of
// each unvisited city's cheapest incident edge, and the cheapest way back
// to the start).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "search/problem.hpp"

namespace simdts::tsp {

inline constexpr int kMaxCities = 16;

class Tsp {
 public:
  struct Node {
    std::uint16_t visited;  ///< bitmask of visited cities
    std::uint8_t last;      ///< current city
    std::uint8_t count;     ///< number of visited cities
    std::int32_t cost;      ///< tour cost so far (closed-tour cost at goal)

    friend bool operator==(const Node&, const Node&) = default;
  };

  /// Random symmetric instance: distances uniform in [1, max_distance],
  /// deterministic in the seed.  Tours start and end at city 0.
  Tsp(int n, std::uint64_t seed, std::int32_t max_distance = 100);

  /// An instance from an explicit distance matrix (row-major, n x n;
  /// must be symmetric with zero diagonal).
  Tsp(int n, const std::vector<std::int32_t>& distances);

  [[nodiscard]] Node root() const { return Node{1, 0, 1, 0}; }

  /// Children: unvisited next cities whose lower bound fits the bound; a
  /// node that has visited everyone closes the tour back to city 0 and
  /// becomes a goal carrying the full tour cost.
  void expand(const Node& n, search::Bound bound, std::vector<Node>& out,
              search::NextBound& next) const {
    if (n.count == n_) return;  // goals are not expanded
    for (int c = 0; c < n_; ++c) {
      const std::uint16_t bit = static_cast<std::uint16_t>(1u << c);
      if ((n.visited & bit) != 0) continue;
      Node child;
      child.visited = static_cast<std::uint16_t>(n.visited | bit);
      child.last = static_cast<std::uint8_t>(c);
      child.count = static_cast<std::uint8_t>(n.count + 1);
      child.cost = n.cost + distance(n.last, c);
      if (child.count == n_) {
        child.cost += distance(c, 0);  // close the tour
      }
      const search::Bound f = f_value(child);
      if (f <= bound) {
        out.push_back(child);
      } else {
        next.observe(f);
      }
    }
  }

  [[nodiscard]] bool is_goal(const Node& n) const { return n.count == n_; }

  /// Admissible f: cost so far plus, for every unvisited city and for the
  /// pending return to 0, the cheapest incident edge (half-matching bound).
  [[nodiscard]] search::Bound f_value(const Node& n) const {
    if (n.count == n_) return n.cost;
    std::int32_t lb = n.cost + min_edge_[n.last] / 2;
    for (int c = 0; c < n_; ++c) {
      if ((n.visited & (1u << c)) == 0) lb += min_edge_[c];
    }
    lb += min_edge_[0] / 2;
    return lb;
  }

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] std::int32_t distance(int a, int b) const {
    return dist_[static_cast<std::size_t>(a) * kMaxCities +
                 static_cast<std::size_t>(b)];
  }

  /// Exact optimal closed-tour cost by exhaustive permutation (n <= 12) —
  /// the test oracle.
  [[nodiscard]] std::int32_t brute_force_optimal() const;

 private:
  void finish_setup();

  int n_;
  std::array<std::int32_t, kMaxCities * kMaxCities> dist_{};
  std::array<std::int32_t, kMaxCities> min_edge_{};
};

static_assert(search::TreeProblem<Tsp>);

}  // namespace simdts::tsp
