#include "tsp/tsp.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>

#include "common/error.hpp"

namespace simdts::tsp {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Tsp::Tsp(int n, std::uint64_t seed, std::int32_t max_distance) : n_(n) {
  if (n < 1 || n > kMaxCities) {
    throw ConfigError("Tsp: city count must be in [1, 16]",
                      "n=" + std::to_string(n));
  }
  if (max_distance < 1) {
    throw ConfigError("Tsp: max_distance must be positive",
                      "max_distance=" + std::to_string(max_distance));
  }
  std::uint64_t state = seed ^ 0xC2B2AE3D27D4EB4FULL;
  for (int a = 0; a < n_; ++a) {
    for (int b = a + 1; b < n_; ++b) {
      const auto d = static_cast<std::int32_t>(
          1 + splitmix64(state) % static_cast<std::uint64_t>(max_distance));
      dist_[static_cast<std::size_t>(a) * kMaxCities + b] = d;
      dist_[static_cast<std::size_t>(b) * kMaxCities + a] = d;
    }
  }
  finish_setup();
}

Tsp::Tsp(int n, const std::vector<std::int32_t>& distances) : n_(n) {
  if (n < 1 || n > kMaxCities) {
    throw ConfigError("Tsp: city count must be in [1, 16]",
                      "n=" + std::to_string(n));
  }
  if (distances.size() != static_cast<std::size_t>(n) * n) {
    throw ConfigError("Tsp: distance matrix must be n x n",
                      "n=" + std::to_string(n) + " entries=" +
                          std::to_string(distances.size()));
  }
  for (int a = 0; a < n_; ++a) {
    for (int b = 0; b < n_; ++b) {
      const std::int32_t d = distances[static_cast<std::size_t>(a) * n + b];
      if (a == b && d != 0) {
        throw ConfigError("Tsp: diagonal must be zero",
                          "a=" + std::to_string(a) + " d=" +
                              std::to_string(d));
      }
      if (d != distances[static_cast<std::size_t>(b) * n + a]) {
        throw ConfigError("Tsp: matrix must be symmetric",
                          "a=" + std::to_string(a) + " b=" +
                              std::to_string(b));
      }
      dist_[static_cast<std::size_t>(a) * kMaxCities + b] = d;
    }
  }
  finish_setup();
}

void Tsp::finish_setup() {
  for (int a = 0; a < n_; ++a) {
    std::int32_t best = std::numeric_limits<std::int32_t>::max();
    for (int b = 0; b < n_; ++b) {
      if (b != a) best = std::min(best, distance(a, b));
    }
    min_edge_[static_cast<std::size_t>(a)] = n_ > 1 ? best : 0;
  }
}

std::int32_t Tsp::brute_force_optimal() const {
  if (n_ > 12) {
    throw ConfigError("Tsp: brute force capped at 12 cities",
                      "n=" + std::to_string(n_));
  }
  if (n_ == 1) return 0;
  std::vector<int> perm(static_cast<std::size_t>(n_) - 1);
  std::iota(perm.begin(), perm.end(), 1);
  std::int32_t best = std::numeric_limits<std::int32_t>::max();
  do {
    std::int32_t cost = distance(0, perm.front());
    for (std::size_t i = 0; i + 1 < perm.size(); ++i) {
      cost += distance(perm[i], perm[i + 1]);
    }
    cost += distance(perm.back(), 0);
    best = std::min(best, cost);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace simdts::tsp
