#include "analysis/isoefficiency.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "lb/engine.hpp"
#include "runtime/journal.hpp"
#include "runtime/sweep.hpp"
#include "simd/machine.hpp"
#include "synthetic/tree.hpp"

namespace simdts::analysis {

std::string encode_grid_point(const GridPoint& pt) {
  std::ostringstream os;
  os << "v1 " << pt.p << ' ' << pt.w << ' '
     << std::bit_cast<std::uint64_t>(pt.efficiency) << ' ' << pt.expand_cycles
     << ' ' << pt.lb_phases << ' ' << pt.lb_rounds << ' '
     << (pt.timed_out ? 1 : 0) << ' '
     << std::bit_cast<std::uint64_t>(pt.clock.elapsed) << ' '
     << std::bit_cast<std::uint64_t>(pt.clock.calc_time) << ' '
     << std::bit_cast<std::uint64_t>(pt.clock.idle_time) << ' '
     << std::bit_cast<std::uint64_t>(pt.clock.lb_time) << ' '
     << std::bit_cast<std::uint64_t>(pt.clock.recovery_time) << ' '
     << pt.clock.expand_cycles << ' ' << pt.clock.lb_rounds << ' '
     << pt.clock.recovery_rounds << ' ' << pt.clock.nodes_expanded;
  return os.str();
}

bool decode_grid_point(const std::string& payload, GridPoint& out) {
  std::istringstream is(payload);
  std::string version;
  if (!(is >> version) || version != "v1") return false;
  GridPoint pt;
  std::uint64_t eff = 0, timed = 0, el = 0, calc = 0, idle = 0, lb = 0,
                rec = 0;
  if (!(is >> pt.p >> pt.w >> eff >> pt.expand_cycles >> pt.lb_phases >>
        pt.lb_rounds >> timed >> el >> calc >> idle >> lb >> rec >>
        pt.clock.expand_cycles >> pt.clock.lb_rounds >>
        pt.clock.recovery_rounds >> pt.clock.nodes_expanded)) {
    return false;
  }
  std::string extra;
  if (is >> extra) return false;  // trailing garbage: treat as torn
  if (timed > 1) return false;
  pt.efficiency = std::bit_cast<double>(eff);
  pt.timed_out = timed == 1;
  pt.clock.elapsed = std::bit_cast<double>(el);
  pt.clock.calc_time = std::bit_cast<double>(calc);
  pt.clock.idle_time = std::bit_cast<double>(idle);
  pt.clock.lb_time = std::bit_cast<double>(lb);
  pt.clock.recovery_time = std::bit_cast<double>(rec);
  out = pt;
  return true;
}

GridResult run_grid(const lb::SchemeConfig& config,
                    std::span<const synthetic::SyntheticWorkload> workloads,
                    std::span<const std::uint32_t> machine_sizes,
                    const simd::CostModel& cost, unsigned threads) {
  GridOptions options;
  options.threads = threads;
  return run_grid(config, workloads, machine_sizes, cost, options);
}

GridResult run_grid(const lb::SchemeConfig& config,
                    std::span<const synthetic::SyntheticWorkload> workloads,
                    std::span<const std::uint32_t> machine_sizes,
                    const simd::CostModel& cost, const GridOptions& options) {
  GridResult result;
  result.config = config;
  const std::size_t per_size = workloads.size();
  result.points.resize(machine_sizes.size() * per_size);

  // Checkpoint/resume: completed slots are replayed from the journal, the
  // rest re-run.  Determinism makes the merge exact — a replayed point is
  // bit-identical to what the re-run would have produced.
  std::unique_ptr<runtime::SweepJournal> journal;
  std::vector<std::uint8_t> done(result.points.size(), std::uint8_t{0});
  if (!options.journal_path.empty()) {
    journal = std::make_unique<runtime::SweepJournal>(options.journal_path);
    if (options.resume) {
      for (const auto& [slot, payload] : journal->load()) {
        GridPoint pt;
        if (slot < result.points.size() && decode_grid_point(payload, pt)) {
          result.points[slot] = pt;
          done[slot] = 1;
        }
      }
    }
  }

  runtime::SweepRunner runner(options.threads);
  runner.run(result.points.size(), [&](std::size_t k) {
    if (done[k] != 0) return;  // replayed from the journal
    const std::uint32_t p = machine_sizes[k / per_size];
    const auto& wl = workloads[k % per_size];
    const synthetic::Tree tree(wl.params);
    simd::Machine machine(p, cost);
    lb::Engine<synthetic::Tree> engine(tree, machine, config);
    GridPoint& pt = result.points[k];
    if (options.cycle_budget != 0) {
      engine.set_cycle_budget(options.cycle_budget);
    }
    try {
      const lb::IterationStats stats =
          engine.run_iteration(search::kUnbounded);
      pt.p = p;
      pt.w = stats.nodes_expanded;
      pt.efficiency = stats.efficiency();
      pt.expand_cycles = stats.expand_cycles;
      pt.lb_phases = stats.lb_phases;
      pt.lb_rounds = stats.lb_rounds;
      pt.clock = stats.clock;
    } catch (const TimeoutError&) {
      pt = GridPoint{};
      pt.p = p;
      pt.timed_out = true;
    }
    if (journal) journal->record(k, encode_grid_point(pt));
  });
  return result;
}

std::vector<IsoCurve> extract_curves(const GridResult& grid,
                                     std::span<const double> targets) {
  // Group by machine size, keeping workload order (ascending W).
  std::vector<std::uint32_t> sizes;
  for (const auto& pt : grid.points) {
    if (sizes.empty() || sizes.back() != pt.p) sizes.push_back(pt.p);
  }

  std::vector<IsoCurve> curves;
  for (const double target : targets) {
    IsoCurve curve;
    curve.efficiency = target;
    for (const std::uint32_t p : sizes) {
      std::vector<const GridPoint*> pts;
      for (const auto& pt : grid.points) {
        if (pt.p == p) pts.push_back(&pt);
      }
      std::sort(pts.begin(), pts.end(),
                [](const GridPoint* a, const GridPoint* b) {
                  return a->w < b->w;
                });
      if (pts.size() < 2) continue;

      IsoCurvePoint cp;
      cp.p = p;
      cp.p_log_p = static_cast<double>(p) * std::log2(static_cast<double>(p));

      // Find the first bracketing segment; efficiency is noisy, so scan for
      // a crossing rather than assuming strict monotonicity.
      bool found = false;
      for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
        const double e0 = pts[i]->efficiency;
        const double e1 = pts[i + 1]->efficiency;
        if ((e0 <= target && target <= e1) ||
            (e1 <= target && target <= e0)) {
          const double lw0 = std::log(static_cast<double>(pts[i]->w));
          const double lw1 = std::log(static_cast<double>(pts[i + 1]->w));
          const double frac = e1 == e0 ? 0.0 : (target - e0) / (e1 - e0);
          cp.w_needed = std::exp(lw0 + frac * (lw1 - lw0));
          found = true;
          break;
        }
      }
      if (!found) {
        // Extrapolate from the last segment (the paper does the same for
        // its "estimated W" annotations on out-of-range points).
        const auto* a = pts[pts.size() - 2];
        const auto* b = pts[pts.size() - 1];
        const double e0 = a->efficiency;
        const double e1 = b->efficiency;
        if (e1 == e0) continue;
        const double lw0 = std::log(static_cast<double>(a->w));
        const double lw1 = std::log(static_cast<double>(b->w));
        const double frac = (target - e0) / (e1 - e0);
        cp.w_needed = std::exp(lw0 + frac * (lw1 - lw0));
        cp.extrapolated = true;
      }
      curve.points.push_back(cp);
    }
    curves.push_back(std::move(curve));
  }
  return curves;
}

LineFit fit_p_log_p(const IsoCurve& curve) {
  LineFit fit;
  double num = 0.0;
  double den = 0.0;
  for (const auto& pt : curve.points) {
    num += pt.w_needed * pt.p_log_p;
    den += pt.p_log_p * pt.p_log_p;
  }
  if (den == 0.0) return fit;
  fit.slope = num / den;
  for (const auto& pt : curve.points) {
    const double predicted = fit.slope * pt.p_log_p;
    if (predicted > 0.0) {
      fit.max_rel_deviation =
          std::max(fit.max_rel_deviation,
                   std::abs(pt.w_needed - predicted) / predicted);
    }
  }
  return fit;
}

}  // namespace simdts::analysis
