// Experimental isoefficiency harness (Figures 4 and 7).
//
// An isoefficiency curve for efficiency E plots, against P log P, the
// problem size W needed to sustain E on P processors.  Following the paper,
// the harness runs a scheme over a (P, W) grid, then for each machine size
// interpolates (in log W) the problem size that reaches each target
// efficiency.  A scheme is O(P log P)-scalable exactly when its curves are
// straight lines in these coordinates — which is what the benches assert
// qualitatively for GP and refute for nGP at high thresholds.
// Robustness (docs/robustness.md): run_grid takes GridOptions with a
// watchdog cycle budget (a point that blows it is marked timed_out instead
// of hanging the sweep) and an optional on-disk journal of completed slots,
// so an interrupted grid resumes — skipping finished points and emitting a
// byte-identical CSV (GridPoint codecs keep doubles as bit patterns).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lb/config.hpp"
#include "simd/cost_model.hpp"
#include "simd/machine.hpp"
#include "synthetic/workloads.hpp"

namespace simdts::analysis {

struct GridPoint {
  std::uint32_t p = 0;
  std::uint64_t w = 0;       ///< measured tree size (== serial W)
  double efficiency = 0.0;
  std::uint64_t expand_cycles = 0;
  std::uint64_t lb_phases = 0;
  std::uint64_t lb_rounds = 0;
  bool timed_out = false;    ///< run hit the watchdog cycle budget
  simd::MachineClock clock;  ///< simulated-time accounting of the run

  friend bool operator==(const GridPoint&, const GridPoint&) = default;
};

/// Exact single-line serialization of a GridPoint for sweep journals
/// (doubles as IEEE-754 bit patterns; see lb::encode_journal for the
/// convention).  decode returns false on torn/malformed payloads.
[[nodiscard]] std::string encode_grid_point(const GridPoint& pt);
[[nodiscard]] bool decode_grid_point(const std::string& payload,
                                     GridPoint& out);

struct GridResult {
  lb::SchemeConfig config;
  std::vector<GridPoint> points;  ///< grouped by p, ascending w within
};

/// Host-side robustness knobs for run_grid.
struct GridOptions {
  unsigned threads = 0;  ///< 0 = runtime::sweep_threads()
  /// Watchdog: nonzero bounds each run's expand cycles; a point that blows
  /// the budget is returned with timed_out = true (zero metrics) instead of
  /// stalling the sweep.
  std::uint64_t cycle_budget = 0;
  /// Path of the completed-slot journal; empty disables checkpointing.
  std::string journal_path;
  /// With a journal: load it first and skip every slot it already covers.
  bool resume = false;
};

/// Runs the scheme over every (machine size, workload) pair.  The grid's
/// runs are independent simulations, so they are swept concurrently across
/// `threads` host threads (0 = runtime::sweep_threads()); each task owns a
/// private simd::Machine and writes its pre-assigned slot, so the returned
/// points — simulated counts and clocks included — are bit-identical to the
/// serial run for any thread count.
[[nodiscard]] GridResult run_grid(
    const lb::SchemeConfig& config,
    std::span<const synthetic::SyntheticWorkload> workloads,
    std::span<const std::uint32_t> machine_sizes,
    const simd::CostModel& cost, unsigned threads = 0);

/// As above with robustness options: watchdog budget and checkpoint/resume
/// journaling.  A resumed grid (same config/workloads/sizes) reproduces the
/// uninterrupted result bit-identically — completed slots are replayed from
/// the journal, the rest are re-run (determinism makes the merge exact).
/// The journal file is left in place; callers delete it (via
/// runtime::SweepJournal::remove) once derived outputs are safely written.
[[nodiscard]] GridResult run_grid(
    const lb::SchemeConfig& config,
    std::span<const synthetic::SyntheticWorkload> workloads,
    std::span<const std::uint32_t> machine_sizes,
    const simd::CostModel& cost, const GridOptions& options);

struct IsoCurvePoint {
  std::uint32_t p = 0;
  double w_needed = 0.0;    ///< interpolated W reaching the target efficiency
  double p_log_p = 0.0;     ///< the x coordinate of the paper's figures
  bool extrapolated = false;  ///< target outside the measured W range
};

struct IsoCurve {
  double efficiency = 0.0;
  std::vector<IsoCurvePoint> points;
};

/// Extracts curves for each target efficiency from a grid.  Efficiency is
/// monotone (noisily) increasing in W for fixed P; interpolation is linear
/// in (log W, E).
[[nodiscard]] std::vector<IsoCurve> extract_curves(
    const GridResult& grid, std::span<const double> targets);

/// Least-squares slope of w_needed against p_log_p through the origin, and
/// the maximum relative deviation of the curve from that line.  A small
/// deviation means the isoefficiency is (experimentally) O(P log P).
struct LineFit {
  double slope = 0.0;
  double max_rel_deviation = 0.0;
};
[[nodiscard]] LineFit fit_p_log_p(const IsoCurve& curve);

}  // namespace simdts::analysis
