// Fixed-width text tables and CSV emission for the experiment harness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace simdts::analysis {

/// A simple column-aligned table builder.  Cells are strings; numeric
/// convenience overloads format with sensible defaults.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row.  Cells are appended with add().
  Table& row();
  Table& add(std::string cell);
  Table& add(const char* cell);
  Table& add(std::uint64_t v);
  Table& add(std::int64_t v);
  Table& add(int v);
  Table& add(double v, int precision = 2);

  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Renders as CSV (no quoting beyond commas-in-cells being forbidden).
  [[nodiscard]] std::string to_csv() const;

  /// Writes to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

  [[nodiscard]] std::size_t rows() const { return cells_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t r, std::size_t c) const {
    return cells_.at(r).at(c);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision.
[[nodiscard]] std::string format_double(double v, int precision = 2);

/// Writes `content` to `path`, creating parent directories; returns false
/// (without throwing) if the filesystem refuses.
bool write_file(const std::string& path, const std::string& content);

}  // namespace simdts::analysis
