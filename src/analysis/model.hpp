// The paper's analytic models (Sections 4 and 9, Appendices A and B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace simdts::analysis {

/// Parameters of the optimal static trigger equation (eq. 18).
struct TriggerModel {
  double w;               ///< problem size W (serial node expansions)
  std::uint32_t p;        ///< number of processors
  double tlb_over_ucalc;  ///< load-balancing phase cost / node expansion cost
  double alpha = 0.7;     ///< splitting quality (the equation is insensitive
                          ///< to alpha; the paper notes any reasonable
                          ///< approximation is acceptable)
};

/// log_{1/(1-alpha)} W — the Appendix A bound on the transfers needed to
/// exhaust work of size W under alpha-splitting.
[[nodiscard]] double split_log(double w, double alpha);

/// The optimal static trigger x_o (eq. 18):
///   x_o = 1 / ( sqrt( P * (t_lb/U_calc) * log_{1/(1-alpha)} W / W ) + 1 ).
[[nodiscard]] double optimal_static_trigger(const TriggerModel& m);

/// Predicted efficiency of GP-S^x assuming beta = 0 (eq. 17):
///   E = 1 / ( 1/x + (1/(1-x)) * P log W t_lb / (W U_calc) ).
[[nodiscard]] double predicted_efficiency_gp(const TriggerModel& m, double x);

/// Upper bound on V(P) — load-balancing phases per "every busy processor
/// donated once" epoch — for GP with static trigger x (Section 4.1):
/// 1/(1-x).
[[nodiscard]] double v_bound_gp(double x);

/// Upper bound on V(P) for nGP with static trigger x (Appendix B):
/// (log2 W)^((2x-1)/(1-x)) for x > 0.5; 1 otherwise.
[[nodiscard]] double v_bound_ngp(double x, double w);

/// Upper bound on the total number of load-balancing phases:
/// V(P) * log_{1/(1-alpha)} W  (Appendix A).
[[nodiscard]] double lb_phase_bound(double v_of_p, double w, double alpha);

/// One row of the paper's Table 6: the isoefficiency function of a
/// matching/static-trigger combination on an architecture, as a formula
/// string and as an evaluator for plotting.
struct IsoefficiencyFormula {
  std::string architecture;
  std::string scheme;
  std::string formula;
  /// Evaluates the isoefficiency growth term for machine size p (up to the
  /// constant factor; x is the static trigger threshold where relevant).
  double (*grow)(double p, double x);
};

/// All rows of Table 6 (hypercube and mesh, nGP-S^x and GP-S^x), plus the
/// CM-2 rows used in the experiments (t_lb = O(1): W = O(P log P) for GP).
[[nodiscard]] std::vector<IsoefficiencyFormula> table6_formulas();

}  // namespace simdts::analysis
