#include "analysis/report.hpp"

#include <cstdlib>
#include <iostream>

namespace simdts::analysis {

void print_banner(const std::string& experiment, const std::string& paper_ref,
                  const std::string& shape_note) {
  std::cout << "==============================================================="
               "=\n"
            << experiment << '\n'
            << "Paper: " << paper_ref << '\n'
            << "Shape expectation: " << shape_note << '\n'
            << "==============================================================="
               "=\n";
}

std::string out_dir() {
  if (const char* dir = std::getenv("SIMDTS_OUT_DIR"); dir != nullptr) {
    return dir;
  }
  return "bench_out";
}

void emit_csv(const std::string& name, const Table& table) {
  const std::string path = out_dir() + "/" + name + ".csv";
  if (write_file(path, table.to_csv())) {
    std::cout << "[csv] " << path << '\n';
  } else {
    std::cout << "[csv] failed to write " << path << '\n';
  }
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || parsed == 0) return fallback;
  return parsed;
}

bool quick_mode() { return std::getenv("SIMDTS_QUICK") != nullptr; }

}  // namespace simdts::analysis
