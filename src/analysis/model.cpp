#include "analysis/model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace simdts::analysis {

double split_log(double w, double alpha) {
  if (w <= 1.0) return 0.0;
  if (alpha <= 0.0 || alpha >= 1.0) {
    throw ConfigError("split_log: alpha must be in (0, 1)",
                      "alpha=" + std::to_string(alpha));
  }
  return std::log(w) / std::log(1.0 / (1.0 - alpha));
}

double optimal_static_trigger(const TriggerModel& m) {
  const double lw = split_log(m.w, m.alpha);
  const double inner =
      static_cast<double>(m.p) * m.tlb_over_ucalc * lw / m.w;
  return 1.0 / (std::sqrt(inner) + 1.0);
}

double predicted_efficiency_gp(const TriggerModel& m, double x) {
  if (x <= 0.0 || x >= 1.0) {
    throw ConfigError("predicted_efficiency_gp: x must be in (0, 1)",
                      "x=" + std::to_string(x));
  }
  const double lw = split_log(m.w, m.alpha);
  const double overhead =
      static_cast<double>(m.p) * lw * m.tlb_over_ucalc / m.w;
  return 1.0 / (1.0 / x + overhead / (1.0 - x));
}

double v_bound_gp(double x) {
  if (x >= 1.0) {
    throw ConfigError("v_bound_gp: x must be < 1", "x=" + std::to_string(x));
  }
  return x <= 0.5 ? 1.0 : 1.0 / (1.0 - x);
}

double v_bound_ngp(double x, double w) {
  if (x <= 0.5) return 1.0;
  if (x >= 1.0) {
    throw ConfigError("v_bound_ngp: x must be < 1",
                      "x=" + std::to_string(x));
  }
  const double exponent = (2.0 * x - 1.0) / (1.0 - x);
  return std::pow(std::log2(w), exponent);
}

double lb_phase_bound(double v_of_p, double w, double alpha) {
  return v_of_p * split_log(w, alpha);
}

namespace {

double grow_gp_cm2(double p, double /*x*/) { return p * std::log2(p); }

double grow_ngp_cm2(double p, double x) {
  // W = O(P log^{x/(1-x)} P).
  return p * std::pow(std::log2(p), x / (1.0 - x));
}

double grow_gp_hypercube(double p, double /*x*/) {
  const double lg = std::log2(p);
  return p * lg * lg * lg;
}

double grow_ngp_hypercube(double p, double x) {
  // W = O(P log^{(2 + x/(1-x))} P): the t_lb = log^2 P factor on top of the
  // nGP V(P) growth.
  return p * std::pow(std::log2(p), 2.0 + x / (1.0 - x));
}

double grow_gp_mesh(double p, double /*x*/) {
  return std::pow(p, 1.5) * std::log2(p);
}

double grow_ngp_mesh(double p, double x) {
  return std::pow(p, 1.5) * std::pow(std::log2(p), x / (1.0 - x));
}

}  // namespace

std::vector<IsoefficiencyFormula> table6_formulas() {
  return {
      {"CM-2 (t_lb = O(1))", "GP-S^x", "W = O(P log P)", &grow_gp_cm2},
      {"CM-2 (t_lb = O(1))", "nGP-S^x", "W = O(P log^{x/(1-x)} P)",
       &grow_ngp_cm2},
      {"Hypercube", "GP-S^x", "W = O(P log^3 P)", &grow_gp_hypercube},
      {"Hypercube", "nGP-S^x", "W = O(P log^{2 + x/(1-x)} P)",
       &grow_ngp_hypercube},
      {"Mesh", "GP-S^x", "W = O(P^1.5 log P)", &grow_gp_mesh},
      {"Mesh", "nGP-S^x", "W = O(P^1.5 log^{x/(1-x)} P)", &grow_ngp_mesh},
  };
}

}  // namespace simdts::analysis
