// Experiment report helpers shared by the bench binaries: a standard header,
// paper-vs-measured framing, and CSV artifact emission.
#pragma once

#include <string>

#include "analysis/table.hpp"

namespace simdts::analysis {

/// Prints a bench banner: experiment id, paper reference, and what "shape
/// holds" means for it.
void print_banner(const std::string& experiment, const std::string& paper_ref,
                  const std::string& shape_note);

/// Directory for CSV artifacts: $SIMDTS_OUT_DIR or "bench_out".
[[nodiscard]] std::string out_dir();

/// Writes a table as CSV under out_dir()/<name>.csv and reports the path to
/// stdout (best-effort: failure to write is reported but not fatal).
void emit_csv(const std::string& name, const Table& table);

/// Reads a positive integer from the environment (scaling knobs for the
/// bench harness); returns fallback when unset or unparsable.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// True when $SIMDTS_QUICK is set (reduced-scale bench runs).
[[nodiscard]] bool quick_mode();

}  // namespace simdts::analysis
