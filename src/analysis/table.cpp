#include "analysis/table.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace simdts::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw ConfigError("Table: need at least one column", "headers=0");
  }
}

Table& Table::row() {
  if (!cells_.empty() && cells_.back().size() != headers_.size()) {
    throw InvariantError("Table: previous row incomplete",
                         "have " + std::to_string(cells_.back().size()) +
                             " of " + std::to_string(headers_.size()) +
                             " cells");
  }
  cells_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (cells_.empty()) row();
  if (cells_.back().size() >= headers_.size()) {
    throw InvariantError("Table: too many cells in row",
                         "width=" + std::to_string(headers_.size()));
  }
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(int v) { return add(std::to_string(v)); }
Table& Table::add(double v, int precision) {
  return add(format_double(v, precision));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << cell;
    }
    os << '\n';
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "" : "  ") << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : cells_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : cells_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(p);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace simdts::analysis
