// SimdSan: shadow instrumentation for the determinism disciplines.
//
// Every number the reproduction reports is a function of simulated cycle
// counts that must stay bit-identical across host thread counts.  The
// invariants that guarantee this — word-granularity host-thread partitioning,
// tail-bits-zero flag planes, dead-lane stack hygiene, single-donor
// rendezvous matching, incremental-census/flag-plane agreement, sorted fault
// plans — were previously enforced only by golden-CSV diffs after the fact.
// SimdSan checks them at the access: instrumented call sites in
// simd/bitplane, search/work_stack, lb/engine, lb/matching, and fault/
// consult a shadow state and throw a typed simdts::SanitizerError (naming the
// broken invariant) the moment a discipline is violated.
//
// Cost model: everything here is compiled in only under SIMDTS_SANITIZE (a
// CMake option, OFF by default).  In a default build this header contributes
// the constexpr `kCompiledIn = false` and empty macros — no symbols, no
// branches, provably zero cost (a ctest runs `nm` over libsimdts.a to prove
// it, and bench/perf_harness hard-fails if the default build reports the
// sanitizer compiled in).  In a sanitize build the checks can additionally be
// disarmed at run time (set_armed(false)) so the perf harness can measure the
// armed-vs-disarmed overhead on identical binaries.
//
// Layering: this module sits between common/ and simd/ so that the substrate
// itself can hook it.  It therefore speaks only in raw words and lane
// indices — no BitPlane, no Pair, no engine types.
#pragma once

#include <cstddef>
#include <cstdint>

#ifdef SIMDTS_SANITIZE
#include <memory>
#include <string>
#endif

namespace simdts::san {

/// True when the library was built with -DSIMDTS_SANITIZE=ON.  Available in
/// both build flavors so harnesses can report which binary they measured.
#ifdef SIMDTS_SANITIZE
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

#ifdef SIMDTS_SANITIZE

/// Runtime master switch.  Armed by default; the perf harness disarms one of
/// two interleaved runs to measure check overhead on the same binary.
[[nodiscard]] bool armed() noexcept;
void set_armed(bool value) noexcept;

/// Test-only mutation hooks.  Each flag makes one instrumented call site
/// deliberately violate its discipline so the mutation-test suite can prove
/// the sanitizer catches it (and names the right invariant).  All false in
/// normal operation, including under ctest's positive tests.
struct MutationHooks {
  bool shrink_word_claim = false;    // claim one word fewer than written
  bool expand_dead_lane = false;     // expansion ignores the dead plane
  bool donate_from_dead = false;     // rendezvous pairs a dead donor
  bool duplicate_match_pair = false; // same donor matched twice in one round
  bool corrupt_tail = false;         // set a bit past size() in a flag plane
  bool drop_census_delta = false;    // lose one lane's census update
  bool skip_plan_sort = false;       // fault plan left in submission order

  void reset() noexcept { *this = MutationHooks{}; }
};
[[nodiscard]] MutationHooks& mutation() noexcept;

// ---------------------------------------------------------------------------
// Word ownership ("word-ownership")
//
// The engine partitions flag-plane words across host worker threads; a
// thread may only write words inside its claimed range.  Each worker
// registers its claim for the duration of one dispatch via an RAII WordClaim;
// check_word_write verifies the writing thread's claim covers the word and
// that no two live claims overlap.
//
// Word indices only mean something relative to one engine's flag-plane
// arrays, and independent engines legitimately run at the same time (the
// sweep runner fans whole grid points across host threads), so claims live
// in a per-engine ClaimDomain rather than a process-wide registry —
// otherwise two concurrent engines' word 0 would look like a race.

class ClaimDomain {
 public:
  ClaimDomain();
  ~ClaimDomain();

  ClaimDomain(const ClaimDomain&) = delete;
  ClaimDomain& operator=(const ClaimDomain&) = delete;

 private:
  friend class WordClaim;
  friend void check_word_write(const ClaimDomain& domain, std::size_t w);
  struct State;
  std::unique_ptr<State> state_;
};

class WordClaim {
 public:
  /// Claims words [begin, end) of `domain` for the calling thread.  Throws
  /// SanitizerError("word-ownership") if the range overlaps another live
  /// claim in the same domain, or this thread already holds a claim.
  WordClaim(ClaimDomain& domain, std::size_t lane, std::size_t word_begin,
            std::size_t word_end);
  ~WordClaim();

  WordClaim(const WordClaim&) = delete;
  WordClaim& operator=(const WordClaim&) = delete;

 private:
  ClaimDomain::State* state_;
  std::size_t id_;
};

/// Verifies the calling thread holds a claim in `domain` covering word `w`.
/// Throws SanitizerError("word-ownership") on a write outside the claim (or
/// with no claim at all while any claim is live in the domain).
void check_word_write(const ClaimDomain& domain, std::size_t w);

// ---------------------------------------------------------------------------
// Lane bounds ("lane-bounds") and stack reads ("stack-underflow")

/// Throws SanitizerError("lane-bounds") unless i < lanes.
void check_lane_index(std::size_t i, std::size_t lanes, const char* where);

/// Throws SanitizerError("stack-underflow") when an operation needing `need`
/// nodes runs against a stack holding `have`.
void check_stack_read(std::size_t have, std::size_t need, const char* op);

// ---------------------------------------------------------------------------
// Tail bits ("tail-bits")

/// Verifies bits at positions >= lanes in a packed plane are zero.  Throws
/// SanitizerError("tail-bits") naming the plane otherwise.
void verify_tail_zero(const std::uint64_t* words, std::size_t word_count,
                      std::size_t lanes, const char* plane_name);

// ---------------------------------------------------------------------------
// Census agreement ("census-divergence")

/// Compares an incrementally maintained census against a reference recount.
/// Throws SanitizerError("census-divergence") when they disagree.
void check_census(std::uint64_t incremental, std::uint64_t reference,
                  const char* quantity);

// ---------------------------------------------------------------------------
// Dead-lane discipline ("dead-lane")
//
// Shadow copy of the fault-dead plane, maintained by the engine's
// kill/revive path.  Expansion and donation sites ask it whether a lane is
// allowed to participate — catching reads from (or donations out of) a
// killed lane's stack even when the packed dead-mask test was bypassed.

class DeadLaneShadow {
 public:
  void resize(std::size_t lanes);
  void clear() noexcept;
  void mark_dead(std::size_t lane);
  void mark_alive(std::size_t lane);
  [[nodiscard]] bool is_dead(std::size_t lane) const noexcept;

  /// Throws SanitizerError("dead-lane") when `lane` is dead.  `action` names
  /// the attempted operation ("expand", "donate", ...).
  void check_alive(std::size_t lane, const char* action) const;

 private:
  std::string dead_;  // one byte per lane; values 0/1
};

// ---------------------------------------------------------------------------
// Single-donor matching ("double-donation")

/// Verifies a rendezvous round's donor list contains no repeats: `donors`
/// holds `n` donor lane indices from one match.  Throws
/// SanitizerError("double-donation") on the first repeated donor.
void verify_unique_donors(const std::uint32_t* donors, std::size_t n);

// ---------------------------------------------------------------------------
// Fault-plan ordering ("plan-order")

/// Verifies the event cycle sequence is non-decreasing (the ordering the
/// engine's due-event cursor depends on).  Throws
/// SanitizerError("plan-order") at the first inversion.
void verify_plan_cycles(const std::uint64_t* cycles, std::size_t n);

#endif  // SIMDTS_SANITIZE

}  // namespace simdts::san

// Instrumented call sites in otherwise-noexcept hot paths use this in place
// of `noexcept`: sanitize builds must be able to throw SanitizerError out of
// them, default builds keep the noexcept contract (and codegen) unchanged.
#ifdef SIMDTS_SANITIZE
#define SIMDTS_SAN_NOEXCEPT
#else
#define SIMDTS_SAN_NOEXCEPT noexcept
#endif

// Bounds check for per-lane accessors: active only under SIMDTS_SANITIZE,
// expands to nothing (not even a branch) otherwise.
#ifdef SIMDTS_SANITIZE
#define SIMDTS_SAN_LANE_CHECK(i, lanes, where) \
  ::simdts::san::check_lane_index((i), (lanes), (where))
#else
#define SIMDTS_SAN_LANE_CHECK(i, lanes, where) \
  do {                                         \
  } while (false)
#endif
