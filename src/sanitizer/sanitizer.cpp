// SimdSan shadow-state implementation.  The whole translation unit is gated
// on SIMDTS_SANITIZE so a default build contributes zero symbols to
// libsimdts.a — the lint.sanitizer_zero_cost ctest runs `nm` to hold us to
// that.
#ifdef SIMDTS_SANITIZE

#include "sanitizer/sanitizer.hpp"

#include <atomic>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace simdts::san {

namespace {

std::atomic<bool> g_armed{true};

MutationHooks g_mutation{};

[[noreturn]] void fail(const char* invariant, const std::string& what) {
  throw SanitizerError(invariant, what);
}

// Live word claims.  Claims are rare (one per worker per dispatch) and the
// per-write check only consults the calling thread's own claim through a
// thread_local, so the per-domain mutex is off the hot path.
struct ClaimRecord {
  std::size_t id;
  std::size_t lane;
  std::size_t begin;
  std::size_t end;
};

struct LocalClaim {
  std::size_t id = 0;        // 0 = none
  const void* domain = nullptr;  // the ClaimDomain::State the claim lives in
  std::size_t begin = 0;
  std::size_t end = 0;
};
thread_local LocalClaim t_claim;

}  // namespace

struct ClaimDomain::State {
  std::mutex mutex;
  std::vector<ClaimRecord> claims;
  std::size_t next_id = 1;
  std::atomic<std::size_t> live{0};
};

ClaimDomain::ClaimDomain() : state_(std::make_unique<State>()) {}
ClaimDomain::~ClaimDomain() = default;

bool armed() noexcept { return g_armed.load(std::memory_order_relaxed); }
void set_armed(bool value) noexcept {
  g_armed.store(value, std::memory_order_relaxed);
}

MutationHooks& mutation() noexcept { return g_mutation; }

WordClaim::WordClaim(ClaimDomain& domain, std::size_t lane,
                     std::size_t word_begin, std::size_t word_end)
    : state_(domain.state_.get()), id_(0) {
  if (!armed()) return;
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (t_claim.id != 0) {
    std::ostringstream os;
    os << "worker for lane " << lane << " opened a word claim while one is "
       << "already live on this thread";
    fail("word-ownership", os.str());
  }
  for (const ClaimRecord& c : state_->claims) {
    if (word_begin < c.end && c.begin < word_end) {
      std::ostringstream os;
      os << "claim [" << word_begin << ", " << word_end << ") for lane "
         << lane << " overlaps live claim [" << c.begin << ", " << c.end
         << ") held for lane " << c.lane;
      fail("word-ownership", os.str());
    }
  }
  id_ = state_->next_id++;
  state_->claims.push_back(ClaimRecord{id_, lane, word_begin, word_end});
  t_claim = LocalClaim{id_, state_, word_begin, word_end};
  state_->live.fetch_add(1, std::memory_order_relaxed);
}

WordClaim::~WordClaim() {
  if (id_ == 0) return;
  std::lock_guard<std::mutex> lock(state_->mutex);
  for (std::size_t i = 0; i < state_->claims.size(); ++i) {
    if (state_->claims[i].id == id_) {
      state_->claims.erase(state_->claims.begin() +
                           static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  t_claim = LocalClaim{};
  state_->live.fetch_sub(1, std::memory_order_relaxed);
}

void check_word_write(const ClaimDomain& domain, std::size_t w) {
  if (!armed()) return;
  const ClaimDomain::State* state = domain.state_.get();
  // Single-threaded phases (no live claims in this domain) write freely;
  // the ownership discipline only binds while a partitioned dispatch is
  // running.
  if (state->live.load(std::memory_order_relaxed) == 0) return;
  if (t_claim.id == 0 || t_claim.domain != state) {
    std::ostringstream os;
    os << "write to flag-plane word " << w
       << " from a thread holding no word claim while a partitioned "
       << "dispatch is live";
    fail("word-ownership", os.str());
  }
  if (w < t_claim.begin || w >= t_claim.end) {
    std::ostringstream os;
    os << "write to flag-plane word " << w << " outside this thread's claim ["
       << t_claim.begin << ", " << t_claim.end << ")";
    fail("word-ownership", os.str());
  }
}

void check_lane_index(std::size_t i, std::size_t lanes, const char* where) {
  if (!armed()) return;
  if (i >= lanes) {
    std::ostringstream os;
    os << where << ": lane index " << i << " out of range for " << lanes
       << " lanes";
    fail("lane-bounds", os.str());
  }
}

void check_stack_read(std::size_t have, std::size_t need, const char* op) {
  if (!armed()) return;
  if (have < need) {
    std::ostringstream os;
    os << op << " needs " << need << " node(s) but the stack holds " << have;
    fail("stack-underflow", os.str());
  }
}

void verify_tail_zero(const std::uint64_t* words, std::size_t word_count,
                      std::size_t lanes, const char* plane_name) {
  if (!armed()) return;
  if (word_count == 0) return;
  const std::size_t base = (word_count - 1) * 64;
  const std::size_t valid = lanes > base ? lanes - base : 0;
  const std::uint64_t mask =
      valid >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << valid) - 1;
  const std::uint64_t tail = words[word_count - 1] & ~mask;
  if (tail != 0) {
    std::ostringstream os;
    os << plane_name << ": bits set past lane " << lanes
       << " in the last word (tail=0x" << std::hex << tail << ")";
    fail("tail-bits", os.str());
  }
}

void check_census(std::uint64_t incremental, std::uint64_t reference,
                  const char* quantity) {
  if (!armed()) return;
  if (incremental != reference) {
    std::ostringstream os;
    os << quantity << ": incremental census " << incremental
       << " != reference recount " << reference;
    fail("census-divergence", os.str());
  }
}

void DeadLaneShadow::resize(std::size_t lanes) { dead_.assign(lanes, '\0'); }

void DeadLaneShadow::clear() noexcept {
  dead_.assign(dead_.size(), '\0');
}

void DeadLaneShadow::mark_dead(std::size_t lane) {
  if (lane < dead_.size()) dead_[lane] = '\1';
}

void DeadLaneShadow::mark_alive(std::size_t lane) {
  if (lane < dead_.size()) dead_[lane] = '\0';
}

bool DeadLaneShadow::is_dead(std::size_t lane) const noexcept {
  return lane < dead_.size() && dead_[lane] != '\0';
}

void DeadLaneShadow::check_alive(std::size_t lane, const char* action) const {
  if (!armed()) return;
  if (is_dead(lane)) {
    std::ostringstream os;
    os << action << " touched the stack of fault-killed lane " << lane;
    fail("dead-lane", os.str());
  }
}

void verify_unique_donors(const std::uint32_t* donors, std::size_t n) {
  if (!armed()) return;
  // Rendezvous rounds pair at most a few hundred lanes; O(n^2) keeps the
  // shadow state allocation-free.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (donors[i] == donors[j]) {
        std::ostringstream os;
        os << "donor lane " << donors[i]
           << " matched twice in one rendezvous round (pairs " << i << " and "
           << j << ")";
        fail("double-donation", os.str());
      }
    }
  }
}

void verify_plan_cycles(const std::uint64_t* cycles, std::size_t n) {
  if (!armed()) return;
  for (std::size_t i = 1; i < n; ++i) {
    if (cycles[i] < cycles[i - 1]) {
      std::ostringstream os;
      os << "fault-plan event " << i << " at cycle " << cycles[i]
         << " precedes event " << i - 1 << " at cycle " << cycles[i - 1];
      fail("plan-order", os.str());
    }
  }
}

}  // namespace simdts::san

#endif  // SIMDTS_SANITIZE
