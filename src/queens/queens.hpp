// N-queens as a TreeProblem.
//
// A second, structurally different domain for the generic search API: no
// heuristic, no cost bound, goal nodes at a fixed depth, and solution
// *counting* instead of shortest paths.  Used by the examples as the
// "bring your own problem" walkthrough and by the tests as an independent
// check that the parallel engine conserves work on a domain it was not
// tuned for (N=8 must always find exactly 92 solutions, on any scheme and
// any machine size).
#pragma once

#include <cstdint>
#include <vector>

#include "search/problem.hpp"

namespace simdts::queens {

class Queens {
 public:
  struct Node {
    std::uint32_t cols;   ///< columns already occupied
    std::uint32_t diag1;  ///< "/" diagonals, pre-shifted to the current row
    std::uint32_t diag2;  ///< "\" diagonals, pre-shifted
    std::uint8_t row;     ///< next row to fill

    friend bool operator==(const Node&, const Node&) = default;
  };

  explicit Queens(int n);

  [[nodiscard]] Node root() const { return Node{0, 0, 0, 0}; }

  void expand(const Node& n, search::Bound /*bound*/, std::vector<Node>& out,
              search::NextBound& /*next*/) const {
    if (n.row >= n_) return;
    std::uint32_t free = full_ & ~(n.cols | n.diag1 | n.diag2);
    while (free != 0) {
      const std::uint32_t bit = free & (0u - free);
      free ^= bit;
      out.push_back(Node{n.cols | bit, ((n.diag1 | bit) << 1) & full_,
                         (n.diag2 | bit) >> 1,
                         static_cast<std::uint8_t>(n.row + 1)});
    }
  }

  [[nodiscard]] bool is_goal(const Node& n) const { return n.row == n_; }
  [[nodiscard]] search::Bound f_value(const Node&) const { return 0; }

  [[nodiscard]] int n() const { return n_; }

  /// The known solution count for board size n (1 <= n <= 15), for tests.
  [[nodiscard]] static std::uint64_t known_solutions(int n);

 private:
  int n_;
  std::uint32_t full_;
};

static_assert(search::TreeProblem<Queens>);

}  // namespace simdts::queens
