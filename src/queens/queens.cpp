#include "queens/queens.hpp"

#include <string>

#include "common/error.hpp"

namespace simdts::queens {

Queens::Queens(int n) : n_(n) {
  if (n < 1 || n > 16) {
    throw ConfigError("Queens: board size must be in [1, 16]",
                      "n=" + std::to_string(n));
  }
  full_ = (n == 32) ? ~0u : ((1u << n) - 1u);
}

std::uint64_t Queens::known_solutions(int n) {
  // OEIS A000170.
  static constexpr std::uint64_t kCounts[] = {
      0,      1,      0,       0,       2,      10,     4,      40,
      92,     352,    724,     2680,    14200,  73712,  365596, 2279184};
  if (n < 1 || n > 15) {
    throw ConfigError("Queens: known count available for n in [1, 15]",
                      "n=" + std::to_string(n));
  }
  return kCounts[n];
}

}  // namespace simdts::queens
