# Test-time script proving an optional subsystem is what it claims to be at
# the symbol level.  Backs two ctests registered in the top-level CMakeLists:
#
#   lint.sanitizer_zero_cost      PREFIX=6simdts3san  (simdts::san, SimdSan)
#   lint.vector_backend_symbols   PREFIX=6simdts3vec  (simdts::vec kernels)
#
# With the subsystem's option OFF, no symbol of the namespace may be defined
# anywhere in libsimdts.a — the code must vanish, not just idle; with ON, the
# symbols must be present (the hooks/kernels really were compiled in).  The
# check greps nm output for the mangled namespace prefix (the itanium
# encoding, e.g. `6simdts3san` for simdts::san), which no other namespace in
# the project can produce.
#
# Usage: cmake -DNM=<nm> -DLIB=<libsimdts.a> -DPREFIX=<mangled-prefix>
#              -DWHAT=<human name> -DEXPECT_PRESENT=<ON|OFF>
#              -P CheckNamespaceSymbols.cmake
if(NOT NM OR NOT LIB OR NOT PREFIX OR NOT WHAT)
  message(FATAL_ERROR
    "CheckNamespaceSymbols: NM, LIB, PREFIX and WHAT must be defined")
endif()

execute_process(
  COMMAND "${NM}" --defined-only "${LIB}"
  OUTPUT_VARIABLE symbols
  ERROR_VARIABLE nm_err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "nm failed on ${LIB}: ${nm_err}")
endif()

string(FIND "${symbols}" "${PREFIX}" pos)

if(EXPECT_PRESENT)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "${WHAT} is enabled but no ${PREFIX} symbol is defined in ${LIB} — "
      "it was not compiled in")
  endif()
  message(STATUS "${WHAT} symbols present in ${LIB}, as expected (ON)")
else()
  if(NOT pos EQUAL -1)
    message(FATAL_ERROR
      "${WHAT} is disabled but ${PREFIX} symbols are defined in ${LIB} — "
      "it leaked into the default build and is no longer provably absent")
  endif()
  message(STATUS "no ${WHAT} symbols in ${LIB}, as expected (OFF)")
endif()
