# Gated clang-tidy / clang-format enforcement.
#
# The dev container does not ship LLVM tooling, so these checks register
# only when the binaries are found (CI installs them; see
# .github/workflows/ci.yml's lint job).  simdlint — built from source in
# tools/simdlint — is the always-on layer; clang-tidy adds the generic
# bugprone/performance/concurrency checks on top.

find_program(SIMDTS_CLANG_TIDY clang-tidy)
find_program(SIMDTS_CLANG_FORMAT clang-format)

function(simdts_add_clang_tidy_check)
  if(NOT SIMDTS_CLANG_TIDY)
    message(STATUS "clang-tidy not found; lint.clang_tidy not registered")
    return()
  endif()
  if(NOT CMAKE_EXPORT_COMPILE_COMMANDS)
    message(STATUS "compile_commands.json disabled; lint.clang_tidy skipped")
    return()
  endif()
  # The library proper — bench/tests link gtest/benchmark headers whose
  # diagnostics we don't own.
  file(GLOB_RECURSE _tidy_sources CONFIGURE_DEPENDS
       ${CMAKE_SOURCE_DIR}/src/*.cpp)
  add_test(NAME lint.clang_tidy
    COMMAND ${SIMDTS_CLANG_TIDY}
            -p ${CMAKE_BINARY_DIR}
            --quiet
            --warnings-as-errors=*
            ${_tidy_sources})
  set_tests_properties(lint.clang_tidy PROPERTIES TIMEOUT 1800)
endfunction()

function(simdts_add_clang_format_check)
  if(NOT SIMDTS_CLANG_FORMAT)
    message(STATUS "clang-format not found; format_check target not added")
    return()
  endif()
  file(GLOB_RECURSE _fmt_sources CONFIGURE_DEPENDS
       ${CMAKE_SOURCE_DIR}/tools/simdlint/*.cpp
       ${CMAKE_SOURCE_DIR}/tools/simdlint/*.hpp)
  # Check-only target, scoped to the linter's own sources; the wider tree is
  # checked in CI on changed files only to avoid reformat churn (see
  # docs/static-analysis.md).
  add_custom_target(format_check
    COMMAND ${SIMDTS_CLANG_FORMAT} --dry-run -Werror ${_fmt_sources}
    COMMENT "clang-format (check only, tools/simdlint)"
    VERBATIM)
endfunction()
