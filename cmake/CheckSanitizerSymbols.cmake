# Test-time script behind the lint.sanitizer_zero_cost ctest (registered in
# the top-level CMakeLists): proves SimdSan is what it claims to be at the
# symbol level.  With SIMDTS_SANITIZE=OFF, no simdts::san symbol may be
# defined anywhere in libsimdts.a — the instrumentation must vanish, not just
# idle; with ON, the symbols must be present (the hooks really were compiled
# in).  The check greps nm output for the mangled namespace prefix
# `6simdts3san` (the itanium encoding of simdts::san), which no other
# namespace in the project can produce.
#
# Usage: cmake -DNM=<nm> -DLIB=<libsimdts.a> -DEXPECT_PRESENT=<ON|OFF>
#              -P CheckSanitizerSymbols.cmake
if(NOT NM OR NOT LIB)
  message(FATAL_ERROR "CheckSanitizerSymbols: NM and LIB must be defined")
endif()

execute_process(
  COMMAND "${NM}" --defined-only "${LIB}"
  OUTPUT_VARIABLE symbols
  ERROR_VARIABLE nm_err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "nm failed on ${LIB}: ${nm_err}")
endif()

string(FIND "${symbols}" "6simdts3san" pos)

if(EXPECT_PRESENT)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "SIMDTS_SANITIZE=ON but no simdts::san symbol is defined in ${LIB} — "
      "the sanitizer was not compiled in")
  endif()
  message(STATUS "sanitizer symbols present in ${LIB}, as expected (ON)")
else()
  if(NOT pos EQUAL -1)
    message(FATAL_ERROR
      "SIMDTS_SANITIZE=OFF but simdts::san symbols are defined in ${LIB} — "
      "the sanitizer leaked into the default build and is no longer "
      "provably zero-cost")
  endif()
  message(STATUS "no sanitizer symbols in ${LIB}, as expected (OFF)")
endif()
