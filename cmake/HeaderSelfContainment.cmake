# Header self-containment check.
#
# Generates one translation unit per public header under src/ that includes
# the header twice and nothing else, and compiles them all into an object
# library.  A header that silently leans on its includer's includes, or
# whose include guard is broken, fails the ordinary build — the earliest
# possible enforcement point.  Registered as the `header_self_containment`
# target (part of ALL) plus a `lint.headers_self_contained` ctest that
# rebuilds it on demand.
#
# The double include is deliberate: it turns a missing/typoed `#pragma once`
# into a redefinition error instead of a latent footgun.

function(simdts_add_header_self_containment)
  file(GLOB_RECURSE _simdts_headers
       RELATIVE ${CMAKE_SOURCE_DIR}/src
       CONFIGURE_DEPENDS
       ${CMAKE_SOURCE_DIR}/src/*.hpp)
  set(_tu_dir ${CMAKE_BINARY_DIR}/header_self_containment)
  set(_tus)
  foreach(_hdr IN LISTS _simdts_headers)
    string(MAKE_C_IDENTIFIER ${_hdr} _id)
    set(_tu ${_tu_dir}/hsc_${_id}.cpp)
    set(_content "// Auto-generated: self-containment check for ${_hdr}.\n#include \"${_hdr}\"\n#include \"${_hdr}\"\n")
    # Only rewrite on change so incremental builds stay no-ops.
    set(_existing "")
    if(EXISTS ${_tu})
      file(READ ${_tu} _existing)
    endif()
    if(NOT _existing STREQUAL _content)
      file(WRITE ${_tu} ${_content})
    endif()
    list(APPEND _tus ${_tu})
  endforeach()

  add_library(header_self_containment OBJECT ${_tus})
  target_link_libraries(header_self_containment
    PRIVATE simdts::simdts simdts_warnings)

  if(SIMDTS_BUILD_TESTS)
    add_test(NAME lint.headers_self_contained
      COMMAND ${CMAKE_COMMAND} --build ${CMAKE_BINARY_DIR}
              --target header_self_containment)
    set_tests_properties(lint.headers_self_contained PROPERTIES
      TIMEOUT 600
      RUN_SERIAL TRUE)
  endif()
endfunction()
