// Micro-benchmarks of the substrate primitives (google-benchmark).
//
// These are not paper experiments; they document the cost of the pieces the
// simulation is built from — node expansion, scans, matching — so that the
// simulated cost model's ratio (t_lb / t_expand) can be put in context with
// the emulator's actual host-side costs.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "lb/matching.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/heuristic.hpp"
#include "search/work_stack.hpp"
#include "simd/bitplane.hpp"
#include "simd/rendezvous.hpp"
#include "simd/scan.hpp"
#include "synthetic/tree.hpp"

namespace {

using namespace simdts;

/// Random busy/idle occupancy (complementary, like a live machine) as byte
/// planes plus their packed equivalents.
struct Occupancy {
  std::vector<std::uint8_t> busy;
  std::vector<std::uint8_t> idle;
  simd::BitPlane busy_plane;
  simd::BitPlane idle_plane;
};

Occupancy make_occupancy(std::size_t p, std::uint32_t seed,
                         unsigned busy_of_10) {
  Occupancy o;
  std::mt19937 rng(seed);
  o.busy.resize(p);
  o.idle.resize(p);
  o.busy_plane.assign(p, false);
  o.idle_plane.assign(p, false);
  for (std::size_t i = 0; i < p; ++i) {
    o.busy[i] = (rng() % 10) < busy_of_10;
    o.idle[i] = !o.busy[i];
    o.busy_plane.set(i, o.busy[i] != 0);
    o.idle_plane.set(i, o.idle[i] != 0);
  }
  return o;
}

void BM_PuzzleExpand(benchmark::State& state) {
  const puzzle::FifteenPuzzle problem(puzzle::random_walk(7, 80));
  std::vector<puzzle::FifteenPuzzle::Node> frontier{problem.root()};
  std::vector<puzzle::FifteenPuzzle::Node> children;
  search::NextBound nb;
  std::size_t i = 0;
  std::uint64_t expanded = 0;
  for (auto _ : state) {
    children.clear();
    problem.expand(frontier[i], search::kUnbounded, children, nb);
    benchmark::DoNotOptimize(children.data());
    for (const auto& c : children) {
      if (frontier.size() < 4096) frontier.push_back(c);
    }
    i = (i + 1) % frontier.size();
    ++expanded;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(expanded));
}
BENCHMARK(BM_PuzzleExpand);

void BM_PuzzleManhattanFull(benchmark::State& state) {
  const puzzle::Board b = puzzle::random_walk(11, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(puzzle::manhattan(b));
  }
}
BENCHMARK(BM_PuzzleManhattanFull);

void BM_PuzzleLinearConflict(benchmark::State& state) {
  const puzzle::Board b = puzzle::random_walk(11, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(puzzle::linear_conflict(b));
  }
}
BENCHMARK(BM_PuzzleLinearConflict);

void BM_SyntheticExpand(benchmark::State& state) {
  const synthetic::Tree tree(synthetic::Params{5, 4, 0.38, 30});
  std::vector<synthetic::Tree::Node> frontier{tree.root()};
  std::vector<synthetic::Tree::Node> children;
  search::NextBound nb;
  std::size_t i = 0;
  for (auto _ : state) {
    children.clear();
    tree.expand(frontier[i], search::kUnbounded, children, nb);
    benchmark::DoNotOptimize(children.data());
    for (const auto& c : children) {
      if (frontier.size() < 4096) frontier.push_back(c);
    }
    i = (i + 1) % frontier.size();
  }
}
BENCHMARK(BM_SyntheticExpand);

void BM_InclusiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> in(n, 1);
  std::vector<std::uint32_t> out(n);
  for (auto _ : state) {
    simd::inclusive_scan<std::uint32_t>(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_InclusiveScan)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_Rendezvous(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Occupancy o = make_occupancy(p, 99, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::rendezvous(o.busy, o.idle, 17));
  }
}
BENCHMARK(BM_Rendezvous)->Arg(1 << 10)->Arg(1 << 13);

void BM_RendezvousBitPlane(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Occupancy o = make_occupancy(p, 99, 7);
  std::vector<simd::Pair> pairs;
  for (auto _ : state) {
    simd::rendezvous_into(o.busy_plane, o.idle_plane, 17,
                          static_cast<std::size_t>(-1), pairs);
    benchmark::DoNotOptimize(pairs.data());
  }
}
BENCHMARK(BM_RendezvousBitPlane)->Arg(1 << 10)->Arg(1 << 13);

void BM_GpMatchPhase(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Occupancy o = make_occupancy(p, 42, 8);
  lb::Matcher matcher(lb::MatchScheme::kGP);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(o.busy, o.idle));
  }
}
BENCHMARK(BM_GpMatchPhase)->Arg(1 << 13);

void BM_GpMatchPhaseBitPlane(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Occupancy o = make_occupancy(p, 42, 8);
  lb::Matcher matcher(lb::MatchScheme::kGP);
  std::vector<simd::Pair> pairs;
  for (auto _ : state) {
    matcher.match_into(o.busy_plane, o.idle_plane,
                       static_cast<std::size_t>(-1), pairs);
    benchmark::DoNotOptimize(pairs.data());
  }
}
BENCHMARK(BM_GpMatchPhaseBitPlane)->Arg(1 << 13);

// --- Bit-plane substrate vs byte-plane scalar reference -------------------
// The engine's per-cycle bookkeeping is census (how many PEs are busy),
// enumeration (sum-scan the idle plane into compacted indices), and ring
// pairing.  Each packed kernel is benchmarked against the byte kernel it
// displaced, on the same occupancy.

void BM_CensusBytes(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Occupancy o = make_occupancy(p, 7, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::count_set(o.busy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_CensusBytes)->Arg(1 << 10)->Arg(1 << 14);

void BM_CensusBitPlane(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Occupancy o = make_occupancy(p, 7, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::count_set(o.busy_plane));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_CensusBitPlane)->Arg(1 << 10)->Arg(1 << 14);

// Second arg: busy lanes out of 10, so the enumerated idle plane ranges
// from sparse (busy=9 -> 10% idle) to dense (busy=1 -> 90% idle).  The
// packed kernel is a branch-free byte-table expansion whose cost must not
// depend on occupancy; the byte kernel's per-lane branch does.
void BM_EnumerateBytes(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto busy = static_cast<unsigned>(state.range(1));
  const Occupancy o = make_occupancy(p, 13, busy);
  std::vector<std::uint32_t> ranks(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::enumerate(o.idle, ranks));
    benchmark::DoNotOptimize(ranks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_EnumerateBytes)
    ->Args({1 << 10, 7})
    ->Args({1 << 14, 9})
    ->Args({1 << 14, 7})
    ->Args({1 << 14, 1});

void BM_EnumerateBitPlane(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto busy = static_cast<unsigned>(state.range(1));
  const Occupancy o = make_occupancy(p, 13, busy);
  std::vector<std::uint32_t> ranks(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::enumerate(o.idle_plane, ranks));
    benchmark::DoNotOptimize(ranks.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_EnumerateBitPlane)
    ->Args({1 << 10, 7})
    ->Args({1 << 14, 9})
    ->Args({1 << 14, 7})
    ->Args({1 << 14, 1});

void BM_NeighborPairsBytes(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Occupancy o = make_occupancy(p, 21, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb::neighbor_pairs(o.busy, o.idle));
  }
}
BENCHMARK(BM_NeighborPairsBytes)->Arg(1 << 13);

void BM_NeighborPairsBitPlane(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Occupancy o = make_occupancy(p, 21, 5);
  std::vector<simd::Pair> pairs;
  for (auto _ : state) {
    lb::neighbor_pairs_into(o.busy_plane, o.idle_plane, pairs);
    benchmark::DoNotOptimize(pairs.data());
  }
}
BENCHMARK(BM_NeighborPairsBitPlane)->Arg(1 << 13);

// Batched child staging: the old per-child push path (clear + push_back per
// node) vs the flat staging buffer + run-append the expansion loop now uses.
// Read these two as a parity check, not a race: both variants spend their
// time inside tree.expand, and the staging difference is a handful of
// memory-bound node copies per expansion, so they time within noise of each
// other (~1.0x).  The batched path is shipped because the single run-append
// amortizes the stack's bounds/ownership checks and is the shape the
// vector backend's batch expansion needs — not because this microbenchmark
// shows a win.
void BM_ChildStagingPerNode(benchmark::State& state) {
  const synthetic::Tree tree(synthetic::Params{5, 4, 0.38, 30});
  search::WorkStack<synthetic::Tree::Node> stack;
  std::vector<synthetic::Tree::Node> children;
  search::NextBound nb;
  stack.push(tree.root());
  for (auto _ : state) {
    if (stack.empty()) stack.push(tree.root());
    const auto n = stack.pop();
    children.clear();
    tree.expand(n, search::kUnbounded, children, nb);
    for (const auto& c : children) {
      if (stack.size() < (1u << 11)) stack.push(c);
    }
    benchmark::DoNotOptimize(stack.size());
  }
}
BENCHMARK(BM_ChildStagingPerNode);

void BM_ChildStagingBatched(benchmark::State& state) {
  const synthetic::Tree tree(synthetic::Params{5, 4, 0.38, 30});
  search::WorkStack<synthetic::Tree::Node> stack;
  std::vector<synthetic::Tree::Node> children;
  search::NextBound nb;
  stack.push(tree.root());
  for (auto _ : state) {
    if (stack.empty()) stack.push(tree.root());
    const auto n = stack.pop();
    const std::size_t staged = children.size();
    tree.expand(n, search::kUnbounded, children, nb);
    const std::size_t added = children.size() - staged;
    if (added != 0 && stack.size() + added <= (1u << 11)) {
      stack.append(children.data() + staged, added);
    }
    children.resize(staged);
    benchmark::DoNotOptimize(stack.size());
  }
}
BENCHMARK(BM_ChildStagingBatched);

}  // namespace

BENCHMARK_MAIN();
