// Micro-benchmarks of the substrate primitives (google-benchmark).
//
// These are not paper experiments; they document the cost of the pieces the
// simulation is built from — node expansion, scans, matching — so that the
// simulated cost model's ratio (t_lb / t_expand) can be put in context with
// the emulator's actual host-side costs.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "lb/matching.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/heuristic.hpp"
#include "simd/rendezvous.hpp"
#include "simd/scan.hpp"
#include "synthetic/tree.hpp"

namespace {

using namespace simdts;

void BM_PuzzleExpand(benchmark::State& state) {
  const puzzle::FifteenPuzzle problem(puzzle::random_walk(7, 80));
  std::vector<puzzle::FifteenPuzzle::Node> frontier{problem.root()};
  std::vector<puzzle::FifteenPuzzle::Node> children;
  search::NextBound nb;
  std::size_t i = 0;
  std::uint64_t expanded = 0;
  for (auto _ : state) {
    children.clear();
    problem.expand(frontier[i], search::kUnbounded, children, nb);
    benchmark::DoNotOptimize(children.data());
    for (const auto& c : children) {
      if (frontier.size() < 4096) frontier.push_back(c);
    }
    i = (i + 1) % frontier.size();
    ++expanded;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(expanded));
}
BENCHMARK(BM_PuzzleExpand);

void BM_PuzzleManhattanFull(benchmark::State& state) {
  const puzzle::Board b = puzzle::random_walk(11, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(puzzle::manhattan(b));
  }
}
BENCHMARK(BM_PuzzleManhattanFull);

void BM_PuzzleLinearConflict(benchmark::State& state) {
  const puzzle::Board b = puzzle::random_walk(11, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(puzzle::linear_conflict(b));
  }
}
BENCHMARK(BM_PuzzleLinearConflict);

void BM_SyntheticExpand(benchmark::State& state) {
  const synthetic::Tree tree(synthetic::Params{5, 4, 0.38, 30});
  std::vector<synthetic::Tree::Node> frontier{tree.root()};
  std::vector<synthetic::Tree::Node> children;
  search::NextBound nb;
  std::size_t i = 0;
  for (auto _ : state) {
    children.clear();
    tree.expand(frontier[i], search::kUnbounded, children, nb);
    benchmark::DoNotOptimize(children.data());
    for (const auto& c : children) {
      if (frontier.size() < 4096) frontier.push_back(c);
    }
    i = (i + 1) % frontier.size();
  }
}
BENCHMARK(BM_SyntheticExpand);

void BM_InclusiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> in(n, 1);
  std::vector<std::uint32_t> out(n);
  for (auto _ : state) {
    simd::inclusive_scan<std::uint32_t>(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_InclusiveScan)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_Rendezvous(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(99);
  std::vector<std::uint8_t> busy(p);
  std::vector<std::uint8_t> idle(p);
  for (std::size_t i = 0; i < p; ++i) {
    busy[i] = (rng() % 10) < 7;
    idle[i] = !busy[i];
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::rendezvous(busy, idle, 17));
  }
}
BENCHMARK(BM_Rendezvous)->Arg(1 << 10)->Arg(1 << 13);

void BM_GpMatchPhase(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(42);
  std::vector<std::uint8_t> busy(p);
  std::vector<std::uint8_t> idle(p);
  for (std::size_t i = 0; i < p; ++i) {
    busy[i] = (rng() % 10) < 8;
    idle[i] = !busy[i];
  }
  lb::Matcher matcher(lb::MatchScheme::kGP);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(busy, idle));
  }
}
BENCHMARK(BM_GpMatchPhase)->Arg(1 << 13);

}  // namespace

BENCHMARK_MAIN();
