// Table 4: dynamic triggering (D^P and D^K) with nGP and GP matching.
//
// The paper reports, per instance and scheme combination, N_expand, *N_lb
// (work-transfer rounds; for D^K this equals the phase count) and E on 8192
// CM-2 processors.  Expected shape: GP beats nGP under both triggers; D^P
// does more transfer rounds, D^K fewer phases; overall E is close to the
// optimal static trigger's.
#include <iostream>
#include <map>

#include "common.hpp"

namespace {

struct PaperCell {
  int nexpand;
  int nlb;  // work transfers
  double e;
};
// kPaperTable4[W][scheme] with schemes ordered DP-nGP, DP-GP, DK-nGP, DK-GP.
const std::map<std::uint64_t, std::array<PaperCell, 4>> kPaperTable4 = {
    {941852,
     {{{153, 164, 0.51}, {149, 100, 0.58}, {176, 89, 0.53}, {164, 70, 0.58}}}},
    {3055171,
     {{{441, 312, 0.64}, {426, 143, 0.76}, {486, 179, 0.66}, {440, 104, 0.77}}}},
    {6073623,
     {{{842, 518, 0.68}, {808, 170, 0.83}, {905, 285, 0.72}, {819, 132, 0.84}}}},
    {16110463,
     {{{2191, 935, 0.75}, {2055, 217, 0.92}, {2293, 598, 0.76},
       {2067, 192, 0.92}}}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace simdts;
  const bool resume = bench::parse_resume_flag(argc, argv);
  const std::uint32_t p = bench::table_machine_size();
  analysis::print_banner(
      "Table 4 — dynamic triggering: D^P and D^K x nGP and GP",
      "Karypis & Kumar 1992, Table 4 (8192 CM-2 processors; initial "
      "distribution via S^0.85)",
      "GP outperforms nGP under both triggers; D^P performs more transfer "
      "rounds and fewer expansion cycles than D^K; E(GP-dynamic) tracks the "
      "optimal static trigger");

  const struct {
    const char* name;
    lb::SchemeConfig cfg;
    std::size_t paper_idx;
  } schemes[] = {
      {"nGP-DP", lb::ngp_dp(), 0},
      {"GP-DP", lb::gp_dp(), 1},
      {"nGP-DK", lb::ngp_dk(), 2},
      {"GP-DK", lb::gp_dk(), 3},
  };

  analysis::Table table({"W(meas)", "scheme", "Nexpand", "*Nlb(rounds)",
                         "phases", "E", "paper:Nexp", "paper:*Nlb",
                         "paper:E"});
  // Sweep every (workload, scheme) cell concurrently; print in input order.
  const auto workloads = bench::table_workloads();
  std::vector<bench::PuzzleRun> runs;
  for (const auto& wl : workloads) {
    for (const auto& s : schemes) {
      runs.push_back({&wl, s.cfg, p, simd::cm2_cost_model()});
    }
  }
  const std::vector<lb::IterationStats> results =
      bench::run_puzzle_sweep_journaled(runs, "table4_dynamic_trigger",
                                        resume);

  std::size_t slot = 0;
  for (const auto& wl : workloads) {
    for (const auto& s : schemes) {
      const lb::IterationStats& rs = results[slot++];
      const PaperCell* pc = kPaperTable4.count(wl.paper_w) != 0
                                ? &kPaperTable4.at(wl.paper_w)[s.paper_idx]
                                : nullptr;
      table.row()
          .add(rs.nodes_expanded)
          .add(s.name)
          .add(rs.expand_cycles)
          .add(rs.lb_rounds)
          .add(rs.lb_phases)
          .add(rs.efficiency(), 2)
          .add(pc ? std::to_string(pc->nexpand) : "-")
          .add(pc ? std::to_string(pc->nlb) : "-")
          .add(pc ? analysis::format_double(pc->e, 2) : "-");
    }
  }
  std::cout << table;
  analysis::emit_csv("table4_dynamic_trigger", table);
  bench::remove_sweep_journal("table4_dynamic_trigger");
  return 0;
}
