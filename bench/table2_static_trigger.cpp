// Table 2: static triggering on the CM-2.
//
// For each problem instance (rows, identified by serial tree size W) and
// each static threshold x in {0.50, 0.60, 0.70, 0.80, 0.90} (columns), the
// paper reports N_expand (node-expansion cycles), N_lb (load-balancing
// phases) and E (efficiency) for the nGP and GP matching schemes on 8192
// CM-2 processors, plus the analytic optimal trigger x_o from eq. 18.
#include <iostream>
#include <map>

#include "analysis/model.hpp"
#include "common.hpp"

namespace {

// The paper's Table 2, indexed by [paper W][x percent] -> {nGP, GP} rows of
// (N_expand, N_lb, E).  Used only for the side-by-side printout.
struct PaperCell {
  int nexpand_ngp, nlb_ngp;
  double e_ngp;
  int nexpand_gp, nlb_gp;
  double e_gp;
};
const std::map<std::uint64_t, std::map<int, PaperCell>> kPaperTable2 = {
    {941852,
     {{50, {198, 54, 0.52, 198, 54, 0.52}},
      {60, {181, 77, 0.53, 174, 59, 0.58}},
      {70, {164, 119, 0.53, 161, 69, 0.60}},
      {80, {151, 138, 0.55, 150, 88, 0.61}},
      {90, {153, 151, 0.52, 142, 122, 0.59}}}},
    {3055171,
     {{50, {606, 59, 0.59, 606, 59, 0.59}},
      {60, {542, 111, 0.63, 535, 62, 0.66}},
      {70, {459, 234, 0.67, 486, 76, 0.72}},
      {80, {420, 353, 0.65, 445, 98, 0.77}},
      {90, {409, 408, 0.64, 417, 152, 0.78}}}},
    {6073623,
     {{50, {1155, 56, 0.63, 1155, 56, 0.63}},
      {60, {1022, 133, 0.69, 1029, 63, 0.70}},
      {70, {894, 336, 0.71, 936, 78, 0.76}},
      {80, {809, 577, 0.70, 863, 104, 0.82}},
      {90, {774, 736, 0.67, 805, 170, 0.85}}}},
    {16110463,
     {{50, {2969, 52, 0.66, 2969, 52, 0.66}},
      {60, {2657, 177, 0.72, 2652, 61, 0.73}},
      {70, {2339, 655, 0.75, 2422, 75, 0.80}},
      {80, {2109, 1303, 0.74, 2240, 101, 0.86}},
      {90, {2015, 1756, 0.71, 2099, 172, 0.91}}}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace simdts;
  const bool resume = bench::parse_resume_flag(argc, argv);
  const std::uint32_t p = bench::table_machine_size();
  analysis::print_banner(
      "Table 2 — static triggering (S^x), nGP vs GP",
      "Karypis & Kumar 1992, Table 2 (8192 CM-2 processors)",
      "E grows with W at every x; N_lb(GP) stays low while N_lb(nGP) climbs "
      "steeply with x; GP >= nGP in efficiency; analytic x_o grows with W");
  std::cout << "machine size P = " << p << " (paper: 8192)\n\n";

  analysis::Table table(
      {"W(meas)", "W(paper)", "x", "Nexp-nGP", "Nlb-nGP", "E-nGP",
       "Nexp-GP", "Nlb-GP", "E-GP", "paper:E-nGP", "paper:E-GP"});

  // All (workload, x, scheme) cells are independent runs: sweep them across
  // host threads, then print from the in-order result slots.
  const auto workloads = bench::table_workloads();
  const int xpcts[] = {50, 60, 70, 80, 90};
  std::vector<bench::PuzzleRun> runs;
  for (const auto& wl : workloads) {
    for (const int xpct : xpcts) {
      const double x = xpct / 100.0;
      runs.push_back({&wl, lb::ngp_static(x), p, simd::cm2_cost_model()});
      runs.push_back({&wl, lb::gp_static(x), p, simd::cm2_cost_model()});
    }
  }
  const std::vector<lb::IterationStats> results =
      bench::run_puzzle_sweep_journaled(runs, "table2_static_trigger",
                                        resume);

  std::size_t slot = 0;
  for (const auto& wl : workloads) {
    for (const int xpct : xpcts) {
      const double x = xpct / 100.0;
      const lb::IterationStats& ngp = results[slot++];
      const lb::IterationStats& gp = results[slot++];
      const auto* paper_row =
          kPaperTable2.count(wl.paper_w) != 0 &&
                  kPaperTable2.at(wl.paper_w).count(xpct) != 0
              ? &kPaperTable2.at(wl.paper_w).at(xpct)
              : nullptr;
      table.row()
          .add(ngp.nodes_expanded)
          .add(wl.paper_w)
          .add(x, 2)
          .add(ngp.expand_cycles)
          .add(ngp.lb_phases)
          .add(ngp.efficiency(), 2)
          .add(gp.expand_cycles)
          .add(gp.lb_phases)
          .add(gp.efficiency(), 2)
          .add(paper_row ? analysis::format_double(paper_row->e_ngp, 2) : "-")
          .add(paper_row ? analysis::format_double(paper_row->e_gp, 2) : "-");
    }
  }
  std::cout << table << '\n';

  // The analytic-trigger column.
  analysis::Table xo_table({"W(meas)", "analytic x_o", "paper x_o"});
  const std::map<std::uint64_t, double> paper_xo = {{941852, 0.82},
                                                    {3055171, 0.89},
                                                    {6073623, 0.92},
                                                    {16110463, 0.95}};
  for (const auto& wl : bench::table_workloads()) {
    const analysis::TriggerModel model{
        static_cast<double>(wl.serial_final), p, bench::cm2_ratio(),
        bench::model_alpha()};
    xo_table.row()
        .add(wl.serial_final)
        .add(analysis::optimal_static_trigger(model), 2)
        .add(paper_xo.count(wl.paper_w) != 0
                 ? analysis::format_double(paper_xo.at(wl.paper_w), 2)
                 : "-");
  }
  std::cout << xo_table;
  analysis::emit_csv("table2_static_trigger", table);
  analysis::emit_csv("table2_analytic_trigger", xo_table);
  bench::remove_sweep_journal("table2_static_trigger");
  return 0;
}
