// Extension: speedup anomalies in first-solution search.
//
// The paper's experiments "find all solutions up to a given tree depth"
// precisely to avoid the speedup anomalies of Rao & Kumar [33]: when the
// machine quits at the first solution, the parallel search order differs
// from the serial one, so P processors can expand far less than 1/P of the
// serial node count (superlinear speedup) or far more (sublinear).  This
// bench quantifies the effect the main experiments excluded: for each
// instance and machine size it reports the anomaly factor
//     A = W_serial-first / (P * cycles_parallel-first)
// (A > 1: superlinear; A < 1: sublinear), alongside the anomaly-free
// exhaustive efficiency at the same (W, P) for contrast.
#include <iostream>

#include "common.hpp"
#include "search/serial.hpp"

int main() {
  using namespace simdts;
  analysis::print_banner(
      "Extension — speedup anomalies in first-solution mode",
      "Karypis & Kumar 1992, Section 3 (anomaly avoidance); Rao & Kumar for "
      "the anomaly theory",
      "anomaly factors are erratic across instances and machine sizes — on "
      "these scrambles mostly sublinear, since the serial dive reaches a "
      "goal early while the spread-out parallel frontier wanders — in "
      "contrast to the stable, monotone exhaustive efficiencies");

  analysis::Table table({"instance", "P", "serial-first-W", "par-first-W",
                         "par-cycles", "anomaly-A", "exhaustive-E"});
  const std::uint32_t sizes[] = {64, 256, 1024, 4096};
  for (const auto& wl : puzzle::test_workloads()) {
    const puzzle::FifteenPuzzle problem(wl.board());
    const auto serial_first = search::serial_first_solution(
        problem, problem.root(), wl.solution_length);
    for (const std::uint32_t p : sizes) {
      simd::Machine machine(p, simd::cm2_cost_model());
      lb::Engine<puzzle::FifteenPuzzle> engine(problem, machine, lb::gp_dk());
      const lb::IterationStats first =
          engine.run_first_solution(wl.solution_length);
      const lb::IterationStats full =
          engine.run_iteration(wl.solution_length);
      const double anomaly =
          static_cast<double>(serial_first.nodes_expanded) /
          (static_cast<double>(p) *
           static_cast<double>(first.expand_cycles));
      table.row()
          .add(wl.name)
          .add(static_cast<std::uint64_t>(p))
          .add(serial_first.nodes_expanded)
          .add(first.nodes_expanded)
          .add(first.expand_cycles)
          .add(anomaly, 3)
          .add(full.efficiency(), 3);
    }
  }
  std::cout << table
            << "\nReading guide: anomaly-A is the first-solution speedup "
               "divided by P.  Values\nabove 1 are superlinear (the parallel "
               "order stumbled on a goal the serial\ndive would reach much "
               "later); values near 0 are sublinear.  The exhaustive-E\n"
               "column shows the same machine on the same tree without the "
               "anomaly — stable\nand monotone, which is why the paper "
               "benchmarks that regime.\n";
  analysis::emit_csv("ext_anomalies", table);
  return 0;
}
