// Wall-clock perf harness: times representative sweeps, the engine inner
// loop, and the packed-substrate kernels, and emits BENCH_engine.json so
// every future PR has a perf trajectory to compare against.
//
// What it measures (all deterministic simulations — only the wall clock
// varies between hosts):
//   - sweep scaling: the Figure 4a GP-S^0.90 isoefficiency grid run through
//     the parallel sweep runner at 1, 2, 4 and 8 host threads (clamped to
//     the grid size); speedup is wall(1 thread) / wall(t threads).
//   - engine throughput: one large single-machine run, reported as expanded
//     nodes per second of host time (the per-cycle hot path: pop/expand,
//     incremental census, matching, transfers).
//   - fault hooks: the engine with an *empty* FaultPlan armed, timed
//     interleaved with unarmed runs so clock drift hits both sides equally.
//   - kernels: byte-plane vs packed bit-plane census / enumerate / GP match
//     / neighbor pairing, and per-node vs batched child staging — the
//     microscopic ingredients of the engine number above.
//   - service: a fixed mixed request trace replayed through the solve
//     service at 1/2/8 host threads — wall qps per thread count, plus the
//     deterministic service metrics (p99 simulated-cycle latency, shed
//     rate); the response logs must be byte-identical across thread counts.
//
// Timing protocol: every section runs SIMDTS_BENCH_REPS times and reports
// the *median* wall time.  Medians are robust to the one-sided noise of a
// shared host (a background hiccup can only slow a rep down, never speed it
// up, so best-of underestimates and mean overestimates); the rep count is
// recorded in the JSON next to every number it produced.
//
// The simulated results (counts, clocks, CSVs) are asserted identical across
// thread counts before anything is written — a speedup obtained by changing
// the answer is a bug, not a result.
//
// Environment knobs:
//   SIMDTS_QUICK        reduced scale (the tier-1-friendly configuration)
//   SIMDTS_BENCH_JSON   output path (default BENCH_engine.json)
//   SIMDTS_BENCH_REPS   timing repetitions, median is reported (default 5)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/isoefficiency.hpp"
#include "fault/fault.hpp"
#include "iso_common.hpp"
#include "lb/engine.hpp"
#include "lb/matching.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"
#include "runtime/sweep.hpp"
#include "sanitizer/sanitizer.hpp"
#include "search/compact_stack.hpp"
#include "search/work_stack.hpp"
#include "service/service.hpp"
#include "simd/bitplane.hpp"
#include "simd/rendezvous.hpp"
#include "simd/scan.hpp"
#include "simd/summary.hpp"
#include "synthetic/tree.hpp"
#include "vec/expand.hpp"

namespace {

using namespace simdts;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Median of the samples (the timing protocol of this harness; see header
/// comment).  Even counts average the two middle samples.
double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

struct SweepSample {
  unsigned threads = 0;
  double wall_s = 0.0;
  std::uint64_t nodes = 0;
};

std::uint64_t grid_nodes(const analysis::GridResult& grid) {
  std::uint64_t nodes = 0;
  for (const auto& pt : grid.points) nodes += pt.w;
  return nodes;
}

bool same_grid(const analysis::GridResult& a, const analysis::GridResult& b) {
  return a.points == b.points;
}

std::string format_json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// --- Kernel micro-timings ---------------------------------------------------

/// One timed kernel comparison: scalar (byte-plane) vs packed (bit-plane)
/// median nanoseconds per call on the same occupancy pattern.
struct KernelSample {
  const char* name;
  double scalar_ns = 0.0;
  double packed_ns = 0.0;
  /// JSON key names for the two sides (the default pair fits the byte-plane
  /// vs bit-plane kernels; child_staging is a different kind of comparison).
  const char* scalar_key = "scalar_ns";
  const char* packed_key = "bitplane_ns";
  /// When false, no "speedup" is emitted: both sides are dominated by the
  /// same work (child_staging spends its time inside tree.expand either
  /// way, so the ratio is measurement noise presented as a result — parity
  /// is the expected outcome, and the raw times are reported as such).
  bool report_speedup = true;
  [[nodiscard]] double speedup() const {
    return packed_ns > 0.0 ? scalar_ns / packed_ns : 0.0;
  }
};

/// Median ns/call of `iters` calls of `fn`, over `reps` repetitions.  The
/// accumulated checksum keeps the compiler from discarding the kernel work.
template <typename F>
double time_kernel_ns(unsigned reps, std::size_t iters, std::uint64_t& sink,
                      F&& fn) {
  std::vector<double> walls;
  walls.reserve(reps);
  for (unsigned r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) sink += fn();
    walls.push_back(seconds_since(start));
  }
  return median(std::move(walls)) / static_cast<double>(iters) * 1e9;
}

/// Deterministic occupancy pattern: lane i is set when the mix of (seed, i)
/// lands under `percent` — same discipline as the synthetic tree, no host
/// RNG state involved.
std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed,
                                        unsigned percent) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = synthetic::Tree::hash2(seed, i) % 100 < percent ? 1 : 0;
  }
  return v;
}

simd::BitPlane pack(const std::vector<std::uint8_t>& bytes) {
  simd::BitPlane plane(bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    plane.set(i, bytes[i] != 0);
  }
  return plane;
}

/// Times the packed-substrate kernels against their byte-plane references on
/// a P-lane plane with engine-like occupancy (mostly busy, few idle).
std::vector<KernelSample> run_kernel_benchmarks(unsigned reps,
                                                std::size_t lanes,
                                                std::uint64_t& sink) {
  const auto busy = pattern_bytes(lanes, 0x605D, 85);
  std::vector<std::uint8_t> idle(lanes);
  for (std::size_t i = 0; i < lanes; ++i) idle[i] = busy[i] != 0 ? 0 : 1;
  const simd::BitPlane busy_plane = pack(busy);
  const simd::BitPlane idle_plane = pack(idle);
  const std::size_t iters = analysis::quick_mode() ? 4000 : 20000;

  std::vector<KernelSample> out;

  KernelSample census{"census"};
  census.scalar_ns = time_kernel_ns(reps, iters, sink, [&] {
    return static_cast<std::uint64_t>(simd::count_set(busy));
  });
  census.packed_ns = time_kernel_ns(reps, iters, sink, [&] {
    return static_cast<std::uint64_t>(busy_plane.count());
  });
  out.push_back(census);

  // Ranks are PE indices, so std::uint32_t spans the whole supported machine
  // envelope (P < 2^32; the mega-P sweeps run 2^20).  Narrower-than-32-bit
  // assumptions on the P axis are what tests/test_mega_p.cpp exists to catch.
  std::vector<std::uint32_t> ranks(lanes);
  KernelSample enumerate{"enumerate"};
  enumerate.scalar_ns = time_kernel_ns(reps, iters, sink, [&] {
    return static_cast<std::uint64_t>(simd::enumerate(busy, ranks));
  });
  enumerate.packed_ns = time_kernel_ns(reps, iters, sink, [&] {
    return static_cast<std::uint64_t>(simd::enumerate(busy_plane, ranks));
  });
  out.push_back(enumerate);

  // A matching phase pairs every idle lane; the pointer rotation makes each
  // call walk a different segment, like successive lb phases.
  const std::size_t match_iters = iters / 4;
  std::vector<simd::Pair> pairs;
  lb::Matcher scalar_matcher(lb::MatchScheme::kGP);
  KernelSample match{"gp_match"};
  match.scalar_ns = time_kernel_ns(reps, match_iters, sink, [&] {
    scalar_matcher.match_into(busy, idle, static_cast<std::size_t>(-1),
                              pairs);
    return static_cast<std::uint64_t>(pairs.size());
  });
  lb::Matcher packed_matcher(lb::MatchScheme::kGP);
  match.packed_ns = time_kernel_ns(reps, match_iters, sink, [&] {
    packed_matcher.match_into(busy_plane, idle_plane,
                              static_cast<std::size_t>(-1), pairs);
    return static_cast<std::uint64_t>(pairs.size());
  });
  out.push_back(match);

  KernelSample neighbor{"neighbor_pairs"};
  neighbor.scalar_ns = time_kernel_ns(reps, match_iters, sink, [&] {
    lb::neighbor_pairs_into(busy, idle, pairs);
    return static_cast<std::uint64_t>(pairs.size());
  });
  neighbor.packed_ns = time_kernel_ns(reps, match_iters, sink, [&] {
    lb::neighbor_pairs_into(busy_plane, idle_plane, pairs);
    return static_cast<std::uint64_t>(pairs.size());
  });
  out.push_back(neighbor);

  // Child staging: per-node clear+push (the old hot loop) vs flat staging
  // buffer + batched WorkStack::append (the shipped one).  Both expand the
  // same deterministic node stream, and both are dominated by that
  // expansion: the staging variants differ only in how a handful of child
  // nodes reach the stack, which is memory-bound copy work either way.
  // Parity (~1.0x) is the honest expectation — the batched path is shipped
  // for the append's single bounds check and its fit with batch expansion,
  // not for a microbenchmark win — so this sample reports raw times and no
  // speedup (see KernelSample::report_speedup).
  const synthetic::Tree tree(synthetic::Params{5, 4, 0.38, 30});
  const std::size_t expand_iters = iters;
  search::NextBound nb;
  const auto seed_stack = [&](search::WorkStack<synthetic::Tree::Node>& st) {
    st.clear();
    st.push(tree.root());
  };
  search::WorkStack<synthetic::Tree::Node> stack;
  std::vector<synthetic::Tree::Node> staging;
  KernelSample staging_sample{"child_staging"};
  staging_sample.scalar_key = "per_node_ns";
  staging_sample.packed_key = "batched_ns";
  staging_sample.report_speedup = false;
  seed_stack(stack);
  staging_sample.scalar_ns = time_kernel_ns(reps, expand_iters, sink, [&] {
    if (stack.empty()) seed_stack(stack);
    const synthetic::Tree::Node n = stack.pop();
    staging.clear();
    tree.expand(n, search::kUnbounded, staging, nb);
    for (const auto& c : staging) stack.push(c);
    return static_cast<std::uint64_t>(staging.size());
  });
  seed_stack(stack);
  staging.clear();
  staging_sample.packed_ns = time_kernel_ns(reps, expand_iters, sink, [&] {
    if (stack.empty()) seed_stack(stack);
    const synthetic::Tree::Node n = stack.pop();
    const std::size_t staged = staging.size();
    tree.expand(n, search::kUnbounded, staging, nb);
    const std::size_t added = staging.size() - staged;
    if (added != 0) stack.append(staging.data() + staged, added);
    if (staging.size() > 4096) staging.clear();
    return static_cast<std::uint64_t>(added);
  });
  out.push_back(staging_sample);

  return out;
}

#ifdef SIMDTS_VECTOR_BACKEND

/// Median ns per 64-node batch: scalar fallback vs SIMD batch kernel on the
/// same breadth-first node pool.  Both sides run the identical node stream
/// (rotating 64-node windows), so the ratio is the kernel's own win.
template <typename P>
std::pair<double, double> time_batch_expand(const P& problem, unsigned reps,
                                            std::size_t iters,
                                            std::uint64_t& sink) {
  std::vector<typename P::Node> pool;
  std::vector<typename P::Node> frontier{problem.root()};
  search::NextBound nb;
  while (pool.size() < 4096 && !frontier.empty()) {
    std::vector<typename P::Node> next;
    for (const auto& n : frontier) {
      pool.push_back(n);
      problem.expand(n, search::kUnbounded, next, nb);
    }
    frontier = std::move(next);
  }
  constexpr std::uint32_t kBatch = 64;
  while (pool.size() < kBatch) pool.push_back(problem.root());
  const std::size_t span = pool.size() - kBatch + 1;
  std::vector<typename P::Node> out;
  std::vector<std::uint32_t> counts(kBatch);
  std::size_t pos = 0;
  const double scalar_ns = time_kernel_ns(reps, iters, sink, [&] {
    out.clear();
    search::expand_batch_fallback(problem, pool.data() + pos, kBatch,
                                  search::kUnbounded, out, counts.data(), nb);
    pos = (pos + kBatch) % span;
    return static_cast<std::uint64_t>(out.size());
  });
  pos = 0;
  const double vector_ns = time_kernel_ns(reps, iters, sink, [&] {
    out.clear();
    vec::BatchExpander<P>::expand(problem, pool.data() + pos, kBatch,
                                  search::kUnbounded, out, counts.data(), nb);
    pos = (pos + kBatch) % span;
    return static_cast<std::uint64_t>(out.size());
  });
  return {scalar_ns, vector_ns};
}

#endif  // SIMDTS_VECTOR_BACKEND

}  // namespace

int main() {
  analysis::print_banner(
      "Perf harness — wall-clock baseline for the sweep runner and engine",
      "repo infrastructure (no paper counterpart)",
      "sweep wall time drops with host threads while every simulated count "
      "and clock stays bit-identical; engine nodes/sec tracks hot-path work");

  const auto sizes = bench::iso_machine_sizes();
  const auto ladder = bench::iso_ladder();
  const lb::SchemeConfig cfg = lb::gp_static(0.90);
  const simd::CostModel cost = simd::cm2_cost_model();
  const std::size_t grid_cells = sizes.size() * ladder.size();
  const auto reps = static_cast<unsigned>(
      std::max<std::uint64_t>(1, analysis::env_u64("SIMDTS_BENCH_REPS", 5)));

  std::cout << "fig4a GP-S^0.90 grid: " << grid_cells << " cells, "
            << "host hardware threads: " << runtime::sweep_threads()
            << ", timing: median of " << reps << " reps\n\n";

  // --- Sweep scaling over the fig4 GP grid. -------------------------------
  std::vector<SweepSample> samples;
  analysis::GridResult reference;
  bool identical = true;
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    std::vector<double> walls;
    analysis::GridResult grid;
    for (unsigned rep = 0; rep < reps; ++rep) {
      const auto start = Clock::now();
      grid = analysis::run_grid(cfg, ladder, sizes, cost, t);
      walls.push_back(seconds_since(start));
    }
    if (t == 1) {
      reference = grid;
    } else if (!same_grid(reference, grid)) {
      identical = false;
    }
    const double wall = median(std::move(walls));
    samples.push_back(SweepSample{t, wall, grid_nodes(grid)});
    std::cout << "  sweep t=" << t << ": "
              << analysis::format_double(wall, 3) << " s, speedup vs 1t "
              << analysis::format_double(samples.front().wall_s / wall, 2)
              << "x\n";
  }
  if (!identical) {
    std::cout << "\nFATAL: simulated results differ across thread counts — "
                 "refusing to report a speedup obtained by changing the "
                 "answer.\n";
    return 1;
  }
  std::cout << "  all thread counts produced bit-identical grids\n\n";

  // --- Engine throughput: one large single-machine run. -------------------
  const auto& big = ladder.back();
  std::vector<double> engine_walls;
  std::uint64_t engine_nodes = 0;
  for (unsigned rep = 0; rep < reps; ++rep) {
    const synthetic::Tree tree(big.params);
    simd::Machine machine(sizes.back(), cost);
    lb::Engine<synthetic::Tree> engine(tree, machine, cfg);
    const auto start = Clock::now();
    const lb::IterationStats stats = engine.run_iteration(search::kUnbounded);
    engine_walls.push_back(seconds_since(start));
    engine_nodes = stats.nodes_expanded;
  }
  const double engine_wall = median(std::move(engine_walls));
  const double engine_nps =
      engine_wall > 0.0 ? static_cast<double>(engine_nodes) / engine_wall
                        : 0.0;
  std::cout << "engine single run: P = " << sizes.back() << ", W = "
            << engine_nodes << ", "
            << analysis::format_double(engine_wall, 3) << " s, "
            << analysis::format_double(engine_nps, 0) << " nodes/s\n";

  // --- Fault hooks: unarmed vs armed-with-empty-plan, interleaved. --------
  // The fault machinery must be free when unused: an engine with an *empty*
  // FaultPlan armed takes the fault-checking branches every cycle but never
  // fires an event, so its simulated results must be bit-identical to the
  // unarmed engine (hard failure if not) and its wall time within noise.
  // Each rep times an unarmed run immediately followed by an armed run, so
  // slow drift of the host clock rate lands on both sides of the comparison;
  // the overhead is the ratio of the two medians (reported, not gated — wall
  // clocks on shared CI are too wobbly to gate).
  const fault::FaultPlan empty_plan;
  std::vector<double> unarmed_walls;
  std::vector<double> armed_walls;
  bool fault_identical = true;
  {
    const synthetic::Tree tree(big.params);
    lb::IterationStats unarmed_ref;
    for (unsigned rep = 0; rep < reps; ++rep) {
      simd::Machine machine(sizes.back(), cost);
      lb::Engine<synthetic::Tree> engine(tree, machine, cfg);
      auto start = Clock::now();
      const lb::IterationStats unarmed =
          engine.run_iteration(search::kUnbounded);
      unarmed_walls.push_back(seconds_since(start));
      if (rep == 0) {
        unarmed_ref = unarmed;
      } else if (!(unarmed == unarmed_ref)) {
        fault_identical = false;
      }

      simd::Machine armed_machine(sizes.back(), cost);
      lb::Engine<synthetic::Tree> armed(tree, armed_machine, cfg);
      armed.arm_faults(&empty_plan);
      start = Clock::now();
      const lb::IterationStats stats =
          armed.run_iteration(search::kUnbounded);
      armed_walls.push_back(seconds_since(start));
      if (!(stats == unarmed_ref)) fault_identical = false;
    }
  }
  if (!fault_identical) {
    std::cout << "\nFATAL: arming an empty fault plan changed the simulated "
                 "results — the fault hooks are not transparent.\n";
    return 1;
  }
  const double unarmed_wall = median(std::move(unarmed_walls));
  const double armed_wall = median(std::move(armed_walls));
  const double fault_overhead_pct =
      unarmed_wall > 0.0 ? 100.0 * (armed_wall - unarmed_wall) / unarmed_wall
                         : 0.0;
  std::cout << "fault hooks (empty plan armed): "
            << analysis::format_double(armed_wall, 3) << " s vs "
            << analysis::format_double(unarmed_wall, 3)
            << " s unarmed (interleaved), overhead "
            << analysis::format_double(fault_overhead_pct, 1)
            << "%, results bit-identical\n\n";

  // --- SimdSan: zero-cost-when-off gate + armed-vs-disarmed overhead. -----
  // The sanitizer's cost contract has two halves, both gated here.  OFF
  // (the default build): there is nothing to measure, and there must be
  // nothing to measure — the harness hard-fails if the instrumentation is
  // compiled into the binary it is timing (lint.sanitizer_zero_cost proves
  // the symbols are gone from libsimdts.a; this gate proves the *measured
  // binary* was not silently built against a sanitized library, so every
  // number above was produced by sanitizer-free code).  ON (opt-in via
  // SIMDTS_EXPECT_SANITIZER=1, as the CI sanitize job runs it): the checks
  // must be transparent — disarmed and armed runs are timed interleaved
  // exactly like the fault hooks, the simulated results must be
  // bit-identical (hard failure), and the armed overhead is reported.
  const char* expect_env = std::getenv("SIMDTS_EXPECT_SANITIZER");
  const bool expect_sanitizer =
      expect_env != nullptr && expect_env[0] != '\0' && expect_env[0] != '0';
  if (san::kCompiledIn != expect_sanitizer) {
    std::cout << "\nFATAL: sanitizer compiled_in="
              << (san::kCompiledIn ? "true" : "false") << " but this run "
              << (expect_sanitizer
                      ? "expected a SIMDTS_SANITIZE=ON build "
                        "(SIMDTS_EXPECT_SANITIZER is set)."
                      : "expected the default build — the sanitizer leaked "
                        "in and its overhead would contaminate every number "
                        "in this report.")
              << "\n";
    return 1;
  }
  double san_disarmed_wall = 0.0;
  double san_armed_wall = 0.0;
  double san_overhead_pct = 0.0;
#ifdef SIMDTS_SANITIZE
  {
    std::vector<double> disarmed_walls;
    std::vector<double> armed_walls2;
    bool san_identical = true;
    const synthetic::Tree tree(big.params);
    lb::IterationStats disarmed_ref;
    for (unsigned rep = 0; rep < reps; ++rep) {
      san::set_armed(false);
      simd::Machine machine(sizes.back(), cost);
      lb::Engine<synthetic::Tree> engine(tree, machine, cfg);
      auto start = Clock::now();
      const lb::IterationStats disarmed =
          engine.run_iteration(search::kUnbounded);
      disarmed_walls.push_back(seconds_since(start));
      if (rep == 0) {
        disarmed_ref = disarmed;
      } else if (!(disarmed == disarmed_ref)) {
        san_identical = false;
      }

      san::set_armed(true);
      simd::Machine armed_machine(sizes.back(), cost);
      lb::Engine<synthetic::Tree> armed_engine(tree, armed_machine, cfg);
      start = Clock::now();
      const lb::IterationStats armed =
          armed_engine.run_iteration(search::kUnbounded);
      armed_walls2.push_back(seconds_since(start));
      if (!(armed == disarmed_ref)) san_identical = false;
    }
    san::set_armed(true);
    if (!san_identical) {
      std::cout << "\nFATAL: arming the sanitizer changed the simulated "
                   "results — the shadow checks are not transparent.\n";
      return 1;
    }
    san_disarmed_wall = median(std::move(disarmed_walls));
    san_armed_wall = median(std::move(armed_walls2));
    san_overhead_pct =
        san_disarmed_wall > 0.0
            ? 100.0 * (san_armed_wall - san_disarmed_wall) / san_disarmed_wall
            : 0.0;
    std::cout << "sanitizer (SIMDTS_SANITIZE=ON build): armed "
              << analysis::format_double(san_armed_wall, 3) << " s vs "
              << analysis::format_double(san_disarmed_wall, 3)
              << " s disarmed (interleaved), overhead "
              << analysis::format_double(san_overhead_pct, 1)
              << "%, results bit-identical\n\n";
  }
#else
  std::cout << "sanitizer: not compiled in (default build) — zero cost by "
               "construction, held by lint.sanitizer_zero_cost\n\n";
#endif

  std::uint64_t sink = 0;

  // --- Vector backend: build-flavor gate + scalar-vs-vector equality. -----
  // Same two-sided contract as the sanitizer: the default build must NOT
  // contain the backend (CI's default perf smoke runs without
  // SIMDTS_EXPECT_VECTOR and hard-fails if the backend leaked in), the
  // x86-64-v3 job sets SIMDTS_EXPECT_VECTOR=1 and hard-fails if it is
  // missing.  When present, the scalar engine stays the reference: a vector
  // run whose IterationStats differ from the scalar run is a FATAL error,
  // never a reported speedup.
  const char* expect_vec_env = std::getenv("SIMDTS_EXPECT_VECTOR");
  const bool expect_vector = expect_vec_env != nullptr &&
                             expect_vec_env[0] != '\0' &&
                             expect_vec_env[0] != '0';
  if (vec::kCompiledIn != expect_vector) {
    std::cout << "\nFATAL: vector backend compiled_in="
              << (vec::kCompiledIn ? "true" : "false") << " but this run "
              << (expect_vector
                      ? "expected a SIMDTS_VECTOR_BACKEND=ON build "
                        "(SIMDTS_EXPECT_VECTOR is set)."
                      : "expected the default build — the backend leaked in "
                        "and -march=x86-64-v3 codegen would contaminate "
                        "every number in this report.")
              << "\n";
    return 1;
  }
  double vec_scalar_wall = 0.0;
  double vec_vector_wall = 0.0;
  double vec_tree_scalar_ns = 0.0;
  double vec_tree_vector_ns = 0.0;
  double vec_fifteen_scalar_ns = 0.0;
  double vec_fifteen_vector_ns = 0.0;
#ifdef SIMDTS_VECTOR_BACKEND
  {
    const synthetic::Tree tree(big.params);
    lb::IterationStats scalar_ref;
    std::vector<double> scalar_walls;
    std::vector<double> vector_walls;
    bool vec_identical = true;
    for (unsigned rep = 0; rep < reps; ++rep) {
      simd::Machine scalar_machine(sizes.back(), cost);
      lb::Engine<synthetic::Tree> scalar_engine(tree, scalar_machine, cfg);
      auto start = Clock::now();
      const lb::IterationStats scalar_stats =
          scalar_engine.run_iteration(search::kUnbounded);
      scalar_walls.push_back(seconds_since(start));
      if (rep == 0) {
        scalar_ref = scalar_stats;
      } else if (!(scalar_stats == scalar_ref)) {
        vec_identical = false;
      }

      simd::Machine vector_machine(sizes.back(), cost);
      lb::Engine<synthetic::Tree> vector_engine(tree, vector_machine, cfg);
      vector_engine.set_backend(lb::ExecBackend::kVector);
      start = Clock::now();
      const lb::IterationStats vector_stats =
          vector_engine.run_iteration(search::kUnbounded);
      vector_walls.push_back(seconds_since(start));
      if (!(vector_stats == scalar_ref)) vec_identical = false;
    }
    if (!vec_identical) {
      std::cout << "\nFATAL: the vector backend changed the simulated "
                   "results — a speedup obtained by changing the answer is "
                   "a bug, not a result.\n";
      return 1;
    }
    vec_scalar_wall = median(std::move(scalar_walls));
    vec_vector_wall = median(std::move(vector_walls));
    std::cout << "vector backend (SIMDTS_VECTOR_BACKEND=ON build): engine "
              << analysis::format_double(vec_vector_wall, 3) << " s vs "
              << analysis::format_double(vec_scalar_wall, 3)
              << " s scalar (interleaved), speedup "
              << analysis::format_double(
                     vec_vector_wall > 0.0 ? vec_scalar_wall / vec_vector_wall
                                           : 0.0,
                     2)
              << "x, results bit-identical\n";

    const std::size_t batch_iters = analysis::quick_mode() ? 2000 : 10000;
    std::tie(vec_tree_scalar_ns, vec_tree_vector_ns) =
        time_batch_expand(tree, reps, batch_iters, sink);
    const puzzle::FifteenPuzzle fifteen(puzzle::random_walk(7, 80));
    std::tie(vec_fifteen_scalar_ns, vec_fifteen_vector_ns) =
        time_batch_expand(fifteen, reps, batch_iters, sink);
    std::cout << "  batch expand (64-node batches, median ns/batch, scalar "
                 "vs vector):\n"
              << "    tree: "
              << analysis::format_double(vec_tree_scalar_ns, 0) << " -> "
              << analysis::format_double(vec_tree_vector_ns, 0) << " ns ("
              << analysis::format_double(
                     vec_tree_vector_ns > 0.0
                         ? vec_tree_scalar_ns / vec_tree_vector_ns
                         : 0.0,
                     2)
              << "x)\n"
              << "    fifteen: "
              << analysis::format_double(vec_fifteen_scalar_ns, 0) << " -> "
              << analysis::format_double(vec_fifteen_vector_ns, 0) << " ns ("
              << analysis::format_double(
                     vec_fifteen_vector_ns > 0.0
                         ? vec_fifteen_scalar_ns / vec_fifteen_vector_ns
                         : 0.0,
                     2)
              << "x)\n\n";
  }
#else
  std::cout << "vector backend: not compiled in (default build) — absence "
               "held by lint.vector_backend_symbols\n\n";
#endif

  // --- Substrate kernels: byte plane vs packed bit plane. -----------------
  const std::size_t kernel_lanes = 1 << 14;
  const std::vector<KernelSample> kernels =
      run_kernel_benchmarks(reps, kernel_lanes, sink);
  std::cout << "kernels (P = " << kernel_lanes
            << " lanes, median ns/call, scalar vs packed):\n";
  for (const KernelSample& k : kernels) {
    std::cout << "  " << k.name << ": "
              << analysis::format_double(k.scalar_ns, 0) << " -> "
              << analysis::format_double(k.packed_ns, 0) << " ns ";
    if (k.report_speedup) {
      std::cout << "(" << analysis::format_double(k.speedup(), 1) << "x)\n";
    } else {
      std::cout << "(expand-dominated; parity expected)\n";
    }
  }
  if (sink == 0xFFFFFFFFFFFFFFFFull) std::cout << "";  // keep `sink` live

  // --- Solve service: qps across host threads + deterministic metrics. ----
  // The same trace through the same service config must produce the same
  // byte-for-byte response log at every thread count (FATAL if not) — only
  // the wall clock may move.  The p99 simulated-cycle latency and shed rate
  // come from the responses themselves and are host-independent.
  const std::size_t svc_n = analysis::quick_mode() ? 160 : 500;
  const auto svc_trace = service::random_trace(20260808, svc_n, 4);
  service::ServiceConfig svc_cfg;
  svc_cfg.admission.engines = 2;
  svc_cfg.admission.queue_capacity = 6;
  svc_cfg.admission.cycles_per_tick = 256;
  svc_cfg.admission.degrade_depth = 4;

  struct ServiceSample {
    unsigned threads = 0;
    double wall_s = 0.0;
  };
  std::vector<ServiceSample> svc_samples;
  std::string svc_reference_log;
  bool svc_identical = true;
  double svc_p99_cycles = 0.0;
  double svc_shed_rate = 0.0;
  for (const unsigned t : {1u, 2u, 8u}) {
    std::vector<double> walls;
    std::string log;
    std::vector<service::Response> responses;
    for (unsigned rep = 0; rep < reps; ++rep) {
      service::ServiceConfig run_cfg = svc_cfg;
      run_cfg.threads = t;
      service::SolveService svc(run_cfg);
      const auto start = Clock::now();
      responses = svc.run_trace(svc_trace);
      walls.push_back(seconds_since(start));
    }
    log = service::SolveService::response_log(responses);
    if (t == 1) {
      svc_reference_log = log;
      // Simulated-cycle latency of every executed response: queue wait (in
      // admission ticks, converted at the configured cycle rate) plus the
      // engine cycles actually spent.  Shed/rejected requests have no
      // latency — they are the shed-rate numerator instead.
      std::vector<double> latencies;
      std::size_t shed = 0;
      for (const auto& r : responses) {
        if (r.status == service::ResponseStatus::kShed ||
            r.status == service::ResponseStatus::kRejected) {
          ++shed;
          continue;
        }
        latencies.push_back(static_cast<double>(
            r.queue_delay_ticks * svc_cfg.admission.cycles_per_tick +
            r.expand_cycles));
      }
      std::sort(latencies.begin(), latencies.end());
      svc_p99_cycles =
          latencies.empty()
              ? 0.0
              : latencies[std::min(latencies.size() - 1,
                                   latencies.size() * 99 / 100)];
      svc_shed_rate =
          static_cast<double>(shed) / static_cast<double>(svc_trace.size());
    } else if (log != svc_reference_log) {
      svc_identical = false;
    }
    const double wall = median(std::move(walls));
    svc_samples.push_back(ServiceSample{t, wall});
    std::cout << (t == 1 ? "service trace (" + std::to_string(svc_n) +
                               " mixed requests):\n"
                         : "")
              << "  service t=" << t << ": "
              << analysis::format_double(wall, 3) << " s, "
              << analysis::format_double(
                     wall > 0.0 ? static_cast<double>(svc_n) / wall : 0.0, 0)
              << " req/s\n";
  }
  if (!svc_identical) {
    std::cout << "\nFATAL: service response logs differ across host thread "
                 "counts — refusing to report qps obtained by changing the "
                 "responses.\n";
    return 1;
  }
  std::cout << "  p99 simulated latency "
            << analysis::format_double(svc_p99_cycles, 0)
            << " cycles, shed rate "
            << analysis::format_double(100.0 * svc_shed_rate, 1)
            << "%, logs byte-identical across thread counts\n\n";

  // --- Mega-P: bytes per lane + sparse lb-phase scaling. ------------------
  // Two measurements back the P = 2^20 story (docs/performance.md, "memory
  // model & mega-P").
  //
  // bytes_per_lane: one lane driven through the engine's own op discipline
  // (pop, expand, append) down an unbounded 15-puzzle descent and back up,
  // sampling heap bytes after every operation.  The time-averaged resident
  // bytes — the figure P multiplies at mega-P — is what the WorkStack and
  // the CompactStack disagree about: 16 bytes per entry versus a 2-byte
  // delta record plus one path byte per level.  The whole-machine engine
  // aggregate (time-averaged over every expand cycle, all P lanes) is
  // reported alongside at each machine size; its ratio is smaller because
  // shallow transient stacks are dominated by fixed segment overhead rather
  // than entries.
  //
  // lb_phase: a rendezvous phase on a sparse plane (1024 busy + 1024 idle
  // lanes scattered over P) timed flat — every plane word loaded, O(P/64) —
  // versus hierarchical, which hops between occupied words via the summary
  // plane, O(occupied + P/4096).  Pair sequences are asserted identical
  // before timing (FATAL if not): the speedup must come from skipping
  // provably-zero words, never from changing the matching.
  const std::size_t descent_steps =
      analysis::quick_mode() ? 4000 : 16000;
  double mega_full_avg = 0.0;
  double mega_compact_avg = 0.0;
  std::size_t mega_full_peak = 0;
  std::size_t mega_compact_peak = 0;
  {
    const auto& wl = puzzle::test_workloads()[1];
    const puzzle::FifteenPuzzle problem(wl.board());
    search::WorkStack<puzzle::FifteenPuzzle::Node> full_stack;
    search::CompactStack<puzzle::FifteenPuzzle> compact_stack;
    compact_stack.bind(problem);
    full_stack.push(problem.root());
    compact_stack.push(problem.root());
    std::vector<puzzle::FifteenPuzzle::Node> kids;
    search::NextBound nb;
    std::uint64_t int_full = 0;
    std::uint64_t int_compact = 0;
    std::uint64_t mega_samples = 0;
    const auto sample = [&] {
      const std::size_t f = full_stack.memory_bytes();
      const std::size_t c = compact_stack.memory_bytes();
      int_full += f;
      int_compact += c;
      mega_full_peak = std::max(mega_full_peak, f);
      mega_compact_peak = std::max(mega_compact_peak, c);
      ++mega_samples;
    };
    for (std::size_t step = 0; step < descent_steps; ++step) {
      const puzzle::FifteenPuzzle::Node a = full_stack.pop();
      if (!(a == compact_stack.pop())) {
        std::cout << "\nFATAL: CompactStack diverged from WorkStack during "
                     "the bytes_per_lane descent.\n";
        return 1;
      }
      kids.clear();
      problem.expand(a, search::kUnbounded, kids, nb);
      std::vector<puzzle::FifteenPuzzle::Node> copy = kids;
      full_stack.append(copy.data(), copy.size());
      compact_stack.append(kids.data(), kids.size());
      sample();
    }
    while (!full_stack.empty()) {
      if (!(full_stack.pop() == compact_stack.pop())) {
        std::cout << "\nFATAL: CompactStack diverged from WorkStack during "
                     "the bytes_per_lane drain.\n";
        return 1;
      }
      compact_stack.release_if_drained();
      sample();
    }
    mega_full_avg = static_cast<double>(int_full) /
                    static_cast<double>(mega_samples);
    mega_compact_avg = static_cast<double>(int_compact) /
                       static_cast<double>(mega_samples);
  }
  const double mega_avg_ratio =
      mega_compact_avg > 0.0 ? mega_full_avg / mega_compact_avg : 0.0;
  const double mega_peak_ratio =
      mega_compact_peak > 0
          ? static_cast<double>(mega_full_peak) /
                static_cast<double>(mega_compact_peak)
          : 0.0;
  std::cout << "mega-P bytes/lane (15-puzzle, " << descent_steps
            << "-step descent + drain, time-averaged heap):\n"
            << "  WorkStack " << analysis::format_double(mega_full_avg, 0)
            << " B -> CompactStack "
            << analysis::format_double(mega_compact_avg, 0) << " B ("
            << analysis::format_double(mega_avg_ratio, 2) << "x; peak "
            << analysis::format_double(mega_peak_ratio, 2) << "x)\n";
  if (mega_avg_ratio < 4.0) {
    std::cout << "\nFATAL: bytes_per_lane ratio fell below the 4x the "
                 "compact representation is shipped for.\n";
    return 1;
  }

  struct MegaSample {
    std::uint32_t p = 0;
    double engine_full_avg = 0.0;    ///< aggregate B/lane, full-Node stacks
    double engine_compact_avg = 0.0; ///< aggregate B/lane, compact stacks
    double flat_ns = 0.0;            ///< flat rendezvous, ns/phase
    double hier_ns = 0.0;            ///< summary-hopping rendezvous, ns/phase
  };
  std::vector<MegaSample> mega_samples_by_p;
  {
    const auto& wl = puzzle::test_workloads()[3];
    const puzzle::FifteenPuzzle problem(wl.board());
    lb::SchemeConfig mega_cfg = cfg;
    mega_cfg.track_stack_memory = true;
    for (const std::uint32_t p : {1u << 14, 1u << 17, 1u << 20}) {
      MegaSample ms;
      ms.p = p;
      {
        simd::Machine machine(p, cost);
        lb::Engine<puzzle::FifteenPuzzle> full(problem, machine, mega_cfg);
        (void)full.run();
        ms.engine_full_avg = full.stack_memory_avg_per_lane();
      }
      {
        simd::Machine machine(p, cost);
        lb::CompactEngine<puzzle::FifteenPuzzle> compact(problem, machine,
                                                         mega_cfg);
        (void)compact.run();
        ms.engine_compact_avg = compact.stack_memory_avg_per_lane();
      }

      // Sparse rendezvous: 1024 busy + 1024 idle lanes scattered over P.
      simd::BitPlane busy_plane(p);
      simd::BitPlane idle_plane(p);
      for (std::uint32_t i = 0; i < 1024; ++i) {
        busy_plane.set(synthetic::Tree::hash2(0xB05B, i) % p, true);
        idle_plane.set(synthetic::Tree::hash2(0x1D1E, i) % p, true);
      }
      for (std::size_t w = 0; w < idle_plane.words().size(); ++w) {
        // Busy wins collisions so the two sets stay disjoint, as in the
        // engine (a lane is busy or idle, never both).
        idle_plane.words()[w] &= ~busy_plane.words()[w];
      }
      simd::SummaryPlane busy_summary;
      simd::SummaryPlane idle_summary;
      busy_summary.assign_for_lanes(p);
      idle_summary.assign_for_lanes(p);
      busy_summary.rebuild(busy_plane);
      idle_summary.rebuild(idle_plane);
      std::vector<simd::Pair> flat_pairs;
      std::vector<simd::Pair> hier_pairs;
      simd::rendezvous_into(busy_plane, idle_plane, simd::kNoPe,
                            static_cast<std::size_t>(-1), flat_pairs);
      simd::rendezvous_into(busy_plane, busy_summary, idle_plane,
                            idle_summary, simd::kNoPe,
                            static_cast<std::size_t>(-1), hier_pairs);
      if (flat_pairs != hier_pairs || flat_pairs.empty()) {
        std::cout << "\nFATAL: hierarchical rendezvous diverged from the "
                     "flat kernel at P = " << p << ".\n";
        return 1;
      }
      // Same total word budget per size so each timing runs long enough to
      // measure, while phases stay identical in what they compute.
      const std::size_t phase_iters = std::max<std::size_t>(
          32, (analysis::quick_mode() ? (1u << 22) : (1u << 25)) / p);
      std::vector<simd::Pair> pairs_buf;
      ms.flat_ns = time_kernel_ns(reps, phase_iters, sink, [&] {
        simd::rendezvous_into(busy_plane, idle_plane, simd::kNoPe,
                              static_cast<std::size_t>(-1), pairs_buf);
        return static_cast<std::uint64_t>(pairs_buf.size());
      });
      ms.hier_ns = time_kernel_ns(reps, phase_iters, sink, [&] {
        simd::rendezvous_into(busy_plane, busy_summary, idle_plane,
                              idle_summary, simd::kNoPe,
                              static_cast<std::size_t>(-1), pairs_buf);
        return static_cast<std::uint64_t>(pairs_buf.size());
      });
      mega_samples_by_p.push_back(ms);
      std::cout << "  P = " << p << ": engine "
                << analysis::format_double(ms.engine_full_avg, 3) << " -> "
                << analysis::format_double(ms.engine_compact_avg, 3)
                << " B/lane ("
                << analysis::format_double(
                       ms.engine_compact_avg > 0.0
                           ? ms.engine_full_avg / ms.engine_compact_avg
                           : 0.0,
                       2)
                << "x); sparse lb phase "
                << analysis::format_double(ms.flat_ns, 0) << " -> "
                << analysis::format_double(ms.hier_ns, 0) << " ns ("
                << analysis::format_double(
                       ms.hier_ns > 0.0 ? ms.flat_ns / ms.hier_ns : 0.0, 1)
                << "x)\n";
    }
  }

  // --- JSON artifact. -----------------------------------------------------
  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"fig4a_gp_s90_grid\",\n"
       << "  \"quick_mode\": " << (analysis::quick_mode() ? "true" : "false")
       << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"timing\": \"median\",\n"
       << "  \"host_hardware_threads\": " << runtime::sweep_threads() << ",\n"
       << "  \"grid_cells\": " << grid_cells << ",\n"
       << "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const SweepSample& s = samples[i];
    json << "    {\"threads\": " << s.threads << ", \"wall_s\": "
         << format_json_double(s.wall_s) << ", \"nodes\": " << s.nodes
         << ", \"nodes_per_s\": "
         << format_json_double(s.wall_s > 0.0
                                   ? static_cast<double>(s.nodes) / s.wall_s
                                   : 0.0)
         << ", \"speedup_vs_1t\": "
         << format_json_double(s.wall_s > 0.0
                                   ? samples.front().wall_s / s.wall_s
                                   : 0.0)
         << "}" << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"results_identical_across_threads\": true,\n"
       << "  \"engine\": {\"p\": " << sizes.back() << ", \"nodes\": "
       << engine_nodes << ", \"wall_s\": " << format_json_double(engine_wall)
       << ", \"nodes_per_s\": " << format_json_double(engine_nps) << "},\n"
       << "  \"fault_hooks\": {\"unarmed_wall_s\": "
       << format_json_double(unarmed_wall) << ", \"armed_empty_wall_s\": "
       << format_json_double(armed_wall) << ", \"overhead_pct\": "
       << format_json_double(fault_overhead_pct)
       << ", \"results_identical\": true},\n"
       << "  \"sanitizer\": {\"compiled_in\": "
       << (san::kCompiledIn ? "true" : "false");
  if (san::kCompiledIn) {
    json << ", \"disarmed_wall_s\": " << format_json_double(san_disarmed_wall)
         << ", \"armed_wall_s\": " << format_json_double(san_armed_wall)
         << ", \"overhead_pct\": " << format_json_double(san_overhead_pct)
         << ", \"results_identical\": true";
  }
  json << "},\n"
       << "  \"vector_backend\": {\"compiled_in\": "
       << (vec::kCompiledIn ? "true" : "false");
  if (vec::kCompiledIn) {
    json << ", \"engine_scalar_wall_s\": "
         << format_json_double(vec_scalar_wall)
         << ", \"engine_vector_wall_s\": "
         << format_json_double(vec_vector_wall) << ", \"engine_speedup\": "
         << format_json_double(vec_vector_wall > 0.0
                                   ? vec_scalar_wall / vec_vector_wall
                                   : 0.0)
         << ", \"results_identical\": true, \"batch_expand\": {"
         << "\"tree\": {\"scalar_ns\": "
         << format_json_double(vec_tree_scalar_ns) << ", \"vector_ns\": "
         << format_json_double(vec_tree_vector_ns) << ", \"speedup\": "
         << format_json_double(vec_tree_vector_ns > 0.0
                                   ? vec_tree_scalar_ns / vec_tree_vector_ns
                                   : 0.0)
         << "}, \"fifteen\": {\"scalar_ns\": "
         << format_json_double(vec_fifteen_scalar_ns) << ", \"vector_ns\": "
         << format_json_double(vec_fifteen_vector_ns) << ", \"speedup\": "
         << format_json_double(
                vec_fifteen_vector_ns > 0.0
                    ? vec_fifteen_scalar_ns / vec_fifteen_vector_ns
                    : 0.0)
         << "}}";
  }
  json << "},\n"
       << "  \"service\": {\"requests\": " << svc_n << ", \"runs\": [\n";
  for (std::size_t i = 0; i < svc_samples.size(); ++i) {
    const ServiceSample& s = svc_samples[i];
    json << "    {\"threads\": " << s.threads << ", \"wall_s\": "
         << format_json_double(s.wall_s) << ", \"qps\": "
         << format_json_double(s.wall_s > 0.0
                                   ? static_cast<double>(svc_n) / s.wall_s
                                   : 0.0)
         << "}" << (i + 1 < svc_samples.size() ? "," : "") << "\n";
  }
  json << "  ], \"p99_sim_cycles\": " << format_json_double(svc_p99_cycles)
       << ", \"shed_rate\": " << format_json_double(svc_shed_rate)
       << ", \"responses_identical_across_threads\": true},\n"
       << "  \"kernels\": {\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelSample& k = kernels[i];
    json << "    \"" << k.name << "\": {\"lanes\": " << kernel_lanes
         << ", \"" << k.scalar_key
         << "\": " << format_json_double(k.scalar_ns) << ", \""
         << k.packed_key << "\": " << format_json_double(k.packed_ns);
    if (k.report_speedup) {
      json << ", \"speedup\": " << format_json_double(k.speedup());
    } else {
      json << ", \"expand_dominated\": true";
    }
    json << "}" << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  json << "  },\n"
       << "  \"mega_p\": {\n"
       << "    \"bytes_per_lane\": {\"workload\": \"t-4k\", "
       << "\"descent_steps\": " << descent_steps
       << ", \"full_avg\": " << format_json_double(mega_full_avg)
       << ", \"compact_avg\": " << format_json_double(mega_compact_avg)
       << ", \"ratio\": " << format_json_double(mega_avg_ratio)
       << ", \"full_peak\": " << mega_full_peak
       << ", \"compact_peak\": " << mega_compact_peak
       << ", \"peak_ratio\": " << format_json_double(mega_peak_ratio)
       << "},\n"
       << "    \"sizes\": [\n";
  for (std::size_t i = 0; i < mega_samples_by_p.size(); ++i) {
    const MegaSample& m = mega_samples_by_p[i];
    json << "      {\"p\": " << m.p << ", \"engine_full_avg_per_lane\": "
         << format_json_double(m.engine_full_avg)
         << ", \"engine_compact_avg_per_lane\": "
         << format_json_double(m.engine_compact_avg)
         << ", \"engine_ratio\": "
         << format_json_double(m.engine_compact_avg > 0.0
                                   ? m.engine_full_avg / m.engine_compact_avg
                                   : 0.0)
         << ", \"lb_phase_flat_ns\": " << format_json_double(m.flat_ns)
         << ", \"lb_phase_hier_ns\": " << format_json_double(m.hier_ns)
         << ", \"lb_phase_speedup\": "
         << format_json_double(m.hier_ns > 0.0 ? m.flat_ns / m.hier_ns : 0.0)
         << "}" << (i + 1 < mega_samples_by_p.size() ? "," : "") << "\n";
  }
  json << "    ],\n"
       << "    \"pairs_identical_flat_vs_hier\": true\n"
       << "  }\n"
       << "}\n";

  std::string path = "BENCH_engine.json";
  if (const char* p = std::getenv("SIMDTS_BENCH_JSON"); p != nullptr) {
    path = p;
  }
  if (analysis::write_file(path, json.str())) {
    std::cout << "[json] " << path << '\n';
  } else {
    std::cout << "[json] failed to write " << path << '\n';
    return 1;
  }
  return 0;
}
