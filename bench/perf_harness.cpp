// Wall-clock perf harness: times representative sweeps and the engine inner
// loop, and emits BENCH_engine.json so every future PR has a perf
// trajectory to compare against.
//
// What it measures (all deterministic simulations — only the wall clock
// varies between hosts):
//   - sweep scaling: the Figure 4a GP-S^0.90 isoefficiency grid run through
//     the parallel sweep runner at 1, 2, 4 and 8 host threads (clamped to
//     the grid size); speedup is wall(1 thread) / wall(t threads).
//   - engine throughput: one large single-machine run, reported as expanded
//     nodes per second of host time (the per-cycle hot path: pop/expand,
//     incremental census, matching, transfers).
//
// The simulated results (counts, clocks, CSVs) are asserted identical across
// thread counts before anything is written — a speedup obtained by changing
// the answer is a bug, not a result.
//
// Environment knobs:
//   SIMDTS_QUICK        reduced scale (the tier-1-friendly configuration)
//   SIMDTS_BENCH_JSON   output path (default BENCH_engine.json)
//   SIMDTS_BENCH_REPS   timing repetitions, best-of is reported (default 1)
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/isoefficiency.hpp"
#include "fault/fault.hpp"
#include "iso_common.hpp"
#include "lb/engine.hpp"
#include "runtime/sweep.hpp"
#include "synthetic/tree.hpp"

namespace {

using namespace simdts;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SweepSample {
  unsigned threads = 0;
  double wall_s = 0.0;
  std::uint64_t nodes = 0;
};

std::uint64_t grid_nodes(const analysis::GridResult& grid) {
  std::uint64_t nodes = 0;
  for (const auto& pt : grid.points) nodes += pt.w;
  return nodes;
}

bool same_grid(const analysis::GridResult& a, const analysis::GridResult& b) {
  return a.points == b.points;
}

std::string format_json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

int main() {
  analysis::print_banner(
      "Perf harness — wall-clock baseline for the sweep runner and engine",
      "repo infrastructure (no paper counterpart)",
      "sweep wall time drops with host threads while every simulated count "
      "and clock stays bit-identical; engine nodes/sec tracks hot-path work");

  const auto sizes = bench::iso_machine_sizes();
  const auto ladder = bench::iso_ladder();
  const lb::SchemeConfig cfg = lb::gp_static(0.90);
  const simd::CostModel cost = simd::cm2_cost_model();
  const std::size_t grid_cells = sizes.size() * ladder.size();
  const auto reps =
      static_cast<unsigned>(analysis::env_u64("SIMDTS_BENCH_REPS", 1));

  std::cout << "fig4a GP-S^0.90 grid: " << grid_cells << " cells, "
            << "host hardware threads: " << runtime::sweep_threads() << "\n\n";

  // --- Sweep scaling over the fig4 GP grid. -------------------------------
  std::vector<SweepSample> samples;
  analysis::GridResult reference;
  bool identical = true;
  for (const unsigned t : {1u, 2u, 4u, 8u}) {
    double best = -1.0;
    analysis::GridResult grid;
    for (unsigned rep = 0; rep < std::max(1u, reps); ++rep) {
      const auto start = Clock::now();
      grid = analysis::run_grid(cfg, ladder, sizes, cost, t);
      const double wall = seconds_since(start);
      if (best < 0.0 || wall < best) best = wall;
    }
    if (t == 1) {
      reference = grid;
    } else if (!same_grid(reference, grid)) {
      identical = false;
    }
    samples.push_back(SweepSample{t, best, grid_nodes(grid)});
    std::cout << "  sweep t=" << t << ": "
              << analysis::format_double(best, 3) << " s, speedup vs 1t "
              << analysis::format_double(samples.front().wall_s / best, 2)
              << "x\n";
  }
  if (!identical) {
    std::cout << "\nFATAL: simulated results differ across thread counts — "
                 "refusing to report a speedup obtained by changing the "
                 "answer.\n";
    return 1;
  }
  std::cout << "  all thread counts produced bit-identical grids\n\n";

  // --- Engine throughput: one large single-machine run. -------------------
  const auto& big = ladder.back();
  double engine_best = -1.0;
  std::uint64_t engine_nodes = 0;
  for (unsigned rep = 0; rep < std::max(1u, reps); ++rep) {
    const synthetic::Tree tree(big.params);
    simd::Machine machine(sizes.back(), cost);
    lb::Engine<synthetic::Tree> engine(tree, machine, cfg);
    const auto start = Clock::now();
    const lb::IterationStats stats = engine.run_iteration(search::kUnbounded);
    const double wall = seconds_since(start);
    engine_nodes = stats.nodes_expanded;
    if (engine_best < 0.0 || wall < engine_best) engine_best = wall;
  }
  const double engine_nps =
      engine_best > 0.0 ? static_cast<double>(engine_nodes) / engine_best
                        : 0.0;
  std::cout << "engine single run: P = " << sizes.back() << ", W = "
            << engine_nodes << ", "
            << analysis::format_double(engine_best, 3) << " s, "
            << analysis::format_double(engine_nps, 0) << " nodes/s\n";

  // --- Fault hooks: unarmed vs armed-with-empty-plan. ---------------------
  // The fault machinery must be free when unused: an engine with an *empty*
  // FaultPlan armed takes the fault-checking branches every cycle but never
  // fires an event, so its simulated results must be bit-identical to the
  // unarmed engine (hard failure if not) and its wall time within noise
  // (reported, not gated — wall clocks on shared CI are too wobbly to gate).
  const fault::FaultPlan empty_plan;
  double armed_best = -1.0;
  bool fault_identical = true;
  {
    const synthetic::Tree tree(big.params);
    simd::Machine machine(sizes.back(), cost);
    lb::Engine<synthetic::Tree> engine(tree, machine, cfg);
    const lb::IterationStats unarmed =
        engine.run_iteration(search::kUnbounded);
    for (unsigned rep = 0; rep < std::max(1u, reps); ++rep) {
      simd::Machine armed_machine(sizes.back(), cost);
      lb::Engine<synthetic::Tree> armed(tree, armed_machine, cfg);
      armed.arm_faults(&empty_plan);
      const auto start = Clock::now();
      const lb::IterationStats stats =
          armed.run_iteration(search::kUnbounded);
      const double wall = seconds_since(start);
      if (armed_best < 0.0 || wall < armed_best) armed_best = wall;
      if (!(stats == unarmed)) fault_identical = false;
    }
  }
  if (!fault_identical) {
    std::cout << "\nFATAL: arming an empty fault plan changed the simulated "
                 "results — the fault hooks are not transparent.\n";
    return 1;
  }
  const double fault_overhead_pct =
      engine_best > 0.0 ? 100.0 * (armed_best - engine_best) / engine_best
                        : 0.0;
  std::cout << "fault hooks (empty plan armed): "
            << analysis::format_double(armed_best, 3) << " s, overhead "
            << analysis::format_double(fault_overhead_pct, 1)
            << "% vs unarmed, results bit-identical\n";

  // --- JSON artifact. -----------------------------------------------------
  std::ostringstream json;
  json << "{\n"
       << "  \"benchmark\": \"fig4a_gp_s90_grid\",\n"
       << "  \"quick_mode\": " << (analysis::quick_mode() ? "true" : "false")
       << ",\n"
       << "  \"host_hardware_threads\": " << runtime::sweep_threads() << ",\n"
       << "  \"grid_cells\": " << grid_cells << ",\n"
       << "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const SweepSample& s = samples[i];
    json << "    {\"threads\": " << s.threads << ", \"wall_s\": "
         << format_json_double(s.wall_s) << ", \"nodes\": " << s.nodes
         << ", \"nodes_per_s\": "
         << format_json_double(s.wall_s > 0.0
                                   ? static_cast<double>(s.nodes) / s.wall_s
                                   : 0.0)
         << ", \"speedup_vs_1t\": "
         << format_json_double(s.wall_s > 0.0
                                   ? samples.front().wall_s / s.wall_s
                                   : 0.0)
         << "}" << (i + 1 < samples.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"results_identical_across_threads\": true,\n"
       << "  \"engine\": {\"p\": " << sizes.back() << ", \"nodes\": "
       << engine_nodes << ", \"wall_s\": " << format_json_double(engine_best)
       << ", \"nodes_per_s\": " << format_json_double(engine_nps) << "},\n"
       << "  \"fault_hooks\": {\"armed_empty_wall_s\": "
       << format_json_double(armed_best) << ", \"overhead_pct\": "
       << format_json_double(fault_overhead_pct)
       << ", \"results_identical\": true}\n"
       << "}\n";

  std::string path = "BENCH_engine.json";
  if (const char* p = std::getenv("SIMDTS_BENCH_JSON"); p != nullptr) {
    path = p;
  }
  if (analysis::write_file(path, json.str())) {
    std::cout << "[json] " << path << '\n';
  } else {
    std::cout << "[json] failed to write " << path << '\n';
    return 1;
  }
  return 0;
}
