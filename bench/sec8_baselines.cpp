// Section 8: comparison against the related-work schemes.
//
// FESS and FEGS (Mahanti & Daniels) and the two Frye & Myczkowski schemes,
// run side by side with the paper's GP machinery on the same instance.
// Expected shape: FESS pays a phase per (almost every) cycle; FEGS improves
// on it but still triggers eagerly; give-one's poor splitting and the
// nearest-neighbour scheme's one-hop work diffusion both lose to GP-S^xo and
// GP-D^K.
#include <iostream>
#include <iterator>

#include "analysis/model.hpp"
#include "baselines/baselines.hpp"
#include "common.hpp"

int main() {
  using namespace simdts;
  const std::uint32_t p = bench::table_machine_size();
  // The mid-size instance keeps the FESS (one transfer per phase!) run
  // tolerable; the ranking is scale-independent.
  const auto& wl = analysis::quick_mode() ? puzzle::test_workloads()[4]
                                          : puzzle::paper_workloads()[0];
  analysis::print_banner(
      "Section 8 — related-work load-balancing schemes vs this paper's",
      "Karypis & Kumar 1992, Section 8",
      "GP-S^xo and GP-D^K on top; FEGS < that but >= FESS; give-one and "
      "nearest-neighbour trail behind");

  const analysis::TriggerModel model{static_cast<double>(wl.serial_final), p,
                                     bench::cm2_ratio(),
                                     bench::model_alpha()};
  const double xo = analysis::optimal_static_trigger(model);

  const struct {
    const char* name;
    lb::SchemeConfig cfg;
  } schemes[] = {
      {"GP-S^xo", lb::gp_static(std::min(xo, 0.97))},
      {"GP-DK", lb::gp_dk()},
      {"FEGS", baselines::fegs()},
      {"FESS", baselines::fess()},
      {"Frye-give-one", baselines::frye_give_one(0.75)},
      {"Frye-neighbor", baselines::frye_neighbor()},
  };

  analysis::Table table({"scheme", "Nexpand", "phases", "rounds", "transfers",
                         "E"});
  // The six schemes are independent runs on the same instance: sweep them
  // concurrently, then print in scheme order.
  std::vector<bench::PuzzleRun> runs;
  for (const auto& s : schemes) {
    runs.push_back({&wl, s.cfg, p, simd::cm2_cost_model()});
  }
  const std::vector<lb::IterationStats> results =
      bench::run_puzzle_sweep(runs);
  for (std::size_t i = 0; i < std::size(schemes); ++i) {
    const auto& s = schemes[i];
    const lb::IterationStats& rs = results[i];
    table.row()
        .add(s.name)
        .add(rs.expand_cycles)
        .add(rs.lb_phases)
        .add(rs.lb_rounds)
        .add(rs.transfers)
        .add(rs.efficiency(), 3);
  }
  std::cout << "instance " << wl.name << " (W = " << wl.serial_final
            << "), P = " << p << "\n\n"
            << table;
  analysis::emit_csv("sec8_baselines", table);
  return 0;
}
