// Table 6: analytic isoefficiency functions per architecture, with an
// empirical spot-check of the growth ordering.
//
// The paper's summary table gives, for hypercube and mesh interconnects
// (plus the CM-2's constant-cost network used in the experiments), the
// isoefficiency functions of nGP-S^x and GP-S^x.  The formulas are printed
// as-is; the spot-check evaluates the growth terms over a range of P to
// confirm the ordering the table implies (GP strictly more scalable than
// nGP at every architecture, CM-2 cheapest, mesh most expensive
// asymptotically).
#include <iostream>

#include "analysis/model.hpp"
#include "analysis/report.hpp"
#include "analysis/table.hpp"

int main() {
  using namespace simdts;
  analysis::print_banner(
      "Table 6 — isoefficiency functions of the matching/static-trigger "
      "combinations",
      "Karypis & Kumar 1992, Table 6 (plus the CM-2 rows of Sections 4.1/4.2)",
      "W(GP) = O(P log P) on the CM-2 and O(P log^3 P) / O(P^1.5 log P) on "
      "hypercube / mesh; nGP picks up a log^{x/(1-x)} P factor everywhere");

  analysis::Table table({"architecture", "scheme", "isoefficiency",
                         "grow(P=2^13)", "grow(P=2^17)", "grow(P=2^21)",
                         "x(2^21)/x(2^13)"});
  const double x = 0.9;
  for (const auto& row : analysis::table6_formulas()) {
    const double g13 = row.grow(8192.0, x);
    const double g17 = row.grow(131072.0, x);
    const double g21 = row.grow(2097152.0, x);
    table.row()
        .add(row.architecture)
        .add(row.scheme)
        .add(row.formula)
        .add(g13, 0)
        .add(g17, 0)
        .add(g21, 0)
        .add(g21 / g13, 1);
  }
  std::cout << table << '\n';

  std::cout << "Growth-ordering checks at x = 0.9 (expected: all true)\n";
  const auto rows = analysis::table6_formulas();
  const double p = 1 << 21;
  auto check = [](const char* what, bool ok) {
    std::cout << "  " << (ok ? "[ok] " : "[FAIL] ") << what << '\n';
    return ok;
  };
  bool all = true;
  all &= check("GP < nGP on CM-2", rows[0].grow(p, x) < rows[1].grow(p, x));
  all &= check("GP < nGP on hypercube",
               rows[2].grow(p, x) < rows[3].grow(p, x));
  all &= check("GP < nGP on mesh", rows[4].grow(p, x) < rows[5].grow(p, x));
  all &= check("CM-2 < hypercube < mesh for GP",
               rows[0].grow(p, x) < rows[2].grow(p, x) &&
                   rows[2].grow(p, x) < rows[4].grow(p, x));
  analysis::emit_csv("table6_isoefficiency_formulas", table);
  return all ? 0 : 1;
}
