// Ablation: D^P with and without multiple work transfers per phase.
//
// DESIGN.md decision 3 / Section 6.1: D^P's trigger ignores the total
// machine size, so it only works when (nearly) all processors leave a
// load-balancing phase with work — which requires multiple transfer rounds
// per phase.  Expected: single-transfer D^P collapses (far fewer active
// processors, worse efficiency), while D^K is insensitive to the choice.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace simdts;
  const std::uint32_t p = bench::table_machine_size();
  const auto& wl = analysis::quick_mode() ? puzzle::test_workloads()[4]
                                          : puzzle::paper_workloads()[1];
  analysis::print_banner(
      "Ablation — multiple work transfers per phase for the dynamic triggers",
      "Karypis & Kumar 1992, Sections 2.3 and 6.1",
      "with cheap load balancing the choice hardly matters: GP matching serves "
      "every idle PE in one round whenever donors outnumber them.  With "
      "expensive phases the trade-off inverts — every extra round pays a "
      "full phase cost, so multiple transfers lower E even though they keep "
      "more PEs fed (fewer phases)");

  analysis::Table table({"lb-cost", "scheme", "transfers/phase", "Nexpand",
                         "phases", "rounds", "E"});
  // The multiple-transfer requirement only bites when idle processors
  // outnumber donors within a phase — which happens once load balancing is
  // expensive and D^P triggers late; sweep both cost regimes.
  for (const double mult : {1.0, 16.0}) {
    const simd::CostModel cost = simd::fast_cpu_cost_model(mult);
    for (const bool multiple : {true, false}) {
      for (const auto trigger :
           {lb::TriggerKind::kDP, lb::TriggerKind::kDK}) {
        lb::SchemeConfig cfg =
            trigger == lb::TriggerKind::kDP ? lb::gp_dp() : lb::gp_dk();
        cfg.multiple_transfers = multiple;
        const lb::IterationStats rs = bench::run_puzzle(wl, p, cfg, cost);
        table.row()
            .add(analysis::format_double(mult, 0) + "x")
            .add(lb::to_string(trigger))
            .add(multiple ? "multiple" : "single")
            .add(rs.expand_cycles)
            .add(rs.lb_phases)
            .add(rs.lb_rounds)
            .add(rs.efficiency(), 3);
      }
    }
  }
  std::cout << "instance " << wl.name << " (W = " << wl.serial_final
            << "), P = " << p << "\n\n"
            << table;
  analysis::emit_csv("ablation_dp_single_transfer", table);
  return 0;
}
