// Shared harness for the isoefficiency figures (4 and 7).
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/isoefficiency.hpp"
#include "analysis/report.hpp"
#include "analysis/table.hpp"
#include "synthetic/workloads.hpp"

namespace simdts::bench {

/// Machine-size grid for the isoefficiency figures.
inline std::vector<std::uint32_t> iso_machine_sizes() {
  if (analysis::quick_mode()) return {256, 512, 1024};
  return {512, 1024, 2048, 4096, 8192};
}

/// Workload ladder (quick mode drops the largest trees).
inline std::vector<synthetic::SyntheticWorkload> iso_ladder() {
  const auto all = synthetic::iso_workloads();
  std::vector<synthetic::SyntheticWorkload> out(all.begin(), all.end());
  if (analysis::quick_mode() && out.size() > 5) {
    out.resize(5);
  }
  return out;
}

/// Target efficiencies for the extracted curves.
inline std::vector<double> iso_targets() { return {0.50, 0.65, 0.80}; }

/// Runs the grid for one scheme — every (P, W) cell concurrently via the
/// parallel sweep runner inside analysis::run_grid — then prints the raw
/// grid, the extracted curves in the paper's (P log P, W) coordinates, and a
/// straight-line verdict; emits CSVs under the given name.  Results are
/// bit-identical to the serial run for any host thread count.
inline void run_iso_experiment(const std::string& name,
                               const lb::SchemeConfig& cfg) {
  std::cout << "--- " << name << " (" << cfg.name() << ") ---\n";
  const auto sizes = iso_machine_sizes();
  const auto ladder = iso_ladder();
  const analysis::GridResult grid =
      analysis::run_grid(cfg, ladder, sizes, simd::cm2_cost_model());

  analysis::Table raw({"P", "W", "E", "Nexpand", "Nlb"});
  for (const auto& pt : grid.points) {
    raw.row()
        .add(static_cast<std::uint64_t>(pt.p))
        .add(pt.w)
        .add(pt.efficiency, 3)
        .add(pt.expand_cycles)
        .add(pt.lb_phases);
  }
  std::cout << raw << '\n';
  analysis::emit_csv(name + "_grid", raw);

  const auto targets = iso_targets();
  const auto curves = analysis::extract_curves(grid, targets);
  analysis::Table curve_table(
      {"E", "P", "PlogP", "W-needed", "W/(PlogP)", "note"});
  for (const auto& curve : curves) {
    for (const auto& pt : curve.points) {
      curve_table.row()
          .add(curve.efficiency, 2)
          .add(static_cast<std::uint64_t>(pt.p))
          .add(pt.p_log_p, 0)
          .add(pt.w_needed, 0)
          .add(pt.w_needed / pt.p_log_p, 1)
          .add(pt.extrapolated ? "extrapolated" : "");
    }
  }
  std::cout << curve_table;
  for (const auto& curve : curves) {
    const analysis::LineFit fit = analysis::fit_p_log_p(curve);
    std::cout << "E=" << analysis::format_double(curve.efficiency, 2)
              << ": least-squares W ~ " << analysis::format_double(fit.slope, 1)
              << " * P log P, max relative deviation "
              << analysis::format_double(100.0 * fit.max_rel_deviation, 0)
              << "% ("
              << (fit.max_rel_deviation < 0.5 ? "near-linear in P log P"
                                              : "super-linear growth")
              << ")\n";
  }
  std::cout << '\n';
  analysis::emit_csv(name + "_curves", curve_table);
}

}  // namespace simdts::bench
