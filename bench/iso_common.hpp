// Shared harness for the isoefficiency figures (4 and 7).
//
// Checkpoint/resume: each grid journals completed (P, W) cells to
// $SIMDTS_OUT_DIR/<name>_grid.journal as it runs.  Re-running the driver
// with --resume replays the journaled cells and computes only the missing
// ones; determinism makes the resumed CSVs byte-identical to an
// uninterrupted run.  The journal is deleted once the experiment's CSVs are
// safely written.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/isoefficiency.hpp"
#include "analysis/report.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "runtime/journal.hpp"
#include "synthetic/workloads.hpp"

namespace simdts::bench {

/// Machine-size grid for the isoefficiency figures.
inline std::vector<std::uint32_t> iso_machine_sizes() {
  if (analysis::quick_mode()) return {256, 512, 1024};
  return {512, 1024, 2048, 4096, 8192};
}

/// Workload ladder (quick mode drops the largest trees).
inline std::vector<synthetic::SyntheticWorkload> iso_ladder() {
  const auto all = synthetic::iso_workloads();
  std::vector<synthetic::SyntheticWorkload> out(all.begin(), all.end());
  if (analysis::quick_mode() && out.size() > 5) {
    out.resize(5);
  }
  return out;
}

/// Target efficiencies for the extracted curves.
inline std::vector<double> iso_targets() { return {0.50, 0.65, 0.80}; }

/// Machine sizes for the opt-in mega-P sweeps (--mega): the memory-bounded
/// stack + summary-plane machinery makes 2^20 lanes practical, and these
/// sweeps are the standing proof.  Run under *new* experiment names so the
/// plain figures' CSVs stay byte-identical.
inline std::vector<std::uint32_t> mega_machine_sizes() {
  return {1u << 14, 1u << 17, 1u << 20};
}

/// True when the command line asks for the mega-P extension sweeps.
inline bool parse_mega_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mega") == 0) return true;
  }
  return false;
}

/// Runs the grid for one scheme — every (P, W) cell concurrently via the
/// parallel sweep runner inside analysis::run_grid — then prints the raw
/// grid, the extracted curves in the paper's (P log P, W) coordinates, and a
/// straight-line verdict; emits CSVs under the given name.  Results are
/// bit-identical to the serial run for any host thread count.
inline void run_iso_experiment(const std::string& name,
                               const lb::SchemeConfig& cfg,
                               bool resume = false,
                               std::vector<std::uint32_t> sizes = {}) {
  std::cout << "--- " << name << " (" << cfg.name() << ") ---\n";
  if (sizes.empty()) sizes = iso_machine_sizes();
  const auto ladder = iso_ladder();
  analysis::GridOptions options;
  options.journal_path = analysis::out_dir() + "/" + name + "_grid.journal";
  options.resume = resume;
  // Watchdog prior: generous multiple of the whole ladder's serial work, so
  // only a genuinely wedged simulation trips it.
  options.cycle_budget = analysis::env_u64("SIMDTS_CYCLE_BUDGET", 500000000);
  if (resume) {
    std::cout << "[resume] replaying completed cells from "
              << options.journal_path << '\n';
  }
  const analysis::GridResult grid =
      analysis::run_grid(cfg, ladder, sizes, simd::cm2_cost_model(), options);

  analysis::Table raw({"P", "W", "E", "Nexpand", "Nlb"});
  for (const auto& pt : grid.points) {
    raw.row()
        .add(static_cast<std::uint64_t>(pt.p))
        .add(pt.w)
        .add(pt.efficiency, 3)
        .add(pt.expand_cycles)
        .add(pt.lb_phases);
  }
  std::cout << raw << '\n';
  analysis::emit_csv(name + "_grid", raw);

  const auto targets = iso_targets();
  const auto curves = analysis::extract_curves(grid, targets);
  analysis::Table curve_table(
      {"E", "P", "PlogP", "W-needed", "W/(PlogP)", "note"});
  for (const auto& curve : curves) {
    for (const auto& pt : curve.points) {
      curve_table.row()
          .add(curve.efficiency, 2)
          .add(static_cast<std::uint64_t>(pt.p))
          .add(pt.p_log_p, 0)
          .add(pt.w_needed, 0)
          .add(pt.w_needed / pt.p_log_p, 1)
          .add(pt.extrapolated ? "extrapolated" : "");
    }
  }
  std::cout << curve_table;
  for (const auto& curve : curves) {
    const analysis::LineFit fit = analysis::fit_p_log_p(curve);
    std::cout << "E=" << analysis::format_double(curve.efficiency, 2)
              << ": least-squares W ~ " << analysis::format_double(fit.slope, 1)
              << " * P log P, max relative deviation "
              << analysis::format_double(100.0 * fit.max_rel_deviation, 0)
              << "% ("
              << (fit.max_rel_deviation < 0.5 ? "near-linear in P log P"
                                              : "super-linear growth")
              << ")\n";
  }
  std::cout << '\n';
  analysis::emit_csv(name + "_curves", curve_table);
  // The CSVs are on disk; the checkpoint has served its purpose.
  runtime::SweepJournal(options.journal_path).remove();
}

}  // namespace simdts::bench
