// Figure 4: experimental isoefficiency curves for static triggering.
//
// The paper plots W needed for fixed efficiencies against P log P for
// GP-S^0.90 (4a) and nGP-S^0.90 / ^0.80 / ^0.70 (4b-4d).  Expected shape:
// GP-S^0.90's curves are near-straight lines (O(P log P) isoefficiency);
// nGP's bend upward, the more so the higher x and the higher the target
// efficiency; at low efficiencies all schemes look near-linear because the
// phase count saturates at the cycle count.
//
// Substitution note: the grid runs on calibrated synthetic irregular trees
// (see DESIGN.md) so that W can be swept over nearly three decades.
#include "iso_common.hpp"

int main(int argc, char** argv) {
  using namespace simdts;
  const bool resume = bench::parse_resume_flag(argc, argv);
  const bool mega = bench::parse_mega_flag(argc, argv);
  analysis::print_banner(
      "Figure 4 — isoefficiency curves, static triggering",
      "Karypis & Kumar 1992, Figures 4a-4d",
      "GP-S^0.9 near-linear in P log P; nGP bends upward as x and the "
      "target efficiency grow");
  bench::run_iso_experiment("fig4a_gp_s90", lb::gp_static(0.90), resume);
  bench::run_iso_experiment("fig4b_ngp_s90", lb::ngp_static(0.90), resume);
  bench::run_iso_experiment("fig4c_ngp_s80", lb::ngp_static(0.80), resume);
  bench::run_iso_experiment("fig4d_ngp_s70", lb::ngp_static(0.70), resume);
  if (mega) {
    // Opt-in extension of the headline scheme to P = 2^20 lanes.  At these
    // sizes the ladder's workloads run far below the target efficiencies,
    // so the curves are mostly extrapolated — the sweep exists to prove the
    // machine sizes are *practical* (memory-bounded, deterministic), and it
    // writes its own CSVs, leaving the plain figures byte-identical.
    bench::run_iso_experiment("fig4a_gp_s90_mega", lb::gp_static(0.90),
                              resume, bench::mega_machine_sizes());
  }
  return 0;
}
