// Mega-P smoke: a quick P = 2^20 run that must stay cheap, deterministic,
// and memory-bounded — the CI face of the mega-P machinery (memory-bounded
// CompactStack lanes + hierarchical census/rendezvous).
//
// Three hard gates, each a non-zero exit:
//  1. Determinism: the same 2^20-lane iteration run at 1, 2 and 8 host
//     threads — with a FaultPlan armed (kills across the whole lane range,
//     one revival) and without — produces bit-identical IterationStats on
//     both stack representations.
//  2. Representation transparency: CompactStack results equal WorkStack
//     results (the delta encoding may never change a simulated count).
//  3. Memory: peak RSS of the whole process stays under a fixed ceiling.
//     The default 256 MB leaves ~5x headroom over the measured ~51 MB peak,
//     so noise never trips it, while a regression of kind — any accidental
//     O(P) per-lane cost, e.g. a kilobyte of retained stack per lane at
//     P = 2^20 — blows straight through it (SIMDTS_MEGA_RSS_MB overrides).
//
// Runs in tens of seconds; wired into the CI perf-smoke job.
#include <sys/resource.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "fault/fault.hpp"
#include "lb/engine.hpp"
#include "simd/thread_pool.hpp"
#include "synthetic/tree.hpp"

namespace {

using namespace simdts;

/// ~600k nodes: a few dozen expand cycles at P = 2^20, nearly all lanes
/// idle — the sparse regime the summary planes exist for.
synthetic::Params tree_params() { return {42, 4, 0.6, 16}; }

long peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in KiB.
  return usage.ru_maxrss / 1024;
}

template <typename EngineT>
lb::IterationStats run_once(const synthetic::Tree& tree, std::uint32_t p,
                            unsigned threads, const fault::FaultPlan* plan) {
  simd::ThreadPool pool(threads);
  simd::Machine machine(p, simd::cm2_cost_model(), &pool);
  EngineT engine(tree, machine, lb::gp_static(0.9));
  if (plan != nullptr) engine.arm_faults(plan);
  return engine.run_iteration(search::kUnbounded);
}

}  // namespace

int main() {
  analysis::print_banner(
      "Mega-P smoke — P = 2^20 lanes, quick and deterministic",
      "repo infrastructure (no paper counterpart)",
      "bit-identical across 1/2/8 host threads and both stack "
      "representations, faults armed and unarmed, under a fixed RSS ceiling");

  const std::uint32_t p = 1u << 20;
  const synthetic::Tree tree(tree_params());
  // Kills span the whole index range — the top word region is where a
  // narrowed lane index would alias a low lane — plus one revival.
  const fault::FaultPlan plan({
      {3, fault::FaultKind::kKillPe, 0, 0},
      {4, fault::FaultKind::kKillPe, p - 1, 0},
      {5, fault::FaultKind::kKillPe, 70001, 0},
      {7, fault::FaultKind::kRevivePe, 70001, 0},
  });

  const lb::IterationStats base =
      run_once<lb::Engine<synthetic::Tree>>(tree, p, 1, nullptr);
  const lb::IterationStats base_faulted =
      run_once<lb::Engine<synthetic::Tree>>(tree, p, 1, &plan);
  if (base.nodes_expanded == 0 || base_faulted.pes_killed != 3 ||
      base_faulted.pes_revived != 1) {
    std::cout << "FATAL: the smoke scenario degenerated (nodes="
              << base.nodes_expanded << ", killed=" << base_faulted.pes_killed
              << ", revived=" << base_faulted.pes_revived
              << ") — the gates below would be vacuous.\n";
    return 1;
  }

  bool identical = true;
  const auto check = [&](const char* label, const lb::IterationStats& got,
                         const lb::IterationStats& want) {
    const bool ok = got == want;
    std::cout << "  " << label << ": "
              << (ok ? "bit-identical" : "DIVERGED") << '\n';
    identical = identical && ok;
  };
  for (const unsigned threads : {1u, 2u, 8u}) {
    const std::string t = "t=" + std::to_string(threads);
    check(("full    " + t + " unarmed").c_str(),
          run_once<lb::Engine<synthetic::Tree>>(tree, p, threads, nullptr),
          base);
    check(("full    " + t + " faults ").c_str(),
          run_once<lb::Engine<synthetic::Tree>>(tree, p, threads, &plan),
          base_faulted);
    check(("compact " + t + " unarmed").c_str(),
          run_once<lb::CompactEngine<synthetic::Tree>>(tree, p, threads,
                                                       nullptr),
          base);
    check(("compact " + t + " faults ").c_str(),
          run_once<lb::CompactEngine<synthetic::Tree>>(tree, p, threads,
                                                       &plan),
          base_faulted);
  }
  if (!identical) {
    std::cout << "\nFATAL: a P = 2^20 run diverged across host threads, "
                 "fault arming, or stack representation.\n";
    return 1;
  }

  long ceiling_mb = 256;
  if (const char* env = std::getenv("SIMDTS_MEGA_RSS_MB"); env != nullptr) {
    ceiling_mb = std::atol(env);
  }
  const long rss_mb = peak_rss_mb();
  std::cout << "\npeak RSS " << rss_mb << " MB (ceiling " << ceiling_mb
            << " MB)\n";
  if (rss_mb > ceiling_mb) {
    std::cout << "FATAL: P = 2^20 is no longer memory-bounded.\n";
    return 1;
  }
  std::cout << "mega-P smoke: PASS (" << base.nodes_expanded
            << " nodes, 12 runs bit-identical, RSS within ceiling)\n";
  return 0;
}
