// Shared plumbing for the experiment benches.
//
// Every table/figure binary follows the same pattern: print a banner
// explaining what the paper reported and what "the shape holds" means, run
// the experiment at the paper's machine size (P = 8192 by default), print a
// paper-vs-measured table, and emit a CSV artifact.
//
// Environment knobs:
//   SIMDTS_QUICK          reduced scale (smaller machine, fewer workloads)
//   SIMDTS_P              override the machine size
//   SIMDTS_OUT_DIR        CSV output directory (default bench_out/)
//   SIMDTS_SWEEP_THREADS  host threads for the parallel sweep runner
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/table.hpp"
#include "lb/engine.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"
#include "runtime/journal.hpp"
#include "runtime/sweep.hpp"
#include "simd/cost_model.hpp"
#include "simd/machine.hpp"

namespace simdts::bench {

/// The machine size for the headline tables: the paper's 8192, or 1024 in
/// quick mode, or $SIMDTS_P.
inline std::uint32_t table_machine_size() {
  const std::uint64_t fallback = analysis::quick_mode() ? 1024 : 8192;
  return static_cast<std::uint32_t>(analysis::env_u64("SIMDTS_P", fallback));
}

/// The puzzle workloads for the headline tables (quick mode keeps the two
/// smallest so a full bench sweep stays snappy).
inline std::vector<puzzle::PuzzleWorkload> table_workloads() {
  const auto all = puzzle::paper_workloads();
  if (analysis::quick_mode()) {
    return {all.begin(), all.begin() + 2};
  }
  return {all.begin(), all.end()};
}

/// Runs one scheme on one 15-puzzle workload and returns the run stats for
/// the *final-threshold iteration only* — the paper's setup ("find all the
/// solutions of the puzzle up to a given tree depth"): a single bounded DFS
/// at the optimal-solution threshold, which makes the searched tree size W
/// identical for the serial and every parallel configuration.
inline lb::IterationStats run_puzzle(const puzzle::PuzzleWorkload& wl,
                                     std::uint32_t p,
                                     const lb::SchemeConfig& cfg,
                                     const simd::CostModel& cost
                                     = simd::cm2_cost_model()) {
  const puzzle::FifteenPuzzle problem(wl.board());
  simd::Machine machine(p, cost);
  lb::Engine<puzzle::FifteenPuzzle> engine(problem, machine, cfg);
  return engine.run_iteration(wl.solution_length);
}

/// Full-IDA* variant (all iterations), for experiments that need it.
inline lb::RunStats run_puzzle_ida(const puzzle::PuzzleWorkload& wl,
                                   std::uint32_t p,
                                   const lb::SchemeConfig& cfg,
                                   const simd::CostModel& cost
                                   = simd::cm2_cost_model()) {
  const puzzle::FifteenPuzzle problem(wl.board());
  simd::Machine machine(p, cost);
  lb::Engine<puzzle::FifteenPuzzle> engine(problem, machine, cfg);
  return engine.run();
}

/// One cell of a table sweep: a (workload, scheme, machine size) run.
struct PuzzleRun {
  const puzzle::PuzzleWorkload* workload = nullptr;
  lb::SchemeConfig cfg;
  std::uint32_t p = 0;
  simd::CostModel cost = simd::cm2_cost_model();
};

/// Runs every cell concurrently via the sweep runner and returns the stats
/// in input order — each run owns a private Machine, and the results land in
/// pre-assigned slots, so the table a driver prints from them is
/// byte-identical to the serial loop it replaces.
inline std::vector<lb::IterationStats> run_puzzle_sweep(
    std::span<const PuzzleRun> runs, unsigned threads = 0) {
  return runtime::sweep_map<lb::IterationStats>(
      runs.size(),
      [&](std::size_t i) {
        const PuzzleRun& r = runs[i];
        return run_puzzle(*r.workload, r.p, r.cfg, r.cost);
      },
      threads);
}

/// True when the command line asks to resume from an existing sweep journal.
inline bool parse_resume_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--resume") == 0) return true;
  }
  return false;
}

/// Checkpointing variant of run_puzzle_sweep: completed cells are journaled
/// to $SIMDTS_OUT_DIR/<journal_name>.journal (encoded bit-exactly via
/// lb::encode_journal) as the sweep runs; with `resume` the journal is
/// loaded first and only the missing cells are re-run.  Determinism makes
/// the merged results — and every table printed from them — byte-identical
/// to an uninterrupted sweep.  Callers delete the journal (see
/// remove_sweep_journal) once their CSVs are safely written.
inline std::vector<lb::IterationStats> run_puzzle_sweep_journaled(
    std::span<const PuzzleRun> runs, const std::string& journal_name,
    bool resume, unsigned threads = 0) {
  std::vector<lb::IterationStats> results(runs.size());
  std::vector<std::uint8_t> done(runs.size(), std::uint8_t{0});
  runtime::SweepJournal journal(analysis::out_dir() + "/" + journal_name +
                                ".journal");
  if (resume) {
    for (const auto& [slot, payload] : journal.load()) {
      lb::IterationStats stats;
      if (slot < runs.size() && lb::decode_journal(payload, stats)) {
        results[slot] = std::move(stats);
        done[slot] = 1;
      }
    }
  }
  runtime::SweepRunner runner(threads);
  runner.run(runs.size(), [&](std::size_t i) {
    if (done[i] != 0) return;  // replayed from the journal
    const PuzzleRun& r = runs[i];
    results[i] = run_puzzle(*r.workload, r.p, r.cfg, r.cost);
    journal.record(i, lb::encode_journal(results[i]));
  });
  return results;
}

/// Deletes a sweep journal written by run_puzzle_sweep_journaled.
inline void remove_sweep_journal(const std::string& journal_name) {
  runtime::SweepJournal(analysis::out_dir() + "/" + journal_name + ".journal")
      .remove();
}

/// The CM-2 t_lb / U_calc ratio used by the analytic-trigger columns.
inline double cm2_ratio() { return 13.0 / 30.0; }

/// Splitting-quality constant used for the analytic trigger (see
/// analysis::TriggerModel::alpha).
inline double model_alpha() { return 0.7; }

}  // namespace simdts::bench
