// Figure 3: difference in load-balancing phase counts, nGP minus GP, as a
// function of the static threshold x, for the four Table 2 instances.
//
// Expected shape: the gap is ~0 at x = 0.5, grows with x, and grows faster
// for larger W (the "saturation" effect pushes the blow-up to higher x for
// larger problems).
#include <iostream>

#include "common.hpp"

int main() {
  using namespace simdts;
  const std::uint32_t p = bench::table_machine_size();
  analysis::print_banner(
      "Figure 3 — N_lb(nGP) - N_lb(GP) vs static threshold x",
      "Karypis & Kumar 1992, Figure 3",
      "gap ~ 0 at x = 0.5, increasing in x, larger for larger W");

  analysis::Table table(
      {"W(meas)", "x", "Nlb-nGP", "Nlb-GP", "gap"});
  const double xs[] = {0.50, 0.60, 0.70, 0.80, 0.90, 0.95};
  for (const auto& wl : bench::table_workloads()) {
    for (const double x : xs) {
      const lb::IterationStats ngp = bench::run_puzzle(wl, p, lb::ngp_static(x));
      const lb::IterationStats gp = bench::run_puzzle(wl, p, lb::gp_static(x));
      table.row()
          .add(wl.serial_final)
          .add(x, 2)
          .add(ngp.lb_phases)
          .add(gp.lb_phases)
          .add(static_cast<std::int64_t>(ngp.lb_phases) -
               static_cast<std::int64_t>(gp.lb_phases));
    }
  }
  std::cout << table;
  analysis::emit_csv("fig3_lb_phase_gap", table);
  return 0;
}
