// Ablation: what counts as a "busy" processor for the trigger condition.
//
// DESIGN.md decision 1: the paper counts a processor as busy when it can
// split (stack >= 2); the ablation also triggers on the non-empty count.
// Expected: small effect — few processors sit at exactly one node — with
// the splittable definition triggering slightly earlier (it sees a smaller
// active count) and therefore balancing a bit more eagerly.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace simdts;
  const std::uint32_t p = bench::table_machine_size();
  const auto& wl = analysis::quick_mode() ? puzzle::test_workloads()[4]
                                          : puzzle::paper_workloads()[1];
  analysis::print_banner(
      "Ablation — busy-processor definition (splittable vs non-empty)",
      "Karypis & Kumar 1992, Section 2 (definition of busy)",
      "differences stay small; splittable (the paper's definition) triggers "
      "at least as eagerly");

  analysis::Table table({"busy-policy", "scheme", "Nexpand", "Nlb", "E"});
  for (const auto policy :
       {lb::BusyPolicy::kSplittable, lb::BusyPolicy::kNonEmpty}) {
    for (const auto& base :
         {lb::gp_static(0.75), lb::gp_static(0.9), lb::gp_dk()}) {
      lb::SchemeConfig cfg = base;
      cfg.busy = policy;
      const lb::IterationStats rs = bench::run_puzzle(wl, p, cfg);
      table.row()
          .add(lb::to_string(policy))
          .add(base.name())
          .add(rs.expand_cycles)
          .add(rs.lb_phases)
          .add(rs.efficiency(), 3);
    }
  }
  std::cout << "instance " << wl.name << " (W = " << wl.serial_final
            << "), P = " << p << "\n\n"
            << table;
  analysis::emit_csv("ablation_busy_policy", table);
  return 0;
}
