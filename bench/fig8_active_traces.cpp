// Figure 8: number of active processors per node-expansion cycle for GP-D^P
// and GP-D^K at the actual and at 16x load-balancing cost.
//
// Expected shape: at the actual cost the two traces look alike (8a vs 8b);
// at 16x, D^P lets the active count sag to much lower levels before
// triggering than D^K does (8c vs 8d) — the too-late-triggering pathology of
// Section 6.1.
//
// The trace is printed as a compact ASCII strip chart (one row per bucket of
// cycles, value = mean active fraction) and emitted in full as CSV.
#include <algorithm>
#include <iostream>

#include "common.hpp"

namespace {

using simdts::lb::IterationStats;

void print_strip(const IterationStats& it, std::uint32_t p) {
  constexpr int kBuckets = 24;
  constexpr int kWidth = 50;
  const std::size_t n = it.trace.size();
  if (n == 0) return;
  const std::size_t per = std::max<std::size_t>(1, n / kBuckets);
  for (std::size_t b = 0; b * per < n; ++b) {
    const std::size_t lo = b * per;
    const std::size_t hi = std::min(n, lo + per);
    double mean = 0.0;
    for (std::size_t i = lo; i < hi; ++i) mean += it.trace[i].working;
    mean /= static_cast<double>(hi - lo);
    const int bar = static_cast<int>(mean / p * kWidth + 0.5);
    std::cout << "  cycle " << lo << "\t|" << std::string(bar, '#')
              << std::string(kWidth - bar, ' ') << "| "
              << static_cast<int>(mean) << "\n";
  }
}

/// Mean active fraction over the whole iteration (== W / (P * N_expand)).
double mean_active_fraction(const IterationStats& it, std::uint32_t p) {
  if (it.trace.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& t : it.trace) sum += t.working;
  return sum / static_cast<double>(p) /
         static_cast<double>(it.trace.size());
}

/// Deepest valley over the middle of the run — the initial distribution
/// ramp and the final drain (where every scheme goes to zero) are skipped,
/// so this measures how far D^P lets the machine sag *between* phases.
double valley_active_fraction(const IterationStats& it, std::uint32_t p) {
  const std::size_t n = it.trace.size();
  if (n < 10) return 0.0;
  const std::size_t start = n / 10;
  const std::size_t end = n - n / 4;
  double min_frac = 1.0;
  for (std::size_t i = start; i < end; ++i) {
    min_frac = std::min(
        min_frac, static_cast<double>(it.trace[i].working) / p);
  }
  return min_frac;
}

}  // namespace

int main() {
  using namespace simdts;
  const std::uint32_t p = bench::table_machine_size();
  const auto& wl = puzzle::table5_workload();
  analysis::print_banner(
      "Figure 8 — active processors per expansion cycle, GP-D^P vs GP-D^K",
      "Karypis & Kumar 1992, Figures 8a-8d (W = 2067137)",
      "similar traces at the actual lb cost; at 16x cost the D^P trace sags "
      "far lower between phases than D^K's");

  analysis::Table csv({"panel", "cycle", "working", "splittable"});
  analysis::Table summary({"panel", "scheme", "lb-cost", "mean-active",
                           "valley-active", "E"});
  const struct {
    const char* panel;
    lb::SchemeConfig cfg;
    double mult;
  } panels[] = {
      {"8a", lb::gp_dp(), 1.0},
      {"8b", lb::gp_dk(), 1.0},
      {"8c", lb::gp_dp(), 16.0},
      {"8d", lb::gp_dk(), 16.0},
  };

  double sag[4] = {};
  int idx = 0;
  for (const auto& panel : panels) {
    lb::SchemeConfig cfg = panel.cfg;
    cfg.record_trace = true;
    const puzzle::FifteenPuzzle problem(wl.board());
    simd::Machine machine(p, simd::fast_cpu_cost_model(panel.mult));
    lb::Engine<puzzle::FifteenPuzzle> engine(problem, machine, cfg);
    const IterationStats final = engine.run_iteration(wl.solution_length);

    std::cout << "panel " << panel.panel << ": " << cfg.name() << " at "
              << panel.mult << "x lb cost — final iteration, "
              << final.expand_cycles << " cycles\n";
    print_strip(final, p);
    std::cout << '\n';

    for (std::size_t i = 0; i < final.trace.size(); ++i) {
      csv.row()
          .add(panel.panel)
          .add(static_cast<std::uint64_t>(i))
          .add(static_cast<std::uint64_t>(final.trace[i].working))
          .add(static_cast<std::uint64_t>(final.trace[i].splittable));
    }
    sag[idx] = mean_active_fraction(final, p);
    summary.row()
        .add(panel.panel)
        .add(cfg.name())
        .add(panel.mult, 0)
        .add(sag[idx], 2)
        .add(valley_active_fraction(final, p), 2)
        .add(final.efficiency(), 2);
    ++idx;
  }
  std::cout << summary;
  std::cout << "\nShape check: D^P mean active fraction at 16x ("
            << analysis::format_double(sag[2], 2) << ") should be below D^K ("
            << analysis::format_double(sag[3], 2) << ")\n";
  analysis::emit_csv("fig8_traces", csv);
  analysis::emit_csv("fig8_summary", summary);
  return 0;
}
