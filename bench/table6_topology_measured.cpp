// Table 6, measured: isoefficiency under hypercube and mesh load-balancing
// costs, not just the analytic formulas.
//
// The cost model scales t_lb with the machine size (log^2 P on a hypercube,
// sqrt(P) on a mesh, constant on the CM-2, normalized to the CM-2 value at
// P = 8192).  Expected shape: at every (W, P) the achieved efficiency orders
// CM-2 >= hypercube >= mesh once P exceeds the normalization point, and the
// W needed for fixed E grows fastest on the mesh — the Table 6 ordering,
// measured.
#include <iostream>

#include "iso_common.hpp"

int main() {
  using namespace simdts;
  analysis::print_banner(
      "Table 6 (measured) — GP-S^0.85 isoefficiency across interconnects",
      "Karypis & Kumar 1992, Table 6",
      "W needed for fixed E grows near P log P on the CM-2, faster on the "
      "hypercube (t_lb ~ log^2 P), fastest on the mesh (t_lb ~ sqrt P)");

  const auto sizes = bench::iso_machine_sizes();
  const auto ladder = bench::iso_ladder();
  const double targets[] = {0.50, 0.65};

  const struct {
    const char* name;
    simd::CostModel cost;
  } machines[] = {
      {"CM-2", simd::cm2_cost_model()},
      {"hypercube", simd::hypercube_cost_model()},
      {"mesh", simd::mesh_cost_model()},
  };

  analysis::Table table({"architecture", "E", "P", "W-needed", "W/(PlogP)",
                         "note"});
  analysis::Table slopes({"architecture", "E", "slope-ratio P=8192/P=512"});
  for (const auto& m : machines) {
    // run_grid sweeps the (P, W) cells of each architecture's grid across
    // host threads; the printed tables are identical to the serial run.
    const analysis::GridResult grid =
        analysis::run_grid(lb::gp_static(0.85), ladder, sizes, m.cost);
    const auto curves = analysis::extract_curves(grid, targets);
    for (const auto& curve : curves) {
      double first_ratio = 0.0;
      double last_ratio = 0.0;
      for (const auto& pt : curve.points) {
        const double ratio = pt.w_needed / pt.p_log_p;
        if (first_ratio == 0.0) first_ratio = ratio;
        last_ratio = ratio;
        table.row()
            .add(m.name)
            .add(curve.efficiency, 2)
            .add(static_cast<std::uint64_t>(pt.p))
            .add(pt.w_needed, 0)
            .add(ratio, 1)
            .add(pt.extrapolated ? "extrapolated" : "");
      }
      if (first_ratio > 0.0) {
        slopes.row()
            .add(m.name)
            .add(curve.efficiency, 2)
            .add(last_ratio / first_ratio, 2);
      }
    }
  }
  std::cout << table << '\n'
            << "Growth of the W/(P log P) ratio across the machine-size "
               "range\n(1.0 = exactly P log P; larger = extra network "
               "factors; mesh > hypercube > CM-2 expected):\n\n"
            << slopes;
  analysis::emit_csv("table6_topology_measured", table);
  analysis::emit_csv("table6_topology_slopes", slopes);
  return 0;
}
