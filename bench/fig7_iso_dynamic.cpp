// Figure 7: experimental isoefficiency curves for dynamic triggering.
//
// The paper plots isoefficiency curves for GP-D^K (7a), GP-D^P (7b),
// nGP-D^K (7c) and nGP-D^P (7d).  Expected shape: both GP combinations are
// near-linear in P log P; nGP-D^K stays close to linear, while nGP-D^P is
// visibly worse because D^P triggers phases more often and nGP's donation
// burden concentrates.
#include "iso_common.hpp"

int main(int argc, char** argv) {
  using namespace simdts;
  const bool resume = bench::parse_resume_flag(argc, argv);
  const bool mega = bench::parse_mega_flag(argc, argv);
  analysis::print_banner(
      "Figure 7 — isoefficiency curves, dynamic triggering",
      "Karypis & Kumar 1992, Figures 7a-7d",
      "GP-D^K ~ GP-D^P ~ O(P log P); nGP-D^K near-linear; nGP-D^P worse");
  bench::run_iso_experiment("fig7a_gp_dk", lb::gp_dk(), resume);
  bench::run_iso_experiment("fig7b_gp_dp", lb::gp_dp(), resume);
  bench::run_iso_experiment("fig7c_ngp_dk", lb::ngp_dk(), resume);
  bench::run_iso_experiment("fig7d_ngp_dp", lb::ngp_dp(), resume);
  if (mega) {
    // Opt-in P = 2^20 extension of the paper's best dynamic scheme; see the
    // matching note in fig4_iso_static.cpp.
    bench::run_iso_experiment("fig7a_gp_dk_mega", lb::gp_dk(), resume,
                              bench::mega_machine_sizes());
  }
  return 0;
}
