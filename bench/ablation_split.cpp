// Ablation: splitting strategy (the alpha-splitting assumption in practice).
//
// DESIGN.md decision 2: the paper donates the node at the bottom of the
// stack.  This bench compares bottom-node, stratified-half, and the
// deliberately poor top-node splitter.  Expected: bottom and half are close
// (both are decent alpha-splitters for the 15-puzzle); top-node needs far
// more load-balancing phases and loses efficiency, as predicted by the
// V(P) * log_{1/(1-alpha)} W transfer bound with alpha -> 0.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace simdts;
  const std::uint32_t p = bench::table_machine_size();
  const auto& wl = analysis::quick_mode() ? puzzle::test_workloads()[4]
                                          : puzzle::paper_workloads()[1];
  analysis::print_banner(
      "Ablation — work-splitting strategy",
      "Karypis & Kumar 1992, Section 3 (alpha-splitting) / Section 5",
      "bottom-node ~ half >> top-node in efficiency; top-node needs many "
      "more phases");

  analysis::Table table({"splitter", "scheme", "Nexpand", "Nlb", "transfers",
                         "E"});
  for (const auto strat :
       {search::SplitStrategy::kBottomNode, search::SplitStrategy::kHalf,
        search::SplitStrategy::kTopNode}) {
    for (const auto& base : {lb::gp_static(0.85), lb::gp_dk()}) {
      lb::SchemeConfig cfg = base;
      cfg.split = strat;
      const lb::IterationStats rs = bench::run_puzzle(wl, p, cfg);
      table.row()
          .add(search::to_string(strat))
          .add(base.name())
          .add(rs.expand_cycles)
          .add(rs.lb_phases)
          .add(rs.transfers)
          .add(rs.efficiency(), 3);
    }
  }
  std::cout << "instance " << wl.name << " (W = " << wl.serial_final
            << "), P = " << p << "\n\n"
            << table;
  analysis::emit_csv("ablation_split", table);
  return 0;
}
