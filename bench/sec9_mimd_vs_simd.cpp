// Section 9: the SIMD schemes against MIMD work stealing.
//
// The paper's concluding claim: "there are algorithms for parallel search of
// unstructured trees, with similar scalability, for both MIMD and SIMD
// computers.  The efficiency of parallel search will be lower on SIMD
// computers because of the idling overhead between load balancing phases."
//
// This bench runs the best SIMD scheme (GP-D^K) and the classic MIMD
// receiver-initiated stealing policies (GRR / ARR / RP, cf. Kumar, Grama &
// Rao) over the same synthetic workload ladder and machine sizes, then
// compares isoefficiency line fits.  Expected shape: GP-D^K, GRR and RP are
// all near-linear in P log P — the "similar scalability" claim.  On
// absolute efficiency the comparison needs care: both our E and the paper's
// exclude the SIMD node-expansion-cost handicap (slow 1-bit PEs), and the
// CM-2's constant-cost phase serves every idle PE at once, so emulated SIMD
// per-node efficiency can even exceed MIMD's; the bench quantifies the
// node-cost penalty at which MIMD pulls ahead.
#include <cmath>
#include <iostream>

#include "analysis/isoefficiency.hpp"
#include "iso_common.hpp"
#include "mimd/engine.hpp"
#include "runtime/sweep.hpp"
#include "synthetic/tree.hpp"

namespace {

using namespace simdts;

struct MimdGrid {
  std::vector<analysis::GridPoint> points;
};

MimdGrid run_mimd_grid(mimd::StealPolicy policy,
                       std::span<const synthetic::SyntheticWorkload> ladder,
                       std::span<const std::uint32_t> sizes) {
  // Like analysis::run_grid, the MIMD cells are independent deterministic
  // simulations: sweep them across host threads into pre-assigned slots.
  MimdGrid grid;
  grid.points = runtime::sweep_map<analysis::GridPoint>(
      sizes.size() * ladder.size(), [&](std::size_t k) {
        const std::uint32_t p = sizes[k / ladder.size()];
        const auto& wl = ladder[k % ladder.size()];
        const synthetic::Tree tree(wl.params);
        mimd::MimdConfig cfg;
        cfg.policy = policy;
        mimd::MimdEngine<synthetic::Tree> engine(tree, p, cfg);
        const mimd::MimdStats stats = engine.run_iteration(search::kUnbounded);
        analysis::GridPoint pt;
        pt.p = p;
        pt.w = stats.nodes_expanded;
        pt.efficiency = stats.efficiency(p);
        pt.expand_cycles = stats.steps;
        pt.lb_phases = stats.steals;
        return pt;
      });
  return grid;
}

}  // namespace

int main() {
  analysis::print_banner(
      "Section 9 — SIMD (GP-D^K) vs MIMD work stealing (GRR/ARR/RP)",
      "Karypis & Kumar 1992, Section 9 (conclusion); Kumar-Grama-Rao for the "
      "MIMD schemes",
      "similar near-linear isoefficiency for both families (GRR/RP; ARR is "
      "known to scale worse).  Note on absolute efficiency: with the CM-2's "
      "hardware-constant lb phase serving every idle PE at once and node-"
      "cost parity assumed, emulated SIMD can match or beat per-node MIMD "
      "efficiency; the paper's 'lower efficiency on SIMD' claim rests on "
      "the slower SIMD node expansion (1-bit PEs), which its reported E "
      "numbers exclude too (Section 5)");

  const auto sizes = bench::iso_machine_sizes();
  const auto ladder = bench::iso_ladder();
  const auto targets = bench::iso_targets();

  // SIMD side.
  const analysis::GridResult simd_grid = analysis::run_grid(
      lb::gp_dk(), ladder, sizes, simd::cm2_cost_model());

  analysis::Table fits({"family", "scheme", "E", "W/(PlogP) slope",
                        "max deviation", "verdict"});
  auto add_fits = [&](const char* family, const char* scheme,
                      const analysis::GridResult& grid) {
    for (const auto& curve : analysis::extract_curves(grid, targets)) {
      const analysis::LineFit fit = analysis::fit_p_log_p(curve);
      fits.row()
          .add(family)
          .add(scheme)
          .add(curve.efficiency, 2)
          .add(fit.slope, 1)
          .add(analysis::format_double(100.0 * fit.max_rel_deviation, 0) +
               "%")
          .add(fit.max_rel_deviation < 0.5 ? "near-linear" : "super-linear");
    }
  };
  add_fits("SIMD", "GP-DK", simd_grid);

  // MIMD side.
  analysis::Table head2head({"P", "W", "E(SIMD GP-DK)", "E(MIMD GRR)",
                             "E(MIMD ARR)", "E(MIMD RP)"});
  std::vector<MimdGrid> mimd_grids;
  const mimd::StealPolicy policies[] = {
      mimd::StealPolicy::kGlobalRoundRobin,
      mimd::StealPolicy::kAsyncRoundRobin,
      mimd::StealPolicy::kRandomPolling,
  };
  for (const auto policy : policies) {
    MimdGrid grid = run_mimd_grid(policy, ladder, sizes);
    analysis::GridResult as_result;
    as_result.points = grid.points;
    add_fits("MIMD", mimd::to_string(policy), as_result);
    mimd_grids.push_back(std::move(grid));
  }

  for (std::size_t i = 0; i < simd_grid.points.size(); ++i) {
    const auto& sp = simd_grid.points[i];
    head2head.row()
        .add(static_cast<std::uint64_t>(sp.p))
        .add(sp.w)
        .add(sp.efficiency, 3)
        .add(mimd_grids[0].points[i].efficiency, 3)
        .add(mimd_grids[1].points[i].efficiency, 3)
        .add(mimd_grids[2].points[i].efficiency, 3);
  }

  std::cout << head2head << '\n' << fits;

  // The paper's claim in one number per family: mean SIMD/MIMD efficiency
  // ratio at equal (W, P) where both exceed 10%.
  double ratio_sum = 0.0;
  int ratio_n = 0;
  for (std::size_t i = 0; i < simd_grid.points.size(); ++i) {
    const double es = simd_grid.points[i].efficiency;
    const double em = mimd_grids[2].points[i].efficiency;  // RP
    if (es > 0.1 && em > 0.1) {
      ratio_sum += es / em;
      ++ratio_n;
    }
  }
  if (ratio_n > 0) {
    const double ratio = ratio_sum / ratio_n;
    std::cout << "\nmean E(SIMD) / E(MIMD-RP) at equal (W, P): "
              << analysis::format_double(ratio, 2)
              << "\nBoth families share the O(P log P) isoefficiency class — "
                 "the paper's headline claim.\nAbsolute-efficiency reading: "
                 "the ratio above assumes equal node-expansion cost.  With a "
                 "SIMD\nnode-cost penalty r (CM-2 1-bit PEs vs a MIMD "
                 "workstation CPU), delivered SIMD\nefficiency scales by "
                 "1/r: MIMD wins outright once r > "
              << analysis::format_double(ratio, 2)
              << " — consistent with the\npaper's conclusion that the "
                 "higher SIMD node expansion cost, not the idling,\nis what "
                 "caps SIMD efficiency.\n";
  }
  analysis::emit_csv("sec9_mimd_vs_simd", head2head);
  analysis::emit_csv("sec9_mimd_vs_simd_fits", fits);
  return 0;
}
