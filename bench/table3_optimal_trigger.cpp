// Table 3: efficiencies for static thresholds around the analytic optimum.
//
// The paper sweeps x in a small window around the eq.-18 value for each of
// the four instances and shows that the measured best threshold is very
// close to the analytic one.
#include <algorithm>
#include <iostream>

#include "analysis/model.hpp"
#include "common.hpp"

int main() {
  using namespace simdts;
  const std::uint32_t p = bench::table_machine_size();
  analysis::print_banner(
      "Table 3 — measured efficiency near the analytic optimal trigger x_o",
      "Karypis & Kumar 1992, Table 3",
      "the empirically best x lies within a few hundredths of the analytic "
      "x_o, and E varies only mildly across the window");

  analysis::Table table({"W(meas)", "x_o(analytic)", "x", "E(GP-S^x)",
                         "best-in-window"});
  for (const auto& wl : bench::table_workloads()) {
    const analysis::TriggerModel model{
        static_cast<double>(wl.serial_final), p, bench::cm2_ratio(),
        bench::model_alpha()};
    const double xo = analysis::optimal_static_trigger(model);

    struct Point {
      double x;
      double e;
    };
    std::vector<Point> window;
    for (int k = -3; k <= 3; ++k) {
      const double x = std::clamp(xo + 0.02 * k, 0.05, 0.98);
      const lb::IterationStats rs = bench::run_puzzle(wl, p, lb::gp_static(x));
      window.push_back({x, rs.efficiency()});
    }
    const auto best = std::max_element(
        window.begin(), window.end(),
        [](const Point& a, const Point& b) { return a.e < b.e; });
    for (const auto& pt : window) {
      table.row()
          .add(wl.serial_final)
          .add(xo, 3)
          .add(pt.x, 3)
          .add(pt.e, 3)
          .add(pt.x == best->x ? "*" : "");
    }
  }
  std::cout << table;
  analysis::emit_csv("table3_optimal_trigger", table);
  return 0;
}
