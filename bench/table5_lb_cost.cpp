// Table 5: the effect of expensive load balancing on the dynamic triggers.
//
// The paper re-runs the W ~ 2.07e6 instance with the load-balancing cost
// inflated 12x and 16x (simulated on the CM-2 by sending larger-than-
// necessary messages) and compares GP-D^P, GP-D^K and the optimal static
// trigger S^xo.  Expected shape: at the actual cost all three are close; at
// 12x and 16x, D^K clearly beats D^P and stays near S^xo.
#include <algorithm>
#include <iostream>

#include "analysis/model.hpp"
#include "common.hpp"

int main() {
  using namespace simdts;
  const std::uint32_t p = bench::table_machine_size();
  const auto& wl = puzzle::table5_workload();
  analysis::print_banner(
      "Table 5 — dynamic triggers under 1x / 12x / 16x load-balancing cost",
      "Karypis & Kumar 1992, Table 5 (W = 2067137, GP matching)",
      "E(D^K) ~ E(D^P) at the actual cost; at 12x and 16x, D^K beats D^P "
      "clearly and is within ~10% of S^xo");

  struct PaperRow {
    double mult;
    int nexp_dp, nlb_dp;
    double e_dp;
    int nexp_dk, nlb_dk;
    double e_dk;
    int nexp_s, nlb_s;
    double e_s;
  };
  const PaperRow paper[] = {
      {1.0, 310, 110, 0.69, 314, 83, 0.71, 307, 87, 0.72},
      {12.0, 505, 102, 0.26, 487, 44, 0.32, 365, 58, 0.34},
      {16.0, 615, 109, 0.20, 533, 45, 0.28, 410, 50, 0.31},
  };

  analysis::Table table({"lb-cost", "scheme", "Nexpand", "Nlb(rounds)", "E",
                         "paper:Nexp", "paper:Nlb", "paper:E"});
  for (const auto& row : paper) {
    const simd::CostModel cost = simd::fast_cpu_cost_model(row.mult);

    // The optimal static trigger for this instance at this cost.
    const analysis::TriggerModel model{
        static_cast<double>(wl.serial_final), p,
        bench::cm2_ratio() * row.mult, bench::model_alpha()};
    const double xo =
        std::clamp(analysis::optimal_static_trigger(model), 0.05, 0.97);

    const lb::IterationStats dp = bench::run_puzzle(wl, p, lb::gp_dp(), cost);
    const lb::IterationStats dk = bench::run_puzzle(wl, p, lb::gp_dk(), cost);
    const lb::IterationStats sx = bench::run_puzzle(wl, p, lb::gp_static(xo), cost);

    auto emit = [&](const char* name, const lb::IterationStats& rs, int pn, int pl,
                    double pe) {
      table.row()
          .add(analysis::format_double(row.mult, 0) + "x")
          .add(name)
          .add(rs.expand_cycles)
          .add(rs.lb_rounds)
          .add(rs.efficiency(), 2)
          .add(pn)
          .add(pl)
          .add(pe, 2);
    };
    emit("GP-DP", dp, row.nexp_dp, row.nlb_dp, row.e_dp);
    emit("GP-DK", dk, row.nexp_dk, row.nlb_dk, row.e_dk);
    emit(("GP-S^" + analysis::format_double(xo, 2)).c_str(), sx, row.nexp_s,
         row.nlb_s, row.e_s);
  }
  std::cout << table;
  analysis::emit_csv("table5_lb_cost", table);
  return 0;
}
