// A 15-puzzle solver application: reads a board (16 tile values, 0 for the
// blank) from the command line or scrambles one, finds an optimal solution
// with IDA*, prints the move sequence, and verifies it by replay.
//
//   ./build/examples/fifteen_solver 14 13 15 7 11 12 9 5 6 0 2 1 4 8 10 3
//   ./build/examples/fifteen_solver --scramble 40 --seed 7
//   ./build/examples/fifteen_solver --linear-conflict --scramble 50
#include <array>
#include <cstring>
#include <iostream>
#include <string>

#include "puzzle/solver.hpp"

namespace {

const char* kMoveNames[] = {"Up", "Down", "Left", "Right"};

}  // namespace

namespace {

int run(int argc, char** argv) {
  using namespace simdts::puzzle;

  Heuristic heuristic = Heuristic::kManhattan;
  int scramble = 40;
  std::uint64_t seed = 1;
  std::array<std::uint8_t, kCells> tiles{};
  int tile_count = 0;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--linear-conflict") == 0) {
      heuristic = Heuristic::kLinearConflict;
    } else if (std::strcmp(argv[i], "--scramble") == 0 && i + 1 < argc) {
      scramble = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (tile_count < kCells) {
      tiles[static_cast<std::size_t>(tile_count++)] =
          static_cast<std::uint8_t>(std::stoi(argv[i]));
    }
  }

  Board board = tile_count == kCells ? Board::from_tiles(tiles)
                                     : random_walk(seed, scramble);
  std::cout << "Start position:\n" << board.to_string() << '\n';
  if (!board.solvable()) {
    std::cout << "This configuration is not reachable from the goal "
                 "(parity invariant violated) — no solution exists.\n";
    return 1;
  }
  std::cout << "Manhattan lower bound: " << manhattan(board) << "\n"
            << "Linear-conflict lower bound: " << linear_conflict(board)
            << "\n\nsolving with "
            << (heuristic == Heuristic::kManhattan ? "Manhattan"
                                                   : "linear conflict")
            << " ...\n";

  const auto solution = solve(board, heuristic);
  if (!solution.has_value()) {
    std::cout << "search aborted\n";
    return 1;
  }
  std::cout << "optimal solution: " << solution->length() << " moves ("
            << solution->nodes_expanded << " nodes expanded)\n  ";
  for (std::size_t i = 0; i < solution->moves.size(); ++i) {
    std::cout << kMoveNames[static_cast<int>(solution->moves[i])]
              << (i + 1 < solution->moves.size() ? " " : "\n");
  }

  const Board end = replay(board, solution->moves);
  std::cout << (end == Board::goal() ? "\nreplay check: reached the goal\n"
                                     : "\nreplay check FAILED\n");
  return end == Board::goal() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
