// Scheme explorer: run one workload through every load-balancing scheme —
// the paper's Table 1 combinations plus the Section 8 baselines — across a
// ladder of machine sizes, and print the efficiency matrix.  This is the
// "which scheme should I use at my scale?" view of the library.
//
//   ./build/examples/scheme_explorer [workload-index 0..4] [x]
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "baselines/baselines.hpp"
#include "lb/engine.hpp"
#include "puzzle/fifteen.hpp"
#include "puzzle/workloads.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace simdts;

  const std::size_t wi =
      argc > 1 ? std::stoul(argv[1]) : 4;  // default: t-326k
  const double x = argc > 2 ? std::stod(argv[2]) : 0.85;
  const auto& wl =
      puzzle::test_workloads()[std::min<std::size_t>(wi, 4)];
  const puzzle::FifteenPuzzle problem(wl.board());

  std::cout << "workload " << wl.name << " (W = " << wl.serial_total
            << ", optimal length " << wl.solution_length << ")\n"
            << "static threshold x = " << x << "\n\n";

  const struct {
    std::string name;
    lb::SchemeConfig cfg;
  } schemes[] = {
      {"nGP-S^x", lb::ngp_static(x)},
      {"GP-S^x", lb::gp_static(x)},
      {"nGP-DP", lb::ngp_dp()},
      {"GP-DP", lb::gp_dp()},
      {"nGP-DK", lb::ngp_dk()},
      {"GP-DK", lb::gp_dk()},
      {"FESS", baselines::fess()},
      {"FEGS", baselines::fegs()},
      {"Frye-give-one", baselines::frye_give_one(x)},
      {"Frye-neighbor", baselines::frye_neighbor()},
  };
  const std::uint32_t sizes[] = {64, 256, 1024, 4096};

  analysis::Table table({"scheme", "E@P=64", "E@256", "E@1024", "E@4096"});
  for (const auto& s : schemes) {
    auto& row = table.row();
    row.add(s.name);
    for (const std::uint32_t p : sizes) {
      simd::Machine machine(p, simd::cm2_cost_model());
      lb::Engine<puzzle::FifteenPuzzle> engine(problem, machine, s.cfg);
      const lb::RunStats rs = engine.run();
      row.add(rs.efficiency(), 3);
    }
  }
  std::cout << table
            << "\nReading guide: efficiency falls with P at fixed W "
               "(isoefficiency); GP rows dominate their nGP counterparts; "
               "the baselines trail the paper's schemes.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
