// Bring your own search problem: this walkthrough defines a new domain from
// scratch — subset-sum over a fixed item list — plugs it into the generic
// TreeProblem interface, and runs it through both the serial reference
// search and the parallel SIMD engine.  It also exercises the bundled
// N-queens domain for comparison.
//
// The TreeProblem contract (see src/search/problem.hpp):
//   - Node: cheap-to-copy value type (it *is* the unit of load balancing)
//   - root(): the initial node
//   - expand(node, bound, out, next): append children within the bound
//   - is_goal(node) / f_value(node)
#include <cstdint>
#include <iostream>
#include <vector>

#include "lb/engine.hpp"
#include "queens/queens.hpp"
#include "search/serial.hpp"

namespace {

using simdts::search::Bound;
using simdts::search::NextBound;

/// Subset-sum: count the subsets of `items` summing exactly to `target`.
/// The tree branches on include/exclude per item, pruned by the remaining
/// achievable range — an irregular tree, just like the paper wants.
class SubsetSum {
 public:
  struct Node {
    std::uint32_t index;  ///< next item to decide
    std::int64_t sum;     ///< sum of included items so far
  };

  SubsetSum(std::vector<std::int64_t> items, std::int64_t target)
      : items_(std::move(items)), target_(target) {
    suffix_pos_.resize(items_.size() + 1, 0);
    suffix_neg_.resize(items_.size() + 1, 0);
    for (std::size_t i = items_.size(); i-- > 0;) {
      suffix_pos_[i] = suffix_pos_[i + 1] + std::max<std::int64_t>(0, items_[i]);
      suffix_neg_[i] = suffix_neg_[i + 1] + std::min<std::int64_t>(0, items_[i]);
    }
  }

  [[nodiscard]] Node root() const { return Node{0, 0}; }

  void expand(const Node& n, Bound /*bound*/, std::vector<Node>& out,
              NextBound& /*next*/) const {
    if (n.index >= items_.size()) return;
    // Prune subtrees that cannot reach the target any more.
    for (const std::int64_t pick : {std::int64_t{0}, items_[n.index]}) {
      const std::int64_t sum = n.sum + pick;
      const std::int64_t hi = sum + suffix_pos_[n.index + 1];
      const std::int64_t lo = sum + suffix_neg_[n.index + 1];
      if (target_ < lo || target_ > hi) continue;
      out.push_back(Node{n.index + 1, sum});
    }
  }

  [[nodiscard]] bool is_goal(const Node& n) const {
    return n.index == items_.size() && n.sum == target_;
  }
  [[nodiscard]] Bound f_value(const Node&) const { return 0; }

 private:
  std::vector<std::int64_t> items_;
  std::int64_t target_;
  std::vector<std::int64_t> suffix_pos_;
  std::vector<std::int64_t> suffix_neg_;
};

static_assert(simdts::search::TreeProblem<SubsetSum>);

}  // namespace

int main() {
  using namespace simdts;

  // A mildly adversarial instance: 28 pseudo-random items.
  std::vector<std::int64_t> items;
  std::uint64_t s = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 28; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    items.push_back(static_cast<std::int64_t>(s % 4001) - 2000);
  }
  const std::int64_t target = items[0] + items[5] + items[9] + items[17];
  const SubsetSum problem(items, target);

  const auto serial =
      search::serial_dfs(problem, problem.root(), search::kUnbounded);
  std::cout << "subset-sum serial: " << serial.nodes_expanded
            << " nodes, " << serial.goals_found << " subsets hit the target\n";

  simd::Machine machine(1024, simd::cm2_cost_model());
  lb::Engine<SubsetSum> engine(problem, machine, lb::gp_dk());
  const lb::IterationStats it = engine.run_iteration(search::kUnbounded);
  std::cout << "subset-sum parallel (P = 1024, GP-DK): "
            << summarize(it) << '\n';

  const bool ok_subset = it.nodes_expanded == serial.nodes_expanded &&
                         it.goals_found == serial.goals_found;
  std::cout << (ok_subset ? "OK: custom domain conserved through the engine\n"
                          : "MISMATCH in the custom domain!\n");

  // The same three-line recipe on the bundled N-queens domain.
  const queens::Queens q(10);
  simd::Machine m2(1024, simd::cm2_cost_model());
  lb::Engine<queens::Queens> qe(q, m2, lb::gp_dk());
  const lb::IterationStats qit = qe.run_iteration(search::kUnbounded);
  std::cout << "10-queens parallel: " << qit.goals_found
            << " solutions (expected "
            << queens::Queens::known_solutions(10) << "), E = "
            << qit.efficiency() << '\n';

  const bool ok_queens =
      qit.goals_found == queens::Queens::known_solutions(10);
  return ok_subset && ok_queens ? 0 : 1;
}
