// Quickstart: run parallel IDA* for the 15-puzzle on an emulated 8192-PE
// SIMD machine with the paper's best configuration (GP matching, D^K
// triggering), and compare against the serial run.
//
//   ./build/examples/quickstart [seed] [scramble_steps] [P]
#include <cstdint>
#include <iostream>
#include <string>

#include "lb/engine.hpp"
#include "puzzle/fifteen.hpp"
#include "search/serial.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace simdts;

  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 2026;
  const int steps = argc > 2 ? std::stoi(argv[2]) : 50;
  const auto p =
      static_cast<std::uint32_t>(argc > 3 ? std::stoul(argv[3]) : 8192);

  // 1. A problem: a solvable scrambled board.
  const puzzle::Board board = puzzle::random_walk(seed, steps);
  std::cout << "Scrambled board (" << steps << " random moves):\n"
            << board.to_string() << '\n';
  const puzzle::FifteenPuzzle problem(board);

  // 2. A machine: P lock-step processing elements with the paper's CM-2
  //    cost model (30 ms per node-expansion cycle, 13 ms per load-balancing
  //    phase — only the ratio matters).
  simd::Machine machine(p, simd::cm2_cost_model());

  // 3. A scheme: global-pointer matching + the D^K dynamic trigger — the
  //    configuration the paper recommends.
  lb::Engine<puzzle::FifteenPuzzle> engine(problem, machine, lb::gp_dk());

  // 4. Run parallel IDA* to the optimal solution depth.
  const lb::RunStats rs = engine.run();
  std::cout << "parallel IDA* on " << p << " PEs: " << summarize(rs) << '\n';

  // 5. Sanity: the serial run visits exactly the same tree.
  const auto serial = search::serial_ida(problem);
  std::cout << "serial IDA*: W = " << serial.total_expanded
            << ", optimal solution length = " << serial.solution_bound
            << ", solutions at that depth = " << serial.goals_found << '\n';

  const bool conserved = rs.total.nodes_expanded == serial.total_expanded &&
                         rs.solution_bound == serial.solution_bound;
  std::cout << (conserved ? "OK: parallel search expanded exactly the serial "
                            "tree (no anomalies)\n"
                          : "MISMATCH: parallel and serial runs disagree!\n");
  std::cout << "efficiency at P = " << p << ": " << rs.efficiency() << '\n';
  return conserved ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
