// Depth-first branch and bound on the SIMD engine: optimal TSP tours.
//
// IDA* fixes its cost bound per iteration; branch and bound *tightens* the
// bound whenever a better complete solution appears (the incumbent is
// refreshed between lock-step cycles — a global min-reduction, which the
// CM-2 provided as a hardware scan).  The paper names Depth-First Branch
// and Bound as one of the tree-search algorithms its load balancing serves;
// this example shows it end to end on a random TSP instance.
//
//   ./build/examples/tsp_branch_and_bound [cities] [seed] [P]
#include <cstdint>
#include <iostream>
#include <string>

#include "lb/engine.hpp"
#include "search/serial.hpp"
#include "tsp/tsp.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace simdts;
  const int n = argc > 1 ? std::stoi(argv[1]) : 12;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 7;
  const auto p =
      static_cast<std::uint32_t>(argc > 3 ? std::stoul(argv[3]) : 1024);

  const tsp::Tsp problem(n, seed);
  std::cout << "random symmetric TSP, " << n << " cities, seed " << seed
            << "\n\n";

  // Serial reference.
  const auto serial = search::serial_branch_and_bound(problem);
  std::cout << "serial DFBB: optimal tour cost " << serial.best << " ("
            << serial.nodes_expanded << " nodes, " << serial.goals_found
            << " incumbent improvements)\n";

  // Parallel on the emulated SIMD machine.
  simd::Machine machine(p, simd::cm2_cost_model());
  lb::Engine<tsp::Tsp> engine(problem, machine, lb::gp_dk());
  const auto bnb = engine.run_branch_and_bound();
  std::cout << "parallel DFBB on " << p << " PEs: optimal tour cost "
            << bnb.best << " (" << bnb.stats.nodes_expanded << " nodes, "
            << bnb.stats.expand_cycles << " cycles, "
            << bnb.stats.lb_phases << " lb phases, E = "
            << bnb.stats.efficiency() << ")\n";

  // The bound updates lag a cycle behind the serial order, so the parallel
  // run may expand a different (usually somewhat larger) node set — but the
  // optimum must agree.
  if (bnb.best != serial.best) {
    std::cout << "MISMATCH between serial and parallel optima!\n";
    return 1;
  }
  if (n <= 12) {
    const auto brute = problem.brute_force_optimal();
    std::cout << "brute-force check: " << brute
              << (brute == bnb.best ? " (agrees)\n" : " (MISMATCH!)\n");
    return brute == bnb.best ? 0 : 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
