// Service soak smoke: replay a fixed 500-request mixed trace through the
// solve service with a service-level fault plan armed — engine crashes,
// cache corruptions, queue stalls — and prove the robustness contract end
// to end:
//
//   - the response log is byte-identical across two full replays and across
//     1/2/8 host threads (determinism with faults armed);
//   - every request is accounted for in exactly one terminal status;
//   - the shed/retry/corruption counters are stable, so CI can pin them
//     against a golden (pass it as --expect-counters "<summary>").
//
//   ./build/examples/service_soak [requests] [--expect-counters "<line>"]
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "fault/service_fault.hpp"
#include "service/service.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace simdts;

  std::size_t n = 500;
  std::string expect_counters;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--expect-counters" && i + 1 < argc) {
      expect_counters = argv[++i];
    } else {
      n = std::stoul(arg);
    }
  }

  // Scratch journals live under bench_out/ with the other benchmark
  // artifacts, not at the repo root.
  std::filesystem::create_directories("bench_out");

  const auto trace = service::random_trace(20260808, n, 4);
  const auto plan = fault::ServiceFaultPlan::random(
      424242, trace.size(), /*crashes=*/20, /*corruptions=*/10, /*stalls=*/6);

  service::ServiceConfig cfg;
  cfg.admission.engines = 2;
  cfg.admission.queue_capacity = 6;
  cfg.admission.cycles_per_tick = 256;  // tight enough to exercise shedding
  cfg.admission.degrade_depth = 4;
  cfg.retry = runtime::RetryPolicy{3, 8, 0x5EEDBACCULL};

  std::string reference_log;
  service::ServiceCounters reference_counters;
  bool ok = true;

  // Replays: two runs at 2 threads (the CI byte-identity check), then 1 and
  // 8 threads (the thread-count sweep).  Each run gets a fresh cache journal
  // so replays see the same cold-cache world.
  const struct {
    const char* label;
    unsigned threads;
  } runs[] = {{"run1(t2)", 2}, {"run2(t2)", 2}, {"t1", 1}, {"t8", 8}};
  for (const auto& r : runs) {
    const std::string cache_path =
        std::string("bench_out/service_soak_cache_") + r.label + ".journal";
    std::remove(cache_path.c_str());
    service::ServiceConfig run_cfg = cfg;
    run_cfg.threads = r.threads;
    run_cfg.cache_path = cache_path;
    service::SolveService svc(run_cfg);
    svc.arm_faults(plan);
    const auto responses = svc.run_trace(trace);
    const std::string log = service::SolveService::response_log(responses);
    const auto& c = svc.counters();

    if (responses.size() != trace.size()) {
      std::cerr << "FATAL: " << r.label << " dropped responses: "
                << responses.size() << " of " << trace.size() << '\n';
      ok = false;
    }
    if (c.ok + c.cache_hits + c.coalesced + c.budget_exhausted + c.shed +
            c.rejected + c.failed !=
        trace.size()) {
      std::cerr << "FATAL: " << r.label
                << " statuses do not partition the trace: " << c.summary()
                << '\n';
      ok = false;
    }
    if (reference_log.empty()) {
      reference_log = log;
      reference_counters = c;
      std::cout << "trace: " << trace.size() << " requests, "
                << plan.events().size() << " fault events\n"
                << "counters: " << c.summary() << '\n'
                << "response log: " << log.size() << " bytes\n";
    } else {
      if (log != reference_log) {
        std::cerr << "FATAL: " << r.label
                  << " response log differs from the reference replay\n";
        ok = false;
      }
      if (!(c == reference_counters)) {
        std::cerr << "FATAL: " << r.label
                  << " counters differ: " << c.summary() << '\n';
        ok = false;
      }
    }
  }

  // Warm-cache replay: reopen run1's journal (which the armed fault plan
  // corrupted in place) and replay the same trace.  Solves must turn into
  // verified hits, and the scripted corruptions must surface as detected
  // checksum mismatches followed by clean re-solves — never a wrong payload.
  {
    service::ServiceConfig warm_cfg = cfg;
    warm_cfg.threads = 2;
    warm_cfg.cache_path = "bench_out/service_soak_cache_run1(t2).journal";
    service::SolveService warm(warm_cfg);
    warm.arm_faults(plan);
    const auto responses = warm.run_trace(trace);
    const auto& c = warm.counters();
    std::cout << "warm replay: " << c.summary() << '\n';
    if (responses.size() != trace.size()) {
      std::cerr << "FATAL: warm replay dropped responses\n";
      ok = false;
    }
    if (c.cache_hits == 0) {
      std::cerr << "FATAL: warm replay produced no verified cache hits\n";
      ok = false;
    }
    if (c.cache_corruptions == 0) {
      std::cerr << "FATAL: warm replay detected no scripted corruption — "
                   "verified-read path untested\n";
      ok = false;
    }
  }

  if (!expect_counters.empty() &&
      reference_counters.summary() != expect_counters) {
    std::cerr << "FATAL: counters drifted from the golden\n  expected: "
              << expect_counters << "\n  actual:   "
              << reference_counters.summary() << '\n';
    ok = false;
  }

  // The robustness headline: shedding, retries, deadline exhaustion, and
  // cache-corruption detection must all actually fire in this soak — a soak
  // that exercises none of the failure paths proves nothing.
  if (reference_counters.shed + reference_counters.rejected == 0) {
    std::cerr << "FATAL: the soak never shed — overload path untested\n";
    ok = false;
  }
  if (reference_counters.retries == 0) {
    std::cerr << "FATAL: the soak never retried — crash path untested\n";
    ok = false;
  }

  std::cout << (ok ? "OK: byte-identical replays across runs and thread "
                     "counts; every request accounted for\n"
                   : "FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
