// simdlint's lexical layer: turn a C++ source file into something rules can
// trust.
//
// Every rule in this linter is a statement about *code*, never about prose —
// a `rand()` inside a string literal or a comment must not trip the
// determinism rules, and a SIMDLINT-ALLOW directive lives only in
// comments.  So the lexer produces three views of a file:
//
//   1. `code`: the raw text with comment bodies and string/char literal
//      contents blanked to spaces.  Line structure is preserved exactly
//      (newlines survive even inside raw strings), so a byte offset in
//      `code` maps to the same line as in `raw`.
//   2. `tokens`: identifiers, numbers and punctuation lexed from `code`,
//      each tagged with its 1-based line and whether it sits on a
//      preprocessor directive line.
//   3. `allows`: the SIMDLINT-ALLOW suppression directives harvested from
//      comment text, keyed by the line the directive starts on.
//
// The lexer handles //- and /**/-comments, ordinary string and char
// literals with escapes, raw strings (R"tag(...)tag", with encoding
// prefixes), and digit separators (1'000 is a number, not a char literal).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace simdlint {

struct Token {
  std::string text;
  std::size_t line = 1;  // 1-based line of the first character
  bool ident = false;    // identifier or keyword
  bool preproc = false;  // token lies on a preprocessor directive line
};

struct SourceFile {
  std::string path;  // repo-relative, '/'-separated
  std::string raw;   // original text
  std::string code;  // comments and literal contents blanked
  std::vector<Token> tokens;
  // line -> rule ids allowed on that line (and the next); "*" allows all.
  std::map<std::size_t, std::set<std::string>> allows;
  // line -> region kinds ("lockstep", "serial") declared by an inline
  // SIMDLINT-REGION comment, written with the kind parenthesized after the
  // tag; attaches to the function definition whose signature overlaps that
  // line (see symbols.hpp).
  std::map<std::size_t, std::set<std::string>> region_marks;
  // line -> effects absolved on that line and the next by an inline
  // SIMDLINT-EFFECT-OK comment, written with the effect names parenthesized
  // after the tag; consumed by the effect analysis (effects.hpp), which
  // reports stale directives that absolved nothing.
  std::map<std::size_t, std::set<std::string>> effect_ok;
  // line -> taint-source kinds ("partition") declared by an inline
  // SIMDLINT-SOURCE comment.  The taint analysis (taint.hpp) taints the
  // declared identifiers on the marker's line and the next two; a marker
  // that taints nothing is reported stale.
  std::map<std::size_t, std::set<std::string>> source_marks;
  // line -> merge kinds ("commutative") declared by an inline SIMDLINT-MERGE
  // comment; attaches to the function definition whose signature overlaps
  // that line, marking it an order-independent reduction point that
  // launders partition taint (see taint.hpp).
  std::map<std::size_t, std::set<std::string>> merge_marks;
  std::size_t line_count = 0;

  /// Lex `text`; `path` is kept verbatim for reporting and rule scoping.
  static SourceFile parse(std::string path, std::string text);

  /// The raw text of a 1-based line, with surrounding whitespace trimmed.
  [[nodiscard]] std::string line_text(std::size_t line1) const;

  [[nodiscard]] bool is_header() const;
};

}  // namespace simdlint
