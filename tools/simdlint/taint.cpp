#include "simdlint/taint.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "simdlint/callgraph.hpp"
#include "simdlint/symbols.hpp"

namespace simdlint {

namespace {

// Member calls that write through their receiver; with a tainted argument
// (or under tainted control) they taint the receiver.
const std::set<std::string>& mutating_member_calls() {
  static const std::set<std::string> kNames = {
      "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
      "insert",    "append",       "push",    "assign",        "resize",
      "fill",      "store",        "fetch_add", "fetch_sub",   "add",
  };
  return kNames;
}

// Compound-assignment operator heads: `+=` lexes as `+`,`=`.
bool compound_op(const std::string& s) {
  return s == "+" || s == "-" || s == "*" || s == "/" || s == "%" ||
         s == "&" || s == "|" || s == "^";
}

/// One hop of the provenance arena.  Taint facts store the index of the step
/// that established them; chains are rebuilt by walking `prev`.
struct Step {
  std::string path;
  std::size_t line = 0;
  std::string note;
  std::ptrdiff_t prev = -1;
  /// When >= 0, this step tainted a parameter of nodes_[param_of] — used to
  /// classify a callee's return taint as parameter-derived (see
  /// TNode::returns_param_only).
  std::ptrdiff_t param_of = -1;
  /// Control-derived ("weak") taint: the value was written under a
  /// partition-tainted branch/loop, but is not itself computed from the
  /// partition.  Weak taint still flags member and sink writes (the missed
  /// `+=` in a word-partitioned loop IS partition-dependent), but it does
  /// not cross function boundaries through parameters or return values —
  /// propagating implicit flows interprocedurally floods the whole tree
  /// from one tainted loop.  Weakness is sticky along the chain.
  bool weak = false;
};

/// A write target recovered from tokens left of an `=` / inside `++`.
struct Target {
  bool valid = false;
  bool member = false;   // member field (by name, globally) vs local
  std::string name;      // final field / variable name
  std::string display;   // "stats.goals_found", "ls.goals", "wbegin"
};

struct SiteInfo {
  std::vector<std::size_t> cands;  // candidate node indices (empty: external)
  std::string written;             // callee as written
  bool has_receiver = false;
};

struct TNode {
  FunctionDef def;
  std::size_t file = 0;
  std::vector<std::size_t> body;  // raw token indices inside the body braces,
                                  // preprocessor lines skipped
  bool merge = false;             // justified commutative merge
  bool merge_used = false;        // laundered a write or justified a sink hit
  std::map<std::string, std::ptrdiff_t> locals;  // tainted local idents
  std::ptrdiff_t returns_taint = -1;
  // Return taint entered through this function's own parameters (rather
  // than a source or tainted member state).  Such taint only activates at
  // call sites that themselves pass a tainted argument — a context-
  // insensitive summary would taint every caller of a shared helper (hash,
  // PRNG) the moment one caller feeds it partition data.
  bool returns_param_only = false;
  std::map<std::pair<std::size_t, std::string>, SiteInfo> sites;
};

struct Hit {
  std::size_t file = 0;
  std::size_t line = 0;
  std::string name;  // sink member or function
  std::ptrdiff_t step = -1;
  bool justified = false;
};

/// Key for the global tainted-member map.  Members following the repo's
/// trailing-underscore (private field) convention are keyed per enclosing
/// class — `n_` in ThreadPool and `n_` in a puzzle board are different
/// state, and a name-only key would carry taint between them.  Plain member
/// names stay globally keyed: they are public aggregate fields read through
/// arbitrary receivers whose class the token level cannot see.
std::string member_key(const TNode& n, const std::string& name) {
  if (name.empty() || name.back() != '_') return name;
  const std::string& q = n.def.qualified;
  const std::size_t pos = q.rfind("::");
  return (pos == std::string::npos ? std::string() : q.substr(0, pos)) +
         "::" + name;
}

/// Container-idiom method names whose bare-name resolution routinely lands
/// on an unrelated class (`errors_.resize(n)` is std::vector::resize, not
/// the repo's Bitset::resize): taint does not follow their resolved
/// candidates — a tainted argument taints the call result locally instead,
/// exactly like an unresolved external call.
const std::set<std::string>& generic_receiver_calls() {
  static const std::set<std::string> s = {
      "resize", "assign",  "reserve",   "clear",        "fill",
      "swap",   "push_back", "pop_back", "emplace_back", "insert",
      "erase",  "front",   "back",      "data",         "at",
  };
  return s;
}

Finding taint_finding(const std::string& rule, const std::string& path,
                      std::size_t line, std::string message,
                      std::string excerpt) {
  Finding f;
  f.rule = rule;
  f.path = path;
  f.line = line;
  f.message = std::move(message);
  f.excerpt = std::move(excerpt);
  return f;
}

class Analysis {
 public:
  Analysis(const std::vector<SourceFile>& files, const EffectConfig& config,
           bool subset)
      : files_(files), config_(config), subset_(subset) {}

  std::vector<Finding> run();

 private:
  const std::vector<SourceFile>& files_;
  const EffectConfig& config_;
  bool subset_;

  std::vector<TNode> nodes_;
  std::vector<Step> arena_;
  std::map<std::string, std::ptrdiff_t> members_;  // tainted member names
  std::set<std::string> sink_members_;
  std::map<std::string, std::size_t> hit_index_;
  std::vector<Hit> hits_;
  bool changed_ = false;
  std::vector<Finding> out_;

  const Token& tok(const TNode& n, std::size_t k) const {
    return files_[n.file].tokens[n.body[k]];
  }
  const std::string& txt(const TNode& n, std::size_t k) const {
    return tok(n, k).text;
  }
  bool is(const TNode& n, std::size_t k, const char* s) const {
    return k < n.body.size() && txt(n, k) == s;
  }

  std::ptrdiff_t add_step(const TNode& n, std::size_t line, std::string note,
                          std::ptrdiff_t prev, bool ctl = false) {
    const bool weak = ctl || (prev >= 0 && arena_[static_cast<std::size_t>(
                                               prev)].weak);
    arena_.push_back(Step{n.def.path, line, std::move(note), prev, -1, weak});
    return static_cast<std::ptrdiff_t>(arena_.size()) - 1;
  }

  [[nodiscard]] bool is_weak(std::ptrdiff_t h) const {
    return h >= 0 && arena_[static_cast<std::size_t>(h)].weak;
  }

  void build_nodes();
  void seed_markers();
  void seed_conf_sources();
  void setup_merges();
  void record_hit(const TNode& n, std::size_t line, const std::string& name,
                  std::ptrdiff_t step, bool justified);
  void do_write(TNode& n, const Target& tg, std::size_t line,
                std::ptrdiff_t cause);
  Target classify(const TNode& n, std::ptrdiff_t k) const;
  std::size_t match_paren(const TNode& n, std::size_t open) const;
  std::size_t stmt_end(const TNode& n, std::size_t from) const;
  std::ptrdiff_t scan_reads(TNode& n, std::size_t from, std::size_t to);
  void scan(std::size_t ni);
  void conf_staleness();
  void emit_flow_findings();
};

void Analysis::build_nodes() {
  std::vector<FnInfo> infos;
  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    for (FunctionDef& fn : extract_functions(files_[fi])) {
      TNode n;
      n.def = std::move(fn);
      n.file = fi;
      nodes_.push_back(std::move(n));
    }
  }
  infos.reserve(nodes_.size());
  for (const TNode& n : nodes_) {
    infos.push_back(FnInfo{n.def.qualified, n.def.short_name,
                           n.def.is_static});
  }
  const CallResolver resolver(std::move(infos));
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    TNode& n = nodes_[i];
    const std::vector<Token>& toks = files_[n.file].tokens;
    if (n.def.body_close > n.def.body_open) {
      for (std::size_t r = n.def.body_open + 1; r < n.def.body_close; ++r) {
        if (!toks[r].preproc) n.body.push_back(r);
      }
    }
    for (const CallSite& call : n.def.calls) {
      SiteInfo si;
      si.cands = resolver.resolve(i, call);
      si.written = call.written;
      si.has_receiver = call.has_receiver;
      n.sites.emplace(std::make_pair(call.line, call.last_name),
                      std::move(si));
    }
  }
}

void Analysis::seed_markers() {
  // Marker line -> owning node, by signature/body line coverage.
  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    for (const auto& [mline, kinds] : files_[fi].source_marks) {
      std::ptrdiff_t owner = -1;
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const TNode& n = nodes_[i];
        if (n.file != fi || n.def.body_close <= n.def.body_open) continue;
        const std::size_t lo = n.def.sig_line > 1 ? n.def.sig_line - 1 : 1;
        const std::size_t hi = files_[fi].tokens[n.def.body_close].line;
        if (mline >= lo && mline <= hi) {
          owner = static_cast<std::ptrdiff_t>(i);
          break;
        }
      }
      for (const std::string& kind : kinds) {
        if (kind != "partition") {
          out_.push_back(taint_finding(
              "stale-source", files_[fi].path, mline,
              "unknown source kind '" + kind + "' (expected partition)",
              files_[fi].line_text(mline)));
          continue;
        }
        if (owner < 0) {
          out_.push_back(taint_finding(
              "stale-source", files_[fi].path, mline,
              "SIMDLINT-SOURCE marker attached to no function definition; "
              "move it inside a body or remove it",
              files_[fi].line_text(mline)));
          continue;
        }
        // Taint declared identifiers on the marker's line and the next two:
        // an identifier preceded by a type-ish token (identifier, '&', '*')
        // and followed by a declarator terminator (',', ')', ';', or '='
        // that is not '==').
        TNode& n = nodes_[static_cast<std::size_t>(owner)];
        bool live = false;
        for (std::size_t k = 0; k < n.body.size(); ++k) {
          const Token& t = tok(n, k);
          if (t.line < mline || t.line > mline + 2) continue;
          if (!t.ident || k == 0) continue;
          const std::string& prev = txt(n, k - 1);
          const bool typed = tok(n, k - 1).ident || prev == "&" || prev == "*";
          if (!typed) continue;
          bool ends = false;
          if (is(n, k + 1, ",") || is(n, k + 1, ")") || is(n, k + 1, ";")) {
            ends = true;
          } else if (is(n, k + 1, "=") && !is(n, k + 2, "=")) {
            ends = true;
          }
          if (!ends) continue;
          const std::ptrdiff_t st =
              add_step(n, t.line,
                       n.def.short_name + ": partition source '" + t.text +
                           "'",
                       -1);
          if (n.locals.emplace(t.text, st).second) changed_ = true;
          live = true;
        }
        if (!live) {
          out_.push_back(taint_finding(
              "stale-source", files_[fi].path, mline,
              "SIMDLINT-SOURCE(partition) taints no identifier on its line "
              "or the next two; move or remove it",
              files_[fi].line_text(mline)));
        }
      }
    }
  }
}

void Analysis::seed_conf_sources() {
  for (const SourceDecl& decl : config_.sources) {
    bool matched = false;
    for (TNode& n : nodes_) {
      if (suffix_match(n.def.qualified, decl.pattern)) {
        matched = true;
        if (n.returns_taint < 0) {
          n.returns_taint = add_step(
              n, n.def.line,
              n.def.short_name + ": declared partition source", -1);
          changed_ = true;
        }
      }
    }
    if (!matched) {
      for (const TNode& n : nodes_) {
        for (const CallSite& call : n.def.calls) {
          if (suffix_match(call.written, decl.pattern)) matched = true;
        }
      }
    }
    if (!matched && !subset_) {
      out_.push_back(taint_finding(
          "stale-source", config_.path, decl.line,
          "source entry matches no function definition or call; remove it",
          decl.text));
    }
  }
}

void Analysis::setup_merges() {
  for (TNode& n : nodes_) {
    for (const std::string& kind : n.def.merges) {
      if (kind == "commutative") {
        n.merge = true;
      } else {
        out_.push_back(taint_finding(
            "merge-unjustified", files_[n.file].path, n.def.line,
            "merge kind '" + kind + "' on '" + n.def.qualified +
                "' is not justified (only 'commutative' merges launder "
                "partition taint)",
            files_[n.file].line_text(n.def.line)));
      }
    }
  }
  for (const MergeDecl& decl : config_.merges) {
    bool matched = false;
    for (TNode& n : nodes_) {
      if (!suffix_match(n.def.qualified, decl.pattern)) continue;
      matched = true;
      if (decl.kind == "commutative") {
        n.merge = true;
      } else {
        out_.push_back(taint_finding(
            "merge-unjustified", config_.path, decl.line,
            "merge kind '" + decl.kind + "' is not justified (only "
            "'commutative' merges launder partition taint)",
            decl.text));
      }
    }
    if (!matched && !subset_) {
      out_.push_back(taint_finding(
          "stale-merge", config_.path, decl.line,
          "merge entry matches no function definition; remove it or fix the "
          "suffix",
          decl.text));
    }
  }
  for (const SinkDecl& decl : config_.sinks) {
    if (decl.member) sink_members_.insert(decl.pattern);
  }
}

void Analysis::record_hit(const TNode& n, std::size_t line,
                          const std::string& name, std::ptrdiff_t step,
                          bool justified) {
  std::ostringstream key;
  key << n.def.path << ':' << line << ':' << name;
  if (hit_index_.count(key.str()) > 0) return;
  hit_index_.emplace(key.str(), hits_.size());
  hits_.push_back(Hit{n.file, line, name, step, justified});
}

void Analysis::do_write(TNode& n, const Target& tg, std::size_t line,
                        std::ptrdiff_t cause) {
  if (!tg.valid) return;
  const std::ptrdiff_t st = add_step(
      n, line, n.def.short_name + ": " + tg.display + " <- tainted", cause);
  if (tg.member) {
    const bool sink = sink_members_.count(tg.name) > 0;
    if (n.merge) {
      // An order-independent merge launders the flow: no global member
      // taint, and a sink hit here is justified.
      n.merge_used = true;
      if (sink) record_hit(n, line, tg.name, st, /*justified=*/true);
      return;
    }
    if (members_.emplace(member_key(n, tg.name), st).second) changed_ = true;
    if (sink) record_hit(n, line, tg.name, st, /*justified=*/false);
  } else {
    if (n.locals.emplace(tg.name, st).second) changed_ = true;
  }
}

Target Analysis::classify(const TNode& n, std::ptrdiff_t k) const {
  Target tg;
  if (k < 0) return tg;
  if (txt(n, static_cast<std::size_t>(k)) == "]") {
    // `a[i] = x`: the write targets the container `a`.
    int depth = 0;
    std::ptrdiff_t j = k;
    while (j >= 0) {
      const std::string& s = txt(n, static_cast<std::size_t>(j));
      if (s == "]") {
        ++depth;
      } else if (s == "[") {
        if (--depth == 0) break;
      }
      --j;
    }
    if (j <= 0) return tg;
    k = j - 1;
  }
  const Token& t = tok(n, static_cast<std::size_t>(k));
  if (!t.ident) return tg;
  tg.name = t.text;
  const std::string prev =
      k >= 1 ? txt(n, static_cast<std::size_t>(k - 1)) : "";
  if (prev == "." || prev == "->") {
    tg.member = true;
    const bool recv =
        k >= 2 && tok(n, static_cast<std::size_t>(k - 2)).ident;
    tg.display =
        recv ? txt(n, static_cast<std::size_t>(k - 2)) + "." + tg.name
             : tg.name;
  } else if (!tg.name.empty() && tg.name.back() == '_') {
    tg.member = true;  // repo convention: trailing underscore = member field
    tg.display = tg.name;
  } else {
    tg.display = tg.name;
  }
  tg.valid = true;
  return tg;
}

std::size_t Analysis::match_paren(const TNode& n, std::size_t open) const {
  int depth = 0;
  for (std::size_t k = open; k < n.body.size(); ++k) {
    const std::string& s = txt(n, k);
    if (s == "(") {
      ++depth;
    } else if (s == ")") {
      if (--depth == 0) return k;
    }
  }
  return n.body.size();
}

std::size_t Analysis::stmt_end(const TNode& n, std::size_t from) const {
  int pd = 0;
  int bd = 0;
  const std::size_t limit = std::min(n.body.size(), from + 400);
  for (std::size_t k = from; k < limit; ++k) {
    const std::string& s = txt(n, k);
    if (s == "(" || s == "[") {
      ++pd;
    } else if (s == ")" || s == "]") {
      if (--pd < 0) return k;
    } else if (s == "{") {
      ++bd;
    } else if (s == "}") {
      if (--bd < 0) return k;
    } else if (s == ";" && pd == 0 && bd == 0) {
      return k;
    }
  }
  return limit;
}

std::ptrdiff_t Analysis::scan_reads(TNode& n, std::size_t from,
                                    std::size_t to) {
  for (std::size_t k = from; k < to && k < n.body.size(); ++k) {
    const Token& t = tok(n, k);
    if (t.text == "[") {
      // Selection: `a[tainted_lane]` reads clean data through a tainted
      // *index*; skip the subscript so the index does not taint the read.
      int depth = 0;
      while (k < to && k < n.body.size()) {
        const std::string& s = txt(n, k);
        if (s == "[") {
          ++depth;
        } else if (s == "]") {
          if (--depth == 0) break;
        }
        ++k;
      }
      continue;
    }
    if (!t.ident) continue;
    if (is(n, k + 1, "(")) {
      const auto it = n.sites.find(std::make_pair(t.line, t.text));
      if (it != n.sites.end()) {
        const SiteInfo& si = it->second;
        for (const SourceDecl& decl : config_.sources) {
          if (suffix_match(si.written, decl.pattern)) {
            return add_step(n, t.line,
                            n.def.short_name + ": calls partition source '" +
                                si.written + "'",
                            -1);
          }
        }
        const bool generic =
            si.has_receiver && generic_receiver_calls().count(t.text) > 0;
        if (!generic) {
          for (const std::size_t c : si.cands) {
            if (nodes_[c].returns_taint < 0) continue;
            if (nodes_[c].returns_param_only) {
              // 1-level context sensitivity: parameter-derived return taint
              // activates only when THIS call passes a tainted argument.
              const std::size_t aclose = match_paren(n, k + 1);
              const std::ptrdiff_t ah = scan_reads(n, k + 2, aclose);
              if (ah < 0 || is_weak(ah)) continue;
            }
            return add_step(n, t.line,
                            n.def.short_name + ": call to '" + t.text +
                                "' returns tainted",
                            nodes_[c].returns_taint);
          }
          if (!si.cands.empty()) {
            // Resolved repo call whose result is (so far) clean: its
            // arguments flow through the callee, not into this expression.
            k = match_paren(n, k + 1);
            continue;
          }
        }
      }
      continue;  // external: tainted args taint the result (keep scanning)
    }
    const std::string prev = k >= 1 ? txt(n, k - 1) : "";
    if (prev == "." || prev == "->") {
      const auto im = members_.find(member_key(n, t.text));
      if (im != members_.end()) return im->second;
      if (k >= 2 && tok(n, k - 2).ident) {
        const auto il = n.locals.find(txt(n, k - 2));
        if (il != n.locals.end()) return il->second;
      }
      continue;
    }
    const auto il = n.locals.find(t.text);
    if (il != n.locals.end()) return il->second;
    if (!t.text.empty() && t.text.back() == '_') {
      const auto im = members_.find(member_key(n, t.text));
      if (im != members_.end()) return im->second;
    }
  }
  return -1;
}

void Analysis::scan(std::size_t ni) {
  TNode& n = nodes_[ni];
  struct Frame {
    std::ptrdiff_t own = -1;
    std::ptrdiff_t eff = -1;
  };
  std::vector<Frame> stack;
  std::ptrdiff_t pending = -1;
  std::size_t pending_after = 0;
  std::ptrdiff_t last_pop = -1;
  int pdepth = 0;

  auto eff = [&](std::size_t k) -> std::ptrdiff_t {
    if (pending >= 0 && k > pending_after) return pending;
    return stack.empty() ? -1 : stack.back().eff;
  };

  for (std::size_t k = 0; k < n.body.size(); ++k) {
    const Token& t = tok(n, k);
    const std::string& s = t.text;
    if (s == "{") {
      Frame f;
      f.own = pending;
      f.eff = pending >= 0 ? pending : (stack.empty() ? -1 : stack.back().eff);
      stack.push_back(f);
      pending = -1;
      continue;
    }
    if (s == "}") {
      if (!stack.empty()) {
        last_pop = stack.back().own;
        stack.pop_back();
      }
      continue;
    }
    if (s == "(") {
      ++pdepth;
      continue;
    }
    if (s == ")") {
      --pdepth;
      continue;
    }
    if (s == ";" && pdepth == 0) {
      pending = -1;
      continue;
    }

    // Increments: `++`/`--` lex as doubled single-char tokens.
    if ((s == "+" || s == "-") && is(n, k + 1, s.c_str())) {
      const std::ptrdiff_t e = eff(k);
      if (e >= 0) {
        Target tg;
        if (k + 2 < n.body.size() && tok(n, k + 2).ident) {
          // Prefix: walk the member chain forward to the final field.
          std::size_t f = k + 2;
          while (f + 2 < n.body.size() &&
                 (is(n, f + 1, ".") || is(n, f + 1, "->")) &&
                 tok(n, f + 2).ident) {
            f += 2;
          }
          tg = classify(n, static_cast<std::ptrdiff_t>(f));
        } else if (k >= 1) {
          tg = classify(n, static_cast<std::ptrdiff_t>(k) - 1);
        }
        if (tg.valid) do_write(n, tg, t.line, e);
      }
      ++k;
      continue;
    }

    if (!t.ident) {
      if (s == "=") {
        const std::string prev = k >= 1 ? txt(n, k - 1) : "";
        if (is(n, k + 1, "=") || prev == "=" || prev == "<" || prev == ">" ||
            prev == "!") {
          continue;  // comparison, not assignment
        }
        std::ptrdiff_t lhs_end = static_cast<std::ptrdiff_t>(k) - 1;
        if (compound_op(prev)) --lhs_end;
        const Target tg = classify(n, lhs_end);
        if (!tg.valid) continue;
        const std::ptrdiff_t rhs =
            scan_reads(n, k + 1, stmt_end(n, k + 1));
        const std::ptrdiff_t cause = rhs >= 0 ? rhs : eff(k);
        if (cause >= 0) do_write(n, tg, t.line, cause);
      }
      continue;
    }

    if (s == "else") {
      if (last_pop >= 0) {
        pending = last_pop;
        pending_after = k;
      }
      continue;
    }

    if ((s == "if" || s == "while" || s == "switch") && is(n, k + 1, "(")) {
      const std::size_t close = match_paren(n, k + 1);
      const std::ptrdiff_t h = scan_reads(n, k + 2, close);
      if (h >= 0) {
        pending = add_step(
            n, t.line,
            n.def.short_name + ": tainted '" + s + "' condition", h,
            /*ctl=*/true);
        pending_after = close;
      }
      continue;
    }

    if (s == "for" && is(n, k + 1, "(")) {
      const std::size_t close = match_paren(n, k + 1);
      // Range-for: a top-level ':' with no ';' before it.
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = k + 2; j < close; ++j) {
        const std::string& u = txt(n, j);
        if (u == "(" || u == "[" || u == "{") {
          ++depth;
        } else if (u == ")" || u == "]" || u == "}") {
          --depth;
        } else if (u == ";" && depth == 0) {
          break;
        } else if (u == ":" && depth == 0) {
          colon = j;
          break;
        }
      }
      std::ptrdiff_t h = -1;
      if (colon > 0) {
        h = scan_reads(n, colon + 1, close);
        if (h >= 0) {
          // The loop variable reads elements of a tainted range.
          std::ptrdiff_t var = -1;
          for (std::size_t j = k + 2; j < colon; ++j) {
            if (tok(n, j).ident) var = static_cast<std::ptrdiff_t>(j);
          }
          if (var >= 0) {
            const std::string& v = txt(n, static_cast<std::size_t>(var));
            const std::ptrdiff_t st = add_step(
                n, t.line,
                n.def.short_name + ": '" + v + "' ranges over tainted data",
                h);
            if (n.locals.emplace(v, st).second) changed_ = true;
          }
        }
      } else {
        h = scan_reads(n, k + 2, close);
      }
      if (h >= 0) {
        pending = add_step(n, t.line,
                           n.def.short_name + ": tainted loop bound", h,
                           /*ctl=*/true);
        pending_after = close;
      }
      continue;
    }

    if (s == "return") {
      if (!n.merge) {
        const std::ptrdiff_t h = scan_reads(n, k + 1, stmt_end(n, k + 1));
        if (h >= 0 && !is_weak(h) && n.returns_taint < 0) {
          n.returns_taint = add_step(
              n, t.line, n.def.short_name + ": returns tainted value", h);
          // Did the taint enter through one of our own parameters?  The
          // nearest parameter-entry hop in the chain decides.
          for (std::ptrdiff_t w = h; w >= 0;
               w = arena_[static_cast<std::size_t>(w)].prev) {
            const std::ptrdiff_t po =
                arena_[static_cast<std::size_t>(w)].param_of;
            if (po >= 0) {
              n.returns_param_only = po == static_cast<std::ptrdiff_t>(ni);
              break;
            }
          }
          changed_ = true;
        }
      }
      continue;
    }

    // Call handling.
    if (is(n, k + 1, "(")) {
      const auto it = n.sites.find(std::make_pair(t.line, t.text));
      if (it == n.sites.end()) continue;
      const SiteInfo& si = it->second;
      const std::size_t close = match_paren(n, k + 1);
      const std::ptrdiff_t e = eff(k);
      const std::ptrdiff_t argt = scan_reads(n, k + 2, close);

      // Mutating member call: writes through its receiver.
      if (si.has_receiver && k >= 2 &&
          mutating_member_calls().count(t.text) > 0 &&
          (argt >= 0 || e >= 0)) {
        const Target tg = classify(n, static_cast<std::ptrdiff_t>(k) - 2);
        if (tg.valid) do_write(n, tg, t.line, argt >= 0 ? argt : e);
      }

      // Parameter taint: tainted argument position k taints the callee's
      // k-th parameter.  Generic container-method names are exempt — their
      // resolved candidates are routinely the wrong class.
      if (!si.cands.empty() &&
          !(si.has_receiver && generic_receiver_calls().count(t.text) > 0)) {
        std::size_t pos = 0;
        std::size_t seg = k + 2;
        int depth = 0;
        for (std::size_t j = k + 2; j <= close && j < n.body.size(); ++j) {
          const std::string& u = txt(n, j);
          const bool end_of_args = j == close && depth == 0;
          if (u == "(" || u == "[" || u == "{") {
            ++depth;
          } else if ((u == ")" || u == "]" || u == "}") && !end_of_args) {
            --depth;
          }
          if ((u == "," && depth == 0) || end_of_args) {
            // A lambda literal is not a value whose taint reaches the
            // callee's parameter — its body is analyzed in place as part of
            // THIS function, and treating its captured reads as the
            // argument would taint unrelated same-name callees.
            const bool lambda_arg = j > seg && txt(n, seg) == "[";
            if (j > seg && !lambda_arg) {
              const std::ptrdiff_t h = scan_reads(n, seg, j);
              if (h >= 0 && !is_weak(h)) {
                for (const std::size_t c : si.cands) {
                  TNode& callee = nodes_[c];
                  if (pos >= callee.def.params.size()) continue;
                  const std::string& p = callee.def.params[pos];
                  if (p.empty()) continue;
                  const std::ptrdiff_t st = add_step(
                      n, t.line,
                      callee.def.short_name + ": parameter '" + p +
                          "' tainted via call from " + n.def.short_name,
                      h);
                  arena_[static_cast<std::size_t>(st)].param_of =
                      static_cast<std::ptrdiff_t>(c);
                  if (callee.locals.emplace(p, st).second) changed_ = true;
                }
              }
            }
            ++pos;
            seg = j + 1;
          }
          if (end_of_args) break;
        }
      }

      // Sink function: a tainted argument reaching a declared emitter.
      if (argt >= 0) {
        for (const SinkDecl& decl : config_.sinks) {
          if (decl.member) continue;
          bool match = suffix_match(si.written, decl.pattern);
          for (const std::size_t c : si.cands) {
            if (suffix_match(nodes_[c].def.qualified, decl.pattern)) {
              match = true;
            }
          }
          if (!match) continue;
          const std::ptrdiff_t st = add_step(
              n, t.line,
              n.def.short_name + ": tainted argument to sink '" +
                  decl.pattern + "'",
              argt);
          if (n.merge) {
            n.merge_used = true;
            record_hit(n, t.line, decl.pattern, st, /*justified=*/true);
          } else {
            record_hit(n, t.line, decl.pattern, st, /*justified=*/false);
          }
        }
      }

      // Out-parameter conservatism: under tainted control, a member passed
      // by explicit address-of (`fill(&ls.count, ...)`) is treated as
      // written through.  Plain by-value / by-reference member arguments are
      // NOT — treating every `f(problem_)` as a write to `problem_` floods
      // the whole tree with taint through shared read-only state
      // (param-taint already carries the flow into resolved callees).
      if (e >= 0) {
        for (std::size_t j = k + 2; j < close; ++j) {
          const Token& a = tok(n, j);
          if (!a.ident || is(n, j + 1, "(")) continue;
          const std::string prev = txt(n, j - 1);
          const bool member_form =
              prev == "." || prev == "->" ||
              (!a.text.empty() && a.text.back() == '_');
          if (!member_form) continue;
          // Walk to the front of the member chain; require `&` in argument
          // position (preceded by `(` or `,`) to rule out bitwise-and.
          std::size_t s2 = j;
          while (s2 >= 2 && (txt(n, s2 - 1) == "." || txt(n, s2 - 1) == "->"))
            s2 -= 2;
          if (s2 == 0 || txt(n, s2 - 1) != "&") continue;
          if (s2 >= 2 && txt(n, s2 - 2) != "(" && txt(n, s2 - 2) != ",")
            continue;
          const Target tg = classify(n, static_cast<std::ptrdiff_t>(j));
          if (tg.valid && tg.member) do_write(n, tg, a.line, e);
        }
      }
      continue;
    }
  }
}

void Analysis::conf_staleness() {
  if (subset_) return;
  // Sink staleness: a member sink must be accessed as a member somewhere; a
  // function sink must match a definition or a call.
  std::set<std::string> member_accessed;
  for (const SourceFile& f : files_) {
    for (std::size_t i = 1; i < f.tokens.size(); ++i) {
      if (f.tokens[i].ident &&
          (f.tokens[i - 1].text == "." || f.tokens[i - 1].text == "->")) {
        member_accessed.insert(f.tokens[i].text);
      }
    }
  }
  for (const SinkDecl& decl : config_.sinks) {
    bool matched = false;
    if (decl.member) {
      matched = member_accessed.count(decl.pattern) > 0;
    } else {
      for (const TNode& n : nodes_) {
        if (suffix_match(n.def.qualified, decl.pattern)) matched = true;
        for (const CallSite& call : n.def.calls) {
          if (suffix_match(call.written, decl.pattern)) matched = true;
        }
      }
    }
    if (!matched) {
      out_.push_back(taint_finding(
          "stale-sink", config_.path, decl.line,
          decl.member
              ? "sink member is never accessed as a field; remove the entry"
              : "sink entry matches no function definition or call; remove "
                "it",
          decl.text));
    }
  }
  // Merge staleness: a justified merge that laundered nothing and justified
  // no sink hit is dead weight.
  for (const TNode& n : nodes_) {
    if (!n.merge || n.merge_used) continue;
    if (!n.def.merge_mark_lines.empty()) {
      const std::size_t line = n.def.merge_mark_lines.front();
      out_.push_back(taint_finding(
          "stale-merge", files_[n.file].path, line,
          "SIMDLINT-MERGE(commutative) on '" + n.def.qualified +
              "' laundered no tainted flow; remove it",
          files_[n.file].line_text(line)));
      continue;
    }
    for (const MergeDecl& decl : config_.merges) {
      if (decl.kind == "commutative" &&
          suffix_match(n.def.qualified, decl.pattern)) {
        out_.push_back(taint_finding(
            "stale-merge", config_.path, decl.line,
            "merge entry on '" + n.def.qualified +
                "' laundered no tainted flow; remove it",
            decl.text));
        break;
      }
    }
  }
}

void Analysis::emit_flow_findings() {
  for (const Hit& hit : hits_) {
    if (hit.justified) continue;
    // Rebuild the provenance chain, source first.
    std::vector<std::ptrdiff_t> chain;
    for (std::ptrdiff_t s = hit.step; s >= 0 && chain.size() < 64;
         s = arena_[static_cast<std::size_t>(s)].prev) {
      chain.push_back(s);
    }
    std::reverse(chain.begin(), chain.end());
    std::ostringstream msg;
    Finding f;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const Step& st = arena_[static_cast<std::size_t>(chain[i])];
      if (i > 0) msg << " -> ";
      msg << st.note;
      f.flow.push_back(FlowStep{st.path, st.line, st.note});
    }
    msg << " [partition->result]";
    f.rule = "taint-partition-to-result";
    f.path = files_[hit.file].path;
    f.line = hit.line;
    f.message = "partition-derived value reaches result-bearing '" +
                hit.name + "' without an order-independent merge: " +
                msg.str();
    f.excerpt = files_[hit.file].line_text(hit.line);
    out_.push_back(std::move(f));
  }
}

std::vector<Finding> Analysis::run() {
  build_nodes();

  // Inline MERGE markers that attached to no function are stale (intra-file,
  // so this survives subset runs).
  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    std::set<std::size_t> consumed;
    for (const TNode& n : nodes_) {
      if (n.file != fi) continue;
      consumed.insert(n.def.merge_mark_lines.begin(),
                      n.def.merge_mark_lines.end());
    }
    for (const auto& [line, kinds] : files_[fi].merge_marks) {
      if (consumed.count(line) > 0) continue;
      out_.push_back(taint_finding(
          "stale-merge", files_[fi].path, line,
          "SIMDLINT-MERGE marker attached to no function definition; move "
          "it onto the signature or remove it",
          files_[fi].line_text(line)));
    }
  }

  setup_merges();
  seed_markers();
  seed_conf_sources();

  // Global fixpoint: rescan every body until no taint fact is added.
  // Deterministic sweep order + first-insert provenance keeps witnesses
  // byte-stable.
  changed_ = true;
  int rounds = 0;
  while (changed_ && rounds++ < 64) {
    changed_ = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) scan(i);
  }

  conf_staleness();
  emit_flow_findings();
  return out_;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> taint_rule_catalog() {
  return {
      {"taint-partition-to-result",
       "a partition-derived value (worker index, word-range bound, thread "
       "count) flows into result-bearing state without passing an "
       "order-independent merge"},
      {"merge-unjustified",
       "a SIMDLINT-MERGE marker or conf merge entry declares a kind other "
       "than 'commutative'"},
      {"stale-source",
       "a SIMDLINT-SOURCE marker taints nothing, or a conf source entry "
       "matches nothing"},
      {"stale-sink", "a conf sink entry matches no member access or function"},
      {"stale-merge",
       "a merge declaration attaches to no function or laundered no tainted "
       "flow"},
  };
}

std::vector<Finding> find_taint_findings(const std::vector<SourceFile>& files,
                                         const EffectConfig& config,
                                         bool subset) {
  Analysis analysis(files, config, subset);
  return analysis.run();
}

}  // namespace simdlint
